package connector_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	"github.com/social-streams/ksir/connector"
	"github.com/social-streams/ksir/connector/backoff"
)

// Fault-injection suite: every test drives a real Connector against the
// scriptable faultServer and asserts the resilience contract — reconnect
// with backoff, Last-Event-ID resume, bounded-buffer drop accounting, and
// zero duplicate ingest into the Hub. Run under -race in CI.

var (
	modelOnce sync.Once
	model     *ksir.Model
	modelErr  error
)

func testModel(t *testing.T) *ksir.Model {
	t.Helper()
	modelOnce.Do(func() {
		soccer := []string{"goal", "striker", "keeper", "league", "derby", "penalty"}
		basket := []string{"dunk", "rebound", "playoffs", "court", "buzzer", "triple"}
		rng := rand.New(rand.NewSource(7))
		texts := make([]string, 120)
		for i := range texts {
			words := soccer
			if i%2 == 1 {
				words = basket
			}
			var b []string
			for j := 0; j < 6; j++ {
				b = append(b, words[rng.Intn(len(words))])
			}
			texts[i] = strings.Join(b, " ")
		}
		model, modelErr = ksir.TrainModel(texts, ksir.WithTopics(2), ksir.WithIterations(30), ksir.WithSeed(1))
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

func newTestStream(t *testing.T) *ksir.StreamHandle {
	t.Helper()
	h := ksir.NewHub()
	t.Cleanup(func() { h.CloseAll() })
	hs, err := h.Create("firehose", testModel(t),
		ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 5})
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

// fastBackoff keeps reconnect churn cheap and deterministic in tests.
var fastBackoff = backoff.Policy{Initial: time.Millisecond, Max: 5 * time.Millisecond, Multiplier: 2, Exact: true}

func newTestConnector(t *testing.T, url string, hs *ksir.StreamHandle, mutate ...func(*connector.Config)) *connector.Connector {
	t.Helper()
	cfg := connector.Config{
		URL:           url,
		Backoff:       fastBackoff,
		MaxEventBytes: 4096,
		BatchWindow:   5 * time.Millisecond,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := connector.New(cfg, hs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runConnector starts c.Run and returns a stop func that cancels it and
// waits for a clean exit (so -race sees every goroutine finish).
func runConnector(t *testing.T, c *connector.Connector) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx)
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("connector did not stop")
			}
		})
	}
	t.Cleanup(stop)
	return stop
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// flushedElements closes the open bucket and returns the stream's total
// ingested element count — the ground truth for duplicate detection.
func flushedElements(t *testing.T, hs *ksir.StreamHandle) int64 {
	t.Helper()
	if err := hs.Flush(faultPostTime + 120); err != nil {
		t.Fatal(err)
	}
	return hs.Stats().Elements
}

func TestConnectorIngestsFirehose(t *testing.T) {
	const total = 50
	fs := newFaultServer(t, total) // default plan: send all, hold open
	hs := newTestStream(t)
	c := newTestConnector(t, fs.url(), hs)
	stop := runConnector(t, c)

	waitFor(t, "all posts ingested", func() bool { return c.Stats().Ingested == total })
	stop()
	fs.releaseAll()

	st := c.Stats()
	if st.Events != total || st.Dropped != 0 || st.Malformed != 0 || st.Duplicates != 0 || st.Rejected != 0 {
		t.Errorf("stats = %+v, want %d clean events", st, total)
	}
	if st.LastEventID != "50" {
		t.Errorf("cursor = %q, want 50", st.LastEventID)
	}
	if got := flushedElements(t, hs); got != total {
		t.Errorf("stream elements = %d, want %d", got, total)
	}
}

func TestReconnectResumesWithoutDuplicates(t *testing.T) {
	const total = 200
	fs := newFaultServer(t, total,
		connPlan{send: 80},                 // dies after 80
		connPlan{send: 70, replayBack: 10}, // resumes, replaying 71..80
		connPlan{send: -1, replayBack: 5, hold: true},
	)
	hs := newTestStream(t)
	c := newTestConnector(t, fs.url(), hs)
	stop := runConnector(t, c)

	waitFor(t, "all posts ingested", func() bool { return c.Stats().Ingested == total })
	stop()
	fs.releaseAll()

	st := c.Stats()
	if st.Duplicates != 15 {
		t.Errorf("duplicates = %d, want 15 (10+5 replayed)", st.Duplicates)
	}
	if st.Rejected != 0 {
		t.Errorf("rejected = %d: a replayed event reached the stream", st.Rejected)
	}
	if st.Reconnects < 2 {
		t.Errorf("reconnects = %d, want ≥ 2", st.Reconnects)
	}
	if got := flushedElements(t, hs); got != total {
		t.Errorf("stream elements = %d, want %d (duplicate ingest?)", got, total)
	}
	cursors := fs.resumeCursors()
	if len(cursors) < 3 || cursors[1] != 80 {
		t.Errorf("resume cursors = %v, want second connection to resume from 80", cursors)
	}
}

func TestDedupeOverflowFallsBackToStreamRejection(t *testing.T) {
	// A dedupe window smaller than the replay overlap: the connector-side
	// filter misses the replays, and the stream's in-window duplicate
	// rejection is the second line of defense — still zero double-ingest.
	const total = 60
	fs := newFaultServer(t, total,
		connPlan{send: 40},
		connPlan{send: -1, replayBack: 10, hold: true},
	)
	hs := newTestStream(t)
	c := newTestConnector(t, fs.url(), hs, func(cfg *connector.Config) {
		cfg.DedupeWindow = 4
	})
	stop := runConnector(t, c)

	waitFor(t, "all posts ingested", func() bool { return c.Stats().Ingested == total })
	stop()
	fs.releaseAll()

	st := c.Stats()
	if st.Duplicates+st.Rejected != 10 {
		t.Errorf("duplicates %d + rejected %d = %d, want 10 replays suppressed",
			st.Duplicates, st.Rejected, st.Duplicates+st.Rejected)
	}
	if st.Rejected == 0 {
		t.Error("rejected = 0: expected the tiny dedupe window to leak replays to the stream")
	}
	if got := flushedElements(t, hs); got != total {
		t.Errorf("stream elements = %d, want %d (duplicate ingest?)", got, total)
	}
}

func TestTruncatedFrameIsRedelivered(t *testing.T) {
	const total = 20
	fs := newFaultServer(t, total,
		connPlan{send: 10, truncate: true}, // frame 11 cut mid-JSON
		connPlan{send: -1, hold: true},
	)
	hs := newTestStream(t)
	c := newTestConnector(t, fs.url(), hs)
	stop := runConnector(t, c)

	waitFor(t, "all posts ingested", func() bool { return c.Stats().Ingested == total })
	stop()
	fs.releaseAll()

	st := c.Stats()
	if st.Malformed != 0 || st.Duplicates != 0 {
		t.Errorf("stats = %+v: the truncated frame must not count as malformed nor duplicate", st)
	}
	if got := flushedElements(t, hs); got != total {
		t.Errorf("stream elements = %d, want %d", got, total)
	}
	if cursors := fs.resumeCursors(); len(cursors) < 2 || cursors[1] != 10 {
		// The cursor must not advance past the truncated frame.
		t.Errorf("resume cursors = %v, want second connection from 10", cursors)
	}
}

func TestStallMidEventThenRecover(t *testing.T) {
	const total = 10
	fs := newFaultServer(t, total,
		connPlan{send: 5, stall: true}, // half an event, then silence
		connPlan{send: -1, hold: true},
	)
	hs := newTestStream(t)
	c := newTestConnector(t, fs.url(), hs)
	stop := runConnector(t, c)

	// While the upstream stalls mid-event, exactly the complete frames
	// are delivered — the partial one is neither ingested nor counted.
	waitFor(t, "first five posts", func() bool { return c.Stats().Ingested == 5 })
	time.Sleep(20 * time.Millisecond)
	if st := c.Stats(); st.Events != 5 || st.Ingested != 5 {
		t.Errorf("during stall: %+v, want exactly 5 events", st)
	}

	fs.releaseAll() // upstream closes the stalled connection
	waitFor(t, "all posts ingested", func() bool { return c.Stats().Ingested == total })
	stop()

	if got := flushedElements(t, hs); got != total {
		t.Errorf("stream elements = %d, want %d", got, total)
	}
	if st := c.Stats(); st.Duplicates != 0 || st.Rejected != 0 {
		t.Errorf("stats after recovery = %+v, want no duplicates", st)
	}
}

func TestCloseBurstBacksOffAndRecovers(t *testing.T) {
	const total = 30
	plans := make([]connPlan, 10) // ten immediate closes: send 0, drop
	fs := newFaultServer(t, total, append(plans, connPlan{send: -1, hold: true})...)
	hs := newTestStream(t)
	c := newTestConnector(t, fs.url(), hs)
	stop := runConnector(t, c)

	waitFor(t, "all posts ingested", func() bool { return c.Stats().Ingested == total })
	stop()
	fs.releaseAll()

	st := c.Stats()
	if st.Reconnects < 10 {
		t.Errorf("reconnects = %d, want ≥ 10 across the close burst", st.Reconnects)
	}
	if got := flushedElements(t, hs); got != total {
		t.Errorf("stream elements = %d, want %d", got, total)
	}
}

func TestMalformedAndOversizedSkippedInStream(t *testing.T) {
	const total = 20
	fs := newFaultServer(t, total,
		connPlan{send: -1, malformed: 3, oversized: 2, hold: true},
	)
	hs := newTestStream(t)
	c := newTestConnector(t, fs.url(), hs, func(cfg *connector.Config) {
		cfg.MaxEventBytes = 256 // faultServer's oversized frames are 64 KiB
	})
	stop := runConnector(t, c)

	waitFor(t, "all posts ingested", func() bool { return c.Stats().Ingested == total })
	stop()
	fs.releaseAll()

	st := c.Stats()
	if st.Malformed != 3 {
		t.Errorf("malformed = %d, want 3", st.Malformed)
	}
	if st.Oversized != 2 {
		t.Errorf("oversized = %d, want 2", st.Oversized)
	}
	if fs.connCount() != 1 {
		t.Errorf("connections = %d: bad frames must be skipped without reconnecting", fs.connCount())
	}
	if got := flushedElements(t, hs); got != total {
		t.Errorf("stream elements = %d, want %d", got, total)
	}
}

func TestResumeGapIsCounted(t *testing.T) {
	const total = 30
	fs := newFaultServer(t, total,
		connPlan{send: 10},
		connPlan{send: -1, skip: 5, hold: true}, // upstream lost 11..15
	)
	hs := newTestStream(t)
	c := newTestConnector(t, fs.url(), hs)
	stop := runConnector(t, c)

	waitFor(t, "remaining posts ingested", func() bool { return c.Stats().Ingested == total-5 })
	stop()
	fs.releaseAll()

	st := c.Stats()
	if st.ResumeGaps != 1 || st.ResumeMissed != 5 {
		t.Errorf("resume gaps = %d missed = %d, want 1 gap of 5", st.ResumeGaps, st.ResumeMissed)
	}
}

func TestBoundedBufferDropsOldestWithAccounting(t *testing.T) {
	const total = 400
	fs := newFaultServer(t, total, connPlan{send: -1, hold: true})
	hs := newTestStream(t)
	c := newTestConnector(t, fs.url(), hs, func(cfg *connector.Config) {
		cfg.Buffer = 4
		cfg.MaxBatch = 8
		cfg.Map = func(ev connector.Event) (ksir.Post, error) {
			time.Sleep(time.Millisecond) // slow consumer forces buffer pressure
			return connector.DecodePost(ev)
		}
	})
	stop := runConnector(t, c)

	waitFor(t, "every event accounted for", func() bool {
		st := c.Stats()
		return st.Events == total && st.Ingested+st.Dropped == total
	})
	stop()
	fs.releaseAll()

	st := c.Stats()
	if st.Dropped == 0 {
		t.Error("dropped = 0: slow consumer over a 4-slot buffer must shed events")
	}
	if st.Ingested+st.Dropped != st.Events {
		t.Errorf("conservation violated: ingested %d + dropped %d != events %d",
			st.Ingested, st.Dropped, st.Events)
	}
	if got := flushedElements(t, hs); got != st.Ingested {
		t.Errorf("stream elements = %d, want %d (exactly the non-dropped events)", got, st.Ingested)
	}
}

func TestJSONLFirehose(t *testing.T) {
	const total = 30
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		fmt.Fprintf(w, "{not json}\n")                    // malformed
		fmt.Fprintf(w, "%s\n", strings.Repeat("y", 8192)) // oversized
		for id := int64(1); id <= total; id++ {
			fmt.Fprintf(w, "%s\n", postJSON(id))
		}
		fl.Flush()
		<-r.Context().Done()
	}))
	t.Cleanup(srv.Close)

	hs := newTestStream(t)
	c := newTestConnector(t, srv.URL, hs, func(cfg *connector.Config) {
		cfg.Format = connector.JSONL
		cfg.MaxEventBytes = 4096
	})
	stop := runConnector(t, c)

	waitFor(t, "all posts ingested", func() bool { return c.Stats().Ingested == total })
	stop()

	st := c.Stats()
	if st.Malformed != 1 || st.Oversized != 1 {
		t.Errorf("malformed = %d oversized = %d, want 1 and 1", st.Malformed, st.Oversized)
	}
	if got := flushedElements(t, hs); got != total {
		t.Errorf("stream elements = %d, want %d", got, total)
	}
}
