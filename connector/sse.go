package connector

import (
	"bufio"
	"bytes"
	"io"
)

// frameReader yields complete upstream events from one connection's body.
// Next returns io.EOF when the stream ends cleanly; any other error means
// the connection died (the caller reconnects and resumes). A partial event
// accumulated when the stream dies is discarded without advancing the
// resume cursor, so the upstream re-delivers it after reconnect.
type frameReader interface {
	Next() (Event, error)
}

// lineReader reads newline-terminated lines with a hard per-line byte cap.
// Lines over the cap are consumed to their terminator and reported as
// truncated rather than returned partially — the connector skips them
// instead of decoding garbage or buffering without bound.
type lineReader struct {
	br  *bufio.Reader
	max int
}

func newLineReader(r io.Reader, max int) *lineReader {
	bufSize := 4096
	if max < bufSize {
		bufSize = max + 1
	}
	return &lineReader{br: bufio.NewReaderSize(r, bufSize), max: max}
}

// next returns one line without its terminator. truncated means the line
// exceeded max bytes; its content is discarded but the stream position is
// past its newline, so reading can continue.
func (lr *lineReader) next() (line []byte, truncated bool, err error) {
	n := 0
	for {
		chunk, err := lr.br.ReadSlice('\n')
		n += len(chunk)
		switch err {
		case nil:
			if n > lr.max+1 { // +1: the terminator itself
				return nil, true, nil
			}
			line = append(line, chunk...)
			// Trim \n and a preceding \r (SSE allows CRLF).
			line = line[:len(line)-1]
			line = bytes.TrimSuffix(line, []byte{'\r'})
			return line, false, nil
		case bufio.ErrBufferFull:
			if n > lr.max {
				// Oversized: drain to the newline, then report truncation.
				for {
					_, derr := lr.br.ReadSlice('\n')
					if derr == nil {
						return nil, true, nil
					}
					if derr != bufio.ErrBufferFull {
						return nil, true, derr
					}
				}
			}
			line = append(line, chunk...)
		default:
			if len(chunk) > 0 || len(line) > 0 {
				// Stream died mid-line: a truncated frame. Surface the
				// error; the partial content is never delivered.
				return nil, true, errTruncated{err}
			}
			return nil, false, err
		}
	}
}

// errTruncated wraps the transport error that cut a line short, so callers
// can distinguish "clean EOF" from "died mid-frame".
type errTruncated struct{ err error }

func (e errTruncated) Error() string { return "connector: stream truncated mid-line: " + e.err.Error() }
func (e errTruncated) Unwrap() error { return e.err }

// sseReader parses text/event-stream frames: "field: value" lines
// accumulated until a blank line dispatches the event. Per the SSE spec
// the id field is sticky across events; comment lines (leading ':') are
// heartbeats and ignored. Unknown fields are ignored per spec; lines with
// no colon that match no field name are counted malformed. Events whose
// accumulated data exceeds the byte cap are counted oversized and skipped
// in-stream — no reconnect, the frame boundary (blank line) resynchronizes
// the parser.
type sseReader struct {
	lr          *lineReader
	maxBytes    int
	onOversized func()
	onMalformed func()

	id      string // sticky last-seen id
	typ     string
	data    [][]byte
	size    int
	poison  bool // current event had an oversized line/payload: skip it
	poisonM bool // current event had a malformed line (count once at dispatch)
}

func newSSEReader(r io.Reader, maxBytes int, onOversized, onMalformed func()) *sseReader {
	return &sseReader{
		lr:          newLineReader(r, maxBytes),
		maxBytes:    maxBytes,
		onOversized: onOversized,
		onMalformed: onMalformed,
	}
}

func (sr *sseReader) reset() {
	sr.typ = ""
	sr.data = sr.data[:0]
	sr.size = 0
	sr.poison = false
	sr.poisonM = false
}

func (sr *sseReader) Next() (Event, error) {
	for {
		line, truncated, err := sr.lr.next()
		if err != nil {
			// Partial event at stream end is discarded: the cursor never
			// advanced past it, resume re-delivers it.
			sr.reset()
			return Event{}, err
		}
		if truncated {
			sr.poison = true
			continue
		}
		if len(line) == 0 {
			// Dispatch boundary.
			if sr.poison {
				sr.onOversized()
				sr.reset()
				continue
			}
			if len(sr.data) == 0 {
				if sr.poisonM {
					sr.onMalformed()
				}
				sr.reset()
				continue
			}
			ev := Event{
				ID:   sr.id,
				Type: sr.typ,
				Data: bytes.Join(sr.data, []byte{'\n'}),
			}
			sr.reset()
			return ev, nil
		}
		if line[0] == ':' { // comment / heartbeat
			continue
		}
		field, value := splitField(line)
		switch field {
		case "data":
			sr.size += len(value) + 1
			if sr.size > sr.maxBytes {
				sr.poison = true
				continue
			}
			sr.data = append(sr.data, append([]byte(nil), value...))
		case "event":
			sr.typ = string(value)
		case "id":
			// Per spec, ids containing NUL are ignored.
			if !bytes.ContainsRune(value, 0) {
				sr.id = string(value)
			}
		case "retry":
			// Server-suggested reconnect delay; our backoff policy governs.
		default:
			sr.poisonM = true
		}
	}
}

// splitField splits "field: value", trimming the single optional space
// after the colon per the SSE spec. A line without a colon is a field with
// an empty value.
func splitField(line []byte) (string, []byte) {
	i := bytes.IndexByte(line, ':')
	if i < 0 {
		return string(line), nil
	}
	value := line[i+1:]
	if len(value) > 0 && value[0] == ' ' {
		value = value[1:]
	}
	return string(line[:i]), value
}
