package connector

import "io"

// jsonlReader parses newline-delimited JSON: each non-empty line is one
// event's payload. There is no protocol-level event id or type; the
// mapper derives identity from the decoded post. Oversized lines are
// counted and skipped without losing frame sync (the newline resyncs).
type jsonlReader struct {
	lr          *lineReader
	onOversized func()
}

func newJSONLReader(r io.Reader, maxBytes int, onOversized func()) *jsonlReader {
	return &jsonlReader{lr: newLineReader(r, maxBytes), onOversized: onOversized}
}

func (jr *jsonlReader) Next() (Event, error) {
	for {
		line, truncated, err := jr.lr.next()
		if err != nil {
			return Event{}, err
		}
		if truncated {
			jr.onOversized()
			continue
		}
		if len(line) == 0 {
			continue
		}
		return Event{Data: append([]byte(nil), line...)}, nil
	}
}
