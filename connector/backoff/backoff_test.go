package backoff

import (
	"context"
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2, Exact: true}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := p.Delay(-3); got != 10*time.Millisecond {
		t.Errorf("Delay(-3) = %v, want clamp to attempt 0", got)
	}
}

func TestJitterStaysWithinFraction(t *testing.T) {
	p := Policy{Initial: 100 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.25}
	lo := time.Duration(float64(100*time.Millisecond) * 0.75)
	hi := time.Duration(float64(100*time.Millisecond) * 1.25)
	varied := false
	first := p.Delay(0)
	for i := 0; i < 200; i++ {
		d := p.Delay(0)
		if d < lo || d > hi {
			t.Fatalf("jittered Delay(0) = %v outside [%v, %v]", d, lo, hi)
		}
		if d != first {
			varied = true
		}
	}
	if !varied {
		t.Error("200 jittered delays were all identical; jitter not applied")
	}
}

func TestZeroValueUsesDefaults(t *testing.T) {
	var p Policy
	d0 := p.Delay(0)
	if d0 < time.Duration(float64(DefaultInitial)*(1-DefaultJitter)) ||
		d0 > time.Duration(float64(DefaultInitial)*(1+DefaultJitter)) {
		t.Errorf("zero-value Delay(0) = %v, want ~%v", d0, DefaultInitial)
	}
	if d := p.Delay(1000); d > time.Duration(float64(DefaultMax)*(1+DefaultJitter)) {
		t.Errorf("zero-value Delay(1000) = %v exceeds jittered max", d)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	p := Policy{Initial: 10 * time.Second, Exact: true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := p.Sleep(ctx, 0); err != context.Canceled {
		t.Fatalf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("Sleep did not return promptly on cancelled context")
	}
}

func TestSleepCompletes(t *testing.T) {
	p := Policy{Initial: time.Millisecond, Exact: true}
	if err := p.Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep = %v", err)
	}
}
