// Package backoff implements the jittered exponential retry policy the
// firehose connector (package connector) uses between reconnect attempts,
// factored out so other long-lived consumers — the client SDK's resuming
// SSE subscription, custom ingestion daemons — share one tested policy
// instead of hand-rolling sleeps.
//
// A Policy is a value, not a state machine: Delay(attempt) is a pure
// function of the attempt number (plus jitter), so callers own the attempt
// counter and decide when progress resets it.
package backoff

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Default policy constants.
const (
	DefaultInitial    = 100 * time.Millisecond
	DefaultMax        = 30 * time.Second
	DefaultMultiplier = 2.0
	DefaultJitter     = 0.25
)

// Policy is a jittered exponential backoff: attempt n (0-based) waits
// Initial×Multiplier^n, capped at Max, with a uniformly random ±Jitter
// fraction applied so a herd of consumers reconnecting after one upstream
// outage spreads out instead of stampeding in lockstep.
//
// The zero value is usable and means the Default* constants.
type Policy struct {
	// Initial is the delay before the first retry (attempt 0).
	Initial time.Duration
	// Max caps the exponential growth.
	Max time.Duration
	// Multiplier is the per-attempt growth factor (values ≤ 1 mean the
	// default).
	Multiplier float64
	// Jitter is the ± fraction of randomization applied to each delay, in
	// [0,1). Negative means the default; 0 is valid (no jitter) when set
	// alongside a non-zero Initial — use Exact for that.
	Jitter float64
	// Exact disables jitter entirely (deterministic delays, for tests).
	Exact bool
}

// rngMu guards the package rng: Delay may be called from any number of
// consumer goroutines.
var (
	rngMu sync.Mutex
	rng   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func (p Policy) withDefaults() Policy {
	if p.Initial <= 0 {
		p.Initial = DefaultInitial
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Multiplier <= 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = DefaultJitter
	}
	if p.Max < p.Initial {
		p.Max = p.Initial
	}
	return p
}

// Delay returns the wait before retry number attempt (0-based). Negative
// attempts are treated as 0.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(p.Initial)
	cap := float64(p.Max)
	for i := 0; i < attempt && d < cap; i++ {
		d *= p.Multiplier
	}
	if d > cap {
		d = cap
	}
	if !p.Exact && p.Jitter > 0 {
		rngMu.Lock()
		f := 1 + p.Jitter*(2*rng.Float64()-1)
		rngMu.Unlock()
		d *= f
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Sleep waits Delay(attempt) or until ctx is done, whichever comes first,
// returning ctx.Err() in the latter case.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.Delay(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
