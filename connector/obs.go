package connector

import "github.com/social-streams/ksir/internal/metrics"

// Connector observability (DESIGN.md §14). Families aggregate over every
// connector in the process; per-connector breakdowns come from
// Connector.Stats.
var (
	obsEvents = metrics.NewCounter("ksir_connector_events_total",
		"Complete frames received from firehose upstreams.")
	obsIngested = metrics.NewCounter("ksir_connector_posts_ingested_total",
		"Posts accepted into streams by connectors.")
	obsReconnects = metrics.NewCounter("ksir_connector_reconnects_total",
		"Connection attempts after the first (including failed dials).")
	obsDropped = metrics.NewCounter("ksir_connector_dropped_total",
		"Events shed from full bounded buffers (oldest-first).")
	obsDuplicates = metrics.NewCounter("ksir_connector_duplicates_total",
		"Replayed events suppressed by the resume dedupe window.")
	obsRejected = metrics.NewCounter("ksir_connector_posts_rejected_total",
		"Posts the stream refused (out-of-order or duplicate in window).")
	obsMalformed = metrics.NewCounter("ksir_connector_malformed_total",
		"Undecodable frames and mapper failures, skipped in-stream.")
	obsOversized = metrics.NewCounter("ksir_connector_oversized_total",
		"Frames over MaxEventBytes, skipped without reconnecting.")
	obsResumeGaps = metrics.NewCounter("ksir_connector_resume_gaps_total",
		"Reconnects whose first event id skipped past the resume cursor.")
	obsResumeMissed = metrics.NewCounter("ksir_connector_resume_missed_events_total",
		"Event ids skipped across resume gaps (events lost upstream).")
	obsBatchSize = metrics.NewHistogram("ksir_connector_batch_size",
		"Posts per connector ingest batch.", 1,
		[]uint64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	obsIngestDur = metrics.NewDurationHistogram("ksir_connector_ingest_duration_seconds",
		"Latency of one connector batch through AddBatch (queue + commit).",
		metrics.DefBuckets...)
)
