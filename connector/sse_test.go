package connector

import (
	"io"
	"strings"
	"testing"
)

func collectEvents(t *testing.T, input string, max int) (evs []Event, oversized, malformed int) {
	t.Helper()
	sr := newSSEReader(strings.NewReader(input), max,
		func() { oversized++ }, func() { malformed++ })
	for {
		ev, err := sr.Next()
		if err == io.EOF {
			return evs, oversized, malformed
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		evs = append(evs, ev)
	}
}

func TestSSEReaderFrames(t *testing.T) {
	input := "retry: 1000\n\n" + // ignored field
		": heartbeat comment\n\n" + // comment frame, no event
		"event: post\r\nid: 7\r\ndata: hello\ndata: world\n\n" + // CRLF + multi-line data
		"data: solo\n\n" + // id is sticky: still 7
		"not a known field line\n\n" + // malformed frame
		"id: bad\x00nul\ndata: x\n\n" // NUL in id: id ignored, event kept

	evs, oversized, malformed := collectEvents(t, input, 4096)
	if len(evs) != 3 {
		t.Fatalf("events = %d (%+v), want 3", len(evs), evs)
	}
	if evs[0].ID != "7" || evs[0].Type != "post" || string(evs[0].Data) != "hello\nworld" {
		t.Errorf("ev0 = %+v", evs[0])
	}
	if evs[1].ID != "7" || evs[1].Type != "" || string(evs[1].Data) != "solo" {
		t.Errorf("ev1 = %+v: id must be sticky across events", evs[1])
	}
	if evs[2].ID != "7" || string(evs[2].Data) != "x" {
		t.Errorf("ev2 = %+v: NUL id must be ignored", evs[2])
	}
	if oversized != 0 || malformed != 1 {
		t.Errorf("oversized = %d malformed = %d, want 0 and 1", oversized, malformed)
	}
}

func TestSSEReaderOversizedResynchronizes(t *testing.T) {
	input := "data: " + strings.Repeat("a", 500) + "\n\n" + // oversized line
		"data: ok\n\n" +
		"data: b\ndata: " + strings.Repeat("c", 200) + "\ndata: d\n\n" + // accumulated > max
		"data: fine\n\n"
	evs, oversized, _ := collectEvents(t, input, 128)
	if len(evs) != 2 || string(evs[0].Data) != "ok" || string(evs[1].Data) != "fine" {
		t.Fatalf("events = %+v, want exactly the two small ones", evs)
	}
	if oversized != 2 {
		t.Errorf("oversized = %d, want 2", oversized)
	}
}

func TestSSEReaderTruncatedTailDiscarded(t *testing.T) {
	sr := newSSEReader(strings.NewReader("id: 3\ndata: full\n\nid: 4\ndata: par"), 4096,
		func() {}, func() {})
	ev, err := sr.Next()
	if err != nil || ev.ID != "3" {
		t.Fatalf("first event: %+v, %v", ev, err)
	}
	if _, err := sr.Next(); err == nil {
		t.Fatal("partial tail frame delivered; must error without dispatching")
	}
}

func TestJSONLReaderSkipsOversized(t *testing.T) {
	input := strings.Repeat("z", 300) + "\n{\"id\":1}\n\n{\"id\":2}\n"
	oversized := 0
	jr := newJSONLReader(strings.NewReader(input), 128, func() { oversized++ })
	var got []string
	for {
		ev, err := jr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(ev.Data))
	}
	if len(got) != 2 || got[0] != `{"id":1}` || got[1] != `{"id":2}` {
		t.Fatalf("lines = %v", got)
	}
	if oversized != 1 {
		t.Errorf("oversized = %d, want 1", oversized)
	}
}
