package connector_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// faultServer is a scriptable SSE firehose for fault-injection tests. It
// owns a fixed log of posts (ids 1..total, one shared timestamp) and
// serves each accepted connection according to the next connPlan in the
// script: stall mid-event, truncate a frame, inject malformed or
// oversized frames, replay across the Last-Event-ID cursor, or skip
// events to fake an upstream resume gap. When the script runs out, every
// further connection gets the default plan: replay the remainder of the
// log from the client's cursor, then hold the connection open.
type faultServer struct {
	t        *testing.T
	total    int64
	overSize int // oversized payload bytes (set above the connector's cap)

	mu      sync.Mutex
	plans   []connPlan
	conns   int
	resumes []int64 // Last-Event-ID per accepted connection

	release chan struct{}
	srv     *httptest.Server
}

// connPlan scripts one connection.
type connPlan struct {
	send       int  // complete events to send; -1 = rest of the log
	replayBack int  // re-send this many events before the resume point
	skip       int  // skip this many events after the resume point (gap)
	malformed  int  // garbage frames before the events
	oversized  int  // oversized frames before the events
	truncate   bool // end by writing a partial frame, then close
	stall      bool // end by writing a partial frame, then hold until release
	hold       bool // after sending, hold the connection open until release
}

func newFaultServer(t *testing.T, total int, plans ...connPlan) *faultServer {
	fs := &faultServer{
		t:        t,
		total:    int64(total),
		overSize: 64 << 10,
		plans:    plans,
		release:  make(chan struct{}),
	}
	fs.srv = httptest.NewServer(http.HandlerFunc(fs.handle))
	t.Cleanup(fs.srv.Close)
	return fs
}

func (fs *faultServer) url() string { return fs.srv.URL }

// releaseAll unblocks every stalled or held connection, once.
func (fs *faultServer) releaseAll() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	select {
	case <-fs.release:
	default:
		close(fs.release)
	}
}

func (fs *faultServer) connCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.conns
}

func (fs *faultServer) resumeCursors() []int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]int64(nil), fs.resumes...)
}

// postJSON is the wire form DecodePost expects; every post shares one
// timestamp so ingestion order never trips the stream's in-order check.
const faultPostTime = 1000

func postJSON(id int64) string {
	return fmt.Sprintf(`{"id":%d,"time":%d,"text":"goal striker keeper league"}`, id, faultPostTime)
}

func (fs *faultServer) handle(w http.ResponseWriter, r *http.Request) {
	var since int64
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		v, err := strconv.ParseInt(lei, 10, 64)
		if err != nil {
			http.Error(w, "bad Last-Event-ID", http.StatusBadRequest)
			return
		}
		since = v
	}

	fs.mu.Lock()
	plan := connPlan{send: -1, hold: true}
	if len(fs.plans) > 0 {
		plan = fs.plans[0]
		fs.plans = fs.plans[1:]
	}
	fs.conns++
	fs.resumes = append(fs.resumes, since)
	release := fs.release
	fs.mu.Unlock()

	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	fl.Flush()

	for i := 0; i < plan.malformed; i++ {
		fmt.Fprintf(w, "this line has no colon and is not a field %d\n\n", i)
	}
	for i := 0; i < plan.oversized; i++ {
		fmt.Fprintf(w, "event: post\ndata: %s\n\n", strings.Repeat("x", fs.overSize))
	}
	if plan.malformed > 0 || plan.oversized > 0 {
		fl.Flush()
	}

	start := since + 1 - int64(plan.replayBack)
	if start < 1 {
		start = 1
	}
	start += int64(plan.skip)
	sent := 0
	for id := start; id <= fs.total; id++ {
		if plan.send >= 0 && sent >= plan.send {
			break
		}
		fmt.Fprintf(w, "id: %d\ndata: %s\n\n", id, postJSON(id))
		fl.Flush()
		sent++
	}

	if plan.truncate || plan.stall {
		next := start + int64(sent)
		// A complete id line, then a data line cut mid-JSON with no
		// dispatch boundary: the classic killed-upstream frame.
		fmt.Fprintf(w, "id: %d\ndata: {\"id\":%d,\"ti", next, next)
		fl.Flush()
		if plan.stall {
			select {
			case <-release:
			case <-r.Context().Done():
			}
		}
		return
	}
	if plan.hold {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}
}
