package connector

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	ksir "github.com/social-streams/ksir"
	"github.com/social-streams/ksir/internal/trace"
)

// wirePost is the JSON shape DecodePost accepts — the api/v1 Post wire
// form, decoded strictly so frames with the wrong shape count as
// malformed instead of silently producing zero-valued posts.
type wirePost struct {
	ID   int64   `json:"id"`
	Time int64   `json:"time"`
	Text string  `json:"text"`
	Refs []int64 `json:"refs"`
}

func (p *wirePost) unmarshal(data []byte) error {
	if err := json.Unmarshal(data, p); err != nil {
		return err
	}
	if p.ID == 0 && p.Text == "" {
		return fmt.Errorf("connector: event is not a post: %.64s", data)
	}
	return nil
}

// ingestLoop drains the bounded buffer into the stream: map each event to
// a post, suppress replayed duplicates, and accumulate a batch that is
// flushed when it reaches MaxBatch, when BatchWindow elapses, or when the
// next post crosses a stream bucket boundary — so one AddBatch call never
// straddles buckets and each batch rides one commit (one WAL append, one
// shared fsync). Exits when the buffer channel closes, flushing the tail.
func (c *Connector) ingestLoop() {
	var pending []ksir.Post
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	bucket := int64(c.hs.Options().Bucket / time.Second)

	flush := func() {
		if len(pending) == 0 {
			return
		}
		c.flushBatch(pending)
		pending = pending[:0]
	}

	for {
		select {
		case ev, ok := <-c.buf:
			if !ok {
				flush()
				return
			}
			post, err := c.cfg.Map(ev)
			if err != nil {
				if err != ErrSkip {
					c.noteMalformed()
					c.log().Debug("connector: dropping malformed event", "error", err)
				}
				continue
			}
			if c.seenBefore(post.ID) {
				c.duplicates.Add(1)
				obsDuplicates.Inc()
				continue
			}
			if len(pending) > 0 && bucket > 0 && post.Time/bucket != pending[0].Time/bucket {
				flush()
			}
			pending = append(pending, post)
			if len(pending) >= c.cfg.MaxBatch {
				flush()
			} else if len(pending) == 1 {
				timer.Reset(c.cfg.BatchWindow)
			}
		case <-timer.C:
			flush()
		}
	}
}

// flushBatch pushes one batch through AddBatchContext under a trace op.
// AddBatch applies the accepted prefix and stops at the first rejected
// post; the connector skips that single post (counted) and continues with
// the remainder, so one out-of-order or in-window-duplicate post never
// discards the events behind it.
func (c *Connector) flushBatch(batch []ksir.Post) {
	op := trace.Start("connector.ingest", c.hs.Name(), trace.SpanContext{})
	ctx := trace.ContextWith(context.Background(), op)
	start := time.Now()
	total := len(batch)
	for len(batch) > 0 {
		accepted, err := c.hs.AddBatchContext(ctx, batch)
		c.batches.Add(1)
		if accepted > 0 {
			c.ingested.Add(int64(accepted))
			obsIngested.Add(uint64(accepted))
		}
		if err == nil {
			break
		}
		if accepted < len(batch) {
			c.rejected.Add(1)
			obsRejected.Inc()
			c.log().Debug("connector: stream rejected post",
				"stream", c.hs.Name(), "post", batch[accepted].ID, "error", err)
			batch = batch[accepted+1:]
			continue
		}
		// All posts applied but the commit itself failed (persistence):
		// nothing left to retry at this layer.
		c.log().Warn("connector: batch commit error", "stream", c.hs.Name(), "error", err)
		break
	}
	obsBatchSize.Observe(uint64(total))
	obsIngestDur.ObserveDuration(time.Since(start))
	op.Annotate(trace.Int("connector.batch", int64(total)))
	op.End()
}
