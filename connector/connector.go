// Package connector ingests a live firehose — an SSE or JSONL-over-HTTP
// feed of posts — into a Hub stream. This is the paper's actual input
// shape (§1: a continuous social stream) that the synthetic generators
// approximate: every benchmark so far fed the engine from a closed loop,
// while a real feed arrives on its own clock, stalls, disconnects, and
// replays.
//
// The connector owns the unreliable half of that contract:
//
//   - Reconnect with jittered exponential backoff (connector/backoff),
//     resuming from the last received event id via the standard SSE
//     Last-Event-ID header.
//   - Bounded buffering between the network reader and the ingest path,
//     with explicit drop accounting — when the stream cannot keep up, the
//     oldest buffered events are shed and counted, never silently.
//   - Dedupe on resume: upstreams replay events at and around the resume
//     cursor; a sliding window of recently seen post IDs guarantees a
//     replayed event is never ingested twice (the stream's own in-window
//     duplicate rejection is the second line of defense).
//   - Time-bucketed batching: buffered posts are grouped so one
//     AddBatchContext call never straddles a stream bucket boundary, and
//     each batch rides one commit (one WAL append, one shared fsync).
//
// Malformed, oversized and truncated frames are counted and skipped —
// a firehose consumer that dies on one bad frame is not a consumer.
// Everything is observable through internal/metrics (ksir_connector_*)
// and per-batch internal/trace spans.
package connector

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ksir "github.com/social-streams/ksir"
	"github.com/social-streams/ksir/connector/backoff"
)

// Format selects the upstream wire format.
type Format int

const (
	// SSE is Server-Sent Events (text/event-stream): events carry an id
	// for Last-Event-ID resume.
	SSE Format = iota
	// JSONL is newline-delimited JSON objects over a streaming HTTP
	// response. There is no protocol-level event id; the resume cursor
	// advances over the decoded post IDs, and a cooperating upstream may
	// honor it from the same Last-Event-ID header.
	JSONL
)

// ParseFormat maps "sse"/"jsonl" to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "sse":
		return SSE, nil
	case "jsonl", "ndjson":
		return JSONL, nil
	}
	return 0, fmt.Errorf("connector: unknown format %q (want sse or jsonl)", s)
}

// Event is one upstream frame, before mapping to a post.
type Event struct {
	// ID is the SSE id field ("" when absent, and for JSONL frames).
	ID string
	// Type is the SSE event name ("" for unnamed events and JSONL).
	Type string
	// Data is the raw event payload (joined data lines for SSE, one line
	// for JSONL).
	Data []byte
}

// MapFunc converts an upstream event into a post. Returning ErrSkip drops
// the event without counting it as malformed (heartbeats, non-post event
// types); any other error counts it as malformed and skips it.
type MapFunc func(Event) (ksir.Post, error)

// ErrSkip is the sentinel a MapFunc returns for events that are valid but
// not posts.
var ErrSkip = errors.New("connector: skip event")

// DecodePost is the default MapFunc: the event data is a JSON post
// {"id":..,"time":..,"text":"..","refs":[..]} (api/v1 Post field names).
func DecodePost(ev Event) (ksir.Post, error) {
	var p wirePost
	if err := p.unmarshal(ev.Data); err != nil {
		return ksir.Post{}, err
	}
	return ksir.Post{ID: p.ID, Time: p.Time, Text: p.Text, Refs: p.Refs}, nil
}

// Config configures a Connector. URL is required; everything else has
// serviceable defaults.
type Config struct {
	// URL is the firehose endpoint.
	URL string
	// Format is the wire format (default SSE).
	Format Format
	// HTTPClient overrides http.DefaultClient (timeouts must not apply to
	// the streaming body; prefer transport-level dial timeouts).
	HTTPClient *http.Client
	// Header is merged into every connect request (auth tokens etc.).
	Header http.Header
	// Backoff is the reconnect policy (zero value = backoff defaults).
	Backoff backoff.Policy
	// LastEventID seeds the resume cursor, resuming a previous
	// connector's position across process restarts.
	LastEventID string
	// MaxEventBytes caps one event's payload (default 1 MiB). Larger
	// frames are counted as oversized and skipped without disconnecting.
	MaxEventBytes int
	// Buffer is the bounded event buffer between the network reader and
	// the ingest path (default 1024). When full, the oldest buffered
	// event is dropped and counted.
	Buffer int
	// MaxBatch caps one AddBatch call (default 256).
	MaxBatch int
	// BatchWindow is how long a partial batch may wait for more events
	// before it is flushed to the stream (default 25ms).
	BatchWindow time.Duration
	// DedupeWindow is how many recently seen post IDs are remembered to
	// suppress replayed events across reconnect/resume (default 8192).
	DedupeWindow int
	// Map converts events to posts (default DecodePost).
	Map MapFunc
	// Logger receives reconnect and skip warnings (nil = slog.Default).
	Logger *slog.Logger
}

func (cfg Config) withDefaults() Config {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxEventBytes <= 0 {
		cfg.MaxEventBytes = 1 << 20
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 25 * time.Millisecond
	}
	if cfg.DedupeWindow <= 0 {
		cfg.DedupeWindow = 8192
	}
	if cfg.Map == nil {
		cfg.Map = DecodePost
	}
	return cfg
}

// Stats is a point-in-time snapshot of one connector's counters. The
// conservation law Events == Ingested + Duplicates + Rejected + Dropped +
// Malformed holds once the connector is idle (in flight, events may sit in
// the buffer or a pending batch).
type Stats struct {
	// Events counts complete frames received from the upstream.
	Events int64
	// Ingested counts posts accepted by the stream.
	Ingested int64
	// Batches counts AddBatch calls (Ingested/Batches = realized
	// batching).
	Batches int64
	// Duplicates counts events suppressed by the resume dedupe window.
	Duplicates int64
	// Rejected counts posts the stream refused (out-of-order, duplicate
	// in window) — skipped individually, never aborting the batch rest.
	Rejected int64
	// Dropped counts events shed from the full bounded buffer.
	Dropped int64
	// Malformed counts undecodable frames and mapper failures (truncated
	// frames are re-fetched via resume, not counted here).
	Malformed int64
	// Oversized counts frames over MaxEventBytes, skipped in-stream.
	Oversized int64
	// Connects counts connection attempts; Reconnects the ones after the
	// first (including failed attempts).
	Connects   int64
	Reconnects int64
	// ResumeGaps counts reconnects whose first event id skipped past the
	// cursor (upstream lost events we can never fetch); ResumeMissed sums
	// the skipped ids. Both need numeric event ids.
	ResumeGaps   int64
	ResumeMissed int64
	// LastEventID is the current resume cursor.
	LastEventID string
}

// Connector consumes one firehose into one stream. Create with New, drive
// with Run.
type Connector struct {
	cfg Config
	hs  *ksir.StreamHandle
	buf chan Event

	cursorMu sync.Mutex
	cursor   string

	// seen is the dedupe window: ring of the last DedupeWindow post IDs.
	seenMu   sync.Mutex
	seenSet  map[int64]struct{}
	seenRing []int64
	seenAt   int

	events, ingested, batches     atomic.Int64
	duplicates, rejected, dropped atomic.Int64
	malformed, oversized          atomic.Int64
	connects, reconnects          atomic.Int64
	resumeGaps, resumeMissed      atomic.Int64
}

// New builds a connector feeding hs from cfg.URL. The stream handle must
// stay open for the connector's lifetime; Run returns once ctx ends.
func New(cfg Config, hs *ksir.StreamHandle) (*Connector, error) {
	if cfg.URL == "" {
		return nil, errors.New("connector: Config.URL is required")
	}
	if hs == nil {
		return nil, errors.New("connector: nil stream handle")
	}
	cfg = cfg.withDefaults()
	c := &Connector{
		cfg:      cfg,
		hs:       hs,
		buf:      make(chan Event, cfg.Buffer),
		seenSet:  make(map[int64]struct{}, cfg.DedupeWindow),
		seenRing: make([]int64, 0, cfg.DedupeWindow),
		cursor:   cfg.LastEventID,
	}
	return c, nil
}

// Stats snapshots the connector's counters.
func (c *Connector) Stats() Stats {
	return Stats{
		Events:       c.events.Load(),
		Ingested:     c.ingested.Load(),
		Batches:      c.batches.Load(),
		Duplicates:   c.duplicates.Load(),
		Rejected:     c.rejected.Load(),
		Dropped:      c.dropped.Load(),
		Malformed:    c.malformed.Load(),
		Oversized:    c.oversized.Load(),
		Connects:     c.connects.Load(),
		Reconnects:   c.reconnects.Load(),
		ResumeGaps:   c.resumeGaps.Load(),
		ResumeMissed: c.resumeMissed.Load(),
		LastEventID:  c.LastEventID(),
	}
}

// LastEventID returns the resume cursor — persist it to resume a future
// connector (Config.LastEventID) across process restarts.
func (c *Connector) LastEventID() string {
	c.cursorMu.Lock()
	defer c.cursorMu.Unlock()
	return c.cursor
}

func (c *Connector) setCursor(id string) {
	c.cursorMu.Lock()
	c.cursor = id
	c.cursorMu.Unlock()
}

func (c *Connector) log() *slog.Logger {
	if c.cfg.Logger != nil {
		return c.cfg.Logger
	}
	return slog.Default()
}

// Run consumes the firehose until ctx is done, then flushes any pending
// batch and returns ctx.Err(). It never returns early: connection
// failures, bad frames and upstream restarts are absorbed by
// reconnect/backoff and the skip counters.
func (c *Connector) Run(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.ingestLoop()
	}()
	c.readLoop(ctx)
	close(c.buf)
	<-done
	return ctx.Err()
}

// readLoop owns the connection: connect (with the resume cursor), consume
// frames into the bounded buffer, and on any end — error, EOF, upstream
// close — reconnect with backoff. An attempt that delivered at least one
// event resets the backoff clock.
func (c *Connector) readLoop(ctx context.Context) {
	attempt := 0
	for ctx.Err() == nil {
		if c.connects.Add(1) > 1 {
			c.reconnects.Add(1)
			obsReconnects.Inc()
		}
		n, err := c.consumeOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			c.log().Debug("connector: connection ended", "url", c.cfg.URL, "events", n, "error", err)
		}
		if n > 0 {
			attempt = 0
		}
		if c.cfg.Backoff.Sleep(ctx, attempt) != nil {
			return
		}
		attempt++
	}
}

// consumeOnce dials the upstream once and consumes its stream until it
// ends, returning how many complete events were delivered.
func (c *Connector) consumeOnce(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.URL, nil)
	if err != nil {
		return 0, err
	}
	if c.cfg.Format == SSE {
		req.Header.Set("Accept", "text/event-stream")
	} else {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	req.Header.Set("Cache-Control", "no-cache")
	if cur := c.LastEventID(); cur != "" {
		req.Header.Set("Last-Event-ID", cur)
	}
	for k, vs := range c.cfg.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("connector: upstream status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}

	resumedFrom := c.LastEventID()
	var fr frameReader
	if c.cfg.Format == SSE {
		fr = newSSEReader(resp.Body, c.cfg.MaxEventBytes, c.noteOversized, c.noteMalformed)
	} else {
		fr = newJSONLReader(resp.Body, c.cfg.MaxEventBytes, c.noteOversized)
	}
	n := 0
	for {
		ev, err := fr.Next()
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			return n, err
		}
		c.events.Add(1)
		obsEvents.Inc()
		if n == 0 && resumedFrom != "" {
			c.noteResumeGap(resumedFrom, ev.ID)
		}
		n++
		if ev.ID != "" {
			c.setCursor(ev.ID)
		}
		c.push(ev)
	}
}

// push delivers one event into the bounded buffer, shedding the oldest
// buffered event (counted) when full — the stream keeps up or the loss is
// explicit, the reader never blocks the socket into upstream timeouts.
func (c *Connector) push(ev Event) {
	for {
		select {
		case c.buf <- ev:
			return
		default:
		}
		select {
		case <-c.buf:
			c.dropped.Add(1)
			obsDropped.Inc()
		default:
		}
	}
}

// noteResumeGap compares the first event id after a resume against the
// cursor: numeric ids that jump past cursor+1 mean the upstream could not
// replay everything we missed — events lost for good, worth an alert.
func (c *Connector) noteResumeGap(cursor, first string) {
	cur, err1 := strconv.ParseInt(cursor, 10, 64)
	got, err2 := strconv.ParseInt(first, 10, 64)
	if err1 != nil || err2 != nil {
		return
	}
	if got > cur+1 {
		c.resumeGaps.Add(1)
		c.resumeMissed.Add(got - cur - 1)
		obsResumeGaps.Inc()
		obsResumeMissed.Add(uint64(got - cur - 1))
		c.log().Warn("connector: resume gap — upstream skipped events",
			"stream", c.hs.Name(), "cursor", cur, "first", got, "missed", got-cur-1)
	}
}

func (c *Connector) noteOversized() {
	c.oversized.Add(1)
	obsOversized.Inc()
}

func (c *Connector) noteMalformed() {
	c.malformed.Add(1)
	obsMalformed.Inc()
}

// seenBefore records id in the dedupe window, reporting whether it was
// already there. The window is a FIFO ring: the newest DedupeWindow ids
// are remembered, which covers resume replays (bounded overlap around the
// cursor) without growing with the stream.
func (c *Connector) seenBefore(id int64) bool {
	c.seenMu.Lock()
	defer c.seenMu.Unlock()
	if _, ok := c.seenSet[id]; ok {
		return true
	}
	if len(c.seenRing) < cap(c.seenRing) {
		c.seenRing = append(c.seenRing, id)
	} else {
		delete(c.seenSet, c.seenRing[c.seenAt])
		c.seenRing[c.seenAt] = id
		c.seenAt = (c.seenAt + 1) % cap(c.seenRing)
	}
	c.seenSet[id] = struct{}{}
	return false
}
