package ksir

import (
	"fmt"
	"testing"
	"time"
)

// benchModel caches one trained model across the persistence benchmarks
// (training dominates setup otherwise).
var benchModelOnce struct {
	m   *Model
	err error
}

func benchPersistModel(b *testing.B) *Model {
	b.Helper()
	if benchModelOnce.m == nil && benchModelOnce.err == nil {
		benchModelOnce.m, benchModelOnce.err = TrainModel(corpus(200),
			WithTopics(2), WithIterations(40), WithSeed(1), WithPriors(0.5, 0.01))
	}
	if benchModelOnce.err != nil {
		b.Fatal(benchModelOnce.err)
	}
	return benchModelOnce.m
}

func benchPosts(n int) []Post {
	return genPosts(n, 7)
}

// BenchmarkWALAppend measures the durability overhead on the ingest hot
// path: one accepted post = one in-memory Add + one WAL record, under
// each fsync policy, with the in-memory hub as the zero-overhead
// baseline. (fsync=always is bounded by the device's flush latency; the
// other policies should track the baseline closely.)
func BenchmarkWALAppend(b *testing.B) {
	model := benchPersistModel(b)
	opts := Options{Window: time.Hour, Bucket: time.Minute, Eta: 5}
	run := func(b *testing.B, hs *StreamHandle) {
		b.Helper()
		posts := benchPosts(2048)
		b.ReportAllocs()
		b.ResetTimer()
		ts := int64(0)
		for i := 0; i < b.N; i++ {
			p := posts[i%len(posts)]
			p.ID = int64(i + 1)
			p.Time += ts
			if i%len(posts) == len(posts)-1 {
				ts += posts[len(posts)-1].Time // keep time monotone across laps
			}
			if err := hs.Add(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline-memory", func(b *testing.B) {
		hub := NewHub()
		hs, err := hub.Create("bench", model, opts)
		if err != nil {
			b.Fatal(err)
		}
		run(b, hs)
	})
	for _, policy := range []FsyncPolicy{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run("fsync-"+policy.String(), func(b *testing.B) {
			hub, err := OpenHub(b.TempDir(), model, PersistOptions{Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			hs, err := hub.Create("bench", model, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer hub.CloseAll()
			run(b, hs)
		})
	}
}

// BenchmarkRecovery measures OpenHub over a crashed directory, by window
// size: checkpoint-restore time scales with the live state, WAL-tail
// replay with the records since the last checkpoint.
func BenchmarkRecovery(b *testing.B) {
	model := benchPersistModel(b)
	opts := Options{Window: time.Hour, Bucket: time.Minute, Eta: 5}
	for _, n := range []int{500, 2000, 8000} {
		for _, mode := range []string{"wal-only", "checkpointed"} {
			b.Run(fmt.Sprintf("%s/elements=%d", mode, n), func(b *testing.B) {
				dir := b.TempDir()
				po := PersistOptions{Fsync: FsyncNever, CheckpointEvery: 1 << 30}
				hub, err := OpenHub(dir, model, po)
				if err != nil {
					b.Fatal(err)
				}
				hs, err := hub.Create("bench", model, opts)
				if err != nil {
					b.Fatal(err)
				}
				for i, p := range benchPosts(n) {
					p.ID = int64(i + 1)
					if err := hs.Add(p); err != nil {
						b.Fatal(err)
					}
				}
				if mode == "checkpointed" {
					if _, err := hs.Checkpoint(); err != nil {
						b.Fatal(err)
					}
				}
				// Crash: the hub is abandoned, not closed.
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h2, err := OpenHub(dir, model, po)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					hs2, err := h2.Get("bench")
					if err != nil || hs2.Stats().Elements == 0 {
						b.Fatalf("recovery lost the stream: %v", err)
					}
					// Release the WAL handle without Close's final
					// checkpoint: the directory must stay byte-identical
					// for the next iteration.
					_ = hs2.pers.releaseWAL()
					b.StartTimer()
				}
			})
		}
	}
}
