package ksir

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Subscription is a standing (continuous) k-SIR query: the stream re-runs
// it as the window slides and reports each refresh to the handler. This is
// the publish/subscribe deployment mode the related work targets [9, 28]
// lifted onto representative results: "keep me posted with the k most
// representative posts about X".
type Subscription struct {
	id      int64
	ctx     context.Context
	query   Query
	every   time.Duration
	handler func(Result)
	// onError receives this subscription's refresh failures; when nil they
	// fall through to the stream-wide WithSubscriptionErrorHandler hook.
	onError func(error)
	nextAt  int64 // stream time of the next refresh
	// changedOnly suppresses refreshes whose result set is identical to
	// the previous one.
	changedOnly bool
	lastIDs     string
	failures    atomic.Int64
	// gone is set by Unsubscribe so an in-flight fireSubscriptions sweep
	// (which iterates a snapshot of the registration list) skips a
	// subscription removed re-entrantly by another handler.
	gone atomic.Bool
}

// ID returns the subscription's stream-unique identifier.
func (sub *Subscription) ID() int64 { return sub.id }

// Failures returns how many refreshes of this subscription have errored.
// Failed refreshes are isolated (they never abort ingestion) and retried
// at the next interval.
func (sub *Subscription) Failures() int64 { return sub.failures.Load() }

// SubscribeOption configures a Subscription.
type SubscribeOption func(*Subscription)

// OnlyOnChange suppresses refreshes whose result posts are unchanged.
func OnlyOnChange() SubscribeOption {
	return func(s *Subscription) { s.changedOnly = true }
}

// OnError installs a per-subscription error hook. A refresh that fails
// reports here (or, without this option, to the stream's
// WithSubscriptionErrorHandler hook) and is dropped; ingestion continues
// and the other subscriptions still fire.
func OnError(h func(error)) SubscribeOption {
	return func(s *Subscription) { s.onError = h }
}

// Subscribe registers a standing query re-evaluated every `every` of stream
// time, starting at the next bucket boundary. The handler runs synchronously
// inside Add/Flush (keep it fast; hand off to a channel for slow consumers).
//
// The context bounds the subscription's lifetime: once ctx is done the
// subscription stops firing and is removed at the next bucket boundary (a
// nil ctx means "until Unsubscribe"). Each delivered Result carries the
// bucket sequence it was computed at in Result.Bucket.
//
// A refresh that fails does not abort the Add/Flush that triggered it: the
// error is reported through the OnError hook (falling back to the stream's
// WithSubscriptionErrorHandler) and counted in Failures.
//
// Subscribe and Unsubscribe are writer-side operations: call them from the
// ingest goroutine, or go through a Hub handle, which serializes them with
// Add/Flush.
func (s *Stream) Subscribe(ctx context.Context, q Query, every time.Duration, handler func(Result), opts ...SubscribeOption) (*Subscription, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.K <= 0 {
		return nil, fmt.Errorf("%w: needs K > 0", ErrBadSubscription)
	}
	if len(q.Keywords) == 0 && len(q.Vector) == 0 {
		return nil, fmt.Errorf("%w: needs Keywords or Vector", ErrBadSubscription)
	}
	if every < s.opts.Bucket {
		return nil, fmt.Errorf("%w: refresh interval %v shorter than the bucket %v (results only change per bucket)", ErrBadSubscription, every, s.opts.Bucket)
	}
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrBadSubscription)
	}
	s.subSeq++
	sub := &Subscription{
		id:      s.subSeq,
		ctx:     ctx,
		query:   q,
		every:   every,
		handler: handler,
		nextAt:  int64(s.me.Load().engine.Now()) + int64(every/time.Second),
	}
	for _, opt := range opts {
		opt(sub)
	}
	s.subs = append(s.subs, sub)
	s.nsubs.Store(int64(len(s.subs)))
	return sub, nil
}

// Unsubscribe removes a standing query. It is a no-op for an unknown or
// already-removed subscription. Like Subscribe it is a writer-side
// operation, and it is safe to call from inside a subscription handler
// (e.g. a one-shot query unsubscribing itself).
func (s *Stream) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	for i, cur := range s.subs {
		if cur.id == sub.id {
			cur.gone.Store(true)
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			s.nsubs.Store(int64(len(s.subs)))
			return
		}
	}
}

// Subscriptions returns the number of standing queries. Safe to call
// concurrently with ingestion.
func (s *Stream) Subscriptions() int { return int(s.nsubs.Load()) }

// fireSubscriptions runs every due standing query after the window advanced
// to stream time now. Subscriber failures are isolated: a refresh that
// errors is reported to its hook and skipped, never aborting the ingest
// that triggered it or starving the remaining subscriptions. Subscriptions
// whose context is done are dropped.
//
// The sweep iterates a snapshot of the registration list, so handlers may
// re-entrantly Subscribe (the new subscription starts firing next bucket)
// or Unsubscribe (the gone flag keeps this sweep from firing it).
func (s *Stream) fireSubscriptions(now int64) {
	if len(s.subs) == 0 {
		return
	}
	subs := append([]*Subscription(nil), s.subs...)
	var expired []*Subscription
	for _, sub := range subs {
		if sub.gone.Load() {
			continue // unsubscribed re-entrantly during this sweep
		}
		if sub.ctx.Err() != nil {
			expired = append(expired, sub) // context done: auto-unsubscribe
			continue
		}
		if now < sub.nextAt {
			continue
		}
		// Advance in whole intervals so a long gap fires once, not per
		// missed interval — and so a failing query retries at the next
		// interval instead of every bucket.
		step := int64(sub.every / time.Second)
		for sub.nextAt <= now {
			sub.nextAt += step
		}
		res, err := s.Query(sub.ctx, sub.query)
		if err != nil {
			// A context cancelled mid-refresh is a normal shutdown (e.g.
			// an SSE client disconnecting), not a refresh failure: drop
			// the subscription like the expired path, without counting.
			if sub.ctx.Err() != nil {
				expired = append(expired, sub)
				continue
			}
			sub.failures.Add(1)
			s.reportSubError(sub, err)
			continue
		}
		if sub.changedOnly {
			ids := fmt.Sprint(resultIDs(res))
			if ids == sub.lastIDs {
				continue
			}
			sub.lastIDs = ids
		}
		sub.handler(res)
	}
	for _, sub := range expired {
		s.Unsubscribe(sub)
	}
}

// reportSubError routes one refresh failure to the most specific hook.
func (s *Stream) reportSubError(sub *Subscription, err error) {
	err = fmt.Errorf("ksir: subscription %d: %w", sub.id, err)
	switch {
	case sub.onError != nil:
		sub.onError(err)
	case s.cfg.onSubError != nil:
		s.cfg.onSubError(sub, err)
	}
}

func resultIDs(res Result) []int64 {
	ids := make([]int64, len(res.Posts))
	for i, p := range res.Posts {
		ids[i] = p.ID
	}
	return ids
}
