package ksir

import (
	"fmt"
	"time"
)

// Subscription is a standing (continuous) k-SIR query: the stream re-runs
// it as the window slides and reports each refresh to the handler. This is
// the publish/subscribe deployment mode the related work targets [9, 28]
// lifted onto representative results: "keep me posted with the k most
// representative posts about X".
type Subscription struct {
	id      int64
	query   Query
	every   time.Duration
	handler func(Result)
	nextAt  int64 // stream time of the next refresh
	// changedOnly suppresses refreshes whose result set is identical to
	// the previous one.
	changedOnly bool
	lastIDs     string
}

// SubscribeOption configures a Subscription.
type SubscribeOption func(*Subscription)

// OnlyOnChange suppresses refreshes whose result posts are unchanged.
func OnlyOnChange() SubscribeOption {
	return func(s *Subscription) { s.changedOnly = true }
}

// Subscribe registers a standing query re-evaluated every `every` of stream
// time, starting at the next bucket boundary. The handler runs synchronously
// inside Add/Flush (keep it fast; hand off to a channel for slow consumers).
// It returns the subscription, which can be passed to Unsubscribe.
func (s *Stream) Subscribe(q Query, every time.Duration, handler func(Result), opts ...SubscribeOption) (*Subscription, error) {
	if q.K <= 0 {
		return nil, fmt.Errorf("ksir: subscription needs K > 0")
	}
	if len(q.Keywords) == 0 && len(q.Vector) == 0 {
		return nil, fmt.Errorf("ksir: subscription needs Keywords or Vector")
	}
	if every < s.opts.Bucket {
		return nil, fmt.Errorf("ksir: refresh interval %v shorter than the bucket %v (results only change per bucket)", every, s.opts.Bucket)
	}
	if handler == nil {
		return nil, fmt.Errorf("ksir: nil handler")
	}
	s.subSeq++
	sub := &Subscription{
		id:      s.subSeq,
		query:   q,
		every:   every,
		handler: handler,
		nextAt:  int64(s.me.Load().engine.Now()) + int64(every/time.Second),
	}
	for _, opt := range opts {
		opt(sub)
	}
	s.subs = append(s.subs, sub)
	return sub, nil
}

// Unsubscribe removes a standing query. It is a no-op for an unknown or
// already-removed subscription.
func (s *Stream) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	for i, cur := range s.subs {
		if cur.id == sub.id {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			return
		}
	}
}

// Subscriptions returns the number of standing queries.
func (s *Stream) Subscriptions() int { return len(s.subs) }

// fireSubscriptions runs every due standing query after the window advanced
// to stream time now.
func (s *Stream) fireSubscriptions(now int64) error {
	for _, sub := range s.subs {
		if now < sub.nextAt {
			continue
		}
		res, err := s.Query(sub.query)
		if err != nil {
			return fmt.Errorf("ksir: subscription %d: %w", sub.id, err)
		}
		// Advance in whole intervals so a long gap fires once, not per
		// missed interval.
		step := int64(sub.every / time.Second)
		for sub.nextAt <= now {
			sub.nextAt += step
		}
		if sub.changedOnly {
			ids := fmt.Sprint(resultIDs(res))
			if ids == sub.lastIDs {
				continue
			}
			sub.lastIDs = ids
		}
		sub.handler(res)
	}
	return nil
}

func resultIDs(res Result) []int64 {
	ids := make([]int64, len(res.Posts))
	for i, p := range res.Posts {
		ids[i] = p.ID
	}
	return ids
}
