package ksir_test

// Runnable godoc examples for the Hub lifecycle: open, ingest, query,
// subscribe. They are compile-checked by `go test` (no Output comments:
// training a topic model is too slow for the example runner) and kept in
// sync with the real API by the build.

import (
	"context"
	"fmt"
	"log"
	"time"

	ksir "github.com/social-streams/ksir"
)

// corpus stands in for the historical texts a deployment trains on.
var corpus = []string{
	"late goal wins the derby",
	"striker signs a new contract",
	"buzzer beater seals the playoffs",
}

// ExampleNewHub registers named streams in an in-memory hub, ingests a
// few posts and answers a k-SIR query. The hub serializes each stream's
// writers internally; queries run lock-free from any goroutine.
func ExampleNewHub() {
	model, err := ksir.TrainModel(corpus, ksir.WithTopics(8))
	if err != nil {
		log.Fatal(err)
	}
	hub := ksir.NewHub()
	defer hub.CloseAll()

	feed, err := hub.Create("feed", model, ksir.Options{Window: 24 * time.Hour, Bucket: 15 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	feed.Add(ksir.Post{ID: 1, Time: 60, Text: "late goal wins the derby"})
	feed.Add(ksir.Post{ID: 2, Time: 70, Text: "keeper saves a penalty", Refs: []int64{1}})
	feed.Flush(900) // close the bucket: everything buffered becomes queryable

	res, err := feed.Query(context.Background(), ksir.Query{K: 5, Keywords: []string{"goal", "derby"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Posts), res.Score, res.Bucket)
}

// ExampleOpenHub opens a durable hub: every accepted post lands in a
// per-stream write-ahead log, state is checkpointed periodically, and a
// crashed process recovers every stream exactly (same top-k, same bucket
// sequence, bit-identical scores) on the next OpenHub.
func ExampleOpenHub() {
	model, err := ksir.TrainModel(corpus, ksir.WithTopics(8))
	if err != nil {
		log.Fatal(err)
	}
	hub, err := ksir.OpenHub("/var/lib/ksir", model, ksir.PersistOptions{
		Fsync:           ksir.FsyncInterval,
		CheckpointEvery: 64, // buckets between automatic checkpoints
	})
	if err != nil {
		log.Fatal(err)
	}
	defer hub.CloseAll() // final checkpoints; state survives for the next OpenHub

	feed, err := hub.Create("feed", model, ksir.Options{Window: 24 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	feed.Add(ksir.Post{ID: 1, Time: 60, Text: "late goal wins the derby"})
}

// ExampleStreamHandle_Query issues queries concurrently with ingestion:
// each query observes exactly one published bucket boundary (reported in
// Result.Bucket) and never blocks behind the writer.
func ExampleStreamHandle_Query() {
	model, err := ksir.TrainModel(corpus, ksir.WithTopics(8))
	if err != nil {
		log.Fatal(err)
	}
	hub := ksir.NewHub()
	defer hub.CloseAll()
	feed, err := hub.Create("feed", model, ksir.Options{})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, err := feed.Query(ctx, ksir.Query{K: 10, Keywords: []string{"playoffs"}, Algorithm: ksir.MTTD})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Posts {
		fmt.Println(p.ID, p.Text)
	}
}

// ExampleStreamHandle_Subscribe registers a standing query: the stream
// re-evaluates it at bucket boundaries and reports refreshes to the
// handler until the context ends. A failing handler is isolated — it
// cannot stall ingestion.
func ExampleStreamHandle_Subscribe() {
	model, err := ksir.TrainModel(corpus, ksir.WithTopics(8))
	if err != nil {
		log.Fatal(err)
	}
	hub := ksir.NewHub()
	defer hub.CloseAll()
	feed, err := hub.Create("feed", model, ksir.Options{})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub, err := feed.Subscribe(ctx,
		ksir.Query{K: 5, Keywords: []string{"soccer", "final"}},
		15*time.Minute,
		func(res ksir.Result) {
			fmt.Println("refresh at bucket", res.Bucket, "score", res.Score)
		},
		ksir.OnlyOnChange(), // suppress refreshes with an unchanged result set
	)
	if err != nil {
		log.Fatal(err)
	}
	defer feed.Unsubscribe(sub)
}
