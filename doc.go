// Package ksir implements Semantic and Influence aware k-Representative
// (k-SIR) queries over social streams, reproducing:
//
//	Yanhao Wang, Yuchen Li, Kian-Lee Tan.
//	"Semantic and Influence aware k-Representative Queries over Social
//	Streams." EDBT 2019, pp. 181–192.
//
// A k-SIR query retrieves, from the elements active in a sliding window
// over a social stream, a set of k elements that together maximize a
// monotone submodular representativeness score: a weighted word-coverage
// semantic score plus a topic-aware, time-critical influence score, both
// computed against a probabilistic topic model and weighted by the user's
// query vector over topics.
//
// The package exposes the full pipeline:
//
//	model, err := ksir.TrainModel(texts, ksir.WithTopics(50))
//	st, err := ksir.New(model, ksir.Options{Window: 24 * time.Hour})
//	st.Add(ksir.Post{ID: 1, Time: now, Text: "...", Refs: []int64{...}})
//	res, err := st.Query(ctx, ksir.Query{K: 10, Keywords: []string{"soccer"}})
//
// Queries are served in real time by the MTTS ((1/2 − ε)-approximate) and
// MTTD ((1 − 1/e − ε)-approximate) algorithms over per-topic ranked lists;
// see internal/core for the algorithms and DESIGN.md for the system map.
//
// For serving many tenants, Hub registers named streams and moves the
// per-stream single-writer discipline into the library; errors.go defines
// the typed error taxonomy (errors.Is against ksir.Err*); Subscribe turns
// a query into a standing query refreshed at bucket boundaries. The
// api/v1 and client packages expose all of it over a versioned REST + SSE
// wire API with a Go SDK.
package ksir
