// Newsfeed: a Twitter-like scenario. Thousands of short posts about several
// concurrent stories flow through a sliding window with retweet dynamics;
// a k-SIR query builds a representative feed for one story, and the result
// is contrasted with a plain top-k ranking to show why representativeness
// matters (the paper's §1 motivation).
//
//	go run ./examples/newsfeed
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	ksir "github.com/social-streams/ksir"
)

// story is one trending news story with its own vocabulary.
type story struct {
	name  string
	words []string
	rate  int // posts per 100 slots
}

var stories = []story{
	{"cup-final", strings.Fields("final cup goal extratime penalty keeper crowd stadium whistle equalizer"), 40},
	{"playoffs", strings.Fields("playoffs game4 dunk overtime buzzer rebound courtside comeback steal block"), 35},
	{"elections", strings.Fields("election ballot turnout exitpoll debate county margin recount precinct coalition"), 25},
}

func postText(rng *rand.Rand, s story) string {
	n := 4 + rng.Intn(4)
	out := make([]string, n)
	for i := range out {
		out[i] = s.words[rng.Intn(len(s.words))]
	}
	return strings.Join(out, " ")
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// Training corpus: a historical sample with all stories represented.
	var corpus []string
	for i := 0; i < 1200; i++ {
		corpus = append(corpus, postText(rng, stories[i%len(stories)]))
	}
	model, err := ksir.TrainModel(corpus,
		ksir.WithTopics(6), ksir.WithIterations(60), ksir.WithSeed(2),
		ksir.WithPriors(0.5, 0.01))
	if err != nil {
		log.Fatal(err)
	}

	st, err := ksir.New(model, ksir.Options{
		Window: 30 * time.Minute,
		Bucket: time.Minute,
		Eta:    10, // retweet-heavy stream: damp the influence scale
	})
	if err != nil {
		log.Fatal(err)
	}

	// Live stream: 3000 posts over an hour. Popular posts attract
	// retweets (references) with preferential attachment; the cup final
	// story "breaks" in the second half hour and dominates.
	var recent []int64 // recent post IDs for retweet targeting
	id := int64(0)
	for slot := 0; slot < 3600; slot += 1 {
		r := rng.Intn(100)
		var s story
		switch {
		case slot > 1800 && r < 55: // breaking story
			s = stories[0]
		case r < 35:
			s = stories[1]
		case r < 60:
			s = stories[2]
		case r < 75:
			s = stories[0]
		default:
			continue // quiet slot
		}
		id++
		p := ksir.Post{ID: id, Time: int64(slot + 1), Text: postText(rng, s)}
		// 30% of posts are retweets of a recent post.
		if len(recent) > 10 && rng.Float64() < 0.3 {
			p.Refs = []int64{recent[len(recent)-1-rng.Intn(10)]}
		}
		if err := st.Add(p); err != nil {
			log.Fatal(err)
		}
		recent = append(recent, id)
		if len(recent) > 64 {
			recent = recent[1:]
		}
	}
	if err := st.Flush(3600); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %d posts ingested, %d active in the 30min window\n\n", id, st.Active())

	// A user asks for a representative feed about the cup final.
	query := ksir.Query{K: 5, Keywords: []string{"final", "goal", "penalty"}}

	feed, err := st.Query(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-SIR feed (MTTD, score %.3f, evaluated %d of %d active):\n",
		feed.Score, feed.Evaluated, feed.Active)
	for i, p := range feed.Posts {
		fmt.Printf("  %d. [%4ds] %s\n", i+1, p.Time, p.Text)
	}

	// Contrast: plain top-k by individual score returns near-duplicates
	// of the single hottest post.
	query.Algorithm = ksir.TopK
	topk, err := st.Query(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplain top-%d by individual score (score %.3f — lower coverage):\n",
		query.K, topk.Score)
	for i, p := range topk.Posts {
		fmt.Printf("  %d. [%4ds] %s\n", i+1, p.Time, p.Text)
	}
	fmt.Printf("\ndistinct words covered: k-SIR=%d, top-k=%d\n",
		distinctWords(feed.Posts), distinctWords(topk.Posts))
}

func distinctWords(posts []ksir.Post) int {
	set := make(map[string]struct{})
	for _, p := range posts {
		for _, w := range strings.Fields(p.Text) {
			set[w] = struct{}{}
		}
	}
	return len(set)
}
