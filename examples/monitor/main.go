// Monitor: a continuous-query scenario. The same k-SIR query is re-issued
// as the sliding window moves over a stream with shifting topic mix,
// showing how the result set tracks what is currently trending — the
// time-critical behaviour that distinguishes k-SIR from static summaries
// (§1: "previously trending contents may become outdated").
//
//	go run ./examples/monitor
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	ksir "github.com/social-streams/ksir"
)

var phases = []struct {
	label string
	words []string
}{
	{"rumor", strings.Fields("transfer rumor agent medical contract fee release clause talks saga")},
	{"match", strings.Fields("kickoff goal tackle halftime substitution corner offside header assist stoppage")},
	{"verdict", strings.Fields("verdict analysis ratings tactics formation pressing xg chances defence midfield")},
}

func main() {
	rng := rand.New(rand.NewSource(17))

	var corpus []string
	for i := 0; i < 900; i++ {
		corpus = append(corpus, text(rng, i%len(phases)))
	}
	model, err := ksir.TrainModel(corpus,
		ksir.WithTopics(6), ksir.WithIterations(60), ksir.WithSeed(4),
		ksir.WithPriors(0.5, 0.01))
	if err != nil {
		log.Fatal(err)
	}

	st, err := ksir.New(model, ksir.Options{
		Window: 20 * time.Minute,
		Bucket: time.Minute,
		Eta:    5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One match day: rumors before kickoff, live-match chatter, then
	// post-match verdicts. 2 posts/3s; the query re-runs every 20 minutes.
	query := ksir.Query{K: 3, Keywords: []string{"goal", "tactics", "transfer"}}
	id := int64(0)
	var recent []int64
	for sec := int64(1); sec <= 3600; sec++ {
		phase := int(sec / 1201) // 0, 1, 2
		if sec%3 == 0 {
			id++
			p := ksir.Post{ID: id, Time: sec, Text: text(rng, phase)}
			if len(recent) > 5 && rng.Float64() < 0.25 {
				p.Refs = []int64{recent[len(recent)-1-rng.Intn(5)]}
			}
			if err := st.Add(p); err != nil {
				log.Fatal(err)
			}
			recent = append(recent, id)
			if len(recent) > 32 {
				recent = recent[1:]
			}
		}
		if sec%1200 == 0 {
			if err := st.Flush(sec); err != nil {
				log.Fatal(err)
			}
			res, err := st.Query(context.Background(), query)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("t=%2dmin (%s phase, %d active): score %.3f\n",
				sec/60, phases[phase].label, st.Active(), res.Score)
			for i, p := range res.Posts {
				fmt.Printf("   %d. [%4ds] %s\n", i+1, p.Time, trim(p.Text, 7))
			}
			fmt.Println()
		}
	}
}

func text(rng *rand.Rand, phase int) string {
	w := phases[phase].words
	n := 5 + rng.Intn(4)
	out := make([]string, n)
	for i := range out {
		out[i] = w[rng.Intn(len(w))]
	}
	return strings.Join(out, " ")
}

func trim(s string, words int) string {
	f := strings.Fields(s)
	if len(f) > words {
		f = f[:words]
	}
	return strings.Join(f, " ")
}
