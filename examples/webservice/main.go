// Webservice: runs the k-SIR HTTP server in-process and drives it as a
// client would — ingesting posts, flushing buckets, and issuing queries
// with explanations over REST. This is the many-readers deployment §2
// motivates; see cmd/ksir-server for the standalone binary.
//
//	go run ./examples/webservice
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	ksir "github.com/social-streams/ksir"
	"github.com/social-streams/ksir/internal/server"
)

func main() {
	// Train the model and start the server in-process.
	var corpus []string
	for i := 0; i < 60; i++ {
		corpus = append(corpus,
			"goal striker league derby penalty keeper",
			"dunk rebound playoffs court buzzer triple",
		)
	}
	model, err := ksir.TrainModel(corpus,
		ksir.WithTopics(2), ksir.WithIterations(40), ksir.WithSeed(1),
		ksir.WithPriors(0.5, 0.01))
	if err != nil {
		log.Fatal(err)
	}
	st, err := ksir.New(model, ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(server.New(st))
	defer srv.Close()
	fmt.Println("server listening at", srv.URL)

	// Ingest a batch of posts over REST.
	posts := []server.PostRequest{
		{ID: 1, Time: 60, Text: "late goal wins the derby for the league leaders"},
		{ID: 2, Time: 120, Text: "what a dunk to open the playoffs"},
		{ID: 3, Time: 180, Text: "keeper saves the penalty in the derby"},
		{ID: 4, Time: 240, Text: "rebound and buzzer beater seal the court", Refs: []int64{2}},
		{ID: 5, Time: 300, Text: "the striker scores again", Refs: []int64{1}},
	}
	mustPost(srv.URL+"/posts", posts)
	mustPost(srv.URL+"/flush", server.FlushRequest{Now: 360})

	// Check stats.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats map[string]any
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	fmt.Printf("stats: %.0f active posts at t=%.0f\n", stats["active"], stats["now"])

	// Query with explanations.
	body := mustPost(srv.URL+"/query", server.QueryRequest{
		K: 2, Keywords: []string{"goal", "league"}, Explain: true,
	})
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery 'goal league' → score %.4f (evaluated %d/%d)\n",
		qr.Score, qr.Evaluated, qr.Active)
	for i, p := range qr.Posts {
		fmt.Printf("  %d. [post %d] %s\n", i+1, p.ID, p.Text)
	}
	fmt.Println("\nwhy these posts:")
	for _, ex := range qr.Explain {
		kind := "semantic"
		if ex.Influence > ex.Semantic {
			kind = "influence"
		}
		fmt.Printf("  post %d: gain %.4f (%.4f semantic + %.4f influence, mostly %s; %d new words)\n",
			ex.Post.ID, ex.Gain, ex.Semantic, ex.Influence, kind, ex.NewWords)
	}
}

func mustPost(url string, v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %d %s", strings.TrimPrefix(url, "http://"), resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}
