// Webservice: runs the k-SIR HTTP server in-process and drives it through
// the client SDK — creating streams in the multi-tenant hub, ingesting
// posts, issuing queries with explanations, and following a standing
// query over SSE. This is the many-readers deployment §2 motivates; see
// cmd/ksir-server for the standalone binary.
//
//	go run ./examples/webservice
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/client"
	"github.com/social-streams/ksir/internal/server"
)

func main() {
	// Train the model and start the server in-process.
	var corpus []string
	for i := 0; i < 60; i++ {
		corpus = append(corpus,
			"goal striker league derby penalty keeper",
			"dunk rebound playoffs court buzzer triple",
		)
	}
	model, err := ksir.TrainModel(corpus,
		ksir.WithTopics(2), ksir.WithIterations(40), ksir.WithSeed(1),
		ksir.WithPriors(0.5, 0.01))
	if err != nil {
		log.Fatal(err)
	}
	defaults := ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}
	hub := ksir.NewHub()
	srv := httptest.NewServer(server.NewHub(hub, model, defaults))
	defer srv.Close()
	fmt.Println("server listening at", srv.URL)

	ctx := context.Background()
	c := client.New(srv.URL)

	// Create two tenant streams over /v1: a soccer feed and a
	// pure-influence (λ=0) variant of the same feed.
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "sports"}); err != nil {
		log.Fatal(err)
	}
	lambdaZero := 0.0
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "sports-influence", Lambda: &lambdaZero}); err != nil {
		log.Fatal(err)
	}
	// Typed errors survive the wire: creating a duplicate is detectable
	// with errors.Is.
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "sports"}); !errors.Is(err, ksir.ErrStreamExists) {
		log.Fatalf("expected ErrStreamExists, got %v", err)
	}

	// Follow a standing query over SSE while we ingest.
	events := make(chan client.Event, 8)
	subCtx, stopSub := context.WithCancel(ctx)
	defer stopSub()
	go func() {
		err := c.Stream("sports").Subscribe(subCtx, client.SubscribeRequest{
			K: 2, Keywords: []string{"goal", "league"}, OnlyOnChange: true,
		}, func(ev client.Event) error {
			events <- ev
			return nil
		})
		if err != nil && subCtx.Err() == nil {
			log.Println("subscribe:", err)
		}
		close(events)
	}()
	time.Sleep(100 * time.Millisecond) // let the subscription register

	// Ingest a batch of posts into both streams.
	posts := []apiv1.Post{
		{ID: 1, Time: 60, Text: "late goal wins the derby for the league leaders"},
		{ID: 2, Time: 120, Text: "what a dunk to open the playoffs"},
		{ID: 3, Time: 180, Text: "keeper saves the penalty in the derby"},
		{ID: 4, Time: 240, Text: "rebound and buzzer beater seal the court", Refs: []int64{2}},
		{ID: 5, Time: 300, Text: "the striker scores again", Refs: []int64{1}},
	}
	for _, name := range []string{"sports", "sports-influence"} {
		st := c.Stream(name)
		if _, err := st.Add(ctx, posts...); err != nil {
			log.Fatal(err)
		}
		if _, err := st.Flush(ctx, 360); err != nil {
			log.Fatal(err)
		}
	}

	// Check stats over /v1.
	for _, info := range mustList(ctx, c) {
		fmt.Printf("stream %-18s λ=%.1f: %d active posts at t=%d (bucket %d)\n",
			info.Name, info.Lambda, info.Active, info.Now, info.Bucket)
	}

	// Query with explanations through the SDK.
	qr, err := c.Stream("sports").Query(ctx, apiv1.QueryRequest{
		K: 2, Keywords: []string{"goal", "league"}, Explain: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery 'goal league' → score %.4f (evaluated %d/%d, bucket %d)\n",
		qr.Score, qr.Evaluated, qr.Active, qr.Bucket)
	for i, p := range qr.Posts {
		fmt.Printf("  %d. [post %d] %s\n", i+1, p.ID, p.Text)
	}
	fmt.Println("\nwhy these posts:")
	for _, ex := range qr.Explain {
		kind := "semantic"
		if ex.Influence > ex.Semantic {
			kind = "influence"
		}
		fmt.Printf("  post %d: gain %.4f (%.4f semantic + %.4f influence, mostly %s; %d new words)\n",
			ex.Post.ID, ex.Gain, ex.Semantic, ex.Influence, kind, ex.NewWords)
	}

	// The standing query saw the same bucket the queries did.
	select {
	case ev := <-events:
		fmt.Printf("\nSSE refresh at bucket %d: %d posts, score %.4f\n",
			ev.Bucket, len(ev.Result.Posts), ev.Result.Score)
	case <-time.After(2 * time.Second):
		fmt.Println("\nno SSE refresh within 2s")
	}
	stopSub()
}

func mustList(ctx context.Context, c *client.Client) []apiv1.StreamInfo {
	streams, err := c.ListStreams(ctx)
	if err != nil {
		log.Fatal(err)
	}
	return streams
}
