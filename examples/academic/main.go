// Academic: an AMiner-like scenario. A stream of paper abstracts arrives in
// publication order with citation references reaching far into the past;
// k-SIR answers "give me k representative recent papers on <topic>",
// where influence = being cited by papers inside the recency window. This
// exercises the resurrection path: an old seminal paper re-enters the
// active set whenever a new in-window paper cites it.
//
//	go run ./examples/academic
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	ksir "github.com/social-streams/ksir"
)

// field is one research area with a characteristic vocabulary.
type field struct {
	name  string
	words []string
}

var fields = []field{
	{"databases", strings.Fields("query index transaction storage join optimizer btree concurrency logging shard")},
	{"machine-learning", strings.Fields("gradient network training embedding loss regularization classifier kernel attention dropout")},
	{"systems", strings.Fields("kernel scheduler cache throughput latency filesystem interrupt virtualization pagetable numa")},
}

func abstract(rng *rand.Rand, f field) string {
	n := 12 + rng.Intn(8)
	out := make([]string, n)
	for i := range out {
		out[i] = f.words[rng.Intn(len(f.words))]
	}
	return strings.Join(out, " ")
}

func main() {
	rng := rand.New(rand.NewSource(5))

	var corpus []string
	for i := 0; i < 900; i++ {
		corpus = append(corpus, abstract(rng, fields[i%len(fields)]))
	}
	model, err := ksir.TrainModel(corpus,
		ksir.WithTopics(6), ksir.WithIterations(60), ksir.WithSeed(3),
		ksir.WithPriors(0.5, 0.01))
	if err != nil {
		log.Fatal(err)
	}

	// Window: only papers from the last "year" (360 days, 1 day = 86400s)
	// count as fresh; citations from them keep older papers active.
	st, err := ksir.New(model, ksir.Options{
		Window: 360 * 24 * time.Hour,
		Bucket: 30 * 24 * time.Hour, // monthly batches
		Eta:    5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5 years of publications, ~40 papers/month. Each paper cites 2-4
	// earlier papers, biased toward highly cited ones in its own field
	// (preferential attachment — the citation classics emerge).
	type paper struct {
		id    int64
		field int
		cites int
	}
	var published []paper
	day := int64(86400)
	id := int64(0)
	for month := 0; month < 60; month++ {
		for p := 0; p < 40; p++ {
			id++
			f := rng.Intn(len(fields))
			post := ksir.Post{
				ID:   id,
				Time: int64(month)*30*day + int64(p)*day/2 + 1,
				Text: abstract(rng, fields[f]),
			}
			nCites := 2 + rng.Intn(3)
			for c := 0; c < nCites && len(published) > 0; c++ {
				// Preferential attachment within the same field.
				best := -1
				for try := 0; try < 8; try++ {
					cand := rng.Intn(len(published))
					if published[cand].field != f {
						continue
					}
					if best == -1 || published[cand].cites > published[best].cites {
						best = cand
					}
				}
				if best >= 0 {
					post.Refs = append(post.Refs, published[best].id)
					published[best].cites++
				}
			}
			if err := st.Add(post); err != nil {
				log.Fatal(err)
			}
			published = append(published, paper{id: id, field: f})
		}
	}
	if err := st.Flush(60 * 30 * day); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d papers over 5 years; %d active (last year + cited-by-it)\n\n",
		id, st.Active())

	// "Representative recent work on database systems."
	res, err := st.Query(context.Background(), ksir.Query{
		K:        4,
		Keywords: []string{"query", "index", "transaction"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-SIR: representative database papers (score %.3f, evaluated %d/%d):\n",
		res.Score, res.Evaluated, res.Active)
	for i, p := range res.Posts {
		year := p.Time / (360 * day)
		words := strings.Fields(p.Text)
		if len(words) > 8 {
			words = words[:8]
		}
		fmt.Printf("  %d. [paper %4d, year %d, cites %d earlier] %s...\n",
			i+1, p.ID, year+1, len(p.Refs), strings.Join(words, " "))
	}

	// Note the freshness semantics: papers older than the window can only
	// appear because a fresh paper cites them.
	cutoff := 60*30*day - 360*24*3600
	old := 0
	for _, p := range res.Posts {
		if p.Time <= cutoff {
			old++
		}
	}
	fmt.Printf("\n%d of %d results are older than the window (kept active by fresh citations)\n",
		old, len(res.Posts))
}
