// Quickstart: train a topic model on a small two-topic corpus, stream a
// handful of posts (including retweets), and answer a k-SIR keyword query.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	ksir "github.com/social-streams/ksir"
)

func main() {
	// 1. Train a topic model offline on a representative corpus. Real
	// deployments train on a large sample of the stream; here a toy corpus
	// with two obvious topics (soccer and basketball) suffices.
	var corpus []string
	soccer := []string{
		"goal striker league derby penalty kick",
		"keeper saves the penalty in the champions league final",
		"derby ends with a late goal from the striker",
		"midfield control wins the league title",
		"champions league draw pits the derby rivals",
		"the striker tops the league scoring chart",
	}
	basketball := []string{
		"dunk rebound playoffs court buzzer beater",
		"triple double carries the team through the playoffs",
		"buzzer beater wins the quarter final on the road court",
		"rebound battle decides the playoffs opener",
		"assist streak sets a playoffs record",
		"the dunk contest lights up the court",
	}
	for i := 0; i < 10; i++ {
		corpus = append(corpus, soccer...)
		corpus = append(corpus, basketball...)
	}
	model, err := ksir.TrainModel(corpus,
		ksir.WithTopics(2),
		ksir.WithIterations(50),
		ksir.WithSeed(1),
		ksir.WithPriors(0.5, 0.01), // small alpha: only 2 topics
	)
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < model.Topics(); t++ {
		words, _ := model.TopWords(t, 4)
		fmt.Printf("topic %d: %v\n", t, words)
	}

	// 2. Open a stream with a 1-hour sliding window and 1-minute buckets.
	st, err := ksir.New(model, ksir.Options{
		Window: time.Hour,
		Bucket: time.Minute,
		Lambda: 0.5,
		Eta:    2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Feed posts in timestamp order. Refs model retweets/replies.
	posts := []ksir.Post{
		{ID: 1, Time: 60, Text: "late goal wins the derby for the league leaders"},
		{ID: 2, Time: 120, Text: "what a dunk in the playoffs opener"},
		{ID: 3, Time: 180, Text: "champions league: keeper saves a penalty"},
		{ID: 4, Time: 240, Text: "rebound and buzzer beater seal the playoffs game", Refs: []int64{2}},
		{ID: 5, Time: 300, Text: "the striker scores again #league", Refs: []int64{1}},
		{ID: 6, Time: 360, Text: "penalty shootout decides the derby", Refs: []int64{1, 3}},
		{ID: 7, Time: 420, Text: "triple double in the quarter final", Refs: []int64{2}},
	}
	for _, p := range posts {
		if err := st.Add(p); err != nil {
			log.Fatal(err)
		}
	}
	if err := st.Flush(480); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d active posts at t=%d\n", st.Active(), st.Now())

	// 4. Query: the k most representative posts about soccer right now.
	res, err := st.Query(context.Background(), ksir.Query{
		K:        2,
		Keywords: []string{"league", "goal"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk-SIR result (score %.4f, evaluated %d/%d):\n",
		res.Score, res.Evaluated, res.Active)
	for i, p := range res.Posts {
		fmt.Printf("  %d. [post %d] %s\n", i+1, p.ID, p.Text)
	}
}
