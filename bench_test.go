// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per table/figure — see DESIGN.md §4), plus per-operation
// micro-benchmarks of the core algorithms.
//
// The experiment benches run the full pipeline at a reduced scale; use
// cmd/ksir-bench for the larger runs recorded in EXPERIMENTS.md:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig9 -benchtime=1x
package ksir_test

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/social-streams/ksir/internal/baselines"
	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/dataset"
	"github.com/social-streams/ksir/internal/experiments"
)

// benchScale keeps each experiment bench in the low seconds.
var benchScale = experiments.Scale{
	Elements: 2500, Queries: 12, TopicIters: 15, Seed: 42, WindowHours: 24,
}

func benchLab() *experiments.Lab { return experiments.NewLab(benchScale) }

func renderAll(b *testing.B, tables ...*experiments.Table) {
	b.Helper()
	for _, t := range tables {
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3DatasetStats regenerates Table 3 (dataset statistics).
func BenchmarkTable3DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := benchLab().Table3()
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, t)
	}
}

// BenchmarkTable5UserStudy regenerates Table 5 (simulated user study).
func BenchmarkTable5UserStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := benchLab().Table5()
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, t)
	}
}

// BenchmarkTable6Effectiveness regenerates Table 6 (coverage/influence).
func BenchmarkTable6Effectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := benchLab().Table6()
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, t)
	}
}

// BenchmarkFig7QueryTimeEps regenerates Figure 7 (query time vs ε).
func BenchmarkFig7QueryTimeEps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f7, _, err := benchLab().EpsSweep([]float64{0.1, 0.3, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, f7)
	}
}

// BenchmarkFig8ScoreEps regenerates Figure 8 (score vs ε).
func BenchmarkFig8ScoreEps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, f8, err := benchLab().EpsSweep([]float64{0.1, 0.3, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, f8)
	}
}

// BenchmarkFig9QueryTimeK regenerates Figure 9 (query time vs k, all five
// methods).
func BenchmarkFig9QueryTimeK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f9, _, _, err := benchLab().KSweep([]int{5, 15, 25})
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, f9...)
	}
}

// BenchmarkFig10EvalRatio regenerates Figure 10 (evaluated-element ratio).
func BenchmarkFig10EvalRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, f10, _, err := benchLab().KSweep([]int{5, 15, 25})
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, f10...)
	}
}

// BenchmarkFig11ScoreK regenerates Figure 11 (score vs k).
func BenchmarkFig11ScoreK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, f11, err := benchLab().KSweep([]int{5, 15, 25})
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, f11...)
	}
}

// BenchmarkFig12QueryTimeZ regenerates Figure 12 (query time vs z; retrains
// the topic model per z).
func BenchmarkFig12QueryTimeZ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f12, _, err := benchLab().ZSweep([]int{25, 50})
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, f12...)
	}
}

// BenchmarkFig13QueryTimeT regenerates Figure 13 (query time vs window
// length T).
func BenchmarkFig13QueryTimeT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f13, _, err := benchLab().TSweep([]float64{12, 24})
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, f13...)
	}
}

// BenchmarkFig14UpdateTime regenerates Figure 14 (ranked-list update time
// per arriving element, vs z and vs T).
func BenchmarkFig14UpdateTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := benchLab()
		_, f14z, err := lab.ZSweep([]int{25, 50})
		if err != nil {
			b.Fatal(err)
		}
		_, f14t, err := lab.TSweep([]float64{12, 24})
		if err != nil {
			b.Fatal(err)
		}
		renderAll(b, f14z, f14t)
	}
}

// --- per-operation micro-benchmarks on a prepared window state ---

var microOnce sync.Once
var microEnv *experiments.Env
var microEngine *core.Engine
var microQueries []dataset.QuerySpec

func microSetup(b *testing.B) {
	b.Helper()
	microOnce.Do(func() {
		lab := experiments.NewLab(experiments.Scale{
			Elements: 8000, Queries: 32, TopicIters: 20, Seed: 7, WindowHours: 24,
		})
		env, err := lab.Env("Twitter", 50)
		if err != nil {
			panic(err)
		}
		g, err := env.NewEngine(0)
		if err != nil {
			panic(err)
		}
		if err := env.Replay(g, nil); err != nil {
			panic(err)
		}
		microEnv, microEngine, microQueries = env, g, env.Queries
	})
	if microEngine.NumActive() == 0 {
		b.Fatal("empty window")
	}
}

func benchQuery(b *testing.B, alg core.Algorithm) {
	microSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := microQueries[i%len(microQueries)]
		if _, err := microEngine.Query(core.Query{K: 10, X: q.X, Epsilon: 0.1, Algorithm: alg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryMTTS measures one MTTS k-SIR query on a ~8K-element stream
// state (k=10, ε=0.1, z=50).
func BenchmarkQueryMTTS(b *testing.B) { benchQuery(b, core.MTTS) }

// BenchmarkQueryMTTD measures one MTTD query under the same conditions.
func BenchmarkQueryMTTD(b *testing.B) { benchQuery(b, core.MTTD) }

// BenchmarkQueryTopkRep measures the Top-k Representative baseline.
func BenchmarkQueryTopkRep(b *testing.B) { benchQuery(b, core.TopkRep) }

// BenchmarkQueryCELF measures the CELF baseline (scans every active).
func BenchmarkQueryCELF(b *testing.B) {
	microSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := microQueries[i%len(microQueries)]
		actives := experiments.Actives(microEngine)
		baselines.CELF(microEngine.Scorer(), actives, q.X, 10)
	}
}

// BenchmarkQuerySieve measures the SieveStreaming baseline.
func BenchmarkQuerySieve(b *testing.B) {
	microSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := microQueries[i%len(microQueries)]
		actives := experiments.Actives(microEngine)
		baselines.SieveStreaming(microEngine.Scorer(), actives, q.X, 10, 0.1)
	}
}

// BenchmarkConcurrentQueryDuringIngest measures query latency while a
// writer goroutine streams buckets into the engine on the paced cadence of
// Figure 4 — the §2 serving scenario. The "snapshot" mode is the engine's
// native concurrency model (queries pin a published snapshot, zero
// locking); the "globallock" mode emulates the seed single-mutex engine,
// where every bucket write-locks the world, so a query landing during a
// bucket waits out the whole remaining ingest. Reported p50/p99 are
// per-query wall latencies; snapshot-mode p99 beats globallock by ≥2×
// because queries no longer serialize behind in-flight buckets.
func BenchmarkConcurrentQueryDuringIngest(b *testing.B) {
	const readers = 4
	for _, mode := range []string{"snapshot", "globallock"} {
		b.Run(mode, func(b *testing.B) {
			microSetup(b)
			h, err := experiments.NewConcurrentHarness(microEnv, mode)
			if err != nil {
				b.Fatal(err)
			}
			stop := h.StartWriter(experiments.WriterPace)
			var (
				next atomic.Int64
				mu   sync.Mutex
				lat  = make([]time.Duration, 0, b.N)
				wg   sync.WaitGroup
			)
			b.ResetTimer()
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					local := make([]time.Duration, 0, b.N/readers+1)
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							break
						}
						time.Sleep(experiments.QueryThink)
						d, err := h.Query(int(i))
						if err != nil {
							b.Error(err)
							return
						}
						local = append(local, d)
					}
					mu.Lock()
					lat = append(lat, local...)
					mu.Unlock()
				}()
			}
			wg.Wait()
			b.StopTimer()
			if err := stop(); err != nil {
				b.Fatal(err)
			}
			if len(lat) == 0 {
				return
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(lat[int(0.99*float64(len(lat)-1))].Nanoseconds()), "p99-ns")
		})
	}
}

// BenchmarkIngest measures ranked-list maintenance per arriving element
// (the Figure 14 metric) by replaying a fresh stream each iteration.
func BenchmarkIngest(b *testing.B) {
	microSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var total time.Duration
	var elements int64
	for i := 0; i < b.N; i++ {
		g, err := microEnv.NewEngine(0)
		if err != nil {
			b.Fatal(err)
		}
		if err := microEnv.Replay(g, nil); err != nil {
			b.Fatal(err)
		}
		st := g.Stats()
		total += st.UpdateTime
		elements += st.ElementsIngested
	}
	b.StopTimer()
	if elements > 0 {
		b.ReportMetric(float64(total.Nanoseconds())/float64(elements), "ns/element")
	}
}
