package ksir

import (
	"time"

	"github.com/social-streams/ksir/internal/metrics"
)

// Writer-pipeline and residency observability (DESIGN.md §12). Aggregates
// over every stream in the process; the /metrics collector in
// internal/server adds the per-stream {stream=...} breakdowns from
// StreamStats at scrape time.
var (
	obsPipeOps = metrics.NewCounter("ksir_pipeline_ops_total",
		"Write operations committed through stream writer pipelines.")
	obsPipeBatches = metrics.NewCounter("ksir_pipeline_commit_batches_total",
		"Commit batches (each one engine apply pass and at most one WAL append + fsync).")
	obsPipeBatchSize = metrics.NewHistogram("ksir_pipeline_batch_size",
		"Operations coalesced per commit batch.", 1,
		[]uint64{1, 2, 4, 8, 16, 32, 64, 128})
	obsPipeCommitDuration = metrics.NewDurationHistogram("ksir_pipeline_commit_duration_seconds",
		"Commit-batch latency: apply pass plus WAL append and shared fsync.",
		metrics.DefBuckets...)
	obsPipeWindowWaits = metrics.NewCounter("ksir_pipeline_commit_window_waits_total",
		"Commit batches that held the opt-in group-commit window open for more ops.")

	obsResHibernations = metrics.NewCounter("ksir_residency_hibernations_total",
		"Hot-to-cold stream transitions (checkpoint, WAL release, memory drop).")
	obsResActivations = metrics.NewCounter("ksir_residency_activations_total",
		"Cold-to-hot stream transitions (checkpoint load + WAL tail replay).")
	obsResActivationDuration = metrics.NewDurationHistogram("ksir_residency_activation_duration_seconds",
		"Reactivation latency of hibernated streams.",
		metrics.DefBuckets...)
	obsResEvictions = metrics.NewCounter("ksir_residency_evictions_total",
		"Policy evictions committed by the residency budget (makeRoom / sweep).")
	obsResStaleEvictions = metrics.NewCounter("ksir_residency_stale_evictions_total",
		"Policy evictions that no-opped at commit-time re-validation (stream re-warmed or budget already met).")

	obsResPrefetchActivations = metrics.NewCounter("ksir_hub_prefetch_activations_total",
		"Stream activations initiated by the predictive prefetcher rather than a demand operation.")
	obsResPrefetchHits = metrics.NewCounter("ksir_hub_prefetch_hits_total",
		"Prefetched streams touched by a demand operation while still resident (the activation latency the caller never saw).")
	obsResPrefetchMisses = metrics.NewCounter("ksir_hub_prefetch_misses_total",
		"Prefetched streams hibernated again (or found already resident) before any demand touch consumed the prefetch.")
	obsResGhostHits = metrics.NewCounter("ksir_hub_ghost_hits_total",
		"Reactivations of streams on the ghost list (recently evicted and wanted again: eviction-policy regret).")
	obsResSecondChanceSaves = metrics.NewCounter("ksir_hub_second_chance_saves_total",
		"Eviction candidates skipped because their second-chance bit (or pending prefetch) protected them.")
	obsResLazyMaterialize = metrics.NewCounter("ksir_hub_lazy_materialize_total",
		"Deferred back-buffer materializations (background task, first write, or WAL tail replay).")
)

// observeCommit records one commit batch on the pipeline families.
func observeCommit(n int, elapsed time.Duration) {
	obsPipeOps.Add(uint64(n))
	obsPipeBatches.Inc()
	obsPipeBatchSize.Observe(uint64(n))
	obsPipeCommitDuration.ObserveDuration(elapsed)
}
