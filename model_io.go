package ksir

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// modelFileVersion guards the on-disk format; bump when the layout changes.
const modelFileVersion = 1

// modelFile is the serialized form of a trained Model. Training a topic
// model is the expensive offline step of the pipeline (minutes at corpus
// scale), so production deployments train once, Save, and Load at startup.
type modelFile struct {
	Version int
	Z       int
	V       int
	Phi     []float64
	PTopic  []float64
	Words   []string
	Freq    []int64
	DocFreq []int64
	Seed    int64
}

// Save writes the model in a self-contained binary format.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	mf := modelFile{
		Version: modelFileVersion,
		Z:       m.tm.Z,
		V:       m.tm.V,
		Phi:     m.tm.Phi,
		PTopic:  m.tm.PTopic,
		Seed:    m.seed,
	}
	for i := 0; i < m.vocab.Size(); i++ {
		id := textproc.WordID(i)
		mf.Words = append(mf.Words, m.vocab.Word(id))
		mf.Freq = append(mf.Freq, m.vocab.Freq(id))
		mf.DocFreq = append(mf.DocFreq, m.vocab.DocFreq(id))
	}
	if err := gob.NewEncoder(bw).Encode(mf); err != nil {
		return fmt.Errorf("ksir: encoding model: %w", err)
	}
	return bw.Flush()
}

// SaveFile writes the model to path (created or truncated).
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ksir: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&mf); err != nil {
		return nil, fmt.Errorf("ksir: decoding model: %w", err)
	}
	if mf.Version != modelFileVersion {
		return nil, fmt.Errorf("%w: model file version %d (want %d)", ErrModelVersion, mf.Version, modelFileVersion)
	}
	if len(mf.Words) != mf.V || len(mf.Phi) != mf.Z*mf.V || len(mf.PTopic) != mf.Z {
		return nil, fmt.Errorf("ksir: corrupt model file: %d words, %d phi, %d ptopic for z=%d v=%d",
			len(mf.Words), len(mf.Phi), len(mf.PTopic), mf.Z, mf.V)
	}
	vocab := textproc.NewVocabulary()
	for i, w := range mf.Words {
		id := vocab.Add(w)
		if int(id) != i {
			return nil, fmt.Errorf("ksir: duplicate word %q in model file", w)
		}
	}
	vocab.SetCounts(mf.Freq, mf.DocFreq)
	tm := &topicmodel.Model{Z: mf.Z, V: mf.V, Phi: mf.Phi, PTopic: mf.PTopic}
	if err := tm.Validate(); err != nil {
		return nil, fmt.Errorf("ksir: corrupt model file: %w", err)
	}
	return &Model{
		tok:   textproc.NewTokenizer(),
		vocab: vocab,
		tm:    tm,
		inf:   topicmodel.NewInferencer(tm, mf.Seed),
		seed:  mf.Seed,
	}, nil
}

// LoadModelFile reads a model from path.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ksir: %w", err)
	}
	defer f.Close()
	return LoadModel(f)
}
