// Command ksir-trajectory converts committed BENCH_*.json files into the
// github-action-benchmark data.js format (window.BENCHMARK_DATA = {...})
// so CI can upload the perf trajectory as a chartable artifact per PR,
// not just tripwire it at the regression gates.
//
// Commit metadata comes from flags, falling back to the GITHUB_* variables
// Actions sets, falling back to `git log -1` on the working tree:
//
//	ksir-trajectory -out data.js BENCH_engine.json BENCH_ingest.json BENCH_tenancy.json
//
// When -out already holds a trajectory document the new points are
// appended, so a restored previous artifact accumulates history.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"github.com/social-streams/ksir/internal/experiments"
)

func main() {
	var (
		out       = flag.String("out", "data.js", "output data.js path (appended to when it already exists)")
		commitID  = flag.String("commit", "", "commit SHA (default: $GITHUB_SHA, then git log -1)")
		message   = flag.String("message", "", "commit message (default: git log -1)")
		author    = flag.String("author", "", "commit author name (default: git log -1)")
		email     = flag.String("email", "", "commit author email (default: git log -1)")
		timestamp = flag.String("timestamp", "", "commit timestamp, RFC 3339 (default: git log -1)")
		repoURL   = flag.String("repo-url", "", "repository URL (default: $GITHUB_SERVER_URL/$GITHUB_REPOSITORY)")
	)
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil || len(matches) == 0 {
			fatal(fmt.Errorf("no BENCH_*.json arguments and none found in the working directory"))
		}
		paths = matches
	}

	commit := experiments.TrajectoryCommit{
		Distinct:  true,
		ID:        firstOf(*commitID, os.Getenv("GITHUB_SHA"), gitLog("%H")),
		Message:   firstOf(*message, gitLog("%s")),
		Timestamp: firstOf(*timestamp, gitLog("%cI")),
	}
	name := firstOf(*author, gitLog("%an"))
	mail := firstOf(*email, gitLog("%ae"))
	commit.Author = experiments.TrajectoryActor{Name: name, Email: mail}
	commit.Committer = commit.Author
	if url := firstOf(*repoURL, githubRepoURL()); url != "" {
		commit.URL = url + "/commit/" + commit.ID
	}
	if commit.ID == "" {
		fatal(fmt.Errorf("no commit SHA: pass -commit, set GITHUB_SHA, or run inside a git checkout"))
	}

	data, err := experiments.AppendTrajectory(*out, paths, commit, time.Now().UnixMilli())
	if err != nil {
		fatal(err)
	}
	total := 0
	for _, pts := range data.Entries {
		total += len(pts)
	}
	fmt.Printf("wrote %s: %d suite(s), %d point(s) total at commit %.12s\n",
		*out, len(data.Entries), total, commit.ID)
}

// firstOf returns the first non-empty candidate.
func firstOf(candidates ...string) string {
	for _, c := range candidates {
		if c != "" {
			return c
		}
	}
	return ""
}

// gitLog reads one field of the HEAD commit; empty outside a checkout.
func gitLog(format string) string {
	outBytes, err := exec.Command("git", "log", "-1", "--format="+format).Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(outBytes))
}

func githubRepoURL() string {
	repo := os.Getenv("GITHUB_REPOSITORY")
	if repo == "" {
		return ""
	}
	server := os.Getenv("GITHUB_SERVER_URL")
	if server == "" {
		server = "https://github.com"
	}
	return server + "/" + repo
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksir-trajectory:", err)
	os.Exit(1)
}
