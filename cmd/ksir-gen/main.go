// Command ksir-gen generates a synthetic social stream with the shape of
// one of the paper's evaluation corpora (Table 3) and writes it as JSON
// lines, one element per line:
//
//	{"id":17,"ts":912,"words":["w00042","w00619"],"refs":[3]}
//
// Usage:
//
//	ksir-gen -profile twitter -n 10000 -seed 1 -out stream.jsonl
//
// The output loads back with `ksir-query -in stream.jsonl`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/social-streams/ksir/internal/dataset"
	"github.com/social-streams/ksir/internal/jsonl"
)

func main() {
	var (
		profile = flag.String("profile", "twitter", "dataset shape: aminer|reddit|twitter")
		n       = flag.Int("n", 10000, "number of elements")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var p dataset.Profile
	switch strings.ToLower(*profile) {
	case "aminer":
		p = dataset.AMinerLike(*n)
	case "reddit":
		p = dataset.RedditLike(*n)
	case "twitter":
		p = dataset.TwitterLike(*n)
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}

	ds, err := dataset.Generate(p, *seed)
	if err != nil {
		fatal(err)
	}

	f := os.Stdout
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	if err := jsonl.Write(f, ds.Elements, ds.Docs, ds.Vocab); err != nil {
		fatal(err)
	}
	st := ds.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %d elements (%s-like): vocab=%d avg_len=%.1f avg_refs=%.2f\n",
		st.Elements, p.Name, st.VocabSize, st.AvgLen, st.AvgRefs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksir-gen:", err)
	os.Exit(1)
}
