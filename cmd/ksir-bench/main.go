// Command ksir-bench regenerates the paper's tables and figures on the
// synthetic datasets. Each experiment prints an aligned text table whose
// rows/series match the corresponding table or figure in the paper; see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
//
// Usage:
//
//	ksir-bench -exp all
//	ksir-bench -exp fig9 -elements 20000 -queries 200
//	ksir-bench -exp table6 -scale small
//	ksir-bench -exp engine -short -json . -baseline BENCH_engine.json
//
// With -json the perf experiments additionally write machine-readable
// BENCH_<exp>.json files; -baseline validates the fresh engine file
// against a committed one and exits non-zero on a >-regress-factor
// update-time regression (the CI bench smoke gate).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/social-streams/ksir/internal/experiments"
)

func main() {
	var (
		exp             = flag.String("exp", "all", "experiment: table3|table5|table6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|latency|concurrent|persist|engine|ingest|tenancy|all")
		scale           = flag.String("scale", "default", "preset scale: small|default")
		short           = flag.Bool("short", false, "CI smoke mode: small scale and reduced workloads")
		elements        = flag.Int("elements", 0, "override stream size per dataset")
		queries         = flag.Int("queries", 0, "override workload size")
		seed            = flag.Int64("seed", 42, "master seed")
		out             = flag.String("out", "", "write output to file (default stdout)")
		jsonDir         = flag.String("json", "", "also write machine-readable BENCH_<exp>.json files into this directory")
		baseline        = flag.String("baseline", "", "committed BENCH_engine.json to regression-check the fresh engine run against (requires -exp engine and -json)")
		ingestBaseline  = flag.String("ingest-baseline", "", "committed BENCH_ingest.json to regression-check the fresh ingest run against (requires -exp ingest and -json)")
		tenancyBaseline = flag.String("tenancy-baseline", "", "committed BENCH_tenancy.json to regression-check the fresh tenancy run against (requires -exp tenancy and -json)")
		regress         = flag.Float64("regress-factor", 3, "fail when the fresh gated metric exceeds baseline×factor")
		overheadPct     = flag.Float64("metrics-overhead-pct", 0, "fail when metric+trace recording costs more than this percent on engine add or query p99 (0 = no gate; requires -exp engine and -json)")
	)
	flag.Parse()

	sc := experiments.DefaultScale
	if *scale == "small" || *short {
		sc = experiments.SmallScale
	}
	if *elements > 0 {
		sc.Elements = *elements
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	sc.Seed = *seed

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fatal(err)
		}
	}

	lab := experiments.NewLab(sc)
	start := time.Now()
	if err := run(lab, strings.ToLower(*exp), w, *jsonDir, *short); err != nil {
		fatal(err)
	}
	if *baseline != "" {
		if err := checkBaseline(w, *jsonDir, *baseline, *regress); err != nil {
			fatal(err)
		}
	}
	if *ingestBaseline != "" {
		if err := checkIngestBaseline(w, *jsonDir, *ingestBaseline, *regress); err != nil {
			fatal(err)
		}
	}
	if *tenancyBaseline != "" {
		if err := checkTenancyBaseline(w, *jsonDir, *tenancyBaseline, *regress); err != nil {
			fatal(err)
		}
	}
	if *overheadPct > 0 {
		if err := checkMetricsOverhead(w, *jsonDir, *overheadPct); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(w, "total wall time: %v (scale: %d elements, %d queries per dataset)\n",
		time.Since(start).Round(time.Millisecond), sc.Elements, sc.Queries)
}

func run(lab *experiments.Lab, exp string, w io.Writer, jsonDir string, short bool) error {
	want := func(names ...string) bool {
		if exp == "all" {
			return true
		}
		for _, n := range names {
			if exp == n {
				return true
			}
		}
		return false
	}
	render := func(tables ...*experiments.Table) error {
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		return nil
	}

	if want("table3") {
		t, err := lab.Table3()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("table5") {
		t, err := lab.Table5()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("table6") {
		t, err := lab.Table6()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("fig7", "fig8") {
		f7, f8, err := lab.EpsSweep([]float64{0.1, 0.2, 0.3, 0.4, 0.5})
		if err != nil {
			return err
		}
		if exp == "all" || exp == "fig7" {
			if err := render(f7); err != nil {
				return err
			}
		}
		if exp == "all" || exp == "fig8" {
			if err := render(f8); err != nil {
				return err
			}
		}
	}
	if want("fig9", "fig10", "fig11") {
		f9, f10, f11, err := lab.KSweep([]int{5, 10, 15, 20, 25})
		if err != nil {
			return err
		}
		if exp == "all" || exp == "fig9" {
			if err := render(f9...); err != nil {
				return err
			}
		}
		if exp == "all" || exp == "fig10" {
			if err := render(f10...); err != nil {
				return err
			}
		}
		if exp == "all" || exp == "fig11" {
			if err := render(f11...); err != nil {
				return err
			}
		}
	}
	if want("fig12", "fig14") {
		f12, f14z, err := lab.ZSweep([]int{50, 100, 150, 200, 250})
		if err != nil {
			return err
		}
		if exp == "all" || exp == "fig12" {
			if err := render(f12...); err != nil {
				return err
			}
		}
		if err := render(f14z); err != nil {
			return err
		}
	}
	if want("latency") {
		t, err := lab.LatencyProfile()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("fig13", "fig14") {
		f13, f14t, err := lab.TSweep([]float64{6, 12, 18, 24, 30})
		if err != nil {
			return err
		}
		if exp == "all" || exp == "fig13" {
			if err := render(f13...); err != nil {
				return err
			}
		}
		if err := render(f14t); err != nil {
			return err
		}
	}
	if want("concurrent") {
		t, entries, err := lab.Concurrent(4, 0)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if jsonDir != "" {
			path := filepath.Join(jsonDir, "BENCH_concurrent.json")
			if err := experiments.WriteBenchJSON(path, entries); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s (%d entries)\n", path, len(entries))
		}
	}
	if want("persist") {
		t, entries, err := lab.Persist(nil)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if jsonDir != "" {
			path := filepath.Join(jsonDir, "BENCH_persist.json")
			if err := experiments.WriteBenchJSON(path, entries); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s (%d entries)\n", path, len(entries))
		}
	}
	if want("ingest") {
		producers := []int{1, 8, 64}
		posts := 4096
		if short {
			producers = []int{1, 8}
			posts = 768
		}
		t, entries, err := lab.Ingest(producers, posts)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if jsonDir != "" {
			path := filepath.Join(jsonDir, "BENCH_ingest.json")
			if err := experiments.WriteBenchJSON(path, entries); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s (%d entries)\n", path, len(entries))
		}
	}
	if want("tenancy") {
		streams, posts, touches := 64, 256, 200
		if short {
			streams, posts, touches = 32, 128, 120
		}
		t, entries, err := lab.Tenancy(streams, posts, touches)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if jsonDir != "" {
			path := filepath.Join(jsonDir, "BENCH_tenancy.json")
			if err := experiments.WriteBenchJSON(path, entries); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s (%d entries)\n", path, len(entries))
		}
	}
	if want("engine") {
		engineQueries := 400
		overheadRounds := 5
		if short {
			// Short-scale passes are tens of milliseconds, so single-round
			// noise swamps the (near-zero) true recording cost; more rounds
			// keep the min-of-rounds gate meaningful in CI.
			engineQueries = 120
			overheadRounds = 7
		}
		t, entries, err := lab.EngineMaintenance(4, engineQueries)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		// The instrumented-vs-uninstrumented pair rides in the same
		// experiment and json file: the observability subsystem's recording
		// cost is part of the engine's perf trajectory. Best-of-3: the true
		// recording cost is a floor under every measurement, so one clean
		// attempt is proof of cheapness, while a real hot-path regression
		// exceeds the ceiling in all three. Retrying only the polluted runs
		// keeps the -metrics-overhead-pct gate stable on noisy shared CI
		// runners without blunting it.
		const overheadClean = 2.0 // matches the CI gate's -metrics-overhead-pct
		var ot *experiments.Table
		var oentries []experiments.BenchEntry
		for attempt := 0; attempt < 3; attempt++ {
			at, aentries, err := lab.MetricsOverhead(overheadRounds, engineQueries)
			if err != nil {
				return err
			}
			worse := func(es []experiments.BenchEntry) float64 {
				worst := 0.0
				for _, e := range es {
					if strings.HasPrefix(e.Name, "engine-metrics-overhead-") && e.Value > worst {
						worst = e.Value
					}
				}
				return worst
			}
			if ot == nil || worse(aentries) < worse(oentries) {
				ot, oentries = at, aentries
			}
			if worse(oentries) <= overheadClean {
				break
			}
			fmt.Fprintf(w, "metrics overhead measurement polluted (%.2f%% worst); retrying\n", worse(aentries))
		}
		if err := render(ot); err != nil {
			return err
		}
		entries = append(entries, oentries...)
		if jsonDir != "" {
			path := filepath.Join(jsonDir, "BENCH_engine.json")
			if err := experiments.WriteBenchJSON(path, entries); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s (%d entries)\n", path, len(entries))
		}
	}
	return nil
}

// checkBaseline is the CI regression gate: schema-validate the freshly
// written BENCH_engine.json and compare its delta-path update-time metric
// against the committed baseline.
func checkBaseline(w io.Writer, jsonDir, baseline string, factor float64) error {
	if jsonDir == "" {
		return fmt.Errorf("-baseline requires -json <dir>")
	}
	const metric = "engine-update-time-per-element-delta"
	freshPath := filepath.Join(jsonDir, "BENCH_engine.json")
	fresh, base, err := experiments.CompareBenchJSON(freshPath, baseline, metric, factor)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline check ok: %s %.2fµs vs committed %.2fµs (limit %.1fx)\n", metric, fresh, base, factor)
	return nil
}

// checkIngestBaseline gates the writer-pipeline trajectory: the pipelined
// fsync=always per-post cost at 8 producers (a cell present in both the
// short CI run and the committed full matrix) must not exceed the
// committed baseline by more than the regression factor.
func checkIngestBaseline(w io.Writer, jsonDir, baseline string, factor float64) error {
	if jsonDir == "" {
		return fmt.Errorf("-ingest-baseline requires -json <dir>")
	}
	const metric = "ingest-us-per-post-pipelined-always-p8"
	freshPath := filepath.Join(jsonDir, "BENCH_ingest.json")
	fresh, base, err := experiments.CompareBenchJSON(freshPath, baseline, metric, factor)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ingest baseline check ok: %s %.2fµs vs committed %.2fµs (limit %.1fx)\n", metric, fresh, base, factor)
	return nil
}

// checkTenancyBaseline gates the hibernation trajectory on its budgets:
// the lazy-reactivation median and tail (p50/p99 activation latency) and
// the hot-tier footprint (resident bytes per stream). Any of them
// exceeding the committed baseline by more than the regression factor
// fails the run.
func checkTenancyBaseline(w io.Writer, jsonDir, baseline string, factor float64) error {
	if jsonDir == "" {
		return fmt.Errorf("-tenancy-baseline requires -json <dir>")
	}
	freshPath := filepath.Join(jsonDir, "BENCH_tenancy.json")
	for _, metric := range []string{"tenancy-activation-p50-ms", "tenancy-activation-p99-ms", "tenancy-resident-bytes-per-stream"} {
		fresh, base, err := experiments.CompareBenchJSON(freshPath, baseline, metric, factor)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "tenancy baseline check ok: %s %.2f vs committed %.2f (limit %.1fx)\n", metric, fresh, base, factor)
	}
	return nil
}

// checkMetricsOverhead is the observability hot-path gate: an absolute
// ceiling (not baseline-relative) on what metric recording may cost the
// engine, read from the freshly written instrumented/uninstrumented pair.
func checkMetricsOverhead(w io.Writer, jsonDir string, limitPct float64) error {
	if jsonDir == "" {
		return fmt.Errorf("-metrics-overhead-pct requires -json <dir>")
	}
	entries, err := experiments.ReadBenchJSON(filepath.Join(jsonDir, "BENCH_engine.json"))
	if err != nil {
		return err
	}
	for _, metric := range []string{"engine-metrics-overhead-add-pct", "engine-metrics-overhead-query-p99-pct"} {
		found := false
		for _, e := range entries {
			if e.Name != metric {
				continue
			}
			found = true
			if e.Value > limitPct {
				return fmt.Errorf("metrics recording too expensive: %s = %.2f%% (limit %.1f%%)", metric, e.Value, limitPct)
			}
			fmt.Fprintf(w, "metrics overhead ok: %s %.2f%% (limit %.1f%%)\n", metric, e.Value, limitPct)
		}
		if !found {
			return fmt.Errorf("BENCH_engine.json missing %q (run with -exp engine)", metric)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksir-bench:", err)
	os.Exit(1)
}
