// Command ksir-bench regenerates the paper's tables and figures on the
// synthetic datasets. Each experiment prints an aligned text table whose
// rows/series match the corresponding table or figure in the paper; see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
//
// Usage:
//
//	ksir-bench -exp all
//	ksir-bench -exp fig9 -elements 20000 -queries 200
//	ksir-bench -exp table6 -scale small
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/social-streams/ksir/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table3|table5|table6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|latency|concurrent|persist|all")
		scale    = flag.String("scale", "default", "preset scale: small|default")
		elements = flag.Int("elements", 0, "override stream size per dataset")
		queries  = flag.Int("queries", 0, "override workload size")
		seed     = flag.Int64("seed", 42, "master seed")
		out      = flag.String("out", "", "write output to file (default stdout)")
		jsonDir  = flag.String("json", "", "also write machine-readable BENCH_<exp>.json files into this directory")
	)
	flag.Parse()

	sc := experiments.DefaultScale
	if *scale == "small" {
		sc = experiments.SmallScale
	}
	if *elements > 0 {
		sc.Elements = *elements
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	sc.Seed = *seed

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fatal(err)
		}
	}

	lab := experiments.NewLab(sc)
	start := time.Now()
	if err := run(lab, strings.ToLower(*exp), w, *jsonDir); err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "total wall time: %v (scale: %d elements, %d queries per dataset)\n",
		time.Since(start).Round(time.Millisecond), sc.Elements, sc.Queries)
}

func run(lab *experiments.Lab, exp string, w io.Writer, jsonDir string) error {
	want := func(names ...string) bool {
		if exp == "all" {
			return true
		}
		for _, n := range names {
			if exp == n {
				return true
			}
		}
		return false
	}
	render := func(tables ...*experiments.Table) error {
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		return nil
	}

	if want("table3") {
		t, err := lab.Table3()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("table5") {
		t, err := lab.Table5()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("table6") {
		t, err := lab.Table6()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("fig7", "fig8") {
		f7, f8, err := lab.EpsSweep([]float64{0.1, 0.2, 0.3, 0.4, 0.5})
		if err != nil {
			return err
		}
		if exp == "all" || exp == "fig7" {
			if err := render(f7); err != nil {
				return err
			}
		}
		if exp == "all" || exp == "fig8" {
			if err := render(f8); err != nil {
				return err
			}
		}
	}
	if want("fig9", "fig10", "fig11") {
		f9, f10, f11, err := lab.KSweep([]int{5, 10, 15, 20, 25})
		if err != nil {
			return err
		}
		if exp == "all" || exp == "fig9" {
			if err := render(f9...); err != nil {
				return err
			}
		}
		if exp == "all" || exp == "fig10" {
			if err := render(f10...); err != nil {
				return err
			}
		}
		if exp == "all" || exp == "fig11" {
			if err := render(f11...); err != nil {
				return err
			}
		}
	}
	if want("fig12", "fig14") {
		f12, f14z, err := lab.ZSweep([]int{50, 100, 150, 200, 250})
		if err != nil {
			return err
		}
		if exp == "all" || exp == "fig12" {
			if err := render(f12...); err != nil {
				return err
			}
		}
		if err := render(f14z); err != nil {
			return err
		}
	}
	if want("latency") {
		t, err := lab.LatencyProfile()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("fig13", "fig14") {
		f13, f14t, err := lab.TSweep([]float64{6, 12, 18, 24, 30})
		if err != nil {
			return err
		}
		if exp == "all" || exp == "fig13" {
			if err := render(f13...); err != nil {
				return err
			}
		}
		if err := render(f14t); err != nil {
			return err
		}
	}
	if want("concurrent") {
		t, entries, err := lab.Concurrent(4, 0)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if jsonDir != "" {
			path := filepath.Join(jsonDir, "BENCH_concurrent.json")
			if err := experiments.WriteBenchJSON(path, entries); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s (%d entries)\n", path, len(entries))
		}
	}
	if want("persist") {
		t, entries, err := lab.Persist(nil)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if jsonDir != "" {
			path := filepath.Join(jsonDir, "BENCH_persist.json")
			if err := experiments.WriteBenchJSON(path, entries); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s (%d entries)\n", path, len(entries))
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksir-bench:", err)
	os.Exit(1)
}
