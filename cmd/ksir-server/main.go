// Command ksir-server serves k-SIR queries over HTTP for live streams.
// It loads a trained model (ksir model file) or trains one from a text
// corpus at startup, registers a "default" stream in a multi-tenant hub,
// and serves the versioned /v1 API:
//
//	ksir-server -corpus corpus.txt -topics 50 -addr :8080
//	ksir-server -model model.bin -addr :8080
//
// With -data-dir the hub is durable: every stream's accepted posts are
// write-ahead logged and its state periodically checkpointed under the
// directory, all streams are recovered on startup, and SIGINT/SIGTERM
// triggers a graceful shutdown — drain HTTP, final checkpoint for every
// stream, closed events to SSE subscribers:
//
//	ksir-server -model model.bin -data-dir /var/lib/ksir -fsync interval
//
//	curl -XPOST localhost:8080/v1/streams -d '{"name":"feed","bucket_sec":60}'
//	curl -XPOST localhost:8080/v1/streams/feed/posts -d '{"id":1,"time":60,"text":"late goal wins the derby"}'
//	curl -XPOST localhost:8080/v1/streams/feed/flush -d '{"now":120}'
//	curl -XPOST localhost:8080/v1/streams/feed/query -d '{"k":10,"keywords":["soccer"],"explain":true}'
//	curl -N  'localhost:8080/v1/streams/feed/subscribe?k=5&keywords=soccer&every=15m'
//
// Observability: logs are structured (log/slog; -log-level, -log-format),
// request traces are recorded in-process and served at GET /debug/traces
// (-trace-sample, -trace-buffer), ops slower than -slow-op-threshold are
// always kept and logged with their span breakdown, and the -metrics-addr
// sidecar additionally serves /debug/traces and net/http/pprof (-pprof
// exposes pprof on the main listener too).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ksir "github.com/social-streams/ksir"
	"github.com/social-streams/ksir/internal/server"
	"github.com/social-streams/ksir/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "", "load a trained model file (see Model.SaveFile)")
		corpus    = flag.String("corpus", "", "train from a text file, one document per line")
		topics    = flag.Int("topics", 50, "topics when training from -corpus")
		iters     = flag.Int("iters", 100, "Gibbs sweeps when training")
		btm       = flag.Bool("btm", false, "use the biterm topic model (short texts)")
		saveModel = flag.String("save-model", "", "after training, save the model here")
		window    = flag.Duration("window", 24*time.Hour, "sliding window length T")
		bucket    = flag.Duration("bucket", 15*time.Minute, "batch update interval L")
		lambda    = flag.Float64("lambda", 0.5, "semantic/influence trade-off (0 = pure influence)")
		eta       = flag.Float64("eta", 20, "influence rescale")
		shards    = flag.Int("shards", 0, "topic shards for list maintenance (0 = GOMAXPROCS)")

		metricsAddr = flag.String("metrics-addr", "", "also serve GET /metrics, GET /debug/traces and /debug/pprof/ on this separate listener (scrape/debug sidecar); /metrics and /debug/traces are always available on -addr")
		pprofOn     = flag.Bool("pprof", false, "also expose /debug/pprof/ on the main -addr listener (the -metrics-addr sidecar always serves it)")

		logLevel  = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log encoding: text|json")

		traceSample = flag.Float64("trace-sample", trace.DefaultSampleRate, "fraction of ops head-sampled into /debug/traces (0 disables sampling; slow ops are always kept)")
		traceBuffer = flag.Int("trace-buffer", trace.DefaultCapacity, "max traces held in the in-process ring buffer")
		slowOp      = flag.Duration("slow-op-threshold", trace.DefaultSlowThreshold, "ops at least this slow are always traced and logged with their span breakdown (0 disables)")

		dataDir   = flag.String("data-dir", "", "enable durability: WAL + checkpoints per stream under this directory (recovered on startup)")
		fsync     = flag.String("fsync", "interval", "WAL fsync policy: always|interval|never")
		fsyncInt  = flag.Duration("fsync-interval", time.Second, "max sync lag under -fsync interval")
		ckptEvery = flag.Int64("checkpoint-every", 64, "buckets between automatic checkpoints")
		drainWait = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown HTTP drain budget")

		maxResident   = flag.Int("max-resident-streams", 0, "hot-tier budget: hibernate the coldest streams past this many resident (0 = unbounded)")
		maxResidentB  = flag.Int64("max-resident-bytes", 0, "hot-tier budget: hibernate the coldest streams past this many summed resident bytes (0 = unbounded)")
		evictLRU      = flag.Bool("evict-lru", false, "pin the pure last-touch LRU eviction baseline instead of the scan-resistant clock policy")
		prefetchSweep = flag.Duration("prefetch-sweep", 0, "run the predictive prefetcher at this interval, reactivating streams ahead of their predicted next touch (0 disables)")
		prefetchLook  = flag.Duration("prefetch-lookahead", 0, "how far around the predicted touch a stream counts as due (default 2x -prefetch-sweep)")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	rec := trace.Default()
	rec.SetSampleRate(*traceSample)
	rec.SetCapacity(*traceBuffer)
	rec.SetSlowThreshold(*slowOp)
	rec.SetLogger(logger)

	var model *ksir.Model
	switch {
	case *modelPath != "":
		model, err = ksir.LoadModelFile(*modelPath)
		if err != nil {
			fatal(err)
		}
		logger.Info("loaded model", "topics", model.Topics(), "vocab", model.VocabSize())
	case *corpus != "":
		texts, err := readLines(*corpus)
		if err != nil {
			fatal(err)
		}
		opts := []ksir.ModelOption{
			ksir.WithTopics(*topics),
			ksir.WithIterations(*iters),
		}
		if *btm {
			opts = append(opts, ksir.WithBTM())
		}
		logger.Info("training model", "documents", len(texts), "topics", *topics)
		start := time.Now()
		model, err = ksir.TrainModel(texts, opts...)
		if err != nil {
			fatal(err)
		}
		logger.Info("trained model",
			"duration", time.Since(start).Round(time.Millisecond),
			"vocab", model.VocabSize())
		if *saveModel != "" {
			if err := model.SaveFile(*saveModel); err != nil {
				fatal(err)
			}
			logger.Info("model saved", "path", *saveModel)
		}
	default:
		fatal(fmt.Errorf("need -model or -corpus"))
	}

	defaults := ksir.Options{Window: *window, Bucket: *bucket, Lambda: *lambda, Eta: *eta}
	// WithLambda keeps -lambda 0 (pure influence) expressible; passing the
	// same options to NewHub makes streams created over POST /v1/streams
	// inherit the deployment's tuning (λ and shard count included).
	sopts := []ksir.StreamOption{ksir.WithLambda(*lambda), ksir.WithShards(*shards)}

	var hub *ksir.Hub
	if *dataDir != "" {
		policy, err := ksir.ParseFsyncPolicy(*fsync)
		if err != nil {
			fatal(err)
		}
		eviction := ksir.EvictClock
		if *evictLRU {
			eviction = ksir.EvictLRU
		}
		hub, err = ksir.OpenHub(*dataDir, model, ksir.PersistOptions{
			Fsync:              policy,
			FsyncInterval:      *fsyncInt,
			CheckpointEvery:    *ckptEvery,
			MaxResidentStreams: *maxResident,
			MaxResidentBytes:   *maxResidentB,
			Eviction:           eviction,
			PrefetchSweep:      *prefetchSweep,
			PrefetchLookahead:  *prefetchLook,
			Logger:             logger,
		}, sopts...)
		if err != nil {
			fatal(err)
		}
		if names := hub.List(); len(names) > 0 {
			logger.Info("recovered streams", "count", len(names), "dir", *dataDir, "streams", names)
		}
	} else {
		hub = ksir.NewHub(ksir.WithLogger(logger))
	}
	if _, err := hub.Get(server.DefaultStream); err != nil {
		if _, err := hub.Create(server.DefaultStream, model, defaults, sopts...); err != nil {
			fatal(err)
		}
	}

	handler := server.NewHub(hub, model, defaults, sopts...)
	handler.SetLogger(logger)
	if *pprofOn {
		handler.EnablePprof()
		logger.Info("pprof enabled on main listener", "addr", *addr)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("serving /v1", "addr", *addr, "default_stream", server.DefaultStream,
		"trace_sample", *traceSample, "slow_op_threshold", *slowOp)

	// Optional scrape/debug sidecar: /metrics, /debug/traces and pprof on
	// their own listener, so operators can firewall the API port while
	// Prometheus and profilers talk to a private one.
	var msrv *http.Server
	if *metricsAddr != "" {
		mmux := http.NewServeMux()
		mmux.Handle("GET /metrics", handler.MetricsHandler())
		mmux.Handle("GET /debug/traces", handler.TracesHandler())
		server.RegisterPprof(mmux)
		msrv = &http.Server{Addr: *metricsAddr, Handler: mmux}
		go func() { errc <- msrv.ListenAndServe() }()
		logger.Info("serving metrics sidecar", "addr", *metricsAddr,
			"routes", "/metrics /debug/traces /debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown, in order: (1) end live SSE subscriptions with a
	// closed event — they never finish on their own and would hold the
	// drain open to its deadline; (2) drain HTTP, letting ordinary
	// in-flight requests (ingests included) complete within the budget;
	// (3) close every stream, whose final checkpoints make all accepted
	// state durable.
	logger.Info("shutting down: draining HTTP, checkpointing streams")
	if msrv != nil {
		_ = msrv.Close() // scrapes are stateless; no drain needed
	}
	handler.StopSubscriptions()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("drain failed", "error", err)
	}
	if err := hub.CloseAll(); err != nil {
		logger.Error("final checkpoint failed", "error", err)
	}
	logger.Info("shutdown complete")
}

// buildLogger constructs the process logger from the -log-level and
// -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<22)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			lines = append(lines, line)
		}
	}
	return lines, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksir-server:", err)
	os.Exit(1)
}
