// Command ksir-server serves k-SIR queries over HTTP for a live stream.
// It loads a trained model (ksir model file) or trains one from a text
// corpus at startup, then accepts posts and queries:
//
//	ksir-server -corpus corpus.txt -topics 50 -addr :8080
//	ksir-server -model model.bin -addr :8080
//
//	curl -XPOST localhost:8080/posts -d '{"id":1,"time":60,"text":"late goal wins the derby"}'
//	curl -XPOST localhost:8080/flush -d '{"now":120}'
//	curl -XPOST localhost:8080/query -d '{"k":10,"keywords":["soccer"],"explain":true}'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	ksir "github.com/social-streams/ksir"
	"github.com/social-streams/ksir/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "", "load a trained model file (see Model.SaveFile)")
		corpus    = flag.String("corpus", "", "train from a text file, one document per line")
		topics    = flag.Int("topics", 50, "topics when training from -corpus")
		iters     = flag.Int("iters", 100, "Gibbs sweeps when training")
		btm       = flag.Bool("btm", false, "use the biterm topic model (short texts)")
		saveModel = flag.String("save-model", "", "after training, save the model here")
		window    = flag.Duration("window", 24*time.Hour, "sliding window length T")
		bucket    = flag.Duration("bucket", 15*time.Minute, "batch update interval L")
		lambda    = flag.Float64("lambda", 0.5, "semantic/influence trade-off")
		eta       = flag.Float64("eta", 20, "influence rescale")
	)
	flag.Parse()

	var model *ksir.Model
	var err error
	switch {
	case *modelPath != "":
		model, err = ksir.LoadModelFile(*modelPath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded model: z=%d vocab=%d\n", model.Topics(), model.VocabSize())
	case *corpus != "":
		texts, err := readLines(*corpus)
		if err != nil {
			fatal(err)
		}
		opts := []ksir.ModelOption{
			ksir.WithTopics(*topics),
			ksir.WithIterations(*iters),
		}
		if *btm {
			opts = append(opts, ksir.WithBTM())
		}
		fmt.Fprintf(os.Stderr, "training on %d documents (z=%d)...\n", len(texts), *topics)
		start := time.Now()
		model, err = ksir.TrainModel(texts, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trained in %v (vocab=%d)\n",
			time.Since(start).Round(time.Millisecond), model.VocabSize())
		if *saveModel != "" {
			if err := model.SaveFile(*saveModel); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "model saved to %s\n", *saveModel)
		}
	default:
		fatal(fmt.Errorf("need -model or -corpus"))
	}

	st, err := ksir.New(model, ksir.Options{
		Window: *window,
		Bucket: *bucket,
		Lambda: *lambda,
		Eta:    *eta,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "serving on %s\n", *addr)
	if err := http.ListenAndServe(*addr, server.New(st)); err != nil {
		fatal(err)
	}
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<22)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			lines = append(lines, line)
		}
	}
	return lines, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksir-server:", err)
	os.Exit(1)
}
