// Command ksir-server serves k-SIR queries over HTTP for live streams.
// It loads a trained model (ksir model file) or trains one from a text
// corpus at startup, registers a "default" stream in a multi-tenant hub,
// and serves the versioned /v1 API:
//
//	ksir-server -corpus corpus.txt -topics 50 -addr :8080
//	ksir-server -model model.bin -addr :8080
//
// With -data-dir the hub is durable: every stream's accepted posts are
// write-ahead logged and its state periodically checkpointed under the
// directory, all streams are recovered on startup, and SIGINT/SIGTERM
// triggers a graceful shutdown — drain HTTP, final checkpoint for every
// stream, closed events to SSE subscribers:
//
//	ksir-server -model model.bin -data-dir /var/lib/ksir -fsync interval
//
//	curl -XPOST localhost:8080/v1/streams -d '{"name":"feed","bucket_sec":60}'
//	curl -XPOST localhost:8080/v1/streams/feed/posts -d '{"id":1,"time":60,"text":"late goal wins the derby"}'
//	curl -XPOST localhost:8080/v1/streams/feed/flush -d '{"now":120}'
//	curl -XPOST localhost:8080/v1/streams/feed/query -d '{"k":10,"keywords":["soccer"],"explain":true}'
//	curl -N  'localhost:8080/v1/streams/feed/subscribe?k=5&keywords=soccer&every=15m'
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	ksir "github.com/social-streams/ksir"
	"github.com/social-streams/ksir/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "", "load a trained model file (see Model.SaveFile)")
		corpus    = flag.String("corpus", "", "train from a text file, one document per line")
		topics    = flag.Int("topics", 50, "topics when training from -corpus")
		iters     = flag.Int("iters", 100, "Gibbs sweeps when training")
		btm       = flag.Bool("btm", false, "use the biterm topic model (short texts)")
		saveModel = flag.String("save-model", "", "after training, save the model here")
		window    = flag.Duration("window", 24*time.Hour, "sliding window length T")
		bucket    = flag.Duration("bucket", 15*time.Minute, "batch update interval L")
		lambda    = flag.Float64("lambda", 0.5, "semantic/influence trade-off (0 = pure influence)")
		eta       = flag.Float64("eta", 20, "influence rescale")
		shards    = flag.Int("shards", 0, "topic shards for list maintenance (0 = GOMAXPROCS)")

		metricsAddr = flag.String("metrics-addr", "", "also serve GET /metrics on this separate listener (Prometheus scrape sidecar); /metrics is always available on -addr")

		dataDir   = flag.String("data-dir", "", "enable durability: WAL + checkpoints per stream under this directory (recovered on startup)")
		fsync     = flag.String("fsync", "interval", "WAL fsync policy: always|interval|never")
		fsyncInt  = flag.Duration("fsync-interval", time.Second, "max sync lag under -fsync interval")
		ckptEvery = flag.Int64("checkpoint-every", 64, "buckets between automatic checkpoints")
		drainWait = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown HTTP drain budget")
	)
	flag.Parse()

	var model *ksir.Model
	var err error
	switch {
	case *modelPath != "":
		model, err = ksir.LoadModelFile(*modelPath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded model: z=%d vocab=%d\n", model.Topics(), model.VocabSize())
	case *corpus != "":
		texts, err := readLines(*corpus)
		if err != nil {
			fatal(err)
		}
		opts := []ksir.ModelOption{
			ksir.WithTopics(*topics),
			ksir.WithIterations(*iters),
		}
		if *btm {
			opts = append(opts, ksir.WithBTM())
		}
		fmt.Fprintf(os.Stderr, "training on %d documents (z=%d)...\n", len(texts), *topics)
		start := time.Now()
		model, err = ksir.TrainModel(texts, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trained in %v (vocab=%d)\n",
			time.Since(start).Round(time.Millisecond), model.VocabSize())
		if *saveModel != "" {
			if err := model.SaveFile(*saveModel); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "model saved to %s\n", *saveModel)
		}
	default:
		fatal(fmt.Errorf("need -model or -corpus"))
	}

	defaults := ksir.Options{Window: *window, Bucket: *bucket, Lambda: *lambda, Eta: *eta}
	// WithLambda keeps -lambda 0 (pure influence) expressible; passing the
	// same options to NewHub makes streams created over POST /v1/streams
	// inherit the deployment's tuning (λ and shard count included).
	sopts := []ksir.StreamOption{ksir.WithLambda(*lambda), ksir.WithShards(*shards)}

	var hub *ksir.Hub
	if *dataDir != "" {
		policy, err := ksir.ParseFsyncPolicy(*fsync)
		if err != nil {
			fatal(err)
		}
		hub, err = ksir.OpenHub(*dataDir, model, ksir.PersistOptions{
			Fsync:           policy,
			FsyncInterval:   *fsyncInt,
			CheckpointEvery: *ckptEvery,
		}, sopts...)
		if err != nil {
			fatal(err)
		}
		if names := hub.List(); len(names) > 0 {
			fmt.Fprintf(os.Stderr, "recovered %d stream(s) from %s: %v\n", len(names), *dataDir, names)
		}
	} else {
		hub = ksir.NewHub()
	}
	if _, err := hub.Get(server.DefaultStream); err != nil {
		if _, err := hub.Create(server.DefaultStream, model, defaults, sopts...); err != nil {
			fatal(err)
		}
	}

	handler := server.NewHub(hub, model, defaults, sopts...)
	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving /v1 on %s (default stream %q)\n", *addr, server.DefaultStream)

	// Optional scrape sidecar: /metrics on its own listener, so operators
	// can firewall the API port while Prometheus scrapes a private one.
	var msrv *http.Server
	if *metricsAddr != "" {
		mmux := http.NewServeMux()
		mmux.Handle("GET /metrics", handler.MetricsHandler())
		msrv = &http.Server{Addr: *metricsAddr, Handler: mmux}
		go func() { errc <- msrv.ListenAndServe() }()
		fmt.Fprintf(os.Stderr, "serving /metrics on %s\n", *metricsAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown, in order: (1) end live SSE subscriptions with a
	// closed event — they never finish on their own and would hold the
	// drain open to its deadline; (2) drain HTTP, letting ordinary
	// in-flight requests (ingests included) complete within the budget;
	// (3) close every stream, whose final checkpoints make all accepted
	// state durable.
	fmt.Fprintln(os.Stderr, "shutting down: draining HTTP, checkpointing streams...")
	if msrv != nil {
		_ = msrv.Close() // scrapes are stateless; no drain needed
	}
	handler.StopSubscriptions()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "ksir-server: drain:", err)
	}
	if err := hub.CloseAll(); err != nil {
		fmt.Fprintln(os.Stderr, "ksir-server: final checkpoint:", err)
	}
	fmt.Fprintln(os.Stderr, "ksir-server: shutdown complete")
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<22)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			lines = append(lines, line)
		}
	}
	return lines, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksir-server:", err)
	os.Exit(1)
}
