// Command ksir-loadgen drives open-loop load — arrivals on a precomputed
// schedule, never gated on completions, latency measured from each op's
// scheduled send time so the percentiles are coordinated-omission-free
// (internal/loadgen, DESIGN.md §14).
//
// Bench mode (default) runs the latency-under-load matrix in-process and
// writes BENCH_load.json — the committed curves CI gates against:
//
//	ksir-loadgen -json .
//	ksir-loadgen -short -json /tmp/out -baseline BENCH_load.json
//
// Remote mode drives a running ksir-server over the client SDK, with
// synthetic traffic or a recorded JSONL stream (ksir-gen output):
//
//	ksir-loadgen -addr http://localhost:8080 -stream fire -create -rate 500 -shape bursty -ops 5000
//	ksir-loadgen -addr http://localhost:8080 -stream fire -in stream.jsonl -rate 1000
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/client"
	"github.com/social-streams/ksir/internal/experiments"
	"github.com/social-streams/ksir/internal/jsonl"
	"github.com/social-streams/ksir/internal/loadgen"
)

func main() {
	var (
		// Bench mode.
		rates    = flag.String("rates", "500,1000,2000", "bench: comma-separated target rates (ops/sec)")
		cellSecs = flag.Float64("cell-secs", 2, "bench: schedule length per cell in seconds")
		streams  = flag.Int("streams", 16, "bench: stream count in the mixed-tenancy cell")
		short    = flag.Bool("short", false, "bench: CI smoke mode (two rates, half-second cells)")
		seed     = flag.Int64("seed", 42, "schedule seed")
		out      = flag.String("out", "", "write output to file (default stdout)")
		jsonDir  = flag.String("json", "", "bench: write machine-readable BENCH_load.json into this directory")
		baseline = flag.String("baseline", "", "committed BENCH_load.json to regression-check the fresh run against (requires -json)")
		regress  = flag.Float64("regress-factor", 3, "fail when a fresh gated metric exceeds baseline×factor")

		// Remote mode.
		addr    = flag.String("addr", "", "remote: base URL of a running ksir-server (enables remote mode)")
		stream  = flag.String("stream", "load", "remote: stream name")
		create  = flag.Bool("create", false, "remote: create the stream if it does not exist")
		rate    = flag.Float64("rate", 500, "remote: target op rate per second")
		shape   = flag.String("shape", "poisson", "remote: arrival shape (poisson|bursty|uniform)")
		ops     = flag.Int("ops", 2000, "remote: synthetic ops to schedule")
		in      = flag.String("in", "", "remote: replay this recorded JSONL stream (ksir-gen output) instead of synthetic posts")
		flatten = flag.Bool("flatten-ts", false, "remote replay: collapse recorded timestamps onto one value (avoids out-of-order rejections from concurrent replay reordering)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *addr != "" {
		if err := runRemote(w, *addr, *stream, *in, *shape, *create, *flatten, *rate, *ops, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if err := runBench(w, *rates, *cellSecs, *streams, *short, *seed, *jsonDir, *baseline, *regress); err != nil {
		fatal(err)
	}
}

// runBench runs the in-process latency-under-load matrix and optionally
// gates it against a committed baseline (the CI smoke gate).
func runBench(w io.Writer, ratesCSV string, cellSecs float64, streams int, short bool, seed int64, jsonDir, baseline string, regress float64) error {
	rates, err := parseRates(ratesCSV)
	if err != nil {
		return err
	}
	sc := experiments.DefaultScale
	if short {
		sc = experiments.SmallScale
		// Keep the gated cells (r500, r1000) and shrink everything else.
		if len(rates) > 2 {
			rates = rates[:2]
		}
		if cellSecs > 0.5 {
			cellSecs = 0.5
		}
	}
	sc.Seed = seed
	lab := experiments.NewLab(sc)

	start := time.Now()
	t, entries, err := lab.Load(rates, cellSecs, streams)
	if err != nil {
		return err
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(jsonDir, "BENCH_load.json")
		if err := experiments.WriteBenchJSON(path, entries); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d entries)\n", path, len(entries))
	}
	if baseline != "" {
		if err := checkLoadBaseline(w, jsonDir, baseline, regress); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// checkLoadBaseline gates the load trajectory on two stable cells: the
// commit-window p50 at the lowest rate (dominated by the deliberate 2ms
// window, so it moves only when the pipeline's latency floor moves) and
// the commit-window fsyncs/op at the middle rate (the group-commit
// amortization the window exists for). The p99 tails and the saturating
// high-rate cells are deliberately not gated — short smoke cells have too
// few samples for a stable tail, and an open-loop p99 under saturation
// grows with schedule length by design.
func checkLoadBaseline(w io.Writer, jsonDir, baseline string, factor float64) error {
	if jsonDir == "" {
		return fmt.Errorf("-baseline requires -json <dir>")
	}
	freshPath := filepath.Join(jsonDir, "BENCH_load.json")
	for _, metric := range []string{"load-add-p50-ms-poisson-r500-cw", "load-fsyncs-per-op-poisson-r1000-cw"} {
		fresh, base, err := experiments.CompareBenchJSON(freshPath, baseline, metric, factor)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "load baseline check ok: %s %.3f vs committed %.3f (limit %.1fx)\n", metric, fresh, base, factor)
	}
	return nil
}

func parseRates(csv string) ([]float64, error) {
	var rates []float64
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return rates, nil
}

// runRemote drives a running server open-loop over the SDK and prints
// the from-scheduled latency distribution.
func runRemote(w io.Writer, addr, stream, in, shapeName string, create, flatten bool, rate float64, ops int, seed int64) error {
	shape, err := loadgen.ParseShape(shapeName)
	if err != nil {
		return err
	}
	cl := client.New(addr)
	ctx := context.Background()
	if create {
		_, err := cl.CreateStream(ctx, apiv1.CreateStreamRequest{Name: stream})
		if err != nil && !errors.Is(err, ksir.ErrStreamExists) {
			return err
		}
	}
	st := cl.Stream(stream)

	var posts []apiv1.Post
	if in != "" {
		if posts, err = readRecorded(in); err != nil {
			return err
		}
		if len(posts) == 0 {
			return fmt.Errorf("%s: no posts", in)
		}
		if ops > len(posts) || ops <= 0 {
			ops = len(posts)
		}
		posts = posts[:ops]
		if flatten {
			for i := range posts {
				posts[i].Time = posts[0].Time
			}
		}
		fmt.Fprintf(w, "replaying %d recorded posts from %s\n", len(posts), in)
	}

	offsets := loadgen.Offsets(shape, ops, rate, seed)
	words := []string{"goal striker keeper league", "dunk rebound playoffs court"}
	res := loadgen.Run(ctx, offsets, func(ctx context.Context, i int) error {
		var p apiv1.Post
		if posts != nil {
			p = posts[i]
		} else {
			// Synthetic: one shared timestamp keeps every post in-order
			// regardless of completion interleaving.
			p = apiv1.Post{ID: int64(i + 1), Time: 700, Text: words[i%2]}
		}
		_, err := st.Add(ctx, p)
		return err
	})

	fmt.Fprintf(w, "open-loop %s @ %.0f/s against %s (stream %q): %d ops, %d errors, realized %.0f/s\n",
		shape, rate, addr, stream, len(res.Latency), res.Errors,
		float64(len(res.Latency))/res.Elapsed.Seconds())
	for _, p := range []float64{50, 90, 99, 99.9} {
		fmt.Fprintf(w, "  p%-5v %12v (service %12v)\n", p,
			loadgen.Percentile(res.Latency, p).Round(10*time.Microsecond),
			loadgen.Percentile(res.Service, p).Round(10*time.Microsecond))
	}
	fmt.Fprintf(w, "  max generator dispatch lag: %v\n", res.MaxLag.Round(10*time.Microsecond))
	if posts != nil && res.Errors > 0 {
		fmt.Fprintf(w, "note: errors during recorded replay are usually out-of-order rejections — concurrent open-loop sends reorder a time-ordered recording at bucket boundaries; -flatten-ts avoids them\n")
	}
	return nil
}

// readRecorded loads a ksir-gen JSONL stream as wire posts (words joined
// into text; timestamps preserved, so replay order follows the recording).
func readRecorded(path string) ([]apiv1.Post, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var posts []apiv1.Post
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e jsonl.Elem
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		posts = append(posts, apiv1.Post{
			ID: e.ID, Time: e.TS, Text: strings.Join(e.Words, " "), Refs: e.Refs,
		})
	}
	return posts, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksir-loadgen:", err)
	os.Exit(1)
}
