// Command ksir-query demonstrates end-to-end k-SIR query processing: it
// generates (or loads) a synthetic stream, trains a topic model on it,
// replays the stream through the engine, and answers keyword queries —
// either the ones passed via -q, or interactively from stdin.
//
// Usage:
//
//	ksir-query -profile twitter -n 5000 -q "w00042 w00619" -k 5
//	ksir-query -profile reddit -n 5000            # interactive
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/social-streams/ksir/internal/baselines"
	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/dataset"
	"github.com/social-streams/ksir/internal/experiments"
	"github.com/social-streams/ksir/internal/jsonl"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

func main() {
	var (
		profile = flag.String("profile", "twitter", "dataset shape: aminer|reddit|twitter")
		n       = flag.Int("n", 5000, "number of elements")
		z       = flag.Int("z", 20, "number of topics")
		k       = flag.Int("k", 5, "result size")
		q       = flag.String("q", "", "space-separated query keywords (empty: interactive)")
		alg     = flag.String("alg", "mttd", "algorithm: mtts|mttd|topk")
		seed    = flag.Int64("seed", 1, "seed")
		in      = flag.String("in", "", "load a JSON-lines stream (ksir-gen output) instead of generating")
		eta     = flag.Float64("eta", 0, "influence rescale eta (0: profile default)")
	)
	flag.Parse()

	var p dataset.Profile
	switch strings.ToLower(*profile) {
	case "aminer":
		p = dataset.AMinerLike(*n)
	case "reddit":
		p = dataset.RedditLike(*n)
	case "twitter":
		p = dataset.TwitterLike(*n)
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	p.Topics = *z
	if *eta > 0 {
		p.Eta = *eta
	}

	var elems []*stream.Element
	var docs [][]textproc.WordID
	var vocab *textproc.Vocabulary
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		loaded, dangling, err := jsonl.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if dangling > 0 {
			fmt.Fprintf(os.Stderr, "warning: dropped %d dangling references\n", dangling)
		}
		elems, docs, vocab = loaded.Elements, loaded.Docs, loaded.Vocab
		if len(elems) == 0 {
			fatal(fmt.Errorf("empty stream %q", *in))
		}
		p.Duration = elems[len(elems)-1].TS
		fmt.Fprintf(os.Stderr, "loaded %d elements from %s\n", len(elems), *in)
	} else {
		fmt.Fprintf(os.Stderr, "generating %d elements (%s-like)...\n", p.Elements, p.Name)
		ds, err := dataset.Generate(p, *seed)
		if err != nil {
			fatal(err)
		}
		elems, docs, vocab = ds.Elements, ds.Docs, ds.Vocab
	}

	fmt.Fprintf(os.Stderr, "training topic model (z=%d)...\n", *z)
	start := time.Now()
	var model *topicmodel.Model
	var err error
	if p.Style == dataset.Retweet && p.AvgLen < 10 {
		model, _, err = topicmodel.TrainBTM(docs, topicmodel.BTMConfig{
			Topics: *z, VocabSize: vocab.Size(), Iterations: 40, Seed: *seed,
		})
	} else {
		model, _, err = topicmodel.TrainLDA(docs, topicmodel.LDAConfig{
			Topics: *z, VocabSize: vocab.Size(), Iterations: 40, Seed: *seed,
		})
	}
	if err != nil {
		fatal(err)
	}
	inf := topicmodel.NewInferencer(model, *seed)
	for i, e := range elems {
		e.Topics = inf.InferDoc(docs[i])
	}
	fmt.Fprintf(os.Stderr, "trained in %v\n", time.Since(start).Round(time.Millisecond))

	g, err := core.NewEngine(core.Config{
		Model:        model,
		WindowLength: p.Duration/4 + 1,
		Params:       scoreParams(p),
	})
	if err != nil {
		fatal(err)
	}
	buckets, err := stream.Partition(elems, p.Duration/96+1)
	if err != nil {
		fatal(err)
	}
	for _, b := range buckets {
		if err := g.Ingest(b.End, b.Elems); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "stream replayed: %d active elements at t=%d\n\n", g.NumActive(), g.Now())

	algorithm := core.MTTD
	switch strings.ToLower(*alg) {
	case "mtts":
		algorithm = core.MTTS
	case "mttd":
		algorithm = core.MTTD
	case "topk":
		algorithm = core.TopkRep
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}

	answer := func(keywords []string) {
		var ids []textproc.WordID
		for _, kw := range keywords {
			if id, ok := vocab.ID(kw); ok {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			fmt.Println("no keyword in vocabulary; try e.g.:", strings.Join(vocab.TopWords(5), " "))
			return
		}
		x := inf.InferDense(ids).Truncate(8, 0.02)
		start := time.Now()
		res, err := g.Query(core.Query{K: *k, X: x, Epsilon: 0.1, Algorithm: algorithm})
		if err != nil {
			fatal(err)
		}
		dur := time.Since(start)
		fmt.Printf("%s answered in %v: score=%.4f evaluated %d/%d active\n",
			algorithm, dur.Round(time.Microsecond), res.Score, res.Evaluated, res.ActiveAtQuery)
		for i, e := range res.Elements {
			var words []string
			for _, tc := range e.Doc.Terms {
				words = append(words, vocab.Word(tc.Word))
			}
			fmt.Printf("  %d. e%-6d t=%-8d refs_in=%-3d %s\n",
				i+1, e.ID, e.TS, g.Window().NumChildren(e.ID), strings.Join(words, " "))
		}
		// Contrast with plain top-k relevance.
		rel := baselines.RelTopK(experiments.Actives(g), x, *k)
		var relIDs []string
		for _, e := range rel {
			relIDs = append(relIDs, fmt.Sprintf("e%d", e.ID))
		}
		fmt.Printf("  (REL top-%d would return: %s)\n\n", *k, strings.Join(relIDs, " "))
	}

	if *q != "" {
		answer(strings.Fields(*q))
		return
	}
	fmt.Printf("interactive mode — enter keywords (try: %s)\n", strings.Join(vocab.TopWords(5), " "))
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("ksir> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == "quit" || line == "exit" {
			return
		}
		answer(strings.Fields(line))
	}
}

func scoreParams(p dataset.Profile) score.Params {
	return score.Params{Lambda: 0.5, Eta: p.Eta}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksir-query:", err)
	os.Exit(1)
}
