// Command ksir-query is a terminal client for a running ksir-server,
// built on the client SDK: it answers one-shot keyword queries, runs an
// interactive query loop, and follows standing queries over SSE.
//
// Usage:
//
//	ksir-query -addr http://localhost:8080 -q "goal league" -k 5
//	ksir-query -stream feed -q "soccer" -explain
//	ksir-query -stream feed -q "soccer" -watch -every 15m   # SSE follow
//	ksir-query -list                                        # streams + stats
//	ksir-query                                              # interactive
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/client"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "ksir-server base URL")
		stream  = flag.String("stream", "default", "stream name")
		k       = flag.Int("k", 5, "result size")
		q       = flag.String("q", "", "space-separated query keywords (empty: interactive)")
		alg     = flag.String("alg", "mttd", "algorithm: mtts|mttd|topk")
		epsilon = flag.Float64("epsilon", 0, "approximation knob ε (0: server default)")
		explain = flag.Bool("explain", false, "show per-post gain breakdowns")
		list    = flag.Bool("list", false, "list the server's streams and exit")
		watch   = flag.Bool("watch", false, "follow the query as an SSE standing query")
		every   = flag.Duration("every", 0, "refresh interval for -watch (0: stream bucket)")
	)
	flag.Parse()

	c := client.New(*addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *list {
		streams, err := c.ListStreams(ctx)
		if err != nil {
			fatal(err)
		}
		if len(streams) == 0 {
			fmt.Println("no streams registered")
			return
		}
		for _, s := range streams {
			fmt.Printf("%-20s active=%-7d now=%-10d bucket=%-6d subs=%-4d window=%ds/%ds λ=%.2f η=%.0f\n",
				s.Name, s.Active, s.Now, s.Bucket, s.Subscriptions, s.WindowSec, s.BucketSec, s.Lambda, s.Eta)
		}
		return
	}

	st := c.Stream(*stream)
	if *watch {
		if *q == "" {
			fatal(fmt.Errorf("-watch needs -q keywords"))
		}
		req := client.SubscribeRequest{
			K:            *k,
			Keywords:     strings.Fields(*q),
			Every:        *every,
			Algorithm:    *alg,
			Epsilon:      *epsilon,
			OnlyOnChange: true,
		}
		fmt.Fprintf(os.Stderr, "watching %q on stream %q (ctrl-c to stop)...\n", *q, *stream)
		err := st.Subscribe(ctx, req, func(ev client.Event) error {
			fmt.Printf("-- refresh at bucket %d (score %.4f, %d active) --\n", ev.Bucket, ev.Result.Score, ev.Result.Active)
			printPosts(ev.Result)
			return nil
		})
		if err != nil && ctx.Err() == nil {
			fatal(err)
		}
		return
	}

	answer := func(keywords []string) {
		start := time.Now()
		res, err := st.Query(ctx, apiv1.QueryRequest{
			K: *k, Keywords: keywords, Algorithm: *alg, Epsilon: *epsilon, Explain: *explain,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ksir-query:", err)
			return
		}
		fmt.Printf("%s answered in %v: score=%.4f evaluated %d/%d active (bucket %d)\n",
			strings.ToUpper(*alg), time.Since(start).Round(time.Microsecond),
			res.Score, res.Evaluated, res.Active, res.Bucket)
		printPosts(res)
		for _, ex := range res.Explain {
			kind := "semantic"
			if ex.Influence > ex.Semantic {
				kind = "influence"
			}
			fmt.Printf("     post %d: gain %.4f (%.4f sem + %.4f infl, mostly %s; %d new words)\n",
				ex.Post.ID, ex.Gain, ex.Semantic, ex.Influence, kind, ex.NewWords)
		}
	}

	if *q != "" {
		answer(strings.Fields(*q))
		return
	}
	info, err := st.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("interactive mode — stream %q, %d active posts at t=%d\n", *stream, info.Active, info.Now)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("ksir> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == "quit" || line == "exit" {
			return
		}
		answer(strings.Fields(line))
	}
}

func printPosts(res apiv1.QueryResponse) {
	for i, p := range res.Posts {
		fmt.Printf("  %d. post %-8d t=%-10d %s\n", i+1, p.ID, p.Time, p.Text)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ksir-query:", err)
	os.Exit(1)
}
