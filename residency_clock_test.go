package ksir

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// scanChurnHub builds the scan-resistance fixture: eight durable streams
// (three "hot" regulars, five one-shot "scan" targets), closed and
// reopened under a 3-stream budget so every stream starts hibernated with
// an empty ghost list, then warms the hot set with two spaced touches
// each (the second touch earns the second-chance bit) and runs a one-shot
// scan over the cold five. Returns the reopened hub and the handles.
func scanChurnHub(t *testing.T, po PersistOptions) (h *Hub, hot, scan []*StreamHandle) {
	t.Helper()
	m := trainTestModel(t)
	dir := t.TempDir()
	seed := openTestHub(t, dir, m, PersistOptions{})
	posts := genPosts(40, 51)
	for _, name := range []string{"scan0", "scan1", "scan2", "scan3", "scan4", "hot0", "hot1", "hot2"} {
		hs, err := seed.Create(name, m, persistOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range posts {
			if err := hs.Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := seed.CloseAll(); err != nil {
		t.Fatal(err)
	}

	po.MaxResidentStreams = 3
	po.ResidencySweep = time.Hour // deterministic: the test sweeps by hand
	h = openTestHub(t, dir, m, po)

	q := Query{K: 3, Keywords: []string{"goal"}}
	for _, name := range []string{"hot0", "hot1", "hot2"} {
		hs, err := h.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		// First touch activates (probationary); the second, spaced past the
		// touch-gap floor, is the "touched again since admission" signal.
		for i := 0; i < 2; i++ {
			if _, err := hs.Query(nil, q); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		hot = append(hot, hs)
	}
	for _, name := range []string{"scan0", "scan1", "scan2", "scan3", "scan4"} {
		hs, err := h.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := hs.Query(nil, q); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // strictly ordered last-touch clocks
		scan = append(scan, hs)
	}
	return h, hot, scan
}

// Scan resistance, the clock policy's contract: a one-shot scan over many
// cold streams must churn through its own probationary admissions and
// leave the bit-carrying hot set resident.
func TestResidencyScanChurnClockKeepsHotSet(t *testing.T) {
	h, hot, scan := scanChurnHub(t, PersistOptions{}) // Eviction: EvictClock (default)
	defer h.CloseAll()

	if _, err := h.EnforceResidency(); err != nil {
		t.Fatal(err)
	}
	for _, hs := range hot {
		if !hs.Resident() {
			t.Errorf("%s evicted by the scan despite its second-chance bit", hs.Name())
		}
	}
	for _, hs := range scan {
		if hs.Resident() {
			t.Errorf("one-shot %s survived enforcement over the hot regulars", hs.Name())
		}
	}
	var saves int64
	for _, hs := range hot {
		saves += hs.Stats().Residency.SecondChanceSaves
	}
	if saves == 0 {
		t.Error("no second-chance saves recorded while the scan churned")
	}
}

// The pinned pure-LRU baseline demonstrably lacks scan resistance: the
// same fixture under Eviction: EvictLRU recency-orders the one-shot scan
// streams above the regulars and evicts the entire hot set.
func TestResidencyScanChurnLRUBaselineEvictsHotSet(t *testing.T) {
	h, hot, _ := scanChurnHub(t, PersistOptions{Eviction: EvictLRU})
	defer h.CloseAll()

	// Async admission evictions may still be in flight; enforcement is
	// synchronous but a mid-hibernate victim is skipped, so settle by
	// polling. Under LRU the hot set (touched before the scan) is coldest
	// and must go first.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !hot[0].Resident() && !hot[1].Resident() && !hot[2].Resident() {
			break
		}
		if _, err := h.EnforceResidency(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, hs := range hot {
		if hs.Resident() {
			t.Errorf("%s survived the scan under pure LRU — baseline unexpectedly scan-resistant", hs.Name())
		}
		if saves := hs.Stats().Residency.SecondChanceSaves; saves != 0 {
			t.Errorf("%s recorded %d second-chance saves under EvictLRU", hs.Name(), saves)
		}
	}
}

// A stream evicted by the sweep and wanted again shortly after hits the
// ghost list on reactivation: the hit is counted as eviction regret and
// readmits the stream protected (bit set), so the next enforcement spares
// it and evicts an unprotected stream instead.
func TestResidencyGhostHitProtectsReadmission(t *testing.T) {
	m := trainTestModel(t)
	h := openTestHub(t, t.TempDir(), m, PersistOptions{
		MaxResidentStreams: 1,
		ResidencySweep:     time.Hour,
	})
	defer h.CloseAll()
	posts := genPosts(30, 52)
	var handles []*StreamHandle
	for _, name := range []string{"a", "b"} {
		hs, err := h.Create(name, m, persistOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range posts {
			if err := hs.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(2 * time.Millisecond)
		handles = append(handles, hs)
	}
	a, b := handles[0], handles[1]
	if _, err := h.EnforceResidency(); err != nil {
		t.Fatal(err)
	}
	if a.Resident() || !b.Resident() {
		t.Fatalf("enforcement kept a=%v b=%v resident, want only b", a.Resident(), b.Resident())
	}

	// Touch a again: the reactivation consumes its ghost entry.
	if _, err := a.Query(nil, Query{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Residency.GhostHits; got != 1 {
		t.Fatalf("ghost hits = %d, want 1", got)
	}
	// The regret-readmitted a is protected; unprotected b goes instead.
	if _, err := h.EnforceResidency(); err != nil {
		t.Fatal(err)
	}
	if !a.Resident() {
		t.Error("ghost-hit readmission did not protect a from the next sweep")
	}
	if b.Resident() {
		t.Error("enforcement failed to evict the unprotected b")
	}
	// A second reactivation finds the entry consumed: no double counting.
	if _, err := b.Query(nil, Query{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Residency.GhostHits; got != 1 {
		t.Fatalf("ghost hits after unrelated activity = %d, want 1", got)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The standing-hint prefetch path end to end: Prefetch marks a hibernated
// stream, the sweep reactivates it in the background (a prefetch
// activation, with the deferred back buffer built off the critical path),
// a demand touch while still resident counts a hit, and a prefetch the
// demand never consumes counts a miss when the stream hibernates again.
func TestResidencyPrefetchHintHitAndMiss(t *testing.T) {
	m := trainTestModel(t)
	h := openTestHub(t, t.TempDir(), m, PersistOptions{
		PrefetchSweep:     time.Hour, // deterministic: the test sweeps by hand
		PrefetchLookahead: time.Hour,
	})
	defer h.CloseAll()
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range genPosts(40, 53) {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := hs.Hibernate(); err != nil {
		t.Fatal(err)
	}

	// Sweep without a signal: nothing is due, the stream stays cold. The
	// ingest loop above may have run slowly enough to train the EWMA;
	// clear it so this control case really has no recurrence evidence.
	hs.touchGapEWMA.Store(0)
	h.prefetchSweep()
	time.Sleep(10 * time.Millisecond)
	if hs.Resident() {
		t.Fatal("sweep activated a stream with no hint and no recurrence")
	}

	hs.Prefetch()
	h.prefetchSweep()
	waitFor(t, "hinted prefetch activation", hs.Resident)
	r := hs.Stats().Residency
	if r.PrefetchActivations != 1 || r.PrefetchHits != 0 || r.PrefetchMisses != 0 {
		t.Fatalf("after prefetch: %+v, want exactly one activation, no hits/misses yet", r)
	}
	// The deferred back buffer is paid by the background materializer.
	waitFor(t, "background materialization", func() bool {
		return hs.Stats().Residency.LazyMaterializations >= 1
	})

	// The demand touch the prefetch anticipated: a hit, charged once.
	if _, err := hs.Query(nil, Query{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Fatal(err)
	}
	if r := hs.Stats().Residency; r.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d, want 1", r.PrefetchHits)
	}
	if _, err := hs.Query(nil, Query{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Fatal(err)
	}
	if r := hs.Stats().Residency; r.PrefetchHits != 1 {
		t.Fatalf("second demand touch double-counted the hit: %+v", r)
	}

	// A prefetch nobody touches is a miss, charged at re-hibernation.
	if err := hs.Hibernate(); err != nil {
		t.Fatal(err)
	}
	hs.Prefetch()
	h.prefetchSweep()
	waitFor(t, "second prefetch activation", hs.Resident)
	if err := hs.Hibernate(); err != nil {
		t.Fatal(err)
	}
	r = hs.Stats().Residency
	if r.PrefetchActivations != 2 || r.PrefetchHits != 1 || r.PrefetchMisses != 1 {
		t.Fatalf("after untouched prefetch: %+v, want 2 activations / 1 hit / 1 miss", r)
	}
}

// The recurrence-driven prefetch path: spaced demand touches train the
// inter-arrival EWMA, and the sweep reactivates a hibernated stream whose
// predicted next touch falls within the lookahead — no hint required —
// while skipping streams with no recurrence or a stale prediction.
func TestResidencyPrefetchRecurrencePrediction(t *testing.T) {
	m := trainTestModel(t)
	h := openTestHub(t, t.TempDir(), m, PersistOptions{
		PrefetchSweep:     time.Hour,
		PrefetchLookahead: time.Hour,
	})
	defer h.CloseAll()
	posts := genPosts(40, 54)
	mk := func(name string) *StreamHandle {
		hs, err := h.Create(name, m, persistOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range posts {
			if err := hs.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		return hs
	}
	rec, flat, stale := mk("recurring"), mk("flat"), mk("stale")

	// Train the recurring stream's EWMA with touches spaced past the
	// touch-gap floor.
	for i := 0; i < 4; i++ {
		time.Sleep(3 * time.Millisecond)
		if _, err := rec.Query(nil, Query{K: 3, Keywords: []string{"goal"}}); err != nil {
			t.Fatal(err)
		}
	}
	if rec.touchGapEWMA.Load() <= 0 {
		t.Fatal("spaced touches did not train the inter-arrival EWMA")
	}
	for _, hs := range []*StreamHandle{rec, flat, stale} {
		if err := hs.Hibernate(); err != nil {
			t.Fatal(err)
		}
	}
	// White-box control cases: no recurrence evidence at all, and a
	// prediction staler than the lookahead (the pattern broke).
	flat.touchGapEWMA.Store(0)
	stale.touchGapEWMA.Store(int64(time.Millisecond))
	stale.lastTouch.Store(time.Now().Add(-3 * time.Hour).UnixNano())

	h.prefetchSweep()
	waitFor(t, "predicted prefetch activation", rec.Resident)
	if got := rec.Stats().Residency.PrefetchActivations; got != 1 {
		t.Fatalf("recurring stream prefetch activations = %d, want 1", got)
	}
	time.Sleep(10 * time.Millisecond)
	if flat.Resident() {
		t.Error("sweep prefetched a stream with no recurrence evidence")
	}
	if stale.Resident() {
		t.Error("sweep prefetched a stream whose prediction went stale")
	}
}

// Crash while the reactivated stream's back buffer is still lazy (or
// being built in the background, racing fresh writes): recovery from a
// crash snapshot of the data dir is byte-identical to a twin that never
// hibernated, writes landed on either side of the materialization
// included.
func TestResidencyLazyMaterializeCrashRecovery(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorStream(t, m)
	posts := genPosts(130, 55)
	for _, p := range posts[:90] {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.CloseAll(); err != nil {
		t.Fatal(err)
	}

	// Reopen under a budget so recovery is cold, then reactivate lazily:
	// the first query is served off the front buffer alone, and the writes
	// after it race the background materializer.
	h2 := openTestHub(t, dir, m, PersistOptions{MaxResidentStreams: 4, ResidencySweep: time.Hour})
	defer h2.CloseAll()
	hs2, err := h2.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	if hs2.Resident() {
		t.Fatal("budgeted recovery left the stream resident before first touch")
	}
	if _, err := hs2.Query(nil, Query{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Fatal(err)
	}
	for _, p := range posts[90:] {
		if err := hs2.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	// Crash snapshot mid-flight: nothing below has run a checkpoint, so
	// recovery replays the WAL tail over the pre-crash checkpoint.
	crash := filepath.Join(t.TempDir(), "crash")
	if err := os.MkdirAll(crash, 0o755); err != nil {
		t.Fatal(err)
	}
	copyStreamTree(t, dir, crash)

	h3 := openTestHub(t, crash, m, PersistOptions{MaxResidentStreams: 4, ResidencySweep: time.Hour})
	defer h3.CloseAll()
	hs3, err := h3.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "crash-recovered",
		persistQueries(t, func(q Query) (Result, error) { return hs3.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
	if got, want := exportGob(t, hs3.Stream()), exportGob(t, mirror); !bytes.Equal(got, want) {
		t.Fatal("crash-recovered state not byte-identical to the never-hibernated twin")
	}
	// The survivor hub agrees too (its writes were never lost to laziness).
	sameResults(t, "pre-crash survivor",
		persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
}

// Cold recovery under a budget with hibernation cycles mixed in keeps the
// lazy default byte-identical at every step for several streams at once —
// the multi-tenant version of the core-level lazy/eager lockstep test.
func TestResidencyLazyActivationEquivalence(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{})
	mirrors := map[string]*Stream{}
	posts := genPosts(120, 56)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("s%d", i)
		hs, err := h.Create(name, m, persistOpts())
		if err != nil {
			t.Fatal(err)
		}
		mirrors[name] = mirrorStream(t, m)
		for _, p := range posts {
			if err := hs.Add(p); err != nil {
				t.Fatal(err)
			}
			if err := mirrors[name].Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := h.CloseAll(); err != nil {
		t.Fatal(err)
	}

	h2 := openTestHub(t, dir, m, PersistOptions{MaxResidentStreams: 2, ResidencySweep: time.Hour})
	defer h2.CloseAll()
	// Touch every stream (forcing budget churn across lazy activations),
	// then compare each against its never-hibernated twin.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("s%d", i)
		hs, err := h2.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, name,
			persistQueries(t, func(q Query) (Result, error) { return hs.Query(nil, q) }),
			persistQueries(t, func(q Query) (Result, error) { return mirrors[name].Query(nil, q) }))
	}
	if _, err := h2.EnforceResidency(); err != nil {
		t.Fatal(err)
	}
	// Round two after enforcement: re-activations (some from the ghost
	// list) must still be exact.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("s%d", i)
		hs, err := h2.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, name+" round 2",
			persistQueries(t, func(q Query) (Result, error) { return hs.Query(nil, q) }),
			persistQueries(t, func(q Query) (Result, error) { return mirrors[name].Query(nil, q) }))
		if got, want := exportGob(t, hs.Stream()), exportGob(t, mirrors[name]); !bytes.Equal(got, want) {
			t.Fatalf("%s: state diverged across lazy activation cycles", name)
		}
	}
}
