package ksir

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// persistOpts are the stream options used across the recovery suite:
// short buckets so a modest post count crosses many boundaries.
func persistOpts() Options {
	return Options{Window: 300 * time.Second, Bucket: 60 * time.Second, Lambda: 0.4, Eta: 5}
}

// genPosts builds n posts over the test model's vocabulary with reference
// chains, timestamps advancing so the stream crosses bucket and window
// boundaries (expiry and resurrection both occur).
func genPosts(n int, seed int64) []Post {
	words := []string{"goal", "striker", "keeper", "league", "derby", "penalty",
		"dunk", "rebound", "playoffs", "court", "buzzer", "triple"}
	rng := rand.New(rand.NewSource(seed))
	posts := make([]Post, n)
	ts := int64(60)
	for i := range posts {
		ts += int64(rng.Intn(25))
		var text []byte
		for w := 0; w < 4+rng.Intn(4); w++ {
			if w > 0 {
				text = append(text, ' ')
			}
			text = append(text, words[rng.Intn(len(words))]...)
		}
		p := Post{ID: int64(i + 1), Time: ts, Text: string(text)}
		for r := 0; r < rng.Intn(3) && i > 0; r++ {
			p.Refs = append(p.Refs, int64(1+rng.Intn(i)))
		}
		posts[i] = p
	}
	return posts
}

// persistQueries issues a spread of queries against any query surface.
func persistQueries(t *testing.T, query func(Query) (Result, error)) []Result {
	t.Helper()
	var out []Result
	for _, alg := range []Algorithm{MTTD, MTTS, TopK} {
		for _, kw := range [][]string{{"goal", "striker"}, {"dunk", "rebound"}, {"derby", "court"}} {
			res, err := query(Query{K: 5, Keywords: kw, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
	}
	return out
}

// sameResults demands exact equality: identical top-k posts, active
// counts, bucket sequences, Evaluated counters and bit-identical scores.
// Scoring is fully deterministic (influence sums run in sorted child-ID
// order, set sums in sorted key order), so recovery equivalence is exact
// float equality, not a tolerance.
func sameResults(t *testing.T, what string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results vs %d", what, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if !reflect.DeepEqual(g.Posts, w.Posts) {
			t.Fatalf("%s: query %d posts diverge:\n got %+v\nwant %+v", what, i, g.Posts, w.Posts)
		}
		if g.Bucket != w.Bucket || g.Active != w.Active || g.Evaluated != w.Evaluated {
			t.Fatalf("%s: query %d counters diverge: %+v vs %+v", what, i, g, w)
		}
		if g.Score != w.Score {
			t.Fatalf("%s: query %d scores diverge: %v vs %v", what, i, g.Score, w.Score)
		}
	}
}

// openTestHub opens a durable hub over dir with fast-test persistence
// settings (no fsync) and fails the test on error.
func openTestHub(t *testing.T, dir string, m *Model, po PersistOptions) *Hub {
	t.Helper()
	po.Fsync = FsyncNever
	h, err := OpenHub(dir, m, po)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// mirrorStream is the in-memory reference a recovered stream is compared
// against: a plain Stream fed the same accepted operations.
func mirrorStream(t *testing.T, m *Model) *Stream {
	t.Helper()
	st, err := New(m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// The crash-recovery equivalence contract: kill the process mid-ingest
// (simulated by abandoning the hub without any close or final
// checkpoint), reopen the directory, and the recovered stream answers
// every query with identical top-k posts and the same bucket sequence as
// an uninterrupted stream fed the same posts.
func TestCrashRecoveryEquivalence(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	for _, every := range []int64{1000, 3} { // never checkpoints vs checkpoints + WAL tail
		t.Run(fmt.Sprintf("checkpointEvery=%d", every), func(t *testing.T) {
			dir := filepath.Join(dir, fmt.Sprintf("every%d", every))
			h := openTestHub(t, dir, m, PersistOptions{CheckpointEvery: every})
			hs, err := h.Create("feed", m, persistOpts())
			if err != nil {
				t.Fatal(err)
			}
			mirror := mirrorStream(t, m)
			for _, p := range genPosts(250, 11) {
				if err := hs.Add(p); err != nil {
					t.Fatal(err)
				}
				if err := mirror.Add(p); err != nil {
					t.Fatal(err)
				}
			}
			want := persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) })

			// Crash: no Close, no final checkpoint — reopen from disk.
			h2 := openTestHub(t, dir, m, PersistOptions{CheckpointEvery: every})
			defer h2.CloseAll()
			hs2, err := h2.Get("feed")
			if err != nil {
				t.Fatal(err)
			}
			got := persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) })
			sameResults(t, "recovered", got, want)

			ms, rs := mirror.Stats(), hs2.Stats()
			if rs.Active != ms.Active || rs.Now != ms.Now || rs.Bucket != ms.Bucket || rs.Elements != ms.Elements {
				t.Fatalf("stats diverge: %+v vs %+v", rs, ms)
			}
			if every == 3 && rs.Persist.CheckpointBucket < 0 {
				t.Error("no automatic checkpoint was taken")
			}
			if !rs.Persist.Enabled {
				t.Error("recovered stream reports persistence disabled")
			}

			// The streams stay in lockstep through further identical
			// ingest — pending posts, bucket alignment and duplicate
			// tracking all survived.
			for _, p := range genPosts(60, 12) {
				p.ID += 10_000
				p.Time += mirror.Stats().Now + 600
				if err := hs2.Add(p); err != nil {
					t.Fatal(err)
				}
				if err := mirror.Add(p); err != nil {
					t.Fatal(err)
				}
			}
			sameResults(t, "recovered+continued",
				persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
				persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
		})
	}
}

// Clean shutdown: Close takes a final checkpoint and truncates the WAL;
// reopening restores from the checkpoint alone.
func TestCleanCloseRecovery(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorStream(t, m)
	posts := genPosts(120, 21)
	if n, err := hs.AddBatch(posts); err != nil || n != len(posts) {
		t.Fatalf("AddBatch = %d, %v", n, err)
	}
	if _, err := mirror.AddBatch(posts); err != nil {
		t.Fatal(err)
	}
	now := mirror.Stats().Now + 120
	if err := hs.Flush(now); err != nil {
		t.Fatal(err)
	}
	if err := mirror.Flush(now); err != nil {
		t.Fatal(err)
	}
	if err := h.CloseAll(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "feed", "wal")
	if fi, err := os.Stat(wal); err != nil || fi.Size() != 0 {
		t.Errorf("WAL after clean close: %v bytes, err %v (want empty)", fi.Size(), err)
	}

	h2 := openTestHub(t, dir, m, PersistOptions{})
	defer h2.CloseAll()
	hs2, err := h2.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "clean close",
		persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
}

// A torn write — the crash truncating the WAL's final record — recovers
// the longest valid prefix: every earlier post is there, the torn one is
// gone, and nothing panics.
func TestTornWALRecoversPrefix(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorStream(t, m)
	posts := genPosts(80, 31)
	for _, p := range posts[:len(posts)-1] {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(dir, "feed", "wal")
	prefix, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Add(posts[len(posts)-1]); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: drop the final bytes of the last record.
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, full[:prefix.Size()+7], 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := openTestHub(t, dir, m, PersistOptions{})
	defer h2.CloseAll()
	hs2, err := h2.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "torn tail",
		persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
	// The torn post never made it; re-adding it must succeed, not be a
	// duplicate.
	if err := hs2.Add(posts[len(posts)-1]); err != nil {
		t.Errorf("re-adding the torn post: %v", err)
	}
}

// Group commit's crash matrix at the hub level: an AddBatch's records
// land as one multi-record WAL batch append; killing the log at every
// byte offset inside that batch's span must recover a stream identical to
// one fed exactly the longest committed record prefix — per-record
// atomicity survives batched durability.
func TestGroupCommitTornBatchEveryByte(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	posts := genPosts(30, 53)
	head, tail := posts[:24], posts[24:]
	for _, p := range head {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	pre := hs.Stats().Persist.WALBytes
	if n, err := hs.AddBatch(tail); err != nil || n != len(tail) {
		t.Fatalf("AddBatch: %d %v", n, err)
	}

	walPath := filepath.Join(dir, "feed", "wal")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries of the batch's records, walked from the frames
	// themselves (u32 length prefix + 4-byte CRC + payload).
	bounds := []int64{pre}
	for off := pre; off < int64(len(full)); {
		n := int64(binary.LittleEndian.Uint32(full[off:]))
		off += 8 + n
		bounds = append(bounds, off)
	}
	if len(bounds) != len(tail)+1 || bounds[len(bounds)-1] != int64(len(full)) {
		t.Fatalf("frame walk found %d bounds over %d bytes, want %d records", len(bounds)-1, len(full), len(tail))
	}
	// Crash image: the hub is abandoned un-closed.

	// Reference results per committed-prefix length.
	q := Query{K: 5, Keywords: []string{"goal", "striker"}}
	refs := make([]Result, len(tail)+1)
	for k := 0; k <= len(tail); k++ {
		mirror := mirrorStream(t, m)
		for _, p := range posts[:len(head)+k] {
			if err := mirror.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		res, err := mirror.Query(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		refs[k] = res
	}

	meta, err := os.ReadFile(filepath.Join(dir, "feed", "manifest"))
	metaName := "manifest"
	if err != nil {
		// The manifest file name is an internal detail; fall back to
		// copying every non-WAL file.
		metaName = ""
	}
	scratch := t.TempDir()
	for cut := pre; cut <= int64(len(full)); cut++ {
		cdir := filepath.Join(scratch, fmt.Sprintf("cut%d", cut), "feed")
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if metaName != "" {
			if err := os.WriteFile(filepath.Join(cdir, metaName), meta, 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			ents, err := os.ReadDir(filepath.Join(dir, "feed"))
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range ents {
				if ent.Name() == "wal" {
					continue
				}
				raw, err := os.ReadFile(filepath.Join(dir, "feed", ent.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(cdir, ent.Name()), raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := os.WriteFile(filepath.Join(cdir, "wal"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		committed := 0
		for committed+1 < len(bounds) && bounds[committed+1] <= cut {
			committed++
		}
		h2 := openTestHub(t, filepath.Dir(cdir), m, PersistOptions{})
		hs2, err := h2.Get("feed")
		if err != nil {
			t.Fatal(err)
		}
		res, err := hs2.Query(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("cut %d (%d committed)", cut, committed),
			[]Result{res}, []Result{refs[committed]})
		if err := h2.CloseAll(); err != nil {
			t.Fatal(err)
		}
		// CloseAll checkpointed the copy; remove it so the scratch space
		// stays bounded across the few-hundred-cut matrix.
		os.RemoveAll(filepath.Dir(cdir))
	}
}

// Replaying the same WAL twice is a no-op: two independent recoveries of
// one crashed directory agree, and a WAL whose records are all at or
// below the checkpoint watermark (the crash window between checkpoint
// replace and WAL truncation) restores to exactly the checkpoint.
func TestReplayIdempotence(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	posts := genPosts(100, 41)
	for _, p := range posts {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	// Two recoveries of the same crash must agree with each other.
	h2 := openTestHub(t, dir, m, PersistOptions{})
	hs2, err := h2.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	h3 := openTestHub(t, dir, m, PersistOptions{})
	defer h3.CloseAll()
	hs3, err := h3.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "double replay",
		persistQueries(t, func(q Query) (Result, error) { return hs3.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }))

	// Manufacture the checkpoint-written-WAL-not-yet-truncated crash:
	// checkpoint through h2's handle, then restore the pre-checkpoint WAL
	// bytes. Every record is ≤ the checkpoint's watermark, so replay must
	// skip them all.
	walPath := filepath.Join(dir, "feed", "wal")
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(walBytes) == 0 {
		t.Fatal("test needs a non-empty WAL")
	}
	want := persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) })
	if _, err := hs2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	h4 := openTestHub(t, dir, m, PersistOptions{})
	defer h4.CloseAll()
	hs4, err := h4.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "stale WAL skipped",
		persistQueries(t, func(q Query) (Result, error) { return hs4.Query(nil, q) }), want)
	if st := hs4.Stats(); st.Persist.WALSeq != uint64(len(posts)) {
		t.Errorf("recovered WALSeq = %d, want %d (watermark preserved)", st.Persist.WALSeq, len(posts))
	}
}

// Posts buffered in the open bucket survive both checkpointing and
// crash-replay: after recovery a Flush makes them visible exactly as on
// the uninterrupted stream.
func TestPendingPostsSurvive(t *testing.T) {
	m := trainTestModel(t)
	for _, checkpointed := range []bool{false, true} {
		t.Run(fmt.Sprintf("checkpointed=%v", checkpointed), func(t *testing.T) {
			dir := t.TempDir()
			h := openTestHub(t, dir, m, PersistOptions{})
			hs, err := h.Create("feed", m, persistOpts())
			if err != nil {
				t.Fatal(err)
			}
			mirror := mirrorStream(t, m)
			posts := genPosts(40, 51)
			for _, p := range posts {
				if err := hs.Add(p); err != nil {
					t.Fatal(err)
				}
				if err := mirror.Add(p); err != nil {
					t.Fatal(err)
				}
			}
			if checkpointed {
				if _, err := hs.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
			h2 := openTestHub(t, dir, m, PersistOptions{})
			defer h2.CloseAll()
			hs2, err := h2.Get("feed")
			if err != nil {
				t.Fatal(err)
			}
			now := posts[len(posts)-1].Time + 1
			if err := hs2.Flush(now); err != nil {
				t.Fatal(err)
			}
			if err := mirror.Flush(now); err != nil {
				t.Fatal(err)
			}
			sameResults(t, "pending",
				persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
				persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
		})
	}
}

// Opening persisted state against a different model is refused with the
// typed version sentinel — word IDs and topic indexes would silently
// disagree otherwise.
func TestRecoveryRejectsDifferentModel(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range genPosts(20, 61) {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	other, err := TrainModel(corpus(200), WithTopics(2), WithIterations(40), WithSeed(99),
		WithPriors(0.5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenHub(dir, other, PersistOptions{Fsync: FsyncNever}); !errors.Is(err, ErrModelVersion) {
		t.Errorf("different-model open = %v, want ErrModelVersion", err)
	}
	// Same model: still recoverable.
	h2 := openTestHub(t, dir, m, PersistOptions{})
	h2.CloseAll()
}

// Durability API edges: checkpoints need a durable hub; SwapModel is
// rejected on durable streams; a closed stream's name stays reserved on
// disk; names with escaping round-trip through their directory.
func TestPersistenceAPIEdges(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()

	plain := NewHub()
	phs, err := plain.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := phs.Checkpoint(); !errors.Is(err, ErrPersistDisabled) {
		t.Errorf("Checkpoint on in-memory hub = %v, want ErrPersistDisabled", err)
	}
	if ps := phs.Stats().Persist; ps.Enabled {
		t.Error("in-memory stream reports persistence enabled")
	}

	h := openTestHub(t, dir, m, PersistOptions{})
	name := "feed%41" // '%' survives validName and needs path-escaping on disk
	hs, err := h.Create(name, m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, url.PathEscape(name))); err != nil {
		t.Errorf("escaped stream directory missing: %v", err)
	}
	if err := hs.SwapModel(m); !errors.Is(err, ErrPersist) {
		t.Errorf("SwapModel on durable stream = %v, want ErrPersist", err)
	}
	if err := hs.Add(genPosts(1, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(name); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create(name, m, persistOpts()); !errors.Is(err, ErrStreamExists) {
		t.Errorf("re-creating a closed durable stream = %v, want ErrStreamExists", err)
	}
	// The closed stream's durable state is recovered by the next open.
	h2 := openTestHub(t, dir, m, PersistOptions{})
	defer h2.CloseAll()
	hs2, err := h2.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	if hs2.Stats().Persist.CheckpointBucket < 0 {
		t.Error("final checkpoint missing after Close")
	}
}

// Adopt makes a pre-existing stream durable immediately: its current
// state is checkpointed before Adopt returns.
func TestAdoptCheckpointsExistingState(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	st := mirrorStream(t, m)
	posts := genPosts(60, 71)
	if _, err := st.AddBatch(posts); err != nil {
		t.Fatal(err)
	}
	h := openTestHub(t, dir, m, PersistOptions{})
	if _, err := h.Adopt("adopted", st); err != nil {
		t.Fatal(err)
	}
	// Crash without a single further write.
	h2 := openTestHub(t, dir, m, PersistOptions{})
	defer h2.CloseAll()
	hs2, err := h2.Get("adopted")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "adopted",
		persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return st.Query(nil, q) }))
}

// The race e2e of the issue: concurrent queries run against a stream
// while it ingests; the process "dies" mid-stream (hub abandoned); the
// reopened stream must answer with identical top-k and bucket sequence.
// Run under -race this also exercises recovery against the live engine's
// concurrency machinery.
func TestConcurrentIngestCrashRecovery(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{CheckpointEvery: 4})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorStream(t, m)
	posts := genPosts(300, 81)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := hs.Query(nil, Query{K: 3, Keywords: []string{"goal", "dunk"}})
				if err != nil {
					panic(err)
				}
				_ = res
			}
		}()
	}
	for _, p := range posts {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()

	// Crash, reopen, compare.
	h2 := openTestHub(t, dir, m, PersistOptions{})
	defer h2.CloseAll()
	hs2, err := h2.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "concurrent crash",
		persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
	if a, b := hs2.Stats(), mirror.Stats(); a.Bucket != b.Bucket {
		t.Errorf("bucket sequence %d, want %d", a.Bucket, b.Bucket)
	}
}

func TestModelFileVersionSentinel(t *testing.T) {
	// The same sentinel covers model files and persistence artifacts; the
	// model path is exercised in model_io_test.go, here the fsync parser
	// and enum round-trip.
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); !errors.Is(err, ErrBadOptions) {
		t.Error("bad fsync policy not ErrBadOptions")
	}
}

// Regression: an AddBatch spanning more buckets than CheckpointEvery used
// to checkpoint mid-prefix — the snapshot already contained posts whose
// WAL records were then written past its watermark, and replay re-applied
// them, making the directory unrecoverable. The checkpoint trigger now
// runs only after the whole accepted prefix is logged.
func TestAddBatchCheckpointBoundary(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{CheckpointEvery: 1})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorStream(t, m)
	posts := genPosts(120, 91) // crosses many 60s buckets in one batch
	if n, err := hs.AddBatch(posts); err != nil || n != len(posts) {
		t.Fatalf("AddBatch = %d, %v", n, err)
	}
	if _, err := mirror.AddBatch(posts); err != nil {
		t.Fatal(err)
	}
	// Crash and recover: the whole batch must be there exactly once.
	h2, err := OpenHub(dir, m, PersistOptions{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("recovery after batched ingest: %v", err)
	}
	defer h2.CloseAll()
	hs2, err := h2.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "batch boundary",
		persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
	if a, b := hs2.Stats(), mirror.Stats(); a.Elements != b.Elements || a.Bucket != b.Bucket {
		t.Errorf("stats diverge after batched recovery: %+v vs %+v", a, b)
	}
}
