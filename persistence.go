package ksir

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math"
	"net/url"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/persist"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
)

// FsyncPolicy selects when a stream's write-ahead log is flushed to stable
// storage (see PersistOptions.Fsync).
type FsyncPolicy int

const (
	// FsyncInterval (the default) syncs at most once per FsyncInterval
	// duration — inline on appends past the deadline, via a background
	// flusher on idle streams — so data loss after a power failure is
	// bounded by the interval at a small fraction of FsyncAlways' cost.
	// Process crashes lose nothing under any policy — the OS holds the
	// writes.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every accepted operation: no acknowledged
	// write is ever lost, at the price of one disk flush per operation.
	FsyncAlways
	// FsyncNever leaves flushing entirely to the operating system.
	FsyncNever
)

// ParseFsyncPolicy parses "always", "interval" or "never" (the -fsync flag
// values of ksir-server).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "", "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncInterval, fmt.Errorf("%w: fsync policy must be always, interval or never, got %q", ErrBadOptions, s)
}

// syncPolicy maps the public enum onto the persist package's.
func (p FsyncPolicy) syncPolicy() persist.SyncPolicy {
	switch p {
	case FsyncAlways:
		return persist.SyncAlways
	case FsyncNever:
		return persist.SyncNever
	default:
		return persist.SyncInterval
	}
}

// String returns the flag-friendly name of the policy.
func (p FsyncPolicy) String() string { return p.syncPolicy().String() }

// EvictionPolicy selects how the residency budget picks hibernation
// victims (see PersistOptions.Eviction and DESIGN.md §15).
type EvictionPolicy int

const (
	// EvictClock (the default) is the scan-resistant policy: candidates
	// are considered coldest-first by last touch, but a stream touched
	// again since its admission carries a second-chance bit that saves it
	// from one eviction pass, and recently evicted names sit on a ghost
	// list whose hits re-admit the stream protected. A one-shot sweep
	// touching many cold streams once cannot churn out the stable hot set:
	// the scan's streams are admitted probationary (no bit until a second
	// touch) and evict each other, not the bit-carrying regulars.
	EvictClock EvictionPolicy = iota
	// EvictLRU is pure last-touch LRU — the pre-clock baseline, kept for
	// comparison and for the scan-churn regression test that demonstrates
	// why it lost the default.
	EvictLRU
)

// PersistOptions configures the durability subsystem of a Hub opened with
// OpenHub. The zero value is a sensible production default: interval
// fsync (1s), a checkpoint every 64 buckets.
type PersistOptions struct {
	// Fsync is the WAL flush policy.
	Fsync FsyncPolicy
	// FsyncInterval bounds the sync lag under FsyncInterval (default 1s).
	FsyncInterval time.Duration
	// CheckpointEvery is how many ingested buckets may elapse between
	// automatic checkpoints (default 64; StreamHandle.Checkpoint forces
	// one at any time). Smaller values shorten recovery, larger values
	// shrink the steady-state write amplification.
	CheckpointEvery int64
	// SerializedWriter disables the per-stream writer pipeline on the
	// opened hub: every write executes synchronously under a mutex with
	// its own WAL append (and, under FsyncAlways, its own fsync) — the
	// pre-pipeline baseline measured by the `ingest` experiment. See
	// WithSerializedWriter for the in-memory equivalent. Leave false in
	// production.
	SerializedWriter bool
	// CommitWindow, when positive, lets an idle writer loop wait up to
	// this long for more ingest operations before committing a batch —
	// trading that much added latency for fuller group commits (fewer WAL
	// appends and, under FsyncAlways, fewer fsyncs). It closes the
	// single-producer group-commit gap: a lone open-loop producer's
	// appends coalesce into windowed batches instead of one fsync each.
	// Opt-in (0 disables) because a closed-loop producer — one that waits
	// for each op before sending the next — only loses latency to it.
	// Results are identical with or without the window, op for op.
	CommitWindow time.Duration
	// MaxResidentStreams and MaxResidentBytes bound the hub's hot tier
	// (see DESIGN.md §11): when either budget is exceeded, the coldest
	// streams by last touch are hibernated — checkpointed and released
	// from memory, transparently reactivated by their next operation.
	// MaxResidentStreams caps how many streams are resident at once;
	// MaxResidentBytes caps their summed approximate resident bytes. Zero
	// disables the respective bound; with both zero no background
	// hibernator runs and streams only hibernate on explicit
	// StreamHandle.Hibernate calls. With a budget configured, OpenHub
	// recovers existing streams cold (registered hibernated, loaded on
	// first touch) so opening a massive-tenancy data dir stays within the
	// budget.
	MaxResidentStreams int
	MaxResidentBytes   int64
	// ResidencySweep is how often the background hibernator re-applies the
	// residency budget (default 1s; only consulted when a budget is set).
	// Admission control additionally evicts the coldest streams inline
	// whenever an activation would overshoot the budget.
	ResidencySweep time.Duration
	// Eviction selects the victim policy for the residency budget. The
	// zero value is EvictClock (scan-resistant second-chance + ghost
	// list); EvictLRU pins the pure last-touch baseline.
	Eviction EvictionPolicy
	// PrefetchSweep, when positive, runs the predictive prefetcher every
	// PrefetchSweep: hibernated streams whose predicted next touch (from
	// the per-stream inter-arrival EWMA) or standing hint
	// (StreamHandle.Prefetch) falls within PrefetchLookahead are
	// reactivated in the background, so the demand operation that was
	// about to pay the activation finds the stream already hot. Prefetch
	// is budget-aware: it never evicts a stream warmer than the one it
	// admits, and it skips entirely when no colder victim exists. 0 (the
	// default) disables prefetching.
	PrefetchSweep time.Duration
	// PrefetchLookahead is how far around the predicted next touch a
	// stream counts as "due" (default 2×PrefetchSweep). Larger values
	// prefetch earlier and tolerate sloppier periodicity; too large and
	// prefetched streams idle in the hot tier before their touch arrives.
	PrefetchLookahead time.Duration
	// Logger receives the hub's background warnings (residency sweep
	// failures). Nil means slog.Default() resolved at log time.
	Logger *slog.Logger
}

func (o PersistOptions) withDefaults() PersistOptions {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = time.Second
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 64
	}
	if o.ResidencySweep <= 0 {
		o.ResidencySweep = time.Second
	}
	if o.PrefetchSweep > 0 && o.PrefetchLookahead <= 0 {
		o.PrefetchLookahead = 2 * o.PrefetchSweep
	}
	return o
}

// PersistStats reports a stream's durability counters (zero-valued with
// Enabled=false on non-persistent streams).
type PersistStats struct {
	// Enabled says whether the stream is backed by a WAL + checkpoints.
	Enabled bool
	// WALSeq is the last operation sequence number appended to (or
	// recovered from) the WAL; it grows monotonically for the stream's
	// whole lifetime, across checkpoints and restarts.
	WALSeq uint64
	// WALBytes is the size of the live WAL segment (resets to 0 at every
	// checkpoint).
	WALBytes int64
	// CheckpointBucket is the bucket sequence the latest checkpoint
	// covers, or -1 when the stream has never been checkpointed.
	CheckpointBucket int64
	// Checkpoints counts checkpoints taken since the hub was opened.
	Checkpoints int64
}

// hubPersist is the hub-wide durability configuration.
type hubPersist struct {
	dir       string
	opts      PersistOptions
	modelHash uint64
}

// persistHash fingerprints the model so persisted state is never married
// to a different model on recovery (word IDs and topic indexes would
// silently disagree).
func (m *Model) persistHash() uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	w(uint64(m.tm.Z))
	w(uint64(m.tm.V))
	w(uint64(m.seed))
	w(uint64(m.vocab.Size()))
	for i := 0; i < m.vocab.Size(); i++ {
		word := m.vocab.Word(textproc.WordID(i))
		w(uint64(len(word)))
		h.Write([]byte(word))
	}
	for _, p := range m.tm.Phi {
		w(math.Float64bits(p))
	}
	for _, p := range m.tm.PTopic {
		w(math.Float64bits(p))
	}
	return h.Sum64()
}

// persistErr folds persist-layer failures into the public taxonomy:
// format/model incompatibilities surface as ErrModelVersion, everything
// else as ErrPersist.
func persistErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, persist.ErrVersion) {
		return fmt.Errorf("%w: %v", ErrModelVersion, err)
	}
	return fmt.Errorf("%w: %v", ErrPersist, err)
}

// OpenHub opens a durable Hub over dir: every stream subdirectory found
// there is recovered — the latest valid checkpoint is loaded and the WAL
// tail replayed through the normal ingest path — and every stream created
// afterwards (Create/Adopt) is persisted there. Recovery is exact: a
// recovered stream answers queries with the same top-k elements and the
// same bucket sequence as the stream at the moment of its last durable
// write, and replaying a WAL twice is a no-op (records at or below the
// checkpoint's operation watermark are skipped).
//
// m must be the model the persisted streams were built against (recovery
// fails with ErrModelVersion otherwise); sopts carry the non-persistable
// stream configuration — e.g. WithSubscriptionErrorHandler — applied to
// every recovered stream, while each stream's core parameters (window,
// bucket, λ, η, shards) come from its own manifest. A torn WAL tail (a
// crash mid-append) is truncated silently; a checkpoint torn mid-replace
// falls back to the previous one plus the not-yet-truncated WAL.
func OpenHub(dir string, m *Model, po PersistOptions, sopts ...StreamOption) (*Hub, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadOptions)
	}
	if dir == "" {
		return nil, fmt.Errorf("%w: empty persistence directory", ErrBadOptions)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, persistErr(err)
	}
	h := NewHub()
	h.serialized = po.SerializedWriter
	h.logger = po.Logger
	h.p = &hubPersist{dir: dir, opts: po.withDefaults(), modelHash: m.persistHash()}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, persistErr(err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		if err := h.recoverStream(filepath.Join(dir, ent.Name()), m, sopts); err != nil {
			// Unwind the streams already recovered so their WALs close.
			for _, name := range h.List() {
				_ = h.Close(name)
			}
			return nil, fmt.Errorf("recovering %s: %w", ent.Name(), err)
		}
	}
	h.startHibernator()
	h.startPrefetcher()
	h.startMaterializer()
	return h, nil
}

// recoverStream rebuilds one stream directory: manifest → checkpoint →
// WAL tail, then registers the handle. With a residency budget configured
// the load is deferred instead — the stream registers hibernated and its
// checkpoint + WAL tail are folded in by the first touching operation.
func (h *Hub) recoverStream(sdir string, m *Model, sopts []StreamOption) error {
	meta, err := persist.ReadMeta(sdir)
	if err != nil {
		return persistErr(err)
	}
	if err := validName(meta.Name); err != nil {
		return err
	}
	if meta.ModelHash != h.p.modelHash {
		return fmt.Errorf("%w: stream %q was persisted against a different model", ErrModelVersion, meta.Name)
	}
	opts, cfg, err := optionsFromMeta(meta, sopts)
	if err != nil {
		return err
	}
	if h.residencyBudgeted() {
		// Cold recovery: a massive data dir must not be loaded wholesale
		// just to open the hub — only the manifests are read, and each
		// stream registers hibernated with its checkpoint and WAL
		// untouched on disk. Corruption in the deferred state surfaces on
		// the first touching operation, as its error, instead of at
		// OpenHub.
		_, err := h.registerCold(meta.Name, m, opts, cfg, newColdStreamPersist(h.p, meta.Name, sdir))
		return err
	}
	ck, err := persist.LoadCheckpoint(sdir)
	if err != nil {
		return persistErr(err)
	}
	if ck != nil && ck.Name != meta.Name {
		return persistErr(fmt.Errorf("%w: checkpoint names stream %q, manifest %q", persist.ErrCorrupt, ck.Name, meta.Name))
	}
	st, err := buildStream(m, opts, cfg, ck)
	if err != nil {
		return err
	}
	var opSeq uint64
	if ck != nil {
		opSeq = ck.OpSeq
	}
	wal, err := persist.OpenWAL(filepath.Join(sdir, persist.WALFile),
		h.p.opts.Fsync.syncPolicy(), h.p.opts.FsyncInterval, replayInto(st, opSeq))
	if err != nil {
		return persistErr(err)
	}
	if wal.LastSeq() > opSeq {
		opSeq = wal.LastSeq()
	}
	ckptBucket := int64(-1)
	if ck != nil {
		ckptBucket = ck.Core.Stats.Buckets
	}
	pers := newStreamPersist(h.p, meta.Name, sdir, wal, opSeq, ckptBucket)
	pers.ckptCurrent = ck != nil && wal.Size() == 0
	if _, err := h.registerWith(meta.Name, st, pers); err != nil {
		wal.Close()
		return err
	}
	return nil
}

// optionsFromMeta resolves a persisted stream's options and config:
// caller-supplied options first (subscription error handlers and other
// non-persistable configuration), the manifest's core parameters last so
// they always win.
func optionsFromMeta(meta persist.Meta, sopts []StreamOption) (Options, streamConfig, error) {
	opts := Options{
		Window: time.Duration(meta.WindowNs),
		Bucket: time.Duration(meta.BucketNs),
		Eta:    meta.Eta,
	}
	all := append(append([]StreamOption{}, sopts...), WithLambda(meta.Lambda), WithShards(meta.Shards))
	var cfg streamConfig
	for _, o := range all {
		o(&cfg)
	}
	if err := opts.fill(&cfg); err != nil {
		return Options{}, streamConfig{}, err
	}
	return opts, cfg, nil
}

// buildStream rebuilds a Stream from resolved options: from a checkpoint
// when one exists (engine state restored directly, pending posts
// re-ingested through Add — per-document-seeded inference makes that
// byte-identical), from scratch otherwise. It is the load half of both
// recovery and reactivation.
func buildStream(m *Model, opts Options, cfg streamConfig, ck *persist.Checkpoint) (*Stream, error) {
	var (
		eng *core.Engine
		err error
	)
	if ck == nil {
		eng, err = newEngineForModel(m, opts, cfg.shards)
		if err != nil {
			return nil, err
		}
	} else {
		eng, err = core.Restore(core.Config{
			Model:        m.tm,
			WindowLength: stream.Time(opts.Window / time.Second),
			Params:       score.Params{Lambda: opts.Lambda, Eta: opts.Eta},
			Shards:       cfg.shards,
		}, ck.Core)
		if err != nil {
			return nil, persistErr(err)
		}
	}
	s := &Stream{
		opts:       opts,
		cfg:        cfg,
		bucketLen:  stream.Time(opts.Bucket / time.Second),
		pendingIDs: make(map[stream.ElemID]struct{}),
	}
	s.me.Store(&modelEngine{model: m, engine: eng})
	if ck != nil {
		for _, p := range ck.Pending {
			if err := s.Add(Post{ID: p.ID, Time: p.Time, Text: p.Text, Refs: p.Refs}); err != nil {
				return nil, persistErr(fmt.Errorf("%w: re-ingesting pending post %d: %v", persist.ErrCorrupt, p.ID, err))
			}
		}
		s.lastTime = stream.Time(ck.LastTime)
	}
	return s, nil
}

// replayInto returns the WAL replay callback that folds records past the
// opSeq watermark back into st through the normal ingest path (replaying
// a WAL twice is a no-op: records at or below the watermark are skipped).
func replayInto(st *Stream, opSeq uint64) func(persist.Record) error {
	return func(r persist.Record) error {
		if r.Seq <= opSeq {
			return nil // already folded into the checkpoint
		}
		opSeq = r.Seq
		switch r.Kind {
		case persist.KindPost:
			return st.Add(Post{ID: r.Post.ID, Time: r.Post.Time, Text: r.Post.Text, Refs: r.Post.Refs})
		case persist.KindFlush:
			return st.Flush(r.FlushNow)
		}
		return fmt.Errorf("%w: WAL record kind %d", persist.ErrVersion, r.Kind)
	}
}

// streamPersist is one stream's durability state, owned by its
// StreamHandle and mutated only on the handle's commit path (the writer
// goroutine, or under the serialized-writer mutex). The stat* atomics
// mirror the counters for the lock-free Stats path.
type streamPersist struct {
	hp    *hubPersist
	name  string
	dir   string
	opSeq uint64
	// walp is the live WAL — nil while the stream is hibernated (or
	// cold-recovered and never yet touched). An atomic pointer because the
	// lock-free Stats path reads it while the commit path swaps it across
	// residency transitions; all mutation stays on the commit path.
	walp atomic.Pointer[persist.WAL]
	// syncsBase accumulates the fsync counts of WALs released across
	// hibernations, so PipelineStats.Fsyncs stays cumulative over the
	// handle's lifetime.
	syncsBase atomic.Int64
	// ckptBucket is the bucket sequence covered by the latest checkpoint
	// (-1 before the first one); the auto-checkpoint trigger compares the
	// live bucket sequence against it.
	ckptBucket  int64
	checkpoints int64
	// ckptCurrent records that the on-disk checkpoint covers every durable
	// operation — no ingest has committed since it was written. Hibernation
	// and the closing checkpoint short-circuit on it instead of rewriting
	// identical state (and Close on a hibernated stream must not reload the
	// stream just to do so). Cleared by the commit path before any ingest
	// op applies, set by checkpoint.
	ckptCurrent bool

	statSeq        atomic.Uint64
	statBytes      atomic.Int64
	statCkptBucket atomic.Int64
	statCkpts      atomic.Int64
}

func newStreamPersist(hp *hubPersist, name, dir string, wal *persist.WAL, opSeq uint64, ckptBucket int64) *streamPersist {
	p := &streamPersist{hp: hp, name: name, dir: dir, opSeq: opSeq, ckptBucket: ckptBucket}
	p.walp.Store(wal)
	p.statSeq.Store(opSeq)
	p.statBytes.Store(wal.Size())
	p.statCkptBucket.Store(ckptBucket)
	return p
}

// newColdStreamPersist is the durability state of a cold-recovered stream:
// no WAL is open, no checkpoint has been read — everything on disk is
// authoritative and untouched until the first reactivation loads it
// through resume. Until then the counters report the checkpoint bucket as
// unknown (-1).
func newColdStreamPersist(hp *hubPersist, name, dir string) *streamPersist {
	p := &streamPersist{hp: hp, name: name, dir: dir, ckptBucket: -1}
	p.statCkptBucket.Store(-1)
	return p
}

// activationPhases is the wall-clock breakdown of one reactivation,
// filled by resume and attributed as child spans of stream.activate by
// the commit path (so /debug/traces shows where activation time goes).
type activationPhases struct {
	ckptStart    time.Time // checkpoint.load: read + decode the snapshot
	ckptDur      time.Duration
	restoreStart time.Time // state.restore: rebuild engine + pending posts
	restoreDur   time.Duration
	replayStart  time.Time // wal.replay: open the WAL, fold in the tail
	replayDur    time.Duration
	matStart     time.Time // backbuffer.materialize: lazy build paid here
	matDur       time.Duration
}

// resume loads the stream back into memory — the load half of
// reactivation: checkpoint load, WAL open with tail replay, counter
// refresh. Commit-path only; the caller owns the residency transition.
// ph (non-nil) receives the phase timing breakdown.
func (p *streamPersist) resume(m *Model, opts Options, cfg streamConfig, ph *activationPhases) (*Stream, error) {
	ph.ckptStart = time.Now()
	ck, err := persist.LoadCheckpoint(p.dir)
	if err != nil {
		return nil, persistErr(err)
	}
	ph.ckptDur = time.Since(ph.ckptStart)
	if ck != nil && ck.Name != p.name {
		return nil, persistErr(fmt.Errorf("%w: checkpoint names stream %q, manifest %q", persist.ErrCorrupt, ck.Name, p.name))
	}
	ph.restoreStart = time.Now()
	st, err := buildStream(m, opts, cfg, ck)
	if err != nil {
		return nil, err
	}
	ph.restoreDur = time.Since(ph.restoreStart)
	var opSeq uint64
	if ck != nil {
		opSeq = ck.OpSeq
	}
	ph.replayStart = time.Now()
	wal, err := persist.OpenWAL(filepath.Join(p.dir, persist.WALFile),
		p.hp.opts.Fsync.syncPolicy(), p.hp.opts.FsyncInterval, replayInto(st, opSeq))
	if err != nil {
		return nil, persistErr(err)
	}
	ph.replayDur = time.Since(ph.replayStart)
	if wal.LastSeq() > opSeq {
		opSeq = wal.LastSeq()
	}
	p.opSeq = opSeq
	p.ckptBucket = -1
	if ck != nil {
		p.ckptBucket = ck.Core.Stats.Buckets
	}
	// A clean hibernation leaves a current checkpoint and an empty WAL; a
	// WAL tail (crash between the last appends and the next hibernation)
	// means the checkpoint is stale until retaken.
	p.ckptCurrent = ck != nil && wal.Size() == 0
	p.walp.Store(wal)
	p.statSeq.Store(opSeq)
	p.statBytes.Store(wal.Size())
	p.statCkptBucket.Store(p.ckptBucket)
	return st, nil
}

// releaseWAL closes and detaches the live WAL — the durability half of
// hibernation, after the caller made the checkpoint current. The closed
// WAL's fsync count folds into syncsBase so Fsyncs stays cumulative.
func (p *streamPersist) releaseWAL() error {
	wal := p.walp.Swap(nil)
	if wal == nil {
		return nil
	}
	err := wal.Close()
	p.syncsBase.Add(wal.Syncs())
	if err != nil {
		return persistErr(err)
	}
	return nil
}

// fsyncs returns the stream's cumulative WAL fsync count, across
// residency transitions.
func (p *streamPersist) fsyncs() int64 {
	n := p.syncsBase.Load()
	if wal := p.walp.Load(); wal != nil {
		n += wal.Syncs()
	}
	return n
}

// initStream provisions the on-disk home of a newly created (or adopted)
// stream: directory, manifest, empty WAL, and — when the stream already
// carries ingested or pending state (Adopt) — the initial checkpoint.
// Called under the hub lock, before the handle becomes reachable. The
// directory must not already exist: a leftover directory for this name
// means an earlier incarnation's durable state would be silently mixed
// with the new stream's, so it surfaces as ErrStreamExists.
func (hp *hubPersist) initStream(name string, st *Stream) (*streamPersist, error) {
	sdir := filepath.Join(hp.dir, url.PathEscape(name))
	if err := os.Mkdir(sdir, 0o755); err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("%w: %q has persisted state on disk (close kept it; use a fresh name or data dir)", ErrStreamExists, name)
		}
		return nil, persistErr(err)
	}
	opts := st.Options()
	if err := persist.WriteMeta(sdir, persist.Meta{
		Name:      name,
		ModelHash: hp.modelHash,
		WindowNs:  int64(opts.Window),
		BucketNs:  int64(opts.Bucket),
		Lambda:    opts.Lambda,
		Eta:       opts.Eta,
		Shards:    st.cfg.shards,
	}); err != nil {
		return nil, persistErr(err)
	}
	wal, err := persist.OpenWAL(filepath.Join(sdir, persist.WALFile),
		hp.opts.Fsync.syncPolicy(), hp.opts.FsyncInterval, nil)
	if err != nil {
		return nil, persistErr(err)
	}
	p := newStreamPersist(hp, name, sdir, wal, 0, -1)
	if st.Stats().Elements > 0 || st.Stats().Now != 0 || len(st.pending) > 0 {
		if err := p.checkpoint(st); err != nil {
			wal.Close()
			return nil, err
		}
	}
	return p, nil
}

// appendBatch stamps consecutive op sequence numbers onto recs, appends
// them as one group commit — every record framed individually, one write,
// one shared fsync under FsyncAlways — and refreshes the lock-free stat
// mirrors. Called from the stream's commit path (the writer goroutine, or
// under the serialized-writer mutex); it does not run the checkpoint
// trigger — the caller does, once the whole committed batch is logged (a
// checkpoint taken with applied-but-unlogged posts would be followed by
// their records past its watermark, which replay would then wrongly
// re-apply). On error the batch's operations are in memory but not
// durable — callers surface the error on each contributing op so
// producers know durability is degraded.
func (p *streamPersist) appendBatch(recs []persist.Record) error {
	return p.appendBatchTimed(recs, nil)
}

// appendBatchTimed is appendBatch, filling bt (when non-nil) with the
// append/fsync timing split so the commit path can record WAL spans on
// traced operations.
func (p *streamPersist) appendBatchTimed(recs []persist.Record, bt *persist.BatchTimings) error {
	wal := p.walp.Load() // non-nil: the commit path activates before ingest
	for i := range recs {
		p.opSeq++
		recs[i].Seq = p.opSeq
	}
	if err := wal.AppendBatchTimed(recs, bt); err != nil {
		return persistErr(err)
	}
	p.statSeq.Store(p.opSeq)
	p.statBytes.Store(wal.Size())
	return nil
}

// maybeCheckpoint fires the automatic checkpoint once CheckpointEvery
// buckets have been ingested past the last one.
func (p *streamPersist) maybeCheckpoint(st *Stream) error {
	base := p.ckptBucket
	if base < 0 {
		base = 0
	}
	if st.Stats().Bucket-base < p.hp.opts.CheckpointEvery {
		return nil
	}
	return p.checkpoint(st)
}

// checkpoint serializes the stream's full state, atomically replaces the
// checkpoint file, and truncates the WAL. Called on the handle's commit
// path, where checkpoints are commit barriers (no other op is mid-apply
// and every deferred publish has completed, so the published engine
// snapshot IS the latest state).
func (p *streamPersist) checkpoint(st *Stream) error {
	ck := &persist.Checkpoint{
		Name:      p.name,
		ModelHash: p.hp.modelHash,
		OpSeq:     p.opSeq,
		LastTime:  int64(st.lastTime),
		Core:      st.me.Load().engine.ExportState(),
	}
	for _, e := range st.pending {
		ck.Pending = append(ck.Pending, persist.PostRec{
			ID:   int64(e.ID),
			Time: int64(e.TS),
			Text: e.Text,
			Refs: refsToInt64(e.Refs),
		})
	}
	if err := persist.WriteCheckpoint(p.dir, ck); err != nil {
		return persistErr(err)
	}
	if err := p.walp.Load().Reset(); err != nil {
		return persistErr(err)
	}
	p.ckptBucket = ck.Core.Stats.Buckets
	p.checkpoints++
	p.ckptCurrent = true
	p.statCkptBucket.Store(p.ckptBucket)
	p.statCkpts.Store(p.checkpoints)
	p.statBytes.Store(0)
	return nil
}

// finalize takes the closing checkpoint and releases the WAL. Runs as
// the handle's close op — after the queue drained, before the writer
// goroutine exits. A hibernated stream (st nil, WAL already released)
// is already durably current: closing it is a no-op, never a reload.
func (p *streamPersist) finalize(st *Stream) error {
	if p.walp.Load() == nil {
		return nil
	}
	var ckErr error
	if !p.ckptCurrent {
		ckErr = p.checkpoint(st)
	}
	if err := p.releaseWAL(); err != nil && ckErr == nil {
		ckErr = err
	}
	return ckErr
}

// stats snapshots the durability counters (lock-free; see StreamHandle.Stats).
func (p *streamPersist) stats() PersistStats {
	return PersistStats{
		Enabled:          true,
		WALSeq:           p.statSeq.Load(),
		WALBytes:         p.statBytes.Load(),
		CheckpointBucket: p.statCkptBucket.Load(),
		Checkpoints:      p.statCkpts.Load(),
	}
}
