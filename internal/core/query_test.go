package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Example 4.1: MTTS with ε=0.3 on q8(2, (0.5,0.5)) returns {e1, e3} after
// evaluating only 4 elements (e3, e1, e6, e2).
func TestExample41MTTS(t *testing.T) {
	g := paperEngine(t)
	res, err := g.Query(Query{K: 2, X: papertest.QueryUniform(), Epsilon: 0.3, Algorithm: MTTS})
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, res, 1, 3)
	if math.Abs(res.Score-0.65) > 0.02 {
		t.Errorf("score = %v, want 0.65", res.Score)
	}
	if res.Evaluated != 4 {
		t.Errorf("evaluated %d elements, paper's walkthrough evaluates 4", res.Evaluated)
	}
	if res.ActiveAtQuery != 7 {
		t.Errorf("ActiveAtQuery = %d", res.ActiveAtQuery)
	}
}

// Example 4.3: MTTD with ε=0.3 on the same query also returns {e1, e3},
// retrieving only e3, e1, e6, e2 from the lists.
func TestExample43MTTD(t *testing.T) {
	g := paperEngine(t)
	res, err := g.Query(Query{K: 2, X: papertest.QueryUniform(), Epsilon: 0.3, Algorithm: MTTD})
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, res, 1, 3)
	if math.Abs(res.Score-0.65) > 0.02 {
		t.Errorf("score = %v, want 0.65", res.Score)
	}
}

// Example 3.4's second query: x2 = (0.1, 0.9) prefers θ2; the optimum is
// {e1, e2}. MTTD should find it.
func TestSkewedQueryMTTD(t *testing.T) {
	g := paperEngine(t)
	res, err := g.Query(Query{K: 2, X: papertest.QuerySkewed(), Epsilon: 0.1, Algorithm: MTTD})
	if err != nil {
		t.Fatal(err)
	}
	assertIDs(t, res, 1, 2)
	if math.Abs(res.Score-0.94) > 0.02 {
		t.Errorf("score = %v, want 0.94", res.Score)
	}
}

func TestTopkRepReturnsHighestIndividualScores(t *testing.T) {
	g := paperEngine(t)
	x := papertest.QueryUniform()
	res, err := g.Query(Query{K: 2, X: x, Algorithm: TopkRep})
	if err != nil {
		t.Fatal(err)
	}
	// Individual scores: δ(e3,x)=0.34, δ(e1,x)=0.31, δ(e6,x)=0.30, ... so
	// top-2 is {e3, e1} (which here coincides with the optimum set).
	assertIDs(t, res, 1, 3)
	if res.Elements[0].ID != 3 {
		t.Errorf("first element = e%d, want e3 (highest δ)", res.Elements[0].ID)
	}
}

func TestQueryValidation(t *testing.T) {
	g := paperEngine(t)
	x := papertest.QueryUniform()
	if _, err := g.Query(Query{K: 0, X: x}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := g.Query(Query{K: 2}); err == nil {
		t.Error("empty query vector accepted")
	}
	if _, err := g.Query(Query{K: 2, X: x, Epsilon: 1.5}); err == nil {
		t.Error("epsilon ≥ 1 accepted")
	}
	if _, err := g.Query(Query{K: 2, X: x, Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestQueryOnEmptyEngine(t *testing.T) {
	g, err := NewEngine(Config{
		Model:        papertest.Model(),
		WindowLength: 4,
		Params:       score.Params{Lambda: 0.5, Eta: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{MTTS, MTTD, TopkRep} {
		res, err := g.Query(Query{K: 3, X: papertest.QueryUniform(), Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Elements) != 0 || res.Score != 0 {
			t.Errorf("%v on empty engine returned %v", alg, res.IDs())
		}
	}
}

func TestKLargerThanActive(t *testing.T) {
	g := paperEngine(t)
	res, err := g.Query(Query{K: 50, X: papertest.QueryUniform(), Algorithm: MTTD})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elements) > 7 {
		t.Errorf("returned %d elements with only 7 active", len(res.Elements))
	}
	if len(res.Elements) < 5 {
		t.Errorf("returned only %d elements; nearly all actives contribute", len(res.Elements))
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, tc := range []struct {
		a    Algorithm
		want string
	}{{MTTS, "MTTS"}, {MTTD, "MTTD"}, {TopkRep, "TopkRep"}} {
		if tc.a.String() != tc.want {
			t.Errorf("String() = %q", tc.a.String())
		}
	}
	if Algorithm(42).String() == "" {
		t.Error("unknown algorithm has empty String()")
	}
}

// --- approximation-guarantee property tests ---

// randEngine builds an engine over a random instance and returns it with
// the active elements.
func randEngine(t *testing.T, rng *rand.Rand, n int) (*Engine, topicmodel.TopicVec) {
	t.Helper()
	const z, v = 4, 30
	m := &topicmodel.Model{Z: z, V: v, Phi: make([]float64, z*v), PTopic: make([]float64, z)}
	for i := 0; i < z; i++ {
		var sum float64
		for w := 0; w < v; w++ {
			m.Phi[i*v+w] = rng.Float64()
			sum += m.Phi[i*v+w]
		}
		for w := 0; w < v; w++ {
			m.Phi[i*v+w] /= sum
		}
		m.PTopic[i] = 1.0 / z
	}
	g, err := NewEngine(Config{
		Model:        m,
		WindowLength: stream.Time(n + 1),
		Params:       score.Params{Lambda: 0.5, Eta: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		nw := 1 + rng.Intn(5)
		ids := make([]textproc.WordID, nw)
		for j := range ids {
			ids[j] = textproc.WordID(rng.Intn(v))
		}
		dense := make([]float64, z)
		kk := 1 + rng.Intn(2)
		for j := 0; j < kk; j++ {
			dense[rng.Intn(z)] += rng.Float64()
		}
		var sum float64
		for _, d := range dense {
			sum += d
		}
		for j := range dense {
			dense[j] /= sum
		}
		e := &stream.Element{
			ID:     stream.ElemID(i + 1),
			TS:     stream.Time(i + 1),
			Doc:    textproc.NewDocument(ids),
			Topics: topicmodel.NewTopicVec(dense),
		}
		for r := 0; r < rng.Intn(3) && i > 0; r++ {
			e.Refs = append(e.Refs, stream.ElemID(1+rng.Intn(i)))
		}
		if err := g.Ingest(e.TS, []*stream.Element{e}); err != nil {
			t.Fatal(err)
		}
	}
	qd := make([]float64, z)
	var qs float64
	for j := range qd {
		qd[j] = rng.Float64()
		qs += qd[j]
	}
	for j := range qd {
		qd[j] /= qs
	}
	return g, topicmodel.NewTopicVec(qd)
}

// bruteForceOPT enumerates all subsets of size ≤ k to find the optimum.
func bruteForceOPT(g *Engine, x topicmodel.TopicVec, k int) float64 {
	var elems []*stream.Element
	g.Window().ForEachActive(func(e *stream.Element) { elems = append(elems, e) })
	var best float64
	var rec func(start int, cur []*stream.Element)
	rec = func(start int, cur []*stream.Element) {
		if v := g.Scorer().SetScore(cur, x); v > best {
			best = v
		}
		if len(cur) == k {
			return
		}
		for i := start; i < len(elems); i++ {
			rec(i+1, append(cur, elems[i]))
		}
	}
	rec(0, nil)
	return best
}

// Theorem 4.2: MTTS is (1/2 − ε)-approximate.
func TestMTTSApproximationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const eps = 0.1
	for trial := 0; trial < 25; trial++ {
		g, x := randEngine(t, rng, 10)
		k := 2 + rng.Intn(2)
		opt := bruteForceOPT(g, x, k)
		res, err := g.Query(Query{K: k, X: x, Epsilon: eps, Algorithm: MTTS})
		if err != nil {
			t.Fatal(err)
		}
		if res.Score < (0.5-eps)*opt-1e-9 {
			t.Errorf("trial %d: MTTS %.6f < (1/2−ε)·OPT = %.6f (OPT %.6f, k=%d)",
				trial, res.Score, (0.5-eps)*opt, opt, k)
		}
	}
}

// Theorem 4.4: MTTD is (1 − 1/e − ε)-approximate.
func TestMTTDApproximationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const eps = 0.1
	bound := 1 - 1/math.E - eps
	for trial := 0; trial < 25; trial++ {
		g, x := randEngine(t, rng, 10)
		k := 2 + rng.Intn(2)
		opt := bruteForceOPT(g, x, k)
		res, err := g.Query(Query{K: k, X: x, Epsilon: eps, Algorithm: MTTD})
		if err != nil {
			t.Fatal(err)
		}
		if res.Score < bound*opt-1e-9 {
			t.Errorf("trial %d: MTTD %.6f < (1−1/e−ε)·OPT = %.6f (OPT %.6f, k=%d)",
				trial, res.Score, bound*opt, opt, k)
		}
	}
}

// MTTD's result should be at least as good as MTTS's on average; assert it
// never does much worse on random instances.
func TestMTTDQualityVsMTTS(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var sumTS, sumTD float64
	for trial := 0; trial < 20; trial++ {
		g, x := randEngine(t, rng, 20)
		ts, err := g.Query(Query{K: 3, X: x, Epsilon: 0.1, Algorithm: MTTS})
		if err != nil {
			t.Fatal(err)
		}
		td, err := g.Query(Query{K: 3, X: x, Epsilon: 0.1, Algorithm: MTTD})
		if err != nil {
			t.Fatal(err)
		}
		sumTS += ts.Score
		sumTD += td.Score
	}
	if sumTD < 0.95*sumTS {
		t.Errorf("MTTD total %.4f much worse than MTTS %.4f", sumTD, sumTS)
	}
}

// Result sets never exceed k and never contain duplicates or inactive
// elements.
func TestResultWellFormedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		g, x := randEngine(t, rng, 15)
		k := 1 + rng.Intn(5)
		for _, alg := range []Algorithm{MTTS, MTTD, TopkRep} {
			res, err := g.Query(Query{K: k, X: x, Epsilon: 0.2, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Elements) > k {
				t.Errorf("%v returned %d > k=%d elements", alg, len(res.Elements), k)
			}
			seen := make(map[stream.ElemID]bool)
			for _, e := range res.Elements {
				if seen[e.ID] {
					t.Errorf("%v returned duplicate e%d", alg, e.ID)
				}
				seen[e.ID] = true
				if _, ok := g.Window().Get(e.ID); !ok {
					t.Errorf("%v returned inactive e%d", alg, e.ID)
				}
			}
			// Score must equal the direct evaluation of the returned set.
			direct := g.Scorer().SetScore(res.Elements, x)
			if math.Abs(direct-res.Score) > 1e-9 {
				t.Errorf("%v score %.9f != direct %.9f", alg, res.Score, direct)
			}
		}
	}
}

func assertIDs(t *testing.T, res Result, want ...stream.ElemID) {
	t.Helper()
	if len(res.Elements) != len(want) {
		t.Fatalf("result = %v, want %v", res.IDs(), want)
	}
	have := make(map[stream.ElemID]bool)
	for _, e := range res.Elements {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("result = %v, want %v", res.IDs(), want)
		}
	}
}
