package core

import (
	"container/heap"
	"context"

	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
)

// mttd implements Algorithm 3 (Multi-Topic ThresholdDescend) against one
// immutable snapshot view.
//
// It keeps a single candidate S and a buffer E′ of retrieved elements keyed
// by lazily cached marginal gains. Evaluation proceeds in rounds with
// geometrically descending thresholds τ; in each round, the retrieve step
// pulls every element whose ranked-list upper bound reaches τ, then the
// buffer is drained CELF-style: the max cached gain is recomputed and the
// element admitted if its true gain still reaches τ. The loop stops when S
// is full or τ descends below τ′ = f(S,x)·ε/k. Theorem 4.4: the result is
// (1 − 1/e − ε)-approximate.
//
// Cancellation is polled between threshold descents (once per τ round): a
// canceled ctx aborts with ctx.Err() before the next retrieve/evaluate pass.
func (v *view) mttd(ctx context.Context, q Query) (Result, error) {
	tr := newTraversalOpt(v, q.X, !q.DisableVisitedMarking)
	eps := q.Epsilon
	k := q.K

	s := score.NewCandidateSet(v.scorer, q.X)
	buf := &gainHeap{}
	evaluated := 0

	tau := tr.ub() // τ starts at the global upper bound (line 3)
	tauEnd := 0.0
	for tau >= tauEnd && tau > 0 {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		// retrieve(τ): pull elements whose upper bound reaches τ (lines
		// 13–19). Their cached key is the exact singleton score δ(e, x),
		// an upper bound on any future marginal gain.
		for q.DisableEarlyTermination || tr.ub() >= tau {
			e, ok := tr.pop()
			if !ok {
				break
			}
			delta := v.scorer.Score(e, q.X)
			evaluated++
			heap.Push(buf, gainEntry{elem: e, gain: delta})
		}

		// Evaluation round (lines 6–10): lazy-greedy drain at threshold τ.
		for buf.Len() > 0 && (*buf)[0].gain >= tau {
			top := heap.Pop(buf).(gainEntry)
			if s.Contains(top.elem.ID) {
				continue
			}
			gain := s.MarginalGain(top.elem)
			evaluated++
			if gain >= tau {
				s.Add(top.elem)
				if s.Len() == k {
					return v.mttdResult(s, tr, evaluated), nil
				}
			} else if gain > 0 {
				heap.Push(buf, gainEntry{elem: top.elem, gain: gain})
			}
		}

		// Descend (line 11). τ′ > 0 once anything scored, guaranteeing
		// termination; if nothing has positive score the buffer is empty
		// and the traversal exhausted, so we stop explicitly.
		tauEnd = s.Value() * eps / float64(k)
		tau *= 1 - eps
		if buf.Len() == 0 && tr.exhausted() {
			break
		}
	}
	return v.mttdResult(s, tr, evaluated), nil
}

func (v *view) mttdResult(s *score.CandidateSet, tr *traversal, evaluated int) Result {
	return Result{
		Elements:      s.Members(),
		Score:         s.Value(),
		Evaluated:     evaluated,
		Retrieved:     tr.retrieved,
		ActiveAtQuery: v.numActive,
		BucketSeq:     v.seq,
	}
}

// gainEntry is one buffered element with its lazily cached marginal gain.
type gainEntry struct {
	elem *stream.Element
	gain float64
}

// gainHeap is a max-heap over cached gains (ties broken by ID for
// determinism).
type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].elem.ID < h[j].elem.ID
}
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
