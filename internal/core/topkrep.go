package core

import (
	"container/heap"
	"context"

	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
)

// topkRep implements the Top-k Representative baseline of §5.3: the k
// elements with the highest individual scores δ(e, x), retrieved from the
// ranked lists with threshold-algorithm early termination. It ignores word
// and influence overlaps, so as a k-SIR answer it is only 1/k-approximate —
// the experiments use it to show that classic top-k processing is not
// enough for representativeness.
func (v *view) topkRep(ctx context.Context, q Query) (Result, error) {
	tr := newTraversalOpt(v, q.X, true)
	top := &minScoreHeap{}
	evaluated := 0

	for {
		if evaluated%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		// Threshold-algorithm stop: once the k-th best exact score reaches
		// the upper bound of everything unseen, the top-k is final.
		if top.Len() == q.K && (*top)[0].score >= tr.ub() {
			break
		}
		e, ok := tr.pop()
		if !ok {
			break
		}
		delta := v.scorer.Score(e, q.X)
		evaluated++
		if top.Len() < q.K {
			heap.Push(top, scoredElem{e, delta})
		} else if delta > (*top)[0].score {
			(*top)[0] = scoredElem{e, delta}
			heap.Fix(top, 0)
		}
	}

	// Emit in descending score order and measure the true set score.
	members := make([]*stream.Element, top.Len())
	for i := top.Len() - 1; i >= 0; i-- {
		members[i] = heap.Pop(top).(scoredElem).elem
	}
	set := score.NewCandidateSet(v.scorer, q.X)
	for _, e := range members {
		set.Add(e)
	}
	return Result{
		Elements:      members,
		Score:         set.Value(),
		Evaluated:     evaluated,
		Retrieved:     tr.retrieved,
		ActiveAtQuery: v.numActive,
		BucketSeq:     v.seq,
	}, nil
}

type scoredElem struct {
	elem  *stream.Element
	score float64
}

// minScoreHeap keeps the current top-k with the worst at the root.
type minScoreHeap []scoredElem

func (h minScoreHeap) Len() int { return len(h) }
func (h minScoreHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].elem.ID > h[j].elem.ID
}
func (h minScoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minScoreHeap) Push(x interface{}) { *h = append(*h, x.(scoredElem)) }
func (h *minScoreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
