package core

import (
	"fmt"
	"runtime"

	"github.com/social-streams/ksir/internal/rankedlist"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
)

// State is the serializable form of an Engine at a published bucket
// boundary: the window dump, the per-topic ranked-list tuples, and the
// maintenance counters. It is what checkpoints store (internal/persist)
// and what Restore rebuilds.
//
// The list tuples are serialized rather than recomputed on restore
// because Algorithm 1 only repositions an element when it is inserted or
// gains a reference — a parent whose child merely left the window keeps
// its stale δ_i until then. That staleness is part of the engine's
// observable state (it steers query traversal order), so an exact restore
// must reproduce it; the skip lists themselves are insertion-order
// independent (ordering by ⟨score, ID⟩, levels derived from the ID), so
// re-inserting the tuples rebuilds byte-identical traversals.
type State struct {
	Window stream.WindowState
	// Lists[i] holds RL_i's tuples in ranked order. Per-shard counters
	// are not part of the state: the shard count may differ across runs
	// (it defaults to GOMAXPROCS), so only the totals in Stats survive.
	Lists [][]rankedlist.Item
	Stats Stats
}

// ExportState dumps the last published state. Like a query it pins the
// snapshot, so it is safe to run concurrently with readers; the caller
// must serialize it against Ingest (the Hub's writer pipeline does — a
// checkpoint op is a commit barrier).
func (g *Engine) ExportState() State {
	snap := g.acquire()
	defer snap.release()
	st := State{
		Window: snap.buf.win.Export(),
		Lists:  make([][]rankedlist.Item, len(snap.buf.frozen)),
		Stats:  snap.stats,
	}
	for i, l := range snap.buf.frozen {
		if l.Len() > 0 {
			st.Lists[i] = l.Items()
		}
	}
	return st
}

// Restore builds an engine whose published state is exactly st: the same
// window, the same ranked-list tuples (stale scores included), the same
// counters and bucket sequence. Queries against the restored engine return
// byte-identical results to the engine st was exported from, and
// subsequent Ingests continue deterministically.
//
// By default only the front (query-serving) buffer is materialized before
// Restore returns — the activation critical path pays for one buffer, not
// two. The back buffer is deferred: built by the first write (recycle) or
// an explicit MaterializeBack, from the retained state, at which point it
// is byte-identical to what an eager restore would have built (the front
// cannot have advanced — every write materializes first). Set
// Config.EagerRestore to build both up front (the measured baseline).
func Restore(cfg Config, st State) (*Engine, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: config needs a topic model")
	}
	if cfg.WindowLength <= 0 {
		return nil, fmt.Errorf("core: window length must be positive, got %d", cfg.WindowLength)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: shard count must be non-negative, got %d", cfg.Shards)
	}
	if len(st.Lists) != cfg.Model.Z {
		return nil, fmt.Errorf("core: state has %d ranked lists for a %d-topic model", len(st.Lists), cfg.Model.Z)
	}
	p := cfg.Shards
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > cfg.Model.Z {
		p = cfg.Model.Z
	}
	if p < 1 {
		p = 1
	}
	front, err := restoreBuffer(cfg, st, nil)
	if err != nil {
		return nil, err
	}
	g := &Engine{cfg: cfg, numShards: p, stats: st.Stats}
	if cfg.EagerRestore {
		// Both buffers rebuilt up front (they share the immutable
		// *Element values, as in normal operation); the back buffer has
		// no pending bucket to catch up on, and adopts the front's
		// immutable scorer-cache entries by pointer instead of
		// re-deriving every word weight a second time.
		back, err := restoreBuffer(cfg, st, front.scorer)
		if err != nil {
			return nil, err
		}
		if cfg.CatchUp == CatchUpDelta {
			stream.ShareWriterState(front.win, back.win) // see NewEngine
		}
		g.back = back
	} else {
		// Lazy: retain the state; materializeBack rebuilds the back
		// buffer from it before the first post-restore bucket applies.
		g.lazy = &st
	}
	g.shardStats = make([]ShardStats, p)
	for s := range g.shardStats {
		g.shardStats[s].Shard = s
		g.shardStats[s].Topics = (cfg.Model.Z - s + p - 1) / p
	}
	// Per-shard counters cannot be restored faithfully across shard
	// counts; park the lifetime totals on shard 0 so the roll-up in
	// applyBucket keeps summing to the true totals.
	g.shardStats[0].ListUpserts = st.Stats.ListUpserts
	g.shardStats[0].ListDeletes = st.Stats.ListDeletes
	front.freeze()
	g.front.Store(newSnapshot(front, g.stats, g.shardStats))
	return g, nil
}

// restoreBuffer rebuilds one buffer copy from the state: restore the
// window, warm the scorer cache for every active element (queries read the
// cache without locking, so it must be complete before publication), and
// re-insert the ranked-list tuples. A non-nil warmFrom supplies an
// already-warmed scorer over the same state whose immutable cache entries
// are adopted by pointer instead of recomputed.
func restoreBuffer(cfg Config, st State, warmFrom *score.Scorer) (*buffer, error) {
	win, err := stream.Restore(cfg.WindowLength, st.Window)
	if err != nil {
		return nil, err
	}
	scorer, err := score.NewScorer(cfg.Model, win, cfg.Params)
	if err != nil {
		return nil, err
	}
	if warmFrom != nil {
		scorer.AdoptCache(warmFrom)
	} else {
		var warm stream.ChangeSet
		win.ForEachActive(func(e *stream.Element) {
			warm.Inserted = append(warm.Inserted, e)
		})
		scorer.OnChange(warm)
	}

	lists := make([]*rankedlist.List, cfg.Model.Z)
	for i := range lists {
		lists[i] = rankedlist.New()
	}
	for topic, items := range st.Lists {
		for _, it := range items {
			if _, active := win.Get(it.ID); !active {
				return nil, fmt.Errorf("core: ranked list %d holds inactive element %d", topic, it.ID)
			}
			lists[topic].Upsert(it.ID, it.Score, it.LastRef)
		}
	}
	return &buffer{win: win, scorer: scorer, lists: lists}, nil
}
