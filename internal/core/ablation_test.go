package core

import (
	"math"
	"testing"
)

// The ablation knobs must not change result quality — only cost. MTTS with
// early termination disabled is the same sieve over the same elements in
// the same order, just without stopping; visited-marking off re-feeds
// duplicates that every candidate ignores via Contains.
func TestAblationFlagsPreserveQuality(t *testing.T) {
	g, x := skewedEngine(t, 800)
	base, err := g.Query(Query{K: 5, X: x, Epsilon: 0.1, Algorithm: MTTS})
	if err != nil {
		t.Fatal(err)
	}
	noTerm, err := g.Query(Query{K: 5, X: x, Epsilon: 0.1, Algorithm: MTTS,
		DisableEarlyTermination: true})
	if err != nil {
		t.Fatal(err)
	}
	noMark, err := g.Query(Query{K: 5, X: x, Epsilon: 0.1, Algorithm: MTTS,
		DisableVisitedMarking: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without early termination the sieve sees MORE elements, so its score
	// can only match or improve; with duplicates it must be identical.
	if noTerm.Score < base.Score-1e-9 {
		t.Errorf("no-early-termination score %.6f < base %.6f", noTerm.Score, base.Score)
	}
	if math.Abs(noMark.Score-base.Score) > 1e-9 {
		t.Errorf("no-visited-marking changed the result: %.6f vs %.6f", noMark.Score, base.Score)
	}
}

func TestAblationFlagsIncreaseCost(t *testing.T) {
	g, x := skewedEngine(t, 800)
	base, err := g.Query(Query{K: 5, X: x, Epsilon: 0.1, Algorithm: MTTS})
	if err != nil {
		t.Fatal(err)
	}
	noTerm, err := g.Query(Query{K: 5, X: x, Epsilon: 0.1, Algorithm: MTTS,
		DisableEarlyTermination: true})
	if err != nil {
		t.Fatal(err)
	}
	// Early termination is the pruning mechanism: disabling it must drain
	// the query topics' lists completely (every distinct element with mass
	// on a query topic gets evaluated — the index still spares the other
	// topics' elements, which is the ranked lists' own contribution).
	distinct := make(map[int64]struct{})
	for _, topic := range []int{0, 1} {
		for _, item := range g.ListItems(topic) {
			distinct[int64(item.ID)] = struct{}{}
		}
	}
	if noTerm.Evaluated != len(distinct) {
		t.Errorf("no-early-termination evaluated %d, want all %d query-topic elements",
			noTerm.Evaluated, len(distinct))
	}
	if base.Evaluated >= noTerm.Evaluated {
		t.Errorf("base evaluated %d, ablated %d — pruning bought nothing",
			base.Evaluated, noTerm.Evaluated)
	}

	// Visited-marking dedupes multi-topic elements: without it, the lists
	// feed at least as many tuples.
	noMark, err := g.Query(Query{K: 5, X: x, Epsilon: 0.1, Algorithm: MTTS,
		DisableVisitedMarking: true})
	if err != nil {
		t.Fatal(err)
	}
	if noMark.Retrieved < base.Retrieved {
		t.Errorf("no-marking retrieved %d < base %d", noMark.Retrieved, base.Retrieved)
	}
}

func TestAblationMTTD(t *testing.T) {
	g, x := skewedEngine(t, 800)
	base, err := g.Query(Query{K: 5, X: x, Epsilon: 0.1, Algorithm: MTTD})
	if err != nil {
		t.Fatal(err)
	}
	noTerm, err := g.Query(Query{K: 5, X: x, Epsilon: 0.1, Algorithm: MTTD,
		DisableEarlyTermination: true})
	if err != nil {
		t.Fatal(err)
	}
	// MTTD without the retrieve bound pulls the whole index into its
	// buffer up front; quality must not suffer.
	if noTerm.Score < base.Score-1e-9 {
		t.Errorf("ablated MTTD score %.6f < base %.6f", noTerm.Score, base.Score)
	}
	if noTerm.Retrieved < base.Retrieved {
		t.Errorf("ablated MTTD retrieved %d < base %d", noTerm.Retrieved, base.Retrieved)
	}
}
