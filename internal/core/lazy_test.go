package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/stream"
)

// maskTimes zeroes the wall-clock maintenance timers, which measure this
// run's hardware, not the logical state; every other field must match
// exactly between a lazy and an eager restore.
func maskTimes(st State) State {
	st.Stats.UpdateTime = 0
	st.Stats.ReplayTime = 0
	return st
}

// lazyEagerPair restores two engines from the same export: one with the
// default lazy back buffer, one with the eager baseline.
func lazyEagerPair(t *testing.T, st State) (lazy, eager *Engine) {
	t.Helper()
	var err error
	if lazy, err = Restore(paperConfig(), st); err != nil {
		t.Fatal(err)
	}
	cfg := paperConfig()
	cfg.EagerRestore = true
	if eager, err = Restore(cfg, st); err != nil {
		t.Fatal(err)
	}
	return lazy, eager
}

// A default restore defers the back buffer; an explicit MaterializeBack
// builds it exactly once, off the write path, after which both engines
// export byte-identical state.
func TestLazyRestoreDefersBackBuffer(t *testing.T) {
	g := paperEngine(t)
	lazy, eager := lazyEagerPair(t, g.ExportState())

	if lazy.BackMaterialized() {
		t.Fatal("lazy restore materialized the back buffer up front")
	}
	if !eager.BackMaterialized() {
		t.Fatal("eager restore deferred the back buffer")
	}
	// The front buffer alone answers queries identically.
	if err := sameResults(engineQueries(t, lazy), engineQueries(t, eager)); err != nil {
		t.Fatalf("pre-materialization queries diverge: %v", err)
	}

	did, dur, err := lazy.MaterializeBack()
	if err != nil {
		t.Fatal(err)
	}
	if !did || dur <= 0 {
		t.Fatalf("MaterializeBack did=%v dur=%v, want a measured build", did, dur)
	}
	if !lazy.BackMaterialized() {
		t.Fatal("back buffer still missing after MaterializeBack")
	}
	if did, _, err := lazy.MaterializeBack(); err != nil || did {
		t.Fatalf("second MaterializeBack did=%v err=%v, want idempotent no-op", did, err)
	}
	// An explicit (off-write-path) build must not be reported to the
	// ingest-path timing seam.
	if start, d := lazy.TakeMaterialize(); !start.IsZero() || d != 0 {
		t.Fatalf("TakeMaterialize returned %v/%v after an explicit build", start, d)
	}
	if !reflect.DeepEqual(maskTimes(lazy.ExportState()), maskTimes(eager.ExportState())) {
		t.Fatal("exports diverge after explicit materialization")
	}
}

// The first write pays for a deferred back buffer itself and parks the
// timing for the pipeline's span seam, then continues exactly as if the
// restore had been eager.
func TestLazyMaterializeOnFirstWrite(t *testing.T) {
	g := paperEngine(t)
	lazy, eager := lazyEagerPair(t, g.ExportState())

	src := papertest.Elements()[0]
	for _, r := range []*Engine{lazy, eager} {
		e := &stream.Element{ID: 30, TS: 9, Doc: src.Doc, Topics: src.Topics}
		if err := r.Ingest(9, []*stream.Element{e}); err != nil {
			t.Fatal(err)
		}
	}
	if !lazy.BackMaterialized() {
		t.Fatal("first write did not materialize the back buffer")
	}
	start, dur := lazy.TakeMaterialize()
	if start.IsZero() || dur <= 0 {
		t.Fatalf("TakeMaterialize = %v/%v, want the first write's build timing", start, dur)
	}
	if start2, dur2 := lazy.TakeMaterialize(); !start2.IsZero() || dur2 != 0 {
		t.Fatal("TakeMaterialize did not clear the parked timing")
	}
	if start3, dur3 := eager.TakeMaterialize(); !start3.IsZero() || dur3 != 0 {
		t.Fatal("eager restore parked a materialization timing")
	}
	if err := sameResults(engineQueries(t, lazy), engineQueries(t, eager)); err != nil {
		t.Fatalf("queries diverge after first post-restore write: %v", err)
	}
	if !reflect.DeepEqual(maskTimes(lazy.ExportState()), maskTimes(eager.ExportState())) {
		t.Fatal("exports diverge after first post-restore write")
	}
}

// Randomized interleavings of ingest, query, export and explicit
// materialization keep a lazy restore in exact lockstep with its eager
// twin — same elements, same bit-for-bit scores, same exported state —
// regardless of when (or whether) the back buffer gets built explicitly.
func TestLazyEagerInterleavedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		base := paperEngine(t)
		lazy, eager := lazyEagerPair(t, base.ExportState())
		rng := rand.New(rand.NewSource(seed))

		ts := stream.Time(9)
		nextID := stream.ElemID(100)
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0: // ingest the same fresh element into both
				ts += stream.Time(1 + rng.Intn(2))
				id := nextID
				nextID++
				var refs []stream.ElemID
				if id > 100 && rng.Intn(2) == 0 {
					// Reference a random earlier arrival: live targets gain
					// influence, expired ones resurrect — both paths must
					// replay identically.
					refs = []stream.ElemID{100 + stream.ElemID(rng.Intn(int(id-100)))}
				}
				src := papertest.Elements()[rng.Intn(8)]
				for _, r := range []*Engine{lazy, eager} {
					e := &stream.Element{ID: id, TS: ts, Doc: src.Doc, Topics: src.Topics, Refs: refs}
					if err := r.Ingest(ts, []*stream.Element{e}); err != nil {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
				}
			case 1: // explicit materialization at an arbitrary point
				if _, _, err := lazy.MaterializeBack(); err != nil {
					t.Fatalf("seed %d step %d: MaterializeBack: %v", seed, step, err)
				}
			case 2: // full query battery
				if err := sameResults(engineQueries(t, lazy), engineQueries(t, eager)); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			case 3: // exported state (what a checkpoint would persist)
				if !reflect.DeepEqual(maskTimes(lazy.ExportState()), maskTimes(eager.ExportState())) {
					t.Fatalf("seed %d step %d: exports diverge", seed, step)
				}
			}
		}
		lazy.TakeMaterialize()
		if err := sameResults(engineQueries(t, lazy), engineQueries(t, eager)); err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		if !reflect.DeepEqual(maskTimes(lazy.ExportState()), maskTimes(eager.ExportState())) {
			t.Fatalf("seed %d final: exports diverge", seed)
		}
	}
}
