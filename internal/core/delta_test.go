package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/social-streams/ksir/internal/rankedlist"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/testutil"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// deltaBucket is one generated bucket of a randomized sequence.
type deltaBucket struct {
	now   stream.Time
	batch []*stream.Element
}

// randomDeltaStream generates a bucket sequence exercising every
// maintenance path: inserts, parent rescoring, expiry, resurrection of
// expired parents, dangling references, duplicate refs, empty buckets and
// window-jumping gaps (elements arriving already expired).
func randomDeltaStream(rng *rand.Rand, z, v, buckets int, windowT stream.Time) []deltaBucket {
	var out []deltaBucket
	now := stream.Time(0)
	nextID := 1
	for b := 0; b < buckets; b++ {
		var step stream.Time
		switch rng.Intn(10) {
		case 0:
			step = windowT + stream.Time(rng.Intn(20)+1) // mass expiry
		default:
			step = stream.Time(rng.Intn(8) + 1)
		}
		prev := now
		now += step
		n := rng.Intn(7) // sometimes 0: an empty bucket
		batch := make([]*stream.Element, 0, n)
		for i := 0; i < n; i++ {
			e := testutil.RandElement(rng, nextID, z, v, 0)
			e.TS = prev + 1 + stream.Time(rng.Int63n(int64(now-prev)))
			for r := 0; r < rng.Intn(3) && nextID > 1; r++ {
				e.Refs = append(e.Refs, stream.ElemID(1+rng.Intn(nextID-1)))
			}
			if rng.Intn(10) == 0 {
				e.Refs = append(e.Refs, stream.ElemID(nextID+1000)) // dangling
			}
			if len(e.Refs) > 1 && rng.Intn(5) == 0 {
				e.Refs = append(e.Refs, e.Refs[0]) // duplicate ref
			}
			nextID++
			batch = append(batch, e)
		}
		// Timestamp-ordered, like stream.Partition produces.
		for i := 1; i < len(batch); i++ {
			for j := i; j > 0 && batch[j].TS < batch[j-1].TS; j-- {
				batch[j], batch[j-1] = batch[j-1], batch[j]
			}
		}
		out = append(out, deltaBucket{now: now, batch: batch})
	}
	return out
}

// cloneBatch gives each engine its own *Element values (buffers share
// elements within one engine, never across engines).
func cloneBatch(batch []*stream.Element) []*stream.Element {
	out := make([]*stream.Element, len(batch))
	for i, e := range batch {
		c := *e
		c.Refs = append([]stream.ElemID(nil), e.Refs...)
		out[i] = &c
	}
	return out
}

// bufferState dumps one buffer at the exported-tuple level: the full
// window export plus every ranked list's tuples in ranked order.
type bufferState struct {
	Window stream.WindowState
	Lists  [][]rankedlist.Item
}

func stateOf(b *buffer) bufferState {
	st := bufferState{Window: b.win.Export(), Lists: make([][]rankedlist.Item, len(b.lists))}
	for i, l := range b.lists {
		st.Lists[i] = l.Items()
	}
	return st
}

// gobBytes serializes a buffer state so "byte-identical" is literal.
func gobBytes(t *testing.T, st bufferState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeltaReplayEquivalence is the §9 correctness bar: after replay-on-
// thaw, the recycled buffer is byte-identical — window export, ranked-list
// tuples, reference index — to the published front, across randomized
// bucket sequences, while concurrent queries run (-race covers the capture
// path against the read path). A twin engine running the legacy
// CatchUpReapply mode must publish the identical states, proving the delta
// path changes cost, not semantics.
func TestDeltaReplayEquivalence(t *testing.T) {
	seeds := int64(4)
	if testing.Short() {
		seeds = 1
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const z, v, windowT = 10, 80, 40
		model := testutil.RandModel(rng, z, v)
		mk := func(mode CatchUpMode) *Engine {
			g, err := NewEngine(Config{Model: model, WindowLength: windowT, Params: paperConfig().Params, CatchUp: mode})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
		gDelta, gReapply := mk(CatchUpDelta), mk(CatchUpReapply)

		// Concurrent readers stress the snapshot pins while buckets are
		// captured and replayed.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				x := topicmodel.TopicVec{Topics: []int32{int32(w), int32(w + 3)}, Probs: []float64{0.5, 0.5}}
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := gDelta.Query(Query{K: 4, X: x, Algorithm: MTTS}); err != nil {
						t.Error(err)
						return
					}
					// Pace the reader so a single-core host still gets the
					// writer scheduled (the race coverage needs overlap,
					// not saturation).
					time.Sleep(200 * time.Microsecond)
				}
			}(w)
		}

		for b, bucket := range randomDeltaStream(rng, z, v, 60, windowT) {
			if err := gDelta.Ingest(bucket.now, cloneBatch(bucket.batch)); err != nil {
				t.Fatalf("seed %d bucket %d: %v", seed, b, err)
			}
			if err := gReapply.Ingest(bucket.now, cloneBatch(bucket.batch)); err != nil {
				t.Fatalf("seed %d bucket %d (reapply): %v", seed, b, err)
			}

			// Force the catch-up that would otherwise run lazily at the
			// next Ingest, then hold the writer lock while comparing the
			// recycled buffer against the published front. The delta path
			// is verified every bucket; the legacy path (unchanged
			// semantics) is sampled.
			engines := map[string]*Engine{"delta": gDelta}
			if b%3 == 2 {
				engines["reapply"] = gReapply
			}
			for name, g := range engines {
				g.mu.Lock()
				if err := g.recycle(); err != nil {
					g.mu.Unlock()
					t.Fatalf("seed %d bucket %d: recycle (%s): %v", seed, b, name, err)
				}
				back, front := stateOf(g.back), stateOf(g.front.Load().buf)
				if !reflect.DeepEqual(back, front) {
					g.mu.Unlock()
					t.Fatalf("seed %d bucket %d (%s): recycled buffer diverges from front", seed, b, name)
				}
				// The gob pass makes "byte-identical" literal; it is
				// costly, so sample it.
				if b%7 == 6 && !bytes.Equal(gobBytes(t, back), gobBytes(t, front)) {
					g.mu.Unlock()
					t.Fatalf("seed %d bucket %d (%s): recycled buffer not byte-identical to front", seed, b, name)
				}
				// The reference index is derived state Export omits;
				// compare it (and t_e) explicitly.
				g.back.win.ForEachActive(func(e *stream.Element) {
					if !reflect.DeepEqual(g.back.win.Children(e.ID), g.front.Load().buf.win.Children(e.ID)) {
						t.Errorf("seed %d bucket %d (%s): children of %d diverge", seed, b, name, e.ID)
					}
				})
				g.mu.Unlock()
			}

			// Cross-mode: both engines publish identical states.
			if b%3 == 2 {
				dSt, rSt := stateOf(gDelta.front.Load().buf), stateOf(gReapply.front.Load().buf)
				if !reflect.DeepEqual(dSt, rSt) {
					t.Fatalf("seed %d bucket %d: delta and reapply engines diverge", seed, b)
				}
			}
			ds, rs := gDelta.Stats(), gReapply.Stats()
			if ds.Buckets != rs.Buckets || ds.ElementsIngested != rs.ElementsIngested ||
				ds.ListUpserts != rs.ListUpserts || ds.ListDeletes != rs.ListDeletes {
				t.Fatalf("seed %d bucket %d: counters diverge: %+v vs %+v", seed, b, ds, rs)
			}
		}

		// Identical query answers, bit-exact scores included.
		for _, x := range []topicmodel.TopicVec{
			{Topics: []int32{0}, Probs: []float64{1}},
			{Topics: []int32{2, 7}, Probs: []float64{0.6, 0.4}},
		} {
			for _, alg := range []Algorithm{MTTS, MTTD, TopkRep} {
				a, err := gDelta.Query(Query{K: 5, X: x, Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				b2, err := gReapply.Query(Query{K: 5, X: x, Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				if a.Score != b2.Score || !reflect.DeepEqual(a.IDs(), b2.IDs()) ||
					a.Evaluated != b2.Evaluated || a.Retrieved != b2.Retrieved {
					t.Fatalf("seed %d: query answers diverge across modes: %+v vs %+v", seed, a, b2)
				}
			}
		}
		close(stop)
		wg.Wait()
	}
}
