package core

import (
	"context"
	"fmt"
	"time"

	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
	"github.com/social-streams/ksir/internal/trace"
)

// Algorithm selects the k-SIR processing algorithm.
type Algorithm int

const (
	// MTTS is Multi-Topic ThresholdStream (Algorithm 2): evaluates each
	// active element at most once, (1/2 − ε)-approximate.
	MTTS Algorithm = iota
	// MTTD is Multi-Topic ThresholdDescend (Algorithm 3): buffers retrieved
	// elements for re-evaluation, (1 − 1/e − ε)-approximate.
	MTTD
	// TopkRep returns the k elements with the highest individual scores
	// δ(e, x) — the Top-k Representative baseline of §5.3, only
	// 1/k-approximate because word and influence overlaps are ignored.
	TopkRep
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case MTTS:
		return "MTTS"
	case MTTD:
		return "MTTD"
	case TopkRep:
		return "TopkRep"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Query is a k-SIR query q_t(k, x).
type Query struct {
	// K bounds the result size.
	K int
	// X is the query vector over topics, normalized to sum to 1.
	X topicmodel.TopicVec
	// Epsilon is the approximation parameter ε ∈ (0,1) of MTTS/MTTD
	// (default 0.1, the paper's default).
	Epsilon float64
	// Algorithm selects the processing algorithm (default MTTS).
	Algorithm Algorithm

	// Ablation knobs (DESIGN.md §5). Production queries leave both false;
	// the ablation benches flip them to measure what each mechanism buys.
	//
	// DisableEarlyTermination ignores the UB(x) < TH cutoff so the
	// traversal drains every ranked list (the algorithm degenerates to an
	// index-ordered SieveStreaming / full threshold descend).
	DisableEarlyTermination bool
	// DisableVisitedMarking skips cross-list deduplication, so an element
	// with mass on several query topics is retrieved and evaluated once
	// per list rather than once per query.
	DisableVisitedMarking bool
}

func (q *Query) validate() error {
	if q.K <= 0 {
		return fmt.Errorf("core: query k must be positive, got %d", q.K)
	}
	if q.X.Len() == 0 {
		return fmt.Errorf("core: query vector is empty")
	}
	if q.Epsilon == 0 {
		q.Epsilon = 0.1
	}
	if q.Epsilon < 0 || q.Epsilon >= 1 {
		return fmt.Errorf("core: epsilon must be in (0,1), got %v", q.Epsilon)
	}
	return nil
}

// Result is the answer to a k-SIR query plus the processing counters used
// by the efficiency experiments.
type Result struct {
	// Elements is the result set S, in the order the algorithm added them.
	Elements []*stream.Element
	// Score is f(S, x).
	Score float64
	// Evaluated counts elements whose exact score or marginal gain was
	// computed at least once — the numerator of Figure 10's ratio.
	Evaluated int
	// Retrieved counts tuples pulled from the ranked lists.
	Retrieved int
	// ActiveAtQuery is n_t when the query ran (Figure 10's denominator).
	ActiveAtQuery int
	// BucketSeq is the sequence number of the published bucket the query
	// observed (0 before any ingest). Every value in the result — scores,
	// members, counters — is consistent with exactly this bucket boundary,
	// even when the query raced a concurrent Ingest.
	BucketSeq int64
}

// IDs returns the result element IDs in selection order.
func (r Result) IDs() []stream.ElemID {
	ids := make([]stream.ElemID, len(r.Elements))
	for i, e := range r.Elements {
		ids[i] = e.ID
	}
	return ids
}

// Query processes a k-SIR query against the last published bucket. It is
// safe to call concurrently from any number of goroutines and concurrently
// with Ingest: the query pins the engine snapshot current at its start and
// traverses that immutable state lock-free, so an in-flight Ingest neither
// blocks it nor leaks partially applied updates into its result.
func (g *Engine) Query(q Query) (Result, error) {
	return g.QueryContext(context.Background(), q)
}

// QueryContext is Query with cancellation: the algorithms poll ctx between
// ranked-list descents (MTTD's threshold rounds, and every checkEvery
// retrievals in the MTTS/TopkRep streaming loops), so an abandoned query
// releases its snapshot pin promptly instead of draining the lists. On
// cancellation it returns ctx.Err() and an empty result.
func (g *Engine) QueryContext(ctx context.Context, q Query) (Result, error) {
	if err := q.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if q.Algorithm < MTTS || q.Algorithm > TopkRep {
		return Result{}, fmt.Errorf("core: unknown algorithm %d", int(q.Algorithm))
	}
	start := time.Now()
	snap := g.acquire()
	defer snap.release()
	v := snap.view()
	descStart := time.Now()
	var res Result
	var err error
	switch q.Algorithm {
	case MTTD:
		res, err = v.mttd(ctx, q)
	case TopkRep:
		res, err = v.topkRep(ctx, q)
	default:
		res, err = v.mtts(ctx, q)
	}
	obsQueryByAlg[q.Algorithm].ObserveSince(start)
	if op := trace.FromContext(ctx); op != nil {
		pin := op.Child("snapshot.pin", start, time.Since(start),
			trace.Int("bucket", res.BucketSeq))
		op.ChildOf(pin, "query.descend", descStart, time.Since(descStart),
			trace.String("algorithm", q.Algorithm.String()),
			trace.Int("evaluated", int64(res.Evaluated)),
			trace.Int("retrieved", int64(res.Retrieved)))
	}
	return res, err
}

// checkEvery is how many ranked-list retrievals the streaming loops process
// between context polls: cheap enough to bound cancellation latency, coarse
// enough to keep ctx.Err out of the per-element hot path.
const checkEvery = 256
