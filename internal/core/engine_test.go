package core

import (
	"math"
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
)

// paperEngine builds an engine with the paper's example parameters
// (λ=0.5, η=2, T=4) and ingests the eight elements one per time unit.
func paperEngine(t *testing.T) *Engine {
	t.Helper()
	g, err := NewEngine(Config{
		Model:        papertest.Model(),
		WindowLength: 4,
		Params:       score.Params{Lambda: 0.5, Eta: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range papertest.Elements() {
		if err := g.Ingest(e.TS, []*stream.Element{e}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{Model: nil, WindowLength: 4}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewEngine(Config{Model: papertest.Model(), WindowLength: 0}); err == nil {
		t.Error("zero window accepted")
	}
	bad := score.Params{Lambda: 2, Eta: 1}
	if _, err := NewEngine(Config{Model: papertest.Model(), WindowLength: 4, Params: bad}); err == nil {
		t.Error("bad params accepted")
	}
}

// Figure 5: the ranked lists at t=8. RL1 = e3,e6,e8,e2,{e7,e1},e5 with
// scores 0.65,0.48,0.17,0.10,0.06,0.06,0.05; RL2 = e1,e2,e5,e7,e8,e6,e3
// with scores 0.56,0.48,0.27,0.18,0.16,0.13,0.03.
func TestFigure5RankedLists(t *testing.T) {
	g := paperEngine(t)
	if g.ListLen(0) != 7 || g.ListLen(1) != 7 {
		t.Fatalf("list sizes = %d, %d; want 7, 7 (e4 expired)", g.ListLen(0), g.ListLen(1))
	}

	rl2 := g.ListItems(1)
	wantOrder := []stream.ElemID{1, 2, 5, 7, 8, 6, 3}
	wantScore := []float64{0.56, 0.48, 0.27, 0.18, 0.16, 0.13, 0.03}
	for i, item := range rl2 {
		if item.ID != wantOrder[i] {
			t.Errorf("RL2[%d] = e%d, want e%d", i, item.ID, wantOrder[i])
		}
		if math.Abs(item.Score-wantScore[i]) > 0.011 {
			t.Errorf("RL2[%d] score = %.4f, want %.2f", i, item.Score, wantScore[i])
		}
	}

	rl1 := g.ListItems(0)
	// e7 and e1 tie at ~0.06 (0.0563 vs 0.0565); assert the unambiguous
	// positions and the score values.
	wantScore1 := []float64{0.65, 0.48, 0.17, 0.10, 0.06, 0.06, 0.05}
	for i, item := range rl1 {
		if math.Abs(item.Score-wantScore1[i]) > 0.011 {
			t.Errorf("RL1[%d] (e%d) score = %.4f, want %.2f", i, item.ID, item.Score, wantScore1[i])
		}
	}
	for i, want := range []stream.ElemID{3, 6, 8, 2} {
		if rl1[i].ID != want {
			t.Errorf("RL1[%d] = e%d, want e%d", i, rl1[i].ID, want)
		}
	}
	if rl1[6].ID != 5 {
		t.Errorf("RL1 tail = e%d, want e5", rl1[6].ID)
	}
}

// Last-referred timestamps in the tuples (Algorithm 1: t_e updates when a
// reference arrives).
func TestRankedListLastRef(t *testing.T) {
	g := paperEngine(t)
	wantTe := map[stream.ElemID]stream.Time{
		1: 5, 2: 8, 3: 8, 5: 5, 6: 8, 7: 7, 8: 8,
	}
	for _, item := range g.ListItems(1) {
		if item.LastRef != wantTe[item.ID] {
			t.Errorf("t_e(e%d) = %d, want %d", item.ID, item.LastRef, wantTe[item.ID])
		}
	}
}

func TestIngestExpiryRemovesFromLists(t *testing.T) {
	g := paperEngine(t)
	for _, topic := range []int{0, 1} {
		for _, item := range g.ListItems(topic) {
			if item.ID == 4 {
				t.Errorf("expired e4 still in RL%d", topic+1)
			}
		}
	}
	// Drain completely: advance far beyond the window.
	if err := g.Ingest(100, nil); err != nil {
		t.Fatal(err)
	}
	if g.ListLen(0) != 0 || g.ListLen(1) != 0 {
		t.Errorf("lists not drained: %d, %d", g.ListLen(0), g.ListLen(1))
	}
	if g.NumActive() != 0 {
		t.Errorf("active = %d", g.NumActive())
	}
}

func TestIngestErrorPropagates(t *testing.T) {
	g := paperEngine(t)
	if err := g.Ingest(1, nil); err == nil {
		t.Error("backwards time accepted")
	}
}

func TestStats(t *testing.T) {
	g := paperEngine(t)
	st := g.Stats()
	if st.ElementsIngested != 8 {
		t.Errorf("ElementsIngested = %d", st.ElementsIngested)
	}
	if st.Buckets != 8 {
		t.Errorf("Buckets = %d", st.Buckets)
	}
	if st.ListUpserts == 0 {
		t.Error("no upserts recorded")
	}
	if st.UpdateTimePerElement() < 0 {
		t.Error("negative update time")
	}
	if (Stats{}).UpdateTimePerElement() != 0 {
		t.Error("zero-division guard failed")
	}
}

func TestEngineNow(t *testing.T) {
	g := paperEngine(t)
	if g.Now() != 8 {
		t.Errorf("Now = %d", g.Now())
	}
	if g.NumActive() != 7 {
		t.Errorf("NumActive = %d", g.NumActive())
	}
}
