package core

import (
	"sync"

	"github.com/social-streams/ksir/internal/rankedlist"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
)

// snapshot is one published, immutable engine state: the buffer as of a
// bucket boundary plus the scalar facts queries report. Readers pin it with
// acquire/release; the writer recycles its buffer only after a grace period
// confirms the last reader has drained (an RCU-style scheme built on a
// read-write lock).
//
// The lock never serializes queries against ingest: a query read-locks the
// snapshot current at its start, and the writer's drain barrier only ever
// write-locks a *retired* snapshot — one no new query can pin, because the
// published pointer has already moved on. The only queries a writer ever
// waits for are those started before the previous publish and still
// running.
type snapshot struct {
	buf       *buffer
	seq       int64 // bucket sequence number (== stats.Buckets at publish)
	now       stream.Time
	numActive int
	stats     Stats
	shards    []ShardStats

	// pins is read-locked by every reader of buf for the duration of the
	// read. waitDrained write-locks it once, after the snapshot is
	// unpublished, to establish that all those readers have finished.
	pins sync.RWMutex
}

func newSnapshot(b *buffer, stats Stats, shards []ShardStats) *snapshot {
	return &snapshot{
		buf:       b,
		seq:       stats.Buckets,
		now:       b.win.Now(),
		numActive: b.win.NumActive(),
		stats:     stats,
		shards:    append([]ShardStats(nil), shards...),
	}
}

// acquire pins the current published snapshot. The lock-then-validate loop
// closes the race with a concurrent publish: if the pointer moved after we
// read-locked, we pinned a retiring snapshot — drop it (we never
// dereferenced its buffer) and take the new one.
func (g *Engine) acquire() *snapshot {
	for {
		s := g.front.Load()
		s.pins.RLock()
		if g.front.Load() == s {
			obsSnapshotPins.Inc()
			return s
		}
		s.pins.RUnlock()
	}
}

// release unpins the snapshot.
func (s *snapshot) release() {
	obsSnapshotPins.Dec()
	s.pins.RUnlock()
}

// waitDrained blocks until every reader that pinned the snapshot has
// released it. Only the writer calls it, after the snapshot has been
// unpublished, before mutating its buffer; the write-lock/unlock pair is a
// pure barrier establishing the RCU grace period.
func (s *snapshot) waitDrained() {
	s.pins.Lock()
	//lint:ignore SA2001 empty critical section is the point: a barrier.
	s.pins.Unlock()
}

// ReadSnapshot pins the last published snapshot and calls fn with its
// window and scorer; the buffer cannot be recycled (and therefore cannot
// be mutated) while fn runs. It is the safe way for read-only consumers —
// explanations, metrics, baselines — to inspect window state concurrently
// with Ingest. fn must not mutate its arguments and must not retain them
// after it returns.
//
// Snapshot stability covers the per-buffer state queries read: the active
// set (Get/NumActive/ForEachActive/ActiveIDs), the reference index
// (Children/ForEachChild) and the scorer. It does NOT cover the window's
// writer-shared structures — Known, LastRef and Export read the archive
// and last-ref maps, which the twin buffers share under the default delta
// catch-up (stream.ShareWriterState) and a concurrent Ingest mutates.
// Callers needing those must serialize against Ingest, as ExportState's
// callers already do.
func (g *Engine) ReadSnapshot(fn func(win *stream.ActiveWindow, scorer *score.Scorer)) {
	snap := g.acquire()
	defer snap.release()
	fn(snap.buf.win, snap.buf.scorer)
}

// view is the read-only engine state a single query runs against: the
// pinned snapshot's window, scorer and frozen ranked lists. The query
// algorithms (Algorithms 2 and 3) are methods on view, which makes "queries
// only see published buckets" a type-level property — they cannot reach the
// writer's buffer.
type view struct {
	win       *stream.ActiveWindow
	scorer    *score.Scorer
	lists     []*rankedlist.Snapshot
	numActive int
	seq       int64
}

func (s *snapshot) view() *view {
	return &view{
		win:       s.buf.win,
		scorer:    s.buf.scorer,
		lists:     s.buf.frozen,
		numActive: s.numActive,
		seq:       s.seq,
	}
}
