package core

import (
	"github.com/social-streams/ksir/internal/rankedlist"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
)

// CatchUpMode selects how the recycled buffer catches up on the one bucket
// it missed while it was published (DESIGN.md §9).
type CatchUpMode uint8

const (
	// CatchUpDelta (the default) replays the structural delta the primary
	// application recorded: spliced ranked-list tuples, shared scorer
	// cache entries and a pre-decided window delta — no re-scoring, no
	// reference-index re-derivation, no second pass through score.Scorer.
	CatchUpDelta CatchUpMode = iota
	// CatchUpReapply re-runs the full bucket application (window advance,
	// rescoring, ranked-list maintenance) a second time. This is the
	// pre-delta architecture, kept as the baseline the `engine` experiment
	// measures the delta path against.
	CatchUpReapply
)

// shardOp is one recorded ranked-list op tagged with its topic.
type shardOp struct {
	topic int32
	op    rankedlist.Op
}

// bucketDelta is everything the primary application of one bucket recorded
// for replay onto the recycled buffer: the window's structural delta, the
// scorer-cache delta (entries shared by pointer — they are immutable), and
// the net ranked-list ops per shard. Each worker owns exactly one shard's
// slice during capture and replay, so both directions are race-free, and
// per-list op order is preserved (a list's ops all live in its shard's
// slice, in execution order).
type bucketDelta struct {
	win   *stream.Delta
	cache score.CacheDelta
	ops   [][]shardOp
}

// newBucketDelta returns a delta whose per-shard op slices are recycled
// from the previously replayed delta (writer-owned, so no locking): the
// capture path then allocates only when a bucket outgrows its
// predecessor, instead of churning ~100 bytes per ranked-list op per
// bucket through the garbage collector.
func (g *Engine) newBucketDelta() *bucketDelta {
	d := &bucketDelta{}
	if n := len(g.spentDeltas); n > 0 {
		d.ops = g.spentDeltas[n-1].ops
		g.spentDeltas[n-1] = nil
		g.spentDeltas = g.spentDeltas[:n-1]
		for s := range d.ops {
			d.ops[s] = d.ops[s][:0]
		}
	} else {
		d.ops = make([][]shardOp, g.numShards)
	}
	return d
}

// replayDelta brings the recycled buffer up to the published front by
// replaying the recorded bucket delta, in the same phase order as a
// primary application: window, scorer cache, then the ranked lists sharded
// across the worker pool. After it returns, the buffer's exported state is
// byte-identical to the front's (the §9 equivalence invariant, asserted
// under -race by TestDeltaReplayEquivalence).
func (g *Engine) replayDelta(b *buffer, d *bucketDelta) {
	b.win.ApplyDelta(d.win)
	b.scorer.ApplyCacheDelta(d.cache)
	g.replayShards(b, d.ops)
}

// replayShards applies the recorded per-shard op lists on the shard worker
// pool (runPool): each worker claims whole shards, so every list is
// written by exactly one goroutine and per-list op order is preserved.
func (g *Engine) replayShards(b *buffer, ops [][]shardOp) {
	g.runPool(func(s int) bool { return len(ops[s]) > 0 },
		func(s int) {
			for i := range ops[s] {
				b.lists[ops[s][i].topic].Apply(&ops[s][i].op)
			}
		})
}
