// Package core implements the paper's primary contribution: the k-SIR query
// engine of §4 — per-topic ranked-list maintenance over the sliding window
// (Algorithm 1) and the two real-time approximation algorithms MTTS
// (Algorithm 2, (1/2 − ε)-approximate) and MTTD (Algorithm 3,
// (1 − 1/e − ε)-approximate).
//
// The engine separates an ingest path from a read path (DESIGN.md §6): the
// writer maintains a private back buffer — window, scorer and the Z ranked
// lists partitioned into topic shards updated by a worker pool — and at the
// end of every bucket publishes an immutable snapshot through an atomic
// pointer. Queries pin the published snapshot and traverse it with zero
// locking, so they never block behind ingest and always observe exactly one
// bucket boundary.
//
// The retired buffer catches up on the bucket it missed by structural
// delta replay (DESIGN.md §9): the primary application records the net
// window, scorer-cache and ranked-list operations it performed
// (bucketDelta), and recycling replays them verbatim — no re-scoring, no
// second pass through score.Scorer — leaving the recycled buffer
// byte-identical to the published front. Config.CatchUp selects the
// legacy full re-apply instead (CatchUpReapply), kept as the measured
// baseline of the `engine` experiment.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/social-streams/ksir/internal/rankedlist"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Config configures an Engine.
type Config struct {
	// Model is the trained topic model used as the scoring oracle.
	Model *topicmodel.Model
	// WindowLength is T, the sliding-window length in stream time units.
	WindowLength stream.Time
	// Params are the scoring trade-offs λ and η.
	Params score.Params
	// Shards is the number of topic shards P the ranked lists are
	// partitioned into for parallel maintenance; topic i belongs to shard
	// i mod P. 0 picks min(GOMAXPROCS, Z). Results are independent of P.
	Shards int
	// CatchUp selects how the recycled buffer catches up on the bucket it
	// missed: CatchUpDelta (default) replays the recorded structural
	// delta; CatchUpReapply re-applies the bucket in full (the pre-delta
	// baseline, kept for the `engine` experiment). Results are identical
	// under either mode.
	CatchUp CatchUpMode
	// EagerRestore forces Restore to materialize both buffers before it
	// returns — the pre-lazy baseline, kept for the equivalence tests. By
	// default Restore builds only the front (query-serving) buffer and
	// defers the back buffer to the first write or an explicit
	// MaterializeBack call, roughly halving restore cost on the
	// activation critical path. Results are identical either way.
	EagerRestore bool
}

// Stats aggregates maintenance counters for the scalability experiments
// (Figure 14 reports update time per arriving element).
type Stats struct {
	ElementsIngested int64
	Buckets          int64
	// UpdateTime is the wall time spent applying buckets to the back
	// buffer: window advance, rescoring, and ranked-list maintenance,
	// counted once per bucket. This is the paper's Figure-14 cost; the
	// catch-up on the recycled buffer is counted separately in ReplayTime,
	// and the wait for readers to drain (reader latency, not maintenance)
	// is counted nowhere.
	UpdateTime time.Duration
	// ReplayTime is the wall time spent bringing recycled buffers up to
	// the published front: delta replay under CatchUpDelta, a full second
	// application under CatchUpReapply. It lags UpdateTime by one bucket
	// (a bucket's catch-up runs at the start of the next Ingest).
	ReplayTime  time.Duration
	ListUpserts int64
	ListDeletes int64
}

// UpdateTimePerElement returns the average primary maintenance time per
// arriving element (the Figure 14 metric).
func (s Stats) UpdateTimePerElement() time.Duration {
	if s.ElementsIngested == 0 {
		return 0
	}
	return s.UpdateTime / time.Duration(s.ElementsIngested)
}

// MaintenanceTimePerElement returns the average total maintenance time per
// arriving element — primary application plus recycled-buffer catch-up —
// the honest end-to-end cost of keeping both buffers current, and the
// metric the `engine` experiment compares across CatchUp modes.
func (s Stats) MaintenanceTimePerElement() time.Duration {
	if s.ElementsIngested == 0 {
		return 0
	}
	return (s.UpdateTime + s.ReplayTime) / time.Duration(s.ElementsIngested)
}

// ShardStats counts the ranked-list maintenance done by one topic shard;
// the per-shard counters roll up to the Stats list totals.
type ShardStats struct {
	Shard       int
	Topics      int // number of ranked lists owned by this shard
	ListUpserts int64
	ListDeletes int64
	Busy        time.Duration // wall time this shard's worker spent applying ops
}

// buffer is one complete copy of the mutable engine state. The engine keeps
// two: the published one backs the read path, the other is the writer's
// working copy (DESIGN.md §6).
type buffer struct {
	win    *stream.ActiveWindow
	scorer *score.Scorer
	lists  []*rankedlist.List
	frozen []*rankedlist.Snapshot // set while this buffer is published
}

func newBuffer(cfg Config) (*buffer, error) {
	win := stream.NewActiveWindow(cfg.WindowLength)
	scorer, err := score.NewScorer(cfg.Model, win, cfg.Params)
	if err != nil {
		return nil, err
	}
	lists := make([]*rankedlist.List, cfg.Model.Z)
	for i := range lists {
		lists[i] = rankedlist.New()
	}
	return &buffer{win: win, scorer: scorer, lists: lists}, nil
}

// freeze publishes the buffer's lists as immutable snapshots.
func (b *buffer) freeze() {
	b.frozen = make([]*rankedlist.Snapshot, len(b.lists))
	for i, l := range b.lists {
		b.frozen[i] = l.Freeze()
	}
}

// thaw releases the snapshots for in-place mutation again. Only legal once
// every reader pinning this buffer's engine snapshot has released it.
func (b *buffer) thaw() {
	for _, l := range b.lists {
		l.Thaw()
	}
	b.frozen = nil
}

// pendingBucket is the last bucket applied to the published buffer but not
// yet replayed onto the recycled one. Under CatchUpDelta it carries the
// recorded structural delta; under CatchUpReapply delta is nil and the raw
// bucket is re-applied in full.
type pendingBucket struct {
	now   stream.Time
	batch []*stream.Element
	delta *bucketDelta
}

// Engine is the k-SIR query processor (Figure 4). Ingest is serialized (one
// writer); queries may run concurrently with each other and with Ingest —
// each query pins the engine snapshot published at the last bucket boundary
// and never blocks behind the writer.
type Engine struct {
	cfg       Config
	numShards int

	mu    sync.Mutex // serializes Ingest (the writer side)
	front atomic.Pointer[snapshot]

	// Writer-owned state (guarded by mu):
	back     *buffer   // working copy; nil after a lazy Restore until materialized
	backSnap *snapshot // retired snapshot whose buffer is back; drained before reuse
	// lazy is the retained restore state of an unmaterialized back buffer
	// (non-nil exactly while back is nil). It is safe to rebuild from
	// later because materialization always runs before the first
	// post-restore bucket application — the published front is still
	// byte-identical to the state the buffer is rebuilt from.
	lazy *State
	// matStart/matDur hand the ingest-path materialization timing to the
	// hub's commit path for span attribution (TakeMaterialize). Written
	// only under mu on the ingest path; an explicit MaterializeBack (the
	// background path) leaves them untouched — its caller owns the timing.
	matStart time.Time
	matDur   time.Duration
	// replayQ holds the buckets applied to the published buffer but not
	// yet replayed onto back — exactly one outside a deferred-publish
	// batch, up to the whole batch inside one.
	replayQ []*pendingBucket
	// unpublished holds buckets already applied to back but not yet
	// visible to readers (non-empty only between BeginBatch and the
	// publish in EndBatch).
	unpublished []*pendingBucket
	batching    bool           // inside a BeginBatch/EndBatch bracket
	spentDeltas []*bucketDelta // replayed deltas, recycled by newBucketDelta
	stats       Stats
	shardStats  []ShardStats
}

// NewEngine validates the configuration and returns an empty engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: config needs a topic model")
	}
	if cfg.WindowLength <= 0 {
		return nil, fmt.Errorf("core: window length must be positive, got %d", cfg.WindowLength)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: shard count must be non-negative, got %d", cfg.Shards)
	}
	p := cfg.Shards
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > cfg.Model.Z {
		p = cfg.Model.Z
	}
	if p < 1 {
		p = 1
	}
	a, err := newBuffer(cfg)
	if err != nil {
		return nil, err
	}
	b, err := newBuffer(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.CatchUp == CatchUpDelta {
		// The twin windows advance in lockstep (primary apply on one,
		// delta replay on the other), so the writer-path-only structures —
		// archive, last-ref times, expiry heap — exist once and replay
		// skips maintaining them. CatchUpReapply re-runs the full Advance
		// on the second buffer, which must own all of its state.
		stream.ShareWriterState(a.win, b.win)
	}
	g := &Engine{cfg: cfg, numShards: p, back: b}
	g.shardStats = make([]ShardStats, p)
	for s := range g.shardStats {
		g.shardStats[s].Shard = s
		g.shardStats[s].Topics = (cfg.Model.Z - s + p - 1) / p
	}
	a.freeze()
	g.front.Store(newSnapshot(a, g.stats, g.shardStats))
	return g, nil
}

// NumShards returns P, the number of topic shards.
func (g *Engine) NumShards() int { return g.numShards }

// Window exposes the published window for read-only use by baselines and
// metrics. Callers must not mutate it, and must not retain it across more
// than one subsequent Ingest (the buffer behind it is recycled). The
// snapshot-stability caveat of ReadSnapshot applies: Known, LastRef and
// Export read writer-shared structures and must be serialized against
// Ingest.
func (g *Engine) Window() *stream.ActiveWindow { return g.front.Load().buf.win }

// Scorer exposes the published buffer's scorer for baselines that evaluate
// the same objective. The retention rule of Window applies.
func (g *Engine) Scorer() *score.Scorer { return g.front.Load().buf.scorer }

// NumActive returns n_t as of the last published bucket.
func (g *Engine) NumActive() int { return g.front.Load().numActive }

// Now returns the current stream time as of the last published bucket.
func (g *Engine) Now() stream.Time { return g.front.Load().now }

// Stats returns the maintenance counters as of the last published bucket.
func (g *Engine) Stats() Stats { return g.front.Load().stats }

// ShardStats returns the per-shard maintenance counters as of the last
// published bucket; summing the list counters over shards reproduces the
// Stats totals.
func (g *Engine) ShardStats() []ShardStats {
	return append([]ShardStats(nil), g.front.Load().shards...)
}

// Ingest advances the window to now with one bucket of elements and
// maintains the ranked lists (Algorithm 1): new elements are inserted into
// the lists of every topic they have mass on; parents gaining references are
// rescored and repositioned; expired elements are deleted. The work is
// applied to the private back buffer — sharded across topics and executed
// by a worker pool — and published atomically at the end, so concurrent
// queries keep reading the previous bucket's snapshot until this one is
// complete, then switch to it.
func (g *Engine) Ingest(now stream.Time, batch []*stream.Element) error {
	g.mu.Lock()
	defer g.mu.Unlock()

	if err := g.validate(now, batch); err != nil {
		return err
	}
	// Inside a deferred-publish batch the back buffer is already current
	// after the first bucket (nothing was published, so there is nothing
	// to catch up on); recycling again would double-apply the replay queue.
	if len(g.unpublished) == 0 {
		if err := g.recycle(); err != nil {
			return err
		}
	}

	// The timer starts here so UpdateTime measures one application of the
	// bucket — the paper's Figure-14 maintenance cost — and is not
	// inflated by the drain wait (reader latency, not maintenance) or the
	// catch-up above (counted in ReplayTime).
	start := time.Now()
	var rec *bucketDelta
	if g.cfg.CatchUp == CatchUpDelta {
		rec = g.newBucketDelta()
	}
	if err := g.applyBucket(g.back, now, batch, true, rec); err != nil {
		return err
	}
	elapsed := time.Since(start)
	g.stats.ElementsIngested += int64(len(batch))
	g.stats.Buckets++
	g.stats.UpdateTime += elapsed
	obsElements.Add(uint64(len(batch)))
	obsBuckets.Inc()
	obsUpdateTime.AddDuration(elapsed)
	g.unpublished = append(g.unpublished, &pendingBucket{now: now, batch: batch, delta: rec})
	if g.batching {
		// Deferred publish: the bucket is applied to the back buffer but
		// readers keep the pre-batch snapshot until EndBatch publishes
		// once for the whole commit batch.
		return nil
	}
	g.publish()
	// A bucket boundary is the natural scheduling point of the whole
	// design: the new snapshot is out, so let queries that arrived during
	// the bucket observe it now instead of waiting out a saturating
	// writer's preemption slice (this matters most at GOMAXPROCS=1).
	runtime.Gosched()
	return nil
}

// BeginBatch opens a deferred-publish bracket: buckets ingested until
// EndBatch are applied to the writer's buffer without publishing a
// snapshot, so a commit batch that crosses several bucket boundaries costs
// one freeze/swap/drain cycle instead of one per bucket. Readers keep the
// pre-batch snapshot for the duration (legal under the snapshot-visibility
// contract — they observe a slightly older published bucket).
//
// The bracket requires CatchUpDelta (the default): duplicate detection
// during the batch reads the writer-shared archive, which only the delta
// mode shares between the twin windows. Under CatchUpReapply BeginBatch is
// a no-op and every bucket publishes as usual. Writer-side only, like
// Ingest.
func (g *Engine) BeginBatch() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cfg.CatchUp != CatchUpDelta {
		return
	}
	g.batching = true
}

// EndBatch closes the deferred-publish bracket, publishing the buckets
// ingested since BeginBatch as one snapshot (a no-op when none were).
func (g *Engine) EndBatch() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.batching = false
	if len(g.unpublished) > 0 {
		g.publish()
		runtime.Gosched()
	}
}

// WriterResidentBytes approximates the heap bytes pinned by the engine's
// window state — archived element payloads plus flat per-element
// bookkeeping overhead (see stream.ActiveWindow.ApproxBytes). Under the
// default CatchUpDelta the twin windows share one archive and the shared
// copy is counted once; under CatchUpReapply the returned figure is one
// buffer's copy (the element values themselves are shared between buffers
// either way). It feeds the hub's residency accounting from the commit
// path and is never part of exported state. Takes the writer lock: the
// back buffer pointer can be swapped in by the background materializer
// after a lazy restore, concurrently with the commit path.
func (g *Engine) WriterResidentBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.back == nil {
		// Lazily restored and not yet written to: the front window owns
		// all window state (sharing only begins at materialization).
		return g.front.Load().buf.win.ApproxBytes()
	}
	return g.back.win.ApproxBytes()
}

// WriterNow returns the stream time as the writer sees it: the last
// applied bucket boundary, including buckets deferred inside an open
// BeginBatch bracket that readers cannot observe yet. Equal to Now outside
// a bracket. Writer-side only, like Ingest.
func (g *Engine) WriterNow() stream.Time {
	if n := len(g.unpublished); n > 0 {
		return g.unpublished[n-1].now
	}
	return g.front.Load().now
}

// recycle readies the back buffer for the next bucket: wait until the
// readers that pinned its retired snapshot have drained, thaw it, and
// catch it up on the buckets it missed while published — by structural
// delta replay (CatchUpDelta, no re-scoring) or by re-applying each bucket
// in full (CatchUpReapply). Outside a deferred-publish batch the queue
// holds exactly one bucket; after one it holds the whole batch, replayed
// in ingest order.
func (g *Engine) recycle() error {
	if g.back == nil {
		// Lazy restore: the back buffer was deferred off the activation
		// critical path and this is the first write since. No bucket has
		// been applied yet (any earlier Ingest would have materialized),
		// so the replay queue is empty and the front still equals the
		// restored state the buffer is rebuilt from.
		return g.materializeBack(true)
	}
	if g.backSnap != nil {
		g.backSnap.waitDrained()
		g.backSnap = nil
	}
	g.back.thaw()
	if len(g.replayQ) == 0 {
		return nil
	}
	q := g.replayQ
	g.replayQ = nil
	start := time.Now()
	for _, p := range q {
		if p.delta != nil {
			g.replayDelta(g.back, p.delta)
			// Recycle the ops slices into the next capture; drop the window
			// and cache parts so their element references can be collected.
			p.delta.win, p.delta.cache = nil, score.CacheDelta{}
			g.spentDeltas = append(g.spentDeltas, p.delta)
		} else if err := g.applyBucket(g.back, p.now, p.batch, false, nil); err != nil {
			return fmt.Errorf("core: replaying bucket on recycled buffer: %w", err)
		}
	}
	elapsed := time.Since(start)
	g.stats.ReplayTime += elapsed
	obsReplayTime.AddDuration(elapsed)
	return nil
}

// validate rejects a bad bucket before either buffer is touched, so the two
// copies can never diverge on an error path. Inside a deferred-publish
// batch the published front lags the writer, so ordering is checked
// against the last applied (possibly unpublished) bucket, and duplicate
// detection against the back window — whose archive, shared under
// CatchUpDelta (the only mode that defers), covers every ingested element.
func (g *Engine) validate(now stream.Time, batch []*stream.Element) error {
	prevNow := g.front.Load().now
	win := g.front.Load().buf.win
	if n := len(g.unpublished); n > 0 {
		prevNow = g.unpublished[n-1].now
		win = g.back.win
	}
	if now < prevNow {
		return fmt.Errorf("core: time moved backwards %d → %d", prevNow, now)
	}
	ids := make(map[stream.ElemID]struct{}, len(batch))
	for _, e := range batch {
		if e.TS <= prevNow || e.TS > now {
			return fmt.Errorf("core: element %d at %d outside bucket (%d, %d]", e.ID, e.TS, prevNow, now)
		}
		if _, dup := ids[e.ID]; dup || win.Known(e.ID) {
			return fmt.Errorf("core: duplicate element ID %d", e.ID)
		}
		ids[e.ID] = struct{}{}
	}
	return nil
}

// applyBucket advances one buffer's window by one bucket and maintains its
// ranked lists, sharded across topics. With rec non-nil the structural
// outcome — window delta, cache delta, net list ops — is recorded into it
// for later replay onto the other buffer. With primary=false the same
// bucket is being re-applied onto the recycled buffer (CatchUpReapply) and
// the counters are not recounted.
func (g *Engine) applyBucket(b *buffer, now stream.Time, batch []*stream.Element, primary bool, rec *bucketDelta) error {
	var cs stream.ChangeSet
	var err error
	if rec != nil {
		cs, rec.win, err = b.win.AdvanceRecorded(now, batch)
	} else {
		cs, err = b.win.Advance(now, batch)
	}
	if err != nil {
		return err
	}
	// OnChange caches every inserted element's word weights and drops the
	// expired ones. After this point the shard workers only read the
	// scorer and window; all their writes go to disjoint shard lists.
	if rec != nil {
		rec.cache = b.scorer.OnChangeRecorded(cs)
	} else {
		b.scorer.OnChange(cs)
	}
	ops := g.partition(b, cs)
	g.runShards(b, ops, primary, rec)
	if primary {
		// Roll the per-shard counters up into the engine totals.
		var ups, dels int64
		for s := range g.shardStats {
			ups += g.shardStats[s].ListUpserts
			dels += g.shardStats[s].ListDeletes
		}
		g.stats.ListUpserts = ups
		g.stats.ListDeletes = dels
	}
	return nil
}

// publish freezes the back buffer into an immutable snapshot, swaps it in as
// the read path, and retires the old snapshot; its buffer becomes the next
// back buffer once readers drain, with the unpublished buckets (and their
// recorded deltas, under CatchUpDelta) queued for replay.
func (g *Engine) publish() {
	b := g.back
	b.freeze()
	snap := newSnapshot(b, g.stats, g.shardStats)
	old := g.front.Swap(snap)
	g.backSnap = old
	g.back = old.buf
	g.replayQ = g.unpublished
	g.unpublished = nil
}

// materializeBack builds the deferred back buffer from the retained
// restore state. Caller holds mu. Correctness rests on one invariant: no
// bucket has been applied since Restore (back is nil exactly until the
// first recycle or MaterializeBack, and both run before any post-restore
// applyBucket), so the published front is still byte-identical to the
// retained State — rebuilding from it, adopting the front scorer's
// immutable cache entries, and sharing the front window's writer state
// yields exactly the buffer an eager Restore would have built. With
// record set the timing is parked for TakeMaterialize (the ingest path);
// the explicit path reports its own timing and leaves the handoff alone.
func (g *Engine) materializeBack(record bool) error {
	start := time.Now()
	front := g.front.Load().buf
	back, err := restoreBuffer(g.cfg, *g.lazy, front.scorer)
	if err != nil {
		return fmt.Errorf("core: materializing back buffer: %w", err)
	}
	if g.cfg.CatchUp == CatchUpDelta {
		stream.ShareWriterState(front.win, back.win) // see NewEngine
	}
	g.back = back
	g.lazy = nil // free the retained window/list state
	if record {
		g.matStart, g.matDur = start, time.Since(start)
	}
	return nil
}

// MaterializeBack builds a lazily deferred back buffer now, off the write
// path — the hub's background materializer calls it right after a lazy
// activation returns, so the first write usually finds the buffer already
// built. It reports whether it did the work (false when the buffer exists
// — already materialized by a write, or an eager restore) and how long
// the build took. Safe to call concurrently with Ingest and queries; a
// write racing it simply loses the mu race and finds back non-nil.
func (g *Engine) MaterializeBack() (bool, time.Duration, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.back != nil {
		return false, 0, nil
	}
	start := time.Now()
	if err := g.materializeBack(false); err != nil {
		return false, 0, err
	}
	return true, time.Since(start), nil
}

// BackMaterialized reports whether the back buffer currently exists (it
// does not on a lazily restored engine until the first write or an
// explicit MaterializeBack). Diagnostic; races with a concurrent write's
// materialization benignly.
func (g *Engine) BackMaterialized() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.back != nil
}

// TakeMaterialize returns and clears the timing of an ingest-path back
// buffer materialization (zero when none happened since the last call).
// The hub's commit path polls it after each apply pass to attribute a
// backbuffer.materialize span to the op that paid the build.
func (g *Engine) TakeMaterialize() (time.Time, time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	start, dur := g.matStart, g.matDur
	g.matStart, g.matDur = time.Time{}, 0
	return start, dur
}

// ListLen returns the size of RL_i as of the last published bucket (for
// tests and diagnostics). Safe to call concurrently with Ingest: it pins
// the snapshot like a query does.
func (g *Engine) ListLen(topic int) int {
	snap := g.acquire()
	defer snap.release()
	return snap.buf.frozen[topic].Len()
}

// ListItems returns RL_i's tuples in ranked order as of the last published
// bucket (for tests/diagnostics). Safe to call concurrently with Ingest.
func (g *Engine) ListItems(topic int) []rankedlist.Item {
	snap := g.acquire()
	defer snap.release()
	return snap.buf.frozen[topic].Items()
}
