// Package core implements the paper's primary contribution: the k-SIR query
// engine of §4 — per-topic ranked-list maintenance over the sliding window
// (Algorithm 1) and the two real-time approximation algorithms MTTS
// (Algorithm 2, (1/2 − ε)-approximate) and MTTD (Algorithm 3,
// (1 − 1/e − ε)-approximate).
package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/social-streams/ksir/internal/rankedlist"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Config configures an Engine.
type Config struct {
	// Model is the trained topic model used as the scoring oracle.
	Model *topicmodel.Model
	// WindowLength is T, the sliding-window length in stream time units.
	WindowLength stream.Time
	// Params are the scoring trade-offs λ and η.
	Params score.Params
}

// Stats aggregates maintenance counters for the scalability experiments
// (Figure 14 reports update time per arriving element).
type Stats struct {
	ElementsIngested int64
	Buckets          int64
	UpdateTime       time.Duration // total wall time spent in Ingest
	ListUpserts      int64
	ListDeletes      int64
}

// UpdateTimePerElement returns the average maintenance time per arriving
// element (the Figure 14 metric).
func (s Stats) UpdateTimePerElement() time.Duration {
	if s.ElementsIngested == 0 {
		return 0
	}
	return s.UpdateTime / time.Duration(s.ElementsIngested)
}

// Engine is the k-SIR query processor (Figure 4): it owns the active window,
// one ranked list per topic, and the scorer. Ingest is serialized; queries
// may run concurrently with each other between ingests.
type Engine struct {
	mu     sync.RWMutex
	cfg    Config
	win    *stream.ActiveWindow
	scorer *score.Scorer
	lists  []*rankedlist.List
	stats  Stats
}

// NewEngine validates the configuration and returns an empty engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: config needs a topic model")
	}
	if cfg.WindowLength <= 0 {
		return nil, fmt.Errorf("core: window length must be positive, got %d", cfg.WindowLength)
	}
	win := stream.NewActiveWindow(cfg.WindowLength)
	scorer, err := score.NewScorer(cfg.Model, win, cfg.Params)
	if err != nil {
		return nil, err
	}
	lists := make([]*rankedlist.List, cfg.Model.Z)
	for i := range lists {
		lists[i] = rankedlist.New()
	}
	return &Engine{cfg: cfg, win: win, scorer: scorer, lists: lists}, nil
}

// Window exposes the active window for read-only use by baselines and
// metrics. Callers must not mutate it.
func (g *Engine) Window() *stream.ActiveWindow { return g.win }

// Scorer exposes the scorer for baselines that evaluate the same objective.
func (g *Engine) Scorer() *score.Scorer { return g.scorer }

// NumActive returns n_t.
func (g *Engine) NumActive() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.win.NumActive()
}

// Now returns the current stream time.
func (g *Engine) Now() stream.Time {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.win.Now()
}

// Stats returns a copy of the maintenance counters.
func (g *Engine) Stats() Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.stats
}

// Ingest advances the window to now with one bucket of elements and
// maintains the ranked lists (Algorithm 1): new elements are inserted into
// the lists of every topic they have mass on; parents gaining references are
// rescored and repositioned; expired elements are deleted.
func (g *Engine) Ingest(now stream.Time, batch []*stream.Element) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	start := time.Now()

	cs, err := g.win.Advance(now, batch)
	if err != nil {
		return err
	}
	g.scorer.OnChange(cs)

	// Expired first: an element can expire in the same advance it was
	// (re-)inserted only if it entered already out of window, in which case
	// it must not linger in the lists.
	for _, e := range cs.Expired {
		for _, topic := range e.Topics.Topics {
			if g.lists[topic].Delete(e.ID) {
				g.stats.ListDeletes++
			}
		}
	}
	expired := make(map[stream.ElemID]struct{}, len(cs.Expired))
	for _, e := range cs.Expired {
		expired[e.ID] = struct{}{}
	}
	for _, e := range cs.Inserted {
		if _, gone := expired[e.ID]; gone {
			continue
		}
		g.upsert(e)
	}
	for _, e := range cs.Updated {
		if _, gone := expired[e.ID]; gone {
			continue
		}
		g.upsert(e)
	}

	g.stats.ElementsIngested += int64(len(batch))
	g.stats.Buckets++
	g.stats.UpdateTime += time.Since(start)
	return nil
}

// upsert recomputes δ_i(e) on every topic of e and repositions its tuples.
func (g *Engine) upsert(e *stream.Element) {
	te, _ := g.win.LastRef(e.ID)
	for _, topic := range e.Topics.Topics {
		g.lists[topic].Upsert(e.ID, g.scorer.TopicScore(e, topic), te)
		g.stats.ListUpserts++
	}
}

// ListLen returns the size of RL_i (for tests and diagnostics).
func (g *Engine) ListLen(topic int) int { return g.lists[topic].Len() }

// ListItems returns RL_i's tuples in ranked order (for tests/diagnostics).
func (g *Engine) ListItems(topic int) []rankedlist.Item { return g.lists[topic].Items() }
