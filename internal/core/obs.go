package core

import (
	"github.com/social-streams/ksir/internal/metrics"
)

// Engine observability (DESIGN.md §12). All instruments are process-global
// aggregates over every engine in the process; per-stream breakdowns come
// from scrape-time collectors over StreamStats, not from hot-path labels.
var (
	obsElements = metrics.NewCounter("ksir_engine_elements_ingested_total",
		"Stream elements applied to engine back buffers.")
	obsBuckets = metrics.NewCounter("ksir_engine_buckets_total",
		"Bucket boundaries applied (window advances).")
	obsUpdateTime = metrics.NewDurationCounter("ksir_engine_update_seconds_total",
		"Wall time spent in primary bucket application (the Figure-14 maintenance cost).")
	obsReplayTime = metrics.NewDurationCounter("ksir_engine_replay_seconds_total",
		"Wall time spent catching recycled buffers up (delta replay or full re-apply).")
	obsQueryDuration = metrics.NewDurationHistogramVec("ksir_engine_query_duration_seconds",
		"k-SIR query latency (snapshot pin to result) by algorithm.",
		"algorithm", []string{MTTS.String(), MTTD.String(), TopkRep.String()},
		metrics.DefBuckets...)
	obsSnapshotPins = metrics.NewGauge("ksir_engine_snapshot_pins",
		"Readers currently pinning a published engine snapshot.")

	// obsQueryByAlg pre-resolves the vec children so the query path indexes
	// an array instead of hashing a label string per query.
	obsQueryByAlg = [...]*metrics.Histogram{
		MTTS:    obsQueryDuration.With(MTTS.String()),
		MTTD:    obsQueryDuration.With(MTTD.String()),
		TopkRep: obsQueryDuration.With(TopkRep.String()),
	}
)
