package core

import (
	"github.com/social-streams/ksir/internal/rankedlist"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// traversal implements the ranked-list traversal of §4.1: it walks the lists
// of every topic the query has mass on, in decreasing order of topic-wise
// score, yielding each element at most once (visited marking) and exposing
// the upper-bound score UB(x) = Σ_i x_i·δ_i(e^(i)) of all unvisited
// elements.
//
// The list tuples hold δ values that are exact except for influence lost to
// children that expired after the last rescore; those stale values can only
// overestimate, so UB(x) remains a valid upper bound (which is all the
// algorithms need) while per-element evaluation always recomputes the exact
// current score.
type traversal struct {
	win     *stream.ActiveWindow
	topics  []int32   // query topics with x_i > 0
	weights []float64 // corresponding x_i
	iters   []*rankedlist.Iterator
	cur     []rankedlist.Item
	has     []bool
	visited map[stream.ElemID]struct{}
	// markVisited enables cross-list deduplication (§4.1); the ablation
	// benches disable it to measure what it buys.
	markVisited bool
	// retrieved counts tuples pulled off the lists (Fig 10 bookkeeping).
	retrieved int
}

// newTraversal positions a traversal over the engine's current published
// snapshot (tests and diagnostics only — queries go through Engine.Query,
// which pins the snapshot for the traversal's lifetime).
func newTraversal(g *Engine, x topicmodel.TopicVec) *traversal {
	return newTraversalOpt(g.front.Load().view(), x, true)
}

// newTraversalOpt positions a traversal at the head of each relevant list of
// one immutable snapshot view (the RL_i.first calls of Algorithms 2 and 3,
// line 2).
func newTraversalOpt(v *view, x topicmodel.TopicVec, markVisited bool) *traversal {
	tr := &traversal{
		win:         v.win,
		visited:     make(map[stream.ElemID]struct{}),
		markVisited: markVisited,
	}
	for i, topic := range x.Topics {
		if x.Probs[i] <= 0 {
			continue
		}
		it := v.lists[topic].Iter()
		tr.topics = append(tr.topics, topic)
		tr.weights = append(tr.weights, x.Probs[i])
		tr.iters = append(tr.iters, it)
		tr.cur = append(tr.cur, rankedlist.Item{})
		tr.has = append(tr.has, false)
	}
	for i := range tr.iters {
		tr.advance(i)
	}
	return tr
}

// advance moves list i's cursor to its next unvisited tuple.
func (tr *traversal) advance(i int) {
	for {
		item, ok := tr.iters[i].Next()
		if !ok {
			tr.has[i] = false
			return
		}
		tr.retrieved++
		if _, seen := tr.visited[item.ID]; seen {
			continue
		}
		tr.cur[i] = item
		tr.has[i] = true
		return
	}
}

// skipVisited re-validates all cursors after new visited marks.
func (tr *traversal) skipVisited() {
	for i := range tr.cur {
		if !tr.has[i] {
			continue
		}
		if _, seen := tr.visited[tr.cur[i].ID]; seen {
			tr.advance(i)
		}
	}
}

// ub returns UB(x), the upper bound on δ(e, x) of any unvisited element.
// It is 0 when every list is exhausted.
func (tr *traversal) ub() float64 {
	tr.skipVisited()
	var s float64
	for i := range tr.cur {
		if tr.has[i] {
			s += tr.weights[i] * tr.cur[i].Score
		}
	}
	return s
}

// exhausted reports whether all lists have run out of unvisited tuples.
func (tr *traversal) exhausted() bool {
	tr.skipVisited()
	for i := range tr.has {
		if tr.has[i] {
			return false
		}
	}
	return true
}

// pop removes and returns the element e^(i*) with the maximum
// x_i·δ_i(e^(i)) across the cursors, marking it visited everywhere
// (Algorithm 2 line 5 / Algorithm 3 line 16).
func (tr *traversal) pop() (*stream.Element, bool) {
	tr.skipVisited()
	best := -1
	var bestVal float64
	for i := range tr.cur {
		if !tr.has[i] {
			continue
		}
		if v := tr.weights[i] * tr.cur[i].Score; best == -1 || v > bestVal {
			best, bestVal = i, v
		}
	}
	if best == -1 {
		return nil, false
	}
	id := tr.cur[best].ID
	if tr.markVisited {
		tr.visited[id] = struct{}{}
	}
	tr.advance(best)
	e, ok := tr.win.Get(id)
	if !ok {
		// The snapshot's lists never hold inactive elements (both are
		// frozen at the same bucket boundary); treat a miss as exhaustion
		// of this tuple.
		return tr.pop()
	}
	return e, true
}
