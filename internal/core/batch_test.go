package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/social-streams/ksir/internal/testutil"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// TestDeferredPublishBatchEquivalence is the correctness bar of the
// writer-pipeline's apply bracket: a BeginBatch/EndBatch bracket over a
// multi-bucket run publishes exactly one snapshot (readers keep the
// pre-batch bucket until EndBatch), the published state is byte-identical
// to an unbracketed twin's, and the multi-bucket replay queue leaves the
// recycled buffer byte-identical to the front — so deferring publication
// changes cost, never semantics.
func TestDeferredPublishBatchEquivalence(t *testing.T) {
	seeds := int64(3)
	if testing.Short() {
		seeds = 1
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		const z, v, windowT = 10, 80, 40
		model := testutil.RandModel(rng, z, v)
		mk := func() *Engine {
			g, err := NewEngine(Config{Model: model, WindowLength: windowT, Params: paperConfig().Params})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
		gBatch, gPlain := mk(), mk()

		buckets := randomDeltaStream(rng, z, v, 48, windowT)
		for i := 0; i < len(buckets); {
			k := 1 + rng.Intn(4) // bracket size, mixing singles and groups
			if i+k > len(buckets) {
				k = len(buckets) - i
			}
			seqBefore := gBatch.front.Load().seq
			if k > 1 {
				gBatch.BeginBatch()
			}
			for j := 0; j < k; j++ {
				b := buckets[i+j]
				if err := gBatch.Ingest(b.now, cloneBatch(b.batch)); err != nil {
					t.Fatalf("seed %d bucket %d (batch): %v", seed, i+j, err)
				}
				if err := gPlain.Ingest(b.now, cloneBatch(b.batch)); err != nil {
					t.Fatalf("seed %d bucket %d (plain): %v", seed, i+j, err)
				}
				if k > 1 && j < k-1 {
					// Mid-bracket: nothing published, but the writer-side
					// clock has advanced to the applied bucket.
					if got := gBatch.front.Load().seq; got != seqBefore {
						t.Fatalf("seed %d bucket %d: published mid-bracket (seq %d → %d)", seed, i+j, seqBefore, got)
					}
					if got := gBatch.WriterNow(); got != b.now {
						t.Fatalf("seed %d bucket %d: WriterNow = %d, want %d", seed, i+j, got, b.now)
					}
				}
			}
			if k > 1 {
				gBatch.EndBatch()
			}
			if got := gBatch.front.Load().seq; got != seqBefore+int64(k) {
				t.Fatalf("seed %d: after bracket of %d, seq = %d, want %d", seed, k, got, seqBefore+int64(k))
			}

			// Published states identical across bracketing choices.
			bSt, pSt := stateOf(gBatch.front.Load().buf), stateOf(gPlain.front.Load().buf)
			if !reflect.DeepEqual(bSt, pSt) {
				t.Fatalf("seed %d bucket %d: bracketed and plain engines diverge", seed, i)
			}
			if i%7 == 0 && !bytes.Equal(gobBytes(t, bSt), gobBytes(t, pSt)) {
				t.Fatalf("seed %d bucket %d: bracketed state not byte-identical to plain", seed, i)
			}

			// The multi-bucket replay queue must bring the recycled buffer
			// to exactly the published front.
			gBatch.mu.Lock()
			if err := gBatch.recycle(); err != nil {
				gBatch.mu.Unlock()
				t.Fatalf("seed %d bucket %d: recycle: %v", seed, i, err)
			}
			back, front := stateOf(gBatch.back), stateOf(gBatch.front.Load().buf)
			if !reflect.DeepEqual(back, front) {
				gBatch.mu.Unlock()
				t.Fatalf("seed %d bucket %d: recycled buffer diverges from front after %d-bucket replay", seed, i, k)
			}
			gBatch.mu.Unlock()
			i += k
		}

		// Identical query answers, bit-exact scores included.
		for _, x := range []topicmodel.TopicVec{
			{Topics: []int32{0}, Probs: []float64{1}},
			{Topics: []int32{2, 7}, Probs: []float64{0.6, 0.4}},
		} {
			for _, alg := range []Algorithm{MTTS, MTTD, TopkRep} {
				rb, err := gBatch.Query(Query{K: 5, X: x, Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				rp, err := gPlain.Query(Query{K: 5, X: x, Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rb, rp) {
					t.Fatalf("seed %d: query diverges under alg %v:\n got %+v\nwant %+v", seed, alg, rb, rp)
				}
			}
		}
	}
}

// An empty bracket, and a bracket under CatchUpReapply (which does not
// share writer state between the twin windows), must both degrade to
// plain per-bucket publication rather than corrupt state.
func TestBatchBracketEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const z, v, windowT = 6, 40, 30
	model := testutil.RandModel(rng, z, v)
	g, err := NewEngine(Config{Model: model, WindowLength: windowT, Params: paperConfig().Params, CatchUp: CatchUpReapply})
	if err != nil {
		t.Fatal(err)
	}
	// Reapply mode: BeginBatch is a no-op, every Ingest publishes.
	g.BeginBatch()
	buckets := randomDeltaStream(rng, z, v, 10, windowT)
	for i, b := range buckets {
		if err := g.Ingest(b.now, cloneBatch(b.batch)); err != nil {
			t.Fatal(err)
		}
		if got := g.front.Load().seq; got != int64(i+1) {
			t.Fatalf("reapply bracket deferred publication: seq %d after %d buckets", got, i+1)
		}
	}
	g.EndBatch()

	// Empty bracket on a delta engine: publishes nothing, breaks nothing.
	gd, err := NewEngine(Config{Model: model, WindowLength: windowT, Params: paperConfig().Params})
	if err != nil {
		t.Fatal(err)
	}
	gd.BeginBatch()
	gd.EndBatch()
	if got := gd.front.Load().seq; got != 0 {
		t.Fatalf("empty bracket published: seq %d", got)
	}
	if err := gd.Ingest(buckets[0].now, cloneBatch(buckets[0].batch)); err != nil {
		t.Fatal(err)
	}
}
