package core

import (
	"context"
	"math"

	"github.com/social-streams/ksir/internal/score"
)

// sieveCand is one threshold candidate S_ϕ with ϕ = (1+ε)^j and its
// admission threshold ϕ/2k cached (computing pow in the per-element loop
// is measurably expensive).
type sieveCand struct {
	j         int
	threshold float64
	set       *score.CandidateSet
}

// mtts implements Algorithm 2 (Multi-Topic ThresholdStream) against one
// immutable snapshot view.
//
// It maintains SieveStreaming-style candidates S_ϕ for geometric threshold
// estimates ϕ = (1+ε)^j of OPT, feeds them elements best-score-first from
// the ranked lists, and stops as soon as the upper bound UB(x) of every
// unevaluated element falls below the minimum admission threshold TH of the
// unfilled candidates. Theorem 4.2: the best candidate is (1/2 − ε)-optimal.
//
// Cancellation is polled every checkEvery retrievals: a canceled ctx aborts
// with ctx.Err() instead of draining the remaining list descent.
func (v *view) mtts(ctx context.Context, q Query) (Result, error) {
	tr := newTraversalOpt(v, q.X, !q.DisableVisitedMarking)
	eps := q.Epsilon
	k := float64(q.K)
	logBase := math.Log(1 + eps)

	var cands []sieveCand // sorted by j ascending
	var deltaMax float64
	evaluated := 0

	th := 0.0 // minimum admission threshold among unfilled candidates
	ub := tr.ub()
	for q.DisableEarlyTermination || ub >= th {
		if evaluated%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		e, ok := tr.pop()
		if !ok {
			break
		}
		delta := v.scorer.Score(e, q.X)
		evaluated++

		if delta > deltaMax {
			deltaMax = delta
			// Re-anchor Φ to [δmax, 2k·δmax] (line 8), dropping candidates
			// that fell out of range (line 9) and creating the new ones.
			jLo := int(math.Ceil(math.Log(deltaMax) / logBase))
			jHi := int(math.Floor(math.Log(2*k*deltaMax) / logBase))
			old := cands
			cands = make([]sieveCand, 0, jHi-jLo+1)
			oi := 0
			for j := jLo; j <= jHi; j++ {
				for oi < len(old) && old[oi].j < j {
					oi++
				}
				if oi < len(old) && old[oi].j == j {
					cands = append(cands, old[oi])
					continue
				}
				cands = append(cands, sieveCand{
					j:         j,
					threshold: math.Pow(1+eps, float64(j)) / (2 * k),
					set:       score.NewCandidateSet(v.scorer, q.X),
				})
			}
		}

		// Each candidate decides independently (lines 10–12); the δ(e,x) ≥
		// ϕ/2k filter spares the marginal-gain computation for the
		// higher-threshold candidates. TH (line 14) falls out of the same
		// pass: the smallest admission threshold of any unfilled candidate.
		th = math.Inf(1)
		for i := range cands {
			c := &cands[i]
			if c.set.Len() < q.K {
				if delta >= c.threshold && c.set.MarginalGain(e) >= c.threshold {
					c.set.Add(e)
				}
				if c.set.Len() < q.K && c.threshold < th {
					th = c.threshold
				}
			}
		}
		if len(cands) == 0 {
			th = 0
		}
		ub = tr.ub()
	}

	// Return the candidate with the maximum score (line 15).
	var best *score.CandidateSet
	for i := range cands {
		if best == nil || cands[i].set.Value() > best.Value() {
			best = cands[i].set
		}
	}
	res := Result{
		Evaluated:     evaluated,
		Retrieved:     tr.retrieved,
		ActiveAtQuery: v.numActive,
		BucketSeq:     v.seq,
	}
	if best != nil {
		res.Elements = best.Members()
		res.Score = best.Value()
	}
	return res, nil
}
