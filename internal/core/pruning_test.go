package core

import (
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// skewedEngine builds the regime §4 describes: many topics, each element on
// 1–2 topics, scores highly skewed. The ranked-list pruning should then
// evaluate only a small fraction of the active elements for a single-topic
// query.
func skewedEngine(t *testing.T, n int) (*Engine, topicmodel.TopicVec) {
	t.Helper()
	rng := rand.New(rand.NewSource(55))
	const z, v = 20, 200
	m := &topicmodel.Model{Z: z, V: v, Phi: make([]float64, z*v), PTopic: make([]float64, z)}
	for i := 0; i < z; i++ {
		// Each topic concentrated on its own 10-word slice.
		var sum float64
		for w := 0; w < v; w++ {
			p := 0.001
			if w >= i*10 && w < (i+1)*10 {
				p = 1
			}
			m.Phi[i*v+w] = p
			sum += p
		}
		for w := 0; w < v; w++ {
			m.Phi[i*v+w] /= sum
		}
		m.PTopic[i] = 1.0 / z
	}
	g, err := NewEngine(Config{
		Model:        m,
		WindowLength: stream.Time(n + 1),
		Params:       score.DefaultParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		topic := rng.Intn(z)
		nw := 2 + rng.Intn(4)
		ids := make([]textproc.WordID, nw)
		for j := range ids {
			ids[j] = textproc.WordID(topic*10 + rng.Intn(10))
		}
		e := &stream.Element{
			ID:     stream.ElemID(i + 1),
			TS:     stream.Time(i + 1),
			Doc:    textproc.NewDocument(ids),
			Topics: topicmodel.TopicVec{Topics: []int32{int32(topic)}, Probs: []float64{1}},
		}
		if err := g.Ingest(e.TS, []*stream.Element{e}); err != nil {
			t.Fatal(err)
		}
	}
	// Query concentrated on topic 0.
	x := topicmodel.TopicVec{Topics: []int32{0, 1}, Probs: []float64{0.9, 0.1}}
	return g, x
}

func TestMTTSPrunesMostEvaluations(t *testing.T) {
	const n = 2000
	g, x := skewedEngine(t, n)
	res, err := g.Query(Query{K: 5, X: x, Epsilon: 0.1, Algorithm: MTTS})
	if err != nil {
		t.Fatal(err)
	}
	// MTTS's winning sieve candidate may legitimately hold fewer than k
	// elements (Theorem 4.2, case 2); it must still return a useful set.
	if len(res.Elements) < 3 {
		t.Fatalf("result size = %d, want ≥ 3", len(res.Elements))
	}
	ratio := float64(res.Evaluated) / float64(res.ActiveAtQuery)
	// The paper reports ≥98% pruning (Figure 10); on this sharply skewed
	// instance we should easily evaluate under 30% of actives.
	if ratio > 0.3 {
		t.Errorf("MTTS evaluated %.1f%% of actives; pruning ineffective", ratio*100)
	}
	// Every result element should be on the query's dominant topics.
	for _, e := range res.Elements {
		if e.Topics.Topics[0] > 1 {
			t.Errorf("result element e%d is on topic %d", e.ID, e.Topics.Topics[0])
		}
	}
}

func TestMTTDPrunesMostEvaluations(t *testing.T) {
	const n = 2000
	g, x := skewedEngine(t, n)
	res, err := g.Query(Query{K: 5, X: x, Epsilon: 0.1, Algorithm: MTTD})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Evaluated) / float64(res.ActiveAtQuery)
	if ratio > 0.3 {
		t.Errorf("MTTD evaluated %.1f%% of actives; pruning ineffective", ratio*100)
	}
}

// MTTS must never evaluate one element twice (its defining property vs
// MTTD): Evaluated ≤ number of distinct elements retrieved.
func TestMTTSEvaluatesEachElementOnce(t *testing.T) {
	g, x := skewedEngine(t, 500)
	res, err := g.Query(Query{K: 5, X: x, Epsilon: 0.2, Algorithm: MTTS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated > res.ActiveAtQuery {
		t.Errorf("MTTS evaluated %d > %d active elements", res.Evaluated, res.ActiveAtQuery)
	}
}

func TestConcurrentQueries(t *testing.T) {
	g, x := skewedEngine(t, 300)
	const goroutines = 8
	done := make(chan Result, goroutines)
	for i := 0; i < goroutines; i++ {
		alg := MTTS
		if i%2 == 1 {
			alg = MTTD
		}
		go func(a Algorithm) {
			res, err := g.Query(Query{K: 4, X: x, Epsilon: 0.1, Algorithm: a})
			if err != nil {
				t.Error(err)
			}
			done <- res
		}(alg)
	}
	var mttsScore, mttdScore float64
	for i := 0; i < goroutines; i++ {
		r := <-done
		if len(r.Elements) == 0 {
			t.Error("concurrent query returned empty result")
		}
		if i%2 == 0 {
			mttsScore = r.Score
		} else {
			mttdScore = r.Score
		}
	}
	if mttsScore <= 0 || mttdScore <= 0 {
		t.Error("zero scores under concurrency")
	}
}
