package core

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/rankedlist"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

func paperConfig() Config {
	return Config{
		Model:        papertest.Model(),
		WindowLength: 4,
		Params:       score.Params{Lambda: 0.5, Eta: 2},
	}
}

func restoreOf(t *testing.T, g *Engine, cfg Config) *Engine {
	t.Helper()
	r, err := Restore(cfg, g.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func engineQueries(t *testing.T, g *Engine) []Result {
	t.Helper()
	var out []Result
	for _, alg := range []Algorithm{MTTD, MTTS, TopkRep} {
		for _, x := range []topicmodel.TopicVec{
			{Topics: []int32{0}, Probs: []float64{1}},
			{Topics: []int32{1}, Probs: []float64{1}},
			{Topics: []int32{0, 1}, Probs: []float64{0.5, 0.5}},
		} {
			res, err := g.Query(Query{K: 3, X: x, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
	}
	return out
}

// sameResults compares two query batches for exact equality: selected
// elements, active count, bucket sequence, the Evaluated/Retrieved
// pruning counters, and the floating-point Score bit for bit. Scoring is
// fully deterministic — influence sums iterate the reference index in
// sorted child order and the set functions sum their coverage maps in
// sorted key order — so a restored engine has no ulp of slack to hide in.
func sameResults(a, b []Result) error {
	if len(a) != len(b) {
		return fmt.Errorf("result counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.ActiveAtQuery != y.ActiveAtQuery || x.BucketSeq != y.BucketSeq ||
			x.Evaluated != y.Evaluated || x.Retrieved != y.Retrieved {
			return fmt.Errorf("query %d counters diverge: %+v vs %+v", i, x, y)
		}
		if x.Score != y.Score {
			return fmt.Errorf("query %d scores diverge: %v vs %v", i, x.Score, y.Score)
		}
		if len(x.Elements) != len(y.Elements) {
			return fmt.Errorf("query %d sizes diverge", i)
		}
		for j := range x.Elements {
			if !reflect.DeepEqual(*x.Elements[j], *y.Elements[j]) {
				return fmt.Errorf("query %d element %d diverges: %+v vs %+v", i, j, x.Elements[j], y.Elements[j])
			}
		}
	}
	return nil
}

// A restored engine answers every query byte-identically — same elements,
// same scores, same pruning counters, same bucket sequence — and its
// ranked lists match tuple for tuple, stale scores included.
func TestRestoreIsByteIdentical(t *testing.T) {
	g := paperEngine(t)
	cfg := paperConfig()
	r := restoreOf(t, g, cfg)

	if g.Now() != r.Now() || g.NumActive() != r.NumActive() {
		t.Fatalf("now/active diverge: %d/%d vs %d/%d", g.Now(), g.NumActive(), r.Now(), r.NumActive())
	}
	if g.Stats() != r.Stats() {
		t.Errorf("stats diverge:\n got %+v\nwant %+v", r.Stats(), g.Stats())
	}
	for topic := 0; topic < cfg.Model.Z; topic++ {
		a, b := g.ListItems(topic), r.ListItems(topic)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("RL%d diverges:\n got %+v\nwant %+v", topic+1, b, a)
		}
	}
	if err := sameResults(engineQueries(t, g), engineQueries(t, r)); err != nil {
		t.Errorf("query results diverge after restore: %v", err)
	}
}

// After restore, identical further ingests keep the two engines in
// lockstep: expiries, resurrections and bucket sequences all replay.
func TestRestoreContinuesDeterministically(t *testing.T) {
	g := paperEngine(t)
	cfg := paperConfig()
	r := restoreOf(t, g, cfg)

	mk := func(id stream.ElemID, ts stream.Time, refs ...stream.ElemID) func() *stream.Element {
		// Fresh element values per engine: buffers share elements within
		// one engine, never across engines.
		return func() *stream.Element {
			src := papertest.Elements()[int(id-1)%8]
			return &stream.Element{ID: id, TS: ts, Doc: src.Doc, Topics: src.Topics, Refs: refs}
		}
	}
	steps := []func() *stream.Element{
		mk(20, 9, 3),  // references a live element
		mk(21, 10, 4), // resurrects e4 (expired before the export)
		mk(22, 13),    // plain arrival after a gap (mass expiry)
	}
	for _, step := range steps {
		ea, eb := step(), step()
		if err := g.Ingest(ea.TS, []*stream.Element{ea}); err != nil {
			t.Fatal(err)
		}
		if err := r.Ingest(eb.TS, []*stream.Element{eb}); err != nil {
			t.Fatal(err)
		}
		if err := sameResults(engineQueries(t, g), engineQueries(t, r)); err != nil {
			t.Fatalf("results diverge after ingesting e%d: %v", ea.ID, err)
		}
		for topic := 0; topic < cfg.Model.Z; topic++ {
			if !reflect.DeepEqual(g.ListItems(topic), r.ListItems(topic)) {
				t.Fatalf("RL%d diverges after ingesting e%d", topic+1, ea.ID)
			}
		}
		if gs, rs := g.Stats(), r.Stats(); gs.Buckets != rs.Buckets || gs.ElementsIngested != rs.ElementsIngested ||
			gs.ListUpserts != rs.ListUpserts || gs.ListDeletes != rs.ListDeletes {
			t.Fatalf("stats diverge after e%d:\n got %+v\nwant %+v", ea.ID, rs, gs)
		}
	}
	// Duplicate detection survives the restore: every historical ID is
	// still known.
	dup := mk(3, 14)()
	if err := r.Ingest(14, []*stream.Element{dup}); err == nil {
		t.Error("restored engine accepted a duplicate of an expired element")
	}
}

// Restore works under any shard count (results are shard-independent) and
// rejects states that do not fit the model.
func TestRestoreValidation(t *testing.T) {
	g := paperEngine(t)
	st := g.ExportState()

	for _, shards := range []int{1, 2, 7} {
		cfg := paperConfig()
		cfg.Shards = shards
		r, err := Restore(cfg, st)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if err := sameResults(engineQueries(t, g), engineQueries(t, r)); err != nil {
			t.Errorf("shards=%d: results diverge: %v", shards, err)
		}
	}

	bad := st
	bad.Lists = st.Lists[:1]
	if _, err := Restore(paperConfig(), bad); err == nil {
		t.Error("wrong list count accepted")
	}
	bad = st
	bad.Lists = make([][]rankedlist.Item, len(st.Lists))
	copy(bad.Lists, st.Lists)
	bad.Lists[0] = append([]rankedlist.Item{{ID: 4, Score: 1}}, st.Lists[0]...) // e4 expired
	if _, err := Restore(paperConfig(), bad); err == nil {
		t.Error("inactive list entry accepted")
	}
	cfg := paperConfig()
	cfg.Model = nil
	if _, err := Restore(cfg, st); err == nil {
		t.Error("nil model accepted")
	}
}
