package core

import (
	"math"
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
)

// Traversal over the paper's ranked lists (Figure 5 state) must pop
// elements in decreasing order of x_i·δ_i and never repeat one.
func TestTraversalOrderAndDedup(t *testing.T) {
	g := paperEngine(t)
	tr := newTraversal(g, papertest.QueryUniform())

	var seen []stream.ElemID
	var lastKey float64 = math.Inf(1)
	dedup := make(map[stream.ElemID]bool)
	for {
		// Record the key of the head we are about to pop.
		key := headKey(tr)
		e, ok := tr.pop()
		if !ok {
			break
		}
		if dedup[e.ID] {
			t.Fatalf("element e%d popped twice", e.ID)
		}
		dedup[e.ID] = true
		if key > lastKey+1e-12 {
			t.Fatalf("pop keys not non-increasing: %v after %v (e%d)", key, lastKey, e.ID)
		}
		lastKey = key
		seen = append(seen, e.ID)
	}
	if len(seen) != 7 {
		t.Fatalf("popped %d elements, want all 7 actives: %v", len(seen), seen)
	}
	// First pop is e3 (x1·δ1(e3) = 0.33 beats x2·δ2(e1) = 0.28), matching
	// Example 4.1's walkthrough.
	if seen[0] != 3 {
		t.Errorf("first pop = e%d, want e3", seen[0])
	}
	if !tr.exhausted() {
		t.Error("traversal should be exhausted")
	}
	if got := tr.ub(); got != 0 {
		t.Errorf("UB after exhaustion = %v", got)
	}
}

// headKey returns max_i x_i·δ_i(e^(i)) without mutating the traversal.
func headKey(tr *traversal) float64 {
	tr.skipVisited()
	best := math.Inf(-1)
	for i := range tr.cur {
		if tr.has[i] {
			if v := tr.weights[i] * tr.cur[i].Score; v > best {
				best = v
			}
		}
	}
	return best
}

// UB must be a true upper bound on δ(e, x) of every unpopped element at
// every step (the property Theorem 4.2's pruning correctness rests on).
func TestTraversalUpperBoundInvariant(t *testing.T) {
	g := paperEngine(t)
	x := papertest.QuerySkewed()
	tr := newTraversal(g, x)
	popped := make(map[stream.ElemID]bool)
	for {
		ub := tr.ub()
		// Check every unpopped active element against the current UB.
		g.Window().ForEachActive(func(e *stream.Element) {
			if popped[e.ID] {
				return
			}
			if d := g.Scorer().Score(e, x); d > ub+1e-9 {
				t.Errorf("UB %v < δ(e%d)=%v", ub, e.ID, d)
			}
		})
		e, ok := tr.pop()
		if !ok {
			break
		}
		popped[e.ID] = true
	}
}

// Zero-weight query topics must not open cursors.
func TestTraversalSkipsZeroWeightTopics(t *testing.T) {
	g := paperEngine(t)
	x := papertest.QueryUniform()
	x.Probs = []float64{0, 1} // zero out θ1
	tr := newTraversal(g, x)
	if len(tr.iters) != 1 {
		t.Fatalf("opened %d cursors, want 1", len(tr.iters))
	}
	// Only elements with p_2 > 0 are reachable — that is all 7 here, but
	// they must come out in RL2 order.
	first, ok := tr.pop()
	if !ok || first.ID != 1 {
		t.Errorf("first pop = %v, want e1 (RL2 head)", first)
	}
}

func TestTraversalOnEmptyEngine(t *testing.T) {
	g, err := NewEngine(Config{
		Model:        papertest.Model(),
		WindowLength: 4,
		Params:       score.Params{Lambda: 0.5, Eta: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := newTraversal(g, papertest.QueryUniform())
	if !tr.exhausted() {
		t.Error("empty traversal not exhausted")
	}
	if _, ok := tr.pop(); ok {
		t.Error("pop on empty succeeded")
	}
	if tr.ub() != 0 {
		t.Error("UB on empty != 0")
	}
}
