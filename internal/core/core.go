package core
