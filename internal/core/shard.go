package core

import (
	"runtime"
	"sync"
	"time"

	"github.com/social-streams/ksir/internal/stream"
)

// listOp is one ranked-list maintenance operation of Algorithm 1, routed to
// the shard owning its topic. Ops for the same list always execute in the
// order partition emitted them, so the lists are bit-identical to a
// single-threaded run regardless of the shard count.
type listOp struct {
	e     *stream.Element
	topic int32
	te    stream.Time // t_e at upsert time; unused for deletes
	del   bool
}

// shardOf routes a topic to its shard.
func (g *Engine) shardOf(topic int32) int { return int(topic) % g.numShards }

// partition fans the changeset out into per-shard op lists, preserving the
// engine's canonical order: expired deletes first (an element can expire in
// the same advance it was (re-)inserted only if it entered already out of
// window, in which case it must not linger in the lists), then upserts for
// inserts and updates.
func (g *Engine) partition(b *buffer, cs stream.ChangeSet) [][]listOp {
	ops := make([][]listOp, g.numShards)
	for _, e := range cs.Expired {
		for _, topic := range e.Topics.Topics {
			s := g.shardOf(topic)
			ops[s] = append(ops[s], listOp{e: e, topic: topic, del: true})
		}
	}
	expired := make(map[stream.ElemID]struct{}, len(cs.Expired))
	for _, e := range cs.Expired {
		expired[e.ID] = struct{}{}
	}
	upsert := func(e *stream.Element) {
		if _, gone := expired[e.ID]; gone {
			return
		}
		te, _ := b.win.LastRef(e.ID)
		for _, topic := range e.Topics.Topics {
			s := g.shardOf(topic)
			ops[s] = append(ops[s], listOp{e: e, topic: topic, te: te})
		}
	}
	for _, e := range cs.Inserted {
		upsert(e)
	}
	for _, e := range cs.Updated {
		upsert(e)
	}
	return ops
}

// runShards executes the per-shard op lists on the worker pool. Each shard
// is claimed by exactly one worker, so shard list state, shard counters and
// the recorded delta's per-shard op slices are written race-free; workers
// share read-only access to the buffer's window and scorer (every element
// they score is already cached by OnChange).
func (g *Engine) runShards(b *buffer, ops [][]listOp, primary bool, rec *bucketDelta) {
	g.runPool(func(s int) bool { return len(ops[s]) > 0 },
		func(s int) { g.runShard(b, s, ops[s], primary, rec) })
}

// runPool runs fn(shard) for every shard hasWork reports busy, on a
// worker pool where each shard is claimed by exactly one worker — the one
// dispatch scheme shared by primary maintenance (runShards) and delta
// replay (replayShards), so the two paths cannot drift.
func (g *Engine) runPool(hasWork func(shard int) bool, fn func(shard int)) {
	work := make(chan int, g.numShards)
	busy := 0
	for s := 0; s < g.numShards; s++ {
		if hasWork(s) {
			work <- s
			busy++
		}
	}
	close(work)
	if busy == 0 {
		return
	}
	if busy == 1 || g.numShards == 1 {
		for s := range work {
			fn(s)
		}
		return
	}
	workers := g.numShards
	if workers > busy {
		workers = busy
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for s := range work {
				fn(s)
			}
		}()
	}
	wg.Wait()
}

// yieldEvery bounds how many ranked-list ops a shard worker executes
// between cooperative yields. Queries never block on ingest (they read the
// published snapshot), but on a machine with few cores they still need the
// scheduler to hand them a slice mid-bucket; without the yield a heavy
// bucket would pin every core for its whole duration and reader latency
// would degrade to the preemption quantum. The locked seed engine could
// not have used this — its queries were blocked on the mutex regardless.
const yieldEvery = 128

// runShard applies one shard's ops: deletes drop expired tuples, upserts
// recompute δ_i(e) and (re)position the tuple (Algorithm 1 lines 7–13).
// With rec non-nil every structural outcome is appended to the delta's
// op list for this shard — preallocated to the exact op count, owned by
// this worker, so capture is race-free and allocation-flat — carrying the
// computed score so replay never rescores.
func (g *Engine) runShard(b *buffer, shard int, ops []listOp, primary bool, rec *bucketDelta) {
	start := time.Now()
	var out []shardOp
	if rec != nil {
		// Reuse the recycled slice when it is big enough (newBucketDelta
		// hands back the previously replayed delta's storage).
		out = rec.ops[shard]
		if cap(out) < len(ops) {
			out = make([]shardOp, 0, len(ops))
		}
	}
	var ups, dels int64
	for i, op := range ops {
		if i%yieldEvery == yieldEvery-1 {
			runtime.Gosched()
		}
		if op.del {
			if rec != nil {
				if rop, ok := b.lists[op.topic].DeleteRecorded(op.e.ID); ok {
					out = append(out, shardOp{topic: op.topic, op: rop})
					dels++
				}
			} else if b.lists[op.topic].Delete(op.e.ID) {
				dels++
			}
			continue
		}
		score := b.scorer.TopicScore(op.e, op.topic)
		if rec != nil {
			out = append(out, shardOp{topic: op.topic, op: b.lists[op.topic].UpsertRecorded(op.e.ID, score, op.te)})
		} else {
			b.lists[op.topic].Upsert(op.e.ID, score, op.te)
		}
		ups++
	}
	if rec != nil {
		rec.ops[shard] = out
	}
	if primary {
		ss := &g.shardStats[shard]
		ss.ListUpserts += ups
		ss.ListDeletes += dels
		ss.Busy += time.Since(start)
	}
}
