package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/testutil"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// concurrentFixture builds a random stream pre-partitioned into buckets,
// sized so that ingest and queries genuinely overlap under the race
// detector without making the test slow.
type concurrentFixture struct {
	model   *topicmodel.Model
	buckets []stream.Bucket
	queries []Query
	windowT stream.Time
}

func newConcurrentFixture(seed int64) concurrentFixture {
	rng := rand.New(rand.NewSource(seed))
	const (
		z, v      = 12, 80
		elements  = 600
		bucketLen = 20
		windowT   = 120
	)
	elems := make([]*stream.Element, elements)
	for i := range elems {
		elems[i] = testutil.RandElement(rng, i+1, z, v, 2)
	}
	buckets, err := stream.Partition(elems, bucketLen)
	if err != nil {
		panic(err)
	}
	queries := make([]Query, 6)
	for i := range queries {
		alg := []Algorithm{MTTS, MTTD, TopkRep}[i%3]
		queries[i] = Query{K: 4, X: testutil.RandQuery(rng, z), Epsilon: 0.25, Algorithm: alg}
	}
	return concurrentFixture{
		model:   testutil.RandModel(rng, z, v),
		buckets: buckets,
		queries: queries,
		windowT: windowT,
	}
}

func (f concurrentFixture) newEngine(t testing.TB, shards int) *Engine {
	t.Helper()
	g, err := NewEngine(Config{
		Model:        f.model,
		WindowLength: f.windowT,
		Params:       score.Params{Lambda: 0.5, Eta: 2},
		Shards:       shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// resultKey flattens the parts of a Result that must be bit-identical for
// two runs observing the same bucket.
type resultKey struct {
	score     float64
	active    int
	evaluated int
	retrieved int
	ids       string
}

func keyOf(r Result) resultKey {
	var ids []byte
	for _, e := range r.Elements {
		ids = append(ids, byte(e.ID), byte(e.ID>>8), byte(e.ID>>16))
	}
	return resultKey{
		score:     r.Score,
		active:    r.ActiveAtQuery,
		evaluated: r.Evaluated,
		retrieved: r.Retrieved,
		ids:       string(ids),
	}
}

// TestConcurrentQueryConsistency is the snapshot-isolation stress test: many
// query goroutines race a writer ingesting buckets, under -race. Every
// result must be byte-identical to the golden result computed for the bucket
// the query reports having observed — i.e. no query ever sees a torn,
// half-ingested state.
func TestConcurrentQueryConsistency(t *testing.T) {
	f := newConcurrentFixture(2027)

	// Golden pass: single-threaded, query after every bucket.
	golden := make([]map[int]resultKey, len(f.buckets)+1)
	gg := f.newEngine(t, 0)
	record := func(seq int64) {
		m := make(map[int]resultKey, len(f.queries))
		for qi, q := range f.queries {
			res, err := gg.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if res.BucketSeq != seq {
				t.Fatalf("golden query observed bucket %d, want %d", res.BucketSeq, seq)
			}
			m[qi] = keyOf(res)
		}
		golden[seq] = m
	}
	record(0)
	for i, b := range f.buckets {
		if err := gg.Ingest(b.End, b.Elems); err != nil {
			t.Fatal(err)
		}
		record(int64(i + 1))
	}

	// Concurrent pass.
	g := f.newEngine(t, 0)
	var done atomic.Bool
	var checked atomic.Int64
	var wg sync.WaitGroup
	const readers = 8
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				qi := (r + i) % len(f.queries)
				res, err := g.Query(f.queries[qi])
				if err != nil {
					t.Error(err)
					return
				}
				seq := res.BucketSeq
				if seq < 0 || seq > int64(len(f.buckets)) {
					t.Errorf("impossible bucket seq %d", seq)
					return
				}
				if got, want := keyOf(res), golden[seq][qi]; got != want {
					t.Errorf("query %d at bucket %d: result diverged from single-threaded golden run\n got %+v\nwant %+v",
						qi, seq, got, want)
					return
				}
				checked.Add(1)
			}
		}(r)
	}
	// Diagnostics reader: the APIs the old engine raced on must be safe
	// and self-consistent mid-ingest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			// Stats and ShardStats must roll up when read from one
			// consistent snapshot (separate Engine calls may straddle a
			// publish, so pin once here).
			snap := g.acquire()
			st, shards := snap.stats, snap.shards
			snap.release()
			var ups, dels int64
			for _, ss := range shards {
				ups += ss.ListUpserts
				dels += ss.ListDeletes
			}
			if ups != st.ListUpserts || dels != st.ListDeletes {
				t.Errorf("shard stats do not roll up: %d/%d vs %d/%d", ups, dels, st.ListUpserts, st.ListDeletes)
				return
			}
			for topic := 0; topic < f.model.Z; topic++ {
				// Each call pins its own snapshot; a torn read would
				// surface as an unordered or internally broken dump.
				items := g.ListItems(topic)
				for i := 1; i < len(items); i++ {
					a, b := items[i-1], items[i]
					if a.Score < b.Score || (a.Score == b.Score && a.ID >= b.ID) {
						t.Errorf("RL%d dump out of ranked order at %d: %+v before %+v", topic, i, a, b)
						return
					}
				}
			}
		}
	}()

	for _, b := range f.buckets {
		if err := g.Ingest(b.End, b.Elems); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	if checked.Load() < int64(len(f.buckets)) {
		t.Logf("only %d concurrent queries completed (slow machine?)", checked.Load())
	}
	if g.Now() != gg.Now() || g.NumActive() != gg.NumActive() {
		t.Fatalf("final state diverged: now %d/%d active %d/%d", g.Now(), gg.Now(), g.NumActive(), gg.NumActive())
	}
}

// TestShardCountInvariance: the ranked lists and query answers must be
// bit-identical for any shard count — sharding is a scheduling decision,
// not a semantic one.
func TestShardCountInvariance(t *testing.T) {
	f := newConcurrentFixture(31)
	engines := map[string]*Engine{
		"P=1": f.newEngine(t, 1),
		"P=3": f.newEngine(t, 3),
		"P=8": f.newEngine(t, 8),
	}
	for _, b := range f.buckets {
		for name, g := range engines {
			if err := g.Ingest(b.End, b.Elems); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	ref := engines["P=1"]
	for name, g := range engines {
		if g.NumShards() > f.model.Z {
			t.Errorf("%s: shards %d exceed topics %d", name, g.NumShards(), f.model.Z)
		}
		for topic := 0; topic < f.model.Z; topic++ {
			a, b := ref.ListItems(topic), g.ListItems(topic)
			if len(a) != len(b) {
				t.Fatalf("%s: RL%d length %d, want %d", name, topic, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: RL%d[%d] = %+v, want %+v", name, topic, i, b[i], a[i])
				}
			}
		}
		st, rst := g.Stats(), ref.Stats()
		if st.ListUpserts != rst.ListUpserts || st.ListDeletes != rst.ListDeletes {
			t.Errorf("%s: counters %d/%d, want %d/%d", name, st.ListUpserts, st.ListDeletes, rst.ListUpserts, rst.ListDeletes)
		}
		for qi, q := range f.queries {
			a, err := ref.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := g.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if keyOf(a) != keyOf(b) {
				t.Errorf("%s: query %d diverged", name, qi)
			}
		}
	}
}

// A pinned query must keep seeing its bucket even after later ingests
// complete — and the engine must not deadlock waiting for it as long as at
// most one further bucket is published before release.
func TestQueryPinsBucketAcrossIngest(t *testing.T) {
	f := newConcurrentFixture(47)
	g := f.newEngine(t, 0)
	if err := g.Ingest(f.buckets[0].End, f.buckets[0].Elems); err != nil {
		t.Fatal(err)
	}
	snap := g.acquire()
	v := snap.view()
	before, err := v.mtts(context.Background(), f.queries[0])
	if err != nil {
		t.Fatal(err)
	}

	if err := g.Ingest(f.buckets[1].End, f.buckets[1].Elems); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot still answers for bucket 1.
	again, err := v.mtts(context.Background(), f.queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(before) != keyOf(again) || again.BucketSeq != 1 {
		t.Fatalf("pinned snapshot drifted: %+v vs %+v", keyOf(before), keyOf(again))
	}
	// The engine has moved on.
	if res, err := g.Query(f.queries[0]); err != nil || res.BucketSeq != 2 {
		t.Fatalf("live query at bucket %d (err %v), want 2", res.BucketSeq, err)
	}
	snap.release()
	// After release the writer can recycle the buffer freely.
	if err := g.Ingest(f.buckets[2].End, f.buckets[2].Elems); err != nil {
		t.Fatal(err)
	}
	if res, err := g.Query(f.queries[0]); err != nil || res.BucketSeq != 3 {
		t.Fatalf("live query at bucket %d (err %v), want 3", res.BucketSeq, err)
	}
}

// Duplicate IDs and out-of-bucket timestamps must be rejected before either
// buffer mutates, so the engine stays usable after the error.
func TestIngestValidationKeepsBuffersInSync(t *testing.T) {
	f := newConcurrentFixture(53)
	g := f.newEngine(t, 0)
	for _, b := range f.buckets[:3] {
		if err := g.Ingest(b.End, b.Elems); err != nil {
			t.Fatal(err)
		}
	}
	now := g.Now()
	dup := f.buckets[0].Elems[0] // already-ingested ID, stale TS
	if err := g.Ingest(now+10, []*stream.Element{dup}); err == nil {
		t.Fatal("stale duplicate accepted")
	}
	fresh := *f.buckets[0].Elems[0]
	fresh.ID = 100000
	fresh.TS = now + 5
	fresh.Refs = nil
	late := *f.buckets[0].Elems[1]
	late.ID = 100001
	late.TS = now + 20 // beyond the bucket end
	late.Refs = nil
	if err := g.Ingest(now+10, []*stream.Element{&fresh, &late}); err == nil {
		t.Fatal("out-of-bucket element accepted")
	}
	if err := g.Ingest(now+10, []*stream.Element{&fresh, &fresh}); err == nil {
		t.Fatal("within-batch duplicate accepted")
	}
	// The rejected buckets must have left no trace: the next good bucket
	// keeps both buffers identical (checked via golden single engine).
	if err := g.Ingest(now+10, []*stream.Element{&fresh}); err != nil {
		t.Fatal(err)
	}
	ref := f.newEngine(t, 0)
	for _, b := range f.buckets[:3] {
		if err := ref.Ingest(b.End, b.Elems); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Ingest(now+10, []*stream.Element{&fresh}); err != nil {
		t.Fatal(err)
	}
	// Ingest once more so the engine's recycled buffer (the one the failed
	// calls could have corrupted) becomes the published one.
	for _, g2 := range []*Engine{g, ref} {
		if err := g2.Ingest(now+30, nil); err != nil {
			t.Fatal(err)
		}
	}
	for topic := 0; topic < f.model.Z; topic++ {
		a, b := ref.ListItems(topic), g.ListItems(topic)
		if len(a) != len(b) {
			t.Fatalf("RL%d diverged after rejected buckets: %d vs %d items", topic, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("RL%d[%d] diverged: %+v vs %+v", topic, i, b[i], a[i])
			}
		}
	}
	if g.NumActive() != ref.NumActive() {
		t.Fatalf("active %d, want %d", g.NumActive(), ref.NumActive())
	}
}

// Queries answered concurrently must stay within the approximation bounds —
// a smoke check that the snapshot path runs the same algorithms, not a
// degraded variant.
func TestConcurrentQueryBounds(t *testing.T) {
	f := newConcurrentFixture(61)
	g := f.newEngine(t, 0)
	var wg sync.WaitGroup
	var done atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			ts, err := g.Query(Query{K: 4, X: f.queries[0].X, Epsilon: 0.1, Algorithm: MTTS})
			if err != nil {
				t.Error(err)
				return
			}
			td, err := g.Query(Query{K: 4, X: f.queries[0].X, Epsilon: 0.1, Algorithm: MTTD})
			if err != nil {
				t.Error(err)
				return
			}
			if ts.Score < 0 || td.Score < 0 || math.IsNaN(ts.Score) || math.IsNaN(td.Score) {
				t.Errorf("invalid scores: %v / %v", ts.Score, td.Score)
				return
			}
		}
	}()
	for _, b := range f.buckets {
		if err := g.Ingest(b.End, b.Elems); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
}
