package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/testutil"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// celfOnWindow runs lazy greedy directly on the engine's current window as
// the quality reference.
func celfOnWindow(g *Engine, x topicmodel.TopicVec, k int) float64 {
	set := score.NewCandidateSet(g.Scorer(), x)
	var actives []*stream.Element
	g.Window().ForEachActive(func(e *stream.Element) { actives = append(actives, e) })
	for set.Len() < k {
		var best *stream.Element
		var bestGain float64
		for _, e := range actives {
			if set.Contains(e.ID) {
				continue
			}
			if gain := set.MarginalGain(e); gain > bestGain {
				best, bestGain = e, gain
			}
		}
		if best == nil || bestGain <= 0 {
			break
		}
		set.Add(best)
	}
	return set.Value()
}

// Mid-stream consistency: as the window slides (arrivals, expiries,
// resurrections), MTTS/MTTD answered against the live ranked lists must
// stay within their guarantees of the greedy reference at every point.
func TestMidStreamQueryConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const n, T, k, eps = 300, 40, 4, 0.1
	m := testutil.RandModel(rng, 4, 30)
	g, err := NewEngine(Config{
		Model:        m,
		WindowLength: T,
		Params:       score.Params{Lambda: 0.5, Eta: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := testutil.RandQuery(rng, 4)
	checked := 0
	for i := 1; i <= n; i++ {
		e := testutil.RandElement(rng, i, 4, 30, 2)
		if err := g.Ingest(e.TS, []*stream.Element{e}); err != nil {
			t.Fatal(err)
		}
		if i%25 != 0 {
			continue
		}
		checked++
		greedy := celfOnWindow(g, x, k)
		ts, err := g.Query(Query{K: k, X: x, Epsilon: eps, Algorithm: MTTS})
		if err != nil {
			t.Fatal(err)
		}
		td, err := g.Query(Query{K: k, X: x, Epsilon: eps, Algorithm: MTTD})
		if err != nil {
			t.Fatal(err)
		}
		// greedy ≤ OPT, so the theorems imply both bounds relative to it:
		// MTTS ≥ (1/2−ε)·OPT ≥ (1/2−ε)·greedy, and likewise for MTTD.
		if ts.Score < (0.5-eps)*greedy-1e-9 {
			t.Errorf("t=%d: MTTS %.6f < (1/2−ε)·greedy %.6f", g.Now(), ts.Score, greedy)
		}
		if td.Score < (1-1/math.E-eps)*greedy-1e-9 {
			t.Errorf("t=%d: MTTD %.6f < (1−1/e−ε)·greedy %.6f", g.Now(), td.Score, greedy)
		}
		// Results only contain currently active elements.
		for _, res := range []Result{ts, td} {
			for _, e := range res.Elements {
				if _, ok := g.Window().Get(e.ID); !ok {
					t.Fatalf("t=%d: result holds inactive e%d", g.Now(), e.ID)
				}
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d checkpoints exercised", checked)
	}
}

// MTTD must stop exactly at k even when the admitting round would admit
// more elements.
func TestMTTDStopsAtK(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g, x := randEngine(t, rng, 30)
	for k := 1; k <= 6; k++ {
		res, err := g.Query(Query{K: k, X: x, Epsilon: 0.1, Algorithm: MTTD})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Elements) > k {
			t.Errorf("k=%d: returned %d", k, len(res.Elements))
		}
	}
}

// Monotonicity in k: a larger k can only improve the MTTD score.
func TestMTTDScoreMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	g, x := randEngine(t, rng, 25)
	var prev float64
	for k := 1; k <= 8; k++ {
		res, err := g.Query(Query{K: k, X: x, Epsilon: 0.1, Algorithm: MTTD})
		if err != nil {
			t.Fatal(err)
		}
		if res.Score < prev-1e-9 {
			t.Errorf("score dropped from %.6f to %.6f at k=%d", prev, res.Score, k)
		}
		prev = res.Score
	}
}
