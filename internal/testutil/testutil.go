// Package testutil builds random k-SIR instances shared by test suites:
// a random topic model, an active window full of random elements with
// references, and normalized query vectors.
package testutil

import (
	"math/rand"

	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Instance is one random test instance.
type Instance struct {
	Model   *topicmodel.Model
	Window  *stream.ActiveWindow
	Scorer  *score.Scorer
	Elems   []*stream.Element
	Topics  int
	Vocab   int
	NumDocs int
}

// Options controls instance generation.
type Options struct {
	Topics   int // default 4
	Vocab    int // default 30
	Elements int // default 12
	MaxRefs  int // default 2
	Params   score.Params
}

func (o *Options) fill() {
	if o.Topics == 0 {
		o.Topics = 4
	}
	if o.Vocab == 0 {
		o.Vocab = 30
	}
	if o.Elements == 0 {
		o.Elements = 12
	}
	if o.MaxRefs == 0 {
		o.MaxRefs = 2
	}
	if o.Params == (score.Params{}) {
		o.Params = score.Params{Lambda: 0.5, Eta: 2}
	}
}

// RandModel builds a random topic model with z topics over v words.
func RandModel(rng *rand.Rand, z, v int) *topicmodel.Model {
	m := &topicmodel.Model{Z: z, V: v, Phi: make([]float64, z*v), PTopic: make([]float64, z)}
	for i := 0; i < z; i++ {
		var sum float64
		for w := 0; w < v; w++ {
			m.Phi[i*v+w] = rng.Float64()
			sum += m.Phi[i*v+w]
		}
		for w := 0; w < v; w++ {
			m.Phi[i*v+w] /= sum
		}
		m.PTopic[i] = 1 / float64(z)
	}
	return m
}

// RandElement builds a random element with the given ID/timestamp,
// 1–5 words, 1–2 topics and up to maxRefs references to earlier IDs.
func RandElement(rng *rand.Rand, id int, z, v, maxRefs int) *stream.Element {
	nw := 1 + rng.Intn(5)
	ids := make([]textproc.WordID, nw)
	for j := range ids {
		ids[j] = textproc.WordID(rng.Intn(v))
	}
	dense := make([]float64, z)
	k := 1 + rng.Intn(2)
	for j := 0; j < k; j++ {
		dense[rng.Intn(z)] += rng.Float64()
	}
	var sum float64
	for _, d := range dense {
		sum += d
	}
	for j := range dense {
		dense[j] /= sum
	}
	e := &stream.Element{
		ID:     stream.ElemID(id),
		TS:     stream.Time(id),
		Doc:    textproc.NewDocument(ids),
		Topics: topicmodel.NewTopicVec(dense),
	}
	for r := 0; r < rng.Intn(maxRefs+1) && id > 1; r++ {
		e.Refs = append(e.Refs, stream.ElemID(1+rng.Intn(id-1)))
	}
	return e
}

// NewInstance generates a full random instance. All elements stay active
// (window length exceeds the stream length).
func NewInstance(rng *rand.Rand, opts Options) *Instance {
	opts.fill()
	m := RandModel(rng, opts.Topics, opts.Vocab)
	win := stream.NewActiveWindow(stream.Time(opts.Elements + 1))
	scorer, err := score.NewScorer(m, win, opts.Params)
	if err != nil {
		panic(err) // Options.fill guarantees valid params
	}
	inst := &Instance{
		Model: m, Window: win, Scorer: scorer,
		Topics: opts.Topics, Vocab: opts.Vocab, NumDocs: opts.Elements,
	}
	for i := 1; i <= opts.Elements; i++ {
		e := RandElement(rng, i, opts.Topics, opts.Vocab, opts.MaxRefs)
		cs, err := win.Advance(e.TS, []*stream.Element{e})
		if err != nil {
			panic(err)
		}
		scorer.OnChange(cs)
		inst.Elems = append(inst.Elems, e)
	}
	return inst
}

// RandQuery returns a normalized dense query vector over z topics.
func RandQuery(rng *rand.Rand, z int) topicmodel.TopicVec {
	dense := make([]float64, z)
	var sum float64
	for j := range dense {
		dense[j] = rng.Float64()
		sum += dense[j]
	}
	for j := range dense {
		dense[j] /= sum
	}
	return topicmodel.NewTopicVec(dense)
}

// BruteForceOPT enumerates all subsets of size ≤ k for the exact optimum.
func BruteForceOPT(s *score.Scorer, elems []*stream.Element, x topicmodel.TopicVec, k int) float64 {
	var best float64
	var rec func(start int, cur []*stream.Element)
	rec = func(start int, cur []*stream.Element) {
		if v := s.SetScore(cur, x); v > best {
			best = v
		}
		if len(cur) == k {
			return
		}
		for i := start; i < len(elems); i++ {
			rec(i+1, append(cur, elems[i]))
		}
	}
	rec(0, nil)
	return best
}
