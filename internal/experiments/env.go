// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) on the synthetic datasets: it builds the full pipeline
// (generate → train topic model → infer element vectors → feed the engine →
// interleave a query workload), times the methods, and renders the results
// in the paper's format. DESIGN.md §4 is the experiment index.
package experiments

import (
	"fmt"
	"math"
	"sort"

	ksir "github.com/social-streams/ksir"
	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/dataset"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Scale bounds the experiment sizes so the suite completes on one machine.
// The paper's corpora are 1.6–20M elements; shapes and relative timings are
// preserved at reduced scale (DESIGN.md §3).
type Scale struct {
	Elements    int   // stream size per dataset
	Queries     int   // workload size (the paper uses 10K)
	TopicIters  int   // Gibbs sweeps for topic training
	Seed        int64 // master seed
	WindowHours float64
}

// SmallScale is sized for CI and `go test -bench`: a full experiment takes
// seconds.
var SmallScale = Scale{Elements: 4000, Queries: 30, TopicIters: 25, Seed: 42, WindowHours: 24}

// DefaultScale is sized for the full `ksir-bench` runs reported in
// EXPERIMENTS.md.
var DefaultScale = Scale{Elements: 20000, Queries: 200, TopicIters: 40, Seed: 42, WindowHours: 24}

// Env is one fully prepared dataset environment.
type Env struct {
	Name    string
	Profile dataset.Profile
	Data    *dataset.Dataset
	Model   *topicmodel.Model
	Inf     *topicmodel.Inferencer
	TFIDF   *textproc.TFIDF
	Queries []dataset.QuerySpec
	Params  score.Params
	// WindowT and BucketL are the paper's T (24h default) and L (15min)
	// mapped into scaled stream time (same in-window fraction of the
	// stream as at full scale).
	WindowT stream.Time
	BucketL stream.Time

	scale Scale
}

// Lab builds and caches experiment environments (topic training dominates
// setup time, so sweeps reuse environments wherever the paper's protocol
// allows).
type Lab struct {
	scale Scale
	cache map[string]*Env
	// persistM is the compact model the durability experiment trains
	// once (see persist.go).
	persistM *ksir.Model
}

// NewLab returns a Lab at the given scale.
func NewLab(scale Scale) *Lab {
	return &Lab{scale: scale, cache: make(map[string]*Env)}
}

// profileFor returns the scaled profile by dataset name.
func profileFor(name string, n int) (dataset.Profile, error) {
	switch name {
	case "AMiner":
		return dataset.AMinerLike(n), nil
	case "Reddit":
		return dataset.RedditLike(n), nil
	case "Twitter":
		return dataset.TwitterLike(n), nil
	default:
		return dataset.Profile{}, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}

// DatasetNames lists the three evaluation datasets in paper order.
func DatasetNames() []string { return []string{"AMiner", "Reddit", "Twitter"} }

// Env returns the environment for (dataset, z), building it on first use:
// generate the stream, train LDA (AMiner/Reddit) or BTM (Twitter) with the
// paper's priors, infer every element's topic vector, and generate the
// query workload.
func (l *Lab) Env(name string, z int) (*Env, error) {
	key := fmt.Sprintf("%s/z=%d", name, z)
	if env, ok := l.cache[key]; ok {
		return env, nil
	}
	p, err := profileFor(name, l.scale.Elements)
	if err != nil {
		return nil, err
	}
	p.Topics = z
	// Re-apply the per-topic vocabulary floor: the profile was scaled with
	// its default topic count, and large z sweeps need wider vocabularies.
	if floor := z * 12; p.Vocab < floor {
		p.Vocab = floor
	}
	ds, err := dataset.Generate(p, l.scale.Seed)
	if err != nil {
		return nil, err
	}

	var model *topicmodel.Model
	if name == "Twitter" {
		model, _, err = topicmodel.TrainBTM(ds.Docs, topicmodel.BTMConfig{
			Topics: z, VocabSize: ds.Vocab.Size(),
			Iterations: l.scale.TopicIters, Seed: l.scale.Seed,
		})
	} else {
		model, _, err = topicmodel.TrainLDA(ds.Docs, topicmodel.LDAConfig{
			Topics: z, VocabSize: ds.Vocab.Size(),
			Iterations: l.scale.TopicIters, Seed: l.scale.Seed,
		})
	}
	if err != nil {
		return nil, err
	}
	inf := topicmodel.NewInferencer(model, l.scale.Seed)
	for i, e := range ds.Elements {
		e.Topics = inf.InferDoc(ds.Docs[i])
	}

	env := &Env{
		Name:    name,
		Profile: p,
		Data:    ds,
		Model:   model,
		Inf:     inf,
		TFIDF:   textproc.NewTFIDF(ds.Vocab, len(ds.Elements)),
		Queries: dataset.GenerateQueries(l.scale.Queries, ds, inf, l.scale.Seed+1),
		scale:   l.scale,
	}
	env.WindowT = env.windowFor(l.scale.WindowHours)
	// η's stated purpose (§3.2) is to bring the influence score's range to
	// the semantic score's. The paper's constants (20 / 200) do that at
	// full corpus scale; influence sums shrink with the window population
	// while semantic scores do not, so at reduced scale η must be
	// re-estimated from the data or influence is drowned (DESIGN.md §3).
	env.Params = score.Params{Lambda: 0.5, Eta: env.estimateEta()}
	env.BucketL = env.WindowT / 96 // L = 15min : T = 24h
	if env.BucketL < 1 {
		env.BucketL = 1
	}
	l.cache[key] = env
	return env, nil
}

// estimateEta matches the influence score's range to the semantic score's:
// η = p95(I) / p95(R) over per-element topic-wise scores, with in-window
// membership approximated by timestamp gap ≤ WindowT. Bounded below by 1
// so a reference-free stream cannot blow influence up.
func (env *Env) estimateEta() float64 {
	elems := env.Data.Elements
	byID := make(map[stream.ElemID]*stream.Element, len(elems))
	for _, e := range elems {
		byID[e.ID] = e
	}
	var rs, is []float64
	infl := make(map[stream.ElemID]float64)
	for _, e := range elems {
		// Semantic score on the element's dominant topic.
		if e.Topics.Len() > 0 {
			topic := e.Topics.Topics[0]
			pe := e.Topics.Probs[0]
			var r float64
			for _, tc := range e.Doc.Terms {
				p := env.Model.TopicWord(int(topic), tc.Word) * pe
				if p > 0 {
					r += -float64(tc.Count) * p * logf(p)
				}
			}
			if r > 0 {
				rs = append(rs, r)
			}
		}
		// Influence mass flowing to parents still within one window.
		for _, pid := range e.Refs {
			parent, ok := byID[pid]
			if !ok || e.TS-parent.TS > env.WindowT || parent.Topics.Len() == 0 {
				continue
			}
			topic := parent.Topics.Topics[0]
			infl[pid] += parent.Topics.Probs[0] * e.Topics.Prob(topic)
		}
	}
	for _, v := range infl {
		if v > 0 {
			is = append(is, v)
		}
	}
	pr, pi := percentile(rs, 0.95), percentile(is, 0.95)
	if pr == 0 || pi == 0 {
		return 1
	}
	eta := pi / pr
	if eta < 1 {
		eta = 1
	}
	return eta
}

func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	i := int(q * float64(len(cp)-1))
	return cp[i]
}

func logf(x float64) float64 { return math.Log(x) }

// windowFor maps a wall-clock window length in hours to scaled stream time,
// preserving the in-window fraction of the full-size corpus.
func (env *Env) windowFor(hours float64) stream.Time {
	full, _ := profileFor(env.Name, 0) // full-size profile for the time base
	frac := hours * 3600 / float64(full.Duration)
	t := stream.Time(frac * float64(env.Profile.Duration))
	if t < 1 {
		t = 1
	}
	return t
}

// NewEngine builds a fresh engine for the env with window length T
// (defaults to env.WindowT when 0).
func (env *Env) NewEngine(T stream.Time) (*core.Engine, error) {
	return env.NewEngineCatchUp(T, core.CatchUpDelta)
}

// NewEngineCatchUp is NewEngine with an explicit buffer catch-up mode —
// the knob the `engine` experiment flips to compare delta replay against
// the double-apply baseline.
func (env *Env) NewEngineCatchUp(T stream.Time, mode core.CatchUpMode) (*core.Engine, error) {
	if T == 0 {
		T = env.WindowT
	}
	return core.NewEngine(core.Config{
		Model:        env.Model,
		WindowLength: T,
		Params:       env.Params,
		CatchUp:      mode,
	})
}

// Replay feeds the whole stream through a fresh engine in buckets of
// BucketL, invoking handle for every workload query when its timestamp is
// reached (the paper's protocol: results retrieved at the assigned
// timestamps). A nil handle just feeds the stream.
func (env *Env) Replay(g *core.Engine, handle func(g *core.Engine, q dataset.QuerySpec) error) error {
	buckets, err := stream.Partition(env.Data.Elements, env.BucketL)
	if err != nil {
		return err
	}
	qi := 0
	for _, b := range buckets {
		if err := g.Ingest(b.End, b.Elems); err != nil {
			return err
		}
		for qi < len(env.Queries) && env.Queries[qi].At <= b.End {
			if handle != nil {
				if err := handle(g, env.Queries[qi]); err != nil {
					return err
				}
			}
			qi++
		}
	}
	// Flush queries assigned after the last element.
	for qi < len(env.Queries) {
		if handle != nil {
			if err := handle(g, env.Queries[qi]); err != nil {
				return err
			}
		}
		qi++
	}
	return nil
}

// Actives materializes the active elements of the engine's window (the
// input the index-free baselines scan).
func Actives(g *core.Engine) []*stream.Element {
	out := make([]*stream.Element, 0, g.NumActive())
	g.Window().ForEachActive(func(e *stream.Element) { out = append(out, e) })
	return out
}
