package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	ksir "github.com/social-streams/ksir"
)

// persistModel trains (once per Lab) the small model the durability
// experiment ingests against; the durability numbers measure the WAL and
// checkpoint machinery, not topic inference, so a compact two-topic model
// keeps the experiment fast without changing what is measured.
func (l *Lab) persistModel() (*ksir.Model, error) {
	if l.persistM != nil {
		return l.persistM, nil
	}
	words := [][]string{
		{"goal", "striker", "keeper", "league", "derby", "penalty", "midfield", "champions"},
		{"dunk", "rebound", "playoffs", "court", "buzzer", "triple", "assist", "quarter"},
	}
	rng := rand.New(rand.NewSource(l.scale.Seed))
	texts := make([]string, 400)
	for i := range texts {
		ws := words[i%2]
		var b []string
		for j := 0; j < 6; j++ {
			b = append(b, ws[rng.Intn(len(ws))])
		}
		texts[i] = strings.Join(b, " ")
	}
	m, err := ksir.TrainModel(texts, ksir.WithTopics(2),
		ksir.WithIterations(l.scale.TopicIters), ksir.WithSeed(l.scale.Seed),
		ksir.WithPriors(0.5, 0.01))
	if err != nil {
		return nil, err
	}
	l.persistM = m
	return m, nil
}

// persistPosts generates n posts over the persist model's vocabulary with
// reference chains and bucket-crossing timestamps.
func persistPosts(n int, seed int64) []ksir.Post {
	words := []string{"goal", "striker", "keeper", "league", "derby", "penalty",
		"dunk", "rebound", "playoffs", "court", "buzzer", "triple"}
	rng := rand.New(rand.NewSource(seed))
	posts := make([]ksir.Post, n)
	ts := int64(60)
	for i := range posts {
		ts += int64(rng.Intn(8))
		var b []string
		for w := 0; w < 5; w++ {
			b = append(b, words[rng.Intn(len(words))])
		}
		p := ksir.Post{ID: int64(i + 1), Time: ts, Text: strings.Join(b, " ")}
		for r := 0; r < rng.Intn(3) && i > 0; r++ {
			p.Refs = append(p.Refs, int64(1+rng.Intn(i)))
		}
		posts[i] = p
	}
	return posts
}

var persistStreamOpts = ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 5}

// persistIngest feeds posts through a handle and returns the wall time.
func persistIngest(hs *ksir.StreamHandle, posts []ksir.Post) (time.Duration, error) {
	start := time.Now()
	for _, p := range posts {
		if err := hs.Add(p); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// Persist measures the durability subsystem (DESIGN.md §8): WAL append
// overhead on the ingest path under each fsync policy (the in-memory hub
// is the zero-overhead baseline), and crash-recovery time by stream size
// for WAL-only replay vs checkpoint restore.
func (l *Lab) Persist(sizes []int) (*Table, []BenchEntry, error) {
	model, err := l.persistModel()
	if err != nil {
		return nil, nil, err
	}
	if len(sizes) == 0 {
		sizes = []int{1000, 4000, 16000}
	}
	t := &Table{
		Title:  "Durability: WAL append overhead and recovery time vs stream size",
		Header: []string{"elements", "ingest mem (ms)", "wal never (ms)", "wal interval (ms)", "wal always (ms)", "recover wal (ms)", "recover ckpt (ms)"},
		Notes: []string{
			"ingest columns: same posts through an in-memory hub vs durable hubs per fsync policy",
			"recover columns: OpenHub after an unclean stop — full WAL replay vs checkpoint restore + empty WAL",
		},
	}
	var entries []BenchEntry

	for _, n := range sizes {
		posts := persistPosts(n, l.scale.Seed)

		// Baseline: no persistence.
		hub := ksir.NewHub()
		hs, err := hub.Create("bench", model, persistStreamOpts)
		if err != nil {
			return nil, nil, err
		}
		base, err := persistIngest(hs, posts)
		if err != nil {
			return nil, nil, err
		}

		// Durable ingest per fsync policy (fsync=never's directory is
		// reused for the recovery measurements below).
		ingest := map[ksir.FsyncPolicy]time.Duration{}
		var walDir string
		for _, policy := range []ksir.FsyncPolicy{ksir.FsyncNever, ksir.FsyncInterval, ksir.FsyncAlways} {
			dir, err := os.MkdirTemp("", "ksir-persist-*")
			if err != nil {
				return nil, nil, err
			}
			defer os.RemoveAll(dir)
			// CheckpointEvery is pushed out of reach so the ingest numbers
			// measure pure WAL appends and recovery replays every record.
			dhub, err := ksir.OpenHub(dir, model, ksir.PersistOptions{Fsync: policy, CheckpointEvery: 1 << 30})
			if err != nil {
				return nil, nil, err
			}
			dhs, err := dhub.Create("bench", model, persistStreamOpts)
			if err != nil {
				return nil, nil, err
			}
			ingest[policy], err = persistIngest(dhs, posts)
			if err != nil {
				return nil, nil, err
			}
			if policy == ksir.FsyncNever {
				walDir = dir // abandoned un-closed: the crash image
			} else if err := dhub.CloseAll(); err != nil {
				return nil, nil, err
			}
		}

		// Recovery from the crash image: WAL-only replay...
		startWAL := time.Now()
		rhub, err := ksir.OpenHub(walDir, model, ksir.PersistOptions{Fsync: ksir.FsyncNever})
		if err != nil {
			return nil, nil, err
		}
		recoverWAL := time.Since(startWAL)
		rhs, err := rhub.Get("bench")
		if err != nil {
			return nil, nil, err
		}
		// ...then checkpoint it and measure the restore path.
		if _, err := rhs.Checkpoint(); err != nil {
			return nil, nil, err
		}
		if err := rhub.CloseAll(); err != nil {
			return nil, nil, err
		}
		startCkpt := time.Now()
		chub, err := ksir.OpenHub(walDir, model, ksir.PersistOptions{Fsync: ksir.FsyncNever})
		if err != nil {
			return nil, nil, err
		}
		recoverCkpt := time.Since(startCkpt)
		if err := chub.CloseAll(); err != nil {
			return nil, nil, err
		}

		t.AddRow(fmt.Sprint(n),
			fmtMS(float64(base.Nanoseconds())),
			fmtMS(float64(ingest[ksir.FsyncNever].Nanoseconds())),
			fmtMS(float64(ingest[ksir.FsyncInterval].Nanoseconds())),
			fmtMS(float64(ingest[ksir.FsyncAlways].Nanoseconds())),
			fmtMS(float64(recoverWAL.Nanoseconds())),
			fmtMS(float64(recoverCkpt.Nanoseconds())))
		suffix := fmt.Sprintf("-n%d", n)
		perPost := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(n) / 1e3 }
		entries = append(entries,
			BenchEntry{Name: "persist-ingest-baseline" + suffix, Value: perPost(base), Unit: "Microseconds/post"},
			BenchEntry{Name: "persist-ingest-fsync-never" + suffix, Value: perPost(ingest[ksir.FsyncNever]), Unit: "Microseconds/post"},
			BenchEntry{Name: "persist-ingest-fsync-interval" + suffix, Value: perPost(ingest[ksir.FsyncInterval]), Unit: "Microseconds/post"},
			BenchEntry{Name: "persist-ingest-fsync-always" + suffix, Value: perPost(ingest[ksir.FsyncAlways]), Unit: "Microseconds/post"},
			BenchEntry{Name: "persist-recovery-wal" + suffix, Value: float64(recoverWAL.Nanoseconds()) / 1e6, Unit: "Milliseconds"},
			BenchEntry{Name: "persist-recovery-checkpoint" + suffix, Value: float64(recoverCkpt.Nanoseconds()) / 1e6, Unit: "Milliseconds"},
		)
	}
	if len(sizes) > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("sizes swept: %v (override with -elements)", sizes))
	}
	return t, entries, nil
}
