package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	ksir "github.com/social-streams/ksir"
)

// Tenancy measures stream hibernation (DESIGN.md §11): a durable hub
// serving many more streams than its residency budget allows in memory.
// Phase 1 ingests every stream under the budget (admission and the
// residency sweep keep the hot tier bounded while cold streams spill to
// their checkpoints); phase 2 drives a Zipf-distributed query workload
// across all streams, so popular streams stay hot while tail streams are
// lazily reactivated on touch — the reactivation cost is the experiment's
// headline percentile. The hub must stay correct and bounded at an
// overcommit of at least 10x (streams served / resident budget).
func (l *Lab) Tenancy(streams, postsPerStream, touches int) (*Table, []BenchEntry, error) {
	model, err := l.persistModel()
	if err != nil {
		return nil, nil, err
	}
	if streams <= 0 {
		streams = 64
	}
	if postsPerStream <= 0 {
		postsPerStream = 256
	}
	if touches <= 0 {
		touches = 200
	}
	budget := streams / 16
	if budget < 2 {
		budget = 2
	}

	dir, err := os.MkdirTemp("", "ksir-tenancy-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	// The sweep interval is pushed out of reach and EnforceResidency is
	// called at deterministic points instead, so the measured latencies
	// never race a background eviction pass.
	hub, err := ksir.OpenHub(dir, model, ksir.PersistOptions{
		Fsync: ksir.FsyncNever, MaxResidentStreams: budget, ResidencySweep: time.Hour,
	})
	if err != nil {
		return nil, nil, err
	}
	defer hub.CloseAll()

	// Phase 1: every stream ingests the same workload; enforcing after
	// each stream keeps at most budget+1 streams resident at any point.
	posts := persistPosts(postsPerStream, l.scale.Seed)
	ingestStart := time.Now()
	for i := 0; i < streams; i++ {
		hs, err := hub.Create(fmt.Sprintf("tenant-%03d", i), model, persistStreamOpts)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range posts {
			if err := hs.Add(p); err != nil {
				return nil, nil, err
			}
		}
		if _, err := hub.EnforceResidency(); err != nil {
			return nil, nil, err
		}
	}
	ingestWall := time.Since(ingestStart)

	// Phase 2: Zipf-skewed touches across the tenant population. A touch
	// of a non-resident stream pays a lazy reactivation (checkpoint load +
	// WAL tail replay) before answering; a touch of a hot stream pays
	// nothing. Admission evicts the coldest resident asynchronously, so
	// the budget holds across the churn.
	rng := rand.New(rand.NewSource(l.scale.Seed + 7))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(streams-1))
	q := ksir.Query{K: 5, Keywords: []string{"goal", "dunk"}}
	var activationLats []time.Duration
	var hotTouches int
	for i := 0; i < touches; i++ {
		name := fmt.Sprintf("tenant-%03d", int(zipf.Uint64()))
		hs, err := hub.Get(name)
		if err != nil {
			return nil, nil, err
		}
		wasResident := hs.Resident()
		t0 := time.Now()
		if _, err := hs.Query(nil, q); err != nil {
			return nil, nil, err
		}
		d := time.Since(t0)
		if wasResident {
			hotTouches++
		} else {
			activationLats = append(activationLats, d)
		}
	}
	// Settle into a known steady state before measuring the hot tier:
	// admission evictions are fire-and-forget, so immediately after the
	// churn some may still be queued behind stream writers and could land
	// after an enforcement pass. Touching the measured tenants last makes
	// them the warmest (any straggling eviction targets a colder stream),
	// and the blocking enforcement then trims exactly to the budget.
	for i := 0; i < budget; i++ {
		hs, err := hub.Get(fmt.Sprintf("tenant-%03d", i))
		if err != nil {
			return nil, nil, err
		}
		if _, err := hs.Query(nil, q); err != nil {
			return nil, nil, err
		}
	}
	if _, err := hub.EnforceResidency(); err != nil {
		return nil, nil, err
	}

	// Steady state after the churn: the hot tier is at the budget; its
	// per-stream footprint is the price of a resident tenant.
	var residentBytes int64
	resident := 0
	totalActivations := int64(0)
	for _, name := range hub.List() {
		hs, err := hub.Get(name)
		if err != nil {
			return nil, nil, err
		}
		st := hs.Stats()
		totalActivations += st.Residency.Activations
		if st.Residency.Resident {
			resident++
			residentBytes += st.Residency.ResidentBytes
		}
	}
	if resident == 0 || resident > budget {
		return nil, nil, fmt.Errorf("experiments: tenancy: %d resident streams outside (0, %d]", resident, budget)
	}
	bytesPerStream := float64(residentBytes) / float64(resident)

	// A hot stream's write path must be unaffected by the cold tier
	// around it: time adds into a stream that is already resident.
	hot, err := hub.Get("tenant-000")
	if err != nil {
		return nil, nil, err
	}
	if _, err := hot.Query(nil, q); err != nil { // ensure resident
		return nil, nil, err
	}
	hotStart := time.Now()
	for i := 0; i < postsPerStream; i++ {
		p := ksir.Post{ID: int64(1_000_000 + i), Time: int64(100_000 + i), Text: "goal striker derby dunk court"}
		if err := hot.Add(p); err != nil {
			return nil, nil, err
		}
	}
	hotWall := time.Since(hotStart)
	hotUsPerPost := float64(hotWall.Nanoseconds()) / float64(postsPerStream) / 1e3

	// Phase 3: predictive prefetch across a cold restart. The hub reopens
	// with the background prefetcher on; reconnect-style standing hints
	// (StreamHandle.Prefetch) mark the tail tenants and the sweep
	// reactivates them ahead of demand, so their next touch finds them
	// already hot — a prefetch hit skips the activation latency entirely.
	if err := hub.CloseAll(); err != nil {
		return nil, nil, err
	}
	hub2, err := ksir.OpenHub(dir, model, ksir.PersistOptions{
		Fsync: ksir.FsyncNever, MaxResidentStreams: budget, ResidencySweep: time.Hour,
		PrefetchSweep: 2 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	defer hub2.CloseAll()
	prefetchTargets := budget
	if prefetchTargets > streams {
		prefetchTargets = streams
	}
	targets := make([]*ksir.StreamHandle, 0, prefetchTargets)
	for i := 0; i < prefetchTargets; i++ {
		hs, err := hub2.Get(fmt.Sprintf("tenant-%03d", streams-1-i))
		if err != nil {
			return nil, nil, err
		}
		hs.Prefetch()
		targets = append(targets, hs)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := 0
		for _, hs := range targets {
			if hs.Resident() {
				ready++
			}
		}
		if ready == len(targets) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	prefetchHits := 0
	for _, hs := range targets {
		if _, err := hs.Query(nil, q); err != nil {
			return nil, nil, err
		}
		if hs.Stats().Residency.PrefetchHits > 0 {
			prefetchHits++
		}
	}
	hitRate := float64(prefetchHits) / float64(len(targets))

	sort.Slice(activationLats, func(i, j int) bool { return activationLats[i] < activationLats[j] })
	pct := func(q float64) time.Duration {
		if len(activationLats) == 0 {
			return 0
		}
		return activationLats[int(q*float64(len(activationLats)-1))]
	}
	p50, p99 := pct(0.50), pct(0.99)
	overcommit := float64(streams) / float64(budget)

	t := &Table{
		Title: "Massive tenancy: hibernated streams per resident budget, lazy reactivation cost",
		Header: []string{"streams", "budget", "overcommit", "cold touches", "hot touches",
			"activation p50 (ms)", "activation p99 (ms)", "resident KB/stream", "hot add µs/post", "prefetch hits"},
		Notes: []string{
			fmt.Sprintf("%d posts per stream; %d Zipf(1.2) touches; ingest wall %v", postsPerStream, touches, ingestWall.Round(time.Millisecond)),
			"cold touch = query against a hibernated stream: checkpoint restore + WAL tail replay before answering",
			"activation is lazy: only the query-serving buffer is built on the critical path (DESIGN.md §15)",
			"resident KB/stream: advisory footprint of the hot tier after the churn settles at the budget",
			fmt.Sprintf("%d activations total across the run", totalActivations),
			fmt.Sprintf("prefetch: cold reopen with a 2ms sweep, standing hints on the %d tail tenants", prefetchTargets),
		},
	}
	t.AddRow(fmt.Sprint(streams), fmt.Sprint(budget), fmt.Sprintf("%.1fx", overcommit),
		fmt.Sprint(len(activationLats)), fmt.Sprint(hotTouches),
		fmtMS(float64(p50.Nanoseconds())), fmtMS(float64(p99.Nanoseconds())),
		fmtF(bytesPerStream/1024, 1), fmtF(hotUsPerPost, 2),
		fmt.Sprintf("%d/%d", prefetchHits, prefetchTargets))

	entries := []BenchEntry{
		{Name: "tenancy-streams-served", Value: float64(streams), Unit: "streams",
			Extra: fmt.Sprintf("resident budget %d", budget)},
		{Name: "tenancy-overcommit", Value: overcommit, Unit: "x",
			Extra: "streams served per resident-budget slot"},
		{Name: "tenancy-activation-p50-ms", Value: float64(p50.Nanoseconds()) / 1e6, Unit: "Milliseconds",
			Extra: "lazy reactivation: checkpoint restore + WAL tail replay, median"},
		{Name: "tenancy-activation-p99-ms", Value: float64(p99.Nanoseconds()) / 1e6, Unit: "Milliseconds",
			Extra: "lazy reactivation, 99th percentile"},
		{Name: "tenancy-resident-bytes-per-stream", Value: bytesPerStream, Unit: "Bytes",
			Extra: "hot-tier footprint per resident stream after churn"},
		{Name: "tenancy-hot-add-us-per-post", Value: hotUsPerPost, Unit: "Microseconds/post",
			Extra: "ingest into an already-resident stream (cold tier must not tax it)"},
		{Name: "tenancy-prefetch-hit-rate", Value: hitRate, Unit: "fraction",
			Extra: "hinted cold tenants found resident at their next touch after a prefetch sweep"},
	}
	return t, entries, nil
}
