package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/dataset"
)

// tinyScale keeps the full pipeline (generate → train → infer → replay)
// fast enough for unit tests.
var tinyScale = Scale{Elements: 800, Queries: 8, TopicIters: 10, Seed: 7, WindowHours: 24}

func tinyLab() *Lab { return NewLab(tinyScale) }

func TestEnvConstruction(t *testing.T) {
	l := tinyLab()
	env, err := l.Env("Twitter", 10)
	if err != nil {
		t.Fatal(err)
	}
	if env.Model.Z != 10 {
		t.Errorf("Z = %d", env.Model.Z)
	}
	if len(env.Queries) != tinyScale.Queries {
		t.Errorf("queries = %d", len(env.Queries))
	}
	if env.WindowT <= 0 || env.BucketL <= 0 {
		t.Errorf("window %d bucket %d", env.WindowT, env.BucketL)
	}
	// Elements must have inferred topic vectors.
	withTopics := 0
	for _, e := range env.Data.Elements {
		if e.Topics.Len() > 0 {
			withTopics++
		}
	}
	if withTopics < len(env.Data.Elements)*9/10 {
		t.Errorf("only %d/%d elements have topics", withTopics, len(env.Data.Elements))
	}
	// Cache hit returns the same env.
	again, err := l.Env("Twitter", 10)
	if err != nil || again != env {
		t.Error("env not cached")
	}
	if _, err := l.Env("Nope", 10); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestReplayVisitsAllQueries(t *testing.T) {
	l := tinyLab()
	env, err := l.Env("Reddit", 10)
	if err != nil {
		t.Fatal(err)
	}
	g, err := env.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	err = env.Replay(g, func(_ *core.Engine, _ dataset.QuerySpec) error {
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(env.Queries) {
		t.Errorf("handled %d of %d queries", seen, len(env.Queries))
	}
	if g.NumActive() == 0 {
		t.Error("window empty after replay")
	}
}

func TestEpsSweepSmoke(t *testing.T) {
	l := tinyLab()
	fig7, fig8, err := l.EpsSweep([]float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Rows) != 2 || len(fig8.Rows) != 2 {
		t.Fatalf("rows: %d, %d", len(fig7.Rows), len(fig8.Rows))
	}
	// 1 + 3 datasets × 2 methods columns.
	if len(fig7.Header) != 7 {
		t.Errorf("fig7 header = %v", fig7.Header)
	}
	assertRendering(t, fig7)
	// Scores must be positive and non-increasing in eps for MTTD
	// (allowing small noise: just check positivity here).
	for _, row := range fig8.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v < 0 {
				t.Errorf("bad score cell %q", cell)
			}
		}
	}
}

func TestKSweepSmoke(t *testing.T) {
	l := tinyLab()
	fig9, fig10, fig11, err := l.KSweep([]int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig9) != 3 || len(fig10) != 3 || len(fig11) != 3 {
		t.Fatalf("tables per figure: %d/%d/%d", len(fig9), len(fig10), len(fig11))
	}
	for _, tab := range fig10 {
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				if !strings.HasSuffix(cell, "%") {
					t.Errorf("ratio cell %q not a percentage", cell)
				}
			}
		}
	}
	// MTTD's score should be >= 99% of CELF's on every row of fig11
	// (the paper's headline quality claim) — at tiny scale allow 95%.
	for _, tab := range fig11 {
		for _, row := range tab.Rows {
			celf, _ := strconv.ParseFloat(row[1], 64)
			mttd, _ := strconv.ParseFloat(row[2], 64)
			if celf > 0 && mttd < 0.95*celf {
				t.Errorf("%s row %s: MTTD %.4f << CELF %.4f", tab.Title, row[0], mttd, celf)
			}
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	l := tinyLab()
	tab, err := l.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	assertRendering(t, tab)
}

func TestTable6Smoke(t *testing.T) {
	l := tinyLab()
	tab, err := l.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 3 datasets × 2 metric rows
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// k-SIR column (last) coverage should not be the worst of the row.
	for i := 0; i < len(tab.Rows); i += 2 {
		row := tab.Rows[i]
		ksir, _ := strconv.ParseFloat(row[len(row)-1], 64)
		if ksir <= 0 {
			t.Errorf("k-SIR coverage %v on %s", ksir, row[0])
		}
	}
	assertRendering(t, tab)
}

func TestTable5Smoke(t *testing.T) {
	l := tinyLab()
	tab, err := l.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Scores are on the 1..5 scale.
	for _, row := range tab.Rows {
		for _, cell := range row[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v < 1 || v > 5 {
				t.Errorf("score cell %q out of 1..5", cell)
			}
		}
	}
	assertRendering(t, tab)
}

func assertRendering(t *testing.T, tab *Table) {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), tab.Title) {
		t.Error("render missing title")
	}
}
