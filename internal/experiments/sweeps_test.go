package experiments

import (
	"strconv"
	"testing"
)

func TestZSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("retrains topic models")
	}
	l := tinyLab()
	fig12, fig14z, err := l.ZSweep([]int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig12) != 3 {
		t.Fatalf("fig12 tables = %d", len(fig12))
	}
	for _, tab := range fig12 {
		if len(tab.Rows) != 2 {
			t.Errorf("%s rows = %d", tab.Title, len(tab.Rows))
		}
	}
	if len(fig14z.Rows) != 2 {
		t.Errorf("fig14z rows = %d", len(fig14z.Rows))
	}
	// Update times must be positive.
	for _, row := range fig14z.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v <= 0 {
				t.Errorf("update time cell %q", cell)
			}
		}
	}
	assertRendering(t, fig14z)
}

func TestTSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple stream replays")
	}
	l := tinyLab()
	fig13, fig14t, err := l.TSweep([]float64{6, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig13) != 3 {
		t.Fatalf("fig13 tables = %d", len(fig13))
	}
	for _, tab := range fig13 {
		if len(tab.Rows) != 2 {
			t.Errorf("%s rows = %d", tab.Title, len(tab.Rows))
		}
		// Larger T ⇒ more actives ⇒ CELF must not get faster by much;
		// just check cells parse as non-negative numbers.
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				if v, err := strconv.ParseFloat(cell, 64); err != nil || v < 0 {
					t.Errorf("cell %q", cell)
				}
			}
		}
	}
	if len(fig14t.Rows) != 2 {
		t.Errorf("fig14t rows = %d", len(fig14t.Rows))
	}
}
