package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/metrics"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/trace"
)

// The metrics-overhead experiment is the observability subsystem's
// admission test: recording must be cheap enough that the instrumented
// engine is indistinguishable from the uninstrumented one on the paper's
// hot paths. The true recording cost (a handful of uncontended atomic adds
// per bucket or query, plus the span recorder's per-op bookkeeping at the
// default sample rate) is far below the run-to-run noise of a whole
// benchmark pass on a shared machine, so whole-pass differencing cannot
// resolve a 2% gate. Instead the measurement interleaves the two sides at
// the finest grain the workload allows — metric AND trace recording are
// toggled together per-Ingest-call during replay and per-query during the
// query sweep (the instrumented side starts a span-recording op around
// each call, exactly as the hub pipeline does per write op), with a second
// pass on the opposite parity so every bucket and every query spec is
// measured once on each side. Scheduler drift, GC pacing and neighbor
// interference then hit both sides identically, and only the recording
// cost separates them. CI gates the result
// (ksir-bench -metrics-overhead-pct).

// overheadStats is one side of the instrumented/uninstrumented pair.
type overheadStats struct {
	AddPerElem float64 // µs, wall-clock ingest per element
	QueryP99   float64 // ms
}

// measureOverheadRound runs one fully interleaved round: two replays with
// opposite toggle parity (each Ingest call timed into its side's bucket)
// and two interleaved query sweeps. The query sweep's on/off assignment is
// a shuffled half-and-half split (seeded per round, complemented in the
// second phase so every slot is measured once per side) rather than strict
// alternation: periodic interference — a GC cycle firing every N allocating
// queries, an OS tick — would align with one parity of an alternating
// pattern and masquerade as recording overhead in the tail.
func measureOverheadRound(env *Env, round, queries int) (with, without overheadStats, specOn, specOff [][]float64, err error) {
	var wallOn, wallOff time.Duration
	var elemsOn, elemsOff int
	var g *core.Engine
	specOn = make([][]float64, len(env.Queries))
	specOff = make([][]float64, len(env.Queries))

	assign := make([]bool, queries)
	for i := range assign {
		assign[i] = i%2 == 0
	}
	rng := rand.New(rand.NewSource(int64(round) + 1))
	rng.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })

	for phase := 0; phase < 2; phase++ {
		// Start each phase from a collected heap so a collection triggered
		// by the previous phase's garbage doesn't land mid-measurement.
		runtime.GC()
		fresh, err := env.NewEngine(0)
		if err != nil {
			return with, without, nil, nil, err
		}
		call := phase
		if err := replayToggled(env, fresh, &call, &wallOn, &wallOff, &elemsOn, &elemsOff); err != nil {
			return with, without, nil, nil, err
		}
		g = fresh

		for i := 0; i < queries; i++ {
			si := i % len(env.Queries)
			spec := env.Queries[si]
			on := assign[i] == (phase == 0)
			if on {
				metrics.Enable()
				trace.Enable()
			} else {
				metrics.Disable()
				trace.Disable()
			}
			qs := time.Now()
			// The instrumented side pays the full production tracing path:
			// head-sampling decision, context plumbing, and (for sampled
			// ops) the query's snapshot.pin/query.descend span recording.
			op := trace.Start("bench.query", "bench", trace.SpanContext{})
			ctx := trace.ContextWith(context.Background(), op)
			if _, err := g.QueryContext(ctx, core.Query{K: 10, X: spec.X, Epsilon: 0.1, Algorithm: core.MTTD}); err != nil {
				metrics.Enable()
				trace.Enable()
				return with, without, nil, nil, err
			}
			op.End()
			d := float64(time.Since(qs).Nanoseconds())
			if on {
				specOn[si] = append(specOn[si], d)
			} else {
				specOff[si] = append(specOff[si], d)
			}
		}
	}
	metrics.Enable()
	trace.Enable()

	with = overheadStats{AddPerElem: float64(wallOn.Nanoseconds()) / float64(elemsOn) / 1e3}
	without = overheadStats{AddPerElem: float64(wallOff.Nanoseconds()) / float64(elemsOff) / 1e3}
	return with, without, specOn, specOff, nil
}

// replayToggled feeds the stream through g exactly as Env.Replay does, but
// times every Ingest call individually and alternates metric recording
// on/off between calls (starting on the parity *call points at). Buckets
// differ in size and content, which is why the caller runs a second phase
// with opposite parity: summed over both phases, each side has timed every
// bucket exactly once.
func replayToggled(env *Env, g *core.Engine, call *int,
	wallOn, wallOff *time.Duration, elemsOn, elemsOff *int) error {
	buckets, err := stream.Partition(env.Data.Elements, env.BucketL)
	if err != nil {
		return err
	}
	for _, b := range buckets {
		on := *call%2 == 0
		*call++
		if on {
			metrics.Enable()
			trace.Enable()
		} else {
			metrics.Disable()
			trace.Disable()
		}
		start := time.Now()
		// Mirror the hub pipeline's per-op tracing: one op per ingest with
		// an engine.apply child, recorded inside the timed window so the
		// instrumented side pays the production span cost at the default
		// sample rate (the disabled side pays only the nil-op checks).
		op := trace.Start("bench.ingest", "bench", trace.SpanContext{})
		if err := g.Ingest(b.End, b.Elems); err != nil {
			metrics.Enable()
			trace.Enable()
			return err
		}
		op.Child("engine.apply", start, time.Since(start))
		op.End()
		d := time.Since(start)
		if on {
			*wallOn += d
			*elemsOn += len(b.Elems)
		} else {
			*wallOff += d
			*elemsOff += len(b.Elems)
		}
	}
	return nil
}

// signedPct is the relative cost of with over without, in percent; negative
// when noise makes the instrumented side come out faster.
func signedPct(with, without float64) float64 {
	if without <= 0 {
		return 0
	}
	return (with/without - 1) * 100
}

// medianPct is the median of per-round signed overheads, clamped at zero.
// The median discards rounds where an interference spike still managed to
// hit one side harder.
func medianPct(pcts []float64) float64 {
	cp := append([]float64(nil), pcts...)
	sort.Float64s(cp)
	var med float64
	if n := len(cp); n%2 == 1 {
		med = cp[n/2]
	} else if n > 0 {
		med = (cp[n/2-1] + cp[n/2]) / 2
	}
	if med < 0 {
		return 0
	}
	return med
}

// medianOf returns the median of samples (0 when empty).
func medianOf(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	if n := len(cp); n%2 == 1 {
		return cp[n/2]
	} else {
		return (cp[n/2-1] + cp[n/2]) / 2
	}
}

// specTailP99 estimates the query p99 from per-spec samples: each spec's
// latency collapses to its median (dozens of samples per spec, so a
// scheduler spike or neighbor burst cannot move it), and the p99 is taken
// over the spec medians weighted by how often each spec ran. The engine's
// p50→p99 spread is spec heterogeneity — some keyword vectors force much
// deeper MTTD descents — so the weighted median distribution preserves the
// real tail shape while shedding the one thing raw order statistics above
// ~p95 are made of on a shared machine: interference spikes. A real
// recording cost shifts every spec's median and therefore the estimate.
func specTailP99(spec [][]float64) float64 {
	var weighted []float64
	for _, samples := range spec {
		med := medianOf(samples)
		for range samples {
			weighted = append(weighted, med)
		}
	}
	sort.Float64s(weighted)
	return quantileSorted(weighted, 0.99)
}

// MetricsOverhead measures the recording cost of the observability
// subsystem on the engine hot paths: `rounds` interleaved rounds (see
// measureOverheadRound). The add overhead is the median of per-round
// paired deltas; the query overhead compares per-side spec-median tail
// estimates over samples pooled across every round (see specTailP99) — raw
// pooled p99s differ by several percent run to run because the extreme
// order statistics are owned by bursty interference, which lands on either
// side arbitrarily. Automatic GC is disabled for the duration (explicit
// collections run between phases): background mark assists are the one
// tail source that strict interleaving cannot split evenly. Recording is
// re-enabled on return regardless of outcome.
func (l *Lab) MetricsOverhead(rounds, queries int) (*Table, []BenchEntry, error) {
	env, err := l.Env("Twitter", 50)
	if err != nil {
		return nil, nil, err
	}
	if rounds <= 0 {
		rounds = 5
	}
	// A p99 needs depth behind it: with n samples per side the estimate is
	// the ~n/100-th largest order statistic, and below a few hundred
	// samples a single scheduler spike owns it. Queries are ~0.2ms here, so
	// the floor costs well under a second per round.
	if queries < 400 {
		queries = 400
	}
	defer metrics.Enable()
	defer trace.Enable()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Bench ops must measure recording cost, not trip the slow-op log (a
	// replayed bucket can exceed the production threshold).
	rec := trace.Default()
	oldSlow := rec.SlowThreshold()
	rec.SetSlowThreshold(0)
	defer rec.SetSlowThreshold(oldSlow)

	// Discarded warmup: the first replay pays one-time costs (page faults,
	// branch/cache warmup, lazily grown runtime structures).
	if _, _, _, _, err := measureOverheadRound(env, -1, queries); err != nil {
		return nil, nil, err
	}

	var bestWith, bestWithout overheadStats
	var addPcts []float64
	specOn := make([][]float64, len(env.Queries))
	specOff := make([][]float64, len(env.Queries))
	for r := 0; r < rounds; r++ {
		with, without, on, off, err := measureOverheadRound(env, r, queries)
		if err != nil {
			return nil, nil, err
		}
		for si := range on {
			specOn[si] = append(specOn[si], on[si]...)
			specOff[si] = append(specOff[si], off[si]...)
		}
		if r == 0 || with.AddPerElem < bestWith.AddPerElem {
			bestWith.AddPerElem = with.AddPerElem
		}
		if r == 0 || without.AddPerElem < bestWithout.AddPerElem {
			bestWithout.AddPerElem = without.AddPerElem
		}
		addPcts = append(addPcts, signedPct(with.AddPerElem, without.AddPerElem))
	}
	bestWith.QueryP99 = specTailP99(specOn) / 1e6
	bestWithout.QueryP99 = specTailP99(specOff) / 1e6
	addPct := medianPct(addPcts)
	queryPct := medianPct([]float64{signedPct(bestWith.QueryP99, bestWithout.QueryP99)})

	t := &Table{
		Title: fmt.Sprintf("Metrics+tracing recording overhead: instrumented vs uninstrumented engine (Twitter, z=50, %d interleaved rounds)",
			rounds),
		Header: []string{"side", "add/elem (µs)", "query p99 (ms)"},
	}
	t.AddRow("uninstrumented", fmtF(bestWithout.AddPerElem, 2), fmtF(bestWithout.QueryP99, 2))
	t.AddRow("instrumented", fmtF(bestWith.AddPerElem, 2), fmtF(bestWith.QueryP99, 2))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"metric+trace recording overhead: %.2f%% on add, %.2f%% on query p99 (CI gate: ksir-bench -metrics-overhead-pct)",
		addPct, queryPct))

	entries := []BenchEntry{
		{Name: "engine-add-us-per-element-instrumented", Value: bestWith.AddPerElem, Unit: "Microseconds"},
		{Name: "engine-add-us-per-element-uninstrumented", Value: bestWithout.AddPerElem, Unit: "Microseconds"},
		{Name: "engine-query-p99-instrumented", Value: bestWith.QueryP99, Unit: "Milliseconds"},
		{Name: "engine-query-p99-uninstrumented", Value: bestWithout.QueryP99, Unit: "Milliseconds"},
		{Name: "engine-metrics-overhead-add-pct", Value: addPct, Unit: "Percent",
			Extra: "ingest cost of metric+trace recording (default sample rate), median of per-round interleaved deltas"},
		{Name: "engine-metrics-overhead-query-p99-pct", Value: queryPct, Unit: "Percent",
			Extra: "query tail cost of metric+trace recording, weighted p99 over per-spec median latencies pooled across rounds"},
	}
	return t, entries, nil
}
