package experiments

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	ksir "github.com/social-streams/ksir"
)

// ingestCommitWindow is the opt-in commit window the open-loop rows run
// with: several inter-arrival gaps long, so a paced arrival stream lands
// many posts in one batch (and one fsync), yet short enough that the
// added commit latency stays in single-digit milliseconds.
const ingestCommitWindow = 2 * time.Millisecond

// ingestArrivalGap paces the open-loop cells: one post every gap from an
// independent goroutine, arrivals never gated on completions. At 250µs
// the offered load (~4k posts/s) is near the serialized FsyncAlways
// capacity, the regime where amortizing the fsync pays.
const ingestArrivalGap = 250 * time.Microsecond

// ingestCellResult is one cell of the ingest matrix.
type ingestCellResult struct {
	wall        time.Duration
	p99         time.Duration // 0 unless the cell sampled reader latency
	batchSize   float64       // realized mean commit-batch size
	fsyncsPerOp float64
}

// ingestCell runs one cell: n posts at one shared timestamp pushed by p
// concurrent producers through a hub configured with the given fsync
// policy (mem == no persistence) and writer mode.
//
// All measured posts share one timestamp, so acceptance never depends on
// producer interleaving and no bucket boundary crosses the measurement:
// the cell isolates the writer path (tokenize + infer + pend + WAL),
// which is exactly what the serialized-vs-pipelined comparison is about.
// A pre-seeded, flushed snapshot keeps concurrent readers honest when the
// cell samples query latency.
func (l *Lab) ingestCell(model *ksir.Model, policy string, producers, n int, serialized, measureP99 bool) (ingestCellResult, error) {
	var res ingestCellResult
	var hub *ksir.Hub
	switch policy {
	case "mem":
		if serialized {
			hub = ksir.NewHub(ksir.WithSerializedWriter())
		} else {
			hub = ksir.NewHub()
		}
	default:
		fp, err := ksir.ParseFsyncPolicy(policy)
		if err != nil {
			return res, err
		}
		dir, err := os.MkdirTemp("", "ksir-ingest-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		hub, err = ksir.OpenHub(dir, model, ksir.PersistOptions{
			Fsync: fp, CheckpointEvery: 1 << 30, SerializedWriter: serialized,
		})
		if err != nil {
			return res, err
		}
	}
	defer hub.CloseAll()
	hs, err := hub.Create("bench", model, persistStreamOpts)
	if err != nil {
		return res, err
	}

	// Seed a queryable snapshot: posts across the minute-long buckets
	// before the measured timestamp, flushed so readers have a published
	// bucket to pin while the writers run.
	seedWords := []string{"goal striker keeper", "dunk rebound playoffs", "league derby penalty", "court buzzer triple"}
	for i := 0; i < 256; i++ {
		p := ksir.Post{ID: int64(1_000_000 + i), Time: int64(60 + 2*i), Text: seedWords[i%len(seedWords)]}
		if err := hs.Add(p); err != nil {
			return res, err
		}
	}
	if err := hs.Flush(600); err != nil {
		return res, err
	}
	before := hs.Stats().Pipeline

	var lats []time.Duration
	var latMu sync.Mutex
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	if measureP99 {
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				q := ksir.Query{K: 5, Keywords: []string{"goal", "dunk"}}
				for {
					select {
					case <-stopReaders:
						return
					default:
					}
					t0 := time.Now()
					if _, err := hs.Query(context.Background(), q); err != nil {
						return
					}
					d := time.Since(t0)
					latMu.Lock()
					lats = append(lats, d)
					latMu.Unlock()
					// Sample, don't saturate: a spinning reader on a
					// small host would benchmark the scheduler, not the
					// query path.
					time.Sleep(time.Millisecond)
				}
			}()
		}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var werrMu sync.Mutex
	var werr error
	start := time.Now()
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(n) {
					return
				}
				if err := hs.Add(ksir.Post{ID: i, Time: 700, Text: "goal striker derby dunk court"}); err != nil {
					werrMu.Lock()
					werr = err
					werrMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	res.wall = time.Since(start)
	close(stopReaders)
	readers.Wait()
	if werr != nil {
		return res, werr
	}
	after := hs.Stats().Pipeline
	if dOps := after.Ops - before.Ops; dOps > 0 {
		if dBatches := after.Batches - before.Batches; dBatches > 0 {
			res.batchSize = float64(dOps) / float64(dBatches)
		}
		res.fsyncsPerOp = float64(after.Fsyncs-before.Fsyncs) / float64(dOps)
	}
	if measureP99 && len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.p99 = lats[len(lats)*99/100]
	}
	return res, nil
}

// ingestOpenLoopCell runs the commit-window cell: an open-loop arrival
// process (one goroutine per post, issued every gap, arrivals never gated
// on completions) against a pipelined FsyncAlways hub. This is the regime
// PersistOptions.CommitWindow exists for — closed-loop producers can only
// enqueue after the previous commit completes, so a window just adds its
// own wait there, while paced independent arrivals land inside the open
// window and share its fsync. p99 in the result is the post's completion
// latency (submit to durable), the cost side of the trade.
func (l *Lab) ingestOpenLoopCell(model *ksir.Model, gap time.Duration, n int, commitWindow time.Duration) (ingestCellResult, error) {
	var res ingestCellResult
	dir, err := os.MkdirTemp("", "ksir-ingest-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	hub, err := ksir.OpenHub(dir, model, ksir.PersistOptions{
		Fsync: ksir.FsyncAlways, CheckpointEvery: 1 << 30, CommitWindow: commitWindow,
	})
	if err != nil {
		return res, err
	}
	defer hub.CloseAll()
	hs, err := hub.Create("bench", model, persistStreamOpts)
	if err != nil {
		return res, err
	}
	before := hs.Stats().Pipeline

	lats := make([]time.Duration, n)
	var wg sync.WaitGroup
	var werrMu sync.Mutex
	var werr error
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			err := hs.Add(ksir.Post{ID: int64(i + 1), Time: 700, Text: "goal striker derby dunk court"})
			lats[i] = time.Since(t0)
			if err != nil {
				werrMu.Lock()
				werr = err
				werrMu.Unlock()
			}
		}(i)
		time.Sleep(gap)
	}
	wg.Wait()
	res.wall = time.Since(start)
	if werr != nil {
		return res, werr
	}
	after := hs.Stats().Pipeline
	if dOps := after.Ops - before.Ops; dOps > 0 {
		if dBatches := after.Batches - before.Batches; dBatches > 0 {
			res.batchSize = float64(dOps) / float64(dBatches)
		}
		res.fsyncsPerOp = float64(after.Fsyncs-before.Fsyncs) / float64(dOps)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.p99 = lats[len(lats)*99/100]
	return res, nil
}

// Ingest measures the writer pipeline (DESIGN.md §10): ingest throughput
// by fsync policy and producer count, with the serialized (pre-pipeline)
// writer as the baseline. The headline cell is fsync=always at the
// highest producer count, where group commit amortizes one fsync over a
// whole commit batch; the mem/never/interval rows bound how much of the
// win is fsync sharing vs writer-convoy removal. At the headline cell
// both modes also sample the p99 of queries issued concurrently with the
// saturated writer (queries are lock-free, so the pipeline must leave
// them untouched).
func (l *Lab) Ingest(producerCounts []int, n int) (*Table, []BenchEntry, error) {
	model, err := l.persistModel()
	if err != nil {
		return nil, nil, err
	}
	if len(producerCounts) == 0 {
		producerCounts = []int{1, 8, 64}
	}
	if n <= 0 {
		n = 4096
	}
	maxP := producerCounts[len(producerCounts)-1]

	t := &Table{
		Title: "Writer pipeline: ingest throughput (posts/sec), serialized vs group-commit",
		Header: []string{"fsync", "producers", "serialized p/s", "pipelined p/s", "speedup",
			"batch size", "fsyncs/op"},
		Notes: []string{
			fmt.Sprintf("%d posts per cell, one shared timestamp (pure writer path, no bucket boundary mid-run)", n),
			"batch size / fsyncs/op: realized pipeline coalescing at that concurrency (pipelined runs)",
			"mem = in-memory hub (no WAL): isolates writer-convoy removal from fsync sharing",
			fmt.Sprintf("open-loop rows: posts arrive every %v from independent goroutines (never gated on completions) at fsync=always; always+cw opts into the %v commit window, which holds the batch open so paced arrivals share one fsync — closed-loop producers would only pay the window's latency, so the window is measured here instead", ingestArrivalGap, ingestCommitWindow),
		},
	}
	var entries []BenchEntry
	perSec := func(d time.Duration) float64 { return float64(n) / d.Seconds() }
	usPerPost := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(n) / 1e3 }

	for _, policy := range []string{"mem", "never", "interval", "always"} {
		for _, p := range producerCounts {
			headline := policy == "always" && p == maxP
			ser, err := l.ingestCell(model, policy, p, n, true, headline)
			if err != nil {
				return nil, nil, err
			}
			pip, err := l.ingestCell(model, policy, p, n, false, headline)
			if err != nil {
				return nil, nil, err
			}
			speedup := perSec(pip.wall) / perSec(ser.wall)
			t.AddRow(policy, fmt.Sprint(p),
				fmt.Sprintf("%.0f", perSec(ser.wall)),
				fmt.Sprintf("%.0f", perSec(pip.wall)),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%.1f", pip.batchSize),
				fmt.Sprintf("%.3f", pip.fsyncsPerOp))
			suffix := fmt.Sprintf("-%s-p%d", policy, p)
			entries = append(entries,
				BenchEntry{Name: "ingest-serialized" + suffix, Value: perSec(ser.wall), Unit: "posts/sec"},
				BenchEntry{Name: "ingest-pipelined" + suffix, Value: perSec(pip.wall), Unit: "posts/sec"},
				BenchEntry{Name: "ingest-us-per-post-pipelined" + suffix, Value: usPerPost(pip.wall), Unit: "Microseconds/post"},
			)
			if policy == "always" {
				entries = append(entries, BenchEntry{
					Name: "ingest-group-commit-speedup" + suffix, Value: speedup, Unit: "x",
					Extra: "pipelined/serialized posts-per-second ratio",
				})
			}
			if headline {
				if pip.p99 > 0 {
					entries = append(entries, BenchEntry{
						Name:  fmt.Sprintf("ingest-query-p99-pipelined-always-p%d", p),
						Value: float64(pip.p99.Nanoseconds()) / 1e6, Unit: "Milliseconds",
						Extra: "query p99 concurrent with saturated pipelined ingest",
					})
				}
				if ser.p99 > 0 {
					entries = append(entries, BenchEntry{
						Name:  fmt.Sprintf("ingest-query-p99-serialized-always-p%d", p),
						Value: float64(ser.p99.Nanoseconds()) / 1e6, Unit: "Milliseconds",
						Extra: "query p99 concurrent with saturated serialized ingest",
					})
				}
			}
		}
	}

	// The commit-window pair: the same paced open-loop arrival stream with
	// the window off and on. The win shows up as fewer fsyncs per post and
	// bigger batches; the price shows up as the completion-latency p99
	// (a post can wait out the whole window before its shared fsync).
	rate := fmt.Sprintf("%.0f/s", float64(time.Second)/float64(ingestArrivalGap))
	for _, cw := range []time.Duration{0, ingestCommitWindow} {
		res, err := l.ingestOpenLoopCell(model, ingestArrivalGap, n, cw)
		if err != nil {
			return nil, nil, err
		}
		label, suffix := "always open", "-openloop-always"
		if cw > 0 {
			label, suffix = "always+cw open", "-openloop-always+cw"
		}
		t.AddRow(label, rate, "-",
			fmt.Sprintf("%.0f", perSec(res.wall)),
			"-",
			fmt.Sprintf("%.1f", res.batchSize),
			fmt.Sprintf("%.3f", res.fsyncsPerOp))
		entries = append(entries,
			BenchEntry{Name: "ingest-fsyncs-per-op" + suffix, Value: res.fsyncsPerOp, Unit: "fsyncs/post",
				Extra: "open-loop paced arrivals at fsync=always"},
			BenchEntry{Name: "ingest-add-p99" + suffix, Value: float64(res.p99.Nanoseconds()) / 1e6, Unit: "Milliseconds",
				Extra: "post completion latency p99 (submit to durable), open-loop arrivals"},
		)
	}
	return t, entries, nil
}
