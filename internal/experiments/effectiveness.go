package experiments

import (
	"fmt"

	"github.com/social-streams/ksir/internal/baselines"
	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/dataset"
	"github.com/social-streams/ksir/internal/evalmetrics"
	"github.com/social-streams/ksir/internal/judge"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// effectivenessMethods is the Table 5/6 comparison set in paper order.
var effectivenessMethods = []string{"TF-IDF", "DIV", "Sumblr", "REL", "k-SIR"}

// runMethods produces each comparator's result set for one query against
// the engine's current window. k-SIR uses MTTD, as §5.1 prescribes.
func runMethods(g *core.Engine, env *Env, q dataset.QuerySpec, k int) ([]judge.ResultSet, error) {
	actives := Actives(g)
	tfidf := baselines.TFIDFTopK(actives, env.TFIDF, q.Keywords, k)
	div := baselines.DivTopK(actives, env.TFIDF, q.Keywords, k, 0.3)
	sumblr := baselines.Sumblr(actives, env.TFIDF, q.Keywords, k, env.Model.Z,
		baselines.SumblrConfig{Seed: env.scale.Seed})
	rel := baselines.RelTopK(actives, q.X, k)
	res, err := g.Query(core.Query{K: k, X: q.X, Epsilon: 0.1, Algorithm: core.MTTD})
	if err != nil {
		return nil, err
	}
	return []judge.ResultSet{
		{Method: "TF-IDF", Elements: tfidf},
		{Method: "DIV", Elements: div},
		{Method: "Sumblr", Elements: sumblr},
		{Method: "REL", Elements: rel},
		{Method: "k-SIR", Elements: res.Elements},
	}, nil
}

// Table5 reproduces the user study: 20 trending-topic queries per dataset,
// result sets of 5 elements, a simulated panel of evaluators ranking each
// method on representativeness and impact (ranks mapped to 1–5), and mean
// pairwise weighted kappa for agreement. See DESIGN.md §3 for the
// human-panel substitution.
func (l *Lab) Table5() (*Table, error) {
	const k = 5
	// The paper uses 20 human-judged queries; simulated judges are cheap,
	// so run twice as many to damp rank-flip noise on close calls.
	const queriesPerDataset = 40
	t := &Table{
		Title:  "Table 5: results for (simulated) user study",
		Header: append([]string{"Dataset", "Aspect"}, effectivenessMethods...),
	}
	for _, name := range DatasetNames() {
		env, err := l.Env(name, 50)
		if err != nil {
			return nil, err
		}
		g, err := env.NewEngine(0)
		if err != nil {
			return nil, err
		}
		// Trending-topic queries: frequent topical words, issued against
		// the final window state (the paper picks 20 trending topics).
		queries := trendingQueries(env, queriesPerDataset)
		if err := env.Replay(g, nil); err != nil {
			return nil, err
		}
		actives := Actives(g)
		var xs []topicmodel.TopicVec
		var sets [][]judge.ResultSet
		for _, q := range queries {
			rs, err := runMethods(g, env, q, k)
			if err != nil {
				return nil, err
			}
			xs = append(xs, q.X)
			sets = append(sets, rs)
		}
		panel := judge.NewPanel(3, 0.08, env.scale.Seed+7)
		study, err := panel.RunStudy(g.Window(), actives, xs, sets)
		if err != nil {
			return nil, err
		}
		reprRow := []string{name, "Represent."}
		impactRow := []string{"", "Impact"}
		for _, m := range effectivenessMethods {
			s := study.PerMethod[m]
			reprRow = append(reprRow, fmtF(s.Representativeness, 2))
			impactRow = append(impactRow, fmtF(s.Impact, 2))
		}
		t.Rows = append(t.Rows, reprRow, impactRow)
		t.Notes = append(t.Notes, fmt.Sprintf("%s: kappa(represent)=%.2f kappa(impact)=%.2f",
			name, study.KappaRepresent, study.KappaImpact))
	}
	t.Notes = append(t.Notes,
		"paper shape: k-SIR highest on both aspects in all datasets (4.3-4.9); Sumblr second; TF-IDF/DIV/REL low",
		"scores are simulated-judge rankings mapped to 1..5 — see DESIGN.md for the substitution rationale")
	return t, nil
}

// trendingQueries builds queries from the most frequent topical words
// (excluding the generator's background slice, which plays the role of
// common words).
func trendingQueries(env *Env, n int) []dataset.QuerySpec {
	top := env.Data.Vocab.TopWords(n * 6)
	var queries []dataset.QuerySpec
	for i := 0; i+3 <= len(top) && len(queries) < n; i += 3 {
		var kws []textproc.WordID
		for j := i; j < i+3; j++ {
			if id, ok := env.Data.Vocab.ID(top[j]); ok {
				kws = append(kws, id)
			}
		}
		x := env.Inf.InferDense(kws).Truncate(8, 0.02)
		if x.Len() == 0 {
			continue
		}
		queries = append(queries, dataset.QuerySpec{Keywords: kws, X: x, At: env.Profile.Duration})
	}
	return queries
}

// Table6 reproduces the quantitative effectiveness analysis: average
// coverage and normalized influence of each method's result sets over a
// sample of workload queries.
func (l *Lab) Table6() (*Table, error) {
	const k = 10
	t := &Table{
		Title:  "Table 6: results for quantitative analysis",
		Header: append([]string{"Dataset", "Metric"}, effectivenessMethods...),
	}
	for _, name := range DatasetNames() {
		env, err := l.Env(name, 50)
		if err != nil {
			return nil, err
		}
		g, err := env.NewEngine(0)
		if err != nil {
			return nil, err
		}
		cov := make(map[string]float64)
		infl := make(map[string]float64)
		count := 0
		err = env.Replay(g, func(g *core.Engine, q dataset.QuerySpec) error {
			sets, err := runMethods(g, env, q, k)
			if err != nil {
				return err
			}
			actives := Actives(g)
			for _, rs := range sets {
				cov[rs.Method] += evalmetrics.Coverage(actives, rs.Elements, q.X, evalmetrics.TopicSim)
				infl[rs.Method] += evalmetrics.Influence(g.Window(), rs.Elements, k)
			}
			count++
			return nil
		})
		if err != nil {
			return nil, err
		}
		covRow := []string{name, "Coverage"}
		inflRow := []string{"", "Influence"}
		for _, m := range effectivenessMethods {
			c, f := 0.0, 0.0
			if count > 0 {
				c, f = cov[m]/float64(count), infl[m]/float64(count)
			}
			covRow = append(covRow, fmtF(c, 4))
			inflRow = append(inflRow, fmtF(f, 4))
		}
		t.Rows = append(t.Rows, covRow, inflRow)
	}
	t.Notes = append(t.Notes,
		"paper shape: k-SIR best coverage everywhere; k-SIR and Sumblr dominate influence (only they model it); k-SIR > Sumblr")
	return t, nil
}

// Table3 reports the generated datasets' statistics in the paper's format.
func (l *Lab) Table3() (*Table, error) {
	t := &Table{
		Title:  "Table 3: statistics of (synthetic) datasets",
		Header: []string{"Dataset", "Elements", "Vocabulary", "AvgLen", "AvgRefs"},
	}
	for _, name := range DatasetNames() {
		env, err := l.Env(name, 50)
		if err != nil {
			return nil, err
		}
		st := env.Data.ComputeStats()
		t.AddRow(name, fmt.Sprint(st.Elements), fmt.Sprint(st.VocabSize),
			fmtF(st.AvgLen, 1), fmtF(st.AvgRefs, 2))
	}
	t.Notes = append(t.Notes,
		"full-size shape (Table 3): avg len 49.2/8.6/5.1, avg refs 3.68/0.85/0.62; vocabulary scales sublinearly with stream size")
	return t, nil
}
