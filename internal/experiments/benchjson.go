package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// BenchEntry is one machine-readable benchmark data point in the
// github-action-benchmark "custom" tool format (an array of
// name/value/unit entries, the idiom soci-snapshotter's perf trajectory
// uses), so successive commits can be charted without parsing the text
// tables.
type BenchEntry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// WriteBenchJSON writes entries as an indented JSON array at path
// (conventionally BENCH_<experiment>.json).
func WriteBenchJSON(path string, entries []BenchEntry) error {
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("experiments: writing bench json: %w", err)
	}
	return nil
}

// ReadBenchJSON loads a BENCH_*.json file and validates its schema: a
// non-empty array of name/value/unit entries with no unknown fields, no
// duplicate names, and finite values. The CI bench smoke step runs this
// against both the freshly produced file and the committed baseline, so a
// malformed trajectory file fails loudly instead of charting garbage.
func ReadBenchJSON(path string) ([]BenchEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: reading bench json: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var entries []BenchEntry
	if err := dec.Decode(&entries); err != nil {
		return nil, fmt.Errorf("experiments: %s: malformed bench json: %w", path, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("experiments: %s: no bench entries", path)
	}
	seen := make(map[string]struct{}, len(entries))
	for i, e := range entries {
		if e.Name == "" || e.Unit == "" {
			return nil, fmt.Errorf("experiments: %s: entry %d missing name or unit", path, i)
		}
		if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
			return nil, fmt.Errorf("experiments: %s: entry %q has non-finite value", path, e.Name)
		}
		if _, dup := seen[e.Name]; dup {
			return nil, fmt.Errorf("experiments: %s: duplicate entry %q", path, e.Name)
		}
		seen[e.Name] = struct{}{}
	}
	return entries, nil
}

// CompareBenchJSON is the regression gate of the perf trajectory: the
// metric's value in newPath must not exceed maxRatio times its value in
// basePath (both files are schema-validated first). It reports the two
// values on success so CI logs carry the trend.
func CompareBenchJSON(newPath, basePath, metric string, maxRatio float64) (fresh, base float64, err error) {
	find := func(entries []BenchEntry, path string) (float64, error) {
		for _, e := range entries {
			if e.Name == metric {
				return e.Value, nil
			}
		}
		return 0, fmt.Errorf("experiments: %s: metric %q not found", path, metric)
	}
	newEntries, err := ReadBenchJSON(newPath)
	if err != nil {
		return 0, 0, err
	}
	baseEntries, err := ReadBenchJSON(basePath)
	if err != nil {
		return 0, 0, err
	}
	if fresh, err = find(newEntries, newPath); err != nil {
		return 0, 0, err
	}
	if base, err = find(baseEntries, basePath); err != nil {
		return 0, 0, err
	}
	if base > 0 && fresh > maxRatio*base {
		return fresh, base, fmt.Errorf("experiments: %q regressed: %.3f vs baseline %.3f (limit %.1fx)",
			metric, fresh, base, maxRatio)
	}
	return fresh, base, nil
}
