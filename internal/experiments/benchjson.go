package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchEntry is one machine-readable benchmark data point in the
// github-action-benchmark "custom" tool format (an array of
// name/value/unit entries, the idiom soci-snapshotter's perf trajectory
// uses), so successive commits can be charted without parsing the text
// tables.
type BenchEntry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// WriteBenchJSON writes entries as an indented JSON array at path
// (conventionally BENCH_<experiment>.json).
func WriteBenchJSON(path string, entries []BenchEntry) error {
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("experiments: writing bench json: %w", err)
	}
	return nil
}
