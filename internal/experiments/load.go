package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	ksir "github.com/social-streams/ksir"
	"github.com/social-streams/ksir/internal/loadgen"
)

// loadCommitWindow matches ingestCommitWindow: the opt-in group-commit
// window the "+cw" cells run with.
const loadCommitWindow = 2 * time.Millisecond

// loadSeedPosts pre-seeds each stream with flushed history so query ops
// in the mixed cell read a published snapshot, mirroring ingestCell.
const loadSeedPosts = 64

// loadCellResult is one latency-under-load cell.
type loadCellResult struct {
	p50, p99    time.Duration // open-loop completion latency, from scheduled send
	maxLag      time.Duration // worst generator dispatch lag (harness health)
	fsyncsPerOp float64
	batchSize   float64
	realized    float64 // realized ops/sec over the run
	errors      int64
}

// loadAddCell drives one open-loop add workload: n posts scheduled by the
// arrival shape at the target rate against a pipelined FsyncAlways hub,
// optionally with the commit window. Latency is measured from each post's
// scheduled send time, so queueing during saturation or fsync stalls is
// in the percentiles — the measurement closed-loop producers cannot make.
func (l *Lab) loadAddCell(model *ksir.Model, shape loadgen.Shape, rate float64, n int, cw time.Duration) (loadCellResult, error) {
	var res loadCellResult
	dir, err := os.MkdirTemp("", "ksir-load-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	hub, err := ksir.OpenHub(dir, model, ksir.PersistOptions{
		Fsync: ksir.FsyncAlways, CheckpointEvery: 1 << 30, CommitWindow: cw,
	})
	if err != nil {
		return res, err
	}
	defer hub.CloseAll()
	hs, err := hub.Create("bench", model, persistStreamOpts)
	if err != nil {
		return res, err
	}
	before := hs.Stats().Pipeline

	offsets := loadgen.Offsets(shape, n, rate, l.scale.Seed)
	run := loadgen.Run(context.Background(), offsets, func(ctx context.Context, i int) error {
		// One shared timestamp: acceptance never depends on completion
		// interleaving and no bucket boundary crosses the measurement.
		return hs.Add(ksir.Post{ID: int64(i + 1), Time: 700, Text: "goal striker derby dunk court"})
	})

	after := hs.Stats().Pipeline
	if dOps := after.Ops - before.Ops; dOps > 0 {
		if dBatches := after.Batches - before.Batches; dBatches > 0 {
			res.batchSize = float64(dOps) / float64(dBatches)
		}
		res.fsyncsPerOp = float64(after.Fsyncs-before.Fsyncs) / float64(dOps)
	}
	res.p50 = loadgen.Percentile(run.Latency, 50)
	res.p99 = loadgen.Percentile(run.Latency, 99)
	res.maxLag = run.MaxLag
	res.errors = run.Errors
	if run.Elapsed > 0 {
		res.realized = float64(len(run.Latency)) / run.Elapsed.Seconds()
	}
	return res, nil
}

// loadMixedResult is the mixed-workload cell: a tenant-skewed op mix over
// many streams.
type loadMixedResult struct {
	addP99, queryP99 time.Duration
	churns           int
	errors           int64
}

// loadMixedCell drives a Poisson mix over `streams` streams with zipfian
// tenant skew: ~80% adds, ~15% queries (a query storm against hot
// snapshots), ~5% subscription churn (subscribe + immediate unsubscribe).
// Every op kind is measured from scheduled send time; the cell answers
// whether a realistic multi-tenant mix keeps read latency flat while the
// writer pipeline absorbs the skewed add load.
func (l *Lab) loadMixedCell(model *ksir.Model, streams, n int, rate float64, cw time.Duration) (loadMixedResult, error) {
	var res loadMixedResult
	dir, err := os.MkdirTemp("", "ksir-load-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	hub, err := ksir.OpenHub(dir, model, ksir.PersistOptions{
		Fsync: ksir.FsyncAlways, CheckpointEvery: 1 << 30, CommitWindow: cw,
	})
	if err != nil {
		return res, err
	}
	defer hub.CloseAll()

	handles := make([]*ksir.StreamHandle, streams)
	seedWords := []string{"goal striker keeper", "dunk rebound playoffs", "league derby penalty", "court buzzer triple"}
	for s := range handles {
		hs, err := hub.Create(fmt.Sprintf("tenant-%03d", s), model, persistStreamOpts)
		if err != nil {
			return res, err
		}
		for i := 0; i < loadSeedPosts; i++ {
			p := ksir.Post{ID: int64(1_000_000 + i), Time: int64(60 + 4*i), Text: seedWords[i%len(seedWords)]}
			if err := hs.Add(p); err != nil {
				return res, err
			}
		}
		if err := hs.Flush(600); err != nil {
			return res, err
		}
		handles[s] = hs
	}

	// Precompute the op plan (kind, stream, post id) so the hot path does
	// no rng work and per-stream post ids stay unique without atomics.
	const (
		opAdd = iota
		opQuery
		opChurn
	)
	rng := rand.New(rand.NewSource(l.scale.Seed + 9))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(streams-1))
	kinds := make([]int, n)
	streamOf := make([]int, n)
	ids := make([]int64, n)
	nextID := make([]int64, streams)
	for i := 0; i < n; i++ {
		s := int(zipf.Uint64())
		streamOf[i] = s
		switch r := rng.Float64(); {
		case r < 0.80:
			kinds[i] = opAdd
			nextID[s]++
			ids[i] = nextID[s]
		case r < 0.95:
			kinds[i] = opQuery
		default:
			kinds[i] = opChurn
			res.churns++
		}
	}

	query := ksir.Query{K: 5, Keywords: []string{"goal", "dunk"}}
	offsets := loadgen.Offsets(loadgen.Poisson, n, rate, l.scale.Seed)
	var subMu sync.Mutex // Subscribe/Unsubscribe pairs from many goroutines
	run := loadgen.Run(context.Background(), offsets, func(ctx context.Context, i int) error {
		hs := handles[streamOf[i]]
		switch kinds[i] {
		case opAdd:
			return hs.Add(ksir.Post{ID: ids[i], Time: 700, Text: "goal striker derby dunk court"})
		case opQuery:
			_, err := hs.Query(ctx, query)
			return err
		default:
			subMu.Lock()
			defer subMu.Unlock()
			sub, err := hs.Subscribe(ctx, query, time.Minute, func(ksir.Result) {})
			if err != nil {
				return err
			}
			hs.Unsubscribe(sub)
			return nil
		}
	})

	var addLat, queryLat []time.Duration
	for i, lat := range run.Latency {
		switch kinds[i] {
		case opAdd:
			addLat = append(addLat, lat)
		case opQuery:
			queryLat = append(queryLat, lat)
		}
	}
	res.addP99 = loadgen.Percentile(addLat, 99)
	res.queryP99 = loadgen.Percentile(queryLat, 99)
	res.errors = run.Errors
	return res, nil
}

// Load measures latency under open-loop load (DESIGN.md §14): the
// latency-under-load frontier of the writer pipeline across target rates
// and arrival shapes, with and without the commit window, plus one
// tenant-skewed mixed workload over many streams. perCellSecs sizes each
// cell's schedule (n = rate × perCellSecs, floored at 256 ops).
func (l *Lab) Load(rates []float64, perCellSecs float64, mixedStreams int) (*Table, []BenchEntry, error) {
	model, err := l.persistModel()
	if err != nil {
		return nil, nil, err
	}
	if len(rates) == 0 {
		rates = []float64{500, 1000, 2000}
	}
	if perCellSecs <= 0 {
		perCellSecs = 2
	}
	if mixedStreams <= 0 {
		mixedStreams = 16
	}

	t := &Table{
		Title: "Open-loop latency under load: arrival shape × target rate × commit window",
		Header: []string{"shape", "rate/s", "window", "realized/s", "p50 ms", "p99 ms",
			"fsyncs/op", "batch", "gen lag ms"},
		Notes: []string{
			"latency measured from each op's *scheduled* send time (coordinated-omission-free): queueing during stalls is in the percentiles",
			fmt.Sprintf("fsync=always throughout; cw = %v opt-in group-commit window (PersistOptions.CommitWindow)", loadCommitWindow),
			"bursty = on/off bursts at 10× the nominal rate with rate-preserving idle gaps — the group-commit stress shape",
			"gen lag = worst generator dispatch lag behind schedule; ms-scale values mean the harness itself saturated, not the server",
		},
	}
	var entries []BenchEntry
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

	for _, shape := range []loadgen.Shape{loadgen.Poisson, loadgen.Bursty} {
		for _, rate := range rates {
			n := int(rate * perCellSecs)
			if n < 256 {
				n = 256
			}
			for _, cw := range []time.Duration{0, loadCommitWindow} {
				res, err := l.loadAddCell(model, shape, rate, n, cw)
				if err != nil {
					return nil, nil, err
				}
				if res.errors > 0 {
					return nil, nil, fmt.Errorf("load cell %v r=%.0f cw=%v: %d op errors", shape, rate, cw, res.errors)
				}
				window, suffix := "off", fmt.Sprintf("-%s-r%.0f", shape, rate)
				if cw > 0 {
					window, suffix = "on", suffix+"-cw"
				}
				t.AddRow(shape.String(), fmt.Sprintf("%.0f", rate), window,
					fmt.Sprintf("%.0f", res.realized),
					fmt.Sprintf("%.2f", ms(res.p50)),
					fmt.Sprintf("%.2f", ms(res.p99)),
					fmt.Sprintf("%.3f", res.fsyncsPerOp),
					fmt.Sprintf("%.1f", res.batchSize),
					fmt.Sprintf("%.2f", ms(res.maxLag)))
				entries = append(entries,
					BenchEntry{Name: "load-add-p50-ms" + suffix, Value: ms(res.p50), Unit: "Milliseconds",
						Extra: "open-loop add latency from scheduled send, p50"},
					BenchEntry{Name: "load-add-p99-ms" + suffix, Value: ms(res.p99), Unit: "Milliseconds",
						Extra: "open-loop add latency from scheduled send, p99"},
					BenchEntry{Name: "load-fsyncs-per-op" + suffix, Value: res.fsyncsPerOp, Unit: "fsyncs/post"},
				)
			}
		}
	}

	// The mixed cell runs at the middle rate with the window on.
	mixedRate := rates[len(rates)/2]
	n := int(mixedRate * perCellSecs)
	if n < 256 {
		n = 256
	}
	mixed, err := l.loadMixedCell(model, mixedStreams, n, mixedRate, loadCommitWindow)
	if err != nil {
		return nil, nil, err
	}
	if mixed.errors > 0 {
		return nil, nil, fmt.Errorf("load mixed cell: %d op errors", mixed.errors)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"mixed cell: %d streams, zipf tenant skew, ~80%%/15%%/5%% add/query/churn at %.0f/s poisson (cw on): add p99 %.2fms, query p99 %.2fms, %d subscription churns",
		mixedStreams, mixedRate, ms(mixed.addP99), ms(mixed.queryP99), mixed.churns))
	entries = append(entries,
		BenchEntry{Name: "load-mixed-add-p99-ms", Value: ms(mixed.addP99), Unit: "Milliseconds",
			Extra: fmt.Sprintf("add p99 in the %d-stream zipf-skewed mixed workload", mixedStreams)},
		BenchEntry{Name: "load-mixed-query-p99-ms", Value: ms(mixed.queryP99), Unit: "Milliseconds",
			Extra: "query p99 concurrent with skewed adds and subscription churn"},
	)
	return t, entries, nil
}
