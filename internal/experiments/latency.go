package experiments

import (
	"sort"
	"time"

	"github.com/social-streams/ksir/internal/baselines"
	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/dataset"
)

// LatencyProfile is an extension beyond the paper's averaged timings: tail
// latencies (p50/p95/p99) per method at the default parameters. Real-time
// serving is a tail-latency game — a method with a good mean but a bad p99
// still misses the paper's "each query should be processed in real-time"
// requirement (§2).
func (l *Lab) LatencyProfile() (*Table, error) {
	const k, eps = 10, 0.1
	t := &Table{
		Title:  "Extension: query latency percentiles (ms) at defaults (k=10, eps=0.1, z=50)",
		Header: []string{"Dataset", "Method", "p50", "p95", "p99", "max"},
	}
	for _, name := range DatasetNames() {
		env, err := l.Env(name, 50)
		if err != nil {
			return nil, err
		}
		g, err := env.NewEngine(0)
		if err != nil {
			return nil, err
		}
		samples := map[string][]float64{}
		record := func(m string, d time.Duration) {
			samples[m] = append(samples[m], float64(d.Nanoseconds()))
		}
		err = env.Replay(g, func(g *core.Engine, q dataset.QuerySpec) error {
			for _, alg := range []core.Algorithm{core.MTTS, core.MTTD, core.TopkRep} {
				start := time.Now()
				if _, err := g.Query(core.Query{K: k, X: q.X, Epsilon: eps, Algorithm: alg}); err != nil {
					return err
				}
				record(alg.String(), time.Since(start))
			}
			start := time.Now()
			actives := Actives(g)
			baselines.CELF(g.Scorer(), actives, q.X, k)
			record("CELF", time.Since(start))
			start = time.Now()
			actives = Actives(g)
			baselines.SieveStreaming(g.Scorer(), actives, q.X, k, eps)
			record("Sieve", time.Since(start))
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, m := range []string{"CELF", "MTTD", "MTTS", "TopkRep", "Sieve"} {
			xs := samples[m]
			sort.Float64s(xs)
			label := ""
			if i == 0 {
				label = name
			}
			t.AddRow(label, m,
				fmtMS(quantileSorted(xs, 0.50)),
				fmtMS(quantileSorted(xs, 0.95)),
				fmtMS(quantileSorted(xs, 0.99)),
				fmtMS(quantileSorted(xs, 1.0)))
		}
	}
	t.Notes = append(t.Notes,
		"extension experiment (not in the paper): tail latencies of the Figure 9 methods at default parameters")
	return t, nil
}

func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
