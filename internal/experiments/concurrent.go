package experiments

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/stream"
)

// The concurrent-serving experiment measures the deployment shape §2
// motivates — one writer streaming buckets while many readers query — and
// quantifies what the sharded/snapshot engine (DESIGN.md §6) buys over the
// seed architecture, emulated by a global read-write lock that makes every
// ingest block every query, exactly like the original single-mutex engine.

// engineGate abstracts how ingest and queries are interleaved so the same
// workload runs against both concurrency models.
type engineGate interface {
	ingest(g *core.Engine, now stream.Time, batch []*stream.Element) error
	query(g *core.Engine, q core.Query) (core.Result, error)
}

// snapshotGate is the engine's native model: no outer locking at all.
type snapshotGate struct{}

func (snapshotGate) ingest(g *core.Engine, now stream.Time, batch []*stream.Element) error {
	return g.Ingest(now, batch)
}
func (snapshotGate) query(g *core.Engine, q core.Query) (core.Result, error) { return g.Query(q) }

// globalLockGate reproduces the seed engine's concurrency model: one
// RWMutex over the whole engine, write-held for every bucket, read-held for
// every query — so queries serialize behind in-flight ingest.
type globalLockGate struct{ mu sync.RWMutex }

func (g2 *globalLockGate) ingest(g *core.Engine, now stream.Time, batch []*stream.Element) error {
	g2.mu.Lock()
	defer g2.mu.Unlock()
	return g.Ingest(now, batch)
}
func (g2 *globalLockGate) query(g *core.Engine, q core.Query) (core.Result, error) {
	g2.mu.RLock()
	defer g2.mu.RUnlock()
	return g.Query(q)
}

// BucketCycler replays the dataset's bucket sequence forever, shifting IDs
// and timestamps each pass so the writer never runs out of stream: cycle c
// re-emits element e as ⟨e.ID + c·idStride, e.TS + c·tsStride⟩ with
// references remapped into the same cycle.
type BucketCycler struct {
	buckets  []stream.Bucket
	idStride stream.ElemID
	tsStride stream.Time
	cycle    int
	idx      int
}

// NewBucketCycler partitions the env's stream once into buckets of
// bucketLen (0 = the env's native BucketL) and returns the cycler.
func NewBucketCycler(env *Env, bucketLen stream.Time) (*BucketCycler, error) {
	if bucketLen <= 0 {
		bucketLen = env.BucketL
	}
	buckets, err := stream.Partition(env.Data.Elements, bucketLen)
	if err != nil {
		return nil, err
	}
	if len(buckets) == 0 {
		return nil, fmt.Errorf("experiments: empty stream")
	}
	var maxID stream.ElemID
	for _, e := range env.Data.Elements {
		if e.ID > maxID {
			maxID = e.ID
		}
	}
	return &BucketCycler{
		buckets:  buckets,
		idStride: maxID + 1,
		tsStride: buckets[len(buckets)-1].End,
	}, nil
}

// BucketsPerCycle returns the number of buckets in one pass of the stream.
func (c *BucketCycler) BucketsPerCycle() int { return len(c.buckets) }

// Next returns the next bucket boundary and batch.
func (c *BucketCycler) Next() (stream.Time, []*stream.Element) {
	b := c.buckets[c.idx]
	idOff := stream.ElemID(c.cycle) * c.idStride
	tsOff := stream.Time(c.cycle) * c.tsStride
	batch := make([]*stream.Element, len(b.Elems))
	for i, e := range b.Elems {
		ne := &stream.Element{
			ID:     e.ID + idOff,
			TS:     e.TS + tsOff,
			Doc:    e.Doc,
			Topics: e.Topics,
			Text:   e.Text,
		}
		if len(e.Refs) > 0 {
			refs := make([]stream.ElemID, len(e.Refs))
			for j, r := range e.Refs {
				refs[j] = r + idOff
			}
			ne.Refs = refs
		}
		batch[i] = ne
	}
	c.idx++
	if c.idx == len(c.buckets) {
		c.idx = 0
		c.cycle++
	}
	return b.End + tsOff, batch
}

// ConcurrentHarness is one prepared query-during-ingest setup: an engine
// warmed with a full pass of the stream, an endless bucket source and a
// concurrency gate ("snapshot" — the engine's native model — or
// "globallock" — the seed's single-mutex model).
type ConcurrentHarness struct {
	env  *Env
	gate engineGate
	g    *core.Engine
	cyc  *BucketCycler
}

// NewConcurrentHarness builds and warms a harness for the given mode:
// "snapshot" (the engine's native model, delta catch-up), "reapply" (the
// snapshot engine with the legacy double-apply catch-up — the `engine`
// experiment's baseline) or "globallock" (the seed's single-mutex model).
func NewConcurrentHarness(env *Env, mode string) (*ConcurrentHarness, error) {
	var gate engineGate
	catchUp := core.CatchUpDelta
	switch mode {
	case "snapshot", "delta": // "delta" is the engine experiment's name for the native mode
		gate = snapshotGate{}
	case "reapply":
		gate = snapshotGate{}
		catchUp = core.CatchUpReapply
	case "globallock":
		gate = &globalLockGate{}
	default:
		return nil, fmt.Errorf("experiments: unknown concurrency mode %q", mode)
	}
	g, err := env.NewEngineCatchUp(0, catchUp)
	if err != nil {
		return nil, err
	}
	cyc, err := NewBucketCycler(env, env.BucketL*BucketScale)
	if err != nil {
		return nil, err
	}
	h := &ConcurrentHarness{env: env, gate: gate, g: g, cyc: cyc}
	// Warm the window with one full pass so queries see a populated state.
	for i := 0; i < cyc.BucketsPerCycle(); i++ {
		now, batch := cyc.Next()
		if err := gate.ingest(g, now, batch); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Pacing of the serving scenario. The paper's architecture (Figure 4)
// assumes buckets arrive on a fixed cadence L with ingest finishing inside
// the interval; a writer that ingests back-to-back with zero gap instead
// measures CPU saturation (on one core, the scheduler's preemption quantum
// dominates every latency percentile, in either concurrency model). These
// constants keep the writer busy roughly a third of wall time and the
// readers well below CPU saturation, so tail latency reflects how long a
// query is *blocked by ingest* — the architectural property under test.
const (
	// BucketScale coarsens the env's native bucket length so one bucket
	// carries serving-scale traffic (hundreds of elements, tens of
	// milliseconds of maintenance) instead of the tiny buckets a reduced
	// dataset would otherwise produce.
	BucketScale = 96
	// WriterPace is the idle gap between consecutive bucket ingests.
	WriterPace = 30 * time.Millisecond
	// QueryThink is each reader's pause between consecutive queries.
	QueryThink = 4 * time.Millisecond
)

// StartWriter launches the background writer streaming buckets until the
// returned stop function is called; stop reports any ingest error. pace is
// the idle gap between buckets (0 = saturate; see WriterPace).
func (h *ConcurrentHarness) StartWriter(pace time.Duration) (stop func() error) {
	var (
		halt atomic.Bool
		done = make(chan struct{})
		err  error
	)
	go func() {
		defer close(done)
		for !halt.Load() {
			now, batch := h.cyc.Next()
			if e := h.gate.ingest(h.g, now, batch); e != nil {
				err = e
				return
			}
			if pace > 0 {
				time.Sleep(pace)
			}
		}
	}()
	return func() error {
		halt.Store(true)
		<-done
		return err
	}
}

// Query issues the n-th workload query (alternating MTTS and MTTD over the
// env's generated workload, k=10, ε=0.1) and returns its latency.
func (h *ConcurrentHarness) Query(n int) (time.Duration, error) {
	spec := h.env.Queries[n%len(h.env.Queries)]
	alg := core.MTTS
	if n%2 == 0 {
		alg = core.MTTD
	}
	t0 := time.Now()
	_, err := h.gate.query(h.g, core.Query{K: 10, X: spec.X, Epsilon: 0.1, Algorithm: alg})
	return time.Since(t0), err
}

// Stats exposes the engine's maintenance counters.
func (h *ConcurrentHarness) Stats() core.Stats { return h.g.Stats() }

// ConcurrentStats summarizes one concurrent-serving run.
type ConcurrentStats struct {
	Mode          string
	Queries       int
	P50, P99      time.Duration
	QPS           float64
	Buckets       int64
	UpdatePerElem time.Duration
}

// RunConcurrent drives one harness: the writer streams buckets continuously
// while `workers` readers issue `queries` k-SIR queries in total.
func RunConcurrent(env *Env, mode string, workers, queries int) (ConcurrentStats, error) {
	h, err := NewConcurrentHarness(env, mode)
	if err != nil {
		return ConcurrentStats{}, err
	}
	stop := h.StartWriter(WriterPace)

	var (
		issued    atomic.Int64
		readerWG  sync.WaitGroup
		latMu     sync.Mutex
		latencies []time.Duration
		queryErr  atomic.Value
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			local := make([]time.Duration, 0, queries/workers+1)
			for {
				n := issued.Add(1)
				if n > int64(queries) {
					break
				}
				time.Sleep(QueryThink)
				lat, err := h.Query(int(n))
				if err != nil {
					queryErr.Store(err)
					return
				}
				local = append(local, lat)
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}()
	}
	readerWG.Wait()
	elapsed := time.Since(start)
	if err := stop(); err != nil {
		return ConcurrentStats{}, fmt.Errorf("experiments: concurrent writer: %w", err)
	}
	if err, _ := queryErr.Load().(error); err != nil {
		return ConcurrentStats{}, fmt.Errorf("experiments: concurrent reader: %w", err)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	st := h.Stats()
	return ConcurrentStats{
		Mode:          mode,
		Queries:       len(latencies),
		P50:           durPercentile(latencies, 0.50),
		P99:           durPercentile(latencies, 0.99),
		QPS:           float64(len(latencies)) / elapsed.Seconds(),
		Buckets:       st.Buckets,
		UpdatePerElem: st.UpdateTimePerElement(),
	}, nil
}

func durPercentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Concurrent runs the query-during-ingest experiment on the Twitter stream
// (z=50) under both concurrency models and reports the comparison plus the
// machine-readable entries for the perf trajectory.
func (l *Lab) Concurrent(workers, queries int) (*Table, []BenchEntry, error) {
	env, err := l.Env("Twitter", 50)
	if err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = 4
	}
	if queries <= 0 {
		queries = 400
	}

	t := &Table{
		Title:  fmt.Sprintf("Concurrent serving: %d readers vs 1 writer (Twitter, z=50, %d queries)", workers, queries),
		Header: []string{"engine", "p50 (ms)", "p99 (ms)", "QPS", "buckets ingested", "update/elem (µs)"},
	}
	var entries []BenchEntry
	results := make(map[string]ConcurrentStats, 2)
	for _, mode := range []string{"globallock", "snapshot"} {
		st, err := RunConcurrent(env, mode, workers, queries)
		if err != nil {
			return nil, nil, err
		}
		results[mode] = st
		t.AddRow(st.Mode,
			fmtMS(float64(st.P50.Nanoseconds())),
			fmtMS(float64(st.P99.Nanoseconds())),
			fmtF(st.QPS, 1),
			fmt.Sprint(st.Buckets),
			fmtF(float64(st.UpdatePerElem.Nanoseconds())/1e3, 2))
		entries = append(entries,
			BenchEntry{Name: "concurrent-query-p50-" + mode, Value: float64(st.P50.Nanoseconds()) / 1e6, Unit: "Milliseconds", Extra: "P50"},
			BenchEntry{Name: "concurrent-query-p99-" + mode, Value: float64(st.P99.Nanoseconds()) / 1e6, Unit: "Milliseconds", Extra: "P99"},
			BenchEntry{Name: "concurrent-query-mean-interarrival-" + mode, Value: 1e3 / st.QPS, Unit: "Milliseconds", Extra: fmt.Sprintf("%.1f QPS", st.QPS)},
			BenchEntry{Name: "update-time-per-element-" + mode, Value: float64(st.UpdatePerElem.Nanoseconds()) / 1e3, Unit: "Microseconds"},
		)
	}
	if gl, sn := results["globallock"], results["snapshot"]; sn.P99 > 0 && sn.P50 > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"p99 speedup %.1fx, p50 speedup %.1fx over the seed single-mutex model (queries no longer serialize behind ingest)",
			float64(gl.P99)/float64(sn.P99), float64(gl.P50)/float64(sn.P50)))
	}
	return t, entries, nil
}
