package experiments

import (
	"fmt"
	"time"

	"github.com/social-streams/ksir/internal/baselines"
	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/dataset"
)

// agg accumulates per-method measurements across a workload.
type agg struct {
	total     time.Duration
	score     float64
	evaluated int64
	active    int64
	count     int
}

func (a *agg) add(dur time.Duration, score float64, evaluated, active int) {
	a.total += dur
	a.score += score
	a.evaluated += int64(evaluated)
	a.active += int64(active)
	a.count++
}

func (a *agg) avgMS() float64 {
	if a.count == 0 {
		return 0
	}
	return float64(a.total.Nanoseconds()) / float64(a.count)
}

func (a *agg) avgScore() float64 {
	if a.count == 0 {
		return 0
	}
	return a.score / float64(a.count)
}

func (a *agg) evalRatio() float64 {
	if a.active == 0 {
		return 0
	}
	return float64(a.evaluated) / float64(a.active)
}

// timeEngineQuery runs one engine algorithm and records it.
func timeEngineQuery(g *core.Engine, q dataset.QuerySpec, k int, eps float64,
	alg core.Algorithm, a *agg) error {
	start := time.Now()
	res, err := g.Query(core.Query{K: k, X: q.X, Epsilon: eps, Algorithm: alg})
	if err != nil {
		return err
	}
	a.add(time.Since(start), res.Score, res.Evaluated, res.ActiveAtQuery)
	return nil
}

// timeCELF and timeSieve include materializing the active set: the
// index-free baselines must touch every active element either way.
func timeCELF(g *core.Engine, q dataset.QuerySpec, k int, a *agg) {
	start := time.Now()
	actives := Actives(g)
	res := baselines.CELF(g.Scorer(), actives, q.X, k)
	a.add(time.Since(start), res.Score, res.Evaluated, len(actives))
}

func timeSieve(g *core.Engine, q dataset.QuerySpec, k int, eps float64, a *agg) {
	start := time.Now()
	actives := Actives(g)
	res := baselines.SieveStreaming(g.Scorer(), actives, q.X, k, eps)
	a.add(time.Since(start), res.Score, res.Evaluated, len(actives))
}

// EpsSweep reproduces Figures 7 and 8: MTTS/MTTD query time and result
// score as ε varies (k and z at their defaults). It returns one table per
// figure, each with one row per ε and one column pair per dataset.
func (l *Lab) EpsSweep(epss []float64) (fig7, fig8 *Table, err error) {
	const k = 10
	fig7 = &Table{Title: "Figure 7: query time (ms) with varying eps",
		Header: []string{"eps"}}
	fig8 = &Table{Title: "Figure 8: score with varying eps",
		Header: []string{"eps"}}
	type cell struct{ mtts, mttd agg }
	results := make(map[string]map[float64]*cell)
	for _, name := range DatasetNames() {
		env, err := l.Env(name, 50)
		if err != nil {
			return nil, nil, err
		}
		fig7.Header = append(fig7.Header, name+"/MTTS", name+"/MTTD")
		fig8.Header = append(fig8.Header, name+"/MTTS", name+"/MTTD")
		g, err := env.NewEngine(0)
		if err != nil {
			return nil, nil, err
		}
		byEps := make(map[float64]*cell)
		for _, e := range epss {
			byEps[e] = &cell{}
		}
		err = env.Replay(g, func(g *core.Engine, q dataset.QuerySpec) error {
			for _, e := range epss {
				c := byEps[e]
				if err := timeEngineQuery(g, q, k, e, core.MTTS, &c.mtts); err != nil {
					return err
				}
				if err := timeEngineQuery(g, q, k, e, core.MTTD, &c.mttd); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		results[name] = byEps
	}
	for _, e := range epss {
		r7 := []string{fmtF(e, 1)}
		r8 := []string{fmtF(e, 1)}
		for _, name := range DatasetNames() {
			c := results[name][e]
			r7 = append(r7, fmtMS(c.mtts.avgMS()), fmtMS(c.mttd.avgMS()))
			r8 = append(r8, fmtF(c.mtts.avgScore(), 4), fmtF(c.mttd.avgScore(), 4))
		}
		fig7.Rows = append(fig7.Rows, r7)
		fig8.Rows = append(fig8.Rows, r8)
	}
	fig7.Notes = append(fig7.Notes,
		"paper shape: MTTS time drops steeply as eps grows (fewer candidates); MTTD is flat or slightly rising")
	fig8.Notes = append(fig8.Notes,
		"paper shape: both scores decrease mildly with eps; quality loss <= 5% vs CELF even at eps=0.5")
	return fig7, fig8, nil
}

// methodNames is the Figure 9/11 legend order.
var methodNames = []string{"CELF", "MTTD", "MTTS", "TopkRep", "Sieve"}

// KSweep reproduces Figures 9, 10 and 11: per-dataset query time, evaluated
// ratio, and score as k varies for all five processing methods.
func (l *Lab) KSweep(ks []int) (fig9, fig10, fig11 []*Table, err error) {
	const eps = 0.1
	for _, name := range DatasetNames() {
		env, err := l.Env(name, 50)
		if err != nil {
			return nil, nil, nil, err
		}
		g, err := env.NewEngine(0)
		if err != nil {
			return nil, nil, nil, err
		}
		byK := make(map[int]map[string]*agg)
		for _, k := range ks {
			byK[k] = make(map[string]*agg)
			for _, m := range methodNames {
				byK[k][m] = &agg{}
			}
		}
		err = env.Replay(g, func(g *core.Engine, q dataset.QuerySpec) error {
			for _, k := range ks {
				a := byK[k]
				if err := timeEngineQuery(g, q, k, eps, core.MTTS, a["MTTS"]); err != nil {
					return err
				}
				if err := timeEngineQuery(g, q, k, eps, core.MTTD, a["MTTD"]); err != nil {
					return err
				}
				if err := timeEngineQuery(g, q, k, eps, core.TopkRep, a["TopkRep"]); err != nil {
					return err
				}
				timeCELF(g, q, k, a["CELF"])
				timeSieve(g, q, k, eps, a["Sieve"])
			}
			return nil
		})
		if err != nil {
			return nil, nil, nil, err
		}

		t9 := &Table{Title: fmt.Sprintf("Figure 9 (%s): query time (ms) with varying k", name),
			Header: []string{"k", "CELF", "MTTD", "MTTS", "TopkRep", "Sieve"}}
		t10 := &Table{Title: fmt.Sprintf("Figure 10 (%s): ratio of evaluated elements with varying k", name),
			Header: []string{"k", "MTTD", "MTTS"}}
		t11 := &Table{Title: fmt.Sprintf("Figure 11 (%s): score with varying k", name),
			Header: []string{"k", "CELF", "MTTD", "MTTS", "TopkRep", "Sieve"}}
		for _, k := range ks {
			a := byK[k]
			t9.AddRow(fmt.Sprint(k),
				fmtMS(a["CELF"].avgMS()), fmtMS(a["MTTD"].avgMS()), fmtMS(a["MTTS"].avgMS()),
				fmtMS(a["TopkRep"].avgMS()), fmtMS(a["Sieve"].avgMS()))
			t10.AddRow(fmt.Sprint(k), fmtPct(a["MTTD"].evalRatio()), fmtPct(a["MTTS"].evalRatio()))
			t11.AddRow(fmt.Sprint(k),
				fmtF(a["CELF"].avgScore(), 4), fmtF(a["MTTD"].avgScore(), 4), fmtF(a["MTTS"].avgScore(), 4),
				fmtF(a["TopkRep"].avgScore(), 4), fmtF(a["Sieve"].avgScore(), 4))
		}
		t9.Notes = append(t9.Notes,
			"paper shape: MTTS/MTTD at least one order of magnitude faster than CELF/Sieve; time grows with k")
		t10.Notes = append(t10.Notes,
			"paper shape: ratios grow near-linearly with k and stay small; MTTD's ratio exceeds MTTS's")
		t11.Notes = append(t11.Notes,
			"paper shape: MTTD ~= CELF (>99%); MTTS >= 95% of CELF; Sieve below both; TopkRep lowest and degrading with k")
		fig9 = append(fig9, t9)
		fig10 = append(fig10, t10)
		fig11 = append(fig11, t11)
	}
	return fig9, fig10, fig11, nil
}

// ZSweep reproduces Figure 12 (query time vs number of topics z) and the
// z-half of Figure 14 (update time per element vs z). Each z retrains the
// topic model, as the paper does.
func (l *Lab) ZSweep(zs []int) (fig12 []*Table, fig14z *Table, err error) {
	const k, eps = 10, 0.1
	fig14z = &Table{Title: "Figure 14 (left): update time (ms/element) with varying z",
		Header: append([]string{"z"}, DatasetNames()...)}
	upd := make(map[string]map[int]float64)
	for _, name := range DatasetNames() {
		upd[name] = make(map[int]float64)
		t12 := &Table{Title: fmt.Sprintf("Figure 12 (%s): query time (ms) with varying z", name),
			Header: []string{"z", "CELF", "MTTD", "MTTS", "TopkRep", "Sieve"}}
		for _, z := range zs {
			env, err := l.Env(name, z)
			if err != nil {
				return nil, nil, err
			}
			g, err := env.NewEngine(0)
			if err != nil {
				return nil, nil, err
			}
			accs := make(map[string]*agg)
			for _, m := range methodNames {
				accs[m] = &agg{}
			}
			err = env.Replay(g, func(g *core.Engine, q dataset.QuerySpec) error {
				if err := timeEngineQuery(g, q, k, eps, core.MTTS, accs["MTTS"]); err != nil {
					return err
				}
				if err := timeEngineQuery(g, q, k, eps, core.MTTD, accs["MTTD"]); err != nil {
					return err
				}
				if err := timeEngineQuery(g, q, k, eps, core.TopkRep, accs["TopkRep"]); err != nil {
					return err
				}
				timeCELF(g, q, k, accs["CELF"])
				timeSieve(g, q, k, eps, accs["Sieve"])
				return nil
			})
			if err != nil {
				return nil, nil, err
			}
			t12.AddRow(fmt.Sprint(z),
				fmtMS(accs["CELF"].avgMS()), fmtMS(accs["MTTD"].avgMS()), fmtMS(accs["MTTS"].avgMS()),
				fmtMS(accs["TopkRep"].avgMS()), fmtMS(accs["Sieve"].avgMS()))
			upd[name][z] = float64(g.Stats().UpdateTimePerElement().Nanoseconds())
		}
		t12.Notes = append(t12.Notes,
			"paper shape: MTTS/MTTD query time drops as z grows (fewer elements per topic list)")
		fig12 = append(fig12, t12)
	}
	for _, z := range zs {
		row := []string{fmt.Sprint(z)}
		for _, name := range DatasetNames() {
			row = append(row, fmtMS(upd[name][z]))
		}
		fig14z.AddRow(row...)
	}
	fig14z.Notes = append(fig14z.Notes,
		"paper shape: update time grows with z (more ranked lists) but stays well under 0.3ms/element")
	return fig12, fig14z, nil
}

// TSweep reproduces Figure 13 (query time vs window length T) and the
// T-half of Figure 14 (update time per element vs T).
func (l *Lab) TSweep(hours []float64) (fig13 []*Table, fig14t *Table, err error) {
	const k, eps = 10, 0.1
	fig14t = &Table{Title: "Figure 14 (right): update time (ms/element) with varying T",
		Header: append([]string{"T(h)"}, DatasetNames()...)}
	upd := make(map[string]map[float64]float64)
	for _, name := range DatasetNames() {
		env, err := l.Env(name, 50)
		if err != nil {
			return nil, nil, err
		}
		upd[name] = make(map[float64]float64)
		t13 := &Table{Title: fmt.Sprintf("Figure 13 (%s): query time (ms) with varying T", name),
			Header: []string{"T(h)", "CELF", "MTTD", "MTTS", "TopkRep", "Sieve"}}
		for _, h := range hours {
			T := env.windowFor(h)
			g, err := env.NewEngine(T)
			if err != nil {
				return nil, nil, err
			}
			saveL := env.BucketL
			env.BucketL = T / 96
			if env.BucketL < 1 {
				env.BucketL = 1
			}
			accs := make(map[string]*agg)
			for _, m := range methodNames {
				accs[m] = &agg{}
			}
			err = env.Replay(g, func(g *core.Engine, q dataset.QuerySpec) error {
				if err := timeEngineQuery(g, q, k, eps, core.MTTS, accs["MTTS"]); err != nil {
					return err
				}
				if err := timeEngineQuery(g, q, k, eps, core.MTTD, accs["MTTD"]); err != nil {
					return err
				}
				if err := timeEngineQuery(g, q, k, eps, core.TopkRep, accs["TopkRep"]); err != nil {
					return err
				}
				timeCELF(g, q, k, accs["CELF"])
				timeSieve(g, q, k, eps, accs["Sieve"])
				return nil
			})
			env.BucketL = saveL
			if err != nil {
				return nil, nil, err
			}
			t13.AddRow(fmtF(h, 0),
				fmtMS(accs["CELF"].avgMS()), fmtMS(accs["MTTD"].avgMS()), fmtMS(accs["MTTS"].avgMS()),
				fmtMS(accs["TopkRep"].avgMS()), fmtMS(accs["Sieve"].avgMS()))
			upd[name][h] = float64(g.Stats().UpdateTimePerElement().Nanoseconds())
		}
		t13.Notes = append(t13.Notes,
			"paper shape: all methods slow down as T grows (more active elements); MTTS/MTTD stay far ahead")
		fig13 = append(fig13, t13)
	}
	for _, h := range hours {
		row := []string{fmtF(h, 0)}
		for _, name := range DatasetNames() {
			row = append(row, fmtMS(upd[name][h]))
		}
		fig14t.AddRow(row...)
	}
	fig14t.Notes = append(fig14t.Notes,
		"paper shape: update time rises with T but stays well under 0.3ms/element")
	return fig13, fig14t, nil
}
