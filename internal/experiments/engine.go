package experiments

import (
	"fmt"

	"github.com/social-streams/ksir/internal/core"
)

// The engine-maintenance experiment quantifies what structural delta
// replay (DESIGN.md §9) buys on the paper's Figure-14 metric. The
// double-buffered engine has to keep two state copies current; the
// baseline ("reapply") pays for the second copy by re-running the full
// bucket application — window advance, re-scoring, ranked-list descents —
// while the delta path ("delta") replays the recorded structural outcome:
// spliced tuples, shared cache entries, pre-decided window ops. Both
// modes publish byte-identical states (asserted by the core equivalence
// suite), so the comparison is pure cost at equal semantics.

// engineModeStats is the measured cost of one catch-up mode.
type engineModeStats struct {
	Mode string
	// PerElem is the total maintenance time per arriving element —
	// primary application plus recycled-buffer catch-up — the headline
	// number, comparable across modes.
	PerElem float64 // µs
	// PrimaryPerElem and CatchUpPerElem split PerElem into the Figure-14
	// primary cost and the second-buffer cost.
	PrimaryPerElem float64 // µs
	CatchUpPerElem float64 // µs
	// QueryP99 is the concurrent-serving query tail under a live writer
	// in this mode (delta replay must not buy ingest speed with reader
	// latency).
	QueryP99 float64 // ms
}

// measureEngineMode streams the full dataset through a fresh engine in
// the given catch-up mode and reads the maintenance counters, then runs
// the concurrent-serving workload for the query tail.
func measureEngineMode(env *Env, mode string, workers, queries int) (engineModeStats, error) {
	catchUp := core.CatchUpDelta
	if mode == "reapply" {
		catchUp = core.CatchUpReapply
	}
	g, err := env.NewEngineCatchUp(0, catchUp)
	if err != nil {
		return engineModeStats{}, err
	}
	if err := env.Replay(g, nil); err != nil {
		return engineModeStats{}, err
	}
	// One empty trailing bucket absorbs the final catch-up, which
	// otherwise runs lazily at the next Ingest and would go unmeasured.
	if err := g.Ingest(g.Now()+1, nil); err != nil {
		return engineModeStats{}, err
	}
	st := g.Stats()
	out := engineModeStats{
		Mode:           mode,
		PerElem:        float64(st.MaintenanceTimePerElement().Nanoseconds()) / 1e3,
		PrimaryPerElem: float64(st.UpdateTimePerElement().Nanoseconds()) / 1e3,
	}
	out.CatchUpPerElem = out.PerElem - out.PrimaryPerElem

	cs, err := RunConcurrent(env, mode, workers, queries)
	if err != nil {
		return engineModeStats{}, err
	}
	out.QueryP99 = float64(cs.P99.Nanoseconds()) / 1e6
	return out, nil
}

// EngineMaintenance runs the delta-replay ablation on the Twitter stream
// (z=50): total update time per element (primary + catch-up) and
// concurrent query p99 under both catch-up modes, reported as a table and
// as BENCH_engine.json entries for the perf trajectory.
func (l *Lab) EngineMaintenance(workers, queries int) (*Table, []BenchEntry, error) {
	env, err := l.Env("Twitter", 50)
	if err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = 4
	}
	if queries <= 0 {
		queries = 400
	}

	t := &Table{
		Title: fmt.Sprintf("Engine maintenance: delta replay vs double-apply catch-up (Twitter, z=50, %d elements)",
			len(env.Data.Elements)),
		Header: []string{"catch-up", "update/elem (µs)", "primary (µs)", "catch-up (µs)", "query p99 (ms)"},
	}
	var entries []BenchEntry
	results := make(map[string]engineModeStats, 2)
	for _, mode := range []string{"reapply", "delta"} {
		st, err := measureEngineMode(env, mode, workers, queries)
		if err != nil {
			return nil, nil, err
		}
		results[mode] = st
		t.AddRow(st.Mode, fmtF(st.PerElem, 2), fmtF(st.PrimaryPerElem, 2), fmtF(st.CatchUpPerElem, 2), fmtF(st.QueryP99, 2))
		entries = append(entries,
			BenchEntry{Name: "engine-update-time-per-element-" + mode, Value: st.PerElem, Unit: "Microseconds",
				Extra: "primary apply + recycled-buffer catch-up"},
			BenchEntry{Name: "engine-primary-update-per-element-" + mode, Value: st.PrimaryPerElem, Unit: "Microseconds"},
			BenchEntry{Name: "engine-catchup-per-element-" + mode, Value: st.CatchUpPerElem, Unit: "Microseconds"},
			BenchEntry{Name: "engine-query-p99-" + mode, Value: st.QueryP99, Unit: "Milliseconds"},
		)
	}
	if re, de := results["reapply"], results["delta"]; de.PerElem > 0 {
		speedup := re.PerElem / de.PerElem
		entries = append(entries, BenchEntry{
			Name: "engine-update-speedup", Value: speedup, Unit: "x",
			Extra: fmt.Sprintf("delta vs double-apply, query p99 %.2fms vs %.2fms", de.QueryP99, re.QueryP99),
		})
		t.Notes = append(t.Notes, fmt.Sprintf(
			"delta replay cuts total update time per element %.2fx (%.2fµs → %.2fµs); catch-up cost %.2fµs → %.2fµs per element",
			speedup, re.PerElem, de.PerElem, re.CatchUpPerElem, de.CatchUpPerElem))
	}
	return t, entries, nil
}
