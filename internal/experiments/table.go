package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is one rendered experiment result: a titled grid with a header row,
// mirroring the tables and figure-series of the paper.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes holds free-form commentary (e.g., the paper's reported shape
	// for comparison).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
		sep := make([]string, len(t.Header))
		for i, h := range t.Header {
			sep[i] = strings.Repeat("-", len(h))
		}
		fmt.Fprintln(tw, strings.Join(sep, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// fmtMS renders a duration in milliseconds with two decimals.
func fmtMS(nanos float64) string { return fmt.Sprintf("%.3f", nanos/1e6) }

// fmtF renders a float with the given decimals.
func fmtF(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
