package experiments

import (
	"testing"
)

func TestEstimateEtaMatchesRanges(t *testing.T) {
	l := tinyLab()
	for _, name := range DatasetNames() {
		env, err := l.Env(name, 10)
		if err != nil {
			t.Fatal(err)
		}
		eta := env.Params.Eta
		if eta < 1 {
			t.Errorf("%s: eta = %v below floor", name, eta)
		}
		// Sanity ceiling: the 95th-percentile influence mass can't exceed
		// the total reference count times 1.0 probability products.
		if eta > 1e4 {
			t.Errorf("%s: eta = %v absurdly large", name, eta)
		}
	}
}

func TestWindowForPreservesFraction(t *testing.T) {
	l := tinyLab()
	env, err := l.Env("Twitter", 10)
	if err != nil {
		t.Fatal(err)
	}
	w24 := env.windowFor(24)
	w6 := env.windowFor(6)
	// 6h window must be ~1/4 of the 24h window.
	ratio := float64(w6) / float64(w24)
	if ratio < 0.2 || ratio > 0.3 {
		t.Errorf("6h/24h window ratio = %v, want ~0.25", ratio)
	}
	if w6 < 1 {
		t.Errorf("window collapsed to %d", w6)
	}
	// Window occupancy sanity: ingesting the full stream leaves roughly
	// elements×(24h/12d) in the window for the Twitter profile.
	g, err := env.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Replay(g, nil); err != nil {
		t.Fatal(err)
	}
	frac := float64(g.NumActive()) / float64(len(env.Data.Elements))
	if frac < 0.03 || frac > 0.35 {
		t.Errorf("window holds %.1f%% of the stream, want ~8%%+refs", frac*100)
	}
}
