package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Trajectory conversion: BENCH_*.json → the github-action-benchmark
// `data.js` document (a `window.BENCHMARK_DATA = {...}` assignment, see
// SNIPPETS.md snippets 2–3 for the soci-snapshotter exemplar). The bench
// files are already customSmallerIsBetter-shaped entry arrays; this layer
// stamps them with commit metadata and appends them to the rolling
// per-suite history that the action (or any static chart page) plots, so
// each PR extends the perf trajectory instead of only tripping the 3×
// regression gates.

// TrajectoryCommit identifies the commit a trajectory point was measured
// at, mirroring the `commit` block of the data.js format.
type TrajectoryCommit struct {
	Author    TrajectoryActor `json:"author"`
	Committer TrajectoryActor `json:"committer"`
	Distinct  bool            `json:"distinct"`
	ID        string          `json:"id"`
	Message   string          `json:"message"`
	Timestamp string          `json:"timestamp"`
	TreeID    string          `json:"tree_id,omitempty"`
	URL       string          `json:"url"`
}

// TrajectoryActor is a commit author or committer.
type TrajectoryActor struct {
	Email    string `json:"email,omitempty"`
	Name     string `json:"name"`
	Username string `json:"username,omitempty"`
}

// TrajectoryPoint is one measured commit in a suite's history: the commit,
// a millisecond timestamp, the chart direction, and the bench entries.
type TrajectoryPoint struct {
	Commit  TrajectoryCommit `json:"commit"`
	Date    int64            `json:"date"`
	Tool    string           `json:"tool"`
	Benches []BenchEntry     `json:"benches"`
}

// TrajectoryData is the whole data.js document.
type TrajectoryData struct {
	LastUpdate int64                        `json:"lastUpdate"`
	RepoURL    string                       `json:"repoUrl"`
	Entries    map[string][]TrajectoryPoint `json:"entries"`
}

const trajectoryPrefix = "window.BENCHMARK_DATA = "

// trajectoryTool matches the bench entries' orientation: every ksir metric
// is a cost (µs/element, p99 ms, bytes, overhead %), so smaller is better.
const trajectoryTool = "customSmallerIsBetter"

// maxTrajectoryPoints bounds each suite's history so the artifact cannot
// grow without limit; the oldest points fall off first.
const maxTrajectoryPoints = 500

// suiteNameFor maps a BENCH_*.json basename to its suite key in the
// data.js entries map ("BENCH_engine.json" → "engine").
func suiteNameFor(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".json")
	base = strings.TrimPrefix(base, "BENCH_")
	return base
}

// AppendTrajectory loads the trajectory document at path (starting fresh
// when the file does not exist), appends one point per bench file under
// that file's suite name, and writes the document back as a data.js
// assignment. benchPaths entries must be BENCH_*.json files; now is the
// point's timestamp in Unix milliseconds.
func AppendTrajectory(path string, benchPaths []string, commit TrajectoryCommit, now int64) (*TrajectoryData, error) {
	data, err := ReadTrajectory(path)
	if os.IsNotExist(err) {
		data = &TrajectoryData{Entries: make(map[string][]TrajectoryPoint)}
	} else if err != nil {
		return nil, err
	}

	// Deterministic suite order so reruns produce identical documents.
	paths := append([]string(nil), benchPaths...)
	sort.Strings(paths)
	for _, bp := range paths {
		entries, err := ReadBenchJSON(bp)
		if err != nil {
			return nil, err
		}
		suite := suiteNameFor(bp)
		pts := append(data.Entries[suite], TrajectoryPoint{
			Commit:  commit,
			Date:    now,
			Tool:    trajectoryTool,
			Benches: entries,
		})
		if len(pts) > maxTrajectoryPoints {
			pts = pts[len(pts)-maxTrajectoryPoints:]
		}
		data.Entries[suite] = pts
	}
	data.LastUpdate = now
	if data.RepoURL == "" {
		data.RepoURL = strings.TrimSuffix(commit.URL, "/commit/"+commit.ID)
	}
	return data, WriteTrajectory(path, data)
}

// ReadTrajectory parses a data.js document (with or without the
// `window.BENCHMARK_DATA = ` prefix, so plain-JSON variants round-trip).
func ReadTrajectory(path string) (*TrajectoryData, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	raw = bytes.TrimSpace(raw)
	raw = bytes.TrimPrefix(raw, []byte(trajectoryPrefix))
	var data TrajectoryData
	if err := json.Unmarshal(raw, &data); err != nil {
		return nil, fmt.Errorf("experiments: %s: malformed trajectory data: %w", path, err)
	}
	if data.Entries == nil {
		data.Entries = make(map[string][]TrajectoryPoint)
	}
	return &data, nil
}

// WriteTrajectory writes the document as a data.js assignment.
func WriteTrajectory(path string, data *TrajectoryData) error {
	raw, err := json.MarshalIndent(data, "", "  ")
	if err != nil {
		return err
	}
	out := make([]byte, 0, len(trajectoryPrefix)+len(raw)+1)
	out = append(out, trajectoryPrefix...)
	out = append(out, raw...)
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("experiments: writing trajectory: %w", err)
	}
	return nil
}
