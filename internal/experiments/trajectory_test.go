package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func trajectoryFixture(t *testing.T) (dir string, benchPaths []string, commit TrajectoryCommit) {
	t.Helper()
	dir = t.TempDir()
	benchPaths = []string{
		filepath.Join(dir, "BENCH_engine.json"),
		filepath.Join(dir, "BENCH_ingest.json"),
	}
	if err := WriteBenchJSON(benchPaths[0], []BenchEntry{
		{Name: "engine-update-time-per-element-delta", Value: 4.9, Unit: "Microseconds"},
		{Name: "engine-metrics-overhead-add-pct", Value: 0.3, Unit: "Percent"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteBenchJSON(benchPaths[1], []BenchEntry{
		{Name: "ingest-us-per-post-pipelined-always-p8", Value: 110, Unit: "Microseconds"},
	}); err != nil {
		t.Fatal(err)
	}
	commit = TrajectoryCommit{
		Author:    TrajectoryActor{Name: "dev", Email: "dev@example.com"},
		Committer: TrajectoryActor{Name: "dev", Email: "dev@example.com"},
		Distinct:  true,
		ID:        "184d1715fe4985936018f8013dd81c54019ae4e4",
		Message:   "tune the delta path",
		Timestamp: "2026-08-08T12:00:00Z",
		URL:       "https://github.com/social-streams/ksir/commit/184d1715fe4985936018f8013dd81c54019ae4e4",
	}
	return dir, benchPaths, commit
}

// A fresh conversion produces the github-action-benchmark document shape:
// a window.BENCHMARK_DATA assignment whose entries map each BENCH suite to
// commit-stamped customSmallerIsBetter points.
func TestTrajectoryConvertsBenchFiles(t *testing.T) {
	dir, benchPaths, commit := trajectoryFixture(t)
	out := filepath.Join(dir, "data.js")

	data, err := AppendTrajectory(out, benchPaths, commit, 1754650000000)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Entries) != 2 {
		t.Fatalf("suites = %d, want 2", len(data.Entries))
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "window.BENCHMARK_DATA = {") {
		t.Fatalf("data.js does not open with the assignment prefix: %.40q", raw)
	}
	// The payload after the prefix is plain JSON in the action's schema.
	var doc struct {
		LastUpdate int64  `json:"lastUpdate"`
		RepoURL    string `json:"repoUrl"`
		Entries    map[string][]struct {
			Commit struct {
				ID        string `json:"id"`
				Timestamp string `json:"timestamp"`
			} `json:"commit"`
			Date    int64        `json:"date"`
			Tool    string       `json:"tool"`
			Benches []BenchEntry `json:"benches"`
		} `json:"entries"`
	}
	payload := strings.TrimPrefix(string(raw), "window.BENCHMARK_DATA = ")
	if err := json.Unmarshal([]byte(payload), &doc); err != nil {
		t.Fatalf("payload is not valid JSON: %v", err)
	}
	if doc.LastUpdate != 1754650000000 {
		t.Errorf("lastUpdate = %d", doc.LastUpdate)
	}
	if doc.RepoURL != "https://github.com/social-streams/ksir" {
		t.Errorf("repoUrl = %q (want derived from the commit URL)", doc.RepoURL)
	}
	eng := doc.Entries["engine"]
	if len(eng) != 1 {
		t.Fatalf("engine points = %d, want 1", len(eng))
	}
	if eng[0].Tool != "customSmallerIsBetter" {
		t.Errorf("tool = %q", eng[0].Tool)
	}
	if eng[0].Commit.ID != commit.ID || eng[0].Commit.Timestamp != commit.Timestamp {
		t.Errorf("commit block = %+v", eng[0].Commit)
	}
	if len(eng[0].Benches) != 2 || eng[0].Benches[0].Name != "engine-update-time-per-element-delta" {
		t.Errorf("engine benches = %+v", eng[0].Benches)
	}
	if len(doc.Entries["ingest"]) != 1 {
		t.Errorf("ingest points = %d, want 1", len(doc.Entries["ingest"]))
	}
}

// Re-running against an existing data.js appends history rather than
// overwriting it — the restored artifact accumulates one point per run.
func TestTrajectoryAppendsHistory(t *testing.T) {
	dir, benchPaths, commit := trajectoryFixture(t)
	out := filepath.Join(dir, "data.js")

	if _, err := AppendTrajectory(out, benchPaths, commit, 1754650000000); err != nil {
		t.Fatal(err)
	}
	second := commit
	second.ID = "ffff1715fe4985936018f8013dd81c54019ae4e4"
	data, err := AppendTrajectory(out, benchPaths, second, 1754660000000)
	if err != nil {
		t.Fatal(err)
	}

	eng := data.Entries["engine"]
	if len(eng) != 2 {
		t.Fatalf("engine points after second run = %d, want 2", len(eng))
	}
	if eng[0].Commit.ID != commit.ID || eng[1].Commit.ID != second.ID {
		t.Errorf("history order wrong: %q then %q", eng[0].Commit.ID, eng[1].Commit.ID)
	}
	if data.LastUpdate != 1754660000000 {
		t.Errorf("lastUpdate = %d", data.LastUpdate)
	}

	// Round-trip: the appended file still parses.
	reread, err := ReadTrajectory(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(reread.Entries["ingest"]) != 2 {
		t.Errorf("reread ingest points = %d, want 2", len(reread.Entries["ingest"]))
	}
}

// A malformed bench file fails the conversion loudly (the CI step must not
// chart garbage), and suite names derive from the BENCH_*.json basename.
func TestTrajectoryRejectsMalformedBench(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "BENCH_broken.json")
	if err := os.WriteFile(bad, []byte(`{"not":"an array"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendTrajectory(filepath.Join(dir, "data.js"), []string{bad}, TrajectoryCommit{ID: "abc"}, 1); err == nil {
		t.Fatal("malformed bench json accepted")
	}

	if got := suiteNameFor("/ci/BENCH_tenancy.json"); got != "tenancy" {
		t.Errorf("suiteNameFor = %q, want tenancy", got)
	}
}
