package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/social-streams/ksir/internal/stream"
)

func smallEnv(t *testing.T) *Env {
	t.Helper()
	lab := NewLab(Scale{Elements: 1500, Queries: 10, TopicIters: 8, Seed: 5, WindowHours: 24})
	env, err := lab.Env("Twitter", 20)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// The cycler must emit an endless, engine-valid stream: strictly advancing
// bucket boundaries, in-bucket timestamps and globally unique IDs — the
// engine's own validation is the oracle.
func TestBucketCyclerFeedsEngineAcrossCycles(t *testing.T) {
	env := smallEnv(t)
	cyc, err := NewBucketCycler(env, env.BucketL*BucketScale)
	if err != nil {
		t.Fatal(err)
	}
	g, err := env.NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[stream.ElemID]struct{})
	var prevNow stream.Time
	total := cyc.BucketsPerCycle()*2 + cyc.BucketsPerCycle()/2 // 2.5 cycles
	for i := 0; i < total; i++ {
		now, batch := cyc.Next()
		if now <= prevNow && len(batch) > 0 {
			t.Fatalf("bucket %d: boundary %d did not advance past %d", i, now, prevNow)
		}
		prevNow = now
		for _, e := range batch {
			if _, dup := seen[e.ID]; dup {
				t.Fatalf("bucket %d: duplicate ID %d across cycles", i, e.ID)
			}
			seen[e.ID] = struct{}{}
		}
		if err := g.Ingest(now, batch); err != nil {
			t.Fatalf("bucket %d rejected: %v", i, err)
		}
	}
	if g.NumActive() == 0 {
		t.Fatal("window empty after 2.5 cycles")
	}
}

// Both concurrency modes must complete a small run and report sane
// statistics.
func TestRunConcurrentSmoke(t *testing.T) {
	env := smallEnv(t)
	for _, mode := range []string{"snapshot", "globallock"} {
		st, err := RunConcurrent(env, mode, 2, 30)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if st.Queries != 30 {
			t.Errorf("%s: completed %d queries, want 30", mode, st.Queries)
		}
		if st.P50 <= 0 || st.P99 < st.P50 {
			t.Errorf("%s: implausible percentiles p50=%v p99=%v", mode, st.P50, st.P99)
		}
		if st.Buckets == 0 || st.QPS <= 0 {
			t.Errorf("%s: writer made no progress: %+v", mode, st)
		}
	}
	if _, err := NewConcurrentHarness(env, "bogus"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestWriteBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := []BenchEntry{
		{Name: "p99-snapshot", Value: 1.25, Unit: "Milliseconds", Extra: "P99"},
		{Name: "qps", Value: 800, Unit: "QPS"},
	}
	if err := WriteBenchJSON(path, in); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []BenchEntry
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, raw)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
}
