package trace

// W3C Trace Context (https://www.w3.org/TR/trace-context/) — the
// cross-process half of the span model, and the distributed-Hub work's
// wire contract: one `traceparent` header, version-00 form
//
//	00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>
//
// is all that crosses a process boundary. The HTTP middleware parses it
// into the request root's parent, the Go SDK injects it from the caller's
// context, and flag bit 0 (sampled) carries the upstream head-sampling
// decision.

// flagSampled is trace-flags bit 0.
const flagSampled = 0x01

// Header is the canonical traceparent header name (lowercase per spec;
// Go's http.Header canonicalizes on set/get either way).
const Header = "traceparent"

// FormatTraceparent renders sc as a version-00 traceparent value.
func FormatTraceparent(sc SpanContext) string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a traceparent header value. It accepts any
// non-ff version with the version-00 field layout (per spec, unknown
// versions are parsed as 00, tolerating a longer tail) and rejects
// all-zero ids. ok is false for anything unusable.
func ParseTraceparent(s string) (sc SpanContext, ok bool) {
	// version "-" trace-id "-" parent-id "-" trace-flags
	if len(s) < 55 {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	ver, ok1 := hexByte(s[0], s[1])
	flags, ok2 := hexByte(s[53], s[54])
	if !ok1 || !ok2 || ver == 0xff {
		return SpanContext{}, false
	}
	if ver == 0 && len(s) != 55 {
		return SpanContext{}, false
	}
	if ver != 0 && len(s) > 55 && s[55] != '-' {
		return SpanContext{}, false
	}
	for i := 0; i < 16; i++ {
		b, ok := hexByte(s[3+2*i], s[4+2*i])
		if !ok {
			return SpanContext{}, false
		}
		sc.TraceID[i] = b
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(s[36+2*i], s[37+2*i])
		if !ok {
			return SpanContext{}, false
		}
		sc.SpanID[i] = b
	}
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return SpanContext{}, false
	}
	sc.Sampled = flags&flagSampled != 0
	return sc, true
}

// hexByte decodes two lowercase hex digits (the spec forbids uppercase).
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexVal(hi)
	l, ok2 := hexVal(lo)
	return h<<4 | l, ok1 && ok2
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
