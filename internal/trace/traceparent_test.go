package trace

import "testing"

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	got, ok := ParseTraceparent(FormatTraceparent(sc))
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	sc.Sampled = false
	got, ok = ParseTraceparent(FormatTraceparent(sc))
	if !ok || got != sc {
		t.Fatalf("unsampled round trip: got %+v ok=%v", got, ok)
	}
}

func TestParseTraceparentFixed(t *testing.T) {
	sc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("spec example rejected")
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s", sc.TraceID)
	}
	if sc.SpanID.String() != "00f067aa0ba902b7" {
		t.Fatalf("span id = %s", sc.SpanID)
	}
	if !sc.Sampled {
		t.Fatal("sampled flag not decoded")
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Unknown versions parse with the 00 layout, tolerating extra fields.
	if _, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Fatal("future version with suffix rejected")
	}
	if _, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); !ok {
		t.Fatal("future version rejected")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // version 00 must be exact-length
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",   // non-hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Fatalf("accepted %q", s)
		}
	}
}
