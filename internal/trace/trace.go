// Package trace is the observability subsystem's causal half: where
// internal/metrics aggregates (DESIGN.md §12), trace answers "which op
// spent its time where" — the queue-wait / engine-apply / WAL-append /
// fsync breakdown the paper's update-time-per-element analysis (Figure 14)
// reasons about, per operation instead of per histogram bucket.
//
// The model is deliberately small (DESIGN.md §13):
//
//   - An Op is one operation's span accumulator: a root span (the HTTP
//     request, or an explicitly started unit of work) plus completed child
//     spans appended as each stage of the operation finishes. Children are
//     recorded with explicit start/duration, which is what lets the stream
//     writer goroutine attribute spans to an op it does not own — the
//     pipeline's done-channel close is the happens-before edge that makes
//     those cross-goroutine appends race-free without a lock.
//   - Sampling is head-based by rate, decided when the Op starts (or
//     inherited from a W3C traceparent's sampled flag), plus always-keep
//     for ops whose total duration reaches the slow threshold. Children
//     are collected either way — the keep decision happens at End, and a
//     slow op must arrive with its breakdown intact. The same threshold
//     drives the slow-op log: one slog line per over-threshold op with the
//     full span breakdown.
//   - Kept traces land in a bounded in-process ring buffer (newest
//     evicts oldest), exposed over GET /debug/traces (internal/server).
//     No exporter, no wire protocol: the recorder is a flight recorder,
//     not a tracing backend.
//
// Like the metrics registry, recording is globally gated by
// Enable/Disable so the instrumented/uninstrumented benchmark pair can
// measure its cost (ksir-bench -exp engine, same 2% CI gate).
package trace

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"log/slog"
	"math"
	randv2 "math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults, overridable per recorder (ksir-server exposes them as flags).
const (
	// DefaultSampleRate is the head-sampling probability for ops that
	// arrive without an upstream sampling decision.
	DefaultSampleRate = 0.01
	// DefaultCapacity bounds the ring buffer of kept traces.
	DefaultCapacity = 512
	// DefaultSlowThreshold is the always-keep latency threshold: an op at
	// least this slow is kept (and logged) regardless of the sample rate.
	DefaultSlowThreshold = time.Second
	// maxOpSpans caps the child spans one op may accumulate, bounding the
	// memory a single pathological operation can pin before its keep
	// decision. Overflow is counted into the root's dropped_spans attr.
	maxOpSpans = 64
)

// enabled gates span recording process-wide, exactly like the metrics
// registry's switch: Start returns nil when off, and every Op method is
// nil-receiver safe, so a disabled process pays one atomic load per op.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enable turns span recording on (the default).
func Enable() { enabled.Store(true) }

// Disable turns span recording off: Start returns nil and the nil Op
// no-ops every method. Reading the ring still works.
func Disable() { enabled.Store(false) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// TraceID identifies one end-to-end trace (16 bytes, hex on the wire).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, hex on the wire).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-char lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalJSON emits the hex form.
func (t TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + t.String() + `"`), nil }

// MarshalJSON emits the hex form ("0000000000000000" for a root's absent
// parent — the tree shape stays explicit in the JSON).
func (s SpanID) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// newTraceID draws a random non-zero trace id.
func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[:8], randv2.Uint64())
		binary.BigEndian.PutUint64(t[8:], randv2.Uint64())
	}
	return t
}

// newSpanID draws a random non-zero span id.
func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], randv2.Uint64())
	}
	return s
}

// SpanContext is the propagatable identity of one span — what crosses
// process boundaries as a W3C traceparent header (traceparent.go).
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context carries usable ids.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Attr is one typed span attribute: a string or an int64, never an
// interface — span recording must not allocate through fmt.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	isInt bool
}

// String builds a string attribute.
func String(key, val string) Attr { return Attr{Key: key, Str: val} }

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Int: val, isInt: true} }

// MarshalJSON emits {"key":...,"value":...} with the value typed.
func (a Attr) MarshalJSON() ([]byte, error) {
	var b []byte
	b = append(b, `{"key":`...)
	b = appendQuoted(b, a.Key)
	b = append(b, `,"value":`...)
	if a.isInt {
		b = appendInt(b, a.Int)
	} else {
		b = appendQuoted(b, a.Str)
	}
	return append(b, '}'), nil
}

func appendQuoted(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch {
		case r == '"' || r == '\\':
			b = append(b, '\\', byte(r))
		case r < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigit(byte(r)>>4), hexDigit(byte(r)&0xf))
		default:
			b = append(b, string(r)...)
		}
	}
	return append(b, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = '0' + byte(v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// Span is one completed span. The root span's Parent is zero.
type Span struct {
	SpanID   SpanID        `json:"span_id"`
	Parent   SpanID        `json:"parent"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Trace is one kept operation: the root span first, children after, in
// recording order.
type Trace struct {
	TraceID  TraceID       `json:"trace_id"`
	Stream   string        `json:"stream,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Slow     bool          `json:"slow,omitempty"`
	Spans    []Span        `json:"spans"`
}

// Op is one in-flight operation's span accumulator. The zero keep/sample
// machinery lives on the Recorder; the Op itself is a plain buffer with no
// lock — at any instant exactly one goroutine owns it (ownership handoffs
// ride existing happens-before edges: channel send into the writer queue,
// done-channel close back out).
//
// All methods are safe on a nil receiver (the disabled / unsampled-path
// contract), so call sites never branch on whether tracing is on.
type Op struct {
	rec     *Recorder
	traceID TraceID
	root    Span
	stream  string
	sampled bool
	spans   []Span
	dropped int
}

// opPool recycles Op buffers (and their span backing arrays): almost every
// op is unsampled and discarded at End, and the pipeline starts one per
// write, so the discard path must not allocate.
var opPool = sync.Pool{New: func() any { return new(Op) }}

// Start begins an op on the default recorder. See Recorder.Start.
func Start(name, stream string, parent SpanContext) *Op {
	return Default().Start(name, stream, parent)
}

// Start begins an op: a fresh root span under parent's trace (or a fresh
// trace when parent is invalid). The head sampling decision is made here —
// inherited from parent.Sampled when a parent exists, drawn against the
// sample rate otherwise. Returns nil when recording is disabled.
//
// Identity is lazy: the trace id and root span id are drawn only when the
// op is kept, propagated (Context/TraceID), or logged — an unsampled,
// un-propagated op pays no random draws.
func (r *Recorder) Start(name, stream string, parent SpanContext) *Op {
	if !enabled.Load() {
		return nil
	}
	o := opPool.Get().(*Op)
	*o = Op{
		rec:    r,
		stream: stream,
		spans:  o.spans[:0],
		root:   Span{Name: name, Start: time.Now()},
	}
	if parent.Valid() {
		o.traceID = parent.TraceID
		o.root.Parent = parent.SpanID
		o.sampled = parent.Sampled
	} else {
		o.sampled = randv2.Float64() < r.SampleRate()
	}
	return o
}

// ids materializes the op's lazily drawn identity (see Recorder.Start).
func (o *Op) ids() {
	if o.traceID.IsZero() {
		o.traceID = newTraceID()
	}
	if o.root.SpanID.IsZero() {
		o.root.SpanID = newSpanID()
	}
}

// release clears the op (dropping the string/attr references its span
// buffer pins) and returns it to the pool. Callers must not touch an op
// after End.
func (o *Op) release() {
	clear(o.spans)
	spans := o.spans[:0]
	*o = Op{spans: spans}
	opPool.Put(o)
}

// Context returns the op's root span context — what downstream hops (the
// SDK's traceparent header, child ops) should parent themselves under.
func (o *Op) Context() SpanContext {
	if o == nil {
		return SpanContext{}
	}
	o.ids()
	return SpanContext{TraceID: o.traceID, SpanID: o.root.SpanID, Sampled: o.sampled}
}

// TraceID returns the op's trace id (zero on nil).
func (o *Op) TraceID() TraceID {
	if o == nil {
		return TraceID{}
	}
	o.ids()
	return o.traceID
}

// SetStream labels the op with the stream it operates on (filterable on
// /debug/traces). Later calls win; empty is ignored.
func (o *Op) SetStream(name string) {
	if o == nil || name == "" {
		return
	}
	o.stream = name
}

// Annotate appends attributes to the root span.
func (o *Op) Annotate(attrs ...Attr) {
	if o == nil {
		return
	}
	o.root.Attrs = append(o.root.Attrs, attrs...)
}

// Child records a completed child of the root span from an explicit start
// and duration, returning its id so grandchildren can parent under it.
func (o *Op) Child(name string, start time.Time, d time.Duration, attrs ...Attr) SpanID {
	return o.ChildOf(SpanID{}, name, start, d, attrs...)
}

// ChildOf records a completed span under parent (zero parent means the
// root). Beyond maxOpSpans the span is dropped and counted.
func (o *Op) ChildOf(parent SpanID, name string, start time.Time, d time.Duration, attrs ...Attr) SpanID {
	if o == nil {
		return SpanID{}
	}
	if len(o.spans) >= maxOpSpans {
		o.dropped++
		return SpanID{}
	}
	// A zero parent stays zero here — it means "under the root", and the
	// root's lazily drawn id is resolved into kept spans at End.
	id := newSpanID()
	o.spans = append(o.spans, Span{
		SpanID: id, Parent: parent, Name: name,
		Start: start, Duration: d, Attrs: attrs,
	})
	return id
}

// End finalizes the op: the root duration is stamped, the keep decision is
// made (head-sampled, or at/over the slow threshold), a kept trace is
// pushed into the ring, and a slow op is logged with its full breakdown.
// The op is recycled — no Op method may be called after End (an immediate
// double End is tolerated, but any use past that is a ownership bug, same
// as writing to a closed channel).
func (o *Op) End() {
	if o == nil || o.rec == nil {
		return
	}
	r := o.rec
	o.rec = nil
	o.root.Duration = time.Since(o.root.Start)
	slowT := r.SlowThreshold()
	slow := slowT > 0 && o.root.Duration >= slowT
	if !o.sampled && !slow {
		o.release()
		return
	}
	o.ids()
	if slow {
		r.logSlow(o)
	}
	if o.dropped > 0 {
		o.root.Attrs = append(o.root.Attrs, Int("dropped_spans", int64(o.dropped)))
	}
	spans := make([]Span, 0, 1+len(o.spans))
	spans = append(spans, o.root)
	for _, s := range o.spans {
		if s.Parent.IsZero() {
			s.Parent = o.root.SpanID
		}
		spans = append(spans, s)
	}
	r.push(&Trace{
		TraceID:  o.traceID,
		Stream:   o.stream,
		Start:    o.root.Start,
		Duration: o.root.Duration,
		Slow:     slow,
		Spans:    spans,
	})
	o.release()
}

// Recorder keeps completed traces in a bounded ring. All knobs are
// runtime-adjustable and concurrency-safe.
type Recorder struct {
	mu   sync.Mutex
	ring []*Trace // fixed-size circular buffer, allocated lazily
	next int      // next insert position
	size int      // filled slots

	capn   atomic.Int64
	rate   atomic.Uint64 // math.Float64bits
	slow   atomic.Int64  // ns; 0 disables the always-keep path
	logger atomic.Pointer[slog.Logger]
}

// NewRecorder builds a recorder holding up to capacity traces (<=0 means
// DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	r := &Recorder{}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r.capn.Store(int64(capacity))
	r.rate.Store(math.Float64bits(DefaultSampleRate))
	r.slow.Store(int64(DefaultSlowThreshold))
	return r
}

var defaultRecorder = NewRecorder(DefaultCapacity)

// Default returns the process-wide recorder Start records into.
func Default() *Recorder { return defaultRecorder }

// SetSampleRate sets the head-sampling probability, clamped to [0,1].
func (r *Recorder) SetSampleRate(p float64) {
	r.rate.Store(math.Float64bits(math.Min(1, math.Max(0, p))))
}

// SampleRate returns the head-sampling probability.
func (r *Recorder) SampleRate() float64 { return math.Float64frombits(r.rate.Load()) }

// SetSlowThreshold sets the always-keep (and slow-log) latency threshold;
// 0 disables the path.
func (r *Recorder) SetSlowThreshold(d time.Duration) { r.slow.Store(int64(d)) }

// SlowThreshold returns the always-keep latency threshold.
func (r *Recorder) SlowThreshold() time.Duration { return time.Duration(r.slow.Load()) }

// SetLogger sets the slog logger slow ops are reported to (nil silences
// them; the traces are still kept).
func (r *Recorder) SetLogger(l *slog.Logger) { r.logger.Store(l) }

// SetCapacity resizes the ring, preserving the most recent traces that
// fit (<=0 means DefaultCapacity).
func (r *Recorder) SetCapacity(capacity int) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.snapshotLocked(Filter{Limit: capacity}) // newest-first
	r.capn.Store(int64(capacity))
	r.ring = make([]*Trace, capacity)
	r.next, r.size = 0, 0
	for i := len(kept) - 1; i >= 0; i-- { // reinsert oldest-first
		r.ring[r.next] = kept[i]
		r.next = (r.next + 1) % capacity
		r.size++
	}
}

// Len returns how many traces the ring currently holds.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// push inserts one kept trace, evicting the oldest at capacity.
func (r *Recorder) push(tr *Trace) {
	capn := int(r.capn.Load())
	r.mu.Lock()
	if len(r.ring) != capn {
		// Lazy allocation (and a belt-and-suspenders resync if capn moved
		// without SetCapacity's rebuild, which cannot happen today).
		r.ring = make([]*Trace, capn)
		r.next, r.size = 0, 0
	}
	r.ring[r.next] = tr
	r.next = (r.next + 1) % capn
	if r.size < capn {
		r.size++
	}
	r.mu.Unlock()
}

// Filter selects traces out of the ring.
type Filter struct {
	// Stream keeps only traces labeled with this stream ("" keeps all).
	Stream string
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// Limit caps the result count (<=0 means no cap).
	Limit int
}

// Snapshot returns matching traces, newest first. The returned traces are
// shared (immutable after push); callers must not mutate them.
func (r *Recorder) Snapshot(f Filter) []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked(f)
}

func (r *Recorder) snapshotLocked(f Filter) []*Trace {
	out := []*Trace{}
	n := len(r.ring)
	for i := 1; i <= r.size; i++ {
		tr := r.ring[((r.next-i)%n+n)%n]
		if f.Stream != "" && tr.Stream != f.Stream {
			continue
		}
		if tr.Duration < f.MinDuration {
			continue
		}
		out = append(out, tr)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// logSlow emits the one-line slow-op report: identity plus the full child
// breakdown, so the log alone answers where the op's time went.
func (r *Recorder) logSlow(o *Op) {
	l := r.logger.Load()
	if l == nil {
		return
	}
	var b strings.Builder
	for i, sp := range o.spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.Name)
		b.WriteByte('=')
		b.WriteString(sp.Duration.String())
	}
	l.Warn("slow op",
		"trace_id", o.traceID.String(),
		"op", o.root.Name,
		"stream", o.stream,
		"duration", o.root.Duration,
		"spans", b.String(),
	)
}

// opKey carries an *Op through a context; remoteKey carries a bare
// SpanContext injected by a caller that has no local op (the SDK's
// WithTraceparent path).
type opKey struct{}
type remoteKey struct{}

// ContextWith returns ctx carrying op (no-op for a nil op).
func ContextWith(ctx context.Context, op *Op) context.Context {
	if op == nil {
		return ctx
	}
	return context.WithValue(ctx, opKey{}, op)
}

// FromContext returns the op carried by ctx, or nil. A nil ctx is
// tolerated (callers in the hot path pass contexts straight through).
func FromContext(ctx context.Context) *Op {
	if ctx == nil {
		return nil
	}
	op, _ := ctx.Value(opKey{}).(*Op)
	return op
}

// ContextWithRemote returns ctx carrying an upstream span context to
// propagate (used when the caller holds a traceparent but no local Op).
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// SpanContextFromContext extracts the span context to propagate from ctx:
// the local op's root if one is present, else an injected remote context.
func SpanContextFromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	if op := FromContext(ctx); op != nil {
		return op.Context(), true
	}
	sc, ok := ctx.Value(remoteKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}
