package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// startSampled begins a parentless op on r that is certainly head-sampled.
func startSampled(r *Recorder, name, stream string) *Op {
	old := r.SampleRate()
	r.SetSampleRate(1)
	op := r.Start(name, stream, SpanContext{})
	r.SetSampleRate(old)
	return op
}

func TestOpRecordsSpanTree(t *testing.T) {
	r := NewRecorder(8)
	r.SetSlowThreshold(0)
	op := startSampled(r, "http.posts", "feed")
	if op == nil {
		t.Fatal("Start returned nil with recording enabled")
	}
	start := time.Now()
	batch := op.Child("commit.batch", start, 5*time.Millisecond, Int("batch.ops", 3))
	op.ChildOf(batch, "engine.apply", start, 2*time.Millisecond)
	op.ChildOf(batch, "wal.append", start, time.Millisecond, String("policy", "always"))
	op.End()

	traces := r.Snapshot(Filter{})
	if len(traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Stream != "feed" {
		t.Fatalf("stream = %q", tr.Stream)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("got %d spans, want 4 (root + 3 children)", len(tr.Spans))
	}
	root := tr.Spans[0]
	if root.Name != "http.posts" || !root.Parent.IsZero() {
		t.Fatalf("root = %+v", root)
	}
	if tr.Spans[1].Parent != root.SpanID {
		t.Fatal("commit.batch not parented to root")
	}
	if tr.Spans[2].Parent != tr.Spans[1].SpanID || tr.Spans[3].Parent != tr.Spans[1].SpanID {
		t.Fatal("apply/append not parented to commit.batch")
	}
	if tr.Duration <= 0 {
		t.Fatal("root duration not stamped")
	}
}

func TestInheritedParentLinksRoot(t *testing.T) {
	r := NewRecorder(8)
	r.SetSlowThreshold(0)
	parent := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	op := r.Start("http.query", "s", parent)
	op.End()
	traces := r.Snapshot(Filter{})
	if len(traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(traces))
	}
	if traces[0].TraceID != parent.TraceID {
		t.Fatal("trace id not inherited from parent")
	}
	if traces[0].Spans[0].Parent != parent.SpanID {
		t.Fatal("root not parented under the remote span")
	}
}

func TestSamplingByRate(t *testing.T) {
	r := NewRecorder(4096)
	r.SetSlowThreshold(0)

	r.SetSampleRate(0)
	for i := 0; i < 100; i++ {
		r.Start("op", "", SpanContext{}).End()
	}
	if n := r.Len(); n != 0 {
		t.Fatalf("rate 0 kept %d traces", n)
	}

	r.SetSampleRate(1)
	for i := 0; i < 100; i++ {
		r.Start("op", "", SpanContext{}).End()
	}
	if n := r.Len(); n != 100 {
		t.Fatalf("rate 1 kept %d traces, want 100", n)
	}

	// Unsampled inherited decision is honored even at rate 1.
	r2 := NewRecorder(16)
	r2.SetSlowThreshold(0)
	r2.SetSampleRate(1)
	parent := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: false}
	r2.Start("op", "", parent).End()
	if n := r2.Len(); n != 0 {
		t.Fatalf("unsampled parent kept %d traces", n)
	}
}

func TestSlowOpAlwaysKeptAndLogged(t *testing.T) {
	r := NewRecorder(8)
	r.SetSampleRate(0)
	r.SetSlowThreshold(time.Nanosecond) // everything is slow
	var buf bytes.Buffer
	r.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))

	op := r.Start("http.flush", "feed", SpanContext{})
	op.Child("wal.fsync", time.Now(), 3*time.Millisecond)
	time.Sleep(time.Millisecond)
	op.End()

	traces := r.Snapshot(Filter{})
	if len(traces) != 1 || !traces[0].Slow {
		t.Fatalf("slow op not kept: %+v", traces)
	}
	logged := buf.String()
	for _, want := range []string{"slow op", "http.flush", "feed", "wal.fsync=", "trace_id="} {
		if !strings.Contains(logged, want) {
			t.Fatalf("slow-op log %q missing %q", logged, want)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(4)
	r.SetSlowThreshold(0)
	for i := 0; i < 10; i++ {
		op := startSampled(r, "op", "")
		op.Annotate(Int("i", int64(i)))
		op.End()
	}
	if n := r.Len(); n != 4 {
		t.Fatalf("ring holds %d, want capacity 4", n)
	}
	traces := r.Snapshot(Filter{})
	// Newest first: 9, 8, 7, 6.
	for i, tr := range traces {
		if got := tr.Spans[0].Attrs[0].Int; got != int64(9-i) {
			t.Fatalf("snapshot[%d] = op %d, want %d", i, got, 9-i)
		}
	}
}

func TestSnapshotFilters(t *testing.T) {
	r := NewRecorder(16)
	r.SetSlowThreshold(0)
	for i, stream := range []string{"a", "b", "a", "b"} {
		op := startSampled(r, "op", stream)
		op.Annotate(Int("i", int64(i)))
		op.End()
	}
	if got := len(r.Snapshot(Filter{Stream: "a"})); got != 2 {
		t.Fatalf("stream filter kept %d, want 2", got)
	}
	if got := len(r.Snapshot(Filter{Limit: 3})); got != 3 {
		t.Fatalf("limit kept %d, want 3", got)
	}
	if got := len(r.Snapshot(Filter{MinDuration: time.Hour})); got != 0 {
		t.Fatalf("min-duration kept %d, want 0", got)
	}
}

func TestSpanCapCountsDrops(t *testing.T) {
	r := NewRecorder(4)
	r.SetSlowThreshold(0)
	op := startSampled(r, "op", "")
	for i := 0; i < maxOpSpans+7; i++ {
		op.Child("c", time.Now(), time.Microsecond)
	}
	op.End()
	tr := r.Snapshot(Filter{})[0]
	if len(tr.Spans) != 1+maxOpSpans {
		t.Fatalf("kept %d spans, want %d", len(tr.Spans), 1+maxOpSpans)
	}
	var dropped int64
	for _, a := range tr.Spans[0].Attrs {
		if a.Key == "dropped_spans" {
			dropped = a.Int
		}
	}
	if dropped != 7 {
		t.Fatalf("dropped_spans = %d, want 7", dropped)
	}
}

func TestDisableMakesStartNil(t *testing.T) {
	Disable()
	defer Enable()
	op := Start("op", "", SpanContext{})
	if op != nil {
		t.Fatal("Start returned a live op while disabled")
	}
	// The nil op must be inert end to end.
	op.SetStream("x")
	op.Annotate(Int("k", 1))
	id := op.Child("c", time.Now(), time.Second)
	op.ChildOf(id, "d", time.Now(), time.Second)
	op.End()
	if (op.Context() != SpanContext{}) {
		t.Fatal("nil op produced a span context")
	}
}

func TestEndIdempotent(t *testing.T) {
	r := NewRecorder(8)
	r.SetSlowThreshold(0)
	op := startSampled(r, "op", "")
	op.End()
	op.End()
	if n := r.Len(); n != 1 {
		t.Fatalf("double End kept %d traces", n)
	}
}

func TestSetCapacityPreservesNewest(t *testing.T) {
	r := NewRecorder(8)
	r.SetSlowThreshold(0)
	for i := 0; i < 6; i++ {
		op := startSampled(r, "op", "")
		op.Annotate(Int("i", int64(i)))
		op.End()
	}
	r.SetCapacity(2)
	traces := r.Snapshot(Filter{})
	if len(traces) != 2 {
		t.Fatalf("after shrink ring holds %d, want 2", len(traces))
	}
	if traces[0].Spans[0].Attrs[0].Int != 5 || traces[1].Spans[0].Attrs[0].Int != 4 {
		t.Fatalf("shrink kept wrong traces: %d, %d",
			traces[0].Spans[0].Attrs[0].Int, traces[1].Spans[0].Attrs[0].Int)
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := NewRecorder(4)
	op := startSampled(r, "op", "")
	ctx := ContextWith(context.Background(), op)
	if FromContext(ctx) != op {
		t.Fatal("op did not round-trip through context")
	}
	sc, ok := SpanContextFromContext(ctx)
	if !ok || sc != op.Context() {
		t.Fatal("span context not derived from the op")
	}

	remote := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	rctx := ContextWithRemote(context.Background(), remote)
	if got, ok := SpanContextFromContext(rctx); !ok || got != remote {
		t.Fatal("remote span context not carried")
	}
	if _, ok := SpanContextFromContext(context.Background()); ok {
		t.Fatal("empty context produced a span context")
	}
}

func TestTraceJSONShape(t *testing.T) {
	r := NewRecorder(4)
	r.SetSlowThreshold(0)
	op := startSampled(r, "http.posts", "feed")
	op.Child("wal.fsync", time.Now(), 2*time.Millisecond, Int("records", 3), String("policy", "always"))
	op.End()
	raw, err := json.Marshal(r.Snapshot(Filter{})[0])
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceID string `json:"trace_id"`
		Stream  string `json:"stream"`
		Spans   []struct {
			SpanID string `json:"span_id"`
			Parent string `json:"parent"`
			Name   string `json:"name"`
			Dur    int64  `json:"duration_ns"`
			Attrs  []struct {
				Key   string          `json:"key"`
				Value json.RawMessage `json:"value"`
			} `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("round-trip failed on %s: %v", raw, err)
	}
	if len(decoded.TraceID) != 32 || decoded.Stream != "feed" || len(decoded.Spans) != 2 {
		t.Fatalf("unexpected shape: %s", raw)
	}
	child := decoded.Spans[1]
	if child.Parent != decoded.Spans[0].SpanID || child.Dur != int64(2*time.Millisecond) {
		t.Fatalf("child shape wrong: %s", raw)
	}
	if len(child.Attrs) != 2 || child.Attrs[0].Key != "records" ||
		string(child.Attrs[0].Value) != "3" || string(child.Attrs[1].Value) != `"always"` {
		t.Fatalf("attr shape wrong: %s", raw)
	}
}

// The pipeline starts one op per write and records ~6 children whether or
// not the op is sampled (a slow op must surface with its breakdown
// intact), so the unsampled path is the per-op hot cost the overhead gate
// meters. Keep it allocation-light.
func BenchmarkUnsampledOp(b *testing.B) {
	rec := NewRecorder(8)
	rec.SetSampleRate(0)
	rec.SetSlowThreshold(time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := rec.Start("bench.op", "bench", SpanContext{})
		start := time.Now()
		op.Child("engine.apply", start, time.Since(start))
		op.End()
	}
}
