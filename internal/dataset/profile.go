// Package dataset generates synthetic social streams whose shape matches
// the three corpora of the paper's evaluation (Table 3): AMiner (long
// documents, many citation-style references into the distant past), Reddit
// (short comments, moderate reference rate) and Twitter (very short tweets,
// retweet-style references concentrated on recent popular elements).
//
// The real corpora are not redistributable; DESIGN.md §3 records why these
// generators preserve the behaviours the algorithms under test depend on:
// Zipf-skewed word usage, 1–2 topics per element, skewed element scores,
// and recency/popularity-biased reference graphs.
package dataset

import (
	"math"

	"github.com/social-streams/ksir/internal/stream"
)

// RefStyle selects how references pick their targets.
type RefStyle int

const (
	// Citation references reach far into the past with mild popularity
	// bias (academic corpora).
	Citation RefStyle = iota
	// Retweet references target very recent, popular, same-topic elements
	// (microblog corpora).
	Retweet
)

// Profile describes a synthetic corpus. All counts are expectations; the
// generator draws per-element values around them.
type Profile struct {
	Name string
	// Elements is the stream size.
	Elements int
	// Vocab is the vocabulary size after preprocessing (Table 3 reports
	// 71K/88K/68K for the full-size corpora; scaled profiles shrink it
	// proportionally).
	Vocab int
	// AvgLen is the mean token count per element (49.2 / 8.6 / 5.1).
	AvgLen float64
	// AvgRefs is the mean number of references per element
	// (3.68 / 0.85 / 0.62).
	AvgRefs float64
	// Topics is the number of generating topics.
	Topics int
	// Style selects citation- or retweet-shaped reference graphs.
	Style RefStyle
	// Duration is the stream length in seconds; arrivals spread uniformly
	// with mild burstiness.
	Duration stream.Time
	// Eta is the paper's per-dataset influence rescale η (20/20/200).
	Eta float64
	// TopicConcentration is the probability mass of an element's primary
	// topic (the rest goes to one secondary topic), keeping the average
	// topics-per-element below 2 as observed in §4.
	TopicConcentration float64
}

// scale shrinks a full-size profile to n elements, keeping the shape
// parameters and shrinking the vocabulary sublinearly (Heaps' law, V ∝ n^0.6).
func (p Profile) scale(n int) Profile {
	if n <= 0 || n == p.Elements {
		return p
	}
	ratio := float64(n) / float64(p.Elements)
	p.Vocab = int(float64(p.Vocab) * math.Pow(ratio, 0.6))
	// Floor: every topic needs a usable word slice after the 15%
	// background share (see Generate).
	if floor := p.Topics * 12; p.Vocab < floor {
		p.Vocab = floor
	}
	if p.Vocab < 200 {
		p.Vocab = 200
	}
	p.Duration = stream.Time(float64(p.Duration) * ratio)
	if p.Duration < 3600 {
		p.Duration = 3600
	}
	p.Elements = n
	return p
}

// AMinerLike mirrors the AMiner corpus: 1.66M papers, 71K pruned vocab,
// 49.2 avg tokens, 3.68 avg references, citation-style reference graph.
// The full stream spans years; scaled versions compress proportionally.
func AMinerLike(n int) Profile {
	p := Profile{
		Name:               "AMiner",
		Elements:           1660000,
		Vocab:              71000,
		AvgLen:             49.2,
		AvgRefs:            3.68,
		Topics:             50,
		Style:              Citation,
		Duration:           1660000, // ~1 element/second
		Eta:                20,
		TopicConcentration: 0.85,
	}
	return p.scale(n)
}

// RedditLike mirrors the Reddit corpus: 20.2M comments over 14 days, 88K
// vocab, 8.6 avg tokens, 0.85 avg references (comment parents).
func RedditLike(n int) Profile {
	p := Profile{
		Name:               "Reddit",
		Elements:           20200000,
		Vocab:              88000,
		AvgLen:             8.6,
		AvgRefs:            0.85,
		Topics:             50,
		Style:              Retweet,
		Duration:           14 * 24 * 3600,
		Eta:                20,
		TopicConcentration: 0.85,
	}
	return p.scale(n)
}

// TwitterLike mirrors the Twitter corpus: 14.8M tweets over 12 days, 68K
// vocab, 5.1 avg tokens, 0.62 avg references (retweets/hashtag adoption).
func TwitterLike(n int) Profile {
	p := Profile{
		Name:               "Twitter",
		Elements:           14800000,
		Vocab:              68000,
		AvgLen:             5.1,
		AvgRefs:            0.62,
		Topics:             50,
		Style:              Retweet,
		Duration:           12 * 24 * 3600,
		Eta:                200,
		TopicConcentration: 0.85,
	}
	return p.scale(n)
}
