package dataset

import (
	"math/rand"
	"sort"

	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// QuerySpec is one generated k-SIR query: the keywords (for the
// keyword-based comparators), the inferred topic vector (for the
// vector-based methods) and the timestamp at which it should be issued.
type QuerySpec struct {
	Keywords []textproc.WordID
	X        topicmodel.TopicVec
	At       stream.Time
}

// GenerateQueries builds a workload the way §5.1 prescribes: each query
// draws 1–5 words from the vocabulary (frequency-weighted, so queries hit
// real content the way user queries do), infers the query vector from the
// keywords as a pseudo-document, and gets a random timestamp in [1, tn].
// Query vectors are truncated to their top 5 topics with p ≥ 0.05 and
// renormalized: user queries are topically focused, and d (the non-zero
// entries) directly scales both the evaluation cost and the looseness of
// the ranked-list upper bound (§4.2).
func GenerateQueries(n int, d *Dataset, inf *topicmodel.Inferencer, seed int64) []QuerySpec {
	rng := rand.New(rand.NewSource(seed))
	sampler := newFreqSampler(d.Vocab)
	tn := d.Profile.Duration
	queries := make([]QuerySpec, 0, n)
	for len(queries) < n {
		nw := 1 + rng.Intn(5)
		kws := make([]textproc.WordID, nw)
		for j := range kws {
			kws[j] = sampler.draw(rng)
		}
		x := inf.InferDense(kws).Truncate(5, 0.05)
		if x.Len() == 0 {
			continue // all-unknown keywords; redraw
		}
		queries = append(queries, QuerySpec{
			Keywords: kws,
			X:        x,
			At:       1 + stream.Time(rng.Int63n(int64(tn))),
		})
	}
	// Sort by timestamp so the harness can interleave them with the stream.
	sort.Slice(queries, func(i, j int) bool { return queries[i].At < queries[j].At })
	return queries
}

// freqSampler draws words proportionally to corpus frequency via the alias
// of a cumulative table + binary search.
type freqSampler struct {
	cum   []int64
	total int64
}

func newFreqSampler(v *textproc.Vocabulary) *freqSampler {
	s := &freqSampler{cum: make([]int64, v.Size())}
	var run int64
	for i := 0; i < v.Size(); i++ {
		run += v.Freq(textproc.WordID(i)) + 1 // +1 smoothing: unseen words stay drawable
		s.cum[i] = run
	}
	s.total = run
	return s
}

func (s *freqSampler) draw(rng *rand.Rand) textproc.WordID {
	r := rng.Int63n(s.total)
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] > r {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return textproc.WordID(lo)
}
