package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Dataset is one generated synthetic corpus: the elements (documents,
// references and timestamps filled in; topic vectors left to the caller's
// topic-model pipeline), the token documents for topic training, and the
// vocabulary.
type Dataset struct {
	Profile  Profile
	Elements []*stream.Element
	Docs     [][]textproc.WordID // token sequences, parallel to Elements
	Vocab    *textproc.Vocabulary
	// TrueTopics is the generator's latent assignment (primary topic per
	// element) — usable as an oracle in place of trained inference.
	TrueTopics []topicmodel.TopicVec
}

// Generate builds a synthetic stream for the profile.
//
// Word model: each topic owns a Zipf-distributed distribution over a
// topic-specific slice of the vocabulary plus a shared background slice, so
// word usage is skewed and topics are separable but overlapping. Element
// model: a primary topic (Zipf-popular), with probability (1−conc) mixed
// with a secondary topic. Reference model: per-element count ~ Poisson
// (AvgRefs); targets drawn with recency and in-degree (popularity) bias and
// a same-topic preference — Citation style reaches the whole past, Retweet
// style concentrates on the most recent elements.
func Generate(p Profile, seed int64) (*Dataset, error) {
	if p.Elements <= 0 || p.Vocab <= 0 || p.Topics <= 0 {
		return nil, fmt.Errorf("dataset: profile needs positive Elements/Vocab/Topics, got %+v", p)
	}
	rng := rand.New(rand.NewSource(seed))

	// Vocabulary: "word0000" .. interned in order so WordID == index.
	vocab := textproc.NewVocabulary()
	for w := 0; w < p.Vocab; w++ {
		vocab.Add(fmt.Sprintf("w%05d", w))
	}

	// Topic → word sampler. 15% of the vocabulary is shared background;
	// the rest is split into per-topic slices.
	background := p.Vocab * 15 / 100
	perTopic := (p.Vocab - background) / p.Topics
	if perTopic < 5 {
		return nil, fmt.Errorf("dataset: vocab %d too small for %d topics", p.Vocab, p.Topics)
	}
	topicZipf := rand.NewZipf(rng, 1.2, 1, uint64(perTopic-1))
	bgZipf := rand.NewZipf(rng, 1.2, 1, uint64(background-1))

	// Topic popularity is itself skewed: a few trending topics dominate,
	// which yields the skewed element-score distribution §4 reports.
	topicPop := rand.NewZipf(rng, 1.3, 2, uint64(p.Topics-1))

	ds := &Dataset{
		Profile:    p,
		Elements:   make([]*stream.Element, 0, p.Elements),
		Docs:       make([][]textproc.WordID, 0, p.Elements),
		Vocab:      vocab,
		TrueTopics: make([]topicmodel.TopicVec, 0, p.Elements),
	}

	inDegree := make([]int, p.Elements+1) // 1-based by element ID
	primary := make([]int32, p.Elements+1)

	for i := 1; i <= p.Elements; i++ {
		ts := stream.Time(1 + int64(float64(i-1)/float64(p.Elements)*float64(p.Duration)))

		// Topics.
		prim := int32(topicPop.Uint64())
		primary[i] = prim
		var tv topicmodel.TopicVec
		if rng.Float64() < p.TopicConcentration || p.Topics == 1 {
			tv = topicmodel.TopicVec{Topics: []int32{prim}, Probs: []float64{1}}
		} else {
			sec := int32(topicPop.Uint64())
			for sec == prim {
				sec = int32(topicPop.Uint64())
			}
			pp := 0.6 + 0.3*rng.Float64()
			if prim < sec {
				tv = topicmodel.TopicVec{Topics: []int32{prim, sec}, Probs: []float64{pp, 1 - pp}}
			} else {
				tv = topicmodel.TopicVec{Topics: []int32{sec, prim}, Probs: []float64{1 - pp, pp}}
			}
		}

		// Words: a two-regime length mixture (80% short posts, 20% long,
		// same mean). Real social corpora have heavy-tailed lengths, and
		// that tail produces the strongly skewed element scores §4 reports
		// ("only 0.4% of elements have scores greater than 0.9") that the
		// ranked-list pruning exploits.
		mean := p.AvgLen * 0.6
		if rng.Float64() < 0.2 {
			mean = p.AvgLen * 2.6
		}
		n := 1 + poisson(rng, mean-1)
		doc := make([]textproc.WordID, n)
		for j := range doc {
			topic := prim
			if tv.Len() == 2 && rng.Float64() > tv.Prob(prim) {
				for _, t2 := range tv.Topics {
					if t2 != prim {
						topic = t2
					}
				}
			}
			if rng.Float64() < 0.2 {
				doc[j] = textproc.WordID(int(bgZipf.Uint64()))
			} else {
				doc[j] = textproc.WordID(background + int(topic)*perTopic + int(topicZipf.Uint64()))
			}
		}
		vocab.ObserveDoc(doc)

		// References.
		nRefs := poisson(rng, p.AvgRefs)
		refs := drawRefs(rng, p, i, nRefs, inDegree, primary)
		for _, r := range refs {
			inDegree[r]++
		}

		e := &stream.Element{
			ID:   stream.ElemID(i),
			TS:   ts,
			Doc:  textproc.NewDocument(doc),
			Refs: refs,
		}
		ds.Elements = append(ds.Elements, e)
		ds.Docs = append(ds.Docs, doc)
		ds.TrueTopics = append(ds.TrueTopics, tv)
	}
	return ds, nil
}

// drawRefs picks nRefs distinct earlier element IDs with style-dependent
// recency bias, preferential attachment and same-topic preference.
func drawRefs(rng *rand.Rand, p Profile, i, nRefs int, inDegree []int, primary []int32) []stream.ElemID {
	if i == 1 || nRefs == 0 {
		return nil
	}
	seen := make(map[int]struct{}, nRefs)
	var refs []stream.ElemID
	for attempt := 0; attempt < nRefs*8 && len(refs) < nRefs; attempt++ {
		var target int
		switch p.Style {
		case Retweet:
			// Exponential recency: most retweets hit the near past.
			back := int(rng.ExpFloat64() * 0.02 * float64(i))
			if back >= i-1 {
				back = i - 2
			}
			target = i - 1 - back
		default: // Citation: log-uniform over the whole past.
			u := rng.Float64()
			target = 1 + int(math.Pow(float64(i-1), u)) - 1
			if target < 1 {
				target = 1
			}
			if target >= i {
				target = i - 1
			}
		}
		// Preferential attachment: accept popular targets more readily.
		accept := 0.3 + 0.7*float64(inDegree[target])/float64(inDegree[target]+3)
		// Same-topic preference.
		if primary[target] == primary[i] {
			accept += 0.3
		}
		if rng.Float64() > accept {
			continue
		}
		if _, dup := seen[target]; dup {
			continue
		}
		seen[target] = struct{}{}
		refs = append(refs, stream.ElemID(target))
	}
	sort.Slice(refs, func(a, b int) bool { return refs[a] < refs[b] })
	return refs
}

// poisson draws from Poisson(mean) via Knuth's method (mean is small here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > int(mean*20+50) { // numeric guard
			return k
		}
	}
}

// Stats summarizes a generated dataset in Table 3's terms.
type Stats struct {
	Elements  int
	VocabSize int
	AvgLen    float64
	AvgRefs   float64
}

// ComputeStats measures the generated corpus.
func (d *Dataset) ComputeStats() Stats {
	var tokens, refs int
	for i, e := range d.Elements {
		tokens += len(d.Docs[i])
		refs += len(e.Refs)
	}
	n := len(d.Elements)
	st := Stats{Elements: n, VocabSize: d.Vocab.Size()}
	if n > 0 {
		st.AvgLen = float64(tokens) / float64(n)
		st.AvgRefs = float64(refs) / float64(n)
	}
	return st
}
