package dataset

import (
	"math"
	"testing"

	"github.com/social-streams/ksir/internal/topicmodel"
)

func TestGenerateShapeMatchesProfile(t *testing.T) {
	for _, mk := range []func(int) Profile{AMinerLike, RedditLike, TwitterLike} {
		p := mk(3000)
		ds, err := Generate(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		st := ds.ComputeStats()
		if st.Elements != 3000 {
			t.Errorf("%s: elements = %d", p.Name, st.Elements)
		}
		if math.Abs(st.AvgLen-p.AvgLen)/p.AvgLen > 0.15 {
			t.Errorf("%s: avg len = %.2f, want ≈%.1f", p.Name, st.AvgLen, p.AvgLen)
		}
		if math.Abs(st.AvgRefs-p.AvgRefs)/p.AvgRefs > 0.30 {
			t.Errorf("%s: avg refs = %.2f, want ≈%.2f", p.Name, st.AvgRefs, p.AvgRefs)
		}
	}
}

func TestGenerateValidStream(t *testing.T) {
	ds, err := Generate(TwitterLike(2000), 2)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64
	for i, e := range ds.Elements {
		if int64(e.TS) < prev {
			t.Fatalf("timestamps out of order at %d", i)
		}
		prev = int64(e.TS)
		for _, r := range e.Refs {
			if r >= e.ID {
				t.Fatalf("e%d references non-earlier e%d", e.ID, r)
			}
		}
		if e.Doc.Len == 0 {
			t.Fatalf("e%d has empty doc", e.ID)
		}
	}
	// True topic vectors are distributions.
	for i, tv := range ds.TrueTopics {
		if tv.Len() == 0 || math.Abs(tv.Sum()-1) > 1e-9 {
			t.Fatalf("element %d true topics %+v", i, tv)
		}
		if tv.Len() > 2 {
			t.Fatalf("element %d has %d topics, generator promises ≤2", i, tv.Len())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(RedditLike(500), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(RedditLike(500), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Elements {
		if a.Elements[i].TS != b.Elements[i].TS ||
			a.Elements[i].Doc.Len != b.Elements[i].Doc.Len ||
			len(a.Elements[i].Refs) != len(b.Elements[i].Refs) {
			t.Fatal("same seed produced different datasets")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Profile{}, 1); err == nil {
		t.Error("empty profile accepted")
	}
	bad := Profile{Elements: 10, Vocab: 20, Topics: 50, AvgLen: 3, Duration: 100}
	if _, err := Generate(bad, 1); err == nil {
		t.Error("vocab too small for topics accepted")
	}
}

func TestRetweetRefsAreRecent(t *testing.T) {
	p := TwitterLike(4000)
	p.AvgRefs = 1.5
	ds, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	var gaps []float64
	for _, e := range ds.Elements {
		for _, r := range e.Refs {
			gaps = append(gaps, float64(e.ID)-float64(r))
		}
	}
	med := median(gaps)
	// Retweet style: median reference gap well under 10% of the stream.
	if med > 0.1*float64(p.Elements) {
		t.Errorf("retweet median gap = %.0f of %d elements", med, p.Elements)
	}
}

func TestCitationRefsReachThePast(t *testing.T) {
	p := AMinerLike(4000)
	ds, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	var gaps []float64
	for _, e := range ds.Elements {
		for _, r := range e.Refs {
			gaps = append(gaps, float64(e.ID)-float64(r))
		}
	}
	med := median(gaps)
	// Citation style reaches much further back than retweets.
	if med < 0.05*float64(p.Elements) {
		t.Errorf("citation median gap = %.0f, too recent", med)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestGenerateQueries(t *testing.T) {
	ds, err := Generate(TwitterLike(2000), 5)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := topicmodel.TrainLDA(ds.Docs[:500], topicmodel.LDAConfig{
		Topics: 10, VocabSize: ds.Vocab.Size(), Iterations: 20, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	inf := topicmodel.NewInferencer(m, 5)
	qs := GenerateQueries(50, ds, inf, 11)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	var prev int64
	for i, q := range qs {
		if len(q.Keywords) < 1 || len(q.Keywords) > 5 {
			t.Errorf("query %d has %d keywords", i, len(q.Keywords))
		}
		if q.X.Len() == 0 || q.X.Len() > 8 {
			t.Errorf("query %d vector has %d topics", i, q.X.Len())
		}
		if math.Abs(q.X.Sum()-1) > 1e-9 {
			t.Errorf("query %d vector sums to %v", i, q.X.Sum())
		}
		if int64(q.At) < prev {
			t.Errorf("queries not time-sorted at %d", i)
		}
		prev = int64(q.At)
	}
}

func TestProfileScaling(t *testing.T) {
	full := AMinerLike(0) // 0 keeps full size
	small := AMinerLike(1000)
	if small.Elements != 1000 {
		t.Errorf("Elements = %d", small.Elements)
	}
	if small.Vocab >= full.Vocab {
		t.Error("vocab did not shrink")
	}
	if small.Vocab < 200 {
		t.Error("vocab below floor")
	}
	if small.AvgLen != full.AvgLen || small.AvgRefs != full.AvgRefs {
		t.Error("shape parameters must not change with scale")
	}
}
