// Package evalmetrics implements the quantitative effectiveness measures of
// §5.2 (Table 6): the information-coverage score and the normalized
// influence score, plus Cohen's linearly weighted kappa used to report
// inter-judge agreement in the user study (Table 5).
package evalmetrics

import (
	"sort"

	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Coverage computes the coverage score of result set S w.r.t. query x over
// the active elements (following [2, 20] as §5.2 does):
//
//	Σ_{e ∈ A_t \ S} max_{e' ∈ S} rel(e, x) · sim(e, e')
//
// rel is the topic-space cosine relevance of e to the query; sim is the
// content similarity between elements. The score is normalized by the total
// relevance mass Σ rel(e, x) so values are comparable across queries and
// bounded by 1.
func Coverage(actives []*stream.Element, s []*stream.Element, x topicmodel.TopicVec,
	sim func(a, b *stream.Element) float64) float64 {
	if len(s) == 0 || len(actives) == 0 {
		return 0
	}
	inS := make(map[stream.ElemID]struct{}, len(s))
	for _, e := range s {
		inS[e.ID] = struct{}{}
	}
	var covered, total float64
	for _, e := range actives {
		rel := e.Topics.Cosine(x)
		if rel == 0 {
			continue
		}
		total += rel
		if _, ok := inS[e.ID]; ok {
			covered += rel // a selected element covers itself fully
			continue
		}
		var best float64
		for _, r := range s {
			if v := sim(e, r); v > best {
				best = v
			}
		}
		covered += rel * best
	}
	if total == 0 {
		return 0
	}
	return covered / total
}

// TopicSim is the default element-similarity function for Coverage: the
// cosine of the elements' topic vectors.
func TopicSim(a, b *stream.Element) float64 { return a.Topics.Cosine(b.Topics) }

// WordSim measures content similarity as the Jaccard overlap of the
// elements' distinct word sets — stricter than TopicSim, it rewards result
// sets that cover distinct words (what the k-SIR semantic score optimizes).
func WordSim(a, b *stream.Element) float64 { return a.Doc.Jaccard(b.Doc) }

// Influence computes the influence score of §5.2: the number of in-window
// elements referring to at least one element of S, linearly scaled by the
// influence of the top-k most-referred elements (so 1.0 means "as influential
// as the k most popular elements combined").
func Influence(win *stream.ActiveWindow, s []*stream.Element, k int) float64 {
	raw := referrerCount(win, s)
	if raw == 0 {
		return 0
	}
	// Top-k influential elements by |I_t(e)|.
	type deg struct {
		id stream.ElemID
		n  int
	}
	var degs []deg
	win.ForEachActive(func(e *stream.Element) {
		if n := win.NumChildren(e.ID); n > 0 {
			degs = append(degs, deg{e.ID, n})
		}
	})
	sort.Slice(degs, func(i, j int) bool {
		if degs[i].n != degs[j].n {
			return degs[i].n > degs[j].n
		}
		return degs[i].id < degs[j].id
	})
	if k > len(degs) {
		k = len(degs)
	}
	topk := make([]*stream.Element, 0, k)
	for _, d := range degs[:k] {
		if e, ok := win.Get(d.id); ok {
			topk = append(topk, e)
		}
	}
	denom := referrerCount(win, topk)
	if denom == 0 {
		return 0
	}
	v := float64(raw) / float64(denom)
	if v > 1 {
		v = 1
	}
	return v
}

// referrerCount counts distinct in-window elements referring to ≥1 member
// of s.
func referrerCount(win *stream.ActiveWindow, s []*stream.Element) int {
	refs := make(map[stream.ElemID]struct{})
	for _, e := range s {
		win.ForEachChild(e.ID, func(c *stream.Element) {
			refs[c.ID] = struct{}{}
		})
	}
	return len(refs)
}
