package evalmetrics

import (
	"math"
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/stream"
)

func paperActives(t *testing.T) (*stream.ActiveWindow, []*stream.Element) {
	t.Helper()
	win, elems := papertest.Window()
	var actives []*stream.Element
	for _, e := range elems {
		if _, ok := win.Get(e.ID); ok {
			actives = append(actives, e)
		}
	}
	return win, actives
}

func TestCoverageBounds(t *testing.T) {
	_, actives := paperActives(t)
	x := papertest.QueryUniform()
	// Empty set covers nothing.
	if got := Coverage(actives, nil, x, TopicSim); got != 0 {
		t.Errorf("empty set coverage = %v", got)
	}
	// The whole active set covers everything.
	if got := Coverage(actives, actives, x, TopicSim); math.Abs(got-1) > 1e-9 {
		t.Errorf("full set coverage = %v, want 1", got)
	}
	// Any subset covers within (0, 1].
	got := Coverage(actives, actives[:2], x, TopicSim)
	if got <= 0 || got > 1 {
		t.Errorf("coverage = %v out of range", got)
	}
}

func TestCoverageRewardsRepresentativeSets(t *testing.T) {
	_, actives := paperActives(t)
	x := papertest.QueryUniform()
	// {e1, e3} (the k-SIR optimum: one per topic) should cover more than
	// the near-duplicate pair {e2, e7} (both on θ2 with the same words).
	var e1, e2, e3, e7 *stream.Element
	for _, e := range actives {
		switch e.ID {
		case 1:
			e1 = e
		case 2:
			e2 = e
		case 3:
			e3 = e
		case 7:
			e7 = e
		}
	}
	good := Coverage(actives, []*stream.Element{e1, e3}, x, TopicSim)
	bad := Coverage(actives, []*stream.Element{e2, e7}, x, TopicSim)
	if good <= bad {
		t.Errorf("coverage({e1,e3})=%v should beat coverage({e2,e7})=%v", good, bad)
	}
}

func TestWordSim(t *testing.T) {
	_, actives := paperActives(t)
	// e2 and e7 share {champion, pl}: Jaccard = 2/3.
	var e2, e7 *stream.Element
	for _, e := range actives {
		if e.ID == 2 {
			e2 = e
		}
		if e.ID == 7 {
			e7 = e
		}
	}
	if got := WordSim(e2, e7); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("WordSim(e2,e7) = %v, want 2/3", got)
	}
}

func TestInfluence(t *testing.T) {
	win, actives := paperActives(t)
	byID := make(map[stream.ElemID]*stream.Element)
	for _, e := range actives {
		byID[e.ID] = e
	}
	// {e2, e3} is referred to by e6, e7, e8 → 3 referrers. Top-2 influential
	// are e2 and e3 themselves (2 children each), so normalization = 1.
	got := Influence(win, []*stream.Element{byID[2], byID[3]}, 2)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("Influence({e2,e3}) = %v, want 1", got)
	}
	// {e7} has no referrers.
	if got := Influence(win, []*stream.Element{byID[7]}, 2); got != 0 {
		t.Errorf("Influence({e7}) = %v, want 0", got)
	}
	// {e1} has one referrer (e5); top-2 have 3 → 1/3.
	got = Influence(win, []*stream.Element{byID[1]}, 2)
	if math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("Influence({e1}) = %v, want 1/3", got)
	}
}

func TestWeightedKappa(t *testing.T) {
	// Perfect agreement.
	a := []int{1, 2, 3, 4, 5, 3}
	k, err := WeightedKappa(a, a, 5)
	if err != nil || math.Abs(k-1) > 1e-9 {
		t.Errorf("perfect agreement kappa = %v, %v", k, err)
	}
	// Constant disagreement worse than chance yields kappa < 0.
	b := []int{5, 4, 3, 2, 1, 3}
	k, err = WeightedKappa(a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if k >= 0 {
		t.Errorf("reversed ratings kappa = %v, want negative", k)
	}
	// Near agreement (off by one) scores between 0 and 1.
	c := []int{2, 3, 4, 5, 4, 3}
	k, err = WeightedKappa(a, c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if k <= -1 || k >= 1 {
		t.Errorf("near agreement kappa = %v", k)
	}
}

func TestWeightedKappaErrors(t *testing.T) {
	if _, err := WeightedKappa([]int{1}, []int{1, 2}, 5); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedKappa(nil, nil, 5); err == nil {
		t.Error("empty ratings accepted")
	}
	if _, err := WeightedKappa([]int{9}, []int{1}, 5); err == nil {
		t.Error("out-of-range rating accepted")
	}
}

func TestMeanPairwiseKappa(t *testing.T) {
	ratings := [][]int{
		{1, 2, 3, 4, 5},
		{1, 2, 3, 4, 5},
		{2, 2, 3, 4, 4},
	}
	k, err := MeanPairwiseKappa(ratings, 5)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 0 || k > 1 {
		t.Errorf("mean kappa = %v", k)
	}
	if _, err := MeanPairwiseKappa(ratings[:1], 5); err == nil {
		t.Error("single rater accepted")
	}
}
