package evalmetrics

import "fmt"

// WeightedKappa computes Cohen's linearly weighted kappa [10] between two
// raters over an ordinal scale with `levels` categories (1-based ratings).
// It returns 1 for perfect agreement, 0 for chance-level agreement. Both
// rating slices must have equal length; ratings must lie in [1, levels].
func WeightedKappa(a, b []int, levels int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("evalmetrics: rating slices differ in length: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("evalmetrics: no ratings")
	}
	n := float64(len(a))
	// Observed and marginal distributions.
	obs := make([][]float64, levels)
	for i := range obs {
		obs[i] = make([]float64, levels)
	}
	margA := make([]float64, levels)
	margB := make([]float64, levels)
	for i := range a {
		if a[i] < 1 || a[i] > levels || b[i] < 1 || b[i] > levels {
			return 0, fmt.Errorf("evalmetrics: rating out of range at %d: (%d, %d)", i, a[i], b[i])
		}
		obs[a[i]-1][b[i]-1]++
		margA[a[i]-1]++
		margB[b[i]-1]++
	}
	// Linear disagreement weights w_ij = |i−j| / (levels−1).
	var dObs, dExp float64
	for i := 0; i < levels; i++ {
		for j := 0; j < levels; j++ {
			w := abs(i-j) / float64(levels-1)
			dObs += w * obs[i][j] / n
			dExp += w * (margA[i] / n) * (margB[j] / n)
		}
	}
	if dExp == 0 {
		return 1, nil // degenerate: both raters constant and equal
	}
	return 1 - dObs/dExp, nil
}

func abs(x int) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}

// MeanPairwiseKappa averages WeightedKappa over all rater pairs, the way
// the paper reports agreement across its 3 evaluators per query.
func MeanPairwiseKappa(ratings [][]int, levels int) (float64, error) {
	if len(ratings) < 2 {
		return 0, fmt.Errorf("evalmetrics: need at least two raters, got %d", len(ratings))
	}
	var sum float64
	var pairs int
	for i := 0; i < len(ratings); i++ {
		for j := i + 1; j < len(ratings); j++ {
			k, err := WeightedKappa(ratings[i], ratings[j], levels)
			if err != nil {
				return 0, err
			}
			sum += k
			pairs++
		}
	}
	return sum / float64(pairs), nil
}
