package stream

import (
	"testing"
)

func TestPartition(t *testing.T) {
	elems := []*Element{
		{ID: 1, TS: 1}, {ID: 2, TS: 2}, {ID: 3, TS: 5},
		{ID: 4, TS: 5}, {ID: 5, TS: 11},
	}
	buckets, err := Partition(elems, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 3 {
		t.Fatalf("got %d buckets, want 3", len(buckets))
	}
	if buckets[0].Start != 1 || buckets[0].End != 5 || len(buckets[0].Elems) != 4 {
		t.Errorf("bucket0 = [%d,%d] n=%d", buckets[0].Start, buckets[0].End, len(buckets[0].Elems))
	}
	if len(buckets[1].Elems) != 0 {
		t.Errorf("bucket1 should be empty (gap), got %d", len(buckets[1].Elems))
	}
	if buckets[2].Start != 11 || len(buckets[2].Elems) != 1 {
		t.Errorf("bucket2 = [%d,%d] n=%d", buckets[2].Start, buckets[2].End, len(buckets[2].Elems))
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition([]*Element{{ID: 1, TS: 1}}, 0); err == nil {
		t.Error("zero bucket length accepted")
	}
	out := []*Element{{ID: 1, TS: 5}, {ID: 2, TS: 3}}
	if _, err := Partition(out, 5); err == nil {
		t.Error("out-of-order elements accepted")
	}
}

func TestPartitionEmpty(t *testing.T) {
	buckets, err := Partition(nil, 5)
	if err != nil || buckets != nil {
		t.Errorf("empty input: %v %v", buckets, err)
	}
}

func TestElementString(t *testing.T) {
	e := &Element{ID: 7, TS: 3}
	if got := e.String(); got == "" {
		t.Error("empty String()")
	}
}
