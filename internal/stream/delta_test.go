package stream

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomBuckets generates a bucket sequence exercising every structural
// path: fresh arrivals, references to live / expired / dangling IDs
// (resurrections), duplicate refs within one element, and occasional time
// jumps larger than the window (mass expiry plus arrive-already-expired).
func randomBuckets(rng *rand.Rand, buckets int) [][2]interface{} {
	var out [][2]interface{}
	now := Time(0)
	nextID := ElemID(1)
	for b := 0; b < buckets; b++ {
		var step Time
		switch rng.Intn(8) {
		case 0:
			step = Time(rng.Intn(40) + 25) // jump past the window (T=20 in the test)
		default:
			step = Time(rng.Intn(6) + 1)
		}
		prev := now
		now += step
		n := rng.Intn(6)
		batch := make([]*Element, 0, n)
		for i := 0; i < n; i++ {
			ts := prev + 1 + Time(rng.Int63n(int64(now-prev)))
			e := &Element{ID: nextID, TS: ts}
			nextID++
			for r := 0; r < rng.Intn(3); r++ {
				// Any historical ID, plus the occasional dangling one.
				e.Refs = append(e.Refs, ElemID(rng.Int63n(int64(nextID)+3)))
			}
			batch = append(batch, e)
		}
		// Batches must be timestamp-ordered like Partition produces.
		for i := 1; i < len(batch); i++ {
			for j := i; j > 0 && batch[j].TS < batch[j-1].TS; j-- {
				batch[j], batch[j-1] = batch[j-1], batch[j]
			}
		}
		out = append(out, [2]interface{}{now, batch})
	}
	return out
}

// A replica window fed only recorded deltas stays byte-identical — at the
// Export level and in its derived reference index — to the primary across
// randomized advance sequences, and keeps behaving identically when the
// roles swap (the engine's buffers alternate between the two paths).
func TestApplyDeltaMirrorsAdvance(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const T = 20
		primary, replica := NewActiveWindow(T), NewActiveWindow(T)

		for b, step := range randomBuckets(rng, 40) {
			now, batch := step[0].(Time), step[1].([]*Element)
			_, delta, err := primary.AdvanceRecorded(now, batch)
			if err != nil {
				t.Fatalf("seed %d bucket %d: %v", seed, b, err)
			}
			replica.ApplyDelta(delta)

			if got, want := replica.Export(), primary.Export(); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d bucket %d: exports diverge\n got %+v\nwant %+v", seed, b, got, want)
			}
			for id := range primary.active {
				if !reflect.DeepEqual(replica.Children(id), primary.Children(id)) {
					t.Fatalf("seed %d bucket %d: children of %d diverge", seed, b, id)
				}
				gt, gok := replica.LastRef(id)
				wt, wok := primary.LastRef(id)
				if gt != wt || gok != wok {
					t.Fatalf("seed %d bucket %d: last-ref of %d diverges", seed, b, id)
				}
			}
			// Swap roles every few buckets: the replayed window must be a
			// fully functional primary (heap, queue and index all live).
			if b%5 == 4 {
				primary, replica = replica, primary
			}
		}
	}
}

// ForEachChild iterates in ascending child-ID order, making influence
// accumulation deterministic.
func TestForEachChildOrderDeterministic(t *testing.T) {
	w := NewActiveWindow(100)
	parent := &Element{ID: 1, TS: 1}
	if _, err := w.Advance(1, []*Element{parent}); err != nil {
		t.Fatal(err)
	}
	// Children arrive in non-sorted ID order within later buckets.
	kids := []*Element{
		{ID: 9, TS: 2, Refs: []ElemID{1}},
		{ID: 4, TS: 3, Refs: []ElemID{1, 1}}, // duplicate ref: wired once
		{ID: 7, TS: 4, Refs: []ElemID{1}},
	}
	if _, err := w.Advance(4, kids); err != nil {
		t.Fatal(err)
	}
	var got []ElemID
	w.ForEachChild(1, func(c *Element) { got = append(got, c.ID) })
	want := []ElemID{4, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("child order %v, want %v", got, want)
	}
	if w.NumChildren(1) != 3 {
		t.Fatalf("NumChildren = %d, want 3", w.NumChildren(1))
	}
}
