package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// randomAdvance drives a window through n buckets of synthetic elements
// with reference chains and returns the element counter.
func randomAdvance(t *testing.T, w *ActiveWindow, rng *rand.Rand, n int, nextID ElemID) ElemID {
	t.Helper()
	for b := 0; b < n; b++ {
		now := w.Now() + 60
		var batch []*Element
		for i := 0; i < 1+rng.Intn(5); i++ {
			e := &Element{
				ID:     nextID,
				TS:     w.Now() + 1 + Time(rng.Intn(60)),
				Doc:    textproc.NewDocument([]textproc.WordID{textproc.WordID(rng.Intn(5))}),
				Topics: topicmodel.TopicVec{Topics: []int32{int32(rng.Intn(3))}, Probs: []float64{1}},
			}
			if nextID > 1 && rng.Intn(2) == 0 {
				e.Refs = append(e.Refs, ElemID(1+rng.Int63n(int64(nextID-1))))
			}
			nextID++
			batch = append(batch, e)
		}
		sortByTS(batch)
		if _, err := w.Advance(now, batch); err != nil {
			t.Fatal(err)
		}
	}
	return nextID
}

func sortByTS(batch []*Element) {
	for i := 1; i < len(batch); i++ {
		for j := i; j > 0 && batch[j].TS < batch[j-1].TS; j-- {
			batch[j], batch[j-1] = batch[j-1], batch[j]
		}
	}
}

// snapshotFacts captures everything externally observable about a window.
func snapshotFacts(w *ActiveWindow) map[string]any {
	facts := map[string]any{
		"now":    w.Now(),
		"active": w.ActiveIDs(),
	}
	for _, id := range w.ActiveIDs() {
		lr, _ := w.LastRef(id)
		facts[fmt.Sprintf("lastRef.%d", id)] = lr
		ids := []ElemID{}
		w.ForEachChild(id, func(c *Element) { ids = append(ids, c.ID) })
		sortIDs(ids)
		facts[fmt.Sprintf("children.%d", id)] = ids
	}
	return facts
}

func sortIDs(ids []ElemID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// A restored window must match the original exactly — and keep matching
// after both take the same further advances (exits, expiries and
// resurrections replay identically).
func TestWindowExportRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const T = 300
	w := NewActiveWindow(T)
	nextID := randomAdvance(t, w, rng, 30, 1)

	st := w.Export()
	r, err := Restore(T, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snapshotFacts(w), snapshotFacts(r)) {
		t.Fatal("restored window diverges immediately")
	}
	if r.NumActive() != w.NumActive() {
		t.Fatalf("NumActive %d vs %d", r.NumActive(), w.NumActive())
	}
	for id := ElemID(1); id < nextID; id++ {
		if w.Known(id) != r.Known(id) {
			t.Fatalf("Known(%d) diverges", id)
		}
	}

	// Drive both through the same future: identical batches, including
	// references that resurrect long-expired elements.
	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	idA := randomAdvance(t, w, rngA, 20, nextID)
	idB := randomAdvance(t, r, rngB, 20, nextID)
	if idA != idB {
		t.Fatal("test generators diverged")
	}
	if !reflect.DeepEqual(snapshotFacts(w), snapshotFacts(r)) {
		t.Fatal("windows diverge after identical advances")
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	base := func() WindowState {
		e1 := &Element{ID: 1, TS: 100}
		e2 := &Element{ID: 2, TS: 150, Refs: []ElemID{1}}
		return WindowState{
			Now:       180,
			WindowLen: 2,
			Elems: []ExportedElem{
				{Elem: e1, Active: true, LastRef: 150},
				{Elem: e2, Active: true, LastRef: 150},
			},
		}
	}
	if _, err := Restore(300, base()); err != nil {
		t.Fatalf("baseline state rejected: %v", err)
	}
	cases := map[string]func(*WindowState){
		"nil element":       func(st *WindowState) { st.Elems[0].Elem = nil },
		"duplicate id":      func(st *WindowState) { st.Elems[1].Elem.ID = 1 },
		"window not active": func(st *WindowState) { st.Elems[0].Active = false },
		"bad window len":    func(st *WindowState) { st.WindowLen = 3 },
		"lastref below ts":  func(st *WindowState) { st.Elems[1].LastRef = 10 },
		"ts beyond now":     func(st *WindowState) { st.Elems[1].Elem.TS = 999 },
		"queue out of order": func(st *WindowState) {
			st.Elems[0].Elem.TS = 170
			st.Elems[0].LastRef = 170
		},
		"referenced inactive": func(st *WindowState) {
			st.Elems[0] = ExportedElem{Elem: &Element{ID: 3, TS: 140}, Active: true, LastRef: 140}
			st.Elems = append(st.Elems, ExportedElem{Elem: &Element{ID: 1, TS: 20}})
		},
	}
	for name, mutate := range cases {
		st := base()
		mutate(&st)
		if _, err := Restore(300, st); err == nil {
			t.Errorf("%s: corrupt state accepted", name)
		}
	}
	if _, err := Restore(0, base()); err == nil {
		t.Error("non-positive window length accepted")
	}
}
