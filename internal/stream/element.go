// Package stream implements the social-stream substrate of k-SIR: social
// elements ⟨ts, doc, ref⟩, time-based sliding windows, and the active-element
// set A_t = W_t ∪ {e' : e ∈ W_t ∧ e' ∈ e.ref} (§3.1).
package stream

import (
	"fmt"

	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// ElemID identifies a social element. IDs are assigned by the producer and
// must be unique within a stream.
type ElemID int64

// Time is a timestamp in stream time units (seconds by convention).
type Time int64

// Element is a social element: a timestamped bag-of-words document with
// references to earlier elements (retweets, citations, comment parents) and
// a topic distribution inferred from the topic model.
type Element struct {
	ID     ElemID
	TS     Time
	Doc    textproc.Document
	Topics topicmodel.TopicVec
	Refs   []ElemID
	// Text optionally retains the raw text for display in examples and the
	// query CLI; algorithms never read it.
	Text string
}

// String implements fmt.Stringer for debugging.
func (e *Element) String() string {
	return fmt.Sprintf("e%d@%d(words=%d refs=%d)", e.ID, e.TS, e.Doc.Distinct(), len(e.Refs))
}

// Approximate per-value heap costs for ApproxBytes. Exact sizes vary by
// architecture and allocator bucket; these are amd64/arm64 struct sizes
// rounded to the nearest allocator class, good enough for a residency
// budget (the accounting is advisory, never part of exported state).
const (
	elemBaseBytes  = 112 // Element struct + string/slice headers
	termCountBytes = 8   // textproc.TermCount
	topicPairBytes = 12  // one int32 topic + one float64 prob
	refBytes       = 8   // one ElemID
)

// ApproxBytes estimates the heap footprint of the element itself — struct,
// retained text, bag-of-words terms, topic vector and reference list. The
// per-window overhead (map entries, queue slots, ranked-list tuples) is
// accounted separately by ActiveWindow.
func (e *Element) ApproxBytes() int64 {
	return elemBaseBytes +
		int64(len(e.Text)) +
		int64(len(e.Doc.Terms))*termCountBytes +
		int64(e.Topics.Len())*topicPairBytes +
		int64(len(e.Refs))*refBytes
}

// Bucket groups elements that arrive in one batch-update interval of length
// L (§4, Figure 4: the stream "is partitioned into buckets with equal time
// length L").
type Bucket struct {
	Start, End Time // elements have TS in [Start, End]
	Elems      []*Element
}

// Partition splits a timestamp-ordered element slice into buckets of length
// bucketLen, starting at the first element's timestamp. It returns an error
// if elements are out of order or bucketLen is not positive.
func Partition(elems []*Element, bucketLen Time) ([]Bucket, error) {
	if bucketLen <= 0 {
		return nil, fmt.Errorf("stream: bucket length must be positive, got %d", bucketLen)
	}
	if len(elems) == 0 {
		return nil, nil
	}
	var buckets []Bucket
	start := elems[0].TS
	cur := Bucket{Start: start, End: start + bucketLen - 1}
	prev := elems[0].TS
	for _, e := range elems {
		if e.TS < prev {
			return nil, fmt.Errorf("stream: element %d at %d arrives after later timestamp %d", e.ID, e.TS, prev)
		}
		prev = e.TS
		for e.TS > cur.End {
			buckets = append(buckets, cur)
			cur = Bucket{Start: cur.End + 1, End: cur.End + bucketLen}
		}
		cur.Elems = append(cur.Elems, e)
	}
	buckets = append(buckets, cur)
	return buckets, nil
}
