package stream

import (
	"container/heap"
	"fmt"
	"sort"
)

// ExportedElem is one archived element plus the per-element window facts
// that cannot be derived from the element itself.
type ExportedElem struct {
	Elem *Element
	// Active marks membership in A_t. LastRef is t_e and is only
	// meaningful for active elements.
	Active  bool
	LastRef Time
}

// WindowState is a serializable dump of an ActiveWindow: every archived
// element (the archive backs duplicate detection and resurrection, so it
// is part of the state, not an optimization) with the window queue first.
// Everything else — the reverse reference index, the expiry queue — is
// derivable and rebuilt on restore.
type WindowState struct {
	Now Time
	// WindowLen says how many leading entries of Elems form the window
	// queue W_t, in arrival order (the order future window exits replay
	// in). The remaining entries are the out-of-window archive, sorted by
	// ID for deterministic files.
	WindowLen int
	Elems     []ExportedElem
}

// Export dumps the window's full state. The returned state shares the
// window's *Element values (elements are immutable after ingestion), so it
// is cheap and safe to take while readers run; the caller must serialize
// Export against Advance, as with all window mutation.
func (w *ActiveWindow) Export() WindowState {
	st := WindowState{
		Now:   w.now,
		Elems: make([]ExportedElem, 0, len(w.archive)),
	}
	inQueue := make(map[ElemID]struct{}, len(w.windowQ)-w.windowHead)
	for _, e := range w.windowQ[w.windowHead:] {
		inQueue[e.ID] = struct{}{}
		st.Elems = append(st.Elems, w.exportOne(e))
	}
	st.WindowLen = len(st.Elems)
	rest := make([]*Element, 0, len(w.archive)-len(inQueue))
	for id, e := range w.archive {
		if _, ok := inQueue[id]; !ok {
			rest = append(rest, e)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].ID < rest[j].ID })
	for _, e := range rest {
		st.Elems = append(st.Elems, w.exportOne(e))
	}
	return st
}

func (w *ActiveWindow) exportOne(e *Element) ExportedElem {
	ex := ExportedElem{Elem: e}
	if _, ok := w.active[e.ID]; ok {
		ex.Active = true
		ex.LastRef = w.lastRef[e.ID]
	}
	return ex
}

// Restore rebuilds a window of length T from an exported state. The
// derived structures (reverse reference index, expiry queue) are
// reconstructed from the window queue, and invariants are checked so a
// corrupt or hand-edited snapshot fails loudly instead of corrupting the
// stream: a restored window followed by the same Advances behaves
// identically to the original.
func Restore(T Time, st WindowState) (*ActiveWindow, error) {
	if T <= 0 {
		return nil, fmt.Errorf("stream: window length must be positive, got %d", T)
	}
	if st.WindowLen < 0 || st.WindowLen > len(st.Elems) {
		return nil, fmt.Errorf("stream: window queue length %d outside [0, %d]", st.WindowLen, len(st.Elems))
	}
	w := NewActiveWindow(T)
	w.now = st.Now
	cutoff := st.Now - T

	for i, ex := range st.Elems {
		e := ex.Elem
		if e == nil {
			return nil, fmt.Errorf("stream: nil element at index %d in window state", i)
		}
		if _, dup := w.archive[e.ID]; dup {
			return nil, fmt.Errorf("stream: duplicate element %d in window state", e.ID)
		}
		w.archive[e.ID] = e
		w.countArchived(e)
		inWindow := i < st.WindowLen
		if inWindow {
			if e.TS <= cutoff || e.TS > st.Now {
				return nil, fmt.Errorf("stream: window-queue element %d at %d outside (%d, %d]", e.ID, e.TS, cutoff, st.Now)
			}
			if !ex.Active {
				return nil, fmt.Errorf("stream: window-queue element %d not marked active", e.ID)
			}
			w.windowQ = append(w.windowQ, e)
		}
		if ex.Active {
			if ex.LastRef < e.TS || ex.LastRef <= cutoff {
				return nil, fmt.Errorf("stream: active element %d has impossible last-ref %d (ts %d, cutoff %d)", e.ID, ex.LastRef, e.TS, cutoff)
			}
			w.active[e.ID] = e
			w.lastRef[e.ID] = ex.LastRef
			*w.expiryQ = append(*w.expiryQ, expiryEntry{at: ex.LastRef, id: e.ID})
		}
	}
	// Arrival order is non-decreasing in TS; anything else would replay
	// window exits in the wrong order.
	for i := 1; i < st.WindowLen; i++ {
		if w.windowQ[i].TS < w.windowQ[i-1].TS {
			return nil, fmt.Errorf("stream: window queue out of order at element %d", w.windowQ[i].ID)
		}
	}
	heap.Init(w.expiryQ)

	// Rebuild the reverse reference index I_t from the window queue: the
	// index holds exactly the in-window referrers of known parents, and
	// every such parent is active (an element with an in-window child has
	// last-ref past the cutoff by definition).
	for _, c := range w.windowQ {
		for _, pid := range c.Refs {
			if _, known := w.archive[pid]; !known {
				continue // dangling reference, ignored at ingest too
			}
			if _, active := w.active[pid]; !active {
				return nil, fmt.Errorf("stream: element %d referenced by in-window %d but not active", pid, c.ID)
			}
			w.addChild(pid, c)
		}
	}
	return w, nil
}
