package stream

import "container/heap"

// RefAdd records one reference-index insertion: Child (in-window) was
// wired as a referrer of Parent, bumping Parent's last-ref time to
// Child.TS.
type RefAdd struct {
	Parent ElemID
	Child  *Element
}

// Delta is the structural record of one Advance: every decision the
// advance made — which arrivals entered, which parents were resurrected,
// which references were wired, which actives expired — with the decisions
// themselves (duplicate checks, resurrection tests, staleness filtering)
// already taken. ApplyDelta replays it onto a replica window sharing the
// same immutable *Element values, reproducing the exact post-Advance
// state without re-deriving any of it.
type Delta struct {
	Now Time
	// Batch is the bucket's arrivals in order: appended to the window
	// queue and archive, activated, and given last-ref = own TS.
	Batch []*Element
	// Resurrected are previously expired parents that re-entered A_t
	// because a batch element refers to them.
	Resurrected []*Element
	// RefAdds are the reference-index insertions in wiring order (dangling
	// references already dropped); replaying them in order reproduces the
	// final last-ref times.
	RefAdds []RefAdd
	// Expired are the elements the advance removed from the active set.
	Expired []*Element
}

// ApplyDelta replays a recorded advance onto this window. The contract
// mirrors the engine's buffer recycling: the window is byte-identical to
// the recording window just before its Advance, so replaying the delta —
// same insertions, same wiring, the same window-exit scan, the recorded
// expiries — leaves it byte-identical to the recording window just after.
// No duplicate detection, resurrection lookup or expiry staleness check
// runs: those decisions are already in the delta.
func (w *ActiveWindow) ApplyDelta(d *Delta) {
	w.now = d.Now

	// Phase 1: arrivals, resurrections and reference wiring, as recorded.
	// A window sharing its writer-path state (ShareWriterState) skips the
	// archive, last-ref and heap writes: the recording advance already
	// made them in the shared structures.
	shared := w.twinShared
	for _, e := range d.Batch {
		w.active[e.ID] = e
		w.windowQ = append(w.windowQ, e)
		if !shared {
			w.archive[e.ID] = e
			w.countArchived(e)
			w.lastRef[e.ID] = e.TS
			heap.Push(w.expiryQ, expiryEntry{at: e.TS, id: e.ID})
		}
	}
	for _, p := range d.Resurrected {
		w.active[p.ID] = p
	}
	for _, ra := range d.RefAdds {
		w.addChild(ra.Parent, ra.Child)
		if !shared {
			w.lastRef[ra.Parent] = ra.Child.TS
			heap.Push(w.expiryQ, expiryEntry{at: ra.Child.TS, id: ra.Parent})
		}
	}

	// Phase 2: the window-exit scan is pure state, shared with Advance.
	cutoff := d.Now - w.T
	w.slideOut(cutoff)

	// Phase 3: expiries as recorded; an unshared window then drains the
	// same spent heap prefix Advance drained, so its pending multiset
	// stays identical to the recording window's.
	for _, e := range d.Expired {
		delete(w.active, e.ID)
		delete(w.children, e.ID)
		if !shared {
			delete(w.lastRef, e.ID)
		}
	}
	if !shared {
		for w.expiryQ.Len() > 0 && (*w.expiryQ)[0].at <= cutoff {
			heap.Pop(w.expiryQ)
		}
	}
}
