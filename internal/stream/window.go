package stream

import (
	"container/heap"
	"fmt"
	"sort"
)

// ChangeSet describes what an Advance call did to the active set; the query
// engine uses it to maintain the per-topic ranked lists (Algorithm 1).
type ChangeSet struct {
	Now Time
	// Inserted are the newly arrived in-window elements, in arrival order.
	Inserted []*Element
	// Updated are active parents whose influenced set I_t(e) gained at least
	// one new child this advance (their δ_i scores must be recomputed and
	// repositioned, Algorithm 1 lines 8–11). Deduplicated; excludes elements
	// already listed in Inserted.
	Updated []*Element
	// Expired are elements discarded from the active set: they left the
	// window and are no longer referred to by any in-window element
	// (Algorithm 1 lines 12–13).
	Expired []*Element
}

// ActiveWindow maintains the sliding window W_t and the active set A_t.
//
// Besides window membership it maintains the reverse reference index
// I_t(e) = {e' ∈ W_t : e ∈ e'.ref} needed by the influence score, and the
// last-referred timestamp t_e used for expiry. Elements referenced by a new
// arrival after they expired are resurrected from an internal archive, so
// the active set is always exactly the paper's A_t.
//
// ActiveWindow is not safe for concurrent mutation; the engine serializes
// Advance calls and allows concurrent reads between them.
type ActiveWindow struct {
	T   Time // window length
	now Time

	active map[ElemID]*Element
	// archive holds every element ever ingested, for duplicate detection
	// and resurrection. It is consulted only from the serialized writer
	// path (Advance, Known, Export), never by concurrent readers, so twin
	// windows share one copy (see ShareWriterState).
	archive map[ElemID]*Element

	// children[p] = I_t(p): the in-window elements that refer to p, kept
	// sorted by child ID. The slice (rather than a map) makes every
	// iteration deterministic, so float sums over I_t(e) — the influence
	// scores — are bit-reproducible across runs and across restores.
	children map[ElemID][]*Element
	// lastRef is t_e: max(e.TS, TS of latest in-window referrer). Writer-
	// path only, shareable between twins like archive.
	lastRef map[ElemID]Time

	// windowQ holds in-window elements in arrival order for O(1) window
	// exit; windowHead is the logical front (the slice is compacted when
	// more than half is dead to bound memory).
	windowQ    []*Element
	windowHead int
	// expiryQ is a lazy min-heap over (lastRef, id) for active-set expiry.
	// Mutation-path only, shareable between twins like archive.
	expiryQ *expiryHeap
	// bytes approximates the heap footprint of the archive — element
	// payloads plus a flat per-element bookkeeping overhead. It grows with
	// every archive insert and never shrinks (the archive never drops
	// elements), feeding the hub's residency accounting. Writer-path only
	// and shared between twins like archive, so the shared copy of every
	// element is counted exactly once.
	bytes *int64
	// twinShared marks a window whose archive, lastRef and expiryQ are
	// shared with a lockstep twin (ShareWriterState); its delta replays
	// skip maintaining them because the recording advance already did.
	twinShared bool
}

// elemOverheadBytes is the flat per-archived-element bookkeeping estimate
// rolled into the bytes counter: map entries (archive, active, lastRef,
// children), the window-queue slot, expiry-heap entries and the ranked-list
// tuples the element occupies across topic shards.
const elemOverheadBytes = 176

// NewActiveWindow returns an empty window of length T. It panics if T ≤ 0
// (a programming error, not a data error).
func NewActiveWindow(T Time) *ActiveWindow {
	if T <= 0 {
		panic(fmt.Sprintf("stream: window length must be positive, got %d", T))
	}
	return &ActiveWindow{
		T:        T,
		active:   make(map[ElemID]*Element),
		archive:  make(map[ElemID]*Element),
		children: make(map[ElemID][]*Element),
		lastRef:  make(map[ElemID]Time),
		expiryQ:  new(expiryHeap),
		bytes:    new(int64),
	}
}

// ApproxBytes reports the approximate heap bytes held by the window's
// archive (see the bytes field). Like Known it reads writer-shared state:
// callers must serialize it with Advance/ApplyDelta.
func (w *ActiveWindow) ApproxBytes() int64 { return *w.bytes }

// countArchived charges one newly archived element to the byte estimate.
func (w *ActiveWindow) countArchived(e *Element) {
	*w.bytes += e.ApproxBytes() + elemOverheadBytes
}

// Now returns the current window time t.
func (w *ActiveWindow) Now() Time { return w.now }

// NumActive returns n_t = |A_t|.
func (w *ActiveWindow) NumActive() int { return len(w.active) }

// Get returns an active element by ID.
func (w *ActiveWindow) Get(id ElemID) (*Element, bool) {
	e, ok := w.active[id]
	return e, ok
}

// Known reports whether id was ever ingested into this window (active,
// expired or archived). Producers must never reuse a known ID. Known
// reads the archive — writer-shared under ShareWriterState — so callers
// must serialize it with Advance/ApplyDelta (the engine's writer path
// does).
func (w *ActiveWindow) Known(id ElemID) bool {
	_, ok := w.archive[id]
	return ok
}

// InWindow reports whether e itself lies in W_t (as opposed to being active
// only because it is referenced).
func (w *ActiveWindow) InWindow(e *Element) bool { return e.TS > w.now-w.T }

// Children returns I_t(e): the in-window elements referring to id, in
// ascending child-ID order. The returned slice is freshly allocated.
func (w *ActiveWindow) Children(id ElemID) []*Element {
	cs := w.children[id]
	if len(cs) == 0 {
		return nil
	}
	return append([]*Element(nil), cs...)
}

// NumChildren returns |I_t(e)| without allocating.
func (w *ActiveWindow) NumChildren(id ElemID) int { return len(w.children[id]) }

// addChild inserts c into parent's sorted child list (idempotent for a
// duplicate reference within one element's ref list).
func (w *ActiveWindow) addChild(parent ElemID, c *Element) {
	cs := w.children[parent]
	i := sort.Search(len(cs), func(i int) bool { return cs[i].ID >= c.ID })
	if i < len(cs) && cs[i].ID == c.ID {
		return
	}
	cs = append(cs, nil)
	copy(cs[i+1:], cs[i:])
	cs[i] = c
	w.children[parent] = cs
}

// removeChild drops child from parent's sorted child list, deleting the
// entry when it empties.
func (w *ActiveWindow) removeChild(parent, child ElemID) {
	cs, ok := w.children[parent]
	if !ok {
		return
	}
	i := sort.Search(len(cs), func(i int) bool { return cs[i].ID >= child })
	if i == len(cs) || cs[i].ID != child {
		return
	}
	if len(cs) == 1 {
		delete(w.children, parent)
		return
	}
	w.children[parent] = append(cs[:i], cs[i+1:]...)
}

// LastRef returns t_e, the time the active element id was last referred to
// (its own timestamp if never referenced). The second result is false for
// inactive elements. Like Known, it reads writer-shared state and must be
// serialized with Advance/ApplyDelta.
func (w *ActiveWindow) LastRef(id ElemID) (Time, bool) {
	t, ok := w.lastRef[id]
	return t, ok
}

// ForEachChild calls fn for every in-window element referring to id, in
// ascending child-ID order — a deterministic order, so float accumulations
// over I_t(e) (the influence scores) are bit-reproducible.
func (w *ActiveWindow) ForEachChild(id ElemID, fn func(*Element)) {
	for _, c := range w.children[id] {
		fn(c)
	}
}

// ForEachActive calls fn for every active element in unspecified order.
func (w *ActiveWindow) ForEachActive(fn func(*Element)) {
	for _, e := range w.active {
		fn(e)
	}
}

// ActiveIDs returns the sorted IDs of all active elements (deterministic
// iteration for tests and baselines).
func (w *ActiveWindow) ActiveIDs() []ElemID {
	ids := make([]ElemID, 0, len(w.active))
	for id := range w.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Advance moves the window to time now and ingests batch (a bucket's
// elements, timestamp-ordered, all with TS ≤ now and TS > previous now).
// It returns the resulting ChangeSet. Elements referencing IDs never seen
// before have those references ignored.
func (w *ActiveWindow) Advance(now Time, batch []*Element) (ChangeSet, error) {
	return w.advance(now, batch, nil)
}

// AdvanceRecorded is Advance additionally returning the structural Delta
// of the advance, for replay onto a replica window via ApplyDelta.
func (w *ActiveWindow) AdvanceRecorded(now Time, batch []*Element) (ChangeSet, *Delta, error) {
	rec := &Delta{Now: now, Batch: batch, RefAdds: make([]RefAdd, 0, len(batch)*2)}
	cs, err := w.advance(now, batch, rec)
	if err != nil {
		return cs, nil, err
	}
	rec.Expired = cs.Expired
	return cs, rec, nil
}

func (w *ActiveWindow) advance(now Time, batch []*Element, rec *Delta) (ChangeSet, error) {
	if now < w.now {
		return ChangeSet{}, fmt.Errorf("stream: time moved backwards %d → %d", w.now, now)
	}
	cs := ChangeSet{Now: now}
	prevNow := w.now
	w.now = now

	// Phase 1: insert arrivals and wire references.
	updated := make(map[ElemID]*Element)
	for _, e := range batch {
		if e.TS <= prevNow || e.TS > now {
			return ChangeSet{}, fmt.Errorf("stream: element %d at %d outside bucket (%d, %d]", e.ID, e.TS, prevNow, now)
		}
		if _, dup := w.archive[e.ID]; dup {
			return ChangeSet{}, fmt.Errorf("stream: duplicate element ID %d", e.ID)
		}
		w.archive[e.ID] = e
		w.countArchived(e)
		w.active[e.ID] = e
		w.lastRef[e.ID] = e.TS
		w.windowQ = append(w.windowQ, e)
		heap.Push(w.expiryQ, expiryEntry{at: e.TS, id: e.ID})
		cs.Inserted = append(cs.Inserted, e)

		for _, pid := range e.Refs {
			parent, known := w.archive[pid]
			if !known {
				continue // dangling reference: producer referenced an element we never saw
			}
			if _, isActive := w.active[pid]; !isActive {
				// Resurrect: the parent re-enters A_t because a window
				// element now refers to it.
				w.active[pid] = parent
				cs.Inserted = append(cs.Inserted, parent)
				if rec != nil {
					rec.Resurrected = append(rec.Resurrected, parent)
				}
			}
			w.addChild(pid, e)
			w.lastRef[pid] = e.TS
			heap.Push(w.expiryQ, expiryEntry{at: e.TS, id: pid})
			if rec != nil {
				rec.RefAdds = append(rec.RefAdds, RefAdd{Parent: pid, Child: e})
			}
			if _, justIn := updated[pid]; !justIn {
				updated[pid] = parent
			}
		}
	}

	// Phase 2: slide the window — drop out-of-window children from the
	// reference index (influence is restricted to W_t, Equation 4).
	cutoff := now - w.T // keep elements with TS > cutoff
	w.slideOut(cutoff)

	// Phase 3: expire actives never referred to after the cutoff.
	for w.expiryQ.Len() > 0 && (*w.expiryQ)[0].at <= cutoff {
		entry := heap.Pop(w.expiryQ).(expiryEntry)
		e, isActive := w.active[entry.id]
		if !isActive || w.lastRef[entry.id] > cutoff {
			continue // stale heap entry (element was re-referenced or already gone)
		}
		delete(w.active, entry.id)
		delete(w.lastRef, entry.id)
		delete(w.children, entry.id)
		delete(updated, entry.id)
		cs.Expired = append(cs.Expired, e)
	}

	// Deduplicate Updated against Inserted (a resurrected parent is already
	// reported as inserted; its δ is computed fresh anyway).
	inserted := make(map[ElemID]struct{}, len(cs.Inserted))
	for _, e := range cs.Inserted {
		inserted[e.ID] = struct{}{}
	}
	for id, e := range updated {
		if _, dup := inserted[id]; !dup {
			cs.Updated = append(cs.Updated, e)
		}
	}
	sort.Slice(cs.Updated, func(i, j int) bool { return cs.Updated[i].ID < cs.Updated[j].ID })
	return cs, nil
}

// ShareWriterState makes two windows share the state that only the
// serialized writer path ever touches: the archive (duplicate detection,
// resurrection), the last-ref times and the expiry heap. It is only legal
// for windows the caller advances in lockstep over the same logical
// stream with all mutation serialized — the engine's double buffer: the
// two windows' logical states are identical at every hand-off and no
// concurrent reader dereferences these structures (queries read only the
// active set and the reference index, which stay per-window). A sharing
// window's delta replay then skips maintaining all three — the recording
// advance already did — and the archive, the largest map in the system
// (it holds every element ever ingested), exists once instead of twice.
func ShareWriterState(a, b *ActiveWindow) {
	b.archive = a.archive
	b.lastRef = a.lastRef
	b.expiryQ = a.expiryQ
	b.bytes = a.bytes
	a.twinShared, b.twinShared = true, true
}

// slideOut pops window exits (arrival order, TS ≤ cutoff) off the window
// queue, dropping each exiting child from the reference index, and
// compacts the queue when more than half of it is dead. Shared verbatim
// between Advance and ApplyDelta so the two paths cannot drift.
func (w *ActiveWindow) slideOut(cutoff Time) {
	for w.windowHead < len(w.windowQ) && w.windowQ[w.windowHead].TS <= cutoff {
		child := w.windowQ[w.windowHead]
		w.windowQ[w.windowHead] = nil
		w.windowHead++
		for _, pid := range child.Refs {
			w.removeChild(pid, child.ID)
		}
	}
	if w.windowHead > len(w.windowQ)/2 {
		n := copy(w.windowQ, w.windowQ[w.windowHead:])
		w.windowQ = w.windowQ[:n]
		w.windowHead = 0
	}
}

// expiryEntry is a lazy expiry marker: the element with this id may be
// removable once time passes at + T.
type expiryEntry struct {
	at Time
	id ElemID
}

type expiryHeap []expiryEntry

func (h expiryHeap) Len() int            { return len(h) }
func (h expiryHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x interface{}) { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
