package stream

import (
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/textproc"
)

// paperElements reproduces the stream of Table 1(a): 8 elements, one per
// time unit, with references e4→e3, e5→e1, e6→e3, e7→e2, e8→{e2,e3,e6}.
func paperElements() []*Element {
	refs := map[ElemID][]ElemID{
		4: {3}, 5: {1}, 6: {3}, 7: {2}, 8: {2, 3, 6},
	}
	elems := make([]*Element, 8)
	for i := 0; i < 8; i++ {
		id := ElemID(i + 1)
		elems[i] = &Element{
			ID:   id,
			TS:   Time(i + 1),
			Doc:  textproc.NewDocument([]textproc.WordID{textproc.WordID(i)}),
			Refs: refs[id],
		}
	}
	return elems
}

func advanceAll(t *testing.T, w *ActiveWindow, elems []*Element) {
	t.Helper()
	for _, e := range elems {
		if _, err := w.Advance(e.TS, []*Element{e}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPaperExampleActiveSet(t *testing.T) {
	// §3.4: with T=4 at t=8, "the set of active elements contains all except
	// e4" — e4 expired (left window at t=8, never referenced).
	w := NewActiveWindow(4)
	advanceAll(t, w, paperElements())
	if w.Now() != 8 {
		t.Fatalf("Now = %d", w.Now())
	}
	if n := w.NumActive(); n != 7 {
		t.Fatalf("NumActive = %d, want 7: %v", n, w.ActiveIDs())
	}
	if _, ok := w.Get(4); ok {
		t.Error("e4 should have expired")
	}
	for _, id := range []ElemID{1, 2, 3, 5, 6, 7, 8} {
		if _, ok := w.Get(id); !ok {
			t.Errorf("e%d should be active", id)
		}
	}
}

func TestPaperExampleChildren(t *testing.T) {
	// Example 3.2: at t=8 with T=4, W_8 = {e5..e8}; I_8(e3) = {e6, e8}
	// (e4 expired), I_8(e2) = {e7, e8}, I_8(e1) = {e5}.
	w := NewActiveWindow(4)
	advanceAll(t, w, paperElements())
	wantChildren := map[ElemID][]ElemID{
		1: {5},
		2: {7, 8},
		3: {6, 8},
		6: {8},
	}
	for pid, want := range wantChildren {
		got := w.Children(pid)
		if len(got) != len(want) {
			t.Errorf("I_8(e%d) has %d children, want %v", pid, len(got), want)
			continue
		}
		seen := make(map[ElemID]bool)
		for _, c := range got {
			seen[c.ID] = true
		}
		for _, id := range want {
			if !seen[id] {
				t.Errorf("I_8(e%d) missing e%d", pid, id)
			}
		}
	}
	if n := w.NumChildren(4); n != 0 {
		t.Errorf("I_8(e4) = %d, want 0", n)
	}
}

func TestInWindowVsActiveOnly(t *testing.T) {
	w := NewActiveWindow(4)
	advanceAll(t, w, paperElements())
	// e1..e3 are active only via references; e5..e8 are in the window.
	for _, id := range []ElemID{1, 2, 3} {
		e, _ := w.Get(id)
		if w.InWindow(e) {
			t.Errorf("e%d should be outside W_t", id)
		}
	}
	for _, id := range []ElemID{5, 6, 7, 8} {
		e, _ := w.Get(id)
		if !w.InWindow(e) {
			t.Errorf("e%d should be inside W_t", id)
		}
	}
}

func TestExpiryCascade(t *testing.T) {
	// After the window slides past all referrers, parents expire too.
	w := NewActiveWindow(4)
	advanceAll(t, w, paperElements())
	// Advance to t=12 with no arrivals: window empties, everything expires.
	cs, err := w.Advance(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumActive() != 0 {
		t.Fatalf("active after drain = %v", w.ActiveIDs())
	}
	if len(cs.Expired) != 7 {
		t.Errorf("expired %d elements, want 7", len(cs.Expired))
	}
}

func TestLastReferenceKeepsParentAlive(t *testing.T) {
	w := NewActiveWindow(2)
	e1 := &Element{ID: 1, TS: 1}
	e2 := &Element{ID: 2, TS: 3, Refs: []ElemID{1}}
	e3 := &Element{ID: 3, TS: 4, Refs: []ElemID{1}}
	if _, err := w.Advance(1, []*Element{e1}); err != nil {
		t.Fatal(err)
	}
	// t=3: e1 left the window (T=2, cutoff 1) but e2 refers to it.
	if _, err := w.Advance(3, []*Element{e2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Get(1); !ok {
		t.Fatal("e1 must stay active while referenced")
	}
	if _, err := w.Advance(4, []*Element{e3}); err != nil {
		t.Fatal(err)
	}
	// t=6: e2 and e3 leave the window; e1 loses all children and expires.
	cs, err := w.Advance(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumActive() != 0 {
		t.Fatalf("want empty, got %v", w.ActiveIDs())
	}
	if len(cs.Expired) != 3 {
		t.Errorf("expired = %d, want 3", len(cs.Expired))
	}
}

func TestResurrection(t *testing.T) {
	w := NewActiveWindow(2)
	e1 := &Element{ID: 1, TS: 1}
	if _, err := w.Advance(1, []*Element{e1}); err != nil {
		t.Fatal(err)
	}
	// e1 expires.
	if _, err := w.Advance(5, nil); err != nil {
		t.Fatal(err)
	}
	if w.NumActive() != 0 {
		t.Fatal("e1 should be expired")
	}
	// A new element referencing e1 resurrects it.
	e2 := &Element{ID: 2, TS: 6, Refs: []ElemID{1}}
	cs, err := w.Advance(6, []*Element{e2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Get(1); !ok {
		t.Fatal("e1 should be resurrected")
	}
	// Both e2 (arrival) and e1 (resurrection) count as inserted.
	if len(cs.Inserted) != 2 {
		t.Errorf("Inserted = %v", cs.Inserted)
	}
	if len(cs.Updated) != 0 {
		t.Errorf("resurrected parent must not also appear in Updated: %v", cs.Updated)
	}
}

func TestUpdatedParents(t *testing.T) {
	w := NewActiveWindow(10)
	e1 := &Element{ID: 1, TS: 1}
	e2 := &Element{ID: 2, TS: 2}
	if _, err := w.Advance(2, []*Element{e1, e2}); err != nil {
		t.Fatal(err)
	}
	e3 := &Element{ID: 3, TS: 3, Refs: []ElemID{1, 2}}
	e4 := &Element{ID: 4, TS: 3, Refs: []ElemID{1}}
	cs, err := w.Advance(3, []*Element{e3, e4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Updated) != 2 || cs.Updated[0].ID != 1 || cs.Updated[1].ID != 2 {
		t.Errorf("Updated = %v, want [e1 e2]", cs.Updated)
	}
}

func TestDanglingReferenceIgnored(t *testing.T) {
	w := NewActiveWindow(10)
	e := &Element{ID: 1, TS: 1, Refs: []ElemID{999}}
	cs, err := w.Advance(1, []*Element{e})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Inserted) != 1 || len(cs.Updated) != 0 {
		t.Errorf("dangling ref should be ignored: %+v", cs)
	}
	if w.NumChildren(999) != 0 {
		t.Error("dangling parent has children")
	}
}

func TestAdvanceErrors(t *testing.T) {
	w := NewActiveWindow(10)
	if _, err := w.Advance(5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Advance(3, nil); err == nil {
		t.Error("time moving backwards accepted")
	}
	if _, err := w.Advance(6, []*Element{{ID: 1, TS: 99}}); err == nil {
		t.Error("future element accepted")
	}
	if _, err := w.Advance(7, []*Element{{ID: 2, TS: 7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Advance(8, []*Element{{ID: 2, TS: 8}}); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestNewActiveWindowPanicsOnBadT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("T=0 should panic")
		}
	}()
	NewActiveWindow(0)
}

// Invariant check under random streams: active set equals the brute-force
// definition A_t = W_t ∪ referenced-by-W_t, and children indexes match.
func TestActiveWindowRandomInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const T = 20
	w := NewActiveWindow(T)
	var all []*Element
	now := Time(0)
	for step := 0; step < 200; step++ {
		now += Time(1 + rng.Intn(3))
		var batch []*Element
		for j := 0; j < rng.Intn(4); j++ {
			e := &Element{ID: ElemID(len(all) + 1), TS: now}
			// Reference up to 2 random earlier elements.
			for r := 0; r < rng.Intn(3) && len(all) > 0; r++ {
				e.Refs = append(e.Refs, all[rng.Intn(len(all))].ID)
			}
			all = append(all, e)
			batch = append(batch, e)
		}
		if _, err := w.Advance(now, batch); err != nil {
			t.Fatal(err)
		}
		verifyInvariant(t, w, all, now, T)
	}
}

func verifyInvariant(t *testing.T, w *ActiveWindow, all []*Element, now, T Time) {
	t.Helper()
	inWindow := make(map[ElemID]*Element)
	for _, e := range all {
		if e.TS > now-T && e.TS <= now {
			inWindow[e.ID] = e
		}
	}
	wantActive := make(map[ElemID]struct{})
	wantChildren := make(map[ElemID]map[ElemID]struct{})
	for id := range inWindow {
		wantActive[id] = struct{}{}
	}
	for _, c := range inWindow {
		for _, pid := range c.Refs {
			wantActive[pid] = struct{}{}
			if wantChildren[pid] == nil {
				wantChildren[pid] = make(map[ElemID]struct{})
			}
			wantChildren[pid][c.ID] = struct{}{}
		}
	}
	if len(wantActive) != w.NumActive() {
		t.Fatalf("t=%d: NumActive = %d, want %d", now, w.NumActive(), len(wantActive))
	}
	for id := range wantActive {
		if _, ok := w.Get(id); !ok {
			t.Fatalf("t=%d: e%d should be active", now, id)
		}
		if got, want := w.NumChildren(id), len(wantChildren[id]); got != want {
			t.Fatalf("t=%d: children(e%d) = %d, want %d", now, id, got, want)
		}
	}
}
