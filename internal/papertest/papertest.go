// Package papertest provides the running example of the paper (Table 1:
// eight tweets over two topics with their topic-word distributions and
// references) as a reusable fixture. The paper works several results out by
// hand — Example 3.1 (R_2({e2,e7}) = 0.53), Example 3.2 (I_{2,8}({e2,e3}) =
// 0.93), Example 3.4 (query optima), and the ranked-list states of Figures 5
// and 6 — which the test suites assert against.
package papertest

import (
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Words w1..w16 of Table 1(b)/(c), indexed 0..15 as WordIDs.
var Words = []string{
	"asroma", "assist", "cavs", "champion", "defeat", "final", "lebron",
	"lfc", "manutd", "nbaplayoffs", "pl", "point", "raptors", "realmadrid",
	"schedule", "ucl",
}

// phi1 and phi2 are the topic-word probabilities of Table 1(b)/(c). They do
// not sum to 1 over the 16 example words (the full vocabulary is larger);
// Model.Validate is therefore not applicable to this fixture.
var (
	phi1 = []float64{0, 0.06, 0.09, 0.1, 0.05, 0.11, 0.12, 0, 0, 0.11, 0, 0.15, 0.08, 0, 0.13, 0}
	phi2 = []float64{0.03, 0.04, 0, 0.09, 0.04, 0.12, 0, 0.06, 0.07, 0, 0.11, 0.14, 0, 0.07, 0.12, 0.11}
)

// Model returns the two-topic model of Table 1(b)/(c).
func Model() *topicmodel.Model {
	m := &topicmodel.Model{Z: 2, V: len(Words), PTopic: []float64{0.5, 0.5}}
	m.Phi = append(append([]float64{}, phi1...), phi2...)
	return m
}

// elemSpec describes one row of Table 1(a).
type elemSpec struct {
	words  []int // 1-based word indices as printed in the paper
	p1, p2 float64
	refs   []stream.ElemID
}

var specs = []elemSpec{
	{words: []int{1, 6, 8, 14, 16}, p1: 0.2, p2: 0.8},
	{words: []int{4, 9, 11}, p1: 0.26, p2: 0.74},
	{words: []int{3, 5, 10, 13}, p1: 0.89, p2: 0.11},
	{words: []int{7, 10}, p1: 1, p2: 0, refs: []stream.ElemID{3}},
	{words: []int{6, 8, 16}, p1: 0.29, p2: 0.71, refs: []stream.ElemID{1}},
	{words: []int{2, 7, 10, 12}, p1: 0.7, p2: 0.3, refs: []stream.ElemID{3}},
	{words: []int{4, 11}, p1: 0.33, p2: 0.67, refs: []stream.ElemID{2}},
	{words: []int{10, 11, 15}, p1: 0.51, p2: 0.49, refs: []stream.ElemID{2, 3, 6}},
}

// Elements returns the eight elements of Table 1(a): e_i arrives at time i
// with the listed words, topic distribution and references.
func Elements() []*stream.Element {
	elems := make([]*stream.Element, len(specs))
	for i, sp := range specs {
		ids := make([]textproc.WordID, len(sp.words))
		for j, w := range sp.words {
			ids[j] = textproc.WordID(w - 1)
		}
		var topics topicmodel.TopicVec
		if sp.p1 > 0 {
			topics.Topics = append(topics.Topics, 0)
			topics.Probs = append(topics.Probs, sp.p1)
		}
		if sp.p2 > 0 {
			topics.Topics = append(topics.Topics, 1)
			topics.Probs = append(topics.Probs, sp.p2)
		}
		elems[i] = &stream.Element{
			ID:     stream.ElemID(i + 1),
			TS:     stream.Time(i + 1),
			Doc:    textproc.NewDocument(ids),
			Topics: topics,
			Refs:   sp.refs,
		}
	}
	return elems
}

// Window returns an active window of length T=4 advanced through all eight
// elements to t=8, the state every worked example in the paper uses.
func Window() (*stream.ActiveWindow, []*stream.Element) {
	w := stream.NewActiveWindow(4)
	elems := Elements()
	for _, e := range elems {
		if _, err := w.Advance(e.TS, []*stream.Element{e}); err != nil {
			panic(err) // fixture data is static; failure is a bug here
		}
	}
	return w, elems
}

// QueryUniform is x1 = (0.5, 0.5) of Example 3.4.
func QueryUniform() topicmodel.TopicVec {
	return topicmodel.TopicVec{Topics: []int32{0, 1}, Probs: []float64{0.5, 0.5}}
}

// QuerySkewed is x2 = (0.1, 0.9) of Example 3.4.
func QuerySkewed() topicmodel.TopicVec {
	return topicmodel.TopicVec{Topics: []int32{0, 1}, Probs: []float64{0.1, 0.9}}
}
