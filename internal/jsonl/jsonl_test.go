package jsonl

import (
	"bytes"
	"strings"
	"testing"

	"github.com/social-streams/ksir/internal/dataset"
)

func TestRoundTrip(t *testing.T) {
	ds, err := dataset.Generate(dataset.TwitterLike(300), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ds.Elements, ds.Docs, ds.Vocab); err != nil {
		t.Fatal(err)
	}
	res, dangling, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dangling != 0 {
		t.Errorf("dangling = %d", dangling)
	}
	if len(res.Elements) != len(ds.Elements) {
		t.Fatalf("got %d elements, want %d", len(res.Elements), len(ds.Elements))
	}
	for i, e := range res.Elements {
		orig := ds.Elements[i]
		if e.ID != orig.ID || e.TS != orig.TS {
			t.Fatalf("element %d header mismatch", i)
		}
		if e.Doc.Len != orig.Doc.Len || e.Doc.Distinct() != orig.Doc.Distinct() {
			t.Fatalf("element %d doc mismatch", i)
		}
		if len(e.Refs) != len(orig.Refs) {
			t.Fatalf("element %d refs mismatch", i)
		}
	}
	// Vocabulary frequencies rebuilt consistently for words in use.
	if res.Vocab.Size() == 0 {
		t.Error("empty vocab after read")
	}
}

func TestWriteLengthMismatch(t *testing.T) {
	ds, err := dataset.Generate(dataset.TwitterLike(50), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ds.Elements, ds.Docs[:10], ds.Vocab); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestReadValidation(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{"id":1,"ts":`},
		{"out of order", "{\"id\":1,\"ts\":5,\"words\":[\"a\"]}\n{\"id\":2,\"ts\":3,\"words\":[\"b\"]}"},
		{"duplicate id", "{\"id\":1,\"ts\":1,\"words\":[\"a\"]}\n{\"id\":1,\"ts\":2,\"words\":[\"b\"]}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Read(strings.NewReader(tc.in)); err == nil {
				t.Error("accepted")
			}
		})
	}
}

func TestReadDanglingRefsDropped(t *testing.T) {
	in := "{\"id\":1,\"ts\":1,\"words\":[\"a\"]}\n" +
		"{\"id\":2,\"ts\":2,\"words\":[\"b\"],\"refs\":[1,99]}\n"
	res, dangling, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if dangling != 1 {
		t.Errorf("dangling = %d, want 1", dangling)
	}
	if len(res.Elements[1].Refs) != 1 || res.Elements[1].Refs[0] != 1 {
		t.Errorf("refs = %v", res.Elements[1].Refs)
	}
}

func TestReadEmptyAndBlankLines(t *testing.T) {
	res, dangling, err := Read(strings.NewReader("\n\n"))
	if err != nil || dangling != 0 || len(res.Elements) != 0 {
		t.Errorf("blank input: %v %d %d", err, dangling, len(res.Elements))
	}
}
