// Package jsonl reads and writes social streams as JSON lines, the
// interchange format of the ksir-gen / ksir-query tools:
//
//	{"id":17,"ts":912,"words":["w00042","w00619"],"refs":[3]}
//
// Words are plain strings; vocabularies are rebuilt on read. Lines must be
// ordered by ts (the stream contract).
package jsonl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
)

// Elem is the wire form of one element.
type Elem struct {
	ID    int64    `json:"id"`
	TS    int64    `json:"ts"`
	Words []string `json:"words"`
	Refs  []int64  `json:"refs,omitempty"`
}

// Write encodes elements to w, one JSON object per line. The words of each
// element are resolved through vocab.
func Write(w io.Writer, elems []*stream.Element, docs [][]textproc.WordID, vocab *textproc.Vocabulary) error {
	if len(elems) != len(docs) {
		return fmt.Errorf("jsonl: %d elements but %d docs", len(elems), len(docs))
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range elems {
		je := Elem{ID: int64(e.ID), TS: int64(e.TS)}
		for _, wid := range docs[i] {
			je.Words = append(je.Words, vocab.Word(wid))
		}
		for _, r := range e.Refs {
			je.Refs = append(je.Refs, int64(r))
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("jsonl: encoding element %d: %w", e.ID, err)
		}
	}
	return bw.Flush()
}

// Result is a decoded stream: elements (without topic vectors — those are
// assigned by the caller's inference step), token docs, and the vocabulary
// interned from the words encountered.
type Result struct {
	Elements []*stream.Element
	Docs     [][]textproc.WordID
	Vocab    *textproc.Vocabulary
}

// Read decodes a JSON-lines stream, validating ordering and reference
// sanity (refs must point to already-seen IDs; danglers are dropped with a
// count returned in the error-free case).
func Read(r io.Reader) (*Result, int, error) {
	res := &Result{Vocab: textproc.NewVocabulary()}
	seen := make(map[int64]struct{})
	dangling := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	var prevTS int64
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je Elem
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, 0, fmt.Errorf("jsonl: line %d: %w", line, err)
		}
		if je.TS < prevTS {
			return nil, 0, fmt.Errorf("jsonl: line %d: ts %d before %d", line, je.TS, prevTS)
		}
		if _, dup := seen[je.ID]; dup {
			return nil, 0, fmt.Errorf("jsonl: line %d: duplicate id %d", line, je.ID)
		}
		prevTS = je.TS
		seen[je.ID] = struct{}{}
		ids := make([]textproc.WordID, len(je.Words))
		for i, w := range je.Words {
			ids[i] = res.Vocab.Add(w)
		}
		res.Vocab.ObserveDoc(ids)
		e := &stream.Element{
			ID:  stream.ElemID(je.ID),
			TS:  stream.Time(je.TS),
			Doc: textproc.NewDocument(ids),
		}
		for _, ref := range je.Refs {
			if _, ok := seen[ref]; !ok {
				dangling++
				continue
			}
			e.Refs = append(e.Refs, stream.ElemID(ref))
		}
		res.Elements = append(res.Elements, e)
		res.Docs = append(res.Docs, ids)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("jsonl: %w", err)
	}
	return res, dangling, nil
}
