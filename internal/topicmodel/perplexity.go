package topicmodel

import (
	"fmt"
	"math"

	"github.com/social-streams/ksir/internal/textproc"
)

// Perplexity computes the held-out perplexity of the model on documents:
// exp(−Σ_d Σ_{w∈d} log p(w|d) / Σ_d |d|) with p(w|d) = Σ_i p_i(d)·p_i(w),
// where p_i(d) is fold-in inferred. Lower is better; the standard way to
// choose z when sweeping topic counts (the paper trains z ∈ [50, 250]).
func Perplexity(inf *Inferencer, docs [][]textproc.WordID) (float64, error) {
	var logSum float64
	var tokens int64
	m := inf.Model()
	for _, doc := range docs {
		known := make([]textproc.WordID, 0, len(doc))
		for _, w := range doc {
			if int(w) < m.V {
				known = append(known, w)
			}
		}
		if len(known) == 0 {
			continue
		}
		theta := inf.InferDense(known)
		for _, w := range known {
			var p float64
			for i := range theta.Topics {
				p += theta.Probs[i] * m.TopicWord(int(theta.Topics[i]), w)
			}
			if p <= 0 {
				// β-smoothing guarantees p > 0 for in-vocabulary words; a
				// zero here means the model is corrupt.
				return 0, fmt.Errorf("topicmodel: zero word probability for word %d", w)
			}
			logSum += math.Log(p)
			tokens++
		}
	}
	if tokens == 0 {
		return 0, fmt.Errorf("topicmodel: no in-vocabulary tokens to evaluate")
	}
	return math.Exp(-logSum / float64(tokens)), nil
}
