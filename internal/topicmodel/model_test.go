package topicmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopicVecProb(t *testing.T) {
	v := NewTopicVec([]float64{0, 0.3, 0, 0.7})
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if got := v.Prob(1); got != 0.3 {
		t.Errorf("Prob(1) = %v", got)
	}
	if got := v.Prob(3); got != 0.7 {
		t.Errorf("Prob(3) = %v", got)
	}
	if got := v.Prob(0); got != 0 {
		t.Errorf("Prob(0) = %v, want 0", got)
	}
	if got := v.Sum(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Sum = %v", got)
	}
}

func TestTopicVecCosine(t *testing.T) {
	a := NewTopicVec([]float64{1, 0})
	b := NewTopicVec([]float64{0, 1})
	if got := a.Cosine(b); got != 0 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := a.Cosine(a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self cosine = %v", got)
	}
	if got := (TopicVec{}).Cosine(a); got != 0 {
		t.Errorf("empty cosine = %v", got)
	}
}

func TestTruncate(t *testing.T) {
	v := NewTopicVec([]float64{0.5, 0.3, 0.15, 0.04, 0.01})
	got := v.Truncate(4, 0.05)
	if got.Len() != 3 {
		t.Fatalf("Truncate kept %d topics, want 3: %+v", got.Len(), got)
	}
	if math.Abs(got.Sum()-1) > 1e-12 {
		t.Errorf("truncated sum = %v, want 1 (renormalized)", got.Sum())
	}
	// Relative ordering preserved after renormalization.
	if !(got.Prob(0) > got.Prob(1) && got.Prob(1) > got.Prob(2)) {
		t.Errorf("ordering lost: %+v", got)
	}
}

func TestTruncateKeepsLargestWhenAllBelowThreshold(t *testing.T) {
	dense := make([]float64, 100)
	for i := range dense {
		dense[i] = 0.01
	}
	v := NewTopicVec(dense)
	got := v.Truncate(4, 0.05)
	if got.Len() != 1 {
		t.Fatalf("want single largest entry kept, got %d", got.Len())
	}
	if math.Abs(got.Sum()-1) > 1e-12 {
		t.Errorf("sum = %v", got.Sum())
	}
}

func TestTruncateMaxTopics(t *testing.T) {
	v := NewTopicVec([]float64{0.2, 0.2, 0.2, 0.2, 0.2})
	got := v.Truncate(2, 0.0)
	if got.Len() != 2 {
		t.Fatalf("kept %d, want 2", got.Len())
	}
}

// Property: Truncate always returns a distribution (sums to 1) with sorted,
// unique topics, for any random non-empty input.
func TestTruncateProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		z := 1 + rng.Intn(30)
		dense := make([]float64, z)
		var sum float64
		for i := range dense {
			dense[i] = rng.Float64()
			sum += dense[i]
		}
		for i := range dense {
			dense[i] /= sum
		}
		v := NewTopicVec(dense).Truncate(1+rng.Intn(5), rng.Float64()*0.2)
		if v.Len() == 0 {
			return false
		}
		if math.Abs(v.Sum()-1) > 1e-9 {
			return false
		}
		for i := 1; i < v.Len(); i++ {
			if v.Topics[i] <= v.Topics[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestModelValidate(t *testing.T) {
	m := &Model{Z: 2, V: 2, Phi: []float64{0.5, 0.5, 0.9, 0.1}}
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := &Model{Z: 2, V: 2, Phi: []float64{0.5, 0.5, 0.9, 0.2}}
	if err := bad.Validate(); err == nil {
		t.Error("non-normalized topic accepted")
	}
	short := &Model{Z: 2, V: 2, Phi: []float64{0.5}}
	if err := short.Validate(); err == nil {
		t.Error("wrong-size Phi accepted")
	}
}
