package topicmodel

import (
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/textproc"
)

// synthCorpus builds a corpus with two disjoint "true" topics: words 0..4
// appear only in even docs, words 5..9 only in odd docs. Any sane topic
// model must separate them.
func synthCorpus(nDocs, docLen int, seed int64) [][]textproc.WordID {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]textproc.WordID, nDocs)
	for d := range docs {
		base := 0
		if d%2 == 1 {
			base = 5
		}
		doc := make([]textproc.WordID, docLen)
		for j := range doc {
			doc[j] = textproc.WordID(base + rng.Intn(5))
		}
		docs[d] = doc
	}
	return docs
}

func TestTrainLDARecoverstopics(t *testing.T) {
	docs := synthCorpus(100, 20, 1)
	m, vecs, err := TrainLDA(docs, LDAConfig{Topics: 2, VocabSize: 10, Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(vecs) != len(docs) {
		t.Fatalf("got %d doc vecs", len(vecs))
	}
	// Identify which latent topic corresponds to the even-doc vocabulary by
	// checking where word 0 has the most mass.
	evenTopic := 0
	if m.TopicWord(1, 0) > m.TopicWord(0, 0) {
		evenTopic = 1
	}
	oddTopic := 1 - evenTopic
	// Topic-word separation: the even topic must put most of its mass on
	// words 0-4, the odd topic on words 5-9.
	var evenMass, oddMass float64
	for w := 0; w < 5; w++ {
		evenMass += m.TopicWord(evenTopic, textproc.WordID(w))
		oddMass += m.TopicWord(oddTopic, textproc.WordID(w))
	}
	if evenMass < 0.9 {
		t.Errorf("even topic mass on its words = %v, want > 0.9", evenMass)
	}
	if oddMass > 0.1 {
		t.Errorf("odd topic leaked mass %v onto even words", oddMass)
	}
	// Document separation.
	correct := 0
	for d, v := range vecs {
		want := evenTopic
		if d%2 == 1 {
			want = oddTopic
		}
		if v.Prob(int32(want)) > 0.5 {
			correct++
		}
	}
	if correct < 95 {
		t.Errorf("only %d/100 docs assigned to their true topic", correct)
	}
}

func TestTrainLDADeterministic(t *testing.T) {
	docs := synthCorpus(20, 10, 2)
	cfg := LDAConfig{Topics: 2, VocabSize: 10, Iterations: 10, Seed: 7}
	m1, _, err := TrainLDA(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := TrainLDA(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Phi {
		if m1.Phi[i] != m2.Phi[i] {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestTrainLDAErrors(t *testing.T) {
	if _, _, err := TrainLDA(nil, LDAConfig{Topics: 0, VocabSize: 5}); err == nil {
		t.Error("zero topics accepted")
	}
	if _, _, err := TrainLDA(nil, LDAConfig{Topics: 2, VocabSize: 0}); err == nil {
		t.Error("zero vocab accepted")
	}
	docs := [][]textproc.WordID{{99}}
	if _, _, err := TrainLDA(docs, LDAConfig{Topics: 2, VocabSize: 5, Iterations: 1}); err == nil {
		t.Error("out-of-vocab word accepted")
	}
}

func TestLDADefaultPriors(t *testing.T) {
	cfg := LDAConfig{Topics: 50, VocabSize: 10}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha != 1.0 { // 50/z with z=50
		t.Errorf("Alpha = %v, want 1", cfg.Alpha)
	}
	if cfg.Beta != 0.01 {
		t.Errorf("Beta = %v, want 0.01", cfg.Beta)
	}
	if cfg.Iterations != 100 {
		t.Errorf("Iterations = %v, want 100", cfg.Iterations)
	}
}

func TestPTopicIsDistribution(t *testing.T) {
	docs := synthCorpus(30, 10, 3)
	m, _, err := TrainLDA(docs, LDAConfig{Topics: 3, VocabSize: 10, Iterations: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, p := range m.PTopic {
		if p < 0 {
			t.Fatalf("negative PTopic %v", p)
		}
		s += p
	}
	if s < 0.999 || s > 1.001 {
		t.Errorf("PTopic sums to %v", s)
	}
}
