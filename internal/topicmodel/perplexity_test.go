package topicmodel

import (
	"testing"

	"github.com/social-streams/ksir/internal/textproc"
)

func TestPerplexityTrainedBeatsUniform(t *testing.T) {
	docs := synthCorpus(200, 20, 21)
	heldOut := synthCorpus(40, 20, 22)

	trained, _, err := TrainLDA(docs, LDAConfig{Topics: 2, VocabSize: 10, Iterations: 50, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform (untrained) reference model.
	uniform := &Model{Z: 2, V: 10, Phi: make([]float64, 20), PTopic: []float64{0.5, 0.5}}
	for i := range uniform.Phi {
		uniform.Phi[i] = 0.1
	}

	pTrained, err := Perplexity(NewInferencer(trained, 1), heldOut)
	if err != nil {
		t.Fatal(err)
	}
	pUniform, err := Perplexity(NewInferencer(uniform, 1), heldOut)
	if err != nil {
		t.Fatal(err)
	}
	if pTrained >= pUniform {
		t.Errorf("trained perplexity %.2f not better than uniform %.2f", pTrained, pUniform)
	}
	// A 2-true-topic corpus with 5 words per topic: a perfect model gives
	// perplexity ≈ 5; the trained model should be close.
	if pTrained > 7 {
		t.Errorf("trained perplexity %.2f, want ≈5", pTrained)
	}
}

func TestPerplexityErrors(t *testing.T) {
	m := &Model{Z: 1, V: 2, Phi: []float64{0.5, 0.5}, PTopic: []float64{1}}
	inf := NewInferencer(m, 1)
	if _, err := Perplexity(inf, nil); err == nil {
		t.Error("no docs accepted")
	}
	if _, err := Perplexity(inf, [][]textproc.WordID{{99}}); err == nil {
		t.Error("all-unknown docs accepted")
	}
}
