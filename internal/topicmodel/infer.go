package topicmodel

import (
	"math/rand"

	"github.com/social-streams/ksir/internal/textproc"
)

// Inferencer folds unseen documents (stream elements, keyword queries) into
// a trained model. The paper's architecture (Figure 4) runs this "topic
// inference" step on each arriving bucket and on each user query; it is
// "rather standard (e.g., Gibbs sampling)" per §4.
//
// Inferencer is safe for concurrent use: each call uses its own RNG derived
// from the element content, which also makes inference deterministic for a
// given (model, document) pair.
type Inferencer struct {
	model *Model
	// Alpha is the fold-in document-topic prior. It defaults to 0.1: unlike
	// training (α = 50/z over long corpora), fold-in must not let the prior
	// swamp the handful of tokens in a tweet or a keyword query, and a small
	// α yields the peaked per-element distributions (< 2 topics on average)
	// that §4 reports and the ranked-list pruning exploits.
	Alpha float64
	// Iterations is the number of fold-in Gibbs sweeps (default 20).
	Iterations int
	// MaxTopics / MinProb control sparse truncation of results.
	MaxTopics int
	MinProb   float64

	seed int64
}

// NewInferencer returns an Inferencer with defaults: α = 0.1, 20 fold-in
// sweeps, and truncation to at most 4 topics with p ≥ 0.05.
func NewInferencer(m *Model, seed int64) *Inferencer {
	return &Inferencer{
		model:      m,
		Alpha:      0.1,
		Iterations: 20,
		MaxTopics:  4,
		MinProb:    0.05,
		seed:       seed,
	}
}

// Model returns the underlying trained model.
func (inf *Inferencer) Model() *Model { return inf.model }

// InferDoc returns the truncated topic distribution of a token-ID document.
// Unknown words (id ≥ V) are skipped. An empty or all-unknown document
// yields an empty TopicVec.
func (inf *Inferencer) InferDoc(doc []textproc.WordID) TopicVec {
	words := make([]textproc.WordID, 0, len(doc))
	for _, w := range doc {
		if int(w) < inf.model.V {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return TopicVec{}
	}
	dense := inf.foldIn(words)
	return NewTopicVec(dense).Truncate(inf.MaxTopics, inf.MinProb)
}

// InferDense is InferDoc without truncation, returning the full
// z-dimensional distribution. Query vectors use this (queries may weight
// several topics; §3.2 normalizes them to sum to 1).
func (inf *Inferencer) InferDense(doc []textproc.WordID) TopicVec {
	words := make([]textproc.WordID, 0, len(doc))
	for _, w := range doc {
		if int(w) < inf.model.V {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return TopicVec{}
	}
	return NewTopicVec(inf.foldIn(words))
}

// foldIn runs collapsed Gibbs sampling over the document with the topic-word
// distributions held fixed at the trained Phi.
func (inf *Inferencer) foldIn(words []textproc.WordID) []float64 {
	m := inf.model
	z := m.Z
	rng := rand.New(rand.NewSource(inf.docSeed(words)))

	nTopic := make([]int32, z)
	assign := make([]topicID, len(words))
	// Initialize proportional to p(z)·p(w|z) for faster mixing than uniform.
	probs := make([]float64, z)
	for j, w := range words {
		var sum float64
		for t := 0; t < z; t++ {
			p := m.PTopic[t] * m.TopicWord(t, w)
			probs[t] = p
			sum += p
		}
		var t int
		if sum > 0 {
			t = sampleDiscrete(rng, probs, sum)
		} else {
			t = rng.Intn(z)
		}
		assign[j] = topicID(t)
		nTopic[t]++
	}

	for it := 0; it < inf.Iterations; it++ {
		for j, w := range words {
			old := int(assign[j])
			nTopic[old]--
			var sum float64
			for t := 0; t < z; t++ {
				p := (float64(nTopic[t]) + inf.Alpha) * m.TopicWord(t, w)
				probs[t] = p
				sum += p
			}
			var t int
			if sum > 0 {
				t = sampleDiscrete(rng, probs, sum)
			} else {
				t = old
			}
			assign[j] = topicID(t)
			nTopic[t]++
		}
	}

	dense := make([]float64, z)
	denom := float64(len(words)) + float64(z)*inf.Alpha
	for t := 0; t < z; t++ {
		dense[t] = (float64(nTopic[t]) + inf.Alpha) / denom
	}
	return dense
}

// docSeed derives a deterministic per-document seed from the base seed and
// the word sequence (FNV-1a over word IDs).
func (inf *Inferencer) docSeed(words []textproc.WordID) int64 {
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	h := uint64(offset) ^ uint64(inf.seed)
	for _, w := range words {
		h ^= uint64(uint32(w))
		h *= prime
	}
	return int64(h)
}
