package topicmodel

import (
	"fmt"
	"math/rand"

	"github.com/social-streams/ksir/internal/textproc"
)

// BTMConfig configures biterm-topic-model training. BTM models the corpus
// as a mixture over word co-occurrence pairs ("biterms") rather than over
// documents, which is why it outperforms LDA on very short texts such as
// tweets (§5.1 trains BTM on the Twitter corpus).
type BTMConfig struct {
	Topics     int
	VocabSize  int
	Alpha      float64 // topic mixture prior; 0 → 50/Topics
	Beta       float64 // topic-word prior; 0 → 0.01
	Iterations int     // Gibbs sweeps; 0 → 100
	Seed       int64
	// WindowSize bounds the distance between the two words of a biterm
	// within a document; 0 → 15 (effectively the whole doc for tweets).
	WindowSize int
}

func (c *BTMConfig) fill() error {
	if c.Topics <= 0 {
		return fmt.Errorf("btm: Topics must be positive, got %d", c.Topics)
	}
	if c.VocabSize <= 0 {
		return fmt.Errorf("btm: VocabSize must be positive, got %d", c.VocabSize)
	}
	if c.Alpha == 0 {
		c.Alpha = 50 / float64(c.Topics)
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Iterations == 0 {
		c.Iterations = 100
	}
	if c.WindowSize == 0 {
		c.WindowSize = 15
	}
	return nil
}

type biterm struct{ w1, w2 int32 }

// extractBiterms returns all unordered word pairs within the window.
// A single-word document yields the degenerate biterm (w, w) so that no
// document is invisible to the model.
func extractBiterms(doc []textproc.WordID, window int) []biterm {
	var bs []biterm
	for i := 0; i < len(doc); i++ {
		hi := i + window
		if hi > len(doc) {
			hi = len(doc)
		}
		for j := i + 1; j < hi; j++ {
			bs = append(bs, biterm{int32(doc[i]), int32(doc[j])})
		}
	}
	if len(bs) == 0 && len(doc) == 1 {
		bs = append(bs, biterm{int32(doc[0]), int32(doc[0])})
	}
	return bs
}

// TrainBTM trains a biterm topic model with collapsed Gibbs sampling and
// returns the model plus per-document topic distributions inferred from the
// documents' biterms.
func TrainBTM(docs [][]textproc.WordID, cfg BTMConfig) (*Model, []TopicVec, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	z, v := cfg.Topics, cfg.VocabSize
	rng := rand.New(rand.NewSource(cfg.Seed))

	var biterms []biterm
	docRange := make([][2]int, len(docs)) // biterm index range per doc
	for d, doc := range docs {
		for _, w := range doc {
			if int(w) >= v {
				return nil, nil, fmt.Errorf("btm: word %d out of vocab %d", w, v)
			}
		}
		start := len(biterms)
		biterms = append(biterms, extractBiterms(doc, cfg.WindowSize)...)
		docRange[d] = [2]int{start, len(biterms)}
	}

	nTopic := make([]int64, z)       // biterms assigned to topic
	nTopicWord := make([]int32, z*v) // word occurrences per topic
	assign := make([]topicID, len(biterms))

	for b, bt := range biterms {
		t := rng.Intn(z)
		assign[b] = topicID(t)
		nTopic[t]++
		nTopicWord[t*v+int(bt.w1)]++
		nTopicWord[t*v+int(bt.w2)]++
	}

	probs := make([]float64, z)
	vBeta := float64(v) * cfg.Beta
	for it := 0; it < cfg.Iterations; it++ {
		for b, bt := range biterms {
			old := int(assign[b])
			nTopic[old]--
			nTopicWord[old*v+int(bt.w1)]--
			nTopicWord[old*v+int(bt.w2)]--

			var sum float64
			for t := 0; t < z; t++ {
				denom := 2*float64(nTopic[t]) + vBeta
				p := (float64(nTopic[t]) + cfg.Alpha) *
					((float64(nTopicWord[t*v+int(bt.w1)]) + cfg.Beta) / denom) *
					((float64(nTopicWord[t*v+int(bt.w2)]) + cfg.Beta) / (denom + 1))
				probs[t] = p
				sum += p
			}
			t := sampleDiscrete(rng, probs, sum)
			assign[b] = topicID(t)
			nTopic[t]++
			nTopicWord[t*v+int(bt.w1)]++
			nTopicWord[t*v+int(bt.w2)]++
		}
	}

	m := &Model{Z: z, V: v, Phi: make([]float64, z*v), PTopic: make([]float64, z)}
	var totalBiterms int64
	for t := 0; t < z; t++ {
		denom := 2*float64(nTopic[t]) + vBeta
		for w := 0; w < v; w++ {
			m.Phi[t*v+w] = (float64(nTopicWord[t*v+w]) + cfg.Beta) / denom
		}
		m.PTopic[t] = float64(nTopic[t]) + cfg.Alpha
		totalBiterms += nTopic[t]
	}
	var ptSum float64
	for _, p := range m.PTopic {
		ptSum += p
	}
	for t := range m.PTopic {
		m.PTopic[t] /= ptSum
	}

	// Per-document distributions: p(z|d) ∝ Σ_{b∈d} p(z|b).
	docVecs := make([]TopicVec, len(docs))
	dense := make([]float64, z)
	for d := range docs {
		for t := range dense {
			dense[t] = 0
		}
		lo, hi := docRange[d][0], docRange[d][1]
		for b := lo; b < hi; b++ {
			bt := biterms[b]
			var sum float64
			for t := 0; t < z; t++ {
				p := m.PTopic[t] * m.TopicWord(t, textproc.WordID(bt.w1)) * m.TopicWord(t, textproc.WordID(bt.w2))
				probs[t] = p
				sum += p
			}
			if sum == 0 {
				continue
			}
			for t := 0; t < z; t++ {
				dense[t] += probs[t] / sum
			}
		}
		n := hi - lo
		if n > 0 {
			for t := range dense {
				dense[t] /= float64(n)
			}
		}
		docVecs[d] = NewTopicVec(dense)
	}
	return m, docVecs, nil
}
