package topicmodel

import (
	"math"
	"testing"

	"github.com/social-streams/ksir/internal/textproc"
)

func trainedModel(t *testing.T) *Model {
	t.Helper()
	docs := synthCorpus(100, 20, 5)
	m, _, err := TrainLDA(docs, LDAConfig{Topics: 2, VocabSize: 10, Iterations: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInferDocAssignsDominantTopic(t *testing.T) {
	m := trainedModel(t)
	inf := NewInferencer(m, 11)
	evenTopic := int32(0)
	if m.TopicWord(1, 0) > m.TopicWord(0, 0) {
		evenTopic = 1
	}
	vec := inf.InferDoc([]textproc.WordID{0, 1, 2, 3, 0, 1})
	if vec.Prob(evenTopic) < 0.8 {
		t.Errorf("doc of pure even-topic words got p=%v on that topic (%+v)", vec.Prob(evenTopic), vec)
	}
	if math.Abs(vec.Sum()-1) > 1e-9 {
		t.Errorf("Sum = %v", vec.Sum())
	}
}

func TestInferDocDeterministic(t *testing.T) {
	m := trainedModel(t)
	inf := NewInferencer(m, 11)
	doc := []textproc.WordID{0, 5, 2, 7}
	a := inf.InferDoc(doc)
	b := inf.InferDoc(doc)
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic inference")
	}
	for i := range a.Topics {
		if a.Topics[i] != b.Topics[i] || a.Probs[i] != b.Probs[i] {
			t.Fatal("nondeterministic inference")
		}
	}
}

func TestInferDocHandlesUnknownAndEmpty(t *testing.T) {
	m := trainedModel(t)
	inf := NewInferencer(m, 11)
	if got := inf.InferDoc(nil); got.Len() != 0 {
		t.Errorf("empty doc → %+v, want empty", got)
	}
	if got := inf.InferDoc([]textproc.WordID{1000}); got.Len() != 0 {
		t.Errorf("all-unknown doc → %+v, want empty", got)
	}
	// Mixed known/unknown: unknown words skipped, inference still works.
	got := inf.InferDoc([]textproc.WordID{0, 1000, 1})
	if got.Len() == 0 {
		t.Error("mixed doc should produce a distribution")
	}
}

func TestInferDenseIsFullDistribution(t *testing.T) {
	m := trainedModel(t)
	inf := NewInferencer(m, 11)
	vec := inf.InferDense([]textproc.WordID{0, 5})
	if math.Abs(vec.Sum()-1) > 1e-9 {
		t.Errorf("dense sum = %v", vec.Sum())
	}
	// Dense keeps smoothed mass on all topics.
	if vec.Len() != m.Z {
		t.Errorf("dense vec has %d topics, want %d", vec.Len(), m.Z)
	}
}

func TestInferConcurrentSafe(t *testing.T) {
	m := trainedModel(t)
	inf := NewInferencer(m, 11)
	done := make(chan TopicVec, 8)
	doc := []textproc.WordID{0, 1, 2}
	for i := 0; i < 8; i++ {
		go func() { done <- inf.InferDoc(doc) }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		v := <-done
		if v.Len() != first.Len() {
			t.Fatal("concurrent inference diverged")
		}
	}
}
