package topicmodel

import (
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/textproc"
)

// shortCorpus builds tweet-length docs (3 tokens) from two disjoint topics.
func shortCorpus(nDocs int, seed int64) [][]textproc.WordID {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]textproc.WordID, nDocs)
	for d := range docs {
		base := 0
		if d%2 == 1 {
			base = 5
		}
		doc := make([]textproc.WordID, 3)
		for j := range doc {
			doc[j] = textproc.WordID(base + rng.Intn(5))
		}
		docs[d] = doc
	}
	return docs
}

func TestExtractBiterms(t *testing.T) {
	doc := []textproc.WordID{1, 2, 3}
	bs := extractBiterms(doc, 15)
	if len(bs) != 3 {
		t.Fatalf("got %d biterms, want 3", len(bs))
	}
	want := []biterm{{1, 2}, {1, 3}, {2, 3}}
	for i, b := range bs {
		if b != want[i] {
			t.Errorf("biterm[%d] = %v, want %v", i, b, want[i])
		}
	}
}

func TestExtractBitermsWindow(t *testing.T) {
	doc := []textproc.WordID{1, 2, 3, 4}
	bs := extractBiterms(doc, 2)
	// window 2: only adjacent pairs.
	want := []biterm{{1, 2}, {2, 3}, {3, 4}}
	if len(bs) != len(want) {
		t.Fatalf("got %v, want %v", bs, want)
	}
	for i := range bs {
		if bs[i] != want[i] {
			t.Errorf("biterm[%d] = %v, want %v", i, bs[i], want[i])
		}
	}
}

func TestExtractBitermsSingleWord(t *testing.T) {
	bs := extractBiterms([]textproc.WordID{7}, 15)
	if len(bs) != 1 || bs[0] != (biterm{7, 7}) {
		t.Errorf("single-word doc: got %v, want [(7,7)]", bs)
	}
	if got := extractBiterms(nil, 15); got != nil {
		t.Errorf("empty doc should yield no biterms, got %v", got)
	}
}

func TestTrainBTMRecoversTopics(t *testing.T) {
	docs := shortCorpus(200, 1)
	m, vecs, err := TrainBTM(docs, BTMConfig{Topics: 2, VocabSize: 10, Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	evenTopic := 0
	if m.TopicWord(1, 0) > m.TopicWord(0, 0) {
		evenTopic = 1
	}
	var evenMass float64
	for w := 0; w < 5; w++ {
		evenMass += m.TopicWord(evenTopic, textproc.WordID(w))
	}
	if evenMass < 0.9 {
		t.Errorf("even topic mass = %v, want > 0.9", evenMass)
	}
	correct := 0
	for d, v := range vecs {
		want := int32(evenTopic)
		if d%2 == 1 {
			want = int32(1 - evenTopic)
		}
		if v.Prob(want) > 0.5 {
			correct++
		}
	}
	if correct < 190 {
		t.Errorf("only %d/200 short docs assigned correctly", correct)
	}
}

func TestTrainBTMDeterministic(t *testing.T) {
	docs := shortCorpus(50, 2)
	cfg := BTMConfig{Topics: 2, VocabSize: 10, Iterations: 10, Seed: 9}
	m1, _, err := TrainBTM(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := TrainBTM(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Phi {
		if m1.Phi[i] != m2.Phi[i] {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestTrainBTMErrors(t *testing.T) {
	if _, _, err := TrainBTM(nil, BTMConfig{Topics: 0, VocabSize: 5}); err == nil {
		t.Error("zero topics accepted")
	}
	docs := [][]textproc.WordID{{99}}
	if _, _, err := TrainBTM(docs, BTMConfig{Topics: 2, VocabSize: 5, Iterations: 1}); err == nil {
		t.Error("out-of-vocab word accepted")
	}
}
