package topicmodel

import (
	"fmt"
	"math/rand"

	"github.com/social-streams/ksir/internal/textproc"
)

// LDAConfig configures collapsed-Gibbs LDA training. The paper (§5.1) uses
// α = 50/z and β = 0.01, which are the defaults here when the fields are 0.
type LDAConfig struct {
	Topics     int
	VocabSize  int
	Alpha      float64 // document-topic Dirichlet prior; 0 → 50/Topics
	Beta       float64 // topic-word Dirichlet prior; 0 → 0.01
	Iterations int     // Gibbs sweeps; 0 → 100
	Seed       int64
}

func (c *LDAConfig) fill() error {
	if c.Topics <= 0 {
		return fmt.Errorf("lda: Topics must be positive, got %d", c.Topics)
	}
	if c.VocabSize <= 0 {
		return fmt.Errorf("lda: VocabSize must be positive, got %d", c.VocabSize)
	}
	if c.Alpha == 0 {
		c.Alpha = 50 / float64(c.Topics)
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Iterations == 0 {
		c.Iterations = 100
	}
	return nil
}

// TrainLDA trains an LDA model on token-ID documents with collapsed Gibbs
// sampling and returns the model together with the per-document topic
// distributions of the training corpus.
func TrainLDA(docs [][]textproc.WordID, cfg LDAConfig) (*Model, []TopicVec, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	z, v := cfg.Topics, cfg.VocabSize
	rng := rand.New(rand.NewSource(cfg.Seed))

	nDocTopic := make([]int32, len(docs)*z) // n_{d,i}
	nTopicWord := make([]int32, z*v)        // n_{i,w}
	nTopic := make([]int64, z)              // n_i
	assign := make([][]topicID, len(docs))

	// Random initialization.
	for d, doc := range docs {
		assign[d] = make([]topicID, len(doc))
		for j, w := range doc {
			if int(w) >= v {
				return nil, nil, fmt.Errorf("lda: word %d out of vocab %d", w, v)
			}
			t := rng.Intn(z)
			assign[d][j] = topicID(t)
			nDocTopic[d*z+t]++
			nTopicWord[t*v+int(w)]++
			nTopic[t]++
		}
	}

	probs := make([]float64, z)
	vBeta := float64(v) * cfg.Beta
	for it := 0; it < cfg.Iterations; it++ {
		for d, doc := range docs {
			for j, w := range doc {
				old := int(assign[d][j])
				nDocTopic[d*z+old]--
				nTopicWord[old*v+int(w)]--
				nTopic[old]--

				var sum float64
				for t := 0; t < z; t++ {
					p := (float64(nDocTopic[d*z+t]) + cfg.Alpha) *
						(float64(nTopicWord[t*v+int(w)]) + cfg.Beta) /
						(float64(nTopic[t]) + vBeta)
					probs[t] = p
					sum += p
				}
				t := sampleDiscrete(rng, probs, sum)
				assign[d][j] = topicID(t)
				nDocTopic[d*z+t]++
				nTopicWord[t*v+int(w)]++
				nTopic[t]++
			}
		}
	}

	m := &Model{Z: z, V: v, Phi: make([]float64, z*v), PTopic: make([]float64, z)}
	var totalTokens int64
	for t := 0; t < z; t++ {
		denom := float64(nTopic[t]) + vBeta
		for w := 0; w < v; w++ {
			m.Phi[t*v+w] = (float64(nTopicWord[t*v+w]) + cfg.Beta) / denom
		}
		m.PTopic[t] = float64(nTopic[t])
		totalTokens += nTopic[t]
	}
	if totalTokens > 0 {
		for t := range m.PTopic {
			m.PTopic[t] /= float64(totalTokens)
		}
	} else {
		for t := range m.PTopic {
			m.PTopic[t] = 1 / float64(z)
		}
	}

	docVecs := make([]TopicVec, len(docs))
	zAlpha := float64(z) * cfg.Alpha
	dense := make([]float64, z)
	for d, doc := range docs {
		denom := float64(len(doc)) + zAlpha
		for t := 0; t < z; t++ {
			dense[t] = (float64(nDocTopic[d*z+t]) + cfg.Alpha) / denom
		}
		docVecs[d] = NewTopicVec(dense)
	}
	return m, docVecs, nil
}

// topicID holds a topic assignment. Using int16 supports up to 32767 topics,
// far above the paper's z ≤ 250, at half the memory of int32.
type topicID = int16

// sampleDiscrete draws an index from an unnormalized discrete distribution
// with precomputed sum. It falls back to the last index on floating-point
// underflow.
func sampleDiscrete(rng *rand.Rand, probs []float64, sum float64) int {
	u := rng.Float64() * sum
	var acc float64
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}
