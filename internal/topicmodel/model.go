// Package topicmodel implements the probabilistic topic-model substrate used
// by k-SIR: LDA and the biterm topic model (BTM), both trained with collapsed
// Gibbs sampling, plus fold-in inference for unseen documents and keyword
// queries. The paper (§3.1) treats the topic model as a black-box oracle
// supplying p_i(w) and p_i(e); Model is that oracle.
package topicmodel

import (
	"fmt"
	"math"
	"sort"

	"github.com/social-streams/ksir/internal/textproc"
)

// Model is a trained topic model: z topics over a vocabulary of v words.
// Phi[i*V+w] = p_i(w), the probability of word w under topic i; each topic
// row sums to 1.
type Model struct {
	Z   int       // number of topics
	V   int       // vocabulary size
	Phi []float64 // row-major Z×V topic-word matrix
	// PTopic is the marginal topic distribution p(z), used by BTM-style
	// inference. For LDA it is estimated from the training corpus.
	PTopic []float64
}

// TopicWord returns p_i(w). It panics if topic or word is out of range.
func (m *Model) TopicWord(topic int, w textproc.WordID) float64 {
	return m.Phi[topic*m.V+int(w)]
}

// NumTopics returns z.
func (m *Model) NumTopics() int { return m.Z }

// Validate checks structural invariants: dimensions match and every topic
// row is a probability distribution.
func (m *Model) Validate() error {
	if len(m.Phi) != m.Z*m.V {
		return fmt.Errorf("topicmodel: Phi has %d entries, want %d", len(m.Phi), m.Z*m.V)
	}
	for i := 0; i < m.Z; i++ {
		var s float64
		for w := 0; w < m.V; w++ {
			p := m.Phi[i*m.V+w]
			if p < 0 {
				return fmt.Errorf("topicmodel: negative p_%d(%d) = %v", i, w, p)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-6 {
			return fmt.Errorf("topicmodel: topic %d sums to %v, want 1", i, s)
		}
	}
	return nil
}

// TopicVec is a sparse element-topic (or query-topic) distribution:
// parallel slices of topic indices and probabilities, sorted by topic,
// summing to 1 (or empty for an element with no usable words).
type TopicVec struct {
	Topics []int32
	Probs  []float64
}

// NewTopicVec builds a sorted TopicVec from a dense distribution, dropping
// zero entries.
func NewTopicVec(dense []float64) TopicVec {
	var v TopicVec
	for i, p := range dense {
		if p > 0 {
			v.Topics = append(v.Topics, int32(i))
			v.Probs = append(v.Probs, p)
		}
	}
	return v
}

// Prob returns p_i(e) for topic i (0 if absent).
func (v TopicVec) Prob(topic int32) float64 {
	j := sort.Search(len(v.Topics), func(j int) bool { return v.Topics[j] >= topic })
	if j < len(v.Topics) && v.Topics[j] == topic {
		return v.Probs[j]
	}
	return 0
}

// Len returns the number of topics with non-zero probability.
func (v TopicVec) Len() int { return len(v.Topics) }

// Sum returns the total probability mass (1 for a full distribution,
// possibly <1 after truncation without renormalization).
func (v TopicVec) Sum() float64 {
	var s float64
	for _, p := range v.Probs {
		s += p
	}
	return s
}

// Cosine returns the cosine similarity between two sparse topic vectors,
// the relevance measure used by the REL baseline (§2, [19, 39]).
func (v TopicVec) Cosine(o TopicVec) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(v.Topics) && j < len(o.Topics) {
		switch {
		case v.Topics[i] < o.Topics[j]:
			i++
		case v.Topics[i] > o.Topics[j]:
			j++
		default:
			dot += v.Probs[i] * o.Probs[j]
			i++
			j++
		}
	}
	nv, no := v.norm(), o.norm()
	if nv == 0 || no == 0 {
		return 0
	}
	return dot / (nv * no)
}

func (v TopicVec) norm() float64 {
	var s float64
	for _, p := range v.Probs {
		s += p * p
	}
	return math.Sqrt(s)
}

// Truncate keeps at most maxTopics entries with probability ≥ minProb and
// renormalizes the survivors to sum to 1. This reproduces the sparsity the
// paper observes ("the average number of topics per element is less than
// 2", §4) and that the ranked-list pruning relies on. If nothing survives
// the thresholds, the single largest entry is kept.
func (v TopicVec) Truncate(maxTopics int, minProb float64) TopicVec {
	if v.Len() == 0 {
		return v
	}
	type tp struct {
		t int32
		p float64
	}
	all := make([]tp, v.Len())
	for i := range v.Topics {
		all[i] = tp{v.Topics[i], v.Probs[i]}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].p != all[b].p {
			return all[a].p > all[b].p
		}
		return all[a].t < all[b].t
	})
	kept := all[:0]
	for i, e := range all {
		if i >= maxTopics || (e.p < minProb && i > 0) {
			break
		}
		kept = append(kept, e)
	}
	sort.Slice(kept, func(a, b int) bool { return kept[a].t < kept[b].t })
	out := TopicVec{
		Topics: make([]int32, len(kept)),
		Probs:  make([]float64, len(kept)),
	}
	var sum float64
	for _, e := range kept {
		sum += e.p
	}
	for i, e := range kept {
		out.Topics[i] = e.t
		out.Probs[i] = e.p / sum
	}
	return out
}
