// Package textproc provides the text-processing substrate for k-SIR:
// tokenization, stop-word removal, vocabulary management, bag-of-words
// documents, and TF-IDF vectorization used by the keyword-based baselines.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenizer splits raw text into normalized tokens. The zero value is not
// usable; construct one with NewTokenizer.
type Tokenizer struct {
	stopwords map[string]struct{}
	minLen    int
	maxLen    int
}

// TokenizerOption configures a Tokenizer.
type TokenizerOption func(*Tokenizer)

// WithStopwords replaces the default English stop-word list.
func WithStopwords(words []string) TokenizerOption {
	return func(t *Tokenizer) {
		t.stopwords = make(map[string]struct{}, len(words))
		for _, w := range words {
			t.stopwords[strings.ToLower(w)] = struct{}{}
		}
	}
}

// WithTokenLength bounds accepted token lengths in runes. Tokens outside
// [min, max] are treated as noise words and dropped.
func WithTokenLength(min, max int) TokenizerOption {
	return func(t *Tokenizer) {
		t.minLen, t.maxLen = min, max
	}
}

// NewTokenizer returns a Tokenizer with the default English stop-word list
// and token length bounds [2, 32].
func NewTokenizer(opts ...TokenizerOption) *Tokenizer {
	t := &Tokenizer{
		stopwords: defaultStopwords(),
		minLen:    2,
		maxLen:    32,
	}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Tokenize lower-cases text, splits it on non-alphanumeric boundaries
// (keeping '#' and '@' prefixes intact so hashtags and mentions survive, as
// the paper's examples rely on them), and drops stop words, pure numbers and
// out-of-length tokens.
func (t *Tokenizer) Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		if t.keep(tok) {
			tokens = append(tokens, tok)
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case (r == '#' || r == '@') && b.Len() == 0:
			b.WriteRune(r)
		case r == '\'' || r == '’':
			// Drop apostrophes in-place: "it's" -> "its".
		default:
			flush()
		}
	}
	flush()
	return tokens
}

func (t *Tokenizer) keep(tok string) bool {
	n := len([]rune(tok))
	if n < t.minLen || n > t.maxLen {
		return false
	}
	if _, ok := t.stopwords[strings.TrimLeft(tok, "#@")]; ok {
		return false
	}
	if isNumeric(tok) {
		return false
	}
	return true
}

func isNumeric(s string) bool {
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(s) > 0
}
