package textproc

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestVocabularyAddAndLookup(t *testing.T) {
	v := NewVocabulary()
	a := v.Add("soccer")
	b := v.Add("basketball")
	if a == b {
		t.Fatalf("distinct words got same ID %d", a)
	}
	if again := v.Add("soccer"); again != a {
		t.Errorf("re-adding word changed ID: %d != %d", again, a)
	}
	if id, ok := v.ID("soccer"); !ok || id != a {
		t.Errorf("ID(soccer) = %d,%v want %d,true", id, ok, a)
	}
	if _, ok := v.ID("hockey"); ok {
		t.Error("ID(hockey) should be absent")
	}
	if v.Word(a) != "soccer" {
		t.Errorf("Word(%d) = %q", a, v.Word(a))
	}
	if v.Size() != 2 {
		t.Errorf("Size = %d, want 2", v.Size())
	}
}

func TestVocabularyFrequencies(t *testing.T) {
	v := NewVocabulary()
	w1, w2 := v.Add("lebron"), v.Add("final")
	v.ObserveDoc([]WordID{w1, w1, w2})
	v.ObserveDoc([]WordID{w1})
	if got := v.Freq(w1); got != 3 {
		t.Errorf("Freq(w1) = %d, want 3", got)
	}
	if got := v.DocFreq(w1); got != 2 {
		t.Errorf("DocFreq(w1) = %d, want 2", got)
	}
	if got := v.DocFreq(w2); got != 1 {
		t.Errorf("DocFreq(w2) = %d, want 1", got)
	}
}

func TestVocabularyPrune(t *testing.T) {
	v := NewVocabulary()
	rare := v.Add("rare")
	mid := v.Add("mid")
	everywhere := v.Add("everywhere")
	docs := [][]WordID{
		{rare, mid, everywhere},
		{mid, everywhere},
		{everywhere},
		{everywhere},
	}
	for _, d := range docs {
		v.ObserveDoc(d)
	}
	pruned, remap := v.Prune(len(docs), 2, 0.75)
	if pruned.Size() != 1 {
		t.Fatalf("pruned size = %d, want 1 (only 'mid' survives)", pruned.Size())
	}
	if remap[rare] != -1 || remap[everywhere] != -1 {
		t.Errorf("rare/everywhere should be dropped: remap=%v", remap)
	}
	newID := remap[mid]
	if newID == -1 || pruned.Word(newID) != "mid" {
		t.Errorf("mid should survive, remap=%v", remap)
	}
	if pruned.DocFreq(newID) != 2 {
		t.Errorf("pruned DocFreq carried over = %d, want 2", pruned.DocFreq(newID))
	}
}

func TestTopWords(t *testing.T) {
	v := NewVocabulary()
	a, b, c := v.Add("a1"), v.Add("b2"), v.Add("c3")
	v.ObserveDoc([]WordID{a, b, b, c, c, c})
	got := v.TopWords(2)
	want := []string{"c3", "b2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopWords = %v, want %v", got, want)
	}
	if n := len(v.TopWords(10)); n != 3 {
		t.Errorf("TopWords(10) len = %d, want 3", n)
	}
}

// Property: interning is a bijection between distinct strings and IDs.
func TestVocabularyBijectionProperty(t *testing.T) {
	f := func(words []string) bool {
		v := NewVocabulary()
		seen := make(map[string]WordID)
		for _, w := range words {
			id := v.Add(w)
			if prev, ok := seen[w]; ok && prev != id {
				return false
			}
			seen[w] = id
			if v.Word(id) != w {
				return false
			}
		}
		return v.Size() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
