package textproc

import (
	"testing"
	"unicode/utf8"
)

// FuzzTokenize asserts the tokenizer's invariants on arbitrary input: it
// never panics, never returns stop words or empty/oversized tokens, and is
// idempotent under re-tokenization of its own output.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"@asroma win but it's @LFC joining @realmadrid in the #UCL final",
		"128-110 !!! ... ???",
		"ünïcödé wörds über allés",
		"日本語のテキスト mixed with english",
		"a#b@c d'e’f",
		"\x00\xff\xfe broken bytes",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	tok := NewTokenizer()
	stop := defaultStopwords()
	f.Fuzz(func(t *testing.T, input string) {
		tokens := tok.Tokenize(input)
		for _, w := range tokens {
			if w == "" {
				t.Fatal("empty token")
			}
			n := len([]rune(w))
			if n < 2 || n > 32 {
				t.Fatalf("token %q length %d outside [2,32]", w, n)
			}
			if _, bad := stop[w]; bad {
				t.Fatalf("stop word %q returned", w)
			}
			if !utf8.ValidString(w) {
				t.Fatalf("invalid UTF-8 token %q", w)
			}
		}
		// Idempotence: re-tokenizing the joined output returns the same
		// tokens (tokens contain no separators).
		joined := ""
		for i, w := range tokens {
			if i > 0 {
				joined += " "
			}
			joined += w
		}
		again := tok.Tokenize(joined)
		if len(again) != len(tokens) {
			t.Fatalf("not idempotent: %v vs %v", tokens, again)
		}
		for i := range tokens {
			if again[i] != tokens[i] {
				t.Fatalf("not idempotent at %d: %v vs %v", i, tokens, again)
			}
		}
	})
}
