package textproc

import (
	"math"
	"sort"
)

// SparseVec is a sparse vector over word (or topic) dimensions, sorted by
// index. It is the common currency of the TF-IDF and topic-space baselines.
type SparseVec struct {
	Idx []int32
	Val []float64
}

// NewSparseVec builds a normalized-order sparse vector from a map.
func NewSparseVec(m map[int32]float64) SparseVec {
	v := SparseVec{
		Idx: make([]int32, 0, len(m)),
		Val: make([]float64, 0, len(m)),
	}
	for i := range m {
		v.Idx = append(v.Idx, i)
	}
	sort.Slice(v.Idx, func(a, b int) bool { return v.Idx[a] < v.Idx[b] })
	for _, i := range v.Idx {
		v.Val = append(v.Val, m[i])
	}
	return v
}

// Dot returns the inner product of two sparse vectors.
func (v SparseVec) Dot(o SparseVec) float64 {
	var s float64
	i, j := 0, 0
	for i < len(v.Idx) && j < len(o.Idx) {
		switch {
		case v.Idx[i] < o.Idx[j]:
			i++
		case v.Idx[i] > o.Idx[j]:
			j++
		default:
			s += v.Val[i] * o.Val[j]
			i++
			j++
		}
	}
	return s
}

// Norm returns the Euclidean norm.
func (v SparseVec) Norm() float64 {
	var s float64
	for _, x := range v.Val {
		s += x * x
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of two sparse vectors, 0 when either
// is zero.
func (v SparseVec) Cosine(o SparseVec) float64 {
	nv, no := v.Norm(), o.Norm()
	if nv == 0 || no == 0 {
		return 0
	}
	return v.Dot(o) / (nv * no)
}

// NNZ returns the number of stored (non-zero) entries.
func (v SparseVec) NNZ() int { return len(v.Idx) }

// TFIDF vectorizes documents with log-normalized TF-IDF weights
// (1 + log tf) · log(N / df), the scheme the TF-IDF baseline in §5.1 uses.
type TFIDF struct {
	vocab   *Vocabulary
	numDocs int
}

// NewTFIDF builds a vectorizer over a finished corpus snapshot.
func NewTFIDF(vocab *Vocabulary, numDocs int) *TFIDF {
	return &TFIDF{vocab: vocab, numDocs: numDocs}
}

// Vectorize maps a bag-of-words document to its TF-IDF vector. Words with
// zero document frequency (unseen in the corpus snapshot) are skipped.
func (t *TFIDF) Vectorize(d Document) SparseVec {
	v := SparseVec{
		Idx: make([]int32, 0, len(d.Terms)),
		Val: make([]float64, 0, len(d.Terms)),
	}
	for _, tc := range d.Terms {
		df := t.vocab.DocFreq(tc.Word)
		if df == 0 {
			continue
		}
		tf := 1 + math.Log(float64(tc.Count))
		idf := math.Log(float64(t.numDocs) / float64(df))
		if idf <= 0 {
			continue
		}
		v.Idx = append(v.Idx, int32(tc.Word))
		v.Val = append(v.Val, tf*idf)
	}
	return v
}
