package textproc

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewDocument(t *testing.T) {
	d := NewDocument([]WordID{3, 1, 3, 2, 3})
	if d.Len != 5 {
		t.Errorf("Len = %d, want 5", d.Len)
	}
	if d.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", d.Distinct())
	}
	if !sort.SliceIsSorted(d.Terms, func(i, j int) bool { return d.Terms[i].Word < d.Terms[j].Word }) {
		t.Error("terms not sorted")
	}
	if d.Count(3) != 3 || d.Count(1) != 1 || d.Count(9) != 0 {
		t.Errorf("Count wrong: %v", d.Terms)
	}
	if !d.Contains(2) || d.Contains(0) {
		t.Error("Contains wrong")
	}
}

func TestOverlapAndJaccard(t *testing.T) {
	a := NewDocument([]WordID{1, 2, 3})
	b := NewDocument([]WordID{2, 3, 4, 5})
	if got := a.Overlap(b); got != 2 {
		t.Errorf("Overlap = %d, want 2", got)
	}
	if got := a.Jaccard(b); math.Abs(got-2.0/5.0) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.4", got)
	}
	empty := NewDocument(nil)
	if got := empty.Jaccard(empty); got != 0 {
		t.Errorf("Jaccard of empties = %v, want 0", got)
	}
}

// Property: Overlap is symmetric and bounded by min of distinct counts.
func TestOverlapProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		ax := make([]WordID, len(xs))
		for i, x := range xs {
			ax[i] = WordID(x)
		}
		ay := make([]WordID, len(ys))
		for i, y := range ys {
			ay[i] = WordID(y)
		}
		a, b := NewDocument(ax), NewDocument(ay)
		ov := a.Overlap(b)
		if ov != b.Overlap(a) {
			return false
		}
		min := a.Distinct()
		if b.Distinct() < min {
			min = b.Distinct()
		}
		return ov >= 0 && ov <= min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCorpus(t *testing.T) {
	tok := NewTokenizer()
	c := NewCorpus(tok, []string{
		"lebron scores forty points tonight",
		"lebron leads playoffs",
	})
	if len(c.Docs) != 2 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	id, ok := c.Vocab.ID("lebron")
	if !ok {
		t.Fatal("lebron missing from vocab")
	}
	if c.Vocab.DocFreq(id) != 2 {
		t.Errorf("DocFreq(lebron) = %d, want 2", c.Vocab.DocFreq(id))
	}
	if got := c.AvgLen(); math.Abs(got-4.0) > 1e-9 {
		t.Errorf("AvgLen = %v, want 4 (5 and 3 tokens)", got)
	}
}

func TestSparseVecOps(t *testing.T) {
	a := NewSparseVec(map[int32]float64{0: 1, 2: 2, 5: 3})
	b := NewSparseVec(map[int32]float64{2: 4, 5: 1, 7: 9})
	if got := a.Dot(b); got != 2*4+3*1 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := a.Norm(); math.Abs(got-math.Sqrt(14)) > 1e-12 {
		t.Errorf("Norm = %v", got)
	}
	zero := SparseVec{}
	if got := a.Cosine(zero); got != 0 {
		t.Errorf("Cosine with zero = %v, want 0", got)
	}
	if got := a.Cosine(a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self Cosine = %v, want 1", got)
	}
}

// Property: cosine similarity is symmetric and within [-1, 1] (here all
// weights are non-negative, so [0, 1]).
func TestCosineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := randVec(rng)
		b := randVec(rng)
		ab, ba := a.Cosine(b), b.Cosine(a)
		if math.Abs(ab-ba) > 1e-12 {
			t.Fatalf("asymmetric cosine %v vs %v", ab, ba)
		}
		if ab < 0 || ab > 1+1e-12 {
			t.Fatalf("cosine out of range: %v", ab)
		}
	}
}

func randVec(rng *rand.Rand) SparseVec {
	m := make(map[int32]float64)
	n := rng.Intn(8)
	for i := 0; i < n; i++ {
		m[int32(rng.Intn(16))] = rng.Float64()
	}
	return NewSparseVec(m)
}

func TestTFIDF(t *testing.T) {
	tok := NewTokenizer()
	c := NewCorpus(tok, []string{
		"soccer final tonight",
		"soccer champions league",
		"basketball playoffs tonight",
	})
	tf := NewTFIDF(c.Vocab, len(c.Docs))
	v := tf.Vectorize(c.Docs[0])
	// "soccer" df=2 idf=log(3/2); "final" df=1 idf=log3; "tonight" df=2.
	soccer, _ := c.Vocab.ID("soccer")
	final, _ := c.Vocab.ID("final")
	var gotSoccer, gotFinal float64
	for i, idx := range v.Idx {
		if idx == int32(soccer) {
			gotSoccer = v.Val[i]
		}
		if idx == int32(final) {
			gotFinal = v.Val[i]
		}
	}
	if math.Abs(gotSoccer-math.Log(1.5)) > 1e-12 {
		t.Errorf("soccer weight = %v, want %v", gotSoccer, math.Log(1.5))
	}
	if math.Abs(gotFinal-math.Log(3)) > 1e-12 {
		t.Errorf("final weight = %v, want %v", gotFinal, math.Log(3))
	}
}

func TestTFIDFSkipsUbiquitousWords(t *testing.T) {
	tok := NewTokenizer()
	c := NewCorpus(tok, []string{"alpha beta", "alpha gamma"})
	tf := NewTFIDF(c.Vocab, len(c.Docs))
	v := tf.Vectorize(c.Docs[0])
	alpha, _ := c.Vocab.ID("alpha")
	for _, idx := range v.Idx {
		if idx == int32(alpha) {
			t.Error("word in all docs has idf 0 and must be skipped")
		}
	}
}
