package textproc

import (
	"reflect"
	"testing"
)

func TestTokenizeBasic(t *testing.T) {
	tok := NewTokenizer()
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{
			name: "hashtags and mentions survive",
			in:   "@asroma win but it's @LFC joining @realmadrid in the #UCL final",
			want: []string{"@asroma", "win", "@lfc", "joining", "@realmadrid", "#ucl", "final"},
		},
		{
			name: "stop words removed",
			in:   "the quick brown fox is over a lazy dog",
			want: []string{"quick", "brown", "fox", "lazy", "dog"},
		},
		{
			name: "numbers removed",
			in:   "defeats 128-110 and leads the series 2-0",
			want: []string{"defeats", "leads", "series"},
		},
		{
			name: "apostrophes collapsed",
			in:   "LeBron's greatness isn't debatable",
			want: []string{"lebrons", "greatness", "debatable"},
		},
		{
			name: "empty",
			in:   "",
			want: nil,
		},
		{
			name: "punctuation only",
			in:   "!!! ... ???",
			want: nil,
		},
		{
			name: "mixed case folded",
			in:   "NBA Playoffs TONIGHT",
			want: []string{"nba", "playoffs", "tonight"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tok.Tokenize(tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestTokenizeLengthBounds(t *testing.T) {
	tok := NewTokenizer(WithTokenLength(3, 5))
	// "go" and "ab" are too short; "gopher", "golang", "abcdef" too long.
	got := tok.Tokenize("go gopher golang ab abcde abcdef")
	if !reflect.DeepEqual(got, []string{"abcde"}) {
		t.Errorf("Tokenize with bounds = %v, want [abcde]", got)
	}
}

func TestCustomStopwords(t *testing.T) {
	tok := NewTokenizer(WithStopwords([]string{"foo", "BAR"}))
	got := tok.Tokenize("foo bar baz the")
	// Custom list replaces default: "the" is no longer a stop word.
	want := []string{"baz", "the"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestStopwordStripsPrefix(t *testing.T) {
	tok := NewTokenizer()
	if got := tok.Tokenize("#the @is"); got != nil {
		t.Errorf("hashtag/mention stop words should be dropped, got %v", got)
	}
}
