package textproc

import "sort"

// TermCount is one (word, frequency) pair of a bag-of-words document.
type TermCount struct {
	Word  WordID
	Count int32
}

// Document is a bag of words: distinct terms with their in-document
// frequencies γ(w, e), sorted by WordID for deterministic iteration and
// fast merge operations.
type Document struct {
	Terms []TermCount
	Len   int // total token count including repeats
}

// NewDocument builds a Document from a token ID sequence.
func NewDocument(ids []WordID) Document {
	counts := make(map[WordID]int32, len(ids))
	for _, id := range ids {
		counts[id]++
	}
	terms := make([]TermCount, 0, len(counts))
	for id, c := range counts {
		terms = append(terms, TermCount{Word: id, Count: c})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Word < terms[j].Word })
	return Document{Terms: terms, Len: len(ids)}
}

// Distinct returns the number of distinct words |V_e|.
func (d Document) Distinct() int { return len(d.Terms) }

// Count returns γ(w, e), the frequency of w in the document (0 if absent).
func (d Document) Count(w WordID) int32 {
	i := sort.Search(len(d.Terms), func(i int) bool { return d.Terms[i].Word >= w })
	if i < len(d.Terms) && d.Terms[i].Word == w {
		return d.Terms[i].Count
	}
	return 0
}

// Contains reports whether w appears in the document.
func (d Document) Contains(w WordID) bool { return d.Count(w) > 0 }

// Overlap returns the number of distinct words shared by d and o.
// Both term lists are sorted, so this is a linear merge.
func (d Document) Overlap(o Document) int {
	i, j, n := 0, 0, 0
	for i < len(d.Terms) && j < len(o.Terms) {
		switch {
		case d.Terms[i].Word < o.Terms[j].Word:
			i++
		case d.Terms[i].Word > o.Terms[j].Word:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Jaccard returns the Jaccard similarity of the distinct word sets.
func (d Document) Jaccard(o Document) float64 {
	inter := d.Overlap(o)
	union := len(d.Terms) + len(o.Terms) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Corpus is a set of documents sharing one vocabulary.
type Corpus struct {
	Vocab *Vocabulary
	Docs  []Document
}

// NewCorpus tokenizes and interns raw texts into a corpus.
func NewCorpus(tok *Tokenizer, texts []string) *Corpus {
	c := &Corpus{Vocab: NewVocabulary()}
	for _, text := range texts {
		c.AddText(tok, text)
	}
	return c
}

// AddText tokenizes one text, updates vocabulary statistics and appends the
// document. It returns the document index.
func (c *Corpus) AddText(tok *Tokenizer, text string) int {
	tokens := tok.Tokenize(text)
	ids := make([]WordID, len(tokens))
	for i, t := range tokens {
		ids[i] = c.Vocab.Add(t)
	}
	c.Vocab.ObserveDoc(ids)
	c.Docs = append(c.Docs, NewDocument(ids))
	return len(c.Docs) - 1
}

// AvgLen returns the average token count per document.
func (c *Corpus) AvgLen() float64 {
	if len(c.Docs) == 0 {
		return 0
	}
	var total int
	for _, d := range c.Docs {
		total += d.Len
	}
	return float64(total) / float64(len(c.Docs))
}
