package textproc

import (
	"fmt"
	"sort"
)

// WordID indexes a word in a Vocabulary. IDs are dense, starting at 0.
type WordID int32

// Vocabulary maps words to dense integer IDs and tracks corpus statistics
// (total frequency and document frequency) needed for pruning and TF-IDF.
type Vocabulary struct {
	ids   map[string]WordID
	words []string
	freq  []int64 // total occurrences per word
	df    []int64 // number of documents containing the word
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]WordID)}
}

// Add interns the word and returns its ID, creating a new entry on first use.
func (v *Vocabulary) Add(word string) WordID {
	if id, ok := v.ids[word]; ok {
		return id
	}
	id := WordID(len(v.words))
	v.ids[word] = id
	v.words = append(v.words, word)
	v.freq = append(v.freq, 0)
	v.df = append(v.df, 0)
	return id
}

// ID returns the word's ID and whether it is present.
func (v *Vocabulary) ID(word string) (WordID, bool) {
	id, ok := v.ids[word]
	return id, ok
}

// Word returns the string for id. It panics if id is out of range.
func (v *Vocabulary) Word(id WordID) string { return v.words[id] }

// Size returns the number of distinct words.
func (v *Vocabulary) Size() int { return len(v.words) }

// Freq returns the total corpus frequency of id.
func (v *Vocabulary) Freq(id WordID) int64 { return v.freq[id] }

// DocFreq returns the number of documents containing id.
func (v *Vocabulary) DocFreq(id WordID) int64 { return v.df[id] }

// ObserveDoc records one document's tokens into the frequency tables.
// Call it once per document after interning the tokens.
func (v *Vocabulary) ObserveDoc(ids []WordID) {
	seen := make(map[WordID]struct{}, len(ids))
	for _, id := range ids {
		v.freq[id]++
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			v.df[id]++
		}
	}
}

// SetCounts replaces the frequency tables wholesale (used when a vocabulary
// is restored from a serialized model). Both slices must have exactly one
// entry per word; SetCounts panics otherwise, as that indicates a corrupt
// caller-side file already validated upstream.
func (v *Vocabulary) SetCounts(freq, df []int64) {
	if len(freq) != len(v.words) || len(df) != len(v.words) {
		panic(fmt.Sprintf("textproc: SetCounts got %d/%d entries for %d words", len(freq), len(df), len(v.words)))
	}
	v.freq = append(v.freq[:0], freq...)
	v.df = append(v.df[:0], df...)
}

// Prune returns a new vocabulary containing only words with document
// frequency in [minDF, maxDFRatio*numDocs], plus a remap table old→new
// (entries of -1 mark dropped words). This mirrors the paper's preprocessing
// where the raw vocabularies (0.5–3M words) shrink to 68–88K.
func (v *Vocabulary) Prune(numDocs int, minDF int64, maxDFRatio float64) (*Vocabulary, []WordID) {
	maxDF := int64(maxDFRatio * float64(numDocs))
	pruned := NewVocabulary()
	remap := make([]WordID, len(v.words))
	for i := range v.words {
		if v.df[i] >= minDF && v.df[i] <= maxDF {
			id := pruned.Add(v.words[i])
			pruned.freq[id] = v.freq[i]
			pruned.df[id] = v.df[i]
			remap[i] = id
		} else {
			remap[i] = -1
		}
	}
	return pruned, remap
}

// TopWords returns the n most frequent words, useful for diagnostics and for
// the trending-topic queries used in the user study (§5.2).
func (v *Vocabulary) TopWords(n int) []string {
	idx := make([]int, len(v.words))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if v.freq[idx[a]] != v.freq[idx[b]] {
			return v.freq[idx[a]] > v.freq[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = v.words[idx[i]]
	}
	return out
}

// String implements fmt.Stringer with a short summary.
func (v *Vocabulary) String() string {
	return fmt.Sprintf("Vocabulary(%d words)", len(v.words))
}
