package judge

import (
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

func setup(t *testing.T) (*stream.ActiveWindow, []*stream.Element, map[stream.ElemID]*stream.Element) {
	t.Helper()
	win, elems := papertest.Window()
	var actives []*stream.Element
	byID := make(map[stream.ElemID]*stream.Element)
	for _, e := range elems {
		if _, ok := win.Get(e.ID); ok {
			actives = append(actives, e)
			byID[e.ID] = e
		}
	}
	return win, actives, byID
}

func TestJudgeQueryRanksClearWinner(t *testing.T) {
	win, actives, byID := setup(t)
	x := papertest.QueryUniform()
	sets := []ResultSet{
		{Method: "good", Elements: []*stream.Element{byID[1], byID[3]}}, // optimum: covers both topics, referenced
		{Method: "bad", Elements: []*stream.Element{byID[7]}},           // tiny, unreferenced
	}
	p := NewPanel(3, 0.01, 1) // near-noiseless judges
	repr, impact := p.JudgeQuery(win, actives, sets, x)
	if len(repr) != 3 || len(impact) != 3 {
		t.Fatalf("judge counts: %d, %d", len(repr), len(impact))
	}
	for j := 0; j < 3; j++ {
		if repr[j][0] <= repr[j][1] {
			t.Errorf("judge %d ranked bad set as more representative: %v", j, repr[j])
		}
		if impact[j][0] <= impact[j][1] {
			t.Errorf("judge %d ranked bad set as higher impact: %v", j, impact[j])
		}
	}
}

func TestRunStudyAggregates(t *testing.T) {
	win, actives, byID := setup(t)
	queries := []topicmodel.TopicVec{papertest.QueryUniform(), papertest.QueryUniform()}
	sets := [][]ResultSet{
		{
			{Method: "ksir", Elements: []*stream.Element{byID[1], byID[3]}},
			{Method: "rel", Elements: []*stream.Element{byID[7]}},
		},
		{
			{Method: "ksir", Elements: []*stream.Element{byID[1], byID[3]}},
			{Method: "rel", Elements: []*stream.Element{byID[5]}},
		},
	}
	p := NewPanel(3, 0.01, 2)
	res, err := p.RunStudy(win, actives, queries, sets)
	if err != nil {
		t.Fatal(err)
	}
	ks, ok := res.PerMethod["ksir"]
	if !ok {
		t.Fatal("ksir missing from results")
	}
	rl := res.PerMethod["rel"]
	if ks.Representativeness <= rl.Representativeness {
		t.Errorf("ksir repr %.2f should beat rel %.2f", ks.Representativeness, rl.Representativeness)
	}
	if ks.Impact <= rl.Impact {
		t.Errorf("ksir impact %.2f should beat rel %.2f", ks.Impact, rl.Impact)
	}
	// Scores live on the 1..n_methods scale (2 methods → [1,2]).
	for m, s := range res.PerMethod {
		if s.Representativeness < 1 || s.Representativeness > 2 {
			t.Errorf("%s repr score %v out of scale", m, s.Representativeness)
		}
	}
	// Low noise → strong agreement.
	if res.KappaRepresent < 0.5 {
		t.Errorf("kappa(repr) = %v, want strong agreement", res.KappaRepresent)
	}
}

func TestRunStudyEmpty(t *testing.T) {
	win, actives, _ := setup(t)
	p := NewPanel(3, 0.1, 3)
	res, err := p.RunStudy(win, actives, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerMethod) != 0 {
		t.Errorf("empty study produced %v", res.PerMethod)
	}
}

func TestPanelMinimumJudges(t *testing.T) {
	p := NewPanel(0, 0.1, 4)
	if p.judgesPerQuery < 2 {
		t.Error("panel must have at least 2 judges for kappa")
	}
}
