// Package judge simulates the user study of §5.2 (Table 5).
//
// The paper recruits 30 volunteers; for each query, 3 evaluators rank the
// five methods' result sets on two aspects — representativeness (relevance
// + information coverage) and impact (citations/retweets of the selected
// elements) — and ranks map to scores 1..5. That protocol is reproduced
// here with programmatic evaluators: each judge scores a result set from
// the same observable signals a human would see (topical relevance,
// coverage of the query topic, reference counts), perturbed with
// judge-specific noise, then ranks the methods. Cohen's linearly weighted
// kappa measures inter-judge agreement exactly as the paper reports.
// DESIGN.md §3 records this substitution.
package judge

import (
	"math/rand"
	"sort"

	"github.com/social-streams/ksir/internal/evalmetrics"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// ResultSet is one method's answer to one query.
type ResultSet struct {
	Method   string
	Elements []*stream.Element
}

// Scores holds a method's averaged 1–5 scores over a study.
type Scores struct {
	Representativeness float64
	Impact             float64
}

// StudyResult is the outcome of a simulated user study on one dataset.
type StudyResult struct {
	PerMethod map[string]Scores
	// KappaRepresent and KappaImpact are the mean pairwise inter-judge
	// agreements (the paper reports 0.72 and 0.79 on average).
	KappaRepresent float64
	KappaImpact    float64
}

// Panel is a pool of simulated evaluators.
type Panel struct {
	judgesPerQuery int
	noise          float64
	rng            *rand.Rand
}

// NewPanel creates a judging panel. judgesPerQuery follows the paper (3);
// noise is the standard deviation of judge-specific scoring perturbation
// relative to the signal range (0.1 reproduces kappa ≈ 0.7–0.8).
func NewPanel(judgesPerQuery int, noise float64, seed int64) *Panel {
	if judgesPerQuery < 2 {
		judgesPerQuery = 3
	}
	return &Panel{
		judgesPerQuery: judgesPerQuery,
		noise:          noise,
		rng:            rand.New(rand.NewSource(seed)),
	}
}

// representSignal is the observable representativeness of a result set: a
// blend of mean query relevance and information coverage of the active set.
func representSignal(win *stream.ActiveWindow, actives []*stream.Element,
	rs ResultSet, x topicmodel.TopicVec) float64 {
	if len(rs.Elements) == 0 {
		return 0
	}
	var rel float64
	for _, e := range rs.Elements {
		rel += e.Topics.Cosine(x)
	}
	rel /= float64(len(rs.Elements))
	cov := evalmetrics.Coverage(actives, rs.Elements, x, evalmetrics.TopicSim)
	// Coverage dominates: it already weights every element by its query
	// relevance, matching the paper's definition of representativeness
	// ("relevance to query topic AND information coverage ... of its
	// entirety"). The small direct-relevance term penalizes result sets
	// that pad with off-topic elements (the complaint §5.2 records against
	// DIV and Sumblr).
	return 0.2*rel + 0.8*cov
}

// impactSignal is the observable impact: the in-window reference mass of
// the result set (what a human sees as retweet/citation counts).
func impactSignal(win *stream.ActiveWindow, rs ResultSet) float64 {
	var refs int
	for _, e := range rs.Elements {
		refs += win.NumChildren(e.ID)
	}
	return float64(refs)
}

// JudgeQuery has the panel's judges rank the methods' result sets for one
// query. It returns, per judge, the 1–5 score assigned to each method on
// each aspect (method order follows the input slice).
func (p *Panel) JudgeQuery(win *stream.ActiveWindow, actives []*stream.Element,
	sets []ResultSet, x topicmodel.TopicVec) (repr, impact [][]int) {
	nm := len(sets)
	baseR := make([]float64, nm)
	baseI := make([]float64, nm)
	var maxI float64
	for i, rs := range sets {
		baseR[i] = representSignal(win, actives, rs, x)
		baseI[i] = impactSignal(win, rs)
		if baseI[i] > maxI {
			maxI = baseI[i]
		}
	}
	if maxI > 0 {
		for i := range baseI {
			baseI[i] /= maxI
		}
	}
	for j := 0; j < p.judgesPerQuery; j++ {
		repr = append(repr, p.rankToScores(perturb(p.rng, baseR, p.noise)))
		impact = append(impact, p.rankToScores(perturb(p.rng, baseI, p.noise)))
	}
	return repr, impact
}

// rankToScores converts judge-perceived signals into 1..n ranking scores
// (best = n, as the paper maps "most representative" to 5 with 5 methods).
func (p *Panel) rankToScores(signal []float64) []int {
	n := len(signal)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return signal[idx[a]] < signal[idx[b]] })
	scores := make([]int, n)
	for rank, i := range idx {
		scores[i] = rank + 1
	}
	return scores
}

func perturb(rng *rand.Rand, base []float64, noise float64) []float64 {
	out := make([]float64, len(base))
	for i, b := range base {
		out[i] = b + rng.NormFloat64()*noise
	}
	return out
}

// RunStudy judges a whole workload: for each query, sets[q] holds one
// ResultSet per method (same method order across queries). It returns the
// averaged per-method scores and the mean inter-judge kappas.
func (p *Panel) RunStudy(win *stream.ActiveWindow, actives []*stream.Element,
	queries []topicmodel.TopicVec, sets [][]ResultSet) (StudyResult, error) {
	res := StudyResult{PerMethod: make(map[string]Scores)}
	if len(queries) == 0 || len(sets) == 0 {
		return res, nil
	}
	nm := len(sets[0])
	sumR := make([]float64, nm)
	sumI := make([]float64, nm)
	var count int
	var kappaRSum, kappaISum float64
	var kappaN int
	for q, x := range queries {
		repr, impact := p.JudgeQuery(win, actives, sets[q], x)
		for _, js := range repr {
			for i, s := range js {
				sumR[i] += float64(s)
			}
		}
		for _, js := range impact {
			for i, s := range js {
				sumI[i] += float64(s)
			}
		}
		count += len(repr)
		if kr, err := evalmetrics.MeanPairwiseKappa(repr, nm); err == nil {
			kappaRSum += kr
			kappaN++
		}
		if ki, err := evalmetrics.MeanPairwiseKappa(impact, nm); err == nil {
			kappaISum += ki
		}
	}
	for i, rs := range sets[0] {
		res.PerMethod[rs.Method] = Scores{
			Representativeness: sumR[i] / float64(count),
			Impact:             sumI[i] / float64(count),
		}
	}
	if kappaN > 0 {
		res.KappaRepresent = kappaRSum / float64(kappaN)
		res.KappaImpact = kappaISum / float64(kappaN)
	}
	return res, nil
}
