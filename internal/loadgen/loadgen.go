// Package loadgen is an open-loop load generator: operations are
// dispatched on a precomputed arrival schedule, never gated on the
// completion of earlier operations, and latency is measured from each
// operation's *scheduled* send time. A closed-loop harness (send, await,
// send) silently stretches its arrival process whenever the system stalls
// — the coordinated-omission trap — so its percentiles miss exactly the
// intervals that matter. Here a stall leaves the schedule untouched:
// every operation scheduled during it observes the queueing delay, and
// the percentiles include it.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Shape selects the arrival process.
type Shape int

const (
	// Poisson arrivals: exponential inter-arrival times with mean 1/rate —
	// the memoryless baseline for independent producers.
	Poisson Shape = iota
	// Bursty arrivals: on/off bursts — runs of closely spaced arrivals
	// (10× the nominal rate inside a burst) separated by idle gaps sized
	// to preserve the overall mean rate. Stresses queueing and group
	// commit far harder than Poisson at the same average load.
	Bursty
	// Uniform arrivals: a fixed gap of exactly 1/rate — the easiest shape,
	// useful as a debugging floor.
	Uniform
)

func (s Shape) String() string {
	switch s {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Uniform:
		return "uniform"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// ParseShape maps "poisson", "bursty" or "uniform" to a Shape.
func ParseShape(s string) (Shape, error) {
	switch strings.ToLower(s) {
	case "poisson":
		return Poisson, nil
	case "bursty":
		return Bursty, nil
	case "uniform":
		return Uniform, nil
	}
	return 0, fmt.Errorf("loadgen: unknown arrival shape %q (want poisson, bursty or uniform)", s)
}

// Bursty-shape constants: bursts average burstMean arrivals at burstSpeed×
// the nominal rate, with exponentially distributed idle gaps sized so the
// long-run mean rate is preserved.
const (
	burstMean  = 16
	burstSpeed = 10.0
)

// Offsets precomputes a deterministic arrival schedule: n offsets from
// the run's start, non-decreasing, with mean rate `rate` per second.
// Precomputing (rather than drawing inter-arrivals live) is what makes
// the schedule immune to back-pressure: dispatch can fall behind, the
// schedule never moves.
func Offsets(shape Shape, n int, rate float64, seed int64) []time.Duration {
	if n <= 0 || rate <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	offs := make([]time.Duration, n)
	var at float64 // seconds
	switch shape {
	case Uniform:
		for i := range offs {
			offs[i] = time.Duration(float64(i) / rate * float64(time.Second))
		}
	case Poisson:
		for i := range offs {
			at += rng.ExpFloat64() / rate
			offs[i] = time.Duration(at * float64(time.Second))
		}
	case Bursty:
		inBurst := 0
		burstLen := 1 + rng.Intn(2*burstMean-1) // mean ≈ burstMean
		for i := range offs {
			if inBurst >= burstLen {
				// Idle gap: the burst of burstLen arrivals used
				// burstLen/(burstSpeed·rate) seconds; the gap restores the
				// long-run mean to `rate`.
				mean := float64(burstLen) / rate * (1 - 1/burstSpeed)
				at += rng.ExpFloat64() * mean
				inBurst = 0
				burstLen = 1 + rng.Intn(2*burstMean-1)
			}
			at += rng.ExpFloat64() / (burstSpeed * rate)
			offs[i] = time.Duration(at * float64(time.Second))
			inBurst++
		}
	}
	return offs
}

// Op is one operation: i is its schedule index. Errors are counted, not
// retried — an open-loop generator never converts failures into rate
// reduction.
type Op func(ctx context.Context, i int) error

// Result is one run's measurements.
type Result struct {
	// Latency[k] is completion time minus *scheduled* send time for the
	// k-th dispatched op — queueing delay included, coordinated-omission
	// free.
	Latency []time.Duration
	// Service[k] is completion minus actual send: what a closed-loop
	// harness would have reported. The gap between the two distributions
	// is the omission a closed loop hides.
	Service []time.Duration
	// Errors counts failed ops.
	Errors int64
	// Elapsed is dispatch start to last completion.
	Elapsed time.Duration
	// MaxLag is the worst dispatch lag behind schedule (scheduler + op
	// spawn overhead; large values mean the generator itself saturated).
	MaxLag time.Duration
}

// Run dispatches one op per schedule offset and waits for all of them.
// A single dispatcher goroutine sleeps to each offset and spawns the op;
// if it falls behind, it dispatches immediately but never re-anchors the
// schedule. Cancelling ctx stops dispatch; already-started ops finish
// (they receive the same ctx) and the Result covers the dispatched
// prefix.
func Run(ctx context.Context, offsets []time.Duration, op Op) Result {
	res := Result{
		Latency: make([]time.Duration, len(offsets)),
		Service: make([]time.Duration, len(offsets)),
	}
	var errs atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	dispatched := 0
	for i, off := range offsets {
		sched := t0.Add(off)
		if d := time.Until(sched); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-ctx.Done():
				timer.Stop()
			case <-timer.C:
			}
		}
		if ctx.Err() != nil {
			break
		}
		if lag := time.Since(sched); lag > res.MaxLag {
			res.MaxLag = lag
		}
		dispatched++
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			start := time.Now()
			err := op(ctx, i)
			end := time.Now()
			res.Latency[i] = end.Sub(sched)
			res.Service[i] = end.Sub(start)
			if err != nil {
				errs.Add(1)
			}
		}(i, sched)
	}
	wg.Wait()
	res.Latency = res.Latency[:dispatched]
	res.Service = res.Service[:dispatched]
	res.Errors = errs.Load()
	res.Elapsed = time.Since(t0)
	return res
}

// Percentile returns the p-th percentile (0–100) of durs, interpolation-
// free (nearest-rank on a sorted copy). Zero for an empty slice.
func Percentile(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), durs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	i := int(p / 100 * float64(len(cp)-1))
	return cp[i]
}

// Mean returns the arithmetic mean of durs (zero for an empty slice).
func Mean(durs []time.Duration) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	return sum / time.Duration(len(durs))
}
