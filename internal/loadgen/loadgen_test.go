package loadgen

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestParseShape(t *testing.T) {
	for in, want := range map[string]Shape{"poisson": Poisson, "Bursty": Bursty, "UNIFORM": Uniform} {
		got, err := ParseShape(in)
		if err != nil || got != want {
			t.Errorf("ParseShape(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseShape("sawtooth"); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestOffsetsDeterministicOrderedAndRated(t *testing.T) {
	const n, rate = 5000, 2000.0
	for _, shape := range []Shape{Poisson, Bursty, Uniform} {
		a := Offsets(shape, n, rate, 42)
		b := Offsets(shape, n, rate, 42)
		if len(a) != n {
			t.Fatalf("%v: len = %d", shape, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: schedule not deterministic at %d", shape, i)
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%v: offsets decrease at %d: %v < %v", shape, i, a[i], a[i-1])
			}
		}
		// Realized mean rate within 15% of target over 5000 arrivals.
		got := float64(n-1) / a[n-1].Seconds()
		if got < rate*0.85 || got > rate*1.15 {
			t.Errorf("%v: realized rate %.0f/s, want ~%.0f/s", shape, got, rate)
		}
	}
	if Offsets(Poisson, 100, rate, 1)[99] == Offsets(Poisson, 100, rate, 2)[99] {
		t.Error("different seeds produced identical schedules")
	}
}

func TestBurstyIsBurstier(t *testing.T) {
	const n, rate = 4000, 1000.0
	shortGaps := func(offs []time.Duration) int {
		// Inter-arrivals under a tenth of the nominal 1/rate gap.
		cut := time.Duration(float64(time.Second) / rate / 10)
		k := 0
		for i := 1; i < len(offs); i++ {
			if offs[i]-offs[i-1] < cut {
				k++
			}
		}
		return k
	}
	p := shortGaps(Offsets(Poisson, n, rate, 7))
	b := shortGaps(Offsets(Bursty, n, rate, 7))
	if b < 2*p {
		t.Errorf("bursty short gaps = %d, poisson = %d; bursty should cluster far more", b, p)
	}
}

// stalledSink models a server that serializes requests and stalls once
// for the given duration on its first request.
func stalledSink(stall time.Duration) func() {
	var mu sync.Mutex
	first := true
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if first {
			first = false
			time.Sleep(stall)
		}
	}
}

// TestStalledSinkShowsUpInPercentiles is the coordinated-omission
// regression guard: against a server that stalls once, the open-loop
// (from-scheduled) percentiles must carry the stall for every op
// scheduled during it, while a closed-loop send-await harness over the
// *same* server hides it — the stall stretches its arrival process, so
// only the single stalled op measures slow and the percentiles look
// healthy. If Run ever re-anchors its schedule when behind, the open-loop
// columns collapse to the closed-loop ones and this test fails.
func TestStalledSinkShowsUpInPercentiles(t *testing.T) {
	const n = 200
	const gap = time.Millisecond
	const stall = 300 * time.Millisecond
	offsets := make([]time.Duration, n)
	for i := range offsets {
		offsets[i] = time.Duration(i) * gap // 200ms of uniform schedule
	}

	sink := stalledSink(stall)
	res := Run(context.Background(), offsets, func(ctx context.Context, i int) error {
		sink()
		return nil
	})
	if len(res.Latency) != n || res.Errors != 0 {
		t.Fatalf("dispatched %d errors %d", len(res.Latency), res.Errors)
	}
	// Most of the schedule lands inside the stall, so even the median
	// carries queueing delay and the tail approaches the full stall.
	if p50 := Percentile(res.Latency, 50); p50 < 20*time.Millisecond {
		t.Errorf("open-loop p50 = %v: stall-induced queueing missing (coordinated omission)", p50)
	}
	if p99 := Percentile(res.Latency, 99); p99 < 100*time.Millisecond {
		t.Errorf("open-loop p99 = %v, want ≥ 100ms of stall visible", p99)
	}

	// The closed-loop comparator: send, await, sleep the gap. Same
	// server, same stall — but only op 0 measures slow, so p99 over the
	// remaining 199 stays small. This is the measurement error the
	// open-loop harness exists to avoid.
	sink = stalledSink(stall)
	closed := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		sink()
		closed = append(closed, time.Since(start))
		time.Sleep(gap)
	}
	if p99 := Percentile(closed, 99); p99 > 100*time.Millisecond {
		t.Errorf("closed-loop p99 = %v: comparator unexpectedly saw the stall", p99)
	}
}

func TestRunHonorsCancel(t *testing.T) {
	offsets := make([]time.Duration, 1000)
	for i := range offsets {
		offsets[i] = time.Duration(i) * 10 * time.Millisecond // 10s schedule
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := Run(ctx, offsets, func(ctx context.Context, i int) error { return nil })
	if time.Since(start) > 2*time.Second {
		t.Fatal("Run did not stop promptly on cancel")
	}
	if len(res.Latency) == 0 || len(res.Latency) >= 1000 {
		t.Errorf("dispatched = %d, want a strict prefix", len(res.Latency))
	}
}

func TestPercentileAndMean(t *testing.T) {
	durs := []time.Duration{4, 1, 3, 2, 5}
	if p := Percentile(durs, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(durs, 50); p != 3 {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(durs, 100); p != 5 {
		t.Errorf("p100 = %v", p)
	}
	if m := Mean(durs); m != 3 {
		t.Errorf("mean = %v", m)
	}
	if Percentile(nil, 50) != 0 || Mean(nil) != 0 {
		t.Error("empty slices must yield zero")
	}
}
