package rankedlist

import "github.com/social-streams/ksir/internal/stream"

// OpKind classifies one recorded ranked-list mutation.
type OpKind uint8

const (
	// OpInsert adds a tuple for an ID the list did not contain.
	OpInsert OpKind = iota
	// OpRescore repositions an existing tuple whose score changed.
	OpRescore
	// OpTouch updates LastRef on an existing tuple whose score (and
	// therefore position) is unchanged.
	OpTouch
	// OpDelete removes the tuple for Item.ID (the other Item fields are
	// not meaningful).
	OpDelete
)

// hintLevels is how many skip-list levels an Op records predecessor hints
// for. Node levels are geometric (p=1/2), so 3 levels cover 87.5% of
// nodes with O(1) replay splices; taller nodes fall back to the normal
// O(log n) descent.
const hintLevels = 3

// posHint records where an op happened: the IDs of the node's
// predecessors at levels 0..level-1 when level ≤ hintLevels (head bit set
// when the predecessor is the list head). A replica that is
// tuple-identical to the recording list at replay time has the same
// neighborhood, so ApplyDelta can splice without searching; every hint is
// verified against the local list first and falls back to a full descent
// if it does not hold.
type posHint struct {
	prevs [hintLevels]stream.ElemID
	heads uint8 // bit lv set ⇒ level-lv predecessor is the head
	ok    bool  // node level ≤ hintLevels and hints recorded
}

// Op is one recorded ranked-list mutation: the structural outcome of an
// Upsert or Delete — final tuple, op kind and position hints — sufficient
// to replay the same mutation onto a replica list without recomputing the
// score that produced it.
type Op struct {
	Kind OpKind
	Item Item
	// at is the position of the affected node: the insert position for
	// OpInsert/OpRescore, the removed node's position for OpDelete.
	at posHint
	// from is the removed (old) position of an OpRescore.
	from posHint
}

// hintOf packs the predecessors findPredecessors filled for a node of
// level lvl.
func (l *List) hintOf(pred *[maxLevel]*node, lvl int) posHint {
	if lvl > hintLevels {
		return posHint{}
	}
	h := posHint{ok: true}
	for lv := 0; lv < lvl; lv++ {
		p := pred[lv]
		if p == nil || p == l.head {
			h.heads |= 1 << lv
			continue
		}
		h.prevs[lv] = p.item.ID
	}
	return h
}

// resolve maps a hint back to predecessor nodes on this list, verifying
// that each predecessor still exists, reaches the level, and brackets
// item there. It reports ok=false when anything fails, in which case the
// caller must fall back to a full descent (and must not have mutated).
func (l *List) resolve(h posHint, lvl int, item Item, preds *[hintLevels]*node) bool {
	if !h.ok {
		return false
	}
	for lv := 0; lv < lvl; lv++ {
		var p *node
		if h.heads&(1<<lv) != 0 {
			p = l.head
		} else if p = l.index[h.prevs[lv]]; p == nil || !less(p.item, item) {
			return false
		}
		if len(p.next) <= lv {
			return false
		}
		preds[lv] = p
	}
	return true
}

// UpsertRecorded is Upsert returning the structural Op it performed, for
// replay onto a replica via ApplyDelta.
func (l *List) UpsertRecorded(id stream.ElemID, score float64, lastRef stream.Time) Op {
	l.detach()
	item := Item{ID: id, Score: score, LastRef: lastRef}
	if n, ok := l.index[id]; ok {
		if n.item.Score == score {
			n.item.LastRef = lastRef // position unchanged
			return Op{Kind: OpTouch, Item: item}
		}
		op := Op{Kind: OpRescore, Item: item}
		var pred [maxLevel]*node
		l.findPredecessors(n.item, &pred)
		op.from = l.hintOf(&pred, len(n.next))
		l.unlink(n, &pred)
		op.at = l.insert(item)
		return op
	}
	return Op{Kind: OpInsert, Item: item, at: l.insert(item)}
}

// DeleteRecorded is Delete returning the structural Op it performed; ok
// reports whether the tuple was present.
func (l *List) DeleteRecorded(id stream.ElemID) (Op, bool) {
	l.detach()
	n, ok := l.index[id]
	if !ok {
		return Op{}, false
	}
	var pred [maxLevel]*node
	l.findPredecessors(n.item, &pred)
	op := Op{Kind: OpDelete, Item: Item{ID: id}, at: l.hintOf(&pred, len(n.next))}
	l.unlink(n, &pred)
	return op, true
}

// ApplyDelta replays recorded ops, in order, onto this list. When the
// list's tuples are identical to the recording list's at each op (the
// engine's delta-replay contract: the replica is one bucket behind and
// replays that bucket's full op sequence), the result is tuple-identical
// to the recording list — scores are spliced verbatim, never recomputed.
//
// Fast paths: OpTouch is O(1) (index lookup); an insert, delete or
// rescore of a node no taller than hintLevels splices in O(1) at the
// recorded predecessors. Everything else — and any op whose hint fails
// verification — takes the normal O(log n) skip-list path.
func (l *List) ApplyDelta(ops []Op) {
	if len(ops) == 0 {
		return
	}
	l.detach()
	for i := range ops {
		l.applyOp(&ops[i])
	}
}

// Apply replays one recorded op (see ApplyDelta). The op is read, never
// retained.
func (l *List) Apply(op *Op) {
	l.detach()
	l.applyOp(op)
}

func (l *List) applyOp(op *Op) {
	switch op.Kind {
	case OpTouch:
		if n, ok := l.index[op.Item.ID]; ok && n.item.Score == op.Item.Score {
			n.item.LastRef = op.Item.LastRef
			return
		}
		l.Upsert(op.Item.ID, op.Item.Score, op.Item.LastRef)
	case OpInsert:
		// No duplicate pre-check: under the replay contract the ID is
		// absent (the recording list inserted it), and an identical stray
		// tuple cannot pass the splice's bracket verification.
		if l.spliceHinted(op.Item, op.at) {
			return
		}
		l.Upsert(op.Item.ID, op.Item.Score, op.Item.LastRef)
	case OpRescore:
		if n, ok := l.index[op.Item.ID]; ok && l.unlinkHinted(n, op.from) {
			if l.spliceHinted(op.Item, op.at) {
				return
			}
			l.insert(op.Item) // unlinked already; finish with a descent
			return
		}
		l.Upsert(op.Item.ID, op.Item.Score, op.Item.LastRef)
	case OpDelete:
		if n, ok := l.index[op.Item.ID]; ok {
			if l.unlinkHinted(n, op.at) {
				return
			}
			l.remove(n)
		}
	}
}

// spliceHinted inserts a fresh node for item at the recorded
// predecessors, reporting whether the O(1) splice happened. It verifies
// the full neighborhood before mutating anything.
func (l *List) spliceHinted(item Item, h posHint) bool {
	lvl := nodeLevel(item.ID)
	if lvl > hintLevels {
		return false
	}
	var preds [hintLevels]*node
	if !l.resolve(h, lvl, item, &preds) {
		return false
	}
	for lv := 0; lv < lvl; lv++ {
		if nxt := preds[lv].next[lv]; nxt != nil && !less(item, nxt.item) {
			return false
		}
	}
	n := newNode(item, lvl)
	for lv := 0; lv < lvl; lv++ {
		n.next[lv] = preds[lv].next[lv]
		preds[lv].next[lv] = n
	}
	if lvl > l.level {
		l.level = lvl
	}
	l.index[item.ID] = n
	l.size++
	return true
}

// unlinkHinted splices n out at the recorded predecessors, reporting
// whether the O(1) unlink happened. It verifies every level points at n
// before mutating anything.
func (l *List) unlinkHinted(n *node, h posHint) bool {
	lvl := len(n.next)
	if lvl > hintLevels {
		return false
	}
	var preds [hintLevels]*node
	if !l.resolve(h, lvl, n.item, &preds) {
		return false
	}
	for lv := 0; lv < lvl; lv++ {
		if preds[lv].next[lv] != n {
			return false
		}
	}
	for lv := 0; lv < lvl; lv++ {
		preds[lv].next[lv] = n.next[lv]
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	delete(l.index, n.item.ID)
	l.size--
	return true
}
