// Package rankedlist implements the per-topic ranked lists RL_1..RL_z of
// §4.1: ordered collections of ⟨δ_i(e), t_e⟩ tuples sorted by topic-wise
// representativeness score in descending order, with O(log n) insert,
// reposition and delete keyed by element ID.
//
// The ordered structure is a skip list with levels derived deterministically
// from the element ID, so runs are reproducible without a seed and the
// expected O(log n) bounds still hold for adversarial insert orders.
//
// Two mechanisms serve the engine's double-buffered concurrency
// architecture (DESIGN.md §6, §9):
//
//   - Freeze publishes an O(1) immutable Snapshot sharing the list's
//     nodes; a mutation while the snapshot is still shared detaches the
//     list copy-on-write, and Thaw re-enables in-place mutation once the
//     engine's readers have drained.
//   - UpsertRecorded/DeleteRecorded return the structural Op each
//     mutation performed — final tuple, kind, per-level position hints —
//     and ApplyDelta replays such ops onto a replica list, splicing
//     recorded tuples verbatim (O(1) for the common short nodes) instead
//     of recomputing scores.
package rankedlist

import (
	"math/bits"

	"github.com/social-streams/ksir/internal/stream"
)

// Item is one ranked-list tuple ⟨δ_i(e), t_e⟩ plus the element ID it belongs
// to.
type Item struct {
	ID      stream.ElemID
	Score   float64     // δ_i(e), the topic-wise representativeness score
	LastRef stream.Time // t_e, the time the element was last referred to
}

// less reports whether a precedes b in ranked order: higher score first,
// ties broken by smaller ID for determinism.
func less(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

const maxLevel = 24

type node struct {
	item Item
	next []*node // length = node level; index 0 is the full linked list
	// inline backs next for the common short nodes (p=1/2 geometric
	// levels: 75% are ≤ 2), making such nodes a single allocation.
	inline [2]*node
}

// newNode allocates a node of the given level, using the inline array
// when it fits.
func newNode(item Item, lvl int) *node {
	n := &node{item: item}
	if lvl <= len(n.inline) {
		n.next = n.inline[:lvl:lvl]
	} else {
		n.next = make([]*node, lvl)
	}
	return n
}

// List is one ranked list RL_i.
//
// A list can be frozen into an immutable Snapshot (see Freeze) that shares
// its nodes. Mutating a list whose last snapshot has not been released with
// Thaw detaches the list first (copy-on-write), so snapshots stay valid at
// the cost of one O(n) clone; the engine's buffer recycling always thaws
// after readers drain, keeping every update O(log n).
type List struct {
	head  *node
	index map[stream.ElemID]*node
	level int // highest level in use
	size  int
	// shared is true while the current nodes back a live Snapshot; the
	// next mutation must detach (clone) before touching them.
	shared bool
}

// New returns an empty ranked list.
func New() *List {
	return &List{
		head:  &node{next: make([]*node, maxLevel)},
		index: make(map[stream.ElemID]*node),
		level: 1,
	}
}

// Len returns the number of tuples.
func (l *List) Len() int { return l.size }

// nodeLevel derives a deterministic level in [1, maxLevel] from the element
// ID via a splitmix64 hash: level = 1 + trailing zeros of the hash, the
// usual p=1/2 geometric distribution.
func nodeLevel(id stream.ElemID) int {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	lvl := 1 + bits.TrailingZeros64(x|1<<(maxLevel-1))
	if lvl > maxLevel {
		lvl = maxLevel
	}
	return lvl
}

// findPredecessors fills pred with, per level, the last node whose item
// precedes target.
func (l *List) findPredecessors(target Item, pred *[maxLevel]*node) {
	x := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for x.next[lv] != nil && less(x.next[lv].item, target) {
			x = x.next[lv]
		}
		pred[lv] = x
	}
}

// Upsert inserts the tuple for id or repositions it if already present
// (Algorithm 1 lines 7 and 11).
func (l *List) Upsert(id stream.ElemID, score float64, lastRef stream.Time) {
	l.detach()
	if n, ok := l.index[id]; ok {
		if n.item.Score == score {
			n.item.LastRef = lastRef // position unchanged
			return
		}
		l.remove(n)
	}
	l.insert(Item{ID: id, Score: score, LastRef: lastRef})
}

// insert splices a fresh tuple (id not present) into the list. It returns
// the node's position hint (predecessor IDs per level, when the node is
// short enough to hint), which the delta recorder stores for replay.
func (l *List) insert(item Item) posHint {
	lvl := nodeLevel(item.ID)
	if lvl > l.level {
		l.level = lvl
	}
	var pred [maxLevel]*node
	l.findPredecessors(item, &pred)
	n := newNode(item, lvl)
	for lv := 0; lv < lvl; lv++ {
		p := pred[lv]
		if p == nil {
			p = l.head
		}
		n.next[lv] = p.next[lv]
		p.next[lv] = n
	}
	l.index[item.ID] = n
	l.size++
	return l.hintOf(&pred, lvl)
}

// Delete removes the tuple for id, reporting whether it was present
// (Algorithm 1 line 13).
func (l *List) Delete(id stream.ElemID) bool {
	l.detach()
	n, ok := l.index[id]
	if !ok {
		return false
	}
	l.remove(n)
	return true
}

func (l *List) remove(n *node) {
	var pred [maxLevel]*node
	l.findPredecessors(n.item, &pred)
	l.unlink(n, &pred)
}

// unlink splices n out given its predecessors (as filled by
// findPredecessors on n.item).
func (l *List) unlink(n *node, pred *[maxLevel]*node) {
	for lv := 0; lv < len(n.next); lv++ {
		p := pred[lv]
		if p == nil {
			p = l.head
		}
		if p.next[lv] == n {
			p.next[lv] = n.next[lv]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	delete(l.index, n.item.ID)
	l.size--
}

// Get returns the current tuple for id.
func (l *List) Get(id stream.ElemID) (Item, bool) {
	n, ok := l.index[id]
	if !ok {
		return Item{}, false
	}
	return n.item, true
}

// First returns the highest-scored tuple (the RL_i.first operation of §4.1).
func (l *List) First() (Item, bool) {
	n := l.head.next[0]
	if n == nil {
		return Item{}, false
	}
	return n.item, true
}

// Iterator walks the list in ranked (descending score) order. The list must
// not be mutated while an iterator is live; the query engine guarantees this
// by iterating only over frozen Snapshots, whose nodes mutations never
// touch.
type Iterator struct {
	cur *node
}

// Iter returns an iterator positioned before the first tuple.
func (l *List) Iter() *Iterator { return &Iterator{cur: l.head} }

// Next advances and returns the next tuple (the RL_i.next operation).
func (it *Iterator) Next() (Item, bool) {
	if it.cur == nil || it.cur.next[0] == nil {
		return Item{}, false
	}
	it.cur = it.cur.next[0]
	return it.cur.item, true
}

// Items returns all tuples in ranked order (for tests and diagnostics).
func (l *List) Items() []Item {
	out := make([]Item, 0, l.size)
	for n := l.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.item)
	}
	return out
}
