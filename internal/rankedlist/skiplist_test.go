package rankedlist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/social-streams/ksir/internal/stream"
)

func TestUpsertAndOrder(t *testing.T) {
	l := New()
	l.Upsert(1, 0.5, 1)
	l.Upsert(2, 0.9, 2)
	l.Upsert(3, 0.1, 3)
	items := l.Items()
	want := []stream.ElemID{2, 1, 3}
	if len(items) != 3 {
		t.Fatalf("len = %d", len(items))
	}
	for i, id := range want {
		if items[i].ID != id {
			t.Errorf("items[%d] = e%d, want e%d", i, items[i].ID, id)
		}
	}
}

func TestUpsertReposition(t *testing.T) {
	l := New()
	l.Upsert(1, 0.5, 1)
	l.Upsert(2, 0.9, 1)
	// e1's score rises above e2's (a new reference arrived).
	l.Upsert(1, 1.5, 5)
	first, ok := l.First()
	if !ok || first.ID != 1 || first.Score != 1.5 || first.LastRef != 5 {
		t.Errorf("First = %+v", first)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2 (reposition, not duplicate)", l.Len())
	}
}

func TestUpsertSameScoreUpdatesLastRef(t *testing.T) {
	l := New()
	l.Upsert(1, 0.5, 1)
	l.Upsert(1, 0.5, 9)
	item, _ := l.Get(1)
	if item.LastRef != 9 {
		t.Errorf("LastRef = %d, want 9", item.LastRef)
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestTieBreakByID(t *testing.T) {
	l := New()
	l.Upsert(5, 0.5, 1)
	l.Upsert(3, 0.5, 1)
	l.Upsert(4, 0.5, 1)
	items := l.Items()
	for i, want := range []stream.ElemID{3, 4, 5} {
		if items[i].ID != want {
			t.Errorf("tie order: items[%d] = e%d, want e%d", i, items[i].ID, want)
		}
	}
}

func TestDelete(t *testing.T) {
	l := New()
	l.Upsert(1, 0.5, 1)
	l.Upsert(2, 0.9, 1)
	if !l.Delete(1) {
		t.Error("Delete(1) = false")
	}
	if l.Delete(1) {
		t.Error("double Delete(1) = true")
	}
	if l.Delete(99) {
		t.Error("Delete(missing) = true")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d", l.Len())
	}
	if _, ok := l.Get(1); ok {
		t.Error("deleted item still present")
	}
}

func TestEmptyList(t *testing.T) {
	l := New()
	if _, ok := l.First(); ok {
		t.Error("First on empty = ok")
	}
	if _, ok := l.Iter().Next(); ok {
		t.Error("Next on empty = ok")
	}
	if l.Len() != 0 {
		t.Error("Len != 0")
	}
}

func TestIterator(t *testing.T) {
	l := New()
	for i := 1; i <= 10; i++ {
		l.Upsert(stream.ElemID(i), float64(i), 1)
	}
	it := l.Iter()
	var got []stream.ElemID
	for {
		item, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, item.ID)
	}
	if len(got) != 10 {
		t.Fatalf("iterated %d items", len(got))
	}
	for i := range got {
		if got[i] != stream.ElemID(10-i) {
			t.Errorf("got[%d] = e%d, want e%d", i, got[i], 10-i)
		}
	}
}

// Property: after a random sequence of upserts and deletes the list contents
// and order match a reference implementation (sorted slice).
func TestSkipListMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := New()
	ref := make(map[stream.ElemID]float64)
	for op := 0; op < 5000; op++ {
		id := stream.ElemID(rng.Intn(300))
		switch rng.Intn(3) {
		case 0, 1:
			score := float64(rng.Intn(100)) / 10 // coarse scores force ties
			l.Upsert(id, score, stream.Time(op))
			ref[id] = score
		case 2:
			got := l.Delete(id)
			_, want := ref[id]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, id, got, want)
			}
			delete(ref, id)
		}
	}
	if l.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(ref))
	}
	items := l.Items()
	type pair struct {
		id    stream.ElemID
		score float64
	}
	want := make([]pair, 0, len(ref))
	for id, s := range ref {
		want = append(want, pair{id, s})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].score != want[j].score {
			return want[i].score > want[j].score
		}
		return want[i].id < want[j].id
	})
	for i := range want {
		if items[i].ID != want[i].id || items[i].Score != want[i].score {
			t.Fatalf("position %d: got (%d,%v), want (%d,%v)",
				i, items[i].ID, items[i].Score, want[i].id, want[i].score)
		}
	}
}

// Property via testing/quick: items come out in non-increasing score order.
func TestOrderInvariantProperty(t *testing.T) {
	f := func(scores []float64) bool {
		l := New()
		for i, s := range scores {
			l.Upsert(stream.ElemID(i), s, 0)
		}
		items := l.Items()
		for i := 1; i < len(items); i++ {
			if items[i].Score > items[i-1].Score {
				return false
			}
		}
		return len(items) == len(scores)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNodeLevelBounds(t *testing.T) {
	for id := stream.ElemID(0); id < 10000; id++ {
		lvl := nodeLevel(id)
		if lvl < 1 || lvl > maxLevel {
			t.Fatalf("nodeLevel(%d) = %d", id, lvl)
		}
	}
}
