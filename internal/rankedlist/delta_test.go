package rankedlist

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/social-streams/ksir/internal/stream"
)

// Replaying the recorded ops of a random mutation sequence onto a replica
// that started identical keeps the two lists tuple-identical — the
// delta-replay contract the engine's buffer recycling relies on.
func TestApplyDeltaMirrorsRecordedOps(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		primary, replica := New(), New()

		// Shared warm-up applied identically to both lists.
		for i := 0; i < 64; i++ {
			id := stream.ElemID(rng.Intn(40) + 1)
			score := float64(rng.Intn(8)) / 2
			primary.Upsert(id, score, stream.Time(i))
			replica.Upsert(id, score, stream.Time(i))
		}
		if !reflect.DeepEqual(primary.Items(), replica.Items()) {
			t.Fatalf("seed %d: warm-up diverged", seed)
		}

		// Buckets of recorded mutations, replayed bucket by bucket.
		for bucket := 0; bucket < 30; bucket++ {
			var ops []Op
			for i := 0; i < 20; i++ {
				id := stream.ElemID(rng.Intn(60) + 1)
				switch rng.Intn(4) {
				case 0: // delete (present or not)
					if op, ok := primary.DeleteRecorded(id); ok {
						ops = append(ops, op)
					}
				case 1: // touch: re-upsert the current score
					if it, ok := primary.Get(id); ok {
						ops = append(ops, primary.UpsertRecorded(id, it.Score, stream.Time(bucket*100+i)))
						break
					}
					fallthrough
				default: // insert or rescore
					ops = append(ops, primary.UpsertRecorded(id, float64(rng.Intn(12))/3, stream.Time(bucket*100+i)))
				}
			}
			replica.ApplyDelta(ops)
			if got, want := replica.Items(), primary.Items(); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d bucket %d: replica diverged\n got %v\nwant %v", seed, bucket, got, want)
			}
			if replica.Len() != primary.Len() {
				t.Fatalf("seed %d bucket %d: sizes diverge %d vs %d", seed, bucket, replica.Len(), primary.Len())
			}
		}
	}
}

// Recorded op kinds reflect what actually happened, and the position hints
// describe the predecessors at op time (IDs 5 and 7 both hash to
// bottom-level-only nodes, so their hints are recorded).
func TestRecordedOpKindsAndHints(t *testing.T) {
	l := New()
	op := l.UpsertRecorded(5, 2.0, 1)
	if op.Kind != OpInsert || !op.at.ok || op.at.heads&1 == 0 {
		t.Fatalf("first insert: got %+v, want hinted OpInsert at head", op)
	}
	op = l.UpsertRecorded(7, 1.0, 2) // lower score ⇒ after 5
	if op.Kind != OpInsert || !op.at.ok || op.at.heads&1 != 0 || op.at.prevs[0] != 5 {
		t.Fatalf("second insert: got %+v, want hinted OpInsert after 5", op)
	}
	op = l.UpsertRecorded(7, 1.0, 9)
	if op.Kind != OpTouch || op.Item.LastRef != 9 {
		t.Fatalf("same-score upsert: got %+v, want OpTouch", op)
	}
	op = l.UpsertRecorded(7, 3.0, 10) // now outranks 5
	if op.Kind != OpRescore || !op.from.ok || op.from.prevs[0] != 5 || op.at.heads&1 == 0 {
		t.Fatalf("score change: got %+v, want OpRescore from after-5 to head", op)
	}
	op, ok := l.DeleteRecorded(5)
	if !ok || op.Kind != OpDelete || !op.at.ok || op.at.prevs[0] != 7 {
		t.Fatalf("delete: got %+v ok=%v, want hinted OpDelete after 7", op, ok)
	}
	if _, ok := l.DeleteRecorded(5); ok {
		t.Fatal("deleting an absent id reported ok")
	}
}

// ApplyDelta on a list whose snapshot is still shared must copy-on-write
// like every other mutation: the snapshot keeps the old tuples.
func TestApplyDeltaDetachesSharedNodes(t *testing.T) {
	primary, replica := New(), New()
	for _, l := range []*List{primary, replica} {
		l.Upsert(1, 3, 1)
		l.Upsert(2, 2, 1)
	}
	snap := replica.Freeze()
	before := snap.Items()

	var ops []Op
	ops = append(ops, primary.UpsertRecorded(3, 1, 2))
	op, _ := primary.DeleteRecorded(1)
	ops = append(ops, op)
	replica.ApplyDelta(ops)

	if !reflect.DeepEqual(snap.Items(), before) {
		t.Fatalf("snapshot mutated through ApplyDelta: %v vs %v", snap.Items(), before)
	}
	if !reflect.DeepEqual(replica.Items(), primary.Items()) {
		t.Fatalf("replica diverged: %v vs %v", replica.Items(), primary.Items())
	}
}
