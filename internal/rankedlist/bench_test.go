package rankedlist

import (
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/stream"
)

// BenchmarkUpsert measures steady-state inserts/repositions into a list of
// ~10K tuples (the Algorithm 1 hot path).
func BenchmarkUpsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := New()
	const live = 10000
	for i := 0; i < live; i++ {
		l.Upsert(stream.ElemID(i), rng.Float64(), stream.Time(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := stream.ElemID(i % live)
		l.Upsert(id, rng.Float64(), stream.Time(i))
	}
}

// BenchmarkDeleteInsert measures the expiry + arrival churn of a sliding
// window at steady state.
func BenchmarkDeleteInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	l := New()
	const live = 10000
	for i := 0; i < live; i++ {
		l.Upsert(stream.ElemID(i), rng.Float64(), stream.Time(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Delete(stream.ElemID(i % live))
		l.Upsert(stream.ElemID(i%live), rng.Float64(), stream.Time(i))
	}
}

// BenchmarkIterate measures ranked-order traversal (the query hot path).
func BenchmarkIterate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	l := New()
	for i := 0; i < 10000; i++ {
		l.Upsert(stream.ElemID(i), rng.Float64(), stream.Time(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := l.Iter()
		for n := 0; n < 100; n++ {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
}
