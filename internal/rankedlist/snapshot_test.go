package rankedlist

import (
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/stream"
)

func itemIDs(items []Item) []stream.ElemID {
	ids := make([]stream.ElemID, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	return ids
}

func equalItems(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSnapshotMatchesListAtFreeze(t *testing.T) {
	l := New()
	for i := 1; i <= 20; i++ {
		l.Upsert(stream.ElemID(i), float64(i%7), stream.Time(i))
	}
	want := l.Items()
	s := l.Freeze()
	if s.Len() != l.Len() {
		t.Fatalf("snapshot Len = %d, list Len = %d", s.Len(), l.Len())
	}
	if !equalItems(s.Items(), want) {
		t.Errorf("snapshot Items diverge: %v vs %v", itemIDs(s.Items()), itemIDs(want))
	}
	sf, ok1 := s.First()
	lf, ok2 := l.First()
	if ok1 != ok2 || sf != lf {
		t.Errorf("First mismatch: %v/%v vs %v/%v", sf, ok1, lf, ok2)
	}
	for i := 1; i <= 20; i++ {
		si, ok1 := s.Get(stream.ElemID(i))
		li, ok2 := l.Get(stream.ElemID(i))
		if ok1 != ok2 || si != li {
			t.Errorf("Get(%d) mismatch: %v/%v vs %v/%v", i, si, ok1, li, ok2)
		}
	}
}

// Copy-on-write: mutating a frozen list must not change what the snapshot
// sees — upserts, repositions, same-score LastRef updates and deletes all
// detach first.
func TestSnapshotIsImmutableUnderMutation(t *testing.T) {
	l := New()
	for i := 1; i <= 10; i++ {
		l.Upsert(stream.ElemID(i), float64(i), 1)
	}
	s := l.Freeze()
	want := s.Items()

	l.Upsert(99, 5.5, 2) // fresh insert
	l.Upsert(3, 20, 3)   // reposition to the top
	l.Upsert(7, 7, 9)    // same score, LastRef-only update
	l.Delete(10)         // delete the old maximum

	if !equalItems(s.Items(), want) {
		t.Fatalf("snapshot changed under mutation:\n got %+v\nwant %+v", s.Items(), want)
	}
	if s.Len() != 10 {
		t.Errorf("snapshot Len = %d, want 10", s.Len())
	}
	if item, ok := s.Get(7); !ok || item.LastRef != 1 {
		t.Errorf("snapshot Get(7) = %+v, %v; want LastRef 1", item, ok)
	}
	if _, ok := s.Get(99); ok {
		t.Error("snapshot sees element inserted after Freeze")
	}
	if first, _ := l.First(); first.ID != 3 {
		t.Errorf("live list First = e%d, want e3 after reposition", first.ID)
	}
	if l.Len() != 10 { // 10 − delete + insert
		t.Errorf("live Len = %d, want 10", l.Len())
	}
}

// Thaw releases the snapshot's claim: subsequent mutations are in place, and
// the list keeps behaving exactly like an unfrozen one.
func TestThawReusesNodes(t *testing.T) {
	l := New()
	l.Upsert(1, 1, 1)
	l.Upsert(2, 2, 1)
	s := l.Freeze()
	l.Thaw()
	l.Upsert(3, 3, 1)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	// The snapshot is invalidated by contract; it must still not crash on
	// iteration (it shares the mutated nodes).
	_ = s.Items()
}

// Property: under a random mix of upserts/deletes with freezes sprinkled
// in, every snapshot equals the reference state captured at its freeze
// point, and the live list stays correct.
func TestSnapshotPropertyUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := New()
	type frozen struct {
		snap *Snapshot
		want []Item
	}
	var snaps []frozen
	for op := 0; op < 4000; op++ {
		id := stream.ElemID(rng.Intn(200))
		switch rng.Intn(5) {
		case 0, 1, 2:
			l.Upsert(id, float64(rng.Intn(50))/5, stream.Time(op))
		case 3:
			l.Delete(id)
		case 4:
			if op%37 == 0 && len(snaps) < 24 {
				snaps = append(snaps, frozen{l.Freeze(), l.Items()})
			}
		}
	}
	if len(snaps) < 5 {
		t.Fatalf("only %d snapshots taken", len(snaps))
	}
	for i, f := range snaps {
		if !equalItems(f.snap.Items(), f.want) {
			t.Errorf("snapshot %d diverged from its freeze-point state", i)
		}
		if f.snap.Len() != len(f.want) {
			t.Errorf("snapshot %d Len = %d, want %d", i, f.snap.Len(), len(f.want))
		}
	}
	// The live list still matches a from-scratch rebuild.
	rebuilt := New()
	for _, it := range l.Items() {
		rebuilt.Upsert(it.ID, it.Score, it.LastRef)
	}
	if !equalItems(l.Items(), rebuilt.Items()) {
		t.Error("live list inconsistent after churn")
	}
}

// The snapshot iterator must expose the exact sequence the live iterator
// exposed at freeze time (the traversal depends on this API shape).
func TestSnapshotIterator(t *testing.T) {
	l := New()
	for i := 1; i <= 15; i++ {
		l.Upsert(stream.ElemID(i), float64((i*7)%11), stream.Time(i))
	}
	want := l.Items()
	s := l.Freeze()
	l.Upsert(100, 99, 1) // force a detach mid-iteration setup
	it := s.Iter()
	var got []Item
	for {
		item, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, item)
	}
	if !equalItems(got, want) {
		t.Fatalf("iterator order %v, want %v", itemIDs(got), itemIDs(want))
	}
}
