package rankedlist

import "github.com/social-streams/ksir/internal/stream"

// Snapshot is an immutable view of a ranked list at the moment Freeze was
// called. It exposes the same ranked-iteration API the query traversal uses
// (First/Iter/Next) plus the lookup and dump helpers, and is safe for use by
// any number of concurrent readers without locking.
//
// A snapshot shares the list's nodes. It stays valid as long as either
// (a) the list is not mutated before Thaw — the engine's contract: a buffer
// is only recycled after every reader of its snapshot has finished — or
// (b) the list is mutated while still shared, in which case the mutation
// detaches the list onto fresh nodes (copy-on-write) and the snapshot keeps
// the old ones. The one illegal sequence is Thaw followed by mutation while
// a snapshot is still being read: Thaw is the caller's statement that no
// such reader exists.
type Snapshot struct {
	head  *node
	index map[stream.ElemID]*node
	size  int
}

// Freeze marks the list's current nodes as shared and returns an immutable
// Snapshot over them in O(1). The list remains fully usable: its next
// mutation transparently detaches it from the snapshot (O(n) clone) unless
// Thaw is called first.
func (l *List) Freeze() *Snapshot {
	l.shared = true
	return &Snapshot{head: l.head, index: l.index, size: l.size}
}

// Thaw declares that no reader still uses the snapshot taken by the last
// Freeze, re-enabling in-place O(log n) mutation without a detach.
func (l *List) Thaw() { l.shared = false }

// detach clones every node so that mutations cannot be observed through a
// live Snapshot. It is a no-op unless the list is shared.
func (l *List) detach() {
	if !l.shared {
		return
	}
	head := &node{next: make([]*node, maxLevel)}
	index := make(map[stream.ElemID]*node, len(l.index))
	// last[lv] is the most recent clone reaching level lv; linking each
	// clone to it rebuilds all forward pointers in one level-0 walk.
	var last [maxLevel]*node
	for lv := range last {
		last[lv] = head
	}
	for n := l.head.next[0]; n != nil; n = n.next[0] {
		c := newNode(n.item, len(n.next))
		for lv := range c.next {
			last[lv].next[lv] = c
			last[lv] = c
		}
		index[c.item.ID] = c
	}
	l.head = head
	l.index = index
	l.shared = false
}

// Len returns the number of tuples in the snapshot.
func (s *Snapshot) Len() int { return s.size }

// First returns the highest-scored tuple (RL_i.first of §4.1).
func (s *Snapshot) First() (Item, bool) {
	n := s.head.next[0]
	if n == nil {
		return Item{}, false
	}
	return n.item, true
}

// Get returns the tuple for id as of the snapshot.
func (s *Snapshot) Get(id stream.ElemID) (Item, bool) {
	n, ok := s.index[id]
	if !ok {
		return Item{}, false
	}
	return n.item, true
}

// Iter returns an iterator positioned before the first tuple; it walks the
// snapshot in ranked (descending score) order.
func (s *Snapshot) Iter() *Iterator { return &Iterator{cur: s.head} }

// Items returns all tuples in ranked order.
func (s *Snapshot) Items() []Item {
	out := make([]Item, 0, s.size)
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.item)
	}
	return out
}
