package persist

import (
	"github.com/social-streams/ksir/internal/metrics"
)

// Durability-layer observability (DESIGN.md §12): WAL append/fsync cost,
// checkpoint cost, and recovery replay time, aggregated over every stream's
// WAL in the process.
var (
	obsWALAppends = metrics.NewCounter("ksir_wal_appends_total",
		"WAL append calls (each a group-commit batch of one or more records).")
	obsWALAppendDuration = metrics.NewDurationHistogram("ksir_wal_append_duration_seconds",
		"WAL append latency: encode, write, and any policy-inline fsync.",
		metrics.DefBuckets...)
	obsWALAppendedBytes = metrics.NewCounter("ksir_wal_appended_bytes_total",
		"Bytes appended to WALs.")
	obsWALFsyncs = metrics.NewCounter("ksir_wal_fsyncs_total",
		"WAL fsyncs issued (inline, interval flusher, reset and close).")
	obsWALFsyncDuration = metrics.NewDurationHistogram("ksir_wal_fsync_duration_seconds",
		"WAL fsync latency.",
		metrics.DefBuckets...)
	obsWALReplay = metrics.NewDurationCounter("ksir_wal_replay_seconds_total",
		"Wall time spent scanning and replaying WAL tails at open (recovery and reactivation).")

	obsCkpts = metrics.NewCounter("ksir_checkpoints_total",
		"Checkpoint snapshots written.")
	obsCkptDuration = metrics.NewDurationHistogram("ksir_checkpoint_duration_seconds",
		"Checkpoint write latency: encode, write, fsync, atomic replace.",
		metrics.DefBuckets...)
	obsCkptBytes = metrics.NewCounter("ksir_checkpoint_bytes_total",
		"Bytes written to checkpoint snapshots.")
)
