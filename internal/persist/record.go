package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Kind discriminates WAL record payloads.
type Kind uint8

const (
	// KindPost records one accepted post (the Add path).
	KindPost Kind = 1
	// KindFlush records an explicit Flush(now) — a forced bucket
	// boundary. Implicit boundaries (a post arriving past its bucket) are
	// not logged: replaying the posts reproduces them deterministically.
	KindFlush Kind = 2
)

// PostRec is the raw, model-independent form of a post as logged and
// checkpointed. Replay feeds it back through the normal ingest path, which
// re-tokenizes and re-infers it; inference is seeded per document, so the
// rebuilt element is identical to the lost one.
type PostRec struct {
	ID   int64
	Time int64
	Text string
	Refs []int64
}

// Record is one WAL entry.
type Record struct {
	// Seq is the per-stream operation sequence number, strictly
	// increasing across the stream's lifetime (checkpoint truncations do
	// not reset it). Replay skips records with Seq at or below the loaded
	// checkpoint's OpSeq, which makes replay idempotent.
	Seq uint64
	// Bucket is the stream's published bucket sequence after the
	// operation was applied (diagnostic: ties every record to the
	// checkpoint cadence).
	Bucket int64
	Kind   Kind
	// Post is set for KindPost.
	Post PostRec
	// FlushNow is set for KindFlush.
	FlushNow int64
}

// maxRecordSize bounds one record's payload; a length prefix beyond it is
// treated as a torn/corrupt tail rather than a 4 GiB allocation.
const maxRecordSize = 64 << 20

// crcTable is Castagnoli, hardware-accelerated on current CPUs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendUvarint-style fixed-width helpers: the record format is fixed
// little-endian for alignment-free decoding.

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }

// encode serializes the record as one self-delimiting frame:
//
//	| payload len u32 | CRC32C(payload) u32 | payload |
//	payload = | seq u64 | bucket i64 | kind u8 | body |
//	post body = | id i64 | time i64 | nrefs u32 | refs i64... | text |
//	flush body = | now i64 |
//
// The CRC covers the whole payload, so a torn write anywhere in the frame
// is detected; the length prefix lets the reader skip to the next frame
// boundary (there is none after a torn tail — scanning stops).
func (r *Record) encode(buf []byte) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // len + crc placeholders
	p := len(buf)
	buf = appendU64(buf, r.Seq)
	buf = appendI64(buf, r.Bucket)
	buf = append(buf, byte(r.Kind))
	switch r.Kind {
	case KindPost:
		buf = appendI64(buf, r.Post.ID)
		buf = appendI64(buf, r.Post.Time)
		buf = appendU32(buf, uint32(len(r.Post.Refs)))
		for _, ref := range r.Post.Refs {
			buf = appendI64(buf, ref)
		}
		buf = append(buf, r.Post.Text...)
	case KindFlush:
		buf = appendI64(buf, r.FlushNow)
	default:
		return nil, fmt.Errorf("persist: unknown record kind %d", r.Kind)
	}
	payload := buf[p:]
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("persist: record of %d bytes exceeds the %d byte limit", len(payload), maxRecordSize)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf, nil
}

// errTorn is the internal marker for "stop scanning here": a frame that is
// incomplete or fails its CRC. It never escapes the package — recovery
// treats it as clean end-of-log.
var errTorn = fmt.Errorf("persist: torn record")

// decodeFrom reads one record from b, returning the record and the number
// of bytes consumed. It returns errTorn when b does not hold one complete,
// CRC-valid frame.
func decodeFrom(b []byte) (Record, int, error) {
	if len(b) < 8 {
		return Record{}, 0, errTorn
	}
	n := int(binary.LittleEndian.Uint32(b))
	crc := binary.LittleEndian.Uint32(b[4:])
	if n < 17 || n > maxRecordSize || len(b) < 8+n {
		// Too short to hold the header, absurdly long, or truncated: a
		// torn tail either way.
		return Record{}, 0, errTorn
	}
	payload := b[8 : 8+n]
	if crc32.Checksum(payload, crcTable) != crc {
		return Record{}, 0, errTorn
	}
	var r Record
	r.Seq = binary.LittleEndian.Uint64(payload)
	r.Bucket = int64(binary.LittleEndian.Uint64(payload[8:]))
	r.Kind = Kind(payload[16])
	body := payload[17:]
	switch r.Kind {
	case KindPost:
		if len(body) < 20 {
			return Record{}, 0, errTorn
		}
		r.Post.ID = int64(binary.LittleEndian.Uint64(body))
		r.Post.Time = int64(binary.LittleEndian.Uint64(body[8:]))
		nrefs := int(binary.LittleEndian.Uint32(body[16:]))
		body = body[20:]
		if nrefs > len(body)/8 {
			return Record{}, 0, errTorn
		}
		if nrefs > 0 {
			r.Post.Refs = make([]int64, nrefs)
			for i := range r.Post.Refs {
				r.Post.Refs[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
			}
		}
		r.Post.Text = string(body[8*nrefs:])
	case KindFlush:
		if len(body) != 8 {
			return Record{}, 0, errTorn
		}
		r.FlushNow = int64(binary.LittleEndian.Uint64(body))
	default:
		// An unknown kind with a valid CRC is a format from the future;
		// scanning past it would misinterpret the stream.
		return Record{}, 0, fmt.Errorf("%w: WAL record kind %d", ErrVersion, r.Kind)
	}
	return r, 8 + n, nil
}

// scan iterates the valid record prefix of data, calling fn for each
// record, and returns the byte length of that prefix. A torn tail ends the
// scan cleanly; any other error (fn's, or a future-format record) aborts.
func scan(data []byte, fn func(Record) error) (int64, error) {
	var off int64
	for int(off) < len(data) {
		rec, n, err := decodeFrom(data[off:])
		if err == errTorn {
			return off, nil
		}
		if err != nil {
			return off, err
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += int64(n)
	}
	return off, nil
}

// writeFull writes b fully to w (os.File.Write already loops, but keep the
// invariant explicit for any io.Writer).
func writeFull(w io.Writer, b []byte) error {
	n, err := w.Write(b)
	if err == nil && n != len(b) {
		err = io.ErrShortWrite
	}
	return err
}
