package persist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func postRecord(seq uint64, id int64) Record {
	return Record{
		Seq:    seq,
		Bucket: int64(seq / 3),
		Kind:   KindPost,
		Post: PostRec{
			ID:   id,
			Time: 100 + id,
			Text: "späte Tore gewinnen das derby ⚽",
			Refs: []int64{id - 1, id - 2},
		},
	}
}

func openTestWAL(t *testing.T, path string, replay func(Record) error) *WAL {
	t.Helper()
	w, err := OpenWAL(path, SyncNever, 0, replay)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w := openTestWAL(t, path, nil)
	want := []Record{
		postRecord(1, 10),
		{Seq: 2, Bucket: 1, Kind: KindFlush, FlushNow: 900},
		{Seq: 3, Bucket: 1, Kind: KindPost, Post: PostRec{ID: 11, Time: 901, Text: ""}}, // no refs, empty text
	}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.LastSeq() != 3 {
		t.Errorf("LastSeq = %d", w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	w2 := openTestWAL(t, path, func(r Record) error {
		got = append(got, r)
		return nil
	})
	defer w2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replayed records diverge:\n got %+v\nwant %+v", got, want)
	}
	if w2.LastSeq() != 3 {
		t.Errorf("reopened LastSeq = %d", w2.LastSeq())
	}
	// Appends continue after the replayed tail.
	if err := w2.Append(postRecord(4, 12)); err != nil {
		t.Fatal(err)
	}
}

func TestWALRejectsSequenceReuse(t *testing.T) {
	w := openTestWAL(t, filepath.Join(t.TempDir(), "wal"), nil)
	defer w.Close()
	if err := w.Append(postRecord(5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(postRecord(5, 2)); err == nil {
		t.Error("duplicate sequence accepted")
	}
	if err := w.Append(postRecord(4, 2)); err == nil {
		t.Error("backwards sequence accepted")
	}
}

// A crash mid-append leaves a torn tail: every truncation point of the
// final record must recover exactly the preceding records, silently.
func TestWALTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	w := openTestWAL(t, path, nil)
	if err := w.Append(postRecord(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(postRecord(2, 11)); err != nil {
		t.Fatal(err)
	}
	prefix := w.Size()
	if err := w.Append(postRecord(3, 12)); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	for cut := prefix; cut < int64(len(full)); cut++ {
		torn := filepath.Join(dir, "torn")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var seqs []uint64
		tw, err := OpenWAL(torn, SyncNever, 0, func(r Record) error {
			seqs = append(seqs, r.Seq)
			return nil
		})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
			t.Fatalf("cut at %d: replayed %v, want [1 2]", cut, seqs)
		}
		if tw.Size() != prefix {
			t.Fatalf("cut at %d: size %d, want truncated to %d", cut, tw.Size(), prefix)
		}
		// The torn bytes are gone: a new append must land at the frame
		// boundary and survive a reopen.
		if err := tw.Append(postRecord(3, 99)); err != nil {
			t.Fatal(err)
		}
		tw.Close()
		seqs = nil
		tw2, err := OpenWAL(torn, SyncNever, 0, func(r Record) error {
			seqs = append(seqs, r.Seq)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		tw2.Close()
		if len(seqs) != 3 || seqs[2] != 3 {
			t.Fatalf("cut at %d: after re-append replayed %v", cut, seqs)
		}
	}
}

func TestWALAppendBatchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w := openTestWAL(t, path, nil)
	if err := w.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	want := []Record{
		postRecord(1, 10),
		{Seq: 2, Bucket: 1, Kind: KindFlush, FlushNow: 900},
		postRecord(3, 11),
	}
	if err := w.AppendBatch(want); err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 3 {
		t.Errorf("LastSeq = %d", w.LastSeq())
	}
	// Sequence discipline holds across the batch boundary, and within a
	// batch.
	if err := w.AppendBatch([]Record{postRecord(3, 12)}); err == nil {
		t.Error("batch reusing a sequence accepted")
	}
	if err := w.AppendBatch([]Record{postRecord(4, 12), postRecord(4, 13)}); err == nil {
		t.Error("batch with an internal duplicate sequence accepted")
	}
	w.Close()

	var got []Record
	w2 := openTestWAL(t, path, func(r Record) error {
		got = append(got, r)
		return nil
	})
	defer w2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replayed records diverge:\n got %+v\nwant %+v", got, want)
	}
}

// Group commit's crash matrix: a batch of individually framed records cut
// at EVERY byte offset inside the batch's byte span must recover exactly
// the longest committed record prefix — never a partial record, never a
// record past the tear.
func TestWALAppendBatchTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	w := openTestWAL(t, path, nil)
	// One pre-batch record so the matrix also covers "whole batch lost".
	if err := w.Append(postRecord(1, 10)); err != nil {
		t.Fatal(err)
	}
	base := w.Size()
	batch := []Record{
		postRecord(2, 11),
		{Seq: 3, Bucket: 1, Kind: KindFlush, FlushNow: 500},
		postRecord(4, 12),
		postRecord(5, 13),
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Frame boundaries inside the batch span, derived from the frames
	// themselves (length prefix + payload).
	bounds := []int64{base}
	for off := base; off < int64(len(full)); {
		n := int64(binary.LittleEndian.Uint32(full[off:]))
		off += 8 + n
		bounds = append(bounds, off)
	}
	if len(bounds) != len(batch)+1 || bounds[len(bounds)-1] != int64(len(full)) {
		t.Fatalf("frame walk found bounds %v over %d bytes", bounds, len(full))
	}

	for cut := base; cut <= int64(len(full)); cut++ {
		torn := filepath.Join(dir, "torn")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The longest committed prefix: every frame that ends at or
		// before the cut.
		committed := 0
		for bounds[committed+1] <= cut {
			committed++
			if committed+1 == len(bounds) {
				break
			}
		}
		var seqs []uint64
		tw, err := OpenWAL(torn, SyncNever, 0, func(r Record) error {
			seqs = append(seqs, r.Seq)
			return nil
		})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		want := []uint64{1}
		for i := 0; i < committed; i++ {
			want = append(want, batch[i].Seq)
		}
		if !reflect.DeepEqual(seqs, want) {
			tw.Close()
			t.Fatalf("cut at %d: replayed %v, want %v", cut, seqs, want)
		}
		if tw.Size() != bounds[committed] {
			tw.Close()
			t.Fatalf("cut at %d: size %d, want truncated to %d", cut, tw.Size(), bounds[committed])
		}
		// Appends (batched, even) land cleanly after the truncation.
		if err := tw.AppendBatch([]Record{postRecord(6, 90), postRecord(7, 91)}); err != nil {
			t.Fatalf("cut at %d: re-append: %v", cut, err)
		}
		tw.Close()
	}
}

// A bit flip inside an earlier record stops replay at the last record
// before the flip — the valid prefix — rather than erroring or panicking.
func TestWALCorruptMiddleStopsAtPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	w := openTestWAL(t, path, nil)
	var bound int64
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.Append(postRecord(seq, int64(10+seq))); err != nil {
			t.Fatal(err)
		}
		if seq == 1 {
			bound = w.Size()
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[bound+20] ^= 0xff // inside record 2's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	w2, err := OpenWAL(path, SyncNever, 0, func(r Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Errorf("replayed %v, want just the valid prefix [1]", seqs)
	}
}

func TestWALUnknownKindIsVersionError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	r := Record{Seq: 1, Kind: KindFlush, FlushNow: 7}
	buf, err := r.encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Record{Seq: 1, Kind: Kind(0x7f)}).encode(nil); err == nil {
		t.Fatal("encode accepted an unknown kind")
	}
	// Rewrite the kind byte to an unknown value and fix up the CRC so the
	// frame is valid — a record from a future format, not a torn one.
	buf[8+16] = 0x7f
	fixCRC(buf)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenWAL(path, SyncNever, 0, nil)
	if !errors.Is(err, ErrVersion) {
		t.Errorf("unknown kind error = %v, want ErrVersion", err)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w := openTestWAL(t, path, nil)
	for seq := uint64(1); seq <= 5; seq++ {
		if err := w.Append(postRecord(seq, int64(seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Errorf("size after reset = %d", w.Size())
	}
	// Sequences keep counting up across the reset.
	if err := w.Append(postRecord(3, 3)); err == nil {
		t.Error("pre-reset sequence accepted after reset")
	}
	if err := w.Append(postRecord(6, 6)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	var seqs []uint64
	w2 := openTestWAL(t, path, func(r Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	})
	defer w2.Close()
	if len(seqs) != 1 || seqs[0] != 6 {
		t.Errorf("post-reset replay = %v, want [6]", seqs)
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal")
			w, err := OpenWAL(path, policy, 10*time.Millisecond, nil)
			if err != nil {
				t.Fatal(err)
			}
			for seq := uint64(1); seq <= 20; seq++ {
				if err := w.Append(postRecord(seq, int64(seq))); err != nil {
					t.Fatal(err)
				}
				if policy == SyncInterval && seq == 10 {
					time.Sleep(15 * time.Millisecond) // cross the sync deadline
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			n := 0
			w2, err := OpenWAL(path, policy, 0, func(Record) error { n++; return nil })
			if err != nil {
				t.Fatal(err)
			}
			w2.Close()
			if n != 20 {
				t.Errorf("replayed %d records, want 20", n)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "never": SyncNever, "": SyncInterval,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

// fixCRC recomputes the CRC of the first frame in buf in place.
func fixCRC(buf []byte) {
	n := binary.LittleEndian.Uint32(buf)
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(buf[8:8+n], crcTable))
}
