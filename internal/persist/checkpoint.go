package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"github.com/social-streams/ksir/internal/core"
)

// Meta is the small per-stream manifest written once at stream creation,
// so a stream whose first checkpoint never happened is still recoverable
// (name, configuration) from its WAL alone.
type Meta struct {
	Name string
	// ModelHash fingerprints the topic model the stream's persisted state
	// was built against. Recovery refuses to marry this state to a
	// different model: documents, topics and word IDs would silently
	// disagree.
	ModelHash uint64
	// Resolved stream configuration (durations in nanoseconds, as
	// time.Duration's underlying representation).
	WindowNs int64
	BucketNs int64
	Lambda   float64
	Eta      float64
	Shards   int
}

// Checkpoint is the full serialized state of one stream at a bucket
// boundary: everything OpenHub needs to reconstruct the stream without
// replaying history, plus the op-sequence watermark that tells WAL replay
// which records are already folded in.
type Checkpoint struct {
	Name      string
	ModelHash uint64
	// OpSeq is the last WAL sequence whose effect the checkpoint
	// captures; replay skips records with Seq <= OpSeq.
	OpSeq uint64
	// LastTime is the stream's last accepted post/flush time (the
	// ordering watermark for future Adds).
	LastTime int64
	// Core is the engine state: window contents, per-topic ranked-list
	// tuples (serialized, not recomputed — list scores may legitimately
	// lag the live scorer, and recovery must reproduce them exactly), and
	// maintenance counters.
	Core core.State
	// Pending are the buffered posts of the current, incomplete bucket in
	// arrival order. They are stored raw and re-ingested through the
	// normal Add path on recovery (per-document-seeded inference makes
	// that byte-identical).
	Pending []PostRec
}

// File names inside one stream's directory.
const (
	MetaFile       = "meta"
	CheckpointFile = "checkpoint"
	checkpointTmp  = "checkpoint.tmp"
	// CheckpointBak is the previous checkpoint, kept until the next one
	// lands so a crash mid-replace always leaves a loadable snapshot.
	CheckpointBak = "checkpoint.bak"
	WALFile       = "wal"
)

var (
	metaMagic = [8]byte{'K', 'S', 'I', 'R', 'M', 'E', 'T', 'A'}
	ckptMagic = [8]byte{'K', 'S', 'I', 'R', 'C', 'K', 'P', 'T'}
)

// encodeFile wraps a gob payload in the integrity envelope shared by meta
// and checkpoint files:
//
//	| magic 8B | version u32 | CRC32C(payload) u32 | gob payload |
func encodeFile(magic [8]byte, v any) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("persist: encoding %s: %w", magic[:], err)
	}
	head := make([]byte, 0, 16+payload.Len())
	head = append(head, magic[:]...)
	head = appendU32(head, FormatVersion)
	head = appendU32(head, crc32.Checksum(payload.Bytes(), crcTable))
	return append(head, payload.Bytes()...), nil
}

// decodeFile verifies the envelope and decodes the gob payload into v.
func decodeFile(magic [8]byte, data []byte, v any) error {
	if len(data) < 16 || !bytes.Equal(data[:8], magic[:]) {
		return fmt.Errorf("%w: bad %s header", ErrCorrupt, magic[:])
	}
	if ver := binary.LittleEndian.Uint32(data[8:]); ver != FormatVersion {
		return fmt.Errorf("%w: %s file version %d (want %d)", ErrVersion, magic[:], ver, FormatVersion)
	}
	payload := data[16:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[12:]) {
		return fmt.Errorf("%w: %s checksum mismatch", ErrCorrupt, magic[:])
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("%w: decoding %s: %v", ErrCorrupt, magic[:], err)
	}
	return nil
}

// writeFileAtomic writes data to dir/name via a temp file + fsync + rename
// + directory fsync, the full sequence needed for the rename to be durable
// rather than merely atomic.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := writeFull(f, data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems refuse fsync on directories; the rename itself is
	// still atomic there, so degrade silently.
	_ = d.Sync()
	return nil
}

// WriteMeta persists the stream manifest (atomically; called once at
// stream creation).
func WriteMeta(dir string, m Meta) error {
	data, err := encodeFile(metaMagic, &m)
	if err != nil {
		return err
	}
	return writeFileAtomic(dir, MetaFile, data)
}

// ReadMeta loads the stream manifest.
func ReadMeta(dir string) (Meta, error) {
	data, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := decodeFile(metaMagic, data, &m); err != nil {
		return Meta{}, err
	}
	return m, nil
}

// WriteCheckpoint atomically replaces the stream's checkpoint, rotating
// the previous one to .bak first. After it returns, the caller may Reset
// the WAL: every crash window leaves either the new checkpoint, or the
// .bak plus the still-untruncated WAL.
func WriteCheckpoint(dir string, ck *Checkpoint) error {
	start := time.Now()
	data, err := encodeFile(ckptMagic, ck)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := writeFull(f, data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	cur := filepath.Join(dir, CheckpointFile)
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, filepath.Join(dir, CheckpointBak)); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, cur); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	obsCkpts.Inc()
	obsCkptBytes.Add(uint64(len(data)))
	obsCkptDuration.ObserveSince(start)
	return nil
}

// LoadCheckpoint loads the stream's latest valid checkpoint: the current
// file if it decodes cleanly, else the .bak (whose WAL suffix is still on
// disk — see WriteCheckpoint). It returns (nil, nil) when the stream has
// never been checkpointed. A version mismatch is reported as ErrVersion
// even when a fallback exists, so operators see incompatibility rather
// than a silent restore of older state.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	load := func(name string) (*Checkpoint, error) {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var ck Checkpoint
		if err := decodeFile(ckptMagic, data, &ck); err != nil {
			return nil, err
		}
		return &ck, nil
	}
	ck, err := load(CheckpointFile)
	switch {
	case err == nil:
		return ck, nil
	case errors.Is(err, ErrVersion):
		return nil, err
	case errors.Is(err, fs.ErrNotExist), errors.Is(err, ErrCorrupt):
		bak, berr := load(CheckpointBak)
		if berr == nil {
			return bak, nil
		}
		if errors.Is(berr, fs.ErrNotExist) {
			if errors.Is(err, ErrCorrupt) {
				return nil, err // corrupt current, nothing to fall back to
			}
			return nil, nil // never checkpointed
		}
		return nil, berr
	default:
		return nil, err
	}
}
