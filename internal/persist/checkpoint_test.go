package persist

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/rankedlist"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

func testCheckpoint() *Checkpoint {
	e1 := &stream.Element{
		ID: 1, TS: 100,
		Doc:    textproc.NewDocument([]textproc.WordID{0, 1, 0}),
		Topics: topicmodel.TopicVec{Topics: []int32{0, 1}, Probs: []float64{0.75, 0.25}},
		Text:   "first post",
	}
	e2 := &stream.Element{
		ID: 2, TS: 160,
		Doc:    textproc.NewDocument([]textproc.WordID{1}),
		Topics: topicmodel.TopicVec{Topics: []int32{1}, Probs: []float64{1}},
		Refs:   []stream.ElemID{1},
		Text:   "second post",
	}
	return &Checkpoint{
		Name:      "feed",
		ModelHash: 0xfeedbeef,
		OpSeq:     42,
		LastTime:  170,
		Core: core.State{
			Window: stream.WindowState{
				Now:       180,
				WindowLen: 2,
				Elems: []stream.ExportedElem{
					{Elem: e1, Active: true, LastRef: 160},
					{Elem: e2, Active: true, LastRef: 160},
				},
			},
			Lists: [][]rankedlist.Item{
				{{ID: 1, Score: 0.9, LastRef: 160}, {ID: 2, Score: 0.4, LastRef: 160}},
				{{ID: 2, Score: 0.7, LastRef: 160}},
			},
			Stats: core.Stats{ElementsIngested: 2, Buckets: 3, ListUpserts: 5, ListDeletes: 1},
		},
		Pending: []PostRec{{ID: 3, Time: 175, Text: "buffered", Refs: []int64{2}}},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testCheckpoint()
	if err := WriteCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("checkpoint round trip diverges:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadCheckpointAbsent(t *testing.T) {
	ck, err := LoadCheckpoint(t.TempDir())
	if ck != nil || err != nil {
		t.Errorf("absent checkpoint = %v, %v; want nil, nil", ck, err)
	}
}

// A corrupt current checkpoint falls back to the rotated .bak — the crash
// window between writing the new file and truncating the WAL.
func TestLoadCheckpointFallsBackToBak(t *testing.T) {
	dir := t.TempDir()
	old := testCheckpoint()
	old.OpSeq = 10
	if err := WriteCheckpoint(dir, old); err != nil {
		t.Fatal(err)
	}
	niu := testCheckpoint()
	niu.OpSeq = 20
	if err := WriteCheckpoint(dir, niu); err != nil {
		t.Fatal(err)
	}
	// Corrupt the current file's payload.
	cur := filepath.Join(dir, CheckpointFile)
	data, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(cur, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.OpSeq != 10 {
		t.Errorf("fallback loaded OpSeq %d, want the .bak's 10", got.OpSeq)
	}
	// With no .bak at all, corruption is surfaced, not masked.
	if err := os.Remove(filepath.Join(dir, CheckpointBak)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt-only load = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, CheckpointFile)
	data, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	data[8] = 0x63 // version field
	if err := os.WriteFile(cur, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir); !errors.Is(err, ErrVersion) {
		t.Errorf("future-version load = %v, want ErrVersion", err)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := Meta{Name: "feed", ModelHash: 7, WindowNs: 1e9, BucketNs: 1e8, Lambda: 0.25, Eta: 20, Shards: 2}
	if err := WriteMeta(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("meta round trip: got %+v want %+v", got, want)
	}
	// Version mismatch is typed.
	path := filepath.Join(dir, MetaFile)
	data, _ := os.ReadFile(path)
	data[8] = 0x63
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeta(dir); !errors.Is(err, ErrVersion) {
		t.Errorf("meta version error = %v, want ErrVersion", err)
	}
}
