package persist

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// WAL is one stream's write-ahead log: an append-only file of framed
// records (record.go). The ksir layer serializes all appends per stream
// (the Hub's StreamHandle mutex); the WAL's own mutex exists only to
// coordinate those appends with the background interval-sync goroutine.
type WAL struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	size     int64
	policy   SyncPolicy
	interval time.Duration
	lastSync time.Time
	dirty    bool // bytes appended since the last fsync
	buf      []byte
	lastSeq  uint64        // highest Seq ever appended or replayed
	stopc    chan struct{} // stops the interval-sync goroutine (nil unless SyncInterval)
	// syncs counts fsyncs issued over the WAL's lifetime. Atomic, not
	// mu-guarded: Syncs backs the lock-free stats path, which must never
	// wait out an in-flight group commit's fsync.
	syncs atomic.Int64
}

// OpenWAL opens (creating if absent) the log at path and replays its valid
// record prefix through replay, in order. A torn or corrupt tail — the
// normal shape of a crash mid-append — is truncated away so new records
// append cleanly after the last valid one; it is not an error. replay may
// be nil. interval is only consulted under SyncInterval (0 means 1s);
// under that policy a background goroutine syncs dirty bytes every
// interval, so an idle stream's tail writes reach stable storage within
// the interval even when no further append ever comes.
func OpenWAL(path string, policy SyncPolicy, interval time.Duration, replay func(Record) error) (*WAL, error) {
	if interval <= 0 {
		interval = time.Second
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening WAL: %w", err)
	}
	w := &WAL{f: f, path: path, policy: policy, interval: interval, lastSync: time.Now()}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: reading WAL: %w", err)
	}
	replayStart := time.Now()
	valid, err := scan(data, func(r Record) error {
		w.lastSeq = r.Seq
		if replay != nil {
			return replay(r)
		}
		return nil
	})
	obsWALReplay.AddDuration(time.Since(replayStart))
	if err != nil {
		f.Close()
		return nil, err
	}
	if valid < int64(len(data)) {
		// Drop the torn tail so the next append starts at a frame
		// boundary instead of burying a record inside garbage.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: seeking WAL: %w", err)
	}
	w.size = valid
	if policy == SyncInterval {
		w.stopc = make(chan struct{})
		go w.syncLoop(w.stopc)
	}
	return w, nil
}

// syncLoop flushes dirty bytes every interval until Close (stop is passed
// in rather than read from the struct — Close nils the field under the
// mutex while this select polls it).
func (w *WAL) syncLoop(stop <-chan struct{}) {
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.mu.Lock()
			_ = w.syncLocked() // next append or Close will surface a persistent failure
			w.mu.Unlock()
		}
	}
}

// Append writes one record and applies the sync policy: a one-record
// group commit. The record must carry a Seq greater than every
// previously appended one.
func (w *WAL) Append(r Record) error {
	return w.AppendBatch([]Record{r})
}

// AppendBatch writes a group-commit batch: every record framed
// individually (so a torn tail truncates to the longest committed record
// prefix, exactly as for single appends), encoded into one buffer, written
// with one write call, and — under SyncAlways — made durable with one
// fsync shared by the whole batch. Records must carry strictly increasing
// Seq values, each greater than every previously appended one. An empty
// batch is a no-op.
//
// On error nothing is guaranteed durable: none, some, or all of the
// batch's frames may be on disk, but recovery still replays exactly the
// longest valid record prefix.
func (w *WAL) AppendBatch(recs []Record) error {
	return w.AppendBatchTimed(recs, nil)
}

// BatchTimings reports where one AppendBatchTimed call spent its time —
// the encode+write phase and the (possibly skipped) fsync — so the stream
// commit path can attribute WAL-append and fsync spans to the ops whose
// records rode the batch.
type BatchTimings struct {
	// AppendStart/AppendDur cover encoding and writing the frames,
	// excluding the sync.
	AppendStart time.Time
	AppendDur   time.Duration
	// FsyncStart/FsyncDur cover the fsync; FsyncDur is 0 when the sync
	// policy skipped it (interval not yet elapsed, or SyncNever).
	FsyncStart time.Time
	FsyncDur   time.Duration
}

// AppendBatchTimed is AppendBatch, additionally filling t (when non-nil)
// with the batch's append/fsync timing breakdown.
func (w *WAL) AppendBatchTimed(recs []Record, t *BatchTimings) error {
	if len(recs) == 0 {
		return nil
	}
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("persist: append to closed WAL")
	}
	buf := w.buf[:0]
	last := w.lastSeq
	for i := range recs {
		if recs[i].Seq <= last {
			return fmt.Errorf("persist: WAL sequence moved backwards (%d after %d)", recs[i].Seq, last)
		}
		last = recs[i].Seq
		var err error
		buf, err = recs[i].encode(buf)
		if err != nil {
			return err
		}
	}
	w.buf = buf[:0] // recycle the scratch buffer
	if err := writeFull(w.f, buf); err != nil {
		return fmt.Errorf("persist: appending WAL batch: %w", err)
	}
	w.size += int64(len(buf))
	w.lastSeq = last
	w.dirty = true
	syncStart := time.Now()
	if t != nil {
		t.AppendStart = start
		t.AppendDur = syncStart.Sub(start)
		t.FsyncStart = syncStart
	}
	preSyncs := w.syncs.Load()
	var err error
	switch w.policy {
	case SyncAlways:
		err = w.syncLocked()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.interval {
			err = w.syncLocked()
		}
	}
	if t != nil && w.syncs.Load() > preSyncs {
		t.FsyncDur = time.Since(syncStart)
	}
	if err == nil {
		obsWALAppends.Inc()
		obsWALAppendedBytes.Add(uint64(len(buf)))
		obsWALAppendDuration.ObserveSince(start)
	}
	return err
}

// Sync flushes appended records to stable storage (a no-op when nothing
// is dirty).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if !w.dirty || w.f == nil {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: syncing WAL: %w", err)
	}
	w.syncs.Add(1)
	obsWALFsyncs.Inc()
	obsWALFsyncDuration.ObserveSince(start)
	w.dirty = false
	w.lastSync = time.Now()
	return nil
}

// Syncs returns how many fsyncs the WAL has issued over its lifetime
// (inline policy syncs, the background interval flusher, Reset and Close
// all count). The pipeline's fsyncs-per-op metric is built on it.
// Lock-free: safe to call while an append's fsync is in flight.
func (w *WAL) Syncs() int64 { return w.syncs.Load() }

// Reset empties the log — called after a checkpoint has captured every
// record's effect. Sequence numbers keep counting up across resets, so a
// record can never be confused with a pre-checkpoint one.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("persist: truncating WAL: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("persist: rewinding WAL: %w", err)
	}
	w.size = 0
	w.dirty = true
	return w.syncLocked()
}

// Size returns the log's current byte length.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// LastSeq returns the highest record sequence appended or replayed.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// Close syncs and closes the log file. Safe to call twice.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if w.stopc != nil {
		close(w.stopc)
		w.stopc = nil
	}
	serr := w.syncLocked()
	cerr := w.f.Close()
	w.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}
