// Package persist is the durability substrate of the k-SIR service: a
// per-stream write-ahead log plus periodic checkpoint snapshots, the
// classic "cheap snapshot + replayable delta log" pattern (DESIGN.md §8).
//
// The division of labor with the layers above:
//
//   - This package owns the on-disk formats and their failure modes:
//     length-prefixed CRC-checked WAL records (record.go), the fsync
//     policy (wal.go), and atomically-replaced versioned checkpoint files
//     with a .bak fallback (checkpoint.go). It decodes state but never
//     interprets it.
//   - internal/stream and internal/core own what the state *means*: they
//     export and restore window contents and ranked-list tuples.
//   - The root ksir package glues the two together: ksir.OpenHub recovers
//     every stream directory, and the Hub's StreamHandles append WAL
//     records on the serialized writer path.
//
// Crash-consistency contract: a WAL record is the unit of atomicity. A
// torn or corrupt tail (a crash mid-append) is not an error — recovery
// applies every valid prefix record and truncates the rest. Checkpoint
// files are written to a temp name, fsynced and renamed into place, with
// the previous checkpoint kept as .bak; a crash at any point leaves at
// least one loadable checkpoint whose op-sequence number tells replay
// exactly which WAL records are already folded in.
package persist

import "errors"

// FormatVersion guards every on-disk artifact this package writes (WAL
// records, checkpoint and meta files). Bump it when a layout changes;
// readers reject other versions with ErrVersion.
const FormatVersion = 1

var (
	// ErrVersion reports an on-disk artifact written by an incompatible
	// format version (or against a different model). The ksir layer maps
	// it onto the public ksir.ErrModelVersion sentinel.
	ErrVersion = errors.New("persist: unsupported format version")
	// ErrCorrupt reports an artifact that failed its integrity checks in a
	// way recovery cannot skip: a bad magic number, a checkpoint whose CRC
	// does not match, or decoded state that violates invariants. (A torn
	// WAL tail is NOT corrupt — it is the expected shape of a crash and is
	// silently truncated.)
	ErrCorrupt = errors.New("persist: corrupt file")
)

// SyncPolicy selects when the WAL is fsynced to stable storage.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs at most once per interval: appends
	// past the deadline sync inline, a background flusher covers idle
	// streams (a tail write reaches stable storage within the interval
	// even when no further append ever comes), and Close/checkpoint
	// boundaries always sync. Bounds power-loss exposure to the interval
	// at a small fraction of SyncAlways' cost.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every record: no acknowledged write is ever
	// lost, at the price of one disk flush per operation.
	SyncAlways
	// SyncNever leaves flushing to the operating system: crash-safe
	// against process death, not against power loss.
	SyncNever
)

// String returns the flag-friendly name of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses the flag-friendly names of SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return SyncInterval, errors.New("persist: fsync policy must be always, interval or never")
}
