package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
)

// v1Server builds a hub-backed server with no pre-registered streams.
func v1Server(t *testing.T) (*httptest.Server, *ksir.Hub) {
	t.Helper()
	st := testStream(t) // reuse the legacy fixture's model via its stream
	hub := ksir.NewHub()
	srv := httptest.NewServer(NewHub(hub, st.Model(), st.Options()))
	t.Cleanup(srv.Close)
	return srv, hub
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var env apiv1.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not an error envelope: %s", body)
	}
	return env.Err.Code
}

func TestV1StreamLifecycle(t *testing.T) {
	srv, _ := v1Server(t)

	// Create with an explicit λ=0 — the wire must distinguish it from
	// unset.
	zero := 0.0
	r, body := doJSON(t, http.MethodPost, srv.URL+"/v1/streams",
		apiv1.CreateStreamRequest{Name: "feed", BucketSec: 60, WindowSec: 3600, Lambda: &zero})
	if r.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", r.StatusCode, body)
	}
	if ct := r.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("create Content-Type = %q", ct)
	}
	var info apiv1.StreamInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "feed" || info.BucketSec != 60 || info.Lambda != 0 {
		t.Errorf("created info = %+v", info)
	}

	// Duplicate name → 409 stream_exists.
	r, body = doJSON(t, http.MethodPost, srv.URL+"/v1/streams", apiv1.CreateStreamRequest{Name: "feed"})
	if r.StatusCode != http.StatusConflict || errCode(t, body) != apiv1.CodeStreamExists {
		t.Errorf("duplicate create: %d %s", r.StatusCode, body)
	}
	// Invalid name → 400 bad_options.
	r, body = doJSON(t, http.MethodPost, srv.URL+"/v1/streams", apiv1.CreateStreamRequest{Name: "a/b"})
	if r.StatusCode != http.StatusBadRequest || errCode(t, body) != apiv1.CodeBadOptions {
		t.Errorf("bad name: %d %s", r.StatusCode, body)
	}

	// List contains the stream.
	r, body = doJSON(t, http.MethodGet, srv.URL+"/v1/streams", nil)
	var list apiv1.ListStreamsResponse
	if err := json.Unmarshal(body, &list); err != nil || r.StatusCode != 200 {
		t.Fatalf("list: %d %v %s", r.StatusCode, err, body)
	}
	if len(list.Streams) != 1 || list.Streams[0].Name != "feed" {
		t.Errorf("list = %+v", list)
	}

	// Close, then the routes 404 with unknown_stream.
	r, _ = doJSON(t, http.MethodDelete, srv.URL+"/v1/streams/feed", nil)
	if r.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", r.StatusCode)
	}
	r, body = doJSON(t, http.MethodGet, srv.URL+"/v1/streams/feed/stats", nil)
	if r.StatusCode != http.StatusNotFound || errCode(t, body) != apiv1.CodeUnknownStream {
		t.Errorf("stats after close: %d %s", r.StatusCode, body)
	}
	r, _ = doJSON(t, http.MethodDelete, srv.URL+"/v1/streams/feed", nil)
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("double delete: %d", r.StatusCode)
	}
}

func TestV1IngestQueryStats(t *testing.T) {
	srv, _ := v1Server(t)
	r, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/streams", apiv1.CreateStreamRequest{Name: "s", BucketSec: 60, WindowSec: 3600})
	if r.StatusCode != http.StatusCreated {
		t.Fatal("create failed")
	}

	// Batch + single ingest.
	r, body := doJSON(t, http.MethodPost, srv.URL+"/v1/streams/s/posts", []apiv1.Post{
		{ID: 1, Time: 10, Text: "late goal wins the derby"},
		{ID: 2, Time: 20, Text: "what a dunk in the playoffs"},
	})
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("posts: %d %s", r.StatusCode, body)
	}
	if ct := r.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("posts Content-Type = %q", ct)
	}
	r, body = doJSON(t, http.MethodPost, srv.URL+"/v1/streams/s/posts",
		apiv1.Post{ID: 3, Time: 30, Text: "keeper saves the penalty", Refs: []int64{1}})
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("single post: %d %s", r.StatusCode, body)
	}

	// Out-of-order → 409 out_of_order (typed over the wire).
	r, body = doJSON(t, http.MethodPost, srv.URL+"/v1/streams/s/posts", apiv1.Post{ID: 4, Time: 5, Text: "late"})
	if r.StatusCode != http.StatusConflict || errCode(t, body) != apiv1.CodeOutOfOrder {
		t.Errorf("out-of-order: %d %s", r.StatusCode, body)
	}

	// Flush reports the published bucket.
	r, body = doJSON(t, http.MethodPost, srv.URL+"/v1/streams/s/flush", apiv1.FlushRequest{Now: 60})
	var fr apiv1.FlushResponse
	if err := json.Unmarshal(body, &fr); err != nil || r.StatusCode != 200 {
		t.Fatalf("flush: %d %v %s", r.StatusCode, err, body)
	}
	if fr.Active != 3 || fr.Now != 60 || fr.Bucket == 0 {
		t.Errorf("flush = %+v", fr)
	}

	// Query observes the flushed bucket.
	r, body = doJSON(t, http.MethodPost, srv.URL+"/v1/streams/s/query",
		apiv1.QueryRequest{K: 2, Keywords: []string{"goal", "league"}, Explain: true})
	var qr apiv1.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil || r.StatusCode != 200 {
		t.Fatalf("query: %d %v %s", r.StatusCode, err, body)
	}
	if len(qr.Posts) == 0 || qr.Score <= 0 || qr.Bucket != fr.Bucket {
		t.Errorf("query = %+v (flush bucket %d)", qr, fr.Bucket)
	}
	if len(qr.Explain) != len(qr.Posts) {
		t.Errorf("explanations missing: %d vs %d", len(qr.Explain), len(qr.Posts))
	}
	// Bad query → 400 bad_query.
	r, body = doJSON(t, http.MethodPost, srv.URL+"/v1/streams/s/query", apiv1.QueryRequest{K: 0})
	if r.StatusCode != http.StatusBadRequest || errCode(t, body) != apiv1.CodeBadQuery {
		t.Errorf("k=0: %d %s", r.StatusCode, body)
	}
	r, body = doJSON(t, http.MethodPost, srv.URL+"/v1/streams/s/query",
		apiv1.QueryRequest{K: 2, Keywords: []string{"goal"}, Algorithm: "bogus"})
	if r.StatusCode != http.StatusBadRequest || errCode(t, body) != apiv1.CodeBadQuery {
		t.Errorf("bogus algorithm: %d %s", r.StatusCode, body)
	}

	// Stats mirror the flush.
	r, body = doJSON(t, http.MethodGet, srv.URL+"/v1/streams/s/stats", nil)
	var info apiv1.StreamInfo
	if err := json.Unmarshal(body, &info); err != nil || r.StatusCode != 200 {
		t.Fatalf("stats: %d %v", r.StatusCode, err)
	}
	if info.Active != 3 || info.Now != 60 || info.Elements != 3 || info.Bucket != fr.Bucket {
		t.Errorf("stats = %+v", info)
	}
}

// New registers its wrapped stream as "default", reachable only through
// the /v1 surface.
func TestNewRegistersDefaultStream(t *testing.T) {
	srv := httptest.NewServer(New(testStream(t)))
	defer srv.Close()

	r, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/streams/default/posts", apiv1.Post{ID: 1, Time: 10, Text: "late goal wins the derby"})
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("post: %d", r.StatusCode)
	}
	r, _ = doJSON(t, http.MethodPost, srv.URL+"/v1/streams/default/flush", apiv1.FlushRequest{Now: 60})
	if r.StatusCode != 200 {
		t.Fatalf("v1 flush: %d", r.StatusCode)
	}
	// The v1 listing includes exactly "default".
	_, body := doJSON(t, http.MethodGet, srv.URL+"/v1/streams", nil)
	var list apiv1.ListStreamsResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Streams) != 1 || list.Streams[0].Name != DefaultStream {
		t.Errorf("list = %+v", list)
	}
	if list.Streams[0].Active != 1 {
		t.Errorf("active = %d, want 1", list.Streams[0].Active)
	}
	// The removed pre-/v1 aliases are plain 404s.
	for _, path := range []string{"/posts", "/flush", "/query", "/stats"} {
		r, _ := doJSON(t, http.MethodGet, srv.URL+path, nil)
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("legacy %s = %d, want 404", path, r.StatusCode)
		}
	}
}

// Multi-tenant isolation: posts land in their own stream only.
func TestV1MultiTenantIsolation(t *testing.T) {
	srv, _ := v1Server(t)
	for _, name := range []string{"a", "b"} {
		r, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/streams",
			apiv1.CreateStreamRequest{Name: name, BucketSec: 60, WindowSec: 3600})
		if r.StatusCode != http.StatusCreated {
			t.Fatal("create failed")
		}
	}
	doJSON(t, http.MethodPost, srv.URL+"/v1/streams/a/posts", apiv1.Post{ID: 1, Time: 10, Text: "goal striker"})
	doJSON(t, http.MethodPost, srv.URL+"/v1/streams/a/flush", apiv1.FlushRequest{Now: 60})
	doJSON(t, http.MethodPost, srv.URL+"/v1/streams/b/flush", apiv1.FlushRequest{Now: 60})

	for name, want := range map[string]int{"a": 1, "b": 0} {
		_, body := doJSON(t, http.MethodGet, srv.URL+fmt.Sprintf("/v1/streams/%s/stats", name), nil)
		var info apiv1.StreamInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Active != want {
			t.Errorf("stream %s active = %d, want %d", name, info.Active, want)
		}
	}
}

// testStream needs a Stream accessor; keep the fixture honest about the
// options it configures.
func TestStreamOptionsRoundTrip(t *testing.T) {
	st := testStream(t)
	opts := st.Options()
	if opts.Bucket != time.Minute || opts.Window != time.Hour || opts.Lambda != 0.5 {
		t.Errorf("resolved options = %+v", opts)
	}
}
