package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
)

func testStream(t *testing.T) *ksir.Stream {
	t.Helper()
	soccer := []string{"goal", "striker", "keeper", "league", "derby", "penalty"}
	basket := []string{"dunk", "rebound", "playoffs", "court", "buzzer", "triple"}
	rng := rand.New(rand.NewSource(1))
	var corpus []string
	for i := 0; i < 200; i++ {
		words := soccer
		if i%2 == 1 {
			words = basket
		}
		var b []string
		for j := 0; j < 6; j++ {
			b = append(b, words[rng.Intn(len(words))])
		}
		corpus = append(corpus, strings.Join(b, " "))
	}
	m, err := ksir.TrainModel(corpus, ksir.WithTopics(2), ksir.WithIterations(40),
		ksir.WithSeed(1), ksir.WithPriors(0.5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	st, err := ksir.New(m, ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestServerEndToEnd(t *testing.T) {
	srv := httptest.NewServer(New(testStream(t)))
	defer srv.Close()

	// Health.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Ingest a batch plus a single post.
	batch := []apiv1.Post{
		{ID: 1, Time: 10, Text: "late goal wins the derby"},
		{ID: 2, Time: 20, Text: "what a dunk in the playoffs"},
	}
	r, _ := postJSON(t, srv, "/v1/streams/default/posts", batch)
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("posts: %d", r.StatusCode)
	}
	r, _ = postJSON(t, srv, "/v1/streams/default/posts", apiv1.Post{ID: 3, Time: 30, Text: "keeper saves the penalty", Refs: []int64{1}})
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("single post: %d", r.StatusCode)
	}

	// Flush and check stats.
	r, body := postJSON(t, srv, "/v1/streams/default/flush", apiv1.FlushRequest{Now: 60})
	if r.StatusCode != 200 {
		t.Fatalf("flush: %d %s", r.StatusCode, body)
	}
	var info apiv1.StreamInfo
	resp, err = http.Get(srv.URL + "/v1/streams/default/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if info.Active != 3 {
		t.Errorf("stats = %+v", info)
	}
	// The stats block reports the writer pipeline: the three ingest
	// requests and the flush all committed through it.
	if info.Pipeline == nil || info.Pipeline.Ops < 3 || info.Pipeline.Batches == 0 {
		t.Errorf("pipeline stats missing or empty: %+v", info.Pipeline)
	}

	// Query with explanation.
	r, body = postJSON(t, srv, "/v1/streams/default/query", apiv1.QueryRequest{
		K: 2, Keywords: []string{"goal", "league"}, Explain: true,
	})
	if r.StatusCode != 200 {
		t.Fatalf("query: %d %s", r.StatusCode, body)
	}
	var qr apiv1.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Posts) == 0 || qr.Score <= 0 {
		t.Fatalf("bad query response: %+v", qr)
	}
	if !strings.Contains(qr.Posts[0].Text, "goal") && !strings.Contains(qr.Posts[0].Text, "penalty") {
		t.Errorf("top post off-topic: %q", qr.Posts[0].Text)
	}
	if len(qr.Explain) != len(qr.Posts) {
		t.Errorf("explanations missing: %d vs %d", len(qr.Explain), len(qr.Posts))
	}
}

func TestServerValidation(t *testing.T) {
	srv := httptest.NewServer(New(testStream(t)))
	defer srv.Close()

	// Wrong methods (the method-qualified /v1 patterns answer 405).
	resp, err := http.Get(srv.URL + "/v1/streams/default/query")
	if err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET query = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The removed pre-/v1 aliases are gone, not silently serving the
	// default stream.
	resp, err = http.Post(srv.URL+"/query", "application/json", strings.NewReader(`{"k":1}`))
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("legacy /query = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad JSON.
	resp, err = http.Post(srv.URL+"/v1/streams/default/posts", "application/json", strings.NewReader("{nope"))
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Out-of-order post.
	r, _ := postJSON(t, srv, "/v1/streams/default/posts", apiv1.Post{ID: 1, Time: 100, Text: "goal"})
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("first post: %d", r.StatusCode)
	}
	r, _ = postJSON(t, srv, "/v1/streams/default/posts", apiv1.Post{ID: 2, Time: 50, Text: "goal"})
	if r.StatusCode != http.StatusConflict {
		t.Errorf("out-of-order post = %d, want 409", r.StatusCode)
	}

	// Invalid query.
	r, _ = postJSON(t, srv, "/v1/streams/default/query", apiv1.QueryRequest{K: 0})
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("k=0 query = %d", r.StatusCode)
	}
	r, _ = postJSON(t, srv, "/v1/streams/default/query", apiv1.QueryRequest{K: 2, Keywords: []string{"goal"}, Algorithm: "bogus"})
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus algorithm = %d", r.StatusCode)
	}
}

// Concurrent queries against a live server must all succeed — the paper's
// many-readers deployment shape.
func TestServerConcurrentQueries(t *testing.T) {
	st := testStream(t)
	for i := 0; i < 60; i++ {
		text := "goal striker league"
		if i%2 == 1 {
			text = "dunk rebound playoffs"
		}
		if err := st.Add(ksir.Post{ID: int64(i + 1), Time: int64(1 + i*10), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(700); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(st))
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kw := "goal"
			if i%2 == 1 {
				kw = "dunk"
			}
			r, body := postJSONQuiet(srv, "/v1/streams/default/query", apiv1.QueryRequest{K: 3, Keywords: []string{kw}})
			if r == nil || r.StatusCode != 200 {
				errs <- fmt.Errorf("query %d failed: %s", i, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func postJSONQuiet(srv *httptest.Server, path string, body any) (*http.Response, []byte) {
	raw, _ := json.Marshal(body)
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// Queries must succeed and stay snapshot-consistent while the writer is
// actively ingesting buckets over HTTP — the deployment §2 motivates: one
// writer, many readers, no reader ever blocked behind ingest.
func TestServerQueryDuringIngest(t *testing.T) {
	st := testStream(t)
	srv := httptest.NewServer(New(st))
	defer srv.Close()

	var wg sync.WaitGroup
	done := make(chan struct{})
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kw := "goal"
			if i%2 == 1 {
				kw = "dunk"
			}
			var lastBucket int64 = -1
			for {
				select {
				case <-done:
					return
				default:
				}
				// Explain exercises the pinned-snapshot read path
				// (window + scorer) concurrently with ingest.
				r, body := postJSONQuiet(srv, "/v1/streams/default/query", apiv1.QueryRequest{K: 3, Keywords: []string{kw}, Explain: i%2 == 0})
				if r == nil || r.StatusCode != 200 {
					errs <- fmt.Errorf("query %d failed: %s", i, body)
					return
				}
				var qr apiv1.QueryResponse
				if err := json.Unmarshal(body, &qr); err != nil {
					errs <- fmt.Errorf("query %d bad response: %v", i, err)
					return
				}
				// Each reader must observe a non-decreasing bucket
				// sequence: snapshots only move forward.
				if qr.Bucket < lastBucket {
					errs <- fmt.Errorf("query %d: bucket went backwards %d -> %d", i, lastBucket, qr.Bucket)
					return
				}
				lastBucket = qr.Bucket
			}
		}(i)
	}

	// Writer: stream posts bucket by bucket through the HTTP ingest path.
	for i := 0; i < 120; i++ {
		text := "goal striker league"
		if i%2 == 1 {
			text = "dunk rebound playoffs"
		}
		r, body := postJSONQuiet(srv, "/v1/streams/default/posts", apiv1.Post{ID: int64(i + 1), Time: int64(1 + i*10), Text: text})
		if r == nil || r.StatusCode != http.StatusAccepted {
			t.Fatalf("post %d rejected: %s", i, body)
		}
	}
	r, body := postJSONQuiet(srv, "/v1/streams/default/flush", apiv1.FlushRequest{Now: 1400})
	if r == nil || r.StatusCode != 200 {
		t.Fatalf("flush failed: %s", body)
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the flush the latest snapshot must serve every reader.
	_, body = postJSONQuiet(srv, "/v1/streams/default/query", apiv1.QueryRequest{K: 3, Keywords: []string{"goal"}})
	var qr apiv1.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Active == 0 || len(qr.Posts) == 0 {
		t.Fatalf("final query empty: %+v", qr)
	}
}
