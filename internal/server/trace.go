package server

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/internal/trace"
)

// tracedRoutes selects which routes get a request root span. Excluded:
// subscribe (a connection-lifetime SSE stream would always outlive the
// slow-op threshold), and the scrape/liveness/introspection routes, whose
// tracing would be self-referential noise.
var tracedRoutes = map[string]bool{
	"create_stream": true, "list_streams": true, "close_stream": true,
	"posts": true, "flush": true, "query": true, "stats": true,
	"checkpoint": true, "hibernate": true,
}

// serveTraced runs one traced route: the incoming W3C traceparent (if any)
// becomes the root span's remote parent, the op rides the request context
// through the stream pipeline, and the response carries this hop's
// traceparent so callers can find the server-side trace.
func (s *Server) serveTraced(name string, h http.HandlerFunc, w http.ResponseWriter, r *http.Request) {
	parent, _ := trace.ParseTraceparent(r.Header.Get(trace.Header))
	op := trace.Start("http."+name, r.PathValue("name"), parent)
	if op == nil { // tracing disabled
		h(w, r)
		return
	}
	// Capture the identity before End: the op is recycled afterwards.
	sc := op.Context()
	w.Header().Set(trace.Header, trace.FormatTraceparent(sc))
	start := time.Now()
	h(w, r.WithContext(trace.ContextWith(r.Context(), op)))
	op.End()
	s.log().Debug("http request",
		"route", name,
		"stream", r.PathValue("name"),
		"trace_id", sc.TraceID.String(),
		"duration", time.Since(start))
}

// SetLogger directs the server's request logging (Debug level, one line
// per traced request) to l instead of slog.Default().
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

func (s *Server) log() *slog.Logger {
	if s.logger != nil {
		return s.logger
	}
	return slog.Default()
}

// handleDebugTraces serves GET /debug/traces: the in-process span
// recorder's ring, newest first, as {"traces":[...]}. Query parameters:
//
//	stream        keep only traces attributed to this stream
//	min_duration  keep only traces at least this long (Go duration)
//	limit         keep at most this many traces
//
// The handler reads only the recorder's ring — it never touches the hub,
// so scraping traces cannot reactivate a hibernated stream.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := trace.Filter{Stream: q.Get("stream")}
	if md := q.Get("min_duration"); md != "" {
		d, err := time.ParseDuration(md)
		if err != nil {
			httpError(w, http.StatusBadRequest, apiv1.CodeBadRequest, "bad min_duration %q: %v", md, err)
			return
		}
		f.MinDuration = d
	}
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, apiv1.CodeBadRequest, "bad limit %q", ls)
			return
		}
		f.Limit = n
	}
	traces := trace.Default().Snapshot(f)
	writeJSON(w, struct {
		Traces []*trace.Trace `json:"traces"`
	}{Traces: traces})
}

// TracesHandler returns the /debug/traces endpoint as a standalone
// handler, for serving on a separate listener (ksir-server -metrics-addr)
// alongside /metrics and pprof.
func (s *Server) TracesHandler() http.Handler {
	return http.HandlerFunc(s.route("debug_traces", s.handleDebugTraces))
}

// EnablePprof registers the net/http/pprof handlers on the server's main
// mux under /debug/pprof/. Off by default (ksir-server gates it behind
// -pprof); the metrics sidecar listener serves pprof unconditionally,
// which is the recommended place to point profilers.
func (s *Server) EnablePprof() {
	s.h.HandleFunc("/debug/pprof/", pprof.Index)
	s.h.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.h.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.h.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.h.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// RegisterPprof registers the pprof handlers on an arbitrary mux — the
// sidecar listener path (ksir-server serves them on -metrics-addr).
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
