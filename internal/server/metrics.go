package server

import (
	"net/http"
	"sync/atomic"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/internal/metrics"
)

// routeNames enumerates the label values of the per-route HTTP families.
// Fixed at registration: the route label is the mux pattern's logical name,
// never a request path, so cardinality cannot grow with traffic.
var routeNames = []string{
	"create_stream", "list_streams", "close_stream",
	"posts", "flush", "query", "stats", "subscribe",
	"checkpoint", "hibernate", "healthz", "metrics",
	"debug_traces",
}

// HTTP/SSE observability (DESIGN.md §12). Process-global like every other
// registered family: several Servers in one process (tests) share them.
var (
	obsHTTPRequests = metrics.NewCounterVec("ksir_http_requests_total",
		"HTTP requests served, by route.", "route", routeNames...)
	obsHTTPDuration = metrics.NewDurationHistogramVec("ksir_http_request_duration_seconds",
		"HTTP request latency by route (for subscribe: SSE connection lifetime).",
		"route", routeNames, metrics.DefBuckets...)
	obsHTTPInFlight = metrics.NewGauge("ksir_http_requests_in_flight",
		"HTTP requests currently being served (SSE connections included).")

	obsSSESubscribers = metrics.NewGauge("ksir_sse_subscribers",
		"Currently connected SSE subscribers.")
	obsSSEDropped = metrics.NewCounter("ksir_sse_dropped_total",
		"SSE refresh events shed by drop-oldest backpressure (consumer fell behind).")
)

// route wraps a handler with the per-route request counter, latency
// histogram and the in-flight gauge, plus — for the routes in
// tracedRoutes — the traceparent-propagating span recorder middleware
// (trace.go). name must be one of routeNames.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := obsHTTPRequests.With(name)
	dur := obsHTTPDuration.With(name)
	traced := tracedRoutes[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		obsHTTPInFlight.Inc()
		if traced {
			s.serveTraced(name, h, w, r)
		} else {
			h(w, r)
		}
		obsHTTPInFlight.Dec()
		reqs.Inc()
		dur.ObserveSince(start)
	}
}

// sseCounters is one stream's server-side SSE accounting. It lives on the
// Server (not the stream handle): subscriptions are a wire concern, and the
// counters must survive the stream's residency transitions.
type sseCounters struct {
	subscribers atomic.Int64
	dropped     atomic.Int64
}

// sseFor returns (creating if needed) the stream's SSE counters.
func (s *Server) sseFor(name string) *sseCounters {
	s.sseMu.Lock()
	defer s.sseMu.Unlock()
	c, ok := s.sse[name]
	if !ok {
		c = &sseCounters{}
		s.sse[name] = c
	}
	return c
}

// sseLookup returns the stream's SSE counters without creating them.
func (s *Server) sseLookup(name string) *sseCounters {
	s.sseMu.Lock()
	defer s.sseMu.Unlock()
	return s.sse[name]
}

// deliverSSE hands one refresh to an SSE connection's event channel without
// ever blocking (it runs on the stream's writer goroutine): when the buffer
// is full, the oldest pending refresh is shed — the standing query is a
// state feed, so the latest refresh wins — and the drop is counted.
func (s *Server) deliverSSE(c *sseCounters, events chan apiv1.QueryResponse, ev apiv1.QueryResponse) {
	for {
		select {
		case events <- ev:
			return
		default:
			select { // shed the oldest pending refresh
			case <-events:
				c.dropped.Add(1)
				obsSSEDropped.Inc()
			default:
			}
		}
	}
}

// handleMetrics serves GET /metrics: every registered family plus the
// hub-level collector series below.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	_ = metrics.Default().WriteText(w, s.collectHub)
}

// MetricsHandler returns the /metrics endpoint as a standalone handler,
// for serving scrapes on a separate listener (ksir-server -metrics-addr)
// so the scrape path stays reachable apart from the public API surface.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(s.route("metrics", s.handleMetrics))
}

// collectHub emits the scrape-time hub series: aggregate residency gauges
// over every registered stream, and per-stream {stream="..."} roll-ups.
//
// Residency discipline: StreamHandle.Stats is lock-free and NEVER
// reactivates a hibernated stream (it reports the lastStats captured at
// hibernation), so scraping cannot churn the hot tier — the aggregates stay
// correct across hibernation because the cold streams' last-known counters
// are included.
//
// Cardinality policy (DESIGN.md §12): per-stream series are emitted only
// for resident streams, so the labeled series count is bounded by the
// residency budget, not the tenant count — a hub with 100k registered
// streams and a 64-slot hot tier exposes 64 streams' series plus the
// aggregates. The SSE families are keyed by the server's own subscription
// accounting and are emitted for every stream that ever had a subscriber.
func (s *Server) collectHub(w *metrics.Writer) {
	type row struct {
		name string
		st   ksir.StreamStats
	}
	names := s.hub.List()
	rows := make([]row, 0, len(names))
	var resident int
	var residentBytes, elements int64
	for _, name := range names {
		hs, err := s.hub.Get(name)
		if err != nil {
			continue // closed between List and Get
		}
		st := hs.Stats()
		elements += st.Elements
		if st.Residency.Resident {
			resident++
			residentBytes += st.Residency.ResidentBytes
			rows = append(rows, row{name, st})
		}
	}

	w.Family("ksir_hub_streams", "Registered streams (resident + hibernated).", "gauge")
	w.Sample("ksir_hub_streams", float64(len(names)))
	w.Family("ksir_hub_resident_streams", "Streams currently loaded in memory.", "gauge")
	w.Sample("ksir_hub_resident_streams", float64(resident))
	w.Family("ksir_hub_resident_bytes", "Approximate summed in-memory footprint of resident streams.", "gauge")
	w.Sample("ksir_hub_resident_bytes", float64(residentBytes))
	w.Family("ksir_hub_elements", "Stream elements across all registered streams, hibernated included (their last-known counters).", "gauge")
	w.Sample("ksir_hub_elements", float64(elements))

	sample := func(name, help, typ string, val func(row) float64) {
		w.Family(name, help, typ)
		for _, r := range rows {
			w.Sample(name, val(r), metrics.Label{Name: "stream", Value: r.name})
		}
	}
	sample("ksir_stream_elements_total", "Elements ingested, per resident stream.", "counter",
		func(r row) float64 { return float64(r.st.Elements) })
	sample("ksir_stream_buckets_total", "Bucket boundaries ingested, per resident stream.", "counter",
		func(r row) float64 { return float64(r.st.Bucket) })
	sample("ksir_stream_active", "Elements in the sliding window, per resident stream.", "gauge",
		func(r row) float64 { return float64(r.st.Active) })
	sample("ksir_stream_subscriptions", "Standing queries registered, per resident stream.", "gauge",
		func(r row) float64 { return float64(r.st.Subscriptions) })
	sample("ksir_stream_queue_depth", "Write operations waiting in the writer pipeline, per resident stream.", "gauge",
		func(r row) float64 { return float64(r.st.Pipeline.QueueDepth) })
	sample("ksir_stream_ops_total", "Write operations committed, per resident stream.", "counter",
		func(r row) float64 { return float64(r.st.Pipeline.Ops) })
	sample("ksir_stream_fsyncs_total", "WAL fsyncs issued, per resident stream.", "counter",
		func(r row) float64 { return float64(r.st.Pipeline.Fsyncs) })
	sample("ksir_stream_resident_bytes", "Approximate in-memory footprint, per resident stream.", "gauge",
		func(r row) float64 { return float64(r.st.Residency.ResidentBytes) })

	s.sseMu.Lock()
	sseRows := make([]struct {
		name        string
		subs, drops int64
	}, 0, len(s.sse))
	for name, c := range s.sse {
		sseRows = append(sseRows, struct {
			name        string
			subs, drops int64
		}{name, c.subscribers.Load(), c.dropped.Load()})
	}
	s.sseMu.Unlock()
	w.Family("ksir_stream_sse_subscribers", "Connected SSE subscribers, per stream.", "gauge")
	for _, r := range sseRows {
		w.Sample("ksir_stream_sse_subscribers", float64(r.subs), metrics.Label{Name: "stream", Value: r.name})
	}
	w.Family("ksir_stream_sse_dropped_total", "SSE refreshes shed by drop-oldest backpressure, per stream.", "counter")
	for _, r := range sseRows {
		w.Sample("ksir_stream_sse_dropped_total", float64(r.drops), metrics.Label{Name: "stream", Value: r.name})
	}
}
