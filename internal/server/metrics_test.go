package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/internal/metrics"
)

// scrape fetches GET /metrics and returns the exposition body.
func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// GET /metrics exposes the registered process families plus the hub
// collector's aggregate and per-stream series, in text format 0.0.4.
func TestMetricsEndpoint(t *testing.T) {
	st := testStream(t)
	srv := httptest.NewServer(New(st))
	defer srv.Close()

	for i := 0; i < 10; i++ {
		postJSON(t, srv, "/v1/streams/default/posts",
			apiv1.Post{ID: int64(i + 1), Time: int64(90 * (i + 1)), Text: "goal striker derby"})
	}
	postJSON(t, srv, "/v1/streams/default/query",
		apiv1.QueryRequest{K: 3, Keywords: []string{"goal"}})

	got := scrape(t, srv)
	for _, want := range []string{
		"# TYPE ksir_engine_elements_ingested_total counter",
		"# TYPE ksir_engine_query_duration_seconds histogram",
		`ksir_engine_query_duration_seconds_bucket{algorithm="MTTD",le="+Inf"}`,
		"# TYPE ksir_http_requests_total counter",
		`ksir_http_requests_total{route="posts"} 10`,
		"# TYPE ksir_hub_streams gauge",
		"ksir_hub_resident_streams 1",
		// 9, not 10: the newest post is still pending in the incomplete
		// bucket and becomes an element at the next boundary.
		`ksir_stream_elements_total{stream="default"} 9`,
		`ksir_stream_queue_depth{stream="default"}`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// The drop-oldest SSE shed path counts every dropped refresh: the channel
// keeps only the newest refreshes, and the shed count surfaces both in the
// per-stream counters and in the StreamInfo wire block.
func TestSSEDropOldestCountsDrops(t *testing.T) {
	st := testStream(t)
	s := New(st)
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Force drops through the exact delivery function handleSubscribe
	// installs: a 2-slot buffer receiving 5 refreshes with no consumer must
	// shed the 3 oldest.
	c := s.sseFor(DefaultStream)
	events := make(chan apiv1.QueryResponse, 2)
	for i := 1; i <= 5; i++ {
		s.deliverSSE(c, events, apiv1.QueryResponse{Bucket: int64(i)})
	}
	if got := c.dropped.Load(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	// Latest state wins: the survivors are the two newest refreshes.
	if ev := <-events; ev.Bucket != 4 {
		t.Errorf("oldest surviving refresh bucket = %d, want 4", ev.Bucket)
	}
	if ev := <-events; ev.Bucket != 5 {
		t.Errorf("newest surviving refresh bucket = %d, want 5", ev.Bucket)
	}

	// The counter crosses the wire: stats carries the sse block...
	resp, body := doJSON(t, http.MethodGet, srv.URL+"/v1/streams/default/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var info apiv1.StreamInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.SSE == nil {
		t.Fatal("stats missing sse block")
	}
	if info.SSE.Dropped != 3 {
		t.Errorf("stats sse.dropped = %d, want 3", info.SSE.Dropped)
	}
	// ...and /metrics carries the per-stream family.
	if got := scrape(t, srv); !strings.Contains(got,
		`ksir_stream_sse_dropped_total{stream="default"} 3`) {
		t.Error("scrape missing per-stream sse dropped counter")
	}
}

// A live SSE subscription is visible in stats while connected and gone
// after disconnect.
func TestSSESubscriberCountOnWire(t *testing.T) {
	st := testStream(t)
	srv := httptest.NewServer(New(st))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/streams/default/subscribe?k=3&keywords=goal", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe = %d", resp.StatusCode)
	}
	// Wait for the subscription preamble so registration has happened.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		_, body := doJSON(t, http.MethodGet, srv.URL+"/v1/streams/default/stats", nil)
		var info apiv1.StreamInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.SSE != nil && info.SSE.Subscribers == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sse.subscribers never reached 1: %+v", info.SSE)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Observability must not churn the hot tier: scraping /metrics, listing
// /v1/streams and reading stats on a hibernated stream under a 1-slot
// residency budget must cause zero activations — the scrape serves the
// lastStats captured at hibernation. (A query then proves the activation
// counter does move when reactivation is real.)
func TestMetricsScrapeResidencyNoReactivation(t *testing.T) {
	st := testStream(t)
	m := st.Model()
	hub, err := ksir.OpenHub(t.TempDir(), m, ksir.PersistOptions{
		Fsync:              ksir.FsyncNever,
		MaxResidentStreams: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.CloseAll()
	srv := httptest.NewServer(NewHub(hub, m, ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}))
	defer srv.Close()

	doJSON(t, http.MethodPost, srv.URL+"/v1/streams", apiv1.CreateStreamRequest{Name: "cold"})
	for i := 0; i < 10; i++ {
		doJSON(t, http.MethodPost, srv.URL+"/v1/streams/cold/posts",
			apiv1.Post{ID: int64(i + 1), Time: int64(90 * (i + 1)), Text: "goal striker derby"})
	}
	if resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/streams/cold/hibernate", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("hibernate = %d: %s", resp.StatusCode, body)
	}

	activations := func() (int64, string) {
		t.Helper()
		_, body := doJSON(t, http.MethodGet, srv.URL+"/v1/streams/cold/stats", nil)
		var info apiv1.StreamInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		return info.Residency.Activations, info.State
	}
	before, state := activations()
	if state != apiv1.StateHibernated {
		t.Fatalf("state after hibernate = %q, want hibernated", state)
	}

	// Every read-only observability surface, several times over.
	for i := 0; i < 3; i++ {
		got := scrape(t, srv)
		if !strings.Contains(got, "ksir_hub_resident_streams 0") {
			t.Errorf("scrape %d: hibernated stream counted resident", i)
		}
		// Per-stream series follow the cardinality policy: no resident
		// streams, no {stream=...} samples.
		if strings.Contains(got, `{stream="cold"} `) && !strings.Contains(got, `ksir_stream_sse`) {
			t.Errorf("scrape %d emitted per-stream series for a cold stream", i)
		}
		// Aggregates still include the cold stream's last-known counters
		// (9 elements: the newest post is pending in the open bucket).
		if !strings.Contains(got, "ksir_hub_elements 9") {
			t.Errorf("scrape %d: hub elements aggregate lost the cold stream", i)
		}
		if resp, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/streams", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("list = %d", resp.StatusCode)
		}
	}

	after, state := activations()
	if state != apiv1.StateHibernated {
		t.Errorf("state after scrapes = %q, want hibernated (observability reactivated the stream)", state)
	}
	if after != before {
		t.Errorf("activations %d -> %d across scrapes, want unchanged", before, after)
	}

	// Control: a real query does reactivate, so the counter we watched is
	// the live one.
	if resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/streams/cold/query",
		apiv1.QueryRequest{K: 3, Keywords: []string{"goal"}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d: %s", resp.StatusCode, body)
	}
	final, _ := activations()
	if final != before+1 {
		t.Errorf("activations after query = %d, want %d", final, before+1)
	}
}
