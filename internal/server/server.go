// Package server exposes a ksir.Stream over HTTP — the deployment shape
// §2 motivates ("thousands of users could submit different queries at the
// same time and each query should be processed in real-time"): one writer
// ingests the stream; many readers query concurrently.
//
//	POST /posts   {"id":1,"time":60,"text":"...","refs":[2,3]}   → 202
//	POST /flush   {"now":120}                                     → {"active":n,"now":t}
//	POST /query   {"k":10,"keywords":["soccer"],"algorithm":"mttd","explain":true}
//	GET  /stats                                                   → {"active":n,"now":t,"subscriptions":m}
//	GET  /healthz                                                 → 200 ok
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	ksir "github.com/social-streams/ksir"
)

// Server is an http.Handler serving one stream. Ingestion (POST /posts,
// /flush) is serialized by an internal mutex, honoring the Stream contract;
// queries take no lock at all — each pins the engine snapshot of the last
// ingested bucket, so query handlers run truly in parallel with each other
// and with ingestion (the response reports the observed bucket).
type Server struct {
	mux sync.Mutex // guards Add/Flush
	st  *ksir.Stream
	h   *http.ServeMux
}

// New wraps a stream.
func New(st *ksir.Stream) *Server {
	s := &Server{st: st, h: http.NewServeMux()}
	s.h.HandleFunc("/posts", s.handlePosts)
	s.h.HandleFunc("/flush", s.handleFlush)
	s.h.HandleFunc("/query", s.handleQuery)
	s.h.HandleFunc("/stats", s.handleStats)
	s.h.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.h.ServeHTTP(w, r) }

// PostRequest is the wire form of one post (or a batch).
type PostRequest struct {
	ID   int64   `json:"id"`
	Time int64   `json:"time"`
	Text string  `json:"text"`
	Refs []int64 `json:"refs,omitempty"`
}

func (s *Server) handlePosts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	dec := json.NewDecoder(r.Body)
	var posts []PostRequest
	// Accept either a single object or an array.
	var probe json.RawMessage
	if err := dec.Decode(&probe); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if strings.HasPrefix(strings.TrimSpace(string(probe)), "[") {
		if err := json.Unmarshal(probe, &posts); err != nil {
			httpError(w, http.StatusBadRequest, "invalid post array: %v", err)
			return
		}
	} else {
		var one PostRequest
		if err := json.Unmarshal(probe, &one); err != nil {
			httpError(w, http.StatusBadRequest, "invalid post: %v", err)
			return
		}
		posts = []PostRequest{one}
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	for _, p := range posts {
		err := s.st.Add(ksir.Post{ID: p.ID, Time: p.Time, Text: p.Text, Refs: p.Refs})
		if err != nil {
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]any{"accepted": len(posts)})
}

// FlushRequest advances the stream clock.
type FlushRequest struct {
	Now int64 `json:"now"`
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req FlushRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	if err := s.st.Flush(req.Now); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"active": s.st.Active(), "now": s.st.Now()})
}

// QueryRequest is the wire form of a k-SIR query.
type QueryRequest struct {
	K         int             `json:"k"`
	Keywords  []string        `json:"keywords,omitempty"`
	Vector    map[int]float64 `json:"vector,omitempty"`
	Epsilon   float64         `json:"epsilon,omitempty"`
	Algorithm string          `json:"algorithm,omitempty"` // mttd (default) | mtts | topk
	Explain   bool            `json:"explain,omitempty"`
}

// QueryResponse carries the result and optional explanations. Bucket is the
// ingested-bucket sequence number the query observed (snapshot visibility:
// all other fields are consistent with exactly that bucket).
type QueryResponse struct {
	Posts     []ksir.Post        `json:"posts"`
	Score     float64            `json:"score"`
	Evaluated int                `json:"evaluated"`
	Active    int                `json:"active"`
	Bucket    int64              `json:"bucket"`
	Explain   []ksir.Explanation `json:"explain,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	q := ksir.Query{K: req.K, Keywords: req.Keywords, Vector: req.Vector, Epsilon: req.Epsilon}
	switch strings.ToLower(req.Algorithm) {
	case "", "mttd":
		q.Algorithm = ksir.MTTD
	case "mtts":
		q.Algorithm = ksir.MTTS
	case "topk":
		q.Algorithm = ksir.TopK
	default:
		httpError(w, http.StatusBadRequest, "unknown algorithm %q", req.Algorithm)
		return
	}
	res, err := s.st.Query(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := QueryResponse{
		Posts:     res.Posts,
		Score:     res.Score,
		Evaluated: res.Evaluated,
		Active:    res.Active,
		Bucket:    res.Bucket,
	}
	if req.Explain {
		ex, err := s.st.Explain(res, q)
		if err == nil {
			resp.Explain = ex
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, map[string]any{
		"active":        s.st.Active(),
		"now":           s.st.Now(),
		"subscriptions": s.st.Subscriptions(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
