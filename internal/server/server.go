// Package server exposes a ksir.Hub over HTTP — the deployment shape §2
// motivates ("thousands of users could submit different queries at the
// same time and each query should be processed in real-time") widened to
// many named streams: per-stream writers ingest; any number of readers
// query concurrently; standing queries stream over SSE.
//
// The versioned surface (see api/v1 for the wire contract):
//
//	POST   /v1/streams                     create a stream
//	GET    /v1/streams                     list streams
//	DELETE /v1/streams/{name}              close a stream
//	POST   /v1/streams/{name}/posts       ingest one post or a batch → 202
//	POST   /v1/streams/{name}/flush       advance the stream clock
//	POST   /v1/streams/{name}/query       answer a k-SIR query
//	GET    /v1/streams/{name}/stats       configuration + counters
//	GET    /v1/streams/{name}/subscribe   standing query over SSE
//	POST   /v1/streams/{name}/checkpoint  force a durability checkpoint
//	GET    /healthz                        liveness
//	GET    /debug/traces                   recorded op traces (trace.go)
//
// Most routes run under the tracing middleware: an incoming W3C
// traceparent header is honored as the request's remote parent, the
// response echoes this hop's traceparent, and the recorded span tree is
// queryable at /debug/traces.
//
// Errors use the structured envelope {"error":{"code","message"}} with
// the typed ksir errors mapped to stable codes and status codes.
//
// The deprecated pre-/v1 routes (/posts, /flush, /query, /stats — thin
// aliases onto the stream named "default") have been removed; /v1 is the
// only wire surface. Single-tenant deployments keep working through New,
// which registers the wrapped stream as "default" and serves it at
// /v1/streams/default/....
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
)

// DefaultStream is the hub name New registers its wrapped stream under —
// the single-tenant deployment's one stream, served at
// /v1/streams/default/....
const DefaultStream = "default"

// Server is an http.Handler serving a Hub of streams. Ingestion is
// serialized per stream by the Hub's handles (the library owns the
// single-writer discipline now); queries take no lock at all — each pins
// the engine snapshot of the last ingested bucket, so query handlers run
// truly in parallel with each other and with ingestion (the response
// reports the observed bucket).
type Server struct {
	hub      *ksir.Hub
	model    *ksir.Model
	defaults ksir.Options
	sopts    []ksir.StreamOption
	h        *http.ServeMux
	// closing ends long-lived SSE connections during graceful shutdown
	// (see StopSubscriptions): SSE would otherwise hold http.Server.
	// Shutdown open until its deadline.
	closing   chan struct{}
	closeOnce sync.Once
	// sse is the per-stream SSE accounting (metrics.go). Kept on the
	// Server rather than the stream handle so the counters survive
	// hibernation/reactivation cycles.
	sseMu sync.Mutex
	sse   map[string]*sseCounters
	// logger receives per-request debug lines (trace.go); nil means
	// slog.Default() at call time.
	logger *slog.Logger
}

// New wraps a single stream, registered in a fresh Hub as "default" — the
// legacy single-tenant constructor. New streams created over /v1 share
// the wrapped stream's model and default options (λ inherited literally,
// so a λ=0 default stream seeds λ=0 tenants).
func New(st *ksir.Stream) *Server {
	hub := ksir.NewHub()
	if _, err := hub.Adopt(DefaultStream, st); err != nil {
		panic(err) // fresh hub, valid constant name: unreachable
	}
	return NewHub(hub, st.Model(), st.Options(), ksir.WithLambda(st.Options().Lambda))
}

// NewHub serves an existing Hub. model, defaults and sopts seed streams
// created over POST /v1/streams (request fields override them; pass
// ksir.WithLambda/ksir.WithShards here so wire-created streams inherit
// the deployment's tuning, λ=0 included).
func NewHub(hub *ksir.Hub, model *ksir.Model, defaults ksir.Options, sopts ...ksir.StreamOption) *Server {
	s := &Server{hub: hub, model: model, defaults: defaults, sopts: sopts,
		h: http.NewServeMux(), closing: make(chan struct{}),
		sse: make(map[string]*sseCounters)}

	// Versioned surface (method-qualified patterns; ServeMux answers 405
	// for a known path with the wrong method). Every route runs under the
	// per-route request counter and latency histogram (metrics.go).
	s.h.HandleFunc("POST /v1/streams", s.route("create_stream", s.handleCreateStream))
	s.h.HandleFunc("GET /v1/streams", s.route("list_streams", s.handleListStreams))
	s.h.HandleFunc("DELETE /v1/streams/{name}", s.route("close_stream", s.handleCloseStream))
	s.h.HandleFunc("POST /v1/streams/{name}/posts", s.route("posts", s.named(s.handlePosts)))
	s.h.HandleFunc("POST /v1/streams/{name}/flush", s.route("flush", s.named(s.handleFlush)))
	s.h.HandleFunc("POST /v1/streams/{name}/query", s.route("query", s.named(s.handleQuery)))
	s.h.HandleFunc("GET /v1/streams/{name}/stats", s.route("stats", s.named(s.handleStats)))
	s.h.HandleFunc("GET /v1/streams/{name}/subscribe", s.route("subscribe", s.named(s.handleSubscribe)))
	s.h.HandleFunc("POST /v1/streams/{name}/checkpoint", s.route("checkpoint", s.named(s.handleCheckpoint)))
	s.h.HandleFunc("POST /v1/streams/{name}/hibernate", s.route("hibernate", s.named(s.handleHibernate)))

	s.h.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	s.h.HandleFunc("GET /debug/traces", s.route("debug_traces", s.handleDebugTraces))
	s.h.HandleFunc("/healthz", s.route("healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	}))
	return s
}

// Hub returns the served hub (for embedding callers that also manage
// streams programmatically).
func (s *Server) Hub() *ksir.Hub { return s.hub }

// StopSubscriptions ends every live SSE connection with a final `closed`
// event. Call it at the start of a graceful shutdown, before
// http.Server.Shutdown: SSE connections never finish on their own, so
// without this the drain blocks until its deadline while ordinary
// in-flight requests are the ones the drain budget was meant for.
// Idempotent; new subscribe requests after the call end immediately.
func (s *Server) StopSubscriptions() { s.closeOnce.Do(func() { close(s.closing) }) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.h.ServeHTTP(w, r) }

// streamHandler is a route body operating on one resolved stream handle.
type streamHandler func(w http.ResponseWriter, r *http.Request, hs *ksir.StreamHandle)

// named resolves the {name} path segment into a hub handle.
func (s *Server) named(fn streamHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hs, err := s.hub.Get(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		fn(w, r, hs)
	}
}

func (s *Server) handlePosts(w http.ResponseWriter, r *http.Request, hs *ksir.StreamHandle) {
	var raw json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		httpError(w, http.StatusBadRequest, apiv1.CodeBadRequest, "invalid JSON: %v", err)
		return
	}
	// Accept either a single object or an array.
	var posts []apiv1.Post
	if strings.HasPrefix(strings.TrimSpace(string(raw)), "[") {
		if err := json.Unmarshal(raw, &posts); err != nil {
			httpError(w, http.StatusBadRequest, apiv1.CodeBadRequest, "invalid post array: %v", err)
			return
		}
	} else {
		var one apiv1.Post
		if err := json.Unmarshal(raw, &one); err != nil {
			httpError(w, http.StatusBadRequest, apiv1.CodeBadRequest, "invalid post: %v", err)
			return
		}
		posts = []apiv1.Post{one}
	}
	batch := make([]ksir.Post, len(posts))
	for i, p := range posts {
		batch[i] = ksir.Post{ID: p.ID, Time: p.Time, Text: p.Text, Refs: p.Refs}
	}
	if accepted, err := hs.AddBatchContext(r.Context(), batch); err != nil {
		// The accepted prefix stays in the stream; the envelope reports it
		// so clients resend from the rejected post, not the whole batch.
		code, status := apiv1.Classify(err)
		writeJSONStatus(w, status, apiv1.ErrorEnvelope{
			Err:      apiv1.ErrorBody{Code: code, Message: err.Error()},
			Accepted: &accepted,
		})
		return
	}
	writeJSONStatus(w, http.StatusAccepted, apiv1.AcceptedResponse{Accepted: len(posts)})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request, hs *ksir.StreamHandle) {
	var req apiv1.FlushRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, apiv1.CodeBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := hs.FlushContext(r.Context(), req.Now); err != nil {
		writeError(w, err)
		return
	}
	st := hs.Stats()
	writeJSON(w, apiv1.FlushResponse{Active: st.Active, Now: st.Now, Bucket: st.Bucket})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, hs *ksir.StreamHandle) {
	var req apiv1.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, apiv1.CodeBadRequest, "invalid JSON: %v", err)
		return
	}
	q, err := toQuery(req)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := hs.Query(r.Context(), q)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := toResponse(res)
	if req.Explain {
		if ex, err := hs.Explain(res, q); err == nil {
			resp.Explain = ex
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request, hs *ksir.StreamHandle) {
	writeJSON(w, s.streamInfo(hs))
}

// handleHibernate checkpoints the stream and releases its in-memory state
// (POST /v1/streams/{name}/hibernate). The stream stays registered and
// reactivates on its next post/query/subscription; 409 persist_disabled
// without -data-dir, 409 stream_busy while subscriptions are live.
func (s *Server) handleHibernate(w http.ResponseWriter, r *http.Request, hs *ksir.StreamHandle) {
	if err := hs.HibernateContext(r.Context()); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, s.streamInfo(hs))
}

// toQuery converts the wire query, folding parse failures into the typed
// taxonomy so they map to 400/bad_query.
func toQuery(req apiv1.QueryRequest) (ksir.Query, error) {
	q := ksir.Query{K: req.K, Keywords: req.Keywords, Vector: req.Vector, Epsilon: req.Epsilon}
	switch strings.ToLower(req.Algorithm) {
	case "", "mttd":
		q.Algorithm = ksir.MTTD
	case "mtts":
		q.Algorithm = ksir.MTTS
	case "topk":
		q.Algorithm = ksir.TopK
	default:
		return ksir.Query{}, fmt.Errorf("%w: unknown algorithm %q", ksir.ErrBadQuery, req.Algorithm)
	}
	return q, nil
}

// toResponse is the one place a ksir.Result becomes its wire form (shared
// by the query route and SSE refreshes, so the two cannot drift).
func toResponse(res ksir.Result) apiv1.QueryResponse {
	return apiv1.QueryResponse{
		Posts:     res.Posts,
		Score:     res.Score,
		Evaluated: res.Evaluated,
		Active:    res.Active,
		Bucket:    res.Bucket,
	}
}

func (s *Server) streamInfo(hs *ksir.StreamHandle) apiv1.StreamInfo {
	st := hs.Stats()
	opts := hs.Options() // residency-independent: hs.Stream() is nil while hibernated
	info := apiv1.StreamInfo{
		Name:          hs.Name(),
		Active:        st.Active,
		Now:           st.Now,
		Bucket:        st.Bucket,
		Subscriptions: st.Subscriptions,
		Elements:      st.Elements,
		WindowSec:     int64(opts.Window.Seconds()),
		BucketSec:     int64(opts.Bucket.Seconds()),
		Lambda:        opts.Lambda,
		Eta:           opts.Eta,
		State:         apiv1.StateResident,
	}
	if !st.Residency.Resident {
		info.State = apiv1.StateHibernated
	}
	info.Residency = &apiv1.ResidencyInfo{
		Hibernations:         st.Residency.Hibernations,
		Activations:          st.Residency.Activations,
		LastActivationUs:     st.Residency.LastActivation.Microseconds(),
		ResidentBytes:        st.Residency.ResidentBytes,
		PrefetchActivations:  st.Residency.PrefetchActivations,
		PrefetchHits:         st.Residency.PrefetchHits,
		PrefetchMisses:       st.Residency.PrefetchMisses,
		GhostHits:            st.Residency.GhostHits,
		SecondChanceSaves:    st.Residency.SecondChanceSaves,
		LazyMaterializations: st.Residency.LazyMaterializations,
	}
	if st.Persist.Enabled {
		info.Persist = &apiv1.PersistInfo{
			WALSeq:           st.Persist.WALSeq,
			WALBytes:         st.Persist.WALBytes,
			CheckpointBucket: st.Persist.CheckpointBucket,
			Checkpoints:      st.Persist.Checkpoints,
		}
	}
	info.Pipeline = &apiv1.PipelineInfo{
		QueueDepth:    st.Pipeline.QueueDepth,
		Ops:           st.Pipeline.Ops,
		Batches:       st.Pipeline.Batches,
		MeanBatchSize: st.Pipeline.MeanBatchSize(),
		Fsyncs:        st.Pipeline.Fsyncs,
		FsyncsPerOp:   st.Pipeline.FsyncsPerOp(),
	}
	info.SSE = &apiv1.SSEInfo{}
	if c := s.sseLookup(hs.Name()); c != nil {
		info.SSE.Subscribers = c.subscribers.Load()
		info.SSE.Dropped = c.dropped.Load()
	}
	return info
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

// writeJSONStatus writes a JSON body with a non-200 status; the header
// must be set before WriteHeader snapshots it.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps a typed library error onto the wire envelope. Context
// cancellations surface as 499-style client disconnects; there is no one
// to answer, so the status is best-effort.
func writeError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		httpError(w, http.StatusServiceUnavailable, apiv1.CodeInternal, "%v", err)
		return
	}
	code, status := apiv1.Classify(err)
	httpError(w, status, code, "%v", err)
}

func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiv1.ErrorEnvelope{Err: apiv1.ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
