package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
)

// handleCreateStream registers a new stream over the server's model.
// Unset fields inherit the server defaults; lambda is a pointer so λ=0
// (pure influence) is expressible on the wire.
func (s *Server) handleCreateStream(w http.ResponseWriter, r *http.Request) {
	var req apiv1.CreateStreamRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, apiv1.CodeBadRequest, "invalid JSON: %v", err)
		return
	}
	opts := s.defaults
	if req.WindowSec != 0 {
		opts.Window = time.Duration(req.WindowSec) * time.Second
	}
	if req.BucketSec != 0 {
		opts.Bucket = time.Duration(req.BucketSec) * time.Second
	}
	if req.Eta != 0 {
		opts.Eta = req.Eta
	}
	// Server-wide defaults first, request overrides last (a later
	// WithLambda wins).
	sopts := append([]ksir.StreamOption(nil), s.sopts...)
	if req.Lambda != nil {
		sopts = append(sopts, ksir.WithLambda(*req.Lambda))
	}
	hs, err := s.hub.Create(req.Name, s.model, opts, sopts...)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSONStatus(w, http.StatusCreated, s.streamInfo(hs))
}

func (s *Server) handleListStreams(w http.ResponseWriter, _ *http.Request) {
	resp := apiv1.ListStreamsResponse{Streams: []apiv1.StreamInfo{}}
	for _, name := range s.hub.List() {
		hs, err := s.hub.Get(name)
		if err != nil {
			continue // closed between List and Get
		}
		resp.Streams = append(resp.Streams, s.streamInfo(hs))
	}
	writeJSON(w, resp)
}

func (s *Server) handleCloseStream(w http.ResponseWriter, r *http.Request) {
	if err := s.hub.Close(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleCheckpoint forces an immediate checkpoint: the stream's full
// state is made durable and its WAL truncated. 409/persist_disabled on a
// server running without a data directory. The response is the stream's
// info just after the checkpoint (persist.checkpoint_bucket reflects it).
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request, hs *ksir.StreamHandle) {
	if _, err := hs.CheckpointContext(r.Context()); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, s.streamInfo(hs))
}

// sseBuffer is how many refreshes an SSE connection may fall behind
// before the oldest pending event is dropped (the latest state wins; a
// standing query is a state feed, not a log).
const sseBuffer = 32

// handleSubscribe registers a standing query and streams its refreshes as
// Server-Sent Events until the client disconnects. Parameters:
//
//	k        result size (required, > 0)
//	keywords comma- or space-separated query keywords (required)
//	every    refresh interval: Go duration ("90s") or integer seconds;
//	         default: the stream's bucket interval
//	only_changed  "true" suppresses refreshes with an unchanged result set
//	algorithm     mttd (default) | mtts | topk
//	epsilon       approximation knob ε
//
// Each event is `event: refresh` with `id:` and the body's "bucket" field
// carrying the bucket sequence the refresh observed.
//
// Resume: a reconnecting consumer presents the last bucket seq it saw via
// the standard SSE `Last-Event-ID` header (or a `last_event_id` query
// parameter for clients that cannot set headers). The server then (a)
// replays the current answer immediately as a catch-up refresh when
// buckets were ingested while the consumer was away, and (b) suppresses
// refreshes for buckets at or below the presented cursor, so a consumer
// that reconnects with the id of its last received event never sees a
// bucket twice.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request, hs *ksir.StreamHandle) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, apiv1.CodeInternal, "response writer does not support streaming")
		return
	}
	req, every, onlyChanged, err := parseSubscribeParams(r, hs)
	if err != nil {
		writeError(w, err)
		return
	}
	q, err := toQuery(req)
	if err != nil {
		writeError(w, err)
		return
	}
	// Resume cursor: -1 means a fresh subscription (bucket seqs start at
	// 1, so -1 never suppresses anything).
	sinceBucket := int64(-1)
	lei := r.Header.Get("Last-Event-ID")
	if lei == "" {
		lei = r.URL.Query().Get("last_event_id")
	}
	if lei != "" {
		v, perr := strconv.ParseInt(lei, 10, 64)
		if perr != nil || v < 0 {
			writeError(w, fmt.Errorf("%w: bad Last-Event-ID %q", ksir.ErrBadSubscription, lei))
			return
		}
		sinceBucket = v
	}
	// Pre-flight the standing query once: an unanswerable query (e.g.
	// keywords outside the model vocabulary) gets an immediate 400 here
	// instead of a 200 event stream that only ever heartbeats. On resume
	// the answer doubles as the catch-up refresh below.
	pre, err := hs.Query(r.Context(), q)
	if err != nil {
		writeError(w, err)
		return
	}

	// The subscription handler runs on the writer goroutine inside
	// Add/Flush; it must never block, so refreshes are handed to the SSE
	// loop through a bounded channel with drop-oldest overflow (deliverSSE,
	// metrics.go — each shed refresh is counted per stream and globally).
	events := make(chan apiv1.QueryResponse, sseBuffer)
	c := s.sseFor(hs.Name())
	deliver := func(res ksir.Result) {
		s.deliverSSE(c, events, toResponse(res))
	}
	var subOpts []ksir.SubscribeOption
	if onlyChanged {
		subOpts = append(subOpts, ksir.OnlyOnChange())
	}
	// Refresh failures are isolated per subscription by the library; for
	// the wire consumer they are invisible (the next successful refresh
	// supersedes), so the hook is only a debugging seam.
	sub, err := hs.Subscribe(r.Context(), q, every, deliver, subOpts...)
	if err != nil {
		writeError(w, err)
		return
	}
	defer hs.Unsubscribe(sub)
	// A consumer that drops off usually reconnects with its resume cursor
	// shortly after; the standing hint keeps the stream prefetch-eligible
	// across the gap so the resumed subscription finds it already hot
	// (no-op unless the hub runs a predictive prefetcher).
	defer hs.Prefetch()
	c.subscribers.Add(1)
	obsSSESubscribers.Inc()
	defer func() {
		c.subscribers.Add(-1)
		obsSSESubscribers.Dec()
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An immediate comment confirms the subscription is live before the
	// first bucket boundary.
	fmt.Fprintf(w, ": subscribed stream=%s k=%d every=%s\n\n", hs.Name(), q.K, every)
	flusher.Flush()

	// lastSent is the resume/duplicate filter: refreshes observe strictly
	// increasing bucket seqs (they fire at bucket boundaries), so anything
	// at or below it was already delivered — on this connection or the one
	// this consumer is resuming from.
	lastSent := sinceBucket
	if resp := toResponse(pre); sinceBucket >= 0 && resp.Bucket > sinceBucket {
		// Catch-up refresh: buckets were ingested while the consumer was
		// disconnected. Replay the current answer now instead of leaving
		// it stale until the next boundary fires.
		if data, merr := json.Marshal(resp); merr == nil {
			if _, err := fmt.Fprintf(w, "event: refresh\nid: %d\ndata: %s\n\n", resp.Bucket, data); err != nil {
				return
			}
			flusher.Flush()
			lastSent = resp.Bucket
		}
	}

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			// Graceful server shutdown: end the event stream now so the
			// HTTP drain only waits on ordinary in-flight requests.
			fmt.Fprint(w, "event: closed\ndata: {}\n\n")
			flusher.Flush()
			return
		case <-hs.Done():
			// The stream was closed out of the hub: tell the consumer and
			// end the event stream instead of heartbeating forever.
			fmt.Fprint(w, "event: closed\ndata: {}\n\n")
			flusher.Flush()
			return
		case <-heartbeat.C:
			// Comment line: keeps proxies from idling the connection out.
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev := <-events:
			if ev.Bucket <= lastSent {
				// Already delivered (the catch-up refresh, or an event the
				// consumer received before reconnecting): a resume must
				// not duplicate refreshes.
				continue
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: refresh\nid: %d\ndata: %s\n\n", ev.Bucket, data); err != nil {
				return
			}
			flusher.Flush()
			lastSent = ev.Bucket
		}
	}
}

func parseSubscribeParams(r *http.Request, hs *ksir.StreamHandle) (req apiv1.QueryRequest, every time.Duration, onlyChanged bool, err error) {
	qs := r.URL.Query()
	k, err := strconv.Atoi(qs.Get("k"))
	if err != nil {
		return req, 0, false, fmt.Errorf("%w: k must be an integer, got %q", ksir.ErrBadSubscription, qs.Get("k"))
	}
	req.K = k
	req.Keywords = strings.FieldsFunc(qs.Get("keywords"), func(r rune) bool {
		return r == ',' || r == ' '
	})
	req.Algorithm = qs.Get("algorithm")
	if eps := qs.Get("epsilon"); eps != "" {
		req.Epsilon, err = strconv.ParseFloat(eps, 64)
		if err != nil {
			return req, 0, false, fmt.Errorf("%w: bad epsilon %q", ksir.ErrBadSubscription, eps)
		}
	}
	every = hs.Options().Bucket
	if ev := qs.Get("every"); ev != "" {
		if d, derr := time.ParseDuration(ev); derr == nil {
			every = d
		} else if sec, serr := strconv.Atoi(ev); serr == nil {
			every = time.Duration(sec) * time.Second
		} else {
			return req, 0, false, fmt.Errorf("%w: bad refresh interval %q", ksir.ErrBadSubscription, ev)
		}
	}
	onlyChanged = qs.Get("only_changed") == "true" || qs.Get("only_changed") == "1"
	return req, every, onlyChanged, nil
}
