package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
)

// durableServer builds a server over a durable hub rooted at dir.
func durableServer(t *testing.T, dir string, m *ksir.Model) (*httptest.Server, *ksir.Hub) {
	t.Helper()
	hub, err := ksir.OpenHub(dir, m, ksir.PersistOptions{Fsync: ksir.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHub(hub, m, ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}))
	t.Cleanup(srv.Close)
	return srv, hub
}

// The wire-level restart story: create a stream over /v1, ingest, crash
// the server process (hub abandoned), boot a new server over the same
// data directory — the stream is back with identical query answers and
// bucket sequence, and stats carry the persistence block.
func TestServerRecoversStreamsAcrossRestart(t *testing.T) {
	st := testStream(t)
	m := st.Model()
	dir := t.TempDir()
	srv, _ := durableServer(t, dir, m)

	resp, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/streams", apiv1.CreateStreamRequest{Name: "feed"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d", resp.StatusCode)
	}
	for i := 0; i < 30; i++ {
		post := apiv1.Post{ID: int64(i + 1), Time: int64(30 * (i + 1)), Text: "late goal wins the derby"}
		if resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/streams/feed/posts", post); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("post %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	query := apiv1.QueryRequest{K: 5, Keywords: []string{"goal", "striker"}}
	var before apiv1.QueryResponse
	if resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/streams/feed/query", query); resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d: %s", resp.StatusCode, body)
	} else if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}

	// "Crash": the first hub is never closed; boot a second server.
	srv2, hub2 := durableServer(t, dir, m)
	defer hub2.CloseAll()
	var after apiv1.QueryResponse
	if resp, body := doJSON(t, http.MethodPost, srv2.URL+"/v1/streams/feed/query", query); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart query = %d: %s", resp.StatusCode, body)
	} else if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Posts, before.Posts) || after.Bucket != before.Bucket {
		t.Errorf("post-restart answer diverges:\n got %+v\nwant %+v", after, before)
	}

	resp, body := doJSON(t, http.MethodGet, srv2.URL+"/v1/streams/feed/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var info apiv1.StreamInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Persist == nil {
		t.Fatal("stats missing persist block on a durable server")
	}
	if info.Persist.WALSeq == 0 {
		t.Error("recovered WALSeq = 0, want the pre-crash watermark")
	}
}

// POST /v1/streams/{name}/checkpoint forces a checkpoint (WAL truncates,
// counters advance); on a memoryless hub it answers 409/persist_disabled.
func TestCheckpointEndpoint(t *testing.T) {
	st := testStream(t)
	m := st.Model()
	srv, hub := durableServer(t, t.TempDir(), m)
	defer hub.CloseAll()

	doJSON(t, http.MethodPost, srv.URL+"/v1/streams", apiv1.CreateStreamRequest{Name: "feed"})
	for i := 0; i < 5; i++ {
		doJSON(t, http.MethodPost, srv.URL+"/v1/streams/feed/posts",
			apiv1.Post{ID: int64(i + 1), Time: int64(90 * (i + 1)), Text: "dunk rebound court"})
	}
	resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/streams/feed/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint = %d: %s", resp.StatusCode, body)
	}
	var info apiv1.StreamInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Persist == nil || info.Persist.Checkpoints != 1 || info.Persist.WALBytes != 0 {
		t.Errorf("checkpoint info = %+v, want 1 checkpoint and an empty WAL", info.Persist)
	}
	if info.Persist != nil && info.Persist.CheckpointBucket != info.Bucket {
		t.Errorf("checkpoint covers bucket %d, stream at %d", info.Persist.CheckpointBucket, info.Bucket)
	}

	// Unknown stream: 404 before touching persistence.
	if resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/streams/nope/checkpoint", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("checkpoint on unknown stream = %d: %s", resp.StatusCode, body)
	}

	// In-memory server: typed 409.
	plain := httptest.NewServer(New(testStream(t)))
	defer plain.Close()
	resp, body = doJSON(t, http.MethodPost, plain.URL+"/v1/streams/default/checkpoint", nil)
	if resp.StatusCode != http.StatusConflict || errCode(t, body) != apiv1.CodePersistDisabled {
		t.Errorf("checkpoint without -data-dir = %d %s, want 409 %s", resp.StatusCode, body, apiv1.CodePersistDisabled)
	}
}

// A server-crashed stream with standing SSE state recovers cleanly and
// keeps serving; DELETE on the durable server checkpoints and keeps the
// on-disk state for the next boot.
func TestServerCloseKeepsDurableState(t *testing.T) {
	st := testStream(t)
	m := st.Model()
	dir := t.TempDir()
	srv, hub := durableServer(t, dir, m)

	doJSON(t, http.MethodPost, srv.URL+"/v1/streams", apiv1.CreateStreamRequest{Name: "feed"})
	for i := 0; i < 10; i++ {
		doJSON(t, http.MethodPost, srv.URL+"/v1/streams/feed/posts",
			apiv1.Post{ID: int64(i + 1), Time: int64(75 * (i + 1)), Text: fmt.Sprintf("penalty league %d", i)})
	}
	if resp, body := doJSON(t, http.MethodPost, srv.URL+"/v1/streams/feed/flush", apiv1.FlushRequest{Now: 800}); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush = %d: %s", resp.StatusCode, body)
	}
	if resp, body := doJSON(t, http.MethodDelete, srv.URL+"/v1/streams/feed", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d: %s", resp.StatusCode, body)
	}
	_ = hub // the deleted stream's WAL/checkpoint remain on disk

	srv2, hub2 := durableServer(t, dir, m)
	defer hub2.CloseAll()
	resp, body := doJSON(t, http.MethodGet, srv2.URL+"/v1/streams/feed/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after reboot = %d: %s", resp.StatusCode, body)
	}
	var info apiv1.StreamInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Elements != 10 {
		t.Errorf("recovered elements = %d, want 10", info.Elements)
	}
}

// StopSubscriptions ends live SSE connections with a closed event so the
// graceful-shutdown HTTP drain only waits on ordinary requests.
func TestStopSubscriptionsEndsSSE(t *testing.T) {
	st := testStream(t)
	hub := ksir.NewHub()
	if _, err := hub.Adopt("feed", st); err != nil {
		t.Fatal(err)
	}
	s := NewHub(hub, st.Model(), st.Options())
	srv := httptest.NewServer(s)
	defer srv.Close()

	hs, err := hub.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Add(ksir.Post{ID: 1, Time: 60, Text: "late goal wins the derby"}); err != nil {
		t.Fatal(err)
	}
	if err := hs.Flush(120); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/streams/feed/subscribe?k=1&keywords=goal")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe = %d", resp.StatusCode)
	}
	r := bufio.NewReader(resp.Body)
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, ": subscribed") {
		t.Fatalf("preamble = %q, %v", line, err)
	}

	s.StopSubscriptions()
	s.StopSubscriptions() // idempotent
	deadline := time.AfterFunc(5*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("connection ended without a closed event: %v", err)
		}
		if strings.HasPrefix(line, "event: closed") {
			return
		}
	}
}
