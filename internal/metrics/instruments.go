package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The cell holds raw units
// (e.g. nanoseconds for a duration counter); scale converts to the exposed
// unit at scrape time so the hot path never touches floats.
type Counter struct {
	name   string
	help   string
	scale  float64
	labels []Label
	v      atomic.Uint64
}

// NewCounter registers a counter in the default registry. By convention the
// name ends in _total.
func NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help, scale: 1}
	Default().MustRegister(c)
	return c
}

// NewDurationCounter registers a counter that accumulates nanoseconds and
// exposes seconds. By convention the name ends in _seconds_total.
func NewDurationCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help, scale: 1e-9}
	Default().MustRegister(c)
	return c
}

// Inc adds 1.
func (c *Counter) Inc() {
	if !on() {
		return
	}
	c.v.Add(1)
}

// Add adds n raw units.
func (c *Counter) Add(n uint64) {
	if !on() {
		return
	}
	c.v.Add(n)
}

// AddDuration adds d to a duration counter.
func (c *Counter) AddDuration(d time.Duration) {
	if !on() {
		return
	}
	if d < 0 {
		d = 0
	}
	c.v.Add(uint64(d))
}

// Value returns the raw (unscaled) cell value.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FamilyName implements Metric.
func (c *Counter) FamilyName() string { return c.name }

func (c *Counter) expose(w *Writer) {
	w.Family(c.name, c.help, "counter")
	w.Sample(c.name, float64(c.v.Load())*c.scale, c.labels...)
}

// Gauge is a value that can go up and down (resident bytes, in-flight
// requests, pinned snapshots).
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	Default().MustRegister(g)
	return g
}

// Inc adds 1.
func (g *Gauge) Inc() {
	if !on() {
		return
	}
	g.v.Add(1)
}

// Dec subtracts 1.
func (g *Gauge) Dec() {
	if !on() {
		return
	}
	g.v.Add(-1)
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if !on() {
		return
	}
	g.v.Add(n)
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if !on() {
		return
	}
	g.v.Store(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FamilyName implements Metric.
func (g *Gauge) FamilyName() string { return g.name }

func (g *Gauge) expose(w *Writer) {
	w.Family(g.name, g.help, "gauge")
	w.Sample(g.name, float64(g.v.Load()))
}

// GaugeFunc is a gauge whose value is computed at scrape time. The callback
// must be cheap and must not block on the hot path's locks.
type GaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// NewGaugeFunc registers a scrape-time gauge in the default registry.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	Default().MustRegister(g)
	return g
}

// FamilyName implements Metric.
func (g *GaugeFunc) FamilyName() string { return g.name }

func (g *GaugeFunc) expose(w *Writer) {
	w.Family(g.name, g.help, "gauge")
	w.Sample(g.name, g.fn())
}

// Histogram is a fixed-bucket distribution. Bounds are raw units sorted
// ascending (each bucket is ≤ bound); one extra cell catches +Inf. Observe
// is a linear scan over at most ~16 bounds plus three atomic adds — no
// locks, no allocation, no floats.
type Histogram struct {
	name   string
	help   string
	scale  float64
	bounds []uint64
	labels []Label
	cells  []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // raw units
}

func newHistogram(name, help string, scale float64, bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not strictly ascending", name))
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		scale:  scale,
		bounds: bounds,
		cells:  make([]atomic.Uint64, len(bounds)+1),
	}
}

// NewHistogram registers a histogram over raw-unit bounds (scale converts
// raw units to the exposed unit at scrape time).
func NewHistogram(name, help string, scale float64, bounds []uint64) *Histogram {
	h := newHistogram(name, help, scale, bounds)
	Default().MustRegister(h)
	return h
}

// NewDurationHistogram registers a latency histogram: cells count
// nanoseconds, exposition is seconds. By convention the name ends in
// _seconds.
func NewDurationHistogram(name, help string, bounds ...time.Duration) *Histogram {
	raw := make([]uint64, len(bounds))
	for i, b := range bounds {
		raw[i] = uint64(b)
	}
	h := newHistogram(name, help, 1e-9, raw)
	Default().MustRegister(h)
	return h
}

// DefBuckets is the default latency ladder: 50µs to ~3.3s, ×2 per step.
// Wide enough for activation tails and fsync stalls, fine enough at the
// bottom for lock-free query descents.
var DefBuckets = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 200 * time.Microsecond,
	400 * time.Microsecond, 800 * time.Microsecond,
	1600 * time.Microsecond, 3200 * time.Microsecond, 6400 * time.Microsecond,
	12800 * time.Microsecond, 25600 * time.Microsecond, 51200 * time.Microsecond,
	102400 * time.Microsecond, 204800 * time.Microsecond, 409600 * time.Microsecond,
	819200 * time.Microsecond, 1638400 * time.Microsecond, 3276800 * time.Microsecond,
}

// Observe records one raw-unit observation.
func (h *Histogram) Observe(raw uint64) {
	if !on() {
		return
	}
	i := 0
	for i < len(h.bounds) && raw > h.bounds[i] {
		i++
	}
	h.cells[i].Add(1)
	h.count.Add(1)
	h.sum.Add(raw)
}

// ObserveDuration records one duration observation.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// ObserveSince records time.Since(start).
func (h *Histogram) ObserveSince(start time.Time) {
	h.ObserveDuration(time.Since(start))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// FamilyName implements Metric.
func (h *Histogram) FamilyName() string { return h.name }

func (h *Histogram) expose(w *Writer) {
	w.Family(h.name, h.help, "histogram")
	h.exposeSamples(w)
}

// exposeSamples writes the cumulative bucket/sum/count lines (shared with
// HistogramVec, which writes the family header once for all children).
func (h *Histogram) exposeSamples(w *Writer) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.cells[i].Load()
		w.Bucket(h.name, formatValue(float64(b)*h.scale), float64(cum), h.labels...)
	}
	cum += h.cells[len(h.bounds)].Load()
	w.Bucket(h.name, "+Inf", float64(cum), h.labels...)
	w.Sample(h.name+"_sum", float64(h.sum.Load())*h.scale, h.labels...)
	w.Sample(h.name+"_count", float64(h.count.Load()), h.labels...)
}

// CounterVec is a counter family with one label whose values are fixed at
// registration; With returns the pre-built child, so labeled recording is
// as cheap as unlabeled.
type CounterVec struct {
	name     string
	help     string
	label    string
	children []*Counter
	index    map[string]*Counter
}

// NewCounterVec registers a counter family keyed by one label with a fixed
// value set.
func NewCounterVec(name, help, label string, values ...string) *CounterVec {
	mustCheckName(label)
	if len(values) == 0 {
		panic(fmt.Sprintf("metrics: counter vec %s needs at least one label value", name))
	}
	v := &CounterVec{name: name, help: help, label: label, index: make(map[string]*Counter, len(values))}
	for _, val := range values {
		if _, dup := v.index[val]; dup {
			panic(fmt.Sprintf("metrics: counter vec %s duplicate label value %q", name, val))
		}
		c := &Counter{name: name, help: help, scale: 1, labels: []Label{{label, val}}}
		v.children = append(v.children, c)
		v.index[val] = c
	}
	Default().MustRegister(v)
	return v
}

// With returns the child for a registered label value, panicking on an
// unknown one (fixed cardinality is the contract).
func (v *CounterVec) With(value string) *Counter {
	c, ok := v.index[value]
	if !ok {
		panic(fmt.Sprintf("metrics: counter vec %s has no label value %q", v.name, value))
	}
	return c
}

// FamilyName implements Metric.
func (v *CounterVec) FamilyName() string { return v.name }

func (v *CounterVec) expose(w *Writer) {
	w.Family(v.name, v.help, "counter")
	for _, c := range v.children {
		w.Sample(c.name, float64(c.v.Load())*c.scale, c.labels...)
	}
}

// HistogramVec is a histogram family with one fixed-value label; all
// children share the same bounds.
type HistogramVec struct {
	name     string
	help     string
	label    string
	children []*Histogram
	index    map[string]*Histogram
}

// NewDurationHistogramVec registers a latency histogram family keyed by one
// label with a fixed value set.
func NewDurationHistogramVec(name, help, label string, values []string, bounds ...time.Duration) *HistogramVec {
	mustCheckName(label)
	if len(values) == 0 {
		panic(fmt.Sprintf("metrics: histogram vec %s needs at least one label value", name))
	}
	raw := make([]uint64, len(bounds))
	for i, b := range bounds {
		raw[i] = uint64(b)
	}
	v := &HistogramVec{name: name, help: help, label: label, index: make(map[string]*Histogram, len(values))}
	for _, val := range values {
		if _, dup := v.index[val]; dup {
			panic(fmt.Sprintf("metrics: histogram vec %s duplicate label value %q", name, val))
		}
		h := newHistogram(name, help, 1e-9, raw)
		h.labels = []Label{{label, val}}
		v.children = append(v.children, h)
		v.index[val] = h
	}
	Default().MustRegister(v)
	return v
}

// With returns the child for a registered label value, panicking on an
// unknown one.
func (v *HistogramVec) With(value string) *Histogram {
	h, ok := v.index[value]
	if !ok {
		panic(fmt.Sprintf("metrics: histogram vec %s has no label value %q", v.name, value))
	}
	return h
}

// FamilyName implements Metric.
func (v *HistogramVec) FamilyName() string { return v.name }

func (v *HistogramVec) expose(w *Writer) {
	w.Family(v.name, v.help, "histogram")
	for _, h := range v.children {
		h.exposeSamples(w)
	}
}
