package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name/value pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Collector emits extra samples at scrape time — this is how dynamic-label
// series (per-stream roll-ups) join the exposition without any hot-path
// label machinery. A collector must write complete families: Family header
// first, then its samples, and must not reuse a registered family name.
type Collector func(*Writer)

// Writer assembles a Prometheus text-format exposition.
type Writer struct {
	b   *bufio.Writer
	err error
}

// NewWriter wraps w for text-format output.
func NewWriter(w io.Writer) *Writer {
	return &Writer{b: bufio.NewWriter(w)}
}

// Family writes the # HELP and # TYPE header for a family.
func (w *Writer) Family(name, help, typ string) {
	w.str("# HELP ")
	w.str(name)
	w.str(" ")
	w.str(escapeHelp(help))
	w.str("\n# TYPE ")
	w.str(name)
	w.str(" ")
	w.str(typ)
	w.str("\n")
}

// Sample writes one sample line: name{labels} value.
func (w *Writer) Sample(name string, value float64, labels ...Label) {
	w.str(name)
	w.labelSet(labels, "", "")
	w.str(" ")
	w.str(formatValue(value))
	w.str("\n")
}

// Bucket writes one cumulative histogram bucket line:
// name_bucket{labels,le="bound"} value.
func (w *Writer) Bucket(name, le string, value float64, labels ...Label) {
	w.str(name)
	w.str("_bucket")
	w.labelSet(labels, "le", le)
	w.str(" ")
	w.str(formatValue(value))
	w.str("\n")
}

func (w *Writer) labelSet(labels []Label, extraName, extraValue string) {
	if len(labels) == 0 && extraName == "" {
		return
	}
	w.str("{")
	for i, l := range labels {
		if i > 0 {
			w.str(",")
		}
		w.str(l.Name)
		w.str(`="`)
		w.str(escapeValue(l.Value))
		w.str(`"`)
	}
	if extraName != "" {
		if len(labels) > 0 {
			w.str(",")
		}
		w.str(extraName)
		w.str(`="`)
		w.str(escapeValue(extraValue))
		w.str(`"`)
	}
	w.str("}")
}

func (w *Writer) str(s string) {
	if w.err != nil {
		return
	}
	_, w.err = w.b.WriteString(s)
}

// flush drains the buffer and returns the first write error.
func (w *Writer) flush() error {
	if w.err != nil {
		return w.err
	}
	return w.b.Flush()
}

// WriteText writes the registry's families plus any scrape-time collectors
// as Prometheus text format 0.0.4.
func (r *Registry) WriteText(out io.Writer, collectors ...Collector) error {
	w := NewWriter(out)
	for _, m := range r.families() {
		m.expose(w)
	}
	for _, c := range collectors {
		if c != nil {
			c(w)
		}
	}
	return w.flush()
}

// Handler serves the registry (plus collectors) over HTTP with the
// Prometheus text content type.
func (r *Registry) Handler(collectors ...Collector) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.Header().Set("Content-Type", ContentType)
		_ = r.WriteText(rw, collectors...)
	})
}

// formatValue renders a sample value: integers without a decimal point,
// everything else in shortest-roundtrip form, +Inf/-Inf/NaN per the text
// format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var valueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeValue escapes a label value (backslash, double quote, newline).
func escapeValue(s string) string { return valueEscaper.Replace(s) }
