// Package metrics is the observability subsystem's instrument registry: a
// stdlib-only implementation of counters, gauges and fixed-bucket
// histograms with Prometheus text-format exposition (DESIGN.md §12).
//
// Design constraints, in order:
//
//   - Hot-path recording must be wait-free and allocation-free: every
//     instrument is a fixed set of atomic.Uint64 cells allocated once at
//     registration; Observe/Inc/Add are a bounds scan plus 1–3 atomic
//     adds, with no locks, no maps and no time formatting.
//   - Label cardinality is fixed at registration: a vec instrument
//     (CounterVec, HistogramVec) declares its label values up front and
//     hands out pre-built children, so the hot path never consults a
//     label→child map. Dynamic labels (per-stream series) are emitted by
//     scrape-time Collectors instead, where the cost lands on the scraper
//     rather than the ingest path.
//   - Exposition is Prometheus text format version 0.0.4: families sorted
//     by name, HELP/TYPE headers, cumulative le buckets, +Inf, _sum and
//     _count — scrapeable by a stock Prometheus server.
//
// Instruments register themselves in the package-default registry at
// construction, which is why every call site declares them as package-level
// vars: one process exposes one aggregate metric surface, however many hubs
// or streams it runs (per-stream breakdowns are labeled collector series,
// see internal/server). Disable/Enable flip recording globally — the
// instrumented-vs-uninstrumented pair of the `engine` benchmark measures
// the recording cost with exactly this switch.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates every recording call. Recording is on by default; Disable
// exists for the hot-path overhead benchmark (and is process-global, like
// the registry).
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enable turns metric recording on (the default).
func Enable() { enabled.Store(true) }

// Disable turns metric recording off: every Inc/Add/Observe returns after
// one atomic load, leaving all cells frozen. Exposition still works.
func Disable() { enabled.Store(false) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// on is the hot-path guard.
func on() bool { return enabled.Load() }

// Metric is one registered instrument family.
type Metric interface {
	// FamilyName is the Prometheus family name (unique per registry).
	FamilyName() string
	// expose writes the family's HELP/TYPE header and samples.
	expose(w *Writer)
}

// Registry holds instrument families and writes them out in text format.
type Registry struct {
	mu      sync.Mutex
	metrics []Metric
	names   map[string]struct{}
}

// NewRegistry returns an empty registry. Most callers use Default instead:
// instruments constructed with the package New* helpers register there.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the New* constructors register
// into.
func Default() *Registry { return defaultRegistry }

// Register adds a family, rejecting duplicate names.
func (r *Registry) Register(m Metric) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := m.FamilyName()
	if err := checkName(name); err != nil {
		return err
	}
	if _, dup := r.names[name]; dup {
		return fmt.Errorf("metrics: duplicate family %q", name)
	}
	r.names[name] = struct{}{}
	r.metrics = append(r.metrics, m)
	return nil
}

// MustRegister is Register, panicking on error. Instrument construction
// happens in package var initializers, where a duplicate or invalid name is
// a programming error caught by any test that imports the package.
func (r *Registry) MustRegister(m Metric) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// families snapshots the registered metrics sorted by family name, so the
// exposition is deterministic regardless of package-init order.
func (r *Registry) families() []Metric {
	r.mu.Lock()
	out := append([]Metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].FamilyName() < out[j].FamilyName() })
	return out
}

// checkName validates a Prometheus metric or label name.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("metrics: empty name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("metrics: invalid name %q", name)
		}
	}
	return nil
}

// mustCheckName panics on an invalid name (constructor-time validation).
func mustCheckName(name string) {
	if err := checkName(name); err != nil {
		panic(err)
	}
}
