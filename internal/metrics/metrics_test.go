package metrics

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func expoString(t *testing.T, r *Registry, collectors ...Collector) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb, collectors...); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return sb.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := &Counter{name: "test_ops_total", help: "Ops applied.", scale: 1}
	r.MustRegister(c)
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("value = %d, want 42", c.Value())
	}
	got := expoString(t, r)
	want := "# HELP test_ops_total Ops applied.\n# TYPE test_ops_total counter\ntest_ops_total 42\n"
	if got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestDurationCounterScaling(t *testing.T) {
	r := NewRegistry()
	c := &Counter{name: "test_busy_seconds_total", help: "Busy time.", scale: 1e-9}
	r.MustRegister(c)
	c.AddDuration(1500 * time.Millisecond)
	got := expoString(t, r)
	if !strings.Contains(got, "test_busy_seconds_total 1.5\n") {
		t.Fatalf("want 1.5s sample, got:\n%s", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := &Gauge{name: "test_in_flight", help: "In flight."}
	r.MustRegister(g)
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(10)
	if g.Value() != 11 {
		t.Fatalf("value = %d, want 11", g.Value())
	}
	g.Set(-3)
	got := expoString(t, r)
	if !strings.Contains(got, "# TYPE test_in_flight gauge\ntest_in_flight -3\n") {
		t.Fatalf("gauge exposition wrong:\n%s", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	g := &GaugeFunc{name: "test_resident", help: "Resident.", fn: func() float64 { return 7 }}
	r.MustRegister(g)
	if got := expoString(t, r); !strings.Contains(got, "test_resident 7\n") {
		t.Fatalf("gauge func exposition wrong:\n%s", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := newHistogram("test_latency_seconds", "Latency.", 1e-9,
		[]uint64{uint64(time.Millisecond), uint64(10 * time.Millisecond)})
	r.MustRegister(h)
	h.ObserveDuration(500 * time.Microsecond) // bucket 0
	h.ObserveDuration(time.Millisecond)       // bucket 0 (le is inclusive)
	h.ObserveDuration(5 * time.Millisecond)   // bucket 1
	h.ObserveDuration(time.Second)            // +Inf
	got := expoString(t, r)
	for _, line := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.001"} 2`,
		`test_latency_seconds_bucket{le="0.01"} 3`,
		`test_latency_seconds_bucket{le="+Inf"} 4`,
		"test_latency_seconds_count 4",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, got)
		}
	}
	// sum = 0.5ms + 1ms + 5ms + 1000ms = 1.0065s
	if !strings.Contains(got, "test_latency_seconds_sum 1.0065") {
		t.Fatalf("missing sum in:\n%s", got)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	for _, bounds := range [][]uint64{{}, {10, 10}, {10, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v: want panic", bounds)
				}
			}()
			newHistogram("test_bad", "x", 1, bounds)
		}()
	}
}

func TestVecs(t *testing.T) {
	r := NewRegistry()
	cv := &CounterVec{name: "test_requests_total", help: "Requests.", label: "route",
		index: map[string]*Counter{}}
	for _, route := range []string{"query", "add"} {
		c := &Counter{name: cv.name, help: cv.help, scale: 1, labels: []Label{{"route", route}}}
		cv.children = append(cv.children, c)
		cv.index[route] = c
	}
	r.MustRegister(cv)
	cv.With("query").Add(3)
	cv.With("add").Inc()
	got := expoString(t, r)
	if !strings.Contains(got, `test_requests_total{route="query"} 3`+"\n") ||
		!strings.Contains(got, `test_requests_total{route="add"} 1`+"\n") {
		t.Fatalf("vec exposition wrong:\n%s", got)
	}
	if n := strings.Count(got, "# TYPE test_requests_total"); n != 1 {
		t.Fatalf("TYPE header written %d times, want 1:\n%s", n, got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("With(unknown) should panic")
		}
	}()
	cv.With("nope")
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	hv := &HistogramVec{name: "test_q_seconds", help: "Q.", label: "algorithm",
		index: map[string]*Histogram{}}
	for _, alg := range []string{"MTTS", "MTTD"} {
		h := newHistogram(hv.name, hv.help, 1e-9, []uint64{uint64(time.Millisecond)})
		h.labels = []Label{{"algorithm", alg}}
		hv.children = append(hv.children, h)
		hv.index[alg] = h
	}
	r.MustRegister(hv)
	hv.With("MTTS").ObserveDuration(2 * time.Millisecond)
	got := expoString(t, r)
	for _, line := range []string{
		`test_q_seconds_bucket{algorithm="MTTS",le="0.001"} 0`,
		`test_q_seconds_bucket{algorithm="MTTS",le="+Inf"} 1`,
		`test_q_seconds_count{algorithm="MTTS"} 1`,
		`test_q_seconds_count{algorithm="MTTD"} 0`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, got)
		}
	}
}

func TestDisableFreezesRecording(t *testing.T) {
	r := NewRegistry()
	c := &Counter{name: "test_frozen_total", help: "x", scale: 1}
	h := newHistogram("test_frozen_seconds", "x", 1e-9, []uint64{uint64(time.Millisecond)})
	r.MustRegister(c)
	r.MustRegister(h)
	c.Inc()
	Disable()
	defer Enable()
	if Enabled() {
		t.Fatal("Enabled() after Disable()")
	}
	c.Inc()
	c.Add(100)
	h.ObserveDuration(time.Millisecond)
	if c.Value() != 1 || h.Count() != 0 {
		t.Fatalf("recording not frozen: counter=%d hist=%d", c.Value(), h.Count())
	}
	Enable()
	c.Inc()
	if c.Value() != 2 {
		t.Fatalf("recording not resumed: counter=%d", c.Value())
	}
}

func TestRegistryDuplicateAndInvalidNames(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&Counter{name: "dup_total", scale: 1}); err != nil {
		t.Fatalf("first register: %v", err)
	}
	if err := r.Register(&Counter{name: "dup_total", scale: 1}); err == nil {
		t.Fatal("duplicate register should fail")
	}
	for _, bad := range []string{"", "9lead", "has space", "dash-ed"} {
		if err := r.Register(&Counter{name: bad, scale: 1}); err == nil {
			t.Fatalf("invalid name %q accepted", bad)
		}
	}
}

func TestFamiliesSortedAndCollectorAppended(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&Counter{name: "zz_total", help: "z", scale: 1})
	r.MustRegister(&Counter{name: "aa_total", help: "a", scale: 1})
	got := expoString(t, r, func(w *Writer) {
		w.Family("dyn_bytes", "Dynamic.", "gauge")
		w.Sample("dyn_bytes", 5, Label{"stream", `we"ird\name`})
	})
	if strings.Index(got, "aa_total") > strings.Index(got, "zz_total") {
		t.Fatalf("families not sorted:\n%s", got)
	}
	if !strings.Contains(got, `dyn_bytes{stream="we\"ird\\name"} 5`+"\n") {
		t.Fatalf("collector sample or escaping wrong:\n%s", got)
	}
	if strings.Index(got, "dyn_bytes") < strings.Index(got, "zz_total") {
		t.Fatalf("collector families must come after registry families:\n%s", got)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&Counter{name: "test_h_total", help: "h", scale: 1})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q, want %q", ct, ContentType)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		-3:      "-3",
		1.5:     "1.5",
		0.00005: "5e-05",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestDefaultRegistryConstructors(t *testing.T) {
	// Constructors register into Default; just exercise each once with
	// unique names and confirm they show up in the default exposition.
	c := NewCounter("test_defreg_ops_total", "x")
	d := NewDurationCounter("test_defreg_busy_seconds_total", "x")
	g := NewGauge("test_defreg_gauge", "x")
	NewGaugeFunc("test_defreg_fn", "x", func() float64 { return 1 })
	h := NewDurationHistogram("test_defreg_seconds", "x", DefBuckets...)
	cv := NewCounterVec("test_defreg_vec_total", "x", "kind", "a", "b")
	hv := NewDurationHistogramVec("test_defreg_vec_seconds", "x", "kind", []string{"a"}, DefBuckets...)
	c.Inc()
	d.AddDuration(time.Millisecond)
	g.Set(2)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	cv.With("a").Inc()
	hv.With("a").ObserveDuration(time.Millisecond)
	got := expoString(t, Default())
	for _, name := range []string{
		"test_defreg_ops_total 1", "test_defreg_gauge 2", "test_defreg_fn 1",
		`test_defreg_vec_total{kind="a"} 1`, `test_defreg_vec_seconds_count{kind="a"} 1`,
		"test_defreg_seconds_count 1",
	} {
		if !strings.Contains(got, name+"\n") {
			t.Fatalf("missing %q in default exposition", name)
		}
	}
}
