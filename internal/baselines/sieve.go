package baselines

import (
	"math"

	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// sieveCand is one threshold candidate with its admission threshold cached.
type sieveCand struct {
	j         int
	threshold float64
	set       *score.CandidateSet
}

// SieveStreaming is the streaming submodular-maximization algorithm of
// Badanidiyuru et al. [2]: one pass over the active elements in arrival
// order, maintaining sieve candidates at geometric threshold guesses;
// (1/2 − ε)-approximate. Unlike MTTS it has no index to feed it elements
// best-first, so it must evaluate every active element — the contrast
// measured in Figure 9.
func SieveStreaming(s *score.Scorer, actives []*stream.Element, x topicmodel.TopicVec, k int, eps float64) Result {
	logBase := math.Log(1 + eps)
	var cands []sieveCand
	var deltaMax float64
	evaluated := 0

	for _, e := range actives {
		delta := s.Score(e, x)
		evaluated++
		if delta <= 0 {
			continue
		}
		if delta > deltaMax {
			deltaMax = delta
			jLo := int(math.Ceil(math.Log(deltaMax) / logBase))
			jHi := int(math.Floor(math.Log(2*float64(k)*deltaMax) / logBase))
			old := cands
			cands = make([]sieveCand, 0, jHi-jLo+1)
			oi := 0
			for j := jLo; j <= jHi; j++ {
				for oi < len(old) && old[oi].j < j {
					oi++
				}
				if oi < len(old) && old[oi].j == j {
					cands = append(cands, old[oi])
					continue
				}
				cands = append(cands, sieveCand{
					j:         j,
					threshold: math.Pow(1+eps, float64(j)) / (2 * float64(k)),
					set:       score.NewCandidateSet(s, x),
				})
			}
		}
		for i := range cands {
			c := &cands[i]
			if c.set.Len() >= k || delta < c.threshold {
				continue
			}
			if c.set.MarginalGain(e) >= c.threshold {
				c.set.Add(e)
			}
		}
	}

	var best *score.CandidateSet
	for i := range cands {
		if best == nil || cands[i].set.Value() > best.Value() {
			best = cands[i].set
		}
	}
	res := Result{Evaluated: evaluated}
	if best != nil {
		res.Elements = best.Members()
		res.Score = best.Value()
	}
	return res
}
