// Package baselines implements every comparison method of the paper's
// evaluation (§5.1): the submodular-maximization baselines CELF and
// SieveStreaming used in the efficiency study, and the social-search /
// summarization comparators TF-IDF, DIV, Sumblr and REL used in the
// effectiveness study. None of them uses the engine's ranked lists — that
// contrast is the point of Figures 9–13.
package baselines

import (
	"container/heap"

	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Result is a baseline's answer with its evaluation count (the number of
// exact score / marginal-gain computations, the cost driver in §5.3).
type Result struct {
	Elements  []*stream.Element
	Score     float64
	Evaluated int
}

// CELF is the lazy-greedy algorithm of Leskovec et al. [16]: greedy
// selection with upper bounds from previous rounds, (1 − 1/e)-approximate —
// the best possible ratio unless P=NP. It evaluates every active element at
// least once, which is exactly why it cannot meet real-time latencies
// (§3.3) and serves as the quality reference in Figures 8 and 11.
func CELF(s *score.Scorer, actives []*stream.Element, x topicmodel.TopicVec, k int) Result {
	set := score.NewCandidateSet(s, x)
	lazy := &lazyHeap{}
	evaluated := 0
	for _, e := range actives {
		gain := s.Score(e, x)
		evaluated++
		if gain > 0 {
			heap.Push(lazy, lazyEntry{elem: e, gain: gain, round: 0})
		}
	}
	for set.Len() < k && lazy.Len() > 0 {
		top := heap.Pop(lazy).(lazyEntry)
		if top.round == set.Len() {
			// Gain is current for this round: greedy-add it.
			if top.gain <= 0 {
				break
			}
			set.Add(top.elem)
			continue
		}
		// Stale: recompute and push back.
		gain := set.MarginalGain(top.elem)
		evaluated++
		if gain > 0 {
			heap.Push(lazy, lazyEntry{elem: top.elem, gain: gain, round: set.Len()})
		}
	}
	return Result{Elements: set.Members(), Score: set.Value(), Evaluated: evaluated}
}

type lazyEntry struct {
	elem  *stream.Element
	gain  float64
	round int // |S| when this gain was computed
}

type lazyHeap []lazyEntry

func (h lazyHeap) Len() int { return len(h) }
func (h lazyHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].elem.ID < h[j].elem.ID
}
func (h lazyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lazyHeap) Push(x interface{}) { *h = append(*h, x.(lazyEntry)) }
func (h *lazyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
