package baselines

import (
	"math"
	"math/rand"
)

// kmeans clusters dense vectors into at most k clusters with k-means++
// seeding and Lloyd iterations. It returns the cluster assignment per
// vector. Deterministic for a given seed.
func kmeans(vecs [][]float64, k int, seed int64, maxIter int) []int {
	n := len(vecs)
	assign := make([]int, n)
	if n == 0 || k <= 1 {
		return assign
	}
	if k > n {
		k = n
	}
	dim := len(vecs[0])
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), vecs[first]...))
	dist := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, v := range vecs {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(v, c); dd < d {
					d = dd
				}
			}
			dist[i] = d
			total += d
		}
		if total == 0 {
			break // all points coincide with centroids
		}
		r := rng.Float64() * total
		var acc float64
		pick := n - 1
		for i, d := range dist {
			acc += d
			if r < acc {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), vecs[pick]...))
	}
	k = len(centroids)

	// Lloyd iterations.
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(v, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for c := range centroids {
			for j := 0; j < dim; j++ {
				centroids[c][j] = 0
			}
			counts[c] = 0
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				centroids[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
	}
	return assign
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
