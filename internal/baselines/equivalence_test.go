package baselines

import (
	"math"
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/testutil"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// plainGreedy is the textbook greedy [22]: recompute every marginal gain
// each round and take the max.
func plainGreedy(s *score.Scorer, actives []*stream.Element, x topicmodel.TopicVec, k int) []*stream.Element {
	set := score.NewCandidateSet(s, x)
	for set.Len() < k {
		var best *stream.Element
		var bestGain float64
		for _, e := range actives {
			if set.Contains(e.ID) {
				continue
			}
			g := set.MarginalGain(e)
			if g > bestGain || (g == bestGain && best != nil && e.ID < best.ID) {
				best, bestGain = e, g
			}
		}
		if best == nil || bestGain <= 0 {
			break
		}
		set.Add(best)
	}
	return set.Members()
}

// CELF's lazy evaluation is an optimization, not an approximation: it must
// select exactly the same value as plain greedy on every instance.
func TestCELFEquivalentToPlainGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		inst := testutil.NewInstance(rng, testutil.Options{Elements: 15})
		x := testutil.RandQuery(rng, inst.Topics)
		k := 1 + rng.Intn(5)
		want := plainGreedy(inst.Scorer, inst.Elems, x, k)
		got := CELF(inst.Scorer, inst.Elems, x, k)
		wantScore := inst.Scorer.SetScore(want, x)
		if math.Abs(got.Score-wantScore) > 1e-9 {
			t.Fatalf("trial %d: CELF score %.9f != greedy %.9f (k=%d)",
				trial, got.Score, wantScore, k)
		}
		if len(got.Elements) != len(want) {
			t.Fatalf("trial %d: CELF |S|=%d, greedy |S|=%d", trial, len(got.Elements), len(want))
		}
	}
}

// CELF must also never evaluate more than greedy: it is an optimization.
func TestCELFEvaluatesLessThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	inst := testutil.NewInstance(rng, testutil.Options{Elements: 40})
	x := testutil.RandQuery(rng, inst.Topics)
	const k = 5
	res := CELF(inst.Scorer, inst.Elems, x, k)
	// Plain greedy would evaluate n·k = 200 gains; CELF's lazy bound is
	// n + (re-evaluations), far below.
	if res.Evaluated >= 40*k {
		t.Errorf("CELF evaluated %d ≥ plain greedy's %d", res.Evaluated, 40*k)
	}
	if res.Evaluated < 40 {
		t.Errorf("CELF must evaluate every element at least once: %d", res.Evaluated)
	}
}
