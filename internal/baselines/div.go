package baselines

import (
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
)

// divCand is one query-relevant element with its TF-IDF vector.
type divCand struct {
	e   *stream.Element
	vec textproc.SparseVec
	rel float64
}

// DivTopK is the Diversity-aware Top-k Keyword Query of Chen & Cong [9]:
// it greedily maximizes score(q,S) = λ·Σ_{e∈S} rel(q,e) + (1−λ)·div(S),
// where rel is TF-IDF cosine relevance and div(S) is the average pairwise
// dissimilarity of the result set. The paper follows [9] with λ = 0.3.
func DivTopK(actives []*stream.Element, tf *textproc.TFIDF, keywords []textproc.WordID, k int, lambda float64) []*stream.Element {
	qv := tf.Vectorize(textproc.NewDocument(keywords))
	cands := make([]divCand, 0, len(actives))
	for _, e := range actives {
		v := tf.Vectorize(e.Doc)
		if rel := v.Cosine(qv); rel > 0 {
			cands = append(cands, divCand{e, v, rel})
		}
	}
	var selected []divCand
	used := make(map[stream.ElemID]bool)
	for len(selected) < k && len(selected) < len(cands) {
		bestIdx := -1
		var bestScore float64
		for i, c := range cands {
			if used[c.e.ID] {
				continue
			}
			s := divObjective(selected, c, lambda)
			if bestIdx == -1 || s > bestScore ||
				(s == bestScore && c.e.ID < cands[bestIdx].e.ID) {
				bestIdx, bestScore = i, s
			}
		}
		if bestIdx == -1 {
			break
		}
		selected = append(selected, cands[bestIdx])
		used[cands[bestIdx].e.ID] = true
	}
	out := make([]*stream.Element, len(selected))
	for i, c := range selected {
		out[i] = c.e
	}
	return out
}

// divObjective evaluates score(q, S ∪ {c}): λ·Σ rel + (1−λ)·div where div
// is the mean pairwise dissimilarity (1 − cosine) over the extended set.
func divObjective(selected []divCand, c divCand, lambda float64) float64 {
	relSum := c.rel
	for _, s := range selected {
		relSum += s.rel
	}
	n := len(selected) + 1
	var div float64
	if n > 1 {
		var dissim float64
		var pairs int
		for i := 0; i < len(selected); i++ {
			for j := i + 1; j < len(selected); j++ {
				dissim += 1 - selected[i].vec.Cosine(selected[j].vec)
				pairs++
			}
			dissim += 1 - selected[i].vec.Cosine(c.vec)
			pairs++
		}
		div = dissim / float64(pairs)
	}
	return lambda*relSum + (1-lambda)*div
}
