package baselines

import "github.com/social-streams/ksir/internal/textproc"

// lexRank computes LexRank centrality scores (Erkan & Radev) over the
// cosine-similarity graph of the given TF-IDF vectors: PageRank on the
// row-normalized adjacency of pairs with similarity ≥ threshold.
func lexRank(vecs []textproc.SparseVec, threshold, damping float64, iters int) []float64 {
	n := len(vecs)
	scores := make([]float64, n)
	if n == 0 {
		return scores
	}
	adj := make([][]float64, n)
	degree := make([]float64, n)
	for i := 0; i < n; i++ {
		adj[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			var sim float64
			if i == j {
				sim = 1
			} else if j < i {
				sim = adj[j][i]
			} else {
				sim = vecs[i].Cosine(vecs[j])
			}
			if sim >= threshold {
				adj[i][j] = sim
				degree[i] += sim
			}
		}
	}
	for i := range scores {
		scores[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		for j := 0; j < n; j++ {
			next[j] = (1 - damping) / float64(n)
		}
		for i := 0; i < n; i++ {
			if degree[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if adj[i][j] > 0 {
					next[j] += damping * scores[i] * adj[i][j] / degree[i]
				}
			}
		}
		copy(scores, next)
	}
	return scores
}
