package baselines

import (
	"math"
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/testutil"
	"github.com/social-streams/ksir/internal/textproc"
)

// paperVocab interns the paper's 16 example words in table order so that
// WordID i corresponds to w_{i+1}.
func paperVocab() *textproc.Vocabulary {
	v := textproc.NewVocabulary()
	for _, w := range papertest.Words {
		v.Add(w)
	}
	return v
}

// newPaperTFIDF observes the elements' documents into the vocabulary and
// returns a TF-IDF vectorizer over them.
func newPaperTFIDF(vocab *textproc.Vocabulary, actives []*stream.Element) *textproc.TFIDF {
	for _, e := range actives {
		var ids []textproc.WordID
		for _, tc := range e.Doc.Terms {
			for c := int32(0); c < tc.Count; c++ {
				ids = append(ids, tc.Word)
			}
		}
		vocab.ObserveDoc(ids)
	}
	return textproc.NewTFIDF(vocab, len(actives))
}

func paperSetup(t *testing.T) (*score.Scorer, []*stream.Element) {
	t.Helper()
	win, elems := papertest.Window()
	s, err := score.NewScorer(papertest.Model(), win, score.Params{Lambda: 0.5, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	var actives []*stream.Element
	for _, e := range elems {
		if _, ok := win.Get(e.ID); ok {
			actives = append(actives, e)
		}
	}
	return s, actives
}

// CELF on the paper example recovers the optimal pair {e1, e3} for the
// uniform query (greedy is optimal here).
func TestCELFPaperExample(t *testing.T) {
	s, actives := paperSetup(t)
	res := CELF(s, actives, papertest.QueryUniform(), 2)
	if len(res.Elements) != 2 {
		t.Fatalf("result size %d", len(res.Elements))
	}
	got := map[stream.ElemID]bool{res.Elements[0].ID: true, res.Elements[1].ID: true}
	if !got[1] || !got[3] {
		t.Errorf("CELF = %v, want {e1,e3}", got)
	}
	if math.Abs(res.Score-0.65) > 0.02 {
		t.Errorf("score = %v", res.Score)
	}
	if res.Evaluated < len(actives) {
		t.Errorf("CELF must evaluate every active at least once: %d < %d",
			res.Evaluated, len(actives))
	}
}

// CELF is (1 − 1/e)-approximate; verify against brute force on random
// instances. (Greedy usually does far better; the bound must always hold.)
func TestCELFApproximationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	bound := 1 - 1/math.E
	for trial := 0; trial < 25; trial++ {
		inst := testutil.NewInstance(rng, testutil.Options{Elements: 10})
		x := testutil.RandQuery(rng, inst.Topics)
		k := 2 + rng.Intn(2)
		opt := testutil.BruteForceOPT(inst.Scorer, inst.Elems, x, k)
		res := CELF(inst.Scorer, inst.Elems, x, k)
		if res.Score < bound*opt-1e-9 {
			t.Errorf("trial %d: CELF %.6f < (1−1/e)·OPT %.6f", trial, res.Score, bound*opt)
		}
	}
}

// SieveStreaming is (1/2 − ε)-approximate.
func TestSieveStreamingApproximationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	const eps = 0.1
	for trial := 0; trial < 25; trial++ {
		inst := testutil.NewInstance(rng, testutil.Options{Elements: 10})
		x := testutil.RandQuery(rng, inst.Topics)
		k := 2 + rng.Intn(2)
		opt := testutil.BruteForceOPT(inst.Scorer, inst.Elems, x, k)
		res := SieveStreaming(inst.Scorer, inst.Elems, x, k, eps)
		if res.Score < (0.5-eps)*opt-1e-9 {
			t.Errorf("trial %d: Sieve %.6f < (1/2−ε)·OPT %.6f", trial, res.Score, (0.5-eps)*opt)
		}
	}
}

func TestSieveEvaluatesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	inst := testutil.NewInstance(rng, testutil.Options{Elements: 30})
	x := testutil.RandQuery(rng, inst.Topics)
	res := SieveStreaming(inst.Scorer, inst.Elems, x, 5, 0.1)
	if res.Evaluated != 30 {
		t.Errorf("Sieve evaluated %d, want 30 (single full pass)", res.Evaluated)
	}
}

func TestCELFEmptyInput(t *testing.T) {
	s, _ := paperSetup(t)
	res := CELF(s, nil, papertest.QueryUniform(), 3)
	if len(res.Elements) != 0 || res.Score != 0 {
		t.Errorf("CELF on empty = %+v", res)
	}
	res = SieveStreaming(s, nil, papertest.QueryUniform(), 3, 0.1)
	if len(res.Elements) != 0 {
		t.Errorf("Sieve on empty = %+v", res)
	}
}

func TestRelTopK(t *testing.T) {
	_, actives := paperSetup(t)
	// Query purely on θ2: most relevant by cosine are the θ2-dominant
	// elements e1 (0.8) and e2 (0.74) — pure direction, e1's vector is
	// closest to the θ2 axis.
	x := papertest.QuerySkewed()
	got := RelTopK(actives, x, 2)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].ID != 1 {
		t.Errorf("top relevance = e%d, want e1", got[0].ID)
	}
	// k larger than candidates.
	all := RelTopK(actives, x, 100)
	if len(all) != len(actives) {
		t.Errorf("len = %d, want %d", len(all), len(actives))
	}
}

func TestTFIDFTopKSyntacticOnly(t *testing.T) {
	// Build a small TF-IDF space over the paper vocabulary: docs are the
	// 8 elements.
	_, actives := paperSetup(t)
	vocab := paperVocab()
	tf := newPaperTFIDF(vocab, actives)
	// Query "nbaplayoffs" (w10, id 9): only e3, e6, e8 contain it (e4
	// expired). TF-IDF finds those and nothing else.
	got := TFIDFTopK(actives, tf, []textproc.WordID{9}, 5)
	want := map[stream.ElemID]bool{3: true, 6: true, 8: true}
	if len(got) != 3 {
		t.Fatalf("got %d elements", len(got))
	}
	for _, e := range got {
		if !want[e.ID] {
			t.Errorf("unexpected e%d", e.ID)
		}
	}
	// The semantic gap of §1: query word "cavs" (w3) does not retrieve e6
	// even though it is about the same game.
	got = TFIDFTopK(actives, tf, []textproc.WordID{2}, 5)
	for _, e := range got {
		if e.ID == 6 {
			t.Error("TF-IDF should not retrieve e6 for 'cavs'")
		}
	}
}

func TestDivTopKPrefersDiverseResults(t *testing.T) {
	_, actives := paperSetup(t)
	tf := newPaperTFIDF(paperVocab(), actives)
	// Query {pl, champion} (w11=10, w4=3): e2 and e7 are near-duplicates;
	// DIV should pick at most one of them plus something diverse (e8 has
	// w11 too).
	got := DivTopK(actives, tf, []textproc.WordID{10, 3}, 2, 0.3)
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
	both := (got[0].ID == 2 && got[1].ID == 7) || (got[0].ID == 7 && got[1].ID == 2)
	if both {
		t.Error("DIV picked the two near-duplicates e2,e7")
	}
}

func TestSumblrReturnsClusterRepresentatives(t *testing.T) {
	_, actives := paperSetup(t)
	tf := newPaperTFIDF(paperVocab(), actives)
	// Query word w10 "nbaplayoffs" + w16 "ucl": candidates split into a
	// basketball cluster {e3,e6,e8} and a soccer cluster {e1,e5}.
	got := Sumblr(actives, tf, []textproc.WordID{9, 15}, 2, 2, SumblrConfig{Seed: 3})
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
	var hasBasketball, hasSoccer bool
	for _, e := range got {
		switch e.ID {
		case 3, 6, 8:
			hasBasketball = true
		case 1, 5:
			hasSoccer = true
		}
	}
	if !hasBasketball || !hasSoccer {
		t.Errorf("Sumblr = [%v %v], want one element per cluster", got[0].ID, got[1].ID)
	}
}

func TestSumblrNoCandidates(t *testing.T) {
	_, actives := paperSetup(t)
	tf := newPaperTFIDF(paperVocab(), actives)
	if got := Sumblr(actives, tf, nil, 3, 2, SumblrConfig{}); got != nil {
		t.Errorf("no keywords should yield nil, got %v", got)
	}
}

func TestKMeansBasic(t *testing.T) {
	vecs := [][]float64{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}}
	assign := kmeans(vecs, 2, 1, 20)
	if assign[0] != assign[1] || assign[2] != assign[3] || assign[0] == assign[2] {
		t.Errorf("kmeans assign = %v", assign)
	}
	// Degenerate inputs.
	if got := kmeans(nil, 3, 1, 10); len(got) != 0 {
		t.Error("empty input")
	}
	if got := kmeans(vecs, 1, 1, 10); got[0] != 0 || got[3] != 0 {
		t.Error("k=1 should map all to cluster 0")
	}
	same := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	got := kmeans(same, 2, 1, 10)
	if len(got) != 3 {
		t.Error("identical points")
	}
}

func TestLexRankCentrality(t *testing.T) {
	// A "hub" document similar to both others scores highest.
	hub := textproc.NewSparseVec(map[int32]float64{0: 1, 1: 1})
	a := textproc.NewSparseVec(map[int32]float64{0: 1})
	b := textproc.NewSparseVec(map[int32]float64{1: 1})
	scores := lexRank([]textproc.SparseVec{hub, a, b}, 0.1, 0.85, 30)
	if !(scores[0] > scores[1] && scores[0] > scores[2]) {
		t.Errorf("hub not most central: %v", scores)
	}
	if got := lexRank(nil, 0.1, 0.85, 10); len(got) != 0 {
		t.Error("empty lexrank")
	}
}
