package baselines

import (
	"sort"

	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
)

// TFIDFTopK is the classic keyword-based Top-k Keyword Query (§5.1): it
// vectorizes elements and the keyword query with log-normalized TF-IDF
// weights and returns the k elements with the highest cosine similarity.
// It captures only syntactic overlap — the "soccer" example of §1 shows how
// it misses semantically relevant elements.
func TFIDFTopK(actives []*stream.Element, tf *textproc.TFIDF, keywords []textproc.WordID, k int) []*stream.Element {
	qv := tf.Vectorize(textproc.NewDocument(keywords))
	type scored struct {
		e   *stream.Element
		rel float64
	}
	all := make([]scored, 0, len(actives))
	for _, e := range actives {
		if rel := tf.Vectorize(e.Doc).Cosine(qv); rel > 0 {
			all = append(all, scored{e, rel})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].rel != all[j].rel {
			return all[i].rel > all[j].rel
		}
		return all[i].e.ID < all[j].e.ID
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]*stream.Element, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].e
	}
	return out
}
