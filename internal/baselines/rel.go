package baselines

import (
	"sort"

	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// RelTopK is the Top-k Relevance Query of Zhang et al. [39]: it measures
// the relevance of an element to the query by the cosine similarity of
// their topic vectors and returns the k most relevant elements. It captures
// semantics (unlike TF-IDF) but not representativeness — near-duplicate
// highly relevant elements crowd the result (§1, §5.2 "low coverage").
func RelTopK(actives []*stream.Element, x topicmodel.TopicVec, k int) []*stream.Element {
	type scored struct {
		e   *stream.Element
		rel float64
	}
	all := make([]scored, 0, len(actives))
	for _, e := range actives {
		if rel := e.Topics.Cosine(x); rel > 0 {
			all = append(all, scored{e, rel})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].rel != all[j].rel {
			return all[i].rel > all[j].rel
		}
		return all[i].e.ID < all[j].e.ID
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]*stream.Element, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].e
	}
	return out
}
