package baselines

import (
	"sort"

	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
)

// SumblrConfig carries the clustering/ranking knobs of Shou et al. [27];
// the defaults mirror that paper's settings as §5.1 prescribes.
type SumblrConfig struct {
	Seed       int64
	KMeansIter int     // Lloyd iterations (default 20)
	LexThresh  float64 // LexRank similarity threshold (default 0.1)
	LexDamping float64 // LexRank damping factor (default 0.85)
	LexIter    int     // LexRank power iterations (default 30)
}

func (c *SumblrConfig) fill() {
	if c.KMeansIter == 0 {
		c.KMeansIter = 20
	}
	if c.LexThresh == 0 {
		c.LexThresh = 0.1
	}
	if c.LexDamping == 0 {
		c.LexDamping = 0.85
	}
	if c.LexIter == 0 {
		c.LexIter = 30
	}
}

// Sumblr adapts the continuous tweet-stream summarizer of Shou et al. [27]
// to query processing the way §5.1 does: the elements containing at least
// one query keyword become candidates, the candidates are clustered with
// k-means into k content clusters, and LexRank picks the most central
// element of each cluster as the summary sentence. Clusters are emitted
// largest-first; if fewer than k non-empty clusters exist, remaining slots
// are filled with the globally highest-LexRank leftovers.
func Sumblr(actives []*stream.Element, tf *textproc.TFIDF, keywords []textproc.WordID, k int, topics int, cfg SumblrConfig) []*stream.Element {
	cfg.fill()
	kw := make(map[textproc.WordID]struct{}, len(keywords))
	for _, w := range keywords {
		kw[w] = struct{}{}
	}
	var cands []*stream.Element
	for _, e := range actives {
		for _, tc := range e.Doc.Terms {
			if _, ok := kw[tc.Word]; ok {
				cands = append(cands, e)
				break
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })

	// Cluster on dense topic vectors (content representation).
	dense := make([][]float64, len(cands))
	for i, e := range cands {
		v := make([]float64, topics)
		for j, tp := range e.Topics.Topics {
			v[tp] = e.Topics.Probs[j]
		}
		dense[i] = v
	}
	assign := kmeans(dense, k, cfg.Seed, cfg.KMeansIter)

	// LexRank centrality over the TF-IDF similarity graph of candidates.
	vecs := make([]textproc.SparseVec, len(cands))
	for i, e := range cands {
		vecs[i] = tf.Vectorize(e.Doc)
	}
	central := lexRank(vecs, cfg.LexThresh, cfg.LexDamping, cfg.LexIter)

	// Pick the most central element per cluster, largest clusters first.
	type cluster struct {
		size int
		best int // candidate index
	}
	byCluster := make(map[int]*cluster)
	for i := range cands {
		c, ok := byCluster[assign[i]]
		if !ok {
			byCluster[assign[i]] = &cluster{size: 1, best: i}
			continue
		}
		c.size++
		if central[i] > central[c.best] ||
			(central[i] == central[c.best] && cands[i].ID < cands[c.best].ID) {
			c.best = i
		}
	}
	clusters := make([]*cluster, 0, len(byCluster))
	for _, c := range byCluster {
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].size != clusters[j].size {
			return clusters[i].size > clusters[j].size
		}
		return cands[clusters[i].best].ID < cands[clusters[j].best].ID
	})

	picked := make(map[int]bool)
	var out []*stream.Element
	for _, c := range clusters {
		if len(out) == k {
			break
		}
		out = append(out, cands[c.best])
		picked[c.best] = true
	}
	if len(out) < k {
		// Fill remaining slots with the highest-centrality leftovers.
		rest := make([]int, 0, len(cands))
		for i := range cands {
			if !picked[i] {
				rest = append(rest, i)
			}
		}
		sort.Slice(rest, func(a, b int) bool {
			if central[rest[a]] != central[rest[b]] {
				return central[rest[a]] > central[rest[b]]
			}
			return cands[rest[a]].ID < cands[rest[b]].ID
		})
		for _, i := range rest {
			if len(out) == k {
				break
			}
			out = append(out, cands[i])
		}
	}
	return out
}
