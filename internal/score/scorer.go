package score

import (
	"math"
	"sort"

	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// elemCache holds the time-independent per-element scoring data, computed
// once when the element enters the active set.
type elemCache struct {
	// wordWeights[j][k] = σ_i(w_k, e) for topic i = e.Topics.Topics[j] and
	// word w_k = e.Doc.Terms[k].Word.
	wordWeights [][]float64
	// semTotal[j] = R_i(e) = Σ_k σ_i(w_k, e).
	semTotal []float64
}

// Scorer binds a topic model, scoring parameters and an active window, and
// evaluates all the scoring functions of §3.2. Semantic word weights are
// cached per active element; influence scores are always computed from the
// window's live reference index so they are exact at query time.
//
// Scorer is safe for concurrent read use (queries); cache mutations
// (OnChange) must be serialized with reads, which the engine does.
type Scorer struct {
	model  *topicmodel.Model
	win    *stream.ActiveWindow
	params Params
	cache  map[stream.ElemID]*elemCache
}

// NewScorer returns a Scorer over the given model, window and parameters.
func NewScorer(model *topicmodel.Model, win *stream.ActiveWindow, params Params) (*Scorer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Scorer{
		model:  model,
		win:    win,
		params: params,
		cache:  make(map[stream.ElemID]*elemCache),
	}, nil
}

// Params returns the scoring parameters.
func (s *Scorer) Params() Params { return s.params }

// Window returns the active window the scorer reads.
func (s *Scorer) Window() *stream.ActiveWindow { return s.win }

// OnChange maintains the per-element caches after a window advance.
func (s *Scorer) OnChange(cs stream.ChangeSet) {
	for _, e := range cs.Inserted {
		s.ensureCached(e)
	}
	for _, e := range cs.Expired {
		delete(s.cache, e.ID)
	}
}

// CacheDelta records the net cache effect of one OnChange: the entries it
// computed (or re-validated) and the entries it dropped. Because an
// element's cache entry is immutable once built, a replica scorer over
// the same immutable elements can adopt the recorded entries by pointer —
// ApplyCacheDelta re-derives nothing.
type CacheDelta struct {
	added   []cacheAdd
	dropped []stream.ElemID
}

type cacheAdd struct {
	id stream.ElemID
	c  *elemCache
}

// OnChangeRecorded is OnChange additionally returning the CacheDelta for
// replay onto a replica scorer via ApplyCacheDelta.
func (s *Scorer) OnChangeRecorded(cs stream.ChangeSet) CacheDelta {
	var d CacheDelta
	if len(cs.Inserted) > 0 {
		d.added = make([]cacheAdd, 0, len(cs.Inserted))
	}
	for _, e := range cs.Inserted {
		d.added = append(d.added, cacheAdd{id: e.ID, c: s.ensureCached(e)})
	}
	if len(cs.Expired) > 0 {
		d.dropped = make([]stream.ElemID, 0, len(cs.Expired))
	}
	for _, e := range cs.Expired {
		delete(s.cache, e.ID)
		d.dropped = append(d.dropped, e.ID)
	}
	return d
}

// AdoptCache copies every cache entry of from into this scorer, by
// pointer (entries are immutable once built). Both scorers must be over
// the same model and parameters — the engine's restore path uses it to
// warm the second buffer's scorer without re-deriving every word weight.
func (s *Scorer) AdoptCache(from *Scorer) {
	for id, c := range from.cache {
		s.cache[id] = c
	}
}

// ApplyCacheDelta replays a recorded OnChange onto this scorer, sharing
// the recording scorer's immutable cache entries instead of recomputing
// the word weights. After replay the cache covers exactly the same
// elements with bit-identical values — the invariant queries rely on to
// read the cache without locking (every active element is cached before
// the buffer publishes).
func (s *Scorer) ApplyCacheDelta(d CacheDelta) {
	for _, a := range d.added {
		s.cache[a.id] = a.c
	}
	for _, id := range d.dropped {
		delete(s.cache, id)
	}
}

func (s *Scorer) ensureCached(e *stream.Element) *elemCache {
	if c, ok := s.cache[e.ID]; ok {
		return c
	}
	c := &elemCache{
		wordWeights: make([][]float64, e.Topics.Len()),
		semTotal:    make([]float64, e.Topics.Len()),
	}
	for j, topic := range e.Topics.Topics {
		pe := e.Topics.Probs[j]
		ws := make([]float64, len(e.Doc.Terms))
		var total float64
		for k, tc := range e.Doc.Terms {
			p := s.model.TopicWord(int(topic), tc.Word) * pe
			if p > 0 {
				// σ_i(w,e) = −γ(w,e) · p · log p  (natural log; verified
				// against the worked example in §3.2).
				ws[k] = -float64(tc.Count) * p * math.Log(p)
			}
			total += ws[k]
		}
		c.wordWeights[j] = ws
		c.semTotal[j] = total
	}
	s.cache[e.ID] = c
	return c
}

// SemanticScore returns R_i(e) for the element's j-th topic entry.
func (s *Scorer) semantic(e *stream.Element, j int) float64 {
	return s.ensureCached(e).semTotal[j]
}

// InfluenceScore returns I_{i,t}({e}) = Σ_{c ∈ I_t(e)} p_i(e)·p_i(c) for
// topic i, computed live from the window's reference index.
func (s *Scorer) influence(e *stream.Element, topic int32, pe float64) float64 {
	var sum float64
	s.win.ForEachChild(e.ID, func(c *stream.Element) {
		sum += c.Topics.Prob(topic)
	})
	return pe * sum
}

// TopicScore returns δ_i(e) = f_i({e}) = λ·R_i(e) + (1−λ)/η·I_{i,t}(e) for
// topic i. It returns 0 when p_i(e) = 0.
func (s *Scorer) TopicScore(e *stream.Element, topic int32) float64 {
	for j, tp := range e.Topics.Topics {
		if tp == topic {
			sem := s.semantic(e, j)
			infl := s.influence(e, topic, e.Topics.Probs[j])
			return s.params.Lambda*sem + s.params.inflFactor()*infl
		}
	}
	return 0
}

// Score returns δ(e, x) = f({e}, x) = Σ_i x_i·δ_i(e).
func (s *Scorer) Score(e *stream.Element, x topicmodel.TopicVec) float64 {
	c := s.ensureCached(e)
	var total float64
	// Merge the sorted topic lists of e and x.
	i, j := 0, 0
	for i < len(x.Topics) && j < len(e.Topics.Topics) {
		switch {
		case x.Topics[i] < e.Topics.Topics[j]:
			i++
		case x.Topics[i] > e.Topics.Topics[j]:
			j++
		default:
			sem := c.semTotal[j]
			infl := s.influence(e, e.Topics.Topics[j], e.Topics.Probs[j])
			total += x.Probs[i] * (s.params.Lambda*sem + s.params.inflFactor()*infl)
			i++
			j++
		}
	}
	return total
}

// SetScore evaluates f(S, x) directly from the definitions (Equations 1–4),
// without incremental state. It is the reference implementation used by
// tests and by one-shot evaluations of externally produced result sets.
func (s *Scorer) SetScore(set []*stream.Element, x topicmodel.TopicVec) float64 {
	var total float64
	for i, topic := range x.Topics {
		xi := x.Probs[i]
		if xi == 0 {
			continue
		}
		total += xi * (s.params.Lambda*s.setSemantic(set, topic) +
			s.params.inflFactor()*s.setInfluence(set, topic))
	}
	return total
}

// setSemantic computes R_i(S) = Σ_{w∈V_S} max_{e∈S} σ_i(w,e). The final
// sum runs in ascending word order so it is bit-deterministic regardless
// of map iteration order.
func (s *Scorer) setSemantic(set []*stream.Element, topic int32) float64 {
	best := make(map[int32]float64)
	for _, e := range set {
		c := s.ensureCached(e)
		for j, tp := range e.Topics.Topics {
			if tp != topic {
				continue
			}
			for k, tc := range e.Doc.Terms {
				w := int32(tc.Word)
				if sig := c.wordWeights[j][k]; sig > best[w] {
					best[w] = sig
				}
			}
		}
	}
	words := make([]int32, 0, len(best))
	for w := range best {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	var sum float64
	for _, w := range words {
		sum += best[w]
	}
	return sum
}

// setInfluence computes I_{i,t}(S) = Σ_{c ∈ I_t(S)} p_i(S ⇝ c) with
// p_i(S ⇝ c) = 1 − Π_{e ∈ S ∩ c.ref} (1 − p_i(e)·p_i(c)). The final sum
// runs in ascending child-ID order so it is bit-deterministic regardless
// of map iteration order.
func (s *Scorer) setInfluence(set []*stream.Element, topic int32) float64 {
	// survive[c] = Π (1 − p_i(e ⇝ c)) over members influencing c.
	survive := make(map[stream.ElemID]float64)
	for _, e := range set {
		pe := e.Topics.Prob(topic)
		s.win.ForEachChild(e.ID, func(c *stream.Element) {
			p := pe * c.Topics.Prob(topic)
			if cur, ok := survive[c.ID]; ok {
				survive[c.ID] = cur * (1 - p)
			} else {
				survive[c.ID] = 1 - p
			}
		})
	}
	ids := make([]stream.ElemID, 0, len(survive))
	for id := range survive {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sum float64
	for _, id := range ids {
		sum += 1 - survive[id]
	}
	return sum
}
