package score

import (
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Contribution decomposes one result element's marginal contribution to
// f(S, x) at the moment it was selected: the semantic (word-coverage) and
// influence (reference-coverage) parts, per query topic.
type Contribution struct {
	Elem *stream.Element
	// Gain is the element's marginal gain Δ(e|S_before) — the Gains of a
	// result set in selection order telescope to f(S, x).
	Gain float64
	// Semantic and Influence split Gain into its two terms of Equation 2
	// (already weighted by λ, (1−λ)/η and the query weights x_i).
	Semantic  float64
	Influence float64
	// TopicGains maps topic → that topic's share of Gain (weighted by x_i).
	TopicGains map[int32]float64
	// NewWords counts the distinct words this element contributed that no
	// earlier selection covered with a higher weight on some query topic.
	NewWords int
}

// Explain recomputes the selection-order contribution breakdown of a result
// set. It is a diagnostic tool (the engine's algorithms do not pay for it);
// the total of all Gains equals SetScore(set, x) up to float rounding.
func (s *Scorer) Explain(set []*stream.Element, x topicmodel.TopicVec) []Contribution {
	cs := NewCandidateSet(s, x)
	out := make([]Contribution, 0, len(set))
	params := s.params
	for _, e := range set {
		c := Contribution{Elem: e, TopicGains: make(map[int32]float64)}
		ec := s.ensureCached(e)
		newWords := make(map[int32]struct{})
		cs.forEachSharedTopic(e, func(qi, ej int, topic int32) {
			xi := cs.x.Probs[qi]
			var dSem float64
			for k, tc := range e.Doc.Terms {
				w := int32(tc.Word)
				if sig := ec.wordWeights[ej][k]; sig > cs.covered[qi][w] {
					dSem += sig - cs.covered[qi][w]
					newWords[w] = struct{}{}
				}
			}
			var dInfl float64
			pe := e.Topics.Probs[ej]
			s.win.ForEachChild(e.ID, func(child *stream.Element) {
				p := pe * child.Topics.Prob(topic)
				dInfl += p * (1 - cs.inflProb[qi][child.ID])
			})
			sem := xi * params.Lambda * dSem
			infl := xi * params.inflFactor() * dInfl
			c.Semantic += sem
			c.Influence += infl
			c.TopicGains[topic] += sem + infl
		})
		c.Gain = c.Semantic + c.Influence
		c.NewWords = len(newWords)
		cs.Add(e)
		out = append(out, c)
	}
	return out
}
