package score

import (
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// randModel / randElement mirror internal/testutil (which cannot be
// imported here: it depends on this package).
func randModel(rng *rand.Rand, z, v int) *topicmodel.Model {
	m := &topicmodel.Model{Z: z, V: v, Phi: make([]float64, z*v), PTopic: make([]float64, z)}
	for i := 0; i < z; i++ {
		var sum float64
		for w := 0; w < v; w++ {
			m.Phi[i*v+w] = rng.Float64()
			sum += m.Phi[i*v+w]
		}
		for w := 0; w < v; w++ {
			m.Phi[i*v+w] /= sum
		}
		m.PTopic[i] = 1 / float64(z)
	}
	return m
}

func randElement(rng *rand.Rand, id, z, v int) *stream.Element {
	nw := 1 + rng.Intn(5)
	ids := make([]textproc.WordID, nw)
	for j := range ids {
		ids[j] = textproc.WordID(rng.Intn(v))
	}
	dense := make([]float64, z)
	k := 1 + rng.Intn(2)
	for j := 0; j < k; j++ {
		dense[rng.Intn(z)] += rng.Float64()
	}
	var sum float64
	for _, d := range dense {
		sum += d
	}
	for j := range dense {
		dense[j] /= sum
	}
	return &stream.Element{
		ID:     stream.ElemID(id),
		TS:     stream.Time(id),
		Doc:    textproc.NewDocument(ids),
		Topics: topicmodel.NewTopicVec(dense),
	}
}

// deterministicFixture builds a window with a parent that has many
// children (a wide reference index) so any map-order float summation
// would jitter across evaluations.
func deterministicFixture(t *testing.T) (*Scorer, []*stream.Element, topicmodel.TopicVec) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const z, v = 6, 60
	model := randModel(rng, z, v)
	win := stream.NewActiveWindow(1000)

	parents := make([]*stream.Element, 4)
	batch := make([]*stream.Element, 0, 40)
	for i := range parents {
		parents[i] = randElement(rng, i+1, z, v)
		batch = append(batch, parents[i])
	}
	for i := 0; i < 30; i++ {
		c := randElement(rng, 100+i, z, v)
		c.TS = stream.Time(i + 2)
		c.Refs = []stream.ElemID{parents[i%len(parents)].ID, parents[(i+1)%len(parents)].ID}
		batch = append(batch, c)
	}
	cs, err := win.Advance(100, batch)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScorer(model, win, Params{Lambda: 0.5, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.OnChange(cs)
	x := topicmodel.TopicVec{Topics: []int32{0, 2, 4}, Probs: []float64{0.5, 0.3, 0.2}}
	return s, parents, x
}

// Every scoring function is bit-deterministic across repeated evaluations:
// influence sums iterate the reference index in sorted child order, and
// the set functions sum their coverage maps in sorted key order. (Go
// randomizes map iteration per range statement, so 50 repetitions would
// almost surely expose an order-dependent float accumulation.)
func TestScoringIsBitDeterministic(t *testing.T) {
	s, parents, x := deterministicFixture(t)
	set := parents
	baseTopic := s.TopicScore(parents[0], 0)
	baseScore := s.Score(parents[0], x)
	baseSet := s.SetScore(set, x)
	for i := 0; i < 50; i++ {
		if got := s.TopicScore(parents[0], 0); got != baseTopic {
			t.Fatalf("TopicScore jittered: %v vs %v", got, baseTopic)
		}
		if got := s.Score(parents[0], x); got != baseScore {
			t.Fatalf("Score jittered: %v vs %v", got, baseScore)
		}
		if got := s.SetScore(set, x); got != baseSet {
			t.Fatalf("SetScore jittered: %v vs %v", got, baseSet)
		}
	}
}

// A replica scorer fed only the recorded cache delta scores identically
// to the recording scorer — the entries are shared by pointer, never
// recomputed.
func TestApplyCacheDeltaSharesEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const z, v = 6, 60
	model := randModel(rng, z, v)
	primaryWin, replicaWin := stream.NewActiveWindow(50), stream.NewActiveWindow(50)
	primary, _ := NewScorer(model, primaryWin, Params{Lambda: 0.5, Eta: 2})
	replica, _ := NewScorer(model, replicaWin, Params{Lambda: 0.5, Eta: 2})

	x := topicmodel.TopicVec{Topics: []int32{1, 3}, Probs: []float64{0.6, 0.4}}
	now := stream.Time(0)
	for b := 0; b < 8; b++ {
		batch := make([]*stream.Element, 0, 5)
		for i := 0; i < 5; i++ {
			e := randElement(rng, b*10+i+1, z, v)
			e.TS = now + stream.Time(i+1)
			batch = append(batch, e)
		}
		now += 20 // slides old elements out: exercises the drop side too
		cs, err := primaryWin.Advance(now, batch)
		if err != nil {
			t.Fatal(err)
		}
		d := primary.OnChangeRecorded(cs)
		if _, err := replicaWin.Advance(now, batch); err != nil {
			t.Fatal(err)
		}
		replica.ApplyCacheDelta(d)

		if got, want := len(replica.cache), len(primary.cache); got != want {
			t.Fatalf("bucket %d: cache sizes diverge %d vs %d", b, got, want)
		}
		for id, c := range primary.cache {
			if replica.cache[id] != c {
				t.Fatalf("bucket %d: cache entry %d not shared", b, id)
			}
		}
		for _, e := range batch {
			if replica.Score(e, x) != primary.Score(e, x) {
				t.Fatalf("bucket %d: scores diverge for %d", b, e.ID)
			}
		}
	}
}
