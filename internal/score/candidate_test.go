package score

import (
	"math"
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// randInstance builds a random scorer + active elements + query for
// property tests: z topics, vocabulary of 30 words, n elements with random
// topic vectors, documents and references.
func randInstance(t *testing.T, rng *rand.Rand, n int) (*Scorer, []*stream.Element, topicmodel.TopicVec) {
	t.Helper()
	const z, v = 4, 30
	m := &topicmodel.Model{Z: z, V: v, Phi: make([]float64, z*v), PTopic: make([]float64, z)}
	for i := 0; i < z; i++ {
		var sum float64
		for w := 0; w < v; w++ {
			m.Phi[i*v+w] = rng.Float64()
			sum += m.Phi[i*v+w]
		}
		for w := 0; w < v; w++ {
			m.Phi[i*v+w] /= sum
		}
		m.PTopic[i] = 1.0 / z
	}
	win := stream.NewActiveWindow(stream.Time(n + 1)) // everything stays active
	scorer, err := NewScorer(m, win, Params{Lambda: 0.4 + 0.2*rng.Float64(), Eta: 1 + rng.Float64()*5})
	if err != nil {
		t.Fatal(err)
	}
	elems := make([]*stream.Element, n)
	for i := range elems {
		nw := 1 + rng.Intn(5)
		ids := make([]textproc.WordID, nw)
		for j := range ids {
			ids[j] = textproc.WordID(rng.Intn(v))
		}
		dense := make([]float64, z)
		var sum float64
		k := 1 + rng.Intn(2)
		for j := 0; j < k; j++ {
			dense[rng.Intn(z)] += rng.Float64()
		}
		for _, d := range dense {
			sum += d
		}
		for j := range dense {
			dense[j] /= sum
		}
		e := &stream.Element{
			ID:     stream.ElemID(i + 1),
			TS:     stream.Time(i + 1),
			Doc:    textproc.NewDocument(ids),
			Topics: topicmodel.NewTopicVec(dense),
		}
		for r := 0; r < rng.Intn(3) && i > 0; r++ {
			e.Refs = append(e.Refs, stream.ElemID(1+rng.Intn(i)))
		}
		elems[i] = e
		if _, err := win.Advance(e.TS, []*stream.Element{e}); err != nil {
			t.Fatal(err)
		}
	}
	qd := make([]float64, z)
	var qs float64
	for j := range qd {
		qd[j] = rng.Float64()
		qs += qd[j]
	}
	for j := range qd {
		qd[j] /= qs
	}
	return scorer, elems, topicmodel.NewTopicVec(qd)
}

// Property: incremental Add/Value matches the direct SetScore evaluation for
// random insertion orders, and MarginalGain(e) == Value(S+e) − Value(S).
func TestIncrementalMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		scorer, elems, x := randInstance(t, rng, 12)
		cs := NewCandidateSet(scorer, x)
		var set []*stream.Element
		perm := rng.Perm(len(elems))
		for _, pi := range perm[:6] {
			e := elems[pi]
			gain := cs.MarginalGain(e)
			added := cs.Add(e)
			if math.Abs(gain-added) > 1e-9 {
				t.Fatalf("trial %d: MarginalGain=%v but Add returned %v", trial, gain, added)
			}
			set = append(set, e)
			direct := scorer.SetScore(set, x)
			if math.Abs(cs.Value()-direct) > 1e-9 {
				t.Fatalf("trial %d after %d adds: incremental %v != direct %v",
					trial, len(set), cs.Value(), direct)
			}
		}
	}
}

// Property (Lemma 3.6/3.7 combined): f(·, x) is monotone — every marginal
// gain is non-negative.
func TestMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		scorer, elems, x := randInstance(t, rng, 10)
		cs := NewCandidateSet(scorer, x)
		for _, pi := range rng.Perm(len(elems)) {
			if gain := cs.MarginalGain(elems[pi]); gain < -1e-12 {
				t.Fatalf("trial %d: negative marginal gain %v", trial, gain)
			}
			cs.Add(elems[pi])
		}
	}
}

// Property (submodularity): for S ⊆ T and e ∉ T,
// Δ(e|S) ≥ Δ(e|T). We build T by extending a copy of S.
func TestSubmodularityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		scorer, elems, x := randInstance(t, rng, 12)
		perm := rng.Perm(len(elems))
		e := elems[perm[0]]
		sSize := rng.Intn(4)
		tSize := sSize + rng.Intn(4)

		small := NewCandidateSet(scorer, x)
		big := NewCandidateSet(scorer, x)
		for i := 0; i < tSize; i++ {
			member := elems[perm[1+i]]
			if i < sSize {
				small.Add(member)
			}
			big.Add(member)
		}
		gs, gt := small.MarginalGain(e), big.MarginalGain(e)
		if gs < gt-1e-9 {
			t.Fatalf("trial %d: submodularity violated: Δ(e|S)=%v < Δ(e|T)=%v (|S|=%d |T|=%d)",
				trial, gs, gt, sSize, tSize)
		}
	}
}

func TestAddDuplicateIsNoop(t *testing.T) {
	win, elems := papertest.Window()
	scorer, err := NewScorer(papertest.Model(), win, Params{Lambda: 0.5, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := papertest.QueryUniform()
	cs := NewCandidateSet(scorer, x)
	first := cs.Add(elems[0])
	if first <= 0 {
		t.Fatalf("first add gained %v", first)
	}
	v := cs.Value()
	if again := cs.Add(elems[0]); again != 0 {
		t.Errorf("duplicate add gained %v", again)
	}
	if cs.Value() != v || cs.Len() != 1 {
		t.Errorf("duplicate add changed state: value %v→%v len %d", v, cs.Value(), cs.Len())
	}
	if cs.MarginalGain(elems[0]) != 0 {
		t.Error("MarginalGain of member should be 0")
	}
}

func TestCandidateSetAccessors(t *testing.T) {
	win, elems := papertest.Window()
	scorer, err := NewScorer(papertest.Model(), win, Params{Lambda: 0.5, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCandidateSet(scorer, papertest.QueryUniform())
	if cs.Len() != 0 || cs.Value() != 0 {
		t.Error("empty set should have len 0 value 0")
	}
	cs.Add(elems[2])
	cs.Add(elems[0])
	if !cs.Contains(3) || !cs.Contains(1) || cs.Contains(2) {
		t.Error("Contains wrong")
	}
	got := cs.IDs()
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("IDs = %v, want [3 1] (insertion order)", got)
	}
}

// Marginal gain must reflect the query vector: an element with no topic
// overlap with x gains exactly 0.
func TestNoTopicOverlapGainsZero(t *testing.T) {
	win, elems := papertest.Window()
	scorer, err := NewScorer(papertest.Model(), win, Params{Lambda: 0.5, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Query only on θ2; e4 is purely θ1 — but e4 expired, use a pure-θ1
	// query against e1 restricted to topic θ1=0 overlap... e1 has both
	// topics, so instead query topic θ1 only and check e4-like behaviour
	// via element e1 restricted: use query on a topic no element has.
	x := topicmodel.TopicVec{Topics: []int32{1}, Probs: []float64{1}}
	cs := NewCandidateSet(scorer, x)
	// e3 is mostly θ1 but has p2=0.11 > 0 → small positive gain.
	if g := cs.MarginalGain(elems[2]); g <= 0 {
		t.Errorf("e3 gain on θ2 = %v, want small positive", g)
	}
	// Synthetic element with only θ1 mass gains zero on a θ2-only query.
	foreign := &stream.Element{
		ID: 99, TS: 8,
		Doc:    textproc.NewDocument([]textproc.WordID{0}),
		Topics: topicmodel.TopicVec{Topics: []int32{0}, Probs: []float64{1}},
	}
	if g := cs.MarginalGain(foreign); g != 0 {
		t.Errorf("disjoint-topic element gain = %v, want 0", g)
	}
}
