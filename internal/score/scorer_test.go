package score

import (
	"math"
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// paperScorer builds a Scorer on the paper's running example: λ=0.5, η=2,
// T=4, advanced to t=8 (Example 3.4).
func paperScorer(t *testing.T) (*Scorer, []*stream.Element) {
	t.Helper()
	win, elems := papertest.Window()
	s, err := NewScorer(papertest.Model(), win, Params{Lambda: 0.5, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	return s, elems
}

func TestParamsValidate(t *testing.T) {
	for _, bad := range []Params{
		{Lambda: -0.1, Eta: 1},
		{Lambda: 1.1, Eta: 1},
		{Lambda: 0.5, Eta: 0},
		{Lambda: 0.5, Eta: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Params %+v accepted", bad)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

// Example 3.1: R_2({e2, e7}) = 0.53. The semantic score of the pair on θ2
// sums the per-word maxima: σ2(w4,e2)=0.18, σ2(w9,e2)=0.15, σ2(w11,e2)=0.20.
func TestExample31SemanticScore(t *testing.T) {
	s, elems := paperScorer(t)
	set := []*stream.Element{elems[1], elems[6]} // e2, e7
	got := s.setSemantic(set, 1)
	if math.Abs(got-0.53) > 0.01 {
		t.Errorf("R_2({e2,e7}) = %v, want 0.53", got)
	}
	// e7 alone contributes nothing beyond e2 (its words are dominated).
	solo := s.setSemantic([]*stream.Element{elems[1]}, 1)
	if math.Abs(solo-got) > 1e-12 {
		t.Errorf("e7 should add nothing: R_2({e2}) = %v vs pair %v", solo, got)
	}
}

// Example 3.2: I_{2,8}({e2, e3}) = 0.93, from p2(S⇝e6)=0.03, p2(S⇝e7)=0.50,
// p2(S⇝e8)=0.40.
func TestExample32InfluenceScore(t *testing.T) {
	s, elems := paperScorer(t)
	set := []*stream.Element{elems[1], elems[2]} // e2, e3
	got := s.setInfluence(set, 1)
	if math.Abs(got-0.93) > 0.01 {
		t.Errorf("I_{2,8}({e2,e3}) = %v, want 0.93", got)
	}
}

// Example 3.4: f({e1,e3}, x1) = 0.65 for x1=(0.5,0.5) and f({e1,e2}, x2) =
// 0.94 for x2=(0.1,0.9), and these are the optima over all pairs.
func TestExample34OptimalSets(t *testing.T) {
	s, elems := paperScorer(t)
	active := activeElems(s, elems)

	x1 := papertest.QueryUniform()
	got1 := s.SetScore([]*stream.Element{elems[0], elems[2]}, x1)
	if math.Abs(got1-0.65) > 0.02 {
		t.Errorf("f({e1,e3}, x1) = %v, want 0.65", got1)
	}
	best1, bestSet1 := bruteForcePairs(s, active, x1)
	if !sameIDs(bestSet1, []stream.ElemID{1, 3}) {
		t.Errorf("optimal pair for x1 = %v (%.4f), want {e1,e3}", ids(bestSet1), best1)
	}

	x2 := papertest.QuerySkewed()
	got2 := s.SetScore([]*stream.Element{elems[0], elems[1]}, x2)
	if math.Abs(got2-0.94) > 0.02 {
		t.Errorf("f({e1,e2}, x2) = %v, want 0.94", got2)
	}
	_, bestSet2 := bruteForcePairs(s, active, x2)
	if !sameIDs(bestSet2, []stream.ElemID{1, 2}) {
		t.Errorf("optimal pair for x2 = %v, want {e1,e2}", ids(bestSet2))
	}
}

// Figure 5: the ranked-list scores δ_i(e) at t=8. Spot-check several.
func TestFigure5TopicScores(t *testing.T) {
	s, elems := paperScorer(t)
	checks := []struct {
		elem  int // 0-based index
		topic int32
		want  float64
	}{
		{2, 0, 0.65}, // δ1(e3)
		{5, 0, 0.48}, // δ1(e6)
		{0, 1, 0.56}, // δ2(e1)
		{1, 1, 0.48}, // δ2(e2)
		{4, 1, 0.27}, // δ2(e5)
		{6, 1, 0.18}, // δ2(e7)
		{2, 1, 0.03}, // δ2(e3)
	}
	for _, c := range checks {
		got := s.TopicScore(elems[c.elem], c.topic)
		if math.Abs(got-c.want) > 0.011 {
			t.Errorf("δ_%d(e%d) = %.4f, want %.2f", c.topic+1, c.elem+1, got, c.want)
		}
	}
	// p_i(e)=0 ⇒ δ_i(e)=0: e4 has p2=0 (and is expired anyway).
	if got := s.TopicScore(elems[3], 1); got != 0 {
		t.Errorf("δ_2(e4) = %v, want 0", got)
	}
}

func TestScoreMatchesSingletonSetScore(t *testing.T) {
	s, elems := paperScorer(t)
	x := papertest.QueryUniform()
	for _, e := range activeElems(s, elems) {
		a := s.Score(e, x)
		b := s.SetScore([]*stream.Element{e}, x)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("Score(e%d) = %v but SetScore singleton = %v", e.ID, a, b)
		}
	}
}

func TestOnChangeEvictsCache(t *testing.T) {
	win := stream.NewActiveWindow(4)
	s, err := NewScorer(papertest.Model(), win, Params{Lambda: 0.5, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range papertest.Elements() {
		cs, err := win.Advance(e.TS, []*stream.Element{e})
		if err != nil {
			t.Fatal(err)
		}
		s.OnChange(cs)
	}
	// e4 expired at t=8; its cache entry must be gone.
	if _, ok := s.cache[4]; ok {
		t.Error("expired element still cached")
	}
	if len(s.cache) != 7 {
		t.Errorf("cache has %d entries, want 7", len(s.cache))
	}
}

// --- helpers ---

func activeElems(s *Scorer, elems []*stream.Element) []*stream.Element {
	var out []*stream.Element
	for _, e := range elems {
		if _, ok := s.win.Get(e.ID); ok {
			out = append(out, e)
		}
	}
	return out
}

func bruteForcePairs(s *Scorer, elems []*stream.Element, x topicmodel.TopicVec) (float64, []*stream.Element) {
	var best float64
	var bestSet []*stream.Element
	for i := 0; i < len(elems); i++ {
		for j := i + 1; j < len(elems); j++ {
			set := []*stream.Element{elems[i], elems[j]}
			if v := s.SetScore(set, x); v > best {
				best, bestSet = v, set
			}
		}
	}
	return best, bestSet
}

func sameIDs(set []*stream.Element, want []stream.ElemID) bool {
	if len(set) != len(want) {
		return false
	}
	have := make(map[stream.ElemID]bool)
	for _, e := range set {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			return false
		}
	}
	return true
}

func ids(set []*stream.Element) []stream.ElemID {
	out := make([]stream.ElemID, len(set))
	for i, e := range set {
		out[i] = e.ID
	}
	return out
}
