package score

import (
	"math"
	"math/rand"
	"testing"

	"github.com/social-streams/ksir/internal/papertest"
	"github.com/social-streams/ksir/internal/stream"
)

func TestExplainTelescopesToSetScore(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		scorer, elems, x := randInstance(t, rng, 10)
		perm := rng.Perm(len(elems))
		set := make([]*stream.Element, 0, 5)
		for _, pi := range perm[:5] {
			set = append(set, elems[pi])
		}
		contribs := scorer.Explain(set, x)
		if len(contribs) != len(set) {
			t.Fatalf("got %d contributions", len(contribs))
		}
		var total float64
		for _, c := range contribs {
			total += c.Gain
			if math.Abs(c.Gain-(c.Semantic+c.Influence)) > 1e-12 {
				t.Fatalf("gain split broken: %v != %v + %v", c.Gain, c.Semantic, c.Influence)
			}
			var topicSum float64
			for _, g := range c.TopicGains {
				topicSum += g
			}
			if math.Abs(topicSum-c.Gain) > 1e-9 {
				t.Fatalf("topic split %v != gain %v", topicSum, c.Gain)
			}
		}
		direct := scorer.SetScore(set, x)
		if math.Abs(total-direct) > 1e-9 {
			t.Fatalf("trial %d: telescoped %v != direct %v", trial, total, direct)
		}
	}
}

func TestExplainPaperExample(t *testing.T) {
	win, elems := papertest.Window()
	scorer, err := NewScorer(papertest.Model(), win, Params{Lambda: 0.5, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := papertest.QueryUniform()
	// The optimal pair {e3, e1}: e3 first (highest singleton score).
	contribs := scorer.Explain([]*stream.Element{elems[2], elems[0]}, x)
	if math.Abs(contribs[0].Gain-0.34) > 0.01 {
		t.Errorf("Δ(e3|∅) = %v, want 0.34 (Example 4.1)", contribs[0].Gain)
	}
	if contribs[0].NewWords != 4 {
		t.Errorf("e3 contributes %d new words, want its 4 distinct words", contribs[0].NewWords)
	}
	// e3's influence flows through its references (e6, e8 in window).
	if contribs[0].Influence <= 0 {
		t.Error("e3 should have influence contribution")
	}
	// e1's duplicate-free words still count fully (no overlap with e3).
	if contribs[1].NewWords != 5 {
		t.Errorf("e1 contributes %d new words, want 5", contribs[1].NewWords)
	}
	total := contribs[0].Gain + contribs[1].Gain
	if math.Abs(total-0.65) > 0.02 {
		t.Errorf("total = %v, want 0.65", total)
	}
}

func TestExplainEmptySet(t *testing.T) {
	win, _ := papertest.Window()
	scorer, err := NewScorer(papertest.Model(), win, Params{Lambda: 0.5, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := scorer.Explain(nil, papertest.QueryUniform()); len(got) != 0 {
		t.Errorf("Explain(nil) = %v", got)
	}
}
