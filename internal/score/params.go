// Package score implements the k-SIR representativeness scoring of §3.2:
// topic-specific semantic scores R_i (weighted word coverage with
// information-entropy word weights), topic-specific time-critical influence
// scores I_{i,t} (probabilistic coverage over in-window references), their
// combination f(S, x), and incremental candidate-set state that evaluates
// marginal gains Δ(e|S) in O(|V_e| + |I_t(e)|) per query topic.
package score

import "fmt"

// Params are the scoring trade-off factors of Equation 2.
type Params struct {
	// Lambda ∈ [0,1] trades semantic against influence score
	// (λ=1: pure word coverage; λ=0: pure influence).
	Lambda float64
	// Eta > 0 rescales the influence score to the semantic score's range.
	// The paper uses 20 for AMiner/Reddit and 200 for Twitter.
	Eta float64
}

// DefaultParams returns the paper's default λ=0.5, η=20.
func DefaultParams() Params { return Params{Lambda: 0.5, Eta: 20} }

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.Lambda < 0 || p.Lambda > 1 {
		return fmt.Errorf("score: lambda must be in [0,1], got %v", p.Lambda)
	}
	if p.Eta <= 0 {
		return fmt.Errorf("score: eta must be positive, got %v", p.Eta)
	}
	return nil
}

// inflFactor returns (1−λ)/η, the influence multiplier of Equation 2.
func (p Params) inflFactor() float64 { return (1 - p.Lambda) / p.Eta }
