package score

import (
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// CandidateSet is the incremental evaluation state for one candidate result
// set S of a query vector x. It supports marginal-gain queries Δ(e|S) and
// additions in O(d·(|V_e| + |I_t(e)|)) where d is the number of non-zero
// query entries, exactly the per-evaluation cost the paper's complexity
// analysis assumes (§4.2).
//
// MTTS keeps O(log k / ε) of these per query; MTTD and the submodular
// baselines keep one.
type CandidateSet struct {
	scorer  *Scorer
	x       topicmodel.TopicVec
	members []*stream.Element
	inSet   map[stream.ElemID]struct{}
	value   float64

	// Per query-topic-position state, parallel to x.Topics:
	// covered[i][w] = max_{e∈S} σ_i(w,e)  — the word-coverage maxima.
	covered []map[int32]float64
	// inflProb[i][c] = p_i(S ⇝ c) for children c ∈ I_t(S).
	inflProb []map[stream.ElemID]float64
}

// NewCandidateSet returns an empty candidate set for query vector x.
func NewCandidateSet(s *Scorer, x topicmodel.TopicVec) *CandidateSet {
	cs := &CandidateSet{
		scorer:   s,
		x:        x,
		inSet:    make(map[stream.ElemID]struct{}),
		covered:  make([]map[int32]float64, x.Len()),
		inflProb: make([]map[stream.ElemID]float64, x.Len()),
	}
	for i := range cs.covered {
		cs.covered[i] = make(map[int32]float64)
		cs.inflProb[i] = make(map[stream.ElemID]float64)
	}
	return cs
}

// Len returns |S|.
func (cs *CandidateSet) Len() int { return len(cs.members) }

// Value returns f(S, x), maintained incrementally.
func (cs *CandidateSet) Value() float64 { return cs.value }

// Members returns the elements of S in insertion order. The caller must not
// mutate the returned slice.
func (cs *CandidateSet) Members() []*stream.Element { return cs.members }

// Contains reports whether e is already in S.
func (cs *CandidateSet) Contains(id stream.ElemID) bool {
	_, ok := cs.inSet[id]
	return ok
}

// MarginalGain returns Δ(e|S) = f(S ∪ {e}, x) − f(S, x) without mutating
// the set. Adding an element already in S gains exactly 0.
func (cs *CandidateSet) MarginalGain(e *stream.Element) float64 {
	if cs.Contains(e.ID) {
		return 0
	}
	ec := cs.scorer.ensureCached(e)
	params := cs.scorer.params
	var gain float64
	cs.forEachSharedTopic(e, func(qi, ej int, topic int32) {
		xi := cs.x.Probs[qi]
		// Semantic gain: uncovered portions of e's word weights.
		var dSem float64
		for k, tc := range e.Doc.Terms {
			if sig := ec.wordWeights[ej][k]; sig > cs.covered[qi][int32(tc.Word)] {
				dSem += sig - cs.covered[qi][int32(tc.Word)]
			}
		}
		// Influence gain: Σ_c p_i(e⇝c)·(1 − p_i(S⇝c)).
		var dInfl float64
		pe := e.Topics.Probs[ej]
		cs.scorer.win.ForEachChild(e.ID, func(c *stream.Element) {
			p := pe * c.Topics.Prob(topic)
			dInfl += p * (1 - cs.inflProb[qi][c.ID])
		})
		gain += xi * (params.Lambda*dSem + params.inflFactor()*dInfl)
	})
	return gain
}

// Add inserts e into S, updates the incremental state and returns the
// realized marginal gain. Adding a member again is a no-op returning 0.
func (cs *CandidateSet) Add(e *stream.Element) float64 {
	if cs.Contains(e.ID) {
		return 0
	}
	ec := cs.scorer.ensureCached(e)
	params := cs.scorer.params
	var gain float64
	cs.forEachSharedTopic(e, func(qi, ej int, topic int32) {
		xi := cs.x.Probs[qi]
		var dSem float64
		for k, tc := range e.Doc.Terms {
			w := int32(tc.Word)
			if sig := ec.wordWeights[ej][k]; sig > cs.covered[qi][w] {
				dSem += sig - cs.covered[qi][w]
				cs.covered[qi][w] = sig
			}
		}
		var dInfl float64
		pe := e.Topics.Probs[ej]
		cs.scorer.win.ForEachChild(e.ID, func(c *stream.Element) {
			p := pe * c.Topics.Prob(topic)
			old := cs.inflProb[qi][c.ID]
			dInfl += p * (1 - old)
			cs.inflProb[qi][c.ID] = 1 - (1-old)*(1-p)
		})
		gain += xi * (params.Lambda*dSem + params.inflFactor()*dInfl)
	})
	cs.members = append(cs.members, e)
	cs.inSet[e.ID] = struct{}{}
	cs.value += gain
	return gain
}

// forEachSharedTopic merges the sorted topic lists of the query vector and
// the element, calling fn with the query position, element position and
// topic for every topic they share.
func (cs *CandidateSet) forEachSharedTopic(e *stream.Element, fn func(qi, ej int, topic int32)) {
	i, j := 0, 0
	for i < len(cs.x.Topics) && j < len(e.Topics.Topics) {
		switch {
		case cs.x.Topics[i] < e.Topics.Topics[j]:
			i++
		case cs.x.Topics[i] > e.Topics.Topics[j]:
			j++
		default:
			if cs.x.Probs[i] > 0 {
				fn(i, j, cs.x.Topics[i])
			}
			i++
			j++
		}
	}
}

// IDs returns the member IDs in insertion order.
func (cs *CandidateSet) IDs() []stream.ElemID {
	ids := make([]stream.ElemID, len(cs.members))
	for i, e := range cs.members {
		ids[i] = e.ID
	}
	return ids
}
