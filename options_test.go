package ksir

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// The paper's λ knob must be configurable at both extremes: λ=0 (pure
// influence) was historically impossible because Options.fill treated the
// zero value as "unset". WithLambda distinguishes the two.
func TestLambdaExtremesConfigurable(t *testing.T) {
	m := trainTestModel(t)
	base := Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}

	zero, err := New(m, base, WithLambda(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := zero.Options().Lambda; got != 0 {
		t.Fatalf("WithLambda(0) resolved to %v, want 0", got)
	}
	one, err := New(m, base, WithLambda(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := one.Options().Lambda; got != 1 {
		t.Fatalf("WithLambda(1) resolved to %v, want 1", got)
	}
	// Back-compat: an unset Lambda still defaults to 0.5.
	def, err := New(m, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := def.Options().Lambda; got != 0.5 {
		t.Fatalf("default lambda = %v, want 0.5", got)
	}
	// WithLambda overrides the Options field.
	over, err := New(m, Options{Window: time.Hour, Bucket: time.Minute, Lambda: 0.9, Eta: 2}, WithLambda(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if got := over.Options().Lambda; got != 0.25 {
		t.Fatalf("override lambda = %v, want 0.25", got)
	}

	// Out-of-range and NaN are typed errors.
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := New(m, base, WithLambda(bad)); !errors.Is(err, ErrBadOptions) {
			t.Errorf("WithLambda(%v) err = %v, want ErrBadOptions", bad, err)
		}
	}

	// Behavioral check at the extremes: feed identical data with one
	// heavily-referenced post; the λ=0 (influence-only) and λ=1
	// (semantics-only) objectives must disagree about its value.
	for _, st := range []*Stream{zero, one} {
		for i := 0; i < 30; i++ {
			p := Post{ID: int64(i + 1), Time: int64(1 + i*10), Text: "goal striker league"}
			if i > 2 {
				p.Refs = []int64{1} // post 1 accumulates influence
			}
			if err := st.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Flush(400); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{K: 2, Keywords: []string{"goal", "league"}}
	resZero, err := zero.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	resOne, err := one.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resZero.Posts) == 0 || len(resOne.Posts) == 0 {
		t.Fatalf("empty results: λ=0 %d posts, λ=1 %d posts", len(resZero.Posts), len(resOne.Posts))
	}
	if resZero.Score == resOne.Score {
		t.Errorf("λ=0 and λ=1 gave identical scores (%v); lambda not reaching the scorer", resZero.Score)
	}
	// Under pure influence the referenced post must lead the result.
	if resZero.Posts[0].ID != 1 {
		t.Errorf("λ=0 top post = %d, want the referenced post 1", resZero.Posts[0].ID)
	}
}

// A cancelled context aborts Query with ctx.Err, before or during the
// ranked-list descent.
func TestQueryContextCancellation(t *testing.T) {
	st := newTwoTopicStream(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{MTTD, MTTS, TopK} {
		_, err := st.Query(ctx, Query{K: 3, Keywords: []string{"goal"}, Algorithm: alg})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("alg %v: err = %v, want context.Canceled", alg, err)
		}
	}
	// A nil context is treated as Background and succeeds.
	var nilCtx context.Context
	if _, err := st.Query(nilCtx, Query{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Errorf("nil ctx: %v", err)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	m := trainTestModel(t)
	st, err := New(m, Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(Post{ID: 1, Time: 0}); !errors.Is(err, ErrBadPost) {
		t.Errorf("zero-time err = %v, want ErrBadPost", err)
	}
	if err := st.Add(Post{ID: 1, Time: 100, Text: "goal"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(Post{ID: 2, Time: 50, Text: "goal"}); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("out-of-order err = %v, want ErrOutOfOrder", err)
	}
	if err := st.Flush(10); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("backwards flush err = %v, want ErrOutOfOrder", err)
	}
	// Duplicate IDs are rejected at Add time — against the active window
	// (post 1 was ingested by the flush) and against the pending buffer —
	// so a bad post cannot poison the bucket it would be batched into.
	if err := st.Flush(100); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(Post{ID: 1, Time: 200, Text: "goal"}); !errors.Is(err, ErrBadPost) {
		t.Errorf("window-duplicate err = %v, want ErrBadPost", err)
	}
	if err := st.Add(Post{ID: 7, Time: 200, Text: "goal"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(Post{ID: 7, Time: 210, Text: "goal"}); !errors.Is(err, ErrBadPost) {
		t.Errorf("pending-duplicate err = %v, want ErrBadPost", err)
	}
	if err := st.Flush(300); err != nil {
		t.Fatalf("flush after rejected duplicates: %v", err)
	}

	ctx := context.Background()
	for _, q := range []Query{
		{K: 0, Keywords: []string{"goal"}},
		{K: 3},
		{K: 3, Keywords: []string{"zzzzunknown"}},
		{K: 3, Vector: map[int]float64{9: 1}},
		{K: 3, Keywords: []string{"goal"}, Algorithm: Algorithm(9)},
	} {
		if _, err := st.Query(ctx, q); !errors.Is(err, ErrBadQuery) {
			t.Errorf("query %+v err = %v, want ErrBadQuery", q, err)
		}
	}
	if _, err := st.Subscribe(ctx, Query{K: 0, Keywords: []string{"x"}}, time.Hour, func(Result) {}); !errors.Is(err, ErrBadSubscription) {
		t.Errorf("bad subscription err = %v, want ErrBadSubscription", err)
	}
	if _, err := New(m, Options{Window: time.Minute, Bucket: time.Hour}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("bad options err = %v, want ErrBadOptions", err)
	}
}
