package ksir

import "errors"

// The package's error taxonomy. Every error returned by the public API
// wraps exactly one of these sentinels, so callers branch with errors.Is
// instead of matching message strings, and the HTTP layer can map each
// class to a status code (see api/v1):
//
//	res, err := st.Query(ctx, q)
//	switch {
//	case errors.Is(err, ksir.ErrBadQuery):     // caller bug: fix the query
//	case errors.Is(err, ksir.ErrOutOfOrder):   // producer bug: clock skew
//	}
//
// Context errors (context.Canceled, context.DeadlineExceeded) are returned
// unwrapped from cancelled queries.
var (
	// ErrBadOptions reports invalid stream configuration (New, Hub.Create).
	ErrBadOptions = errors.New("ksir: invalid options")
	// ErrBadPost reports a post that can never be ingested: non-positive
	// timestamp, duplicate ID, or a malformed bucket.
	ErrBadPost = errors.New("ksir: invalid post")
	// ErrOutOfOrder reports a timestamp-ordering violation: a post older
	// than the stream's last accepted time, or a Flush into the past.
	ErrOutOfOrder = errors.New("ksir: out of order")
	// ErrBadQuery reports an unanswerable query: K ≤ 0, no keywords or
	// vector, out-of-range topics or weights, unknown algorithm, or
	// keywords entirely outside the model vocabulary.
	ErrBadQuery = errors.New("ksir: bad query")
	// ErrBadSubscription reports an invalid standing-query registration.
	ErrBadSubscription = errors.New("ksir: bad subscription")
	// ErrUnknownStream reports a Hub lookup of a name that is not
	// registered (or was already closed).
	ErrUnknownStream = errors.New("ksir: unknown stream")
	// ErrStreamExists reports a Hub.Create/Adopt of a name already in use.
	ErrStreamExists = errors.New("ksir: stream already exists")
	// ErrStreamClosed reports an operation on a stream handle whose stream
	// has been closed out of the Hub.
	ErrStreamClosed = errors.New("ksir: stream closed")
	// ErrStreamBusy reports a residency transition that cannot proceed
	// while the stream is in use — hibernating a stream with standing
	// queries registered (unsubscribe them first; subscriptions live in
	// memory only and would be silently dropped by a hibernation).
	ErrStreamBusy = errors.New("ksir: stream busy")
	// ErrNotActive reports a post that is no longer in the sliding window
	// (e.g. Explain after further ingestion expired it).
	ErrNotActive = errors.New("ksir: post no longer active")
	// ErrModelVersion reports an on-disk artifact — model file, checkpoint,
	// WAL — written by an incompatible format version, or persisted stream
	// state being opened against a different model than it was built with.
	ErrModelVersion = errors.New("ksir: unsupported format version")
	// ErrPersist reports a durability failure: the in-memory operation may
	// have been applied, but it could not be made durable (WAL append or
	// checkpoint write failed), or persisted state could not be recovered.
	ErrPersist = errors.New("ksir: persistence error")
	// ErrPersistDisabled reports a durability operation (e.g.
	// StreamHandle.Checkpoint) on a stream that has no persistence — a Hub
	// built with NewHub instead of OpenHub.
	ErrPersistDisabled = errors.New("ksir: persistence not enabled")
)
