// Package integration exercises the full wire surface of a durable
// ksir-server deployment the way an operator's tooling would: the Go SDK
// drives the lifecycle (ingest, query, checkpoint, hibernate, recover) and
// a Prometheus-style scraper reads /metrics between steps, asserting the
// exposition stays well-formed and every counter family monotone.
package integration

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/client"
	"github.com/social-streams/ksir/internal/metrics"
	"github.com/social-streams/ksir/internal/server"
)

// metricFamilies is every family the observability subsystem exports
// (DESIGN.md §12), with its TYPE. The test fails when a family disappears
// from the scrape or changes type — the exposition is a wire contract.
var metricFamilies = map[string]string{
	"ksir_engine_elements_ingested_total": "counter",
	"ksir_engine_buckets_total":           "counter",
	"ksir_engine_update_seconds_total":    "counter",
	"ksir_engine_replay_seconds_total":    "counter",
	"ksir_engine_query_duration_seconds":  "histogram",
	"ksir_engine_snapshot_pins":           "gauge",

	"ksir_pipeline_ops_total":                 "counter",
	"ksir_pipeline_commit_batches_total":      "counter",
	"ksir_pipeline_commit_duration_seconds":   "histogram",
	"ksir_pipeline_batch_size":                "histogram",
	"ksir_pipeline_commit_window_waits_total": "counter",

	"ksir_wal_appends_total":           "counter",
	"ksir_wal_appended_bytes_total":    "counter",
	"ksir_wal_append_duration_seconds": "histogram",
	"ksir_wal_fsyncs_total":            "counter",
	"ksir_wal_fsync_duration_seconds":  "histogram",
	"ksir_wal_replay_seconds_total":    "counter",
	"ksir_checkpoints_total":           "counter",
	"ksir_checkpoint_bytes_total":      "counter",
	"ksir_checkpoint_duration_seconds": "histogram",

	"ksir_residency_activations_total":           "counter",
	"ksir_residency_activation_duration_seconds": "histogram",
	"ksir_residency_hibernations_total":          "counter",
	"ksir_residency_evictions_total":             "counter",
	"ksir_residency_stale_evictions_total":       "counter",

	"ksir_hub_prefetch_activations_total": "counter",
	"ksir_hub_prefetch_hits_total":        "counter",
	"ksir_hub_prefetch_misses_total":      "counter",
	"ksir_hub_ghost_hits_total":           "counter",
	"ksir_hub_second_chance_saves_total":  "counter",
	"ksir_hub_lazy_materialize_total":     "counter",

	"ksir_http_requests_total":           "counter",
	"ksir_http_request_duration_seconds": "histogram",
	"ksir_http_requests_in_flight":       "gauge",
	"ksir_sse_subscribers":               "gauge",
	"ksir_sse_dropped_total":             "counter",

	"ksir_hub_streams":          "gauge",
	"ksir_hub_resident_streams": "gauge",
	"ksir_hub_resident_bytes":   "gauge",
	"ksir_hub_elements":         "gauge",
}

// scrapeState is one parsed exposition: family → TYPE, and series → value.
type scrapeState struct {
	types   map[string]string
	samples map[string]float64
}

func parseScrape(t *testing.T, body string) *scrapeState {
	t.Helper()
	st := &scrapeState{types: map[string]string{}, samples: map[string]float64{}}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			st.types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		st.samples[line[:sp]] = val
	}
	return st
}

// familyOf strips the series key down to the family name.
func familyOf(series string) string {
	name := series
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suffix)
	}
	return name
}

func scrapeServer(t *testing.T, url string) *scrapeState {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	var sb strings.Builder
	if _, err := copyAll(&sb, resp); err != nil {
		t.Fatal(err)
	}
	return parseScrape(t, sb.String())
}

func copyAll(sb *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 32*1024)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		sb.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

// checkFamilies asserts every exported family is present with its
// contracted TYPE, and every histogram family is structurally sound:
// cumulative buckets, le ascending, +Inf equal to _count.
func checkFamilies(t *testing.T, st *scrapeState) {
	t.Helper()
	for fam, typ := range metricFamilies {
		if got, ok := st.types[fam]; !ok {
			t.Errorf("family %s missing from scrape", fam)
		} else if got != typ {
			t.Errorf("family %s TYPE = %q, want %q", fam, got, typ)
		}
	}

	// Group histogram bucket series by family+labels (minus le).
	type histKey struct{ group string }
	buckets := map[histKey][]struct {
		le  float64
		val float64
	}{}
	for series, val := range st.samples {
		fam := familyOf(series)
		if st.types[fam] != "histogram" || !strings.Contains(series, "_bucket") {
			continue
		}
		leStart := strings.Index(series, `le="`)
		if leStart < 0 {
			t.Errorf("histogram bucket without le label: %s", series)
			continue
		}
		leEnd := strings.IndexByte(series[leStart+4:], '"')
		leRaw := series[leStart+4 : leStart+4+leEnd]
		le := 0.0
		if leRaw == "+Inf" {
			le = 1e308
		} else {
			var err error
			if le, err = strconv.ParseFloat(leRaw, 64); err != nil {
				t.Fatalf("bucket le %q: %v", leRaw, err)
			}
		}
		group := series[:leStart] + series[leStart+4+leEnd+1:]
		k := histKey{group}
		buckets[k] = append(buckets[k], struct{ le, val float64 }{le, val})
	}
	for k, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		for i := 1; i < len(bs); i++ {
			if bs[i].val < bs[i-1].val {
				t.Errorf("%s: buckets not cumulative (%.0f then %.0f)", k.group, bs[i-1].val, bs[i].val)
			}
		}
		countSeries := strings.Replace(k.group, "_bucket", "_count", 1)
		countSeries = strings.TrimSuffix(strings.TrimSuffix(countSeries, "{}"), ",}")
		count, ok := st.samples[countSeries]
		if !ok {
			// Labeled histograms keep their other labels in the count series.
			continue
		}
		if inf := bs[len(bs)-1].val; inf != count {
			t.Errorf("%s: +Inf bucket %.0f != count %.0f", k.group, inf, count)
		}
	}
}

// checkMonotone asserts no counter series decreased between two scrapes.
// withRestart skips the per-stream {stream="..."} roll-ups: they mirror the
// stream handle's own lifetime counters, which legitimately reset when the
// hub reopens (Prometheus counter semantics — scrapers absorb resets via
// rate()), while the process-global registry families must keep climbing.
func checkMonotone(t *testing.T, before, after *scrapeState, withRestart bool) {
	t.Helper()
	for series, prev := range before.samples {
		if withRestart && strings.HasPrefix(series, "ksir_stream_") {
			continue
		}
		fam := familyOf(series)
		typ := after.types[fam]
		if typ != "counter" && typ != "histogram" {
			continue
		}
		if strings.HasSuffix(strings.SplitN(series, "{", 2)[0], "_sum") && typ == "histogram" {
			// Sums are monotone too (durations are non-negative); fall through.
			_ = typ
		}
		if cur, ok := after.samples[series]; ok && cur < prev {
			t.Errorf("series %s decreased: %v -> %v", series, prev, cur)
		}
	}
}

func trainModel(t *testing.T) *ksir.Model {
	t.Helper()
	soccer := []string{"goal", "striker", "keeper", "league", "derby", "penalty"}
	basket := []string{"dunk", "rebound", "playoffs", "court", "buzzer", "triple"}
	rng := rand.New(rand.NewSource(1))
	var corpus []string
	for i := 0; i < 200; i++ {
		words := soccer
		if i%2 == 1 {
			words = basket
		}
		var b []string
		for j := 0; j < 6; j++ {
			b = append(b, words[rng.Intn(len(words))])
		}
		corpus = append(corpus, strings.Join(b, " "))
	}
	m, err := ksir.TrainModel(corpus, ksir.WithTopics(2), ksir.WithIterations(40),
		ksir.WithSeed(1), ksir.WithPriors(0.5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMetricsSurfaceEndToEnd boots a durable hub behind the HTTP server,
// drives the full stream lifecycle through the Go SDK — ingest, flush,
// query, checkpoint, hibernate, reactivate, recover from disk — and
// scrapes /metrics at each stage. Every exported family must be present
// with its contracted TYPE, histograms must be structurally valid, and no
// counter may ever decrease, across recovery included (the registry is
// process-global, so a restart within the process keeps counting up).
func TestMetricsSurfaceEndToEnd(t *testing.T) {
	ctx := context.Background()
	m := trainModel(t)
	dir := t.TempDir()
	opts := ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}

	boot := func() (*ksir.Hub, *httptest.Server) {
		hub, err := ksir.OpenHub(dir, m, ksir.PersistOptions{Fsync: ksir.FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		return hub, httptest.NewServer(server.NewHub(hub, m, opts))
	}
	hub, srv := boot()
	sdk := client.New(srv.URL)

	if _, err := sdk.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "feed"}); err != nil {
		t.Fatal(err)
	}
	feed := sdk.Stream("feed")
	for i := 0; i < 12; i++ {
		text := "late goal wins the derby"
		if i%2 == 1 {
			text = "what a dunk in the playoffs"
		}
		if _, err := feed.Add(ctx, apiv1.Post{ID: int64(i + 1), Time: int64(30 * (i + 1)), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := feed.Flush(ctx, 600); err != nil {
		t.Fatal(err)
	}
	if _, err := feed.Query(ctx, apiv1.QueryRequest{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Fatal(err)
	}

	first := scrapeServer(t, srv.URL)
	checkFamilies(t, first)
	if first.samples["ksir_wal_fsyncs_total"] <= 0 {
		t.Error("fsync=always ingest left ksir_wal_fsyncs_total at zero")
	}
	if first.samples[`ksir_http_requests_total{route="posts"}`] < 12 {
		t.Errorf("posts route counter = %v, want >= 12",
			first.samples[`ksir_http_requests_total{route="posts"}`])
	}

	// Checkpoint, hibernate, and come back: the residency counters move and
	// nothing moves backwards.
	if _, err := feed.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := feed.Hibernate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != apiv1.StateHibernated {
		t.Fatalf("state after hibernate = %q", info.State)
	}
	if _, err := feed.Query(ctx, apiv1.QueryRequest{K: 3, Keywords: []string{"dunk"}}); err != nil {
		t.Fatal(err)
	}

	second := scrapeServer(t, srv.URL)
	checkFamilies(t, second)
	checkMonotone(t, first, second, false)
	if second.samples["ksir_residency_hibernations_total"] <= first.samples["ksir_residency_hibernations_total"] {
		t.Error("hibernation did not move ksir_residency_hibernations_total")
	}
	if second.samples["ksir_residency_activations_total"] <= first.samples["ksir_residency_activations_total"] {
		t.Error("reactivating query did not move ksir_residency_activations_total")
	}
	if second.samples["ksir_checkpoints_total"] <= first.samples["ksir_checkpoints_total"] {
		t.Error("checkpoint did not move ksir_checkpoints_total")
	}

	// Restart from disk: recovery replays state, the exposition stays whole,
	// and the recovered stream answers queries with its durable contents.
	srv.Close()
	if err := hub.CloseAll(); err != nil {
		t.Fatal(err)
	}
	hub, srv = boot()
	defer srv.Close()
	defer hub.CloseAll()
	sdk = client.New(srv.URL)

	res, err := sdk.Stream("feed").Query(ctx, apiv1.QueryRequest{K: 3, Keywords: []string{"goal"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posts) == 0 {
		t.Fatal("recovered stream returned no results")
	}
	third := scrapeServer(t, srv.URL)
	checkFamilies(t, third)
	checkMonotone(t, second, third, true)
	if third.samples["ksir_hub_streams"] != 1 { // "feed", recovered from disk
		t.Errorf("hub streams after recovery = %v, want 1", third.samples["ksir_hub_streams"])
	}
}
