package integration

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/client"
	"github.com/social-streams/ksir/internal/server"
	"github.com/social-streams/ksir/internal/trace"
)

// Wire shapes of GET /debug/traces (internal/server/trace.go).
type wireSpan struct {
	SpanID string `json:"span_id"`
	Parent string `json:"parent"`
	Name   string `json:"name"`
	Dur    int64  `json:"duration_ns"`
}

type wireTrace struct {
	TraceID string     `json:"trace_id"`
	Stream  string     `json:"stream"`
	Dur     int64      `json:"duration_ns"`
	Spans   []wireSpan `json:"spans"`
}

func fetchTraces(t *testing.T, url string) []wireTrace {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	var body struct {
		Traces []wireTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Traces
}

// waitTrace polls /debug/traces until pred matches a trace: the root op is
// closed just after the response bytes leave the handler, so the trace can
// land in the ring a moment after the SDK call returns.
func waitTrace(t *testing.T, url string, pred func(wireTrace) bool) wireTrace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, tr := range fetchTraces(t, url) {
			if pred(tr) {
				return tr
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no trace matching predicate at %s", url)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// span returns the first span with the given name, failing if absent.
func (tr wireTrace) span(t *testing.T, name string) wireSpan {
	t.Helper()
	for _, s := range tr.Spans {
		if s.Name == name {
			return s
		}
	}
	names := make([]string, len(tr.Spans))
	for i, s := range tr.Spans {
		names[i] = s.Name
	}
	t.Fatalf("trace %s has no span %q (spans: %s)", tr.TraceID, name, strings.Join(names, " "))
	return wireSpan{}
}

// TestTracingEndToEnd drives a durable server through the Go SDK with an
// injected W3C traceparent and asserts the recorded span trees: an ingest
// trace joins the caller's trace id and breaks down into queue-wait,
// commit-batch, engine-apply, WAL-append and fsync child spans with
// non-zero durations; a query trace records snapshot.pin and
// query.descend; reactivating a hibernated stream records stream.activate;
// and scraping /debug/traces never reactivates a hibernated stream.
func TestTracingEndToEnd(t *testing.T) {
	rec := trace.Default()
	oldRate, oldSlow := rec.SampleRate(), rec.SlowThreshold()
	rec.SetSampleRate(1) // keep every op: the assertions are about span shape
	rec.SetSlowThreshold(0)
	defer func() {
		rec.SetSampleRate(oldRate)
		rec.SetSlowThreshold(oldSlow)
	}()

	ctx := context.Background()
	m := trainModel(t)
	opts := ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}
	hub, err := ksir.OpenHub(t.TempDir(), m, ksir.PersistOptions{Fsync: ksir.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.CloseAll()
	srv := httptest.NewServer(server.NewHub(hub, m, opts))
	defer srv.Close()
	sdk := client.New(srv.URL)
	tracesURL := srv.URL + "/debug/traces"

	if _, err := sdk.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "feed"}); err != nil {
		t.Fatal(err)
	}
	feed := sdk.Stream("feed")

	// Ingest with an injected traceparent: the server-side trace must join
	// the caller's trace id and parent the request root under its span id.
	const callerTraceID = "0123456789abcdef0123456789abcdef"
	const callerSpanID = "00f067aa0ba902b7"
	ictx := client.WithTraceparent(ctx, "00-"+callerTraceID+"-"+callerSpanID+"-01")
	if _, err := feed.Add(ictx,
		apiv1.Post{ID: 1, Time: 30, Text: "late goal wins the derby"},
		apiv1.Post{ID: 2, Time: 60, Text: "what a dunk in the playoffs"},
		apiv1.Post{ID: 3, Time: 90, Text: "striker scores the penalty"},
	); err != nil {
		t.Fatal(err)
	}

	ingest := waitTrace(t, tracesURL+"?stream=feed", func(tr wireTrace) bool {
		return tr.TraceID == callerTraceID && len(tr.Spans) > 0 && tr.Spans[0].Name == "http.posts"
	})
	root := ingest.Spans[0]
	if root.Parent != callerSpanID {
		t.Errorf("root parent = %s, want the injected caller span %s", root.Parent, callerSpanID)
	}
	if ingest.Stream != "feed" {
		t.Errorf("ingest trace stream = %q, want feed", ingest.Stream)
	}
	qw := ingest.span(t, "queue.wait")
	cb := ingest.span(t, "commit.batch")
	apply := ingest.span(t, "engine.apply")
	wal := ingest.span(t, "wal.append")
	fsync := ingest.span(t, "wal.fsync")
	fut := ingest.span(t, "future.completion")
	for _, s := range []wireSpan{qw, cb, apply, wal, fsync, fut} {
		if s.Dur <= 0 {
			t.Errorf("span %s has non-positive duration %d", s.Name, s.Dur)
		}
	}
	if qw.Parent != root.SpanID || cb.Parent != root.SpanID || fut.Parent != root.SpanID {
		t.Error("queue.wait/commit.batch/future.completion not parented to the request root")
	}
	if apply.Parent != cb.SpanID || wal.Parent != cb.SpanID || fsync.Parent != cb.SpanID {
		t.Error("engine.apply/wal.append/wal.fsync not parented to commit.batch")
	}

	// A query trace records the snapshot pin and the ranked-list descent.
	if _, err := feed.Flush(ctx, 600); err != nil {
		t.Fatal(err)
	}
	if _, err := feed.Query(ctx, apiv1.QueryRequest{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Fatal(err)
	}
	query := waitTrace(t, tracesURL+"?stream=feed", func(tr wireTrace) bool {
		if len(tr.Spans) == 0 || tr.Spans[0].Name != "http.query" {
			return false
		}
		for _, s := range tr.Spans {
			if s.Name == "snapshot.pin" {
				return true
			}
		}
		return false
	})
	pin := query.span(t, "snapshot.pin")
	descend := query.span(t, "query.descend")
	if pin.Parent != query.Spans[0].SpanID {
		t.Error("snapshot.pin not parented to the request root")
	}
	if descend.Parent != pin.SpanID {
		t.Error("query.descend not parented to snapshot.pin")
	}

	// The filter parameters are honored.
	if got := len(fetchTraces(t, tracesURL+"?limit=1")); got != 1 {
		t.Errorf("limit=1 returned %d traces", got)
	}
	if got := len(fetchTraces(t, tracesURL+"?min_duration=1h")); got != 0 {
		t.Errorf("min_duration=1h returned %d traces", got)
	}

	// Hibernate, then scrape traces: introspection must never reactivate a
	// hibernated stream (the handler reads only the recorder's ring).
	if info, err := feed.Hibernate(ctx); err != nil {
		t.Fatal(err)
	} else if info.State != apiv1.StateHibernated {
		t.Fatalf("state after hibernate = %q", info.State)
	}
	fetchTraces(t, tracesURL)
	fetchTraces(t, tracesURL+"?stream=feed")
	info, err := feed.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != apiv1.StateHibernated {
		t.Fatalf("scraping /debug/traces reactivated the stream (state %q)", info.State)
	}

	// The reactivating query's trace carries the activation span.
	if _, err := feed.Query(ctx, apiv1.QueryRequest{K: 3, Keywords: []string{"dunk"}}); err != nil {
		t.Fatal(err)
	}
	react := waitTrace(t, tracesURL+"?stream=feed", func(tr wireTrace) bool {
		if len(tr.Spans) == 0 || tr.Spans[0].Name != "http.query" {
			return false
		}
		for _, s := range tr.Spans {
			if s.Name == "stream.activate" {
				return true
			}
		}
		return false
	})
	if act := react.span(t, "stream.activate"); act.Dur <= 0 {
		t.Errorf("stream.activate duration = %d, want > 0", act.Dur)
	}
}

// TestTraceResponseHeader asserts the traced routes echo this hop's
// traceparent: same trace id as the injected parent, a fresh span id, and
// the sampled flag preserved.
func TestTraceResponseHeader(t *testing.T) {
	rec := trace.Default()
	oldRate, oldSlow := rec.SampleRate(), rec.SlowThreshold()
	rec.SetSampleRate(1)
	rec.SetSlowThreshold(0)
	defer func() {
		rec.SetSampleRate(oldRate)
		rec.SetSlowThreshold(oldSlow)
	}()

	m := trainModel(t)
	opts := ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}
	hub := ksir.NewHub()
	defer hub.CloseAll()
	srv := httptest.NewServer(server.NewHub(hub, m, opts))
	defer srv.Close()

	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/streams", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	echoed := resp.Header.Get("traceparent")
	sc, ok := trace.ParseTraceparent(echoed)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echoed)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("response trace id = %s, want the injected one", sc.TraceID)
	}
	if sc.SpanID.String() == "00f067aa0ba902b7" {
		t.Error("response span id echoes the parent span; want this hop's root span")
	}
	if !sc.Sampled {
		t.Error("sampled flag not preserved")
	}

	// Without an inbound traceparent the response still announces the
	// server-side trace so callers can look it up at /debug/traces.
	resp2, err := http.Get(srv.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if _, ok := trace.ParseTraceparent(resp2.Header.Get("traceparent")); !ok {
		t.Errorf("response without inbound traceparent carries invalid %q",
			resp2.Header.Get("traceparent"))
	}
}
