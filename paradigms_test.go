package ksir

import (
	"context"
	"strings"
	"testing"
	"time"
)

// feedTwoTopicStream loads a stream with soccer/basketball posts and some
// references, flushed to time 1000.
func feedTwoTopicStream(t *testing.T, st *Stream) {
	t.Helper()
	for i := 0; i < 80; i++ {
		text := "goal striker league derby"
		if i%2 == 1 {
			text = "dunk rebound playoffs court"
		}
		p := Post{ID: int64(i + 1), Time: int64(1 + i*12), Text: text}
		if i > 4 && i%4 == 0 {
			p.Refs = []int64{int64(i - 3)}
		}
		if err := st.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(1000); err != nil {
		t.Fatal(err)
	}
}

func newTwoTopicStream(t *testing.T) *Stream {
	t.Helper()
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	feedTwoTopicStream(t, st)
	return st
}

func TestQueryByText(t *testing.T) {
	st := newTwoTopicStream(t)
	res, err := st.QueryByText(context.Background(), 3, "an article about the league title race and a dramatic goal")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posts) == 0 {
		t.Fatal("empty result")
	}
	if !strings.Contains(res.Posts[0].Text, "goal") {
		t.Errorf("top post off-topic for soccer article: %q", res.Posts[0].Text)
	}
	if _, err := st.QueryByText(context.Background(), 3, "zzz qqq www"); err == nil {
		t.Error("out-of-vocabulary document accepted")
	}
}

func TestQueryPersonalized(t *testing.T) {
	st := newTwoTopicStream(t)
	history := []string{
		"watched the playoffs last night",
		"that dunk was incredible",
		"rebound stats are wild",
	}
	res, err := st.QueryPersonalized(context.Background(), 3, history, WithAlgorithm(MTTS), WithEpsilon(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posts) == 0 {
		t.Fatal("empty result")
	}
	if !strings.Contains(res.Posts[0].Text, "dunk") {
		t.Errorf("top post off-topic for basketball fan: %q", res.Posts[0].Text)
	}
	if _, err := st.QueryPersonalized(context.Background(), 3, nil); err == nil {
		t.Error("empty history accepted")
	}
}

func TestQueryMany(t *testing.T) {
	st := newTwoTopicStream(t)
	queries := []Query{
		{K: 2, Keywords: []string{"goal"}},
		{K: 2, Keywords: []string{"dunk"}},
		{K: 3, Keywords: []string{"league", "playoffs"}},
		{K: 1, Keywords: []string{"derby"}},
	}
	results, err := st.QueryMany(context.Background(), queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if len(r.Posts) == 0 {
			t.Errorf("query %d returned nothing", i)
		}
		if len(r.Posts) > queries[i].K {
			t.Errorf("query %d returned %d > k=%d", i, len(r.Posts), queries[i].K)
		}
	}
	// Batch results must match individual queries (same window state).
	solo, err := st.Query(context.Background(), queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if solo.Score != results[0].Score {
		t.Errorf("batch result diverges: %v vs %v", solo.Score, results[0].Score)
	}
	// Errors propagate.
	if _, err := st.QueryMany(context.Background(), []Query{{K: 0}}, 2); err == nil {
		t.Error("invalid query in batch accepted")
	}
	// Degenerate parallelism values normalize.
	if _, err := st.QueryMany(context.Background(), queries, -1); err != nil {
		t.Error(err)
	}
}

func TestSwapModelKeepsWindow(t *testing.T) {
	st := newTwoTopicStream(t)
	before := st.Active()
	resBefore, err := st.Query(context.Background(), Query{K: 3, Keywords: []string{"goal"}})
	if err != nil {
		t.Fatal(err)
	}

	// Retrain (same corpus, different seed ⇒ different but equivalent
	// model) and swap.
	m2, err := TrainModel(corpus(200), WithTopics(2), WithIterations(40), WithSeed(99),
		WithPriors(0.5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SwapModel(m2); err != nil {
		t.Fatal(err)
	}
	if st.Active() != before {
		t.Errorf("active count changed by swap: %d → %d", before, st.Active())
	}
	res, err := st.Query(context.Background(), Query{K: 3, Keywords: []string{"goal"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posts) != len(resBefore.Posts) {
		t.Errorf("result size changed: %d → %d", len(resBefore.Posts), len(res.Posts))
	}
	for _, p := range res.Posts {
		if !strings.Contains(p.Text, "goal") {
			t.Errorf("off-topic post after swap: %q", p.Text)
		}
	}
	// Stream continues to accept posts after the swap.
	if err := st.Add(Post{ID: 999, Time: 1100, Text: "goal league goal"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(1200); err != nil {
		t.Fatal(err)
	}
	if err := st.SwapModel(nil); err == nil {
		t.Error("nil model accepted")
	}
}

func TestSwapModelPreservesReferences(t *testing.T) {
	st := newTwoTopicStream(t)
	// Influence contributes to scores; after swap, the heavily referenced
	// posts should still be retrievable and the engine must know their
	// children. Count influence via the result of a query on the dominant
	// topic before and after.
	m2, err := TrainModel(corpus(200), WithTopics(2), WithIterations(40), WithSeed(5),
		WithPriors(0.5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SwapModel(m2); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(context.Background(), Query{K: 5, Keywords: []string{"goal", "dunk"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Error("zero score after swap")
	}
}
