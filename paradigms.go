package ksir

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"time"
)

// liveElem pairs an active element with its retained raw text for
// re-inference during SwapModel.
type liveElem struct {
	e    *stream.Element
	text string
}

// newEngineForModel builds a core engine for a model under the stream's
// options (shared by New and SwapModel).
func newEngineForModel(m *Model, opts Options, shards int) (*core.Engine, error) {
	return core.NewEngine(core.Config{
		Model:        m.tm,
		WindowLength: stream.Time(opts.Window / time.Second),
		Params:       score.Params{Lambda: opts.Lambda, Eta: opts.Eta},
		Shards:       shards,
	})
}

// docFromIDs builds a bag-of-words document from token IDs.
func docFromIDs(ids []textproc.WordID) textproc.Document {
	return textproc.NewDocument(ids)
}

// This file implements the query paradigms §3.2 lists beyond
// query-by-keyword, plus batch query processing and online model swap.

// QueryByText answers a k-SIR query whose vector is inferred from a whole
// document — the query-by-document paradigm of [39] (e.g., "find posts
// representative of the topics of this article").
func (s *Stream) QueryByText(ctx context.Context, k int, text string, opts ...QueryOption) (Result, error) {
	q := Query{K: k}
	for _, opt := range opts {
		opt(&q)
	}
	m := s.me.Load().model
	ids := m.tokenIDs(text)
	x := m.inf.InferDense(ids).Truncate(8, 0.02)
	if x.Len() == 0 {
		return Result{}, fmt.Errorf("%w: no word of the query document is in the model vocabulary", ErrBadQuery)
	}
	q.Vector = make(map[int]float64, x.Len())
	for i := range x.Topics {
		q.Vector[int(x.Topics[i])] = x.Probs[i]
	}
	return s.Query(ctx, q)
}

// QueryPersonalized answers a k-SIR query whose vector is inferred from a
// user's recent posts — the personalized-search paradigm of [19]. History
// entries are weighted equally; pass the most recent N posts of the user.
func (s *Stream) QueryPersonalized(ctx context.Context, k int, history []string, opts ...QueryOption) (Result, error) {
	if len(history) == 0 {
		return Result{}, fmt.Errorf("%w: personalized query needs at least one history post", ErrBadQuery)
	}
	var all []string
	all = append(all, history...)
	// A pseudo-document concatenating the user's history.
	joined := ""
	for i, h := range all {
		if i > 0 {
			joined += " "
		}
		joined += h
	}
	return s.QueryByText(ctx, k, joined, opts...)
}

// QueryOption tweaks paradigm helpers without widening their signatures.
type QueryOption func(*Query)

// WithEpsilon sets the approximation knob ε.
func WithEpsilon(eps float64) QueryOption { return func(q *Query) { q.Epsilon = eps } }

// WithAlgorithm selects MTTS/MTTD/TopK.
func WithAlgorithm(a Algorithm) QueryOption { return func(q *Query) { q.Algorithm = a } }

// QueryMany answers a batch of queries concurrently over the same window
// state, the deployment mode the paper motivates ("thousands of users could
// submit different queries at the same time", §2). Results are returned in
// input order; the first error aborts the batch. Cancelling ctx aborts the
// queries still in flight.
func (s *Stream) QueryMany(ctx context.Context, queries []Query, parallelism int) ([]Result, error) {
	if parallelism <= 0 {
		parallelism = 4
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	results := make([]Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = s.Query(ctx, queries[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// SwapModel replaces the topic model while keeping the stream's window
// contents: every active element is re-tokenized against the new model's
// vocabulary, re-inferred, and the ranked lists are rebuilt. This is the
// paper's future-work item ("supporting the incremental updates of topic
// models over streams", §6) in its practical retrain-and-swap form: train a
// fresh model on recent history in the background, then swap atomically
// with respect to queries.
//
// SwapModel must be called from the same goroutine as Add/Flush.
func (s *Stream) SwapModel(m *Model) error {
	if m == nil {
		return fmt.Errorf("%w: nil model", ErrBadOptions)
	}
	// Collect the live elements (window order does not matter; Ingest
	// replays them bucket-free at their original timestamps).
	var actives []liveElem
	cur := s.me.Load().engine
	cur.ReadSnapshot(func(win *stream.ActiveWindow, _ *score.Scorer) {
		win.ForEachActive(func(e *stream.Element) {
			actives = append(actives, liveElem{e: e, text: e.Text})
		})
	})
	now := cur.Now()

	eng, err := newEngineForModel(m, s.opts, s.cfg.shards)
	if err != nil {
		return err
	}
	// Re-ingest in timestamp order with re-inferred topic vectors.
	sortLiveByTS(actives)
	var batch []*stream.Element
	for _, l := range actives {
		ids := m.tokenIDs(l.text)
		batch = append(batch, &stream.Element{
			ID:     l.e.ID,
			TS:     l.e.TS,
			Doc:    docFromIDs(ids),
			Topics: m.inf.InferDoc(ids),
			Refs:   l.e.Refs,
			Text:   l.text,
		})
	}
	if len(batch) > 0 {
		// Feed one element at a time grouped by timestamp so the window
		// reconstructs the exact reference/expiry state.
		i := 0
		for i < len(batch) {
			j := i
			for j < len(batch) && batch[j].TS == batch[i].TS {
				j++
			}
			if err := eng.Ingest(batch[i].TS, batch[i:j]); err != nil {
				return fmt.Errorf("ksir: rebuilding window after model swap: %w", err)
			}
			i = j
		}
	}
	if now > eng.Now() {
		if err := eng.Ingest(now, nil); err != nil {
			return err
		}
	}
	s.me.Store(&modelEngine{model: m, engine: eng})
	return nil
}

// sortLiveByTS orders elements by (TS, ID) so that re-ingestion preserves
// reference order: IDs grow with time, so a same-timestamp parent always
// precedes its referrer.
func sortLiveByTS(actives []liveElem) {
	sort.Slice(actives, func(i, j int) bool {
		if actives[i].e.TS != actives[j].e.TS {
			return actives[i].e.TS < actives[j].e.TS
		}
		return actives[i].e.ID < actives[j].e.ID
	})
}
